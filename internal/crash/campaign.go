package crash

import (
	"fmt"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/rng"
	"asap/internal/sim"
	"asap/internal/trace"
)

// CampaignResult summarizes a crash-injection campaign.
type CampaignResult struct {
	Model     string
	Runs      int
	Crashes   int // runs where the crash fired before completion
	Failures  []Report
	MaxCycles sim.Cycles
}

// String renders a one-line summary.
func (c CampaignResult) String() string {
	return fmt.Sprintf("%-10s runs=%d crashes=%d failures=%d", c.Model, c.Runs, c.Crashes, len(c.Failures))
}

// Campaign runs the trace under the model repeatedly, injecting a crash at
// a pseudo-random cycle within the run each time, and checks every
// resulting NVM image. The first clean (no-crash) run establishes the run
// length used to spread crash points.
//
// The eADR model is excluded by callers: its persistence domain is the
// whole cache hierarchy, which the ADR crash path deliberately does not
// model (see DESIGN.md).
func Campaign(cfg config.Config, modelName string, tr *trace.Trace, runs int, seed uint64) (CampaignResult, error) {
	res := CampaignResult{Model: modelName, Runs: runs}
	r := rng.New(seed)

	// Reference run to learn the execution time.
	ref, err := machine.New(cfg, modelName, tr)
	if err != nil {
		return res, err
	}
	refRes := ref.Run(0)
	res.MaxCycles = refRes.Cycles
	if refRes.Cycles == 0 {
		return res, fmt.Errorf("crash: reference run of %s reported zero cycles", modelName)
	}
	// Verify the completed image too: after a clean run everything
	// committed must be durable once controllers drain.
	for _, mc := range ref.MCs {
		mc.CrashFlush()
	}
	if rep := Check(ref); !rep.OK {
		res.Failures = append(res.Failures, rep)
	}

	for i := 0; i < runs; i++ {
		m, err := machine.New(cfg, modelName, tr)
		if err != nil {
			return res, err
		}
		// Crash points concentrate in the active window, including very
		// early cycles to catch initialization races.
		at := 1 + r.Uint64n(uint64(refRes.Cycles)+1)
		m.ScheduleCrash(at)
		m.Run(0)
		if m.Crashed {
			res.Crashes++
		}
		if rep := Check(m); !rep.OK {
			res.Failures = append(res.Failures, rep)
		}
	}
	return res, nil
}
