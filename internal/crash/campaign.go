package crash

import (
	"fmt"
	"sort"

	"asap/internal/checkpoint"
	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/rng"
	"asap/internal/sim"
	"asap/internal/trace"
)

// CampaignResult summarizes a crash-injection campaign.
type CampaignResult struct {
	Model     string
	Runs      int
	Crashes   int // runs where the crash fired before completion
	Failures  []Report
	MaxCycles sim.Cycles
}

// String renders a one-line summary.
func (c CampaignResult) String() string {
	return fmt.Sprintf("%-10s runs=%d crashes=%d failures=%d", c.Model, c.Runs, c.Crashes, len(c.Failures))
}

// Campaign runs the trace under the model repeatedly, injecting a crash at
// a pseudo-random cycle within the run each time, and checks every
// resulting NVM image. The first clean (no-crash) run establishes the run
// length used to spread crash points.
//
// The campaign is checkpoint-forked: instead of rebuilding a machine and
// re-simulating the prefix for each of the N injection points (O(N·T)),
// it simulates one machine along the sorted injection points, captures a
// checkpoint at each point's eve, and forks the checkpoint per injection —
// O(T) total simulation plus O(state) capture/rewind per point. Injection
// points drawn past the last simulated cycle never alter the image (the
// crash fires after the drain), so they are counted and answered with the
// reference check without touching a machine. Results — crash counts,
// failure reports, report order — are byte-identical to the rebuild
// formulation (pinned by TestCampaignForkedMatchesRebuild, which runs both).
//
// The eADR model is excluded by callers: its persistence domain is the
// whole cache hierarchy, which the ADR crash path deliberately does not
// model (see DESIGN.md).
func Campaign(cfg config.Config, modelName string, tr *trace.Trace, runs int, seed uint64) (CampaignResult, error) {
	res := CampaignResult{Model: modelName, Runs: runs}
	r := rng.New(seed)

	// Reference run to learn the execution time. Start before capturing so
	// the cycle-zero checkpoint already holds the bootstrap events.
	m, err := machine.New(cfg, modelName, tr)
	if err != nil {
		return res, err
	}
	m.Start()
	cp, err := checkpoint.Capture(m)
	if err != nil {
		return res, err
	}
	refRes := m.Run(0)
	res.MaxCycles = refRes.Cycles
	if refRes.Cycles == 0 {
		return res, fmt.Errorf("crash: reference run of %s reported zero cycles", modelName)
	}
	// Verify the completed image too: after a clean run everything
	// committed must be durable once controllers drain.
	for _, mc := range m.MCs {
		mc.CrashFlush()
	}
	refRep := Check(m)
	if !refRep.OK {
		res.Failures = append(res.Failures, refRep)
	}

	// Draw every injection point in the original order (the stream of an
	// RNG is part of the campaign's identity), then visit them sorted so
	// the frontier machine only ever advances. Reports are reassembled in
	// draw order afterwards.
	ats := make([]sim.Cycles, runs)
	order := make([]int, runs)
	for i := range ats {
		// Crash points concentrate in the active window, including very
		// early cycles to catch initialization races.
		ats[i] = 1 + r.Uint64n(uint64(refRes.Cycles)+1)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if ats[order[a]] != ats[order[b]] {
			return ats[order[a]] < ats[order[b]]
		}
		return order[a] < order[b]
	})

	// Capture stride: a checkpoint costs O(machine state) while advancing
	// the clock costs O(events in the gap), so re-capturing at every
	// distinct injection point loses when points are dense. Instead the
	// frontier checkpoint moves in strides of ~T/64: a fork whose injection
	// point lies within the stride re-simulates the short suffix from the
	// last capture (deterministic, so results are unchanged), and only a
	// fork that advances past the stride pays for a new capture.
	stride := refRes.Cycles / 64
	reports := make([]Report, runs)
	for _, idx := range order {
		at := ats[idx]
		res.Crashes++ // the injected crash always fires (post-drain at worst)
		if at > refRes.Cycles {
			// Past the final event: the machine has fully drained and the
			// ADR flush changes nothing, so the image equals the reference
			// image and the check is the reference check.
			reports[idx] = refRep
			continue
		}
		m = cp.Fork()
		if at-1 > cp.Cycle()+stride {
			m.Advance(at - 1)
			if cp, err = checkpoint.Capture(m); err != nil {
				return res, err
			}
		}
		m.CrashNow(at)
		reports[idx] = Check(m)
	}
	for i := range reports {
		if !reports[i].OK {
			res.Failures = append(res.Failures, reports[i])
		}
	}
	return res, nil
}

// CampaignRebuild is the pre-checkpoint formulation — a fresh machine and a
// full from-zero simulation per injection point. It is retained as the
// differential oracle for the forked campaign and as the baseline side of
// BenchmarkCrashCampaign; new callers want Campaign.
func CampaignRebuild(cfg config.Config, modelName string, tr *trace.Trace, runs int, seed uint64) (CampaignResult, error) {
	res := CampaignResult{Model: modelName, Runs: runs}
	r := rng.New(seed)

	ref, err := machine.New(cfg, modelName, tr)
	if err != nil {
		return res, err
	}
	refRes := ref.Run(0)
	res.MaxCycles = refRes.Cycles
	if refRes.Cycles == 0 {
		return res, fmt.Errorf("crash: reference run of %s reported zero cycles", modelName)
	}
	for _, mc := range ref.MCs {
		mc.CrashFlush()
	}
	if rep := Check(ref); !rep.OK {
		res.Failures = append(res.Failures, rep)
	}

	for i := 0; i < runs; i++ {
		m, err := machine.New(cfg, modelName, tr)
		if err != nil {
			return res, err
		}
		at := 1 + r.Uint64n(uint64(refRes.Cycles)+1)
		m.ScheduleCrash(at)
		m.Run(0)
		if m.Crashed {
			res.Crashes++
		}
		if rep := Check(m); !rep.OK {
			res.Failures = append(res.Failures, rep)
		}
	}
	return res, nil
}
