package crash

import (
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/mem"
	"asap/internal/model"
	"asap/internal/trace"
)

// buildMachine runs a tiny two-thread trace to completion and drains, so
// tests can then corrupt the NVM image in targeted ways.
func buildMachine(t *testing.T) *machine.Machine {
	t.Helper()
	tr := &trace.Trace{Name: "check"}
	for th := 0; th < 2; th++ {
		var b trace.Builder
		for i := 0; i < 40; i++ {
			b.StoreP(uint64(1<<30 + th*4096 + (i%8)*64))
			if i%4 == 3 {
				b.Ofence()
			}
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	m, err := machine.New(config.Default(), model.NameASAPRP, tr)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	for _, mc := range m.MCs {
		mc.CrashFlush()
	}
	if rep := Check(m); !rep.OK {
		t.Fatalf("clean run must verify: %v", rep.Problems)
	}
	return m
}

// TestCheckDetectsForeignToken: a token placed on the wrong line is flagged.
func TestCheckDetectsForeignToken(t *testing.T) {
	m := buildMachine(t)
	var lineA, lineB mem.Line
	m.Ledger.Lines(func(l mem.Line, ws []machine.WriteRec) {
		if lineA == 0 {
			lineA = l
		} else if lineB == 0 && m.IL.Home(l) == m.IL.Home(lineA) {
			lineB = l
		}
	})
	if lineB == 0 {
		t.Skip("no two lines on one controller")
	}
	// Write lineB's surviving token onto lineA.
	mc := m.MCs[m.IL.Home(lineA)]
	mc.NVM.Write(lineA, mc.NVM.Peek(lineB))
	if rep := Check(m); rep.OK {
		t.Fatal("foreign token not detected")
	}
}

// TestCheckDetectsUnknownToken: a token that was never written is flagged.
func TestCheckDetectsUnknownToken(t *testing.T) {
	m := buildMachine(t)
	var line mem.Line
	m.Ledger.Lines(func(l mem.Line, _ []machine.WriteRec) {
		if line == 0 {
			line = l
		}
	})
	m.MCs[m.IL.Home(line)].NVM.Write(line, 999_999_999)
	if rep := Check(m); rep.OK {
		t.Fatal("unknown token not detected")
	}
}

// TestCheckDetectsRolledBackPrefix: reverting one line to an old token while
// the same epoch's other writes survive violates Lemma 1.1.
func TestCheckDetectsRolledBackPrefix(t *testing.T) {
	m := buildMachine(t)
	var victim mem.Line
	var oldTok mem.Token
	m.Ledger.Lines(func(l mem.Line, ws []machine.WriteRec) {
		if victim != 0 || len(ws) < 2 {
			return
		}
		if m.Ledger.IsCommitted(ws[len(ws)-1].Epoch) {
			victim = l
			oldTok = ws[0].Token
		}
	})
	if victim == 0 {
		t.Skip("no multi-write committed line")
	}
	m.MCs[m.IL.Home(victim)].NVM.Write(victim, oldTok)
	if rep := Check(m); rep.OK {
		t.Fatal("rolled-back committed write not detected")
	}
}

// TestReportCapsProblems: a heavily corrupted image doesn't flood.
func TestReportCapsProblems(t *testing.T) {
	m := buildMachine(t)
	m.Ledger.Lines(func(l mem.Line, _ []machine.WriteRec) {
		m.MCs[m.IL.Home(l)].NVM.Write(l, 0)
	})
	rep := Check(m)
	if rep.OK {
		t.Fatal("zeroed image verified")
	}
	if len(rep.Problems) > 32 {
		t.Fatalf("problem list not capped: %d", len(rep.Problems))
	}
	if rep.LinesChecked == 0 {
		t.Fatal("LinesChecked not reported")
	}
}

// TestCampaignReportsRuns: campaign accounting sanity.
func TestCampaignReportsRuns(t *testing.T) {
	tr := depTrace(2, 40, 3)
	res, err := Campaign(config.Default(), model.NameASAPRP, tr, 5, 17)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 5 || res.Crashes == 0 || res.MaxCycles == 0 {
		t.Fatalf("campaign accounting wrong: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("empty campaign summary")
	}
}

// TestSurvivingEpochsCounted: the report counts distinct surviving epochs.
func TestSurvivingEpochsCounted(t *testing.T) {
	m := buildMachine(t)
	rep := Check(m)
	if rep.SurvivingEpochs == 0 {
		t.Fatal("no surviving epochs after a clean run")
	}
}
