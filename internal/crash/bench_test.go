package crash

import (
	"testing"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/trace"
	"asap/internal/workload"
)

// campaignBenchTrace is the shared 1k-injection campaign workload: long
// enough that the per-injection prefix dominates the rebuild formulation,
// with the moderate persistent footprint of a real index.
func campaignBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := workload.Generate("cceh", workload.Params{Threads: 2, OpsPerThread: 400, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

const campaignBenchRuns = 1000

// BenchmarkCrashCampaignForked measures the checkpoint-forked campaign:
// one simulation along the sorted injection frontier, one capture per
// distinct point, one rewind per injection. Its counterpart
// BenchmarkCrashCampaignRebuild re-simulates the prefix per injection; the
// tentpole's acceptance gate is forked ≥ 5× faster at 1k injections.
func BenchmarkCrashCampaignForked(b *testing.B) {
	tr := campaignBenchTrace(b)
	cfg := config.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Campaign(cfg, model.NameASAPEP, tr, campaignBenchRuns, 7)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Failures) != 0 {
			b.Fatalf("campaign found %d failures", len(res.Failures))
		}
	}
}

// BenchmarkCrashCampaignRebuild is the baseline side of the ≥5× gate.
func BenchmarkCrashCampaignRebuild(b *testing.B) {
	tr := campaignBenchTrace(b)
	cfg := config.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := CampaignRebuild(cfg, model.NameASAPEP, tr, campaignBenchRuns, 7)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Failures) != 0 {
			b.Fatalf("campaign found %d failures", len(res.Failures))
		}
	}
}
