// Package crash injects power failures into a running machine and verifies
// that the recovered NVM image is consistent — an executable form of the
// paper's §VI correctness argument:
//
//   - Lemma 1.1: every write of a committed epoch is durable.
//   - Theorem 2: the surviving value of every line belongs to an epoch
//     whose entire dependency ancestry (same-thread predecessors plus
//     recorded cross-thread dependencies) is durable, i.e. the surviving
//     epoch set is prefix-closed over the dependency DAG.
//
// Partial survival of frontier epochs (safe but uncommitted) is legal under
// epoch persistency; the checker only rejects images where a later epoch's
// write survived while an earlier epoch it depends on lost one.
package crash

import (
	"fmt"

	"asap/internal/machine"
	"asap/internal/mem"
	"asap/internal/persist"
)

// Report is the outcome of one consistency check.
type Report struct {
	OK       bool
	Problems []string
	// LinesChecked counts persistent lines inspected.
	LinesChecked int
	// SurvivingEpochs counts distinct epochs with a surviving write.
	SurvivingEpochs int
}

func (r *Report) fail(format string, args ...interface{}) {
	r.OK = false
	if len(r.Problems) < 32 { // cap noise
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

// epochMemo is a dense memo table for per-epoch verdicts. A campaign calls
// Check once per injection point — thousands of calls against the same
// footprint — and epoch timestamps are small dense per-thread sequences, so
// (thread, TS)-indexed byte slices replace EpochID-keyed maps: no hashing
// on any visit, one amortized growth path. A negative thread (never emitted
// by the models, but EpochID admits it) falls back to a tiny overflow map.
type epochMemo struct {
	byThread [][]uint8
	overflow map[persist.EpochID]uint8
}

func (t *epochMemo) get(e persist.EpochID) uint8 {
	if e.Thread < 0 {
		return t.overflow[e]
	}
	if e.Thread >= len(t.byThread) || e.TS >= uint64(len(t.byThread[e.Thread])) {
		return 0
	}
	return t.byThread[e.Thread][e.TS]
}

func (t *epochMemo) set(e persist.EpochID, v uint8) {
	if e.Thread < 0 {
		if t.overflow == nil {
			t.overflow = make(map[persist.EpochID]uint8)
		}
		t.overflow[e] = v
		return
	}
	for len(t.byThread) <= e.Thread {
		t.byThread = append(t.byThread, nil)
	}
	if s := t.byThread[e.Thread]; e.TS < uint64(len(s)) {
		s[e.TS] = v
		return
	}
	grown := make([]uint8, e.TS+e.TS/2+16)
	copy(grown, t.byThread[e.Thread])
	grown[e.TS] = v
	t.byThread[e.Thread] = grown
}

// Check verifies the machine's post-crash NVM image against its ledger.
// Call it after Machine.Run returned with Crashed=true (or after a normal
// completion, where it degenerates to checking that all committed writes
// persisted).
func Check(m *machine.Machine) Report {
	rep := Report{OK: true}
	lg := m.Ledger

	// surviving(line) = token now in NVM at the line's home controller.
	surviving := func(l mem.Line) mem.Token {
		return m.MCs[m.IL.Home(l)].NVM.Peek(l)
	}

	// fullyDurable memoizes whether every write of an epoch survived or
	// was legally overwritten by a later write to the same line.
	const (
		durUnknown uint8 = iota
		durYes
		durNo
	)
	var durableMemo epochMemo
	var fullyDurable func(e persist.EpochID) bool
	fullyDurable = func(e persist.EpochID) bool {
		if v := durableMemo.get(e); v != durUnknown {
			return v == durYes
		}
		v := durYes // epochs without writes are trivially durable
		for _, w := range lg.EpochWrites(e) {
			sv := surviving(w.Line)
			if sv == 0 {
				v = durNo
				break
			}
			svPos, ok := lg.TokenPos(sv)
			if !ok {
				v = durNo
				break
			}
			wPos, _ := lg.TokenPos(w.Token)
			if svPos < wPos {
				v = durNo
				break
			}
		}
		durableMemo.set(e, v)
		return v == durYes
	}

	// Lemma 1.1: committed epochs are fully durable.
	lg.CommittedEpochs(func(e persist.EpochID) {
		if !fullyDurable(e) {
			rep.fail("committed epoch %v lost a write", e)
		}
	})

	// Theorem 2: ancestry of every surviving epoch is fully durable.
	var ancestryOK epochMemo // 0 unknown, 1 ok, 2 bad, 3 visiting
	var checkAncestry func(e persist.EpochID) bool
	checkAncestry = func(e persist.EpochID) bool {
		switch ancestryOK.get(e) {
		case 1, 3: // visiting: the DAG is acyclic by construction (Lemma 0.1); treat as ok
			return true
		case 2:
			return false
		}
		ancestryOK.set(e, 3)
		ok := true
		// Same-thread predecessor chain.
		if e.TS > 1 {
			prev := persist.EpochID{Thread: e.Thread, TS: e.TS - 1}
			if !fullyDurable(prev) {
				rep.fail("epoch %v survived but same-thread predecessor %v is not durable", e, prev)
				ok = false
			} else if !checkAncestry(prev) {
				ok = false
			}
		}
		// Cross-thread dependencies.
		for _, src := range lg.Predecessors(e) {
			if !fullyDurable(src) {
				rep.fail("epoch %v survived but dependency source %v is not durable", e, src)
				ok = false
			} else if !checkAncestry(src) {
				ok = false
			}
		}
		if ok {
			ancestryOK.set(e, 1)
		} else {
			ancestryOK.set(e, 2)
		}
		return ok
	}

	var seenEpochs epochMemo
	lg.Lines(func(l mem.Line, ws []machine.WriteRec) {
		rep.LinesChecked++
		sv := surviving(l)
		if sv == 0 {
			// Nothing persisted for this line: legal only if no
			// committed epoch wrote it, which Lemma 1.1 covers.
			return
		}
		rec, ok := lg.TokenRec(sv)
		if !ok {
			rep.fail("line %#x holds token %d that was never written", l.Addr(), sv)
			return
		}
		if wl, _ := lg.TokenLine(sv); wl != l {
			rep.fail("line %#x holds token %d belonging to line %#x", l.Addr(), sv, wl.Addr())
			return
		}
		if seenEpochs.get(rec.Epoch) == 0 {
			seenEpochs.set(rec.Epoch, 1)
			rep.SurvivingEpochs++
		}
		checkAncestry(rec.Epoch)
	})
	return rep
}
