package crash

import (
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/mem"
	"asap/internal/model"
	"asap/internal/rng"
	"asap/internal/trace"
)

// depTrace builds a trace with heavy cross-thread persist dependencies: a
// shared persistent counter region updated under a lock, mixed with private
// writes and fences — the pattern most likely to expose speculative-update
// bugs.
func depTrace(threads, iters int, seed uint64) *trace.Trace {
	r := rng.New(seed)
	tr := &trace.Trace{Name: "dep"}
	const (
		pmBase   = 1 << 30
		shared   = pmBase + 1<<22
		lockAddr = 1 << 20
	)
	for t := 0; t < threads; t++ {
		var b trace.Builder
		for i := 0; i < iters; i++ {
			switch r.Intn(6) {
			case 0, 1:
				b.Acquire(lockAddr)
				// log write, ordered before data write
				b.StoreP(uint64(shared + uint64(r.Intn(4))*64))
				b.Ofence()
				b.StoreP(uint64(shared + 1024 + uint64(r.Intn(4))*64))
				b.Release(lockAddr)
			case 2, 3:
				b.StoreP(uint64(pmBase + uint64(t)*8192 + uint64(r.Intn(16))*64))
				if r.Bool(0.3) {
					b.Ofence()
				}
			case 4:
				b.Dfence()
			default:
				b.Compute(uint32(5 + r.Intn(30)))
			}
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// TestCrashCampaignASAP is the core recovery-correctness test (Theorem 2):
// random crash points under both ASAP variants must always leave NVM
// consistent after the ADR drain.
func TestCrashCampaignASAP(t *testing.T) {
	tr := depTrace(4, 150, 7)
	for _, name := range []string{model.NameASAPEP, model.NameASAPRP} {
		res, err := Campaign(config.Default(), name, tr, 40, 11)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failures) > 0 {
			t.Errorf("%s: %d inconsistent recoveries; first: %v",
				name, len(res.Failures), res.Failures[0].Problems)
		}
		if res.Crashes == 0 {
			t.Errorf("%s: no crash ever fired; campaign is vacuous", name)
		}
		t.Logf("%s", res)
	}
}

// TestCrashCampaignOthers: baseline and HOPS must also recover consistently
// (they never write speculatively, so this validates the checker and the
// WPQ/ADR path).
func TestCrashCampaignOthers(t *testing.T) {
	tr := depTrace(4, 120, 9)
	for _, name := range []string{model.NameBaseline, model.NameHOPSEP, model.NameHOPSRP, model.NameDPO, model.NameLBPP, model.NameLRP, model.NameVorpal} {
		res, err := Campaign(config.Default(), name, tr, 25, 13)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failures) > 0 {
			t.Errorf("%s: %d inconsistent recoveries; first: %v",
				name, len(res.Failures), res.Failures[0].Problems)
		}
		t.Logf("%s", res)
	}
}

// TestCheckDetectsCorruption: the checker must actually catch a violated
// image — erase a line written by a committed epoch and expect a failure
// (otherwise the campaign tests prove nothing).
func TestCheckDetectsCorruption(t *testing.T) {
	tr := depTrace(2, 80, 3)
	m, err := machine.New(config.Default(), model.NameASAPRP, tr)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	for _, mc := range m.MCs {
		mc.CrashFlush()
	}
	if rep := Check(m); !rep.OK {
		t.Fatalf("clean run should verify: %v", rep.Problems)
	}
	// Corrupt: rewind one line written by a committed epoch to token 0.
	var corrupted bool
	m.Ledger.Lines(func(l mem.Line, ws []machine.WriteRec) {
		if corrupted || len(ws) == 0 {
			return
		}
		if m.Ledger.IsCommitted(ws[len(ws)-1].Epoch) {
			m.MCs[m.IL.Home(l)].NVM.Write(l, 0)
			corrupted = true
		}
	})
	if !corrupted {
		t.Fatal("no committed write found to corrupt")
	}
	if rep := Check(m); rep.OK {
		t.Fatal("checker failed to detect a lost committed write")
	}
}
