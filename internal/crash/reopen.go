package crash

import (
	"fmt"

	"asap/internal/machine"
	"asap/internal/mem"
	"asap/internal/pmds"
)

// RebuildImage reconstructs the post-crash persistent-memory byte image of
// a pmds heap: for every line, the token that survived in the simulated NVM
// selects the line image the heap recorded at that store (generation must
// have run with Heap.CaptureImages). Lines never persisted come back as
// zeroes, exactly like real PM after a crash that beat their first flush.
//
// Together with pmds.ReopenHeap and the structures' Reopen functions this
// demonstrates the paper's §V-E claim end to end: after the ADR drain,
// memory needs no further recovery — a data structure simply reopens.
//
// The mapping is exact for single-threaded traces. For multi-threaded
// traces the image recorded at a store reflects *generation-time* ordering
// of other threads' same-line writes, which may differ from replay-time
// coherence order; callers wanting byte-exact multi-thread images should
// keep threads' data disjoint (as the pmds structures do for everything
// except lock-protected shared lines).
func RebuildImage(m *machine.Machine, h *pmds.Heap, size int) ([]byte, error) {
	out := make([]byte, size)
	var err error
	m.Ledger.Lines(func(l mem.Line, _ []machine.WriteRec) {
		if err != nil {
			return
		}
		tok := m.MCs[m.IL.Home(l)].NVM.Peek(l)
		if tok == 0 {
			return // never persisted: stays zero
		}
		origin, ok := m.Ledger.Origin(tok)
		if !ok {
			err = fmt.Errorf("crash: surviving token %d has no origin", tok)
			return
		}
		imgs := h.Images(origin.Thread)
		if origin.Seq >= len(imgs) {
			err = fmt.Errorf("crash: origin %+v beyond %d recorded images", origin, len(imgs))
			return
		}
		img := imgs[origin.Seq]
		addr := l.Addr()
		if img.LineAddr != addr {
			err = fmt.Errorf("crash: image for token %d is line %#x, want %#x", tok, img.LineAddr, addr)
			return
		}
		off := addr - pmds.PMBase
		if off+64 > uint64(size) {
			return // metadata line outside the data heap
		}
		copy(out[off:], img.Data[:])
	})
	return out, err
}
