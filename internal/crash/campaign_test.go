package crash

import (
	"reflect"
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/workload"
)

// TestCampaignForkedMatchesRebuild pins the forked campaign's contract: the
// checkpoint-forked formulation must produce byte-identical results —
// MaxCycles, crash counts, failure reports and their order — to the
// rebuild-per-injection oracle, across models with different persist
// machinery and a lock-heavy workload.
func TestCampaignForkedMatchesRebuild(t *testing.T) {
	cfg := config.Default()
	tr, err := workload.Generate("echo", workload.Params{Threads: 2, OpsPerThread: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mn := range []string{model.NameBaseline, model.NameASAPEP, model.NameHOPSRP, model.NameStrandWeaver} {
		t.Run(mn, func(t *testing.T) {
			t.Parallel()
			const runs, seed = 40, 1234
			forked, err := Campaign(cfg, mn, tr, runs, seed)
			if err != nil {
				t.Fatalf("forked: %v", err)
			}
			rebuilt, err := CampaignRebuild(cfg, mn, tr, runs, seed)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			if !reflect.DeepEqual(forked, rebuilt) {
				t.Fatalf("campaigns diverged:\nforked:  %+v\nrebuilt: %+v", forked, rebuilt)
			}
		})
	}
}

// TestCrashNowEquivalence pins CrashNow against the scheduled-crash path it
// replaces: for a spread of injection cycles, a machine crashed via
// CrashNow(at) must leave the same NVM image, ledger verdict, stats, and
// crash flag as one built identically and run with ScheduleCrash(at).
func TestCrashNowEquivalence(t *testing.T) {
	cfg := config.Default()
	tr, err := workload.Generate("cceh", workload.Params{Threads: 2, OpsPerThread: 80, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := machine.New(cfg, model.NameASAPEP, tr)
	if err != nil {
		t.Fatal(err)
	}
	total := ref.Run(0).Cycles
	for _, at := range []uint64{1, 2, total / 7, total / 3, total / 2, total - 1, total, total + 1} {
		if at == 0 {
			continue
		}
		mSched, err := machine.New(cfg, model.NameASAPEP, tr)
		if err != nil {
			t.Fatal(err)
		}
		mSched.ScheduleCrash(at)
		mSched.Run(0)

		mNow, err := machine.New(cfg, model.NameASAPEP, tr)
		if err != nil {
			t.Fatal(err)
		}
		mNow.CrashNow(at)

		if mSched.Crashed != mNow.Crashed {
			t.Errorf("at=%d: crash flag diverged (sched %v, now %v)", at, mSched.Crashed, mNow.Crashed)
		}
		for i := range mSched.MCs {
			a, b := mSched.MCs[i].NVM.Snapshot(), mNow.MCs[i].NVM.Snapshot()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("at=%d: MC%d NVM image diverged", at, i)
			}
		}
		repA, repB := Check(mSched), Check(mNow)
		if !reflect.DeepEqual(repA, repB) {
			t.Errorf("at=%d: check reports diverged:\nsched %+v\nnow   %+v", at, repA, repB)
		}
		if a, b := mSched.St.String(), mNow.St.String(); a != b {
			t.Errorf("at=%d: stats diverged:\n%s\nvs\n%s", at, a, b)
		}
	}
}
