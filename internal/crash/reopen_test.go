package crash

import (
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/pmds"
	"asap/internal/rng"
)

// TestCCEHReopenAfterCrash is the paper's §V-E claim end to end: build a
// real CCEH table, replay its trace under ASAP, crash at an arbitrary
// cycle, reconstruct the NVM byte image from the surviving tokens, reopen
// the table on it with *no recovery pass*, and check crash consistency at
// the data-structure level:
//
//  1. every inserted key found in the reopened table maps to a value that
//     was actually written for it (no torn slots: CCEH's value-then-key
//     commit order held through ASAP's reordering);
//  2. every insert whose commit-marker epoch had committed before the
//     crash is present with its committed value (Lemma 1.1 at the KV
//     level).
func TestCCEHReopenAfterCrash(t *testing.T) {
	const heapBytes = 8 << 20

	for _, crashAt := range []uint64{5_000, 20_000, 60_000, 120_000} {
		// Generation: single thread (see RebuildImage docs), images on.
		h := pmds.NewHeap(heapBytes, 1)
		h.CaptureImages()
		table := pmds.NewCCEH(h, 2, 8)
		r := rng.New(31)

		written := map[uint64][]uint64{} // key -> every value written
		markerSeq := map[uint64]int{}    // key -> pstore seq of its commit marker
		lastVal := map[uint64]uint64{}   // key -> last written value
		for i := 0; i < 400; i++ {
			k := 1 + r.Uint64n(512)
			v := r.Uint64()
			if table.Insert(k, v) {
				written[k] = append(written[k], v)
				lastVal[k] = v
				// The key (or updated value) word is the last persistent
				// store of the insert.
				markerSeq[k] = h.PStoreCount(0) - 1
			}
		}
		tr := h.Trace("cceh-reopen")

		// Replay under ASAP with a crash.
		m, err := machine.New(config.Default(), model.NameASAPRP, tr)
		if err != nil {
			t.Fatal(err)
		}
		m.ScheduleCrash(crashAt)
		m.Run(0)
		if !m.Crashed {
			t.Fatalf("crash@%d never fired", crashAt)
		}
		if rep := Check(m); !rep.OK {
			t.Fatalf("crash@%d: inconsistent NVM image: %v", crashAt, rep.Problems)
		}

		// Reconstruct the byte image and reopen with no recovery pass.
		img, err := RebuildImage(m, h, heapBytes)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAt, err)
		}
		h2 := pmds.ReopenHeap(img, 1)
		reopened := pmds.ReopenCCEH(h2, table.RootAddr(), 8)

		found := 0
		for k, vals := range written {
			got, ok := reopened.Get(k)
			if !ok {
				continue
			}
			found++
			legal := false
			for _, v := range vals {
				if got == v {
					legal = true
					break
				}
			}
			if !legal {
				t.Fatalf("crash@%d: key %d has torn value %d", crashAt, k, got)
			}
		}

		// Committed inserts must have survived with their final value.
		committedChecked := 0
		for k, seq := range markerSeq {
			tok := m.Ledger.TokenForOrigin(machine.Origin{Thread: 0, Seq: seq})
			if tok == 0 {
				continue // store never issued before the crash
			}
			rec, ok := m.Ledger.TokenRec(tok)
			if !ok || !m.Ledger.IsCommitted(rec.Epoch) {
				continue
			}
			got, ok := reopened.Get(k)
			if !ok {
				t.Fatalf("crash@%d: committed key %d missing after reopen", crashAt, k)
			}
			if got != lastVal[k] {
				// A later (uncommitted) update may have been rolled
				// back; then any earlier written value is legal.
				legal := false
				for _, v := range written[k] {
					if got == v {
						legal = true
						break
					}
				}
				if !legal {
					t.Fatalf("crash@%d: committed key %d has foreign value", crashAt, k)
				}
			}
			committedChecked++
		}
		t.Logf("crash@%d: %d/%d keys recovered, %d committed inserts verified",
			crashAt, found, len(written), committedChecked)
	}
}

// TestCCEHReopenCleanRun: after a run that completes (all epochs committed,
// controllers drained), the reopened table holds every inserted key with
// its final value.
func TestCCEHReopenCleanRun(t *testing.T) {
	const heapBytes = 8 << 20
	h := pmds.NewHeap(heapBytes, 1)
	h.CaptureImages()
	table := pmds.NewCCEH(h, 2, 8)
	r := rng.New(97)
	last := map[uint64]uint64{}
	for i := 0; i < 300; i++ {
		k := 1 + r.Uint64n(400)
		v := r.Uint64()
		if table.Insert(k, v) {
			last[k] = v
		}
	}
	m, err := machine.New(config.Default(), model.NameASAPRP, h.Trace("clean"))
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	for _, mc := range m.MCs {
		mc.CrashFlush() // drain WPQs into the image
	}
	img, err := RebuildImage(m, h, heapBytes)
	if err != nil {
		t.Fatal(err)
	}
	reopened := pmds.ReopenCCEH(pmds.ReopenHeap(img, 1), table.RootAddr(), 8)
	for k, v := range last {
		got, ok := reopened.Get(k)
		if !ok || got != v {
			t.Fatalf("key %d = (%d,%v), want (%d,true) after a clean run", k, got, ok, v)
		}
	}
}

// TestFastFairReopenAfterCrash: the B+-tree version of the restart story.
func TestFastFairReopenAfterCrash(t *testing.T) {
	const heapBytes = 8 << 20
	h := pmds.NewHeap(heapBytes, 1)
	h.CaptureImages()
	tree := pmds.NewFastFair(h, 8, 8)
	r := rng.New(41)
	written := map[uint64][]uint64{}
	for i := 0; i < 300; i++ {
		k := 1 + r.Uint64n(600)
		v := r.Uint64()
		tree.Insert(k, v)
		written[k] = append(written[k], v)
	}
	m, err := machine.New(config.Default(), model.NameASAPRP, h.Trace("ff-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	m.ScheduleCrash(100_000)
	m.Run(0)
	if rep := Check(m); !rep.OK {
		t.Fatalf("inconsistent image: %v", rep.Problems)
	}
	img, err := RebuildImage(m, h, heapBytes)
	if err != nil {
		t.Fatal(err)
	}
	reopened := pmds.ReopenFastFair(pmds.ReopenHeap(img, 1), tree.RootAddr(), 8, 8)
	found := 0
	for k, vals := range written {
		got, ok := reopened.Get(k)
		if !ok {
			continue
		}
		found++
		legal := false
		for _, v := range vals {
			if got == v {
				legal = true
			}
		}
		if !legal {
			t.Fatalf("key %d has torn value %d after reopen", k, got)
		}
	}
	if found == 0 {
		t.Fatal("nothing recovered despite a late crash")
	}
	// A range scan over the recovered tree must be sorted and duplicate-free.
	keys, _ := reopened.Scan(0, 1<<30)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("recovered tree scan out of order at %d: %d <= %d", i, keys[i], keys[i-1])
		}
	}
	t.Logf("recovered %d/%d keys; scan returned %d sorted keys", found, len(written), len(keys))
}
