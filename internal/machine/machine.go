// Package machine assembles a complete simulated system — cores replaying a
// trace, the cache hierarchy with its coherence directory, simulated
// spinlocks, the persistence model under test, and the memory controllers —
// and runs it to completion or to an injected crash.
package machine

import (
	"fmt"
	"os"

	"asap/internal/cache"
	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/model"
	"asap/internal/obs"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
	"asap/internal/trace"
)

// SampleInterval is the period of the occupancy/blocked-cycles sampler.
const SampleInterval sim.Cycles = 200

// Typed-event kinds dispatched through Machine.RunEvent. The per-op core
// tick, persistent-store issue, and fence paths run through these so the
// steady-state instruction stream schedules no closures.
const (
	mEvStep     = iota // resume core arg's next op
	mEvPStore          // issue core arg's staged persistent store to the model
	mEvOfence          // run the model's Ofence for core arg
	mEvDfence          // run the model's Dfence for core arg
	mEvSample          // periodic occupancy sampler
	mEvTimeline        // periodic timeline row
	mEvRelease         // run the model's Release for core arg's staged lock line
	mEvHandoff         // finish a contended acquire handed to core arg
)

// Machine is one runnable system instance. Build with New, run with Run.
//
// On a sharded machine the cores, caches, locks and the model all run on
// the CPU timing domain (domain 0); domaincheck's //asap:domain rule keeps
// this event domain from calling memory-controller methods synchronously —
// every interaction goes through the Link. (Reads of MC sub-objects in
// serial-gated branches, e.g. the demand-fill NVM read, stay legal: the
// rule polices component method calls, the cluster==nil gates police the
// rest at run time.)
//
//asap:domain cpu
type Machine struct {
	Eng    *sim.Engine
	Cfg    config.Config
	Model  model.Model
	Hier   *cache.Hierarchy
	MCs    []*persist.MC
	IL     *mem.Interleaver
	St     *stats.Set
	Ledger *Ledger

	cores    []*coreState
	locks    map[mem.Line]*lockState
	pm       pmFilter
	wbbs     []*persist.WBB
	tokenSeq mem.Token
	finished int

	// Pre-resolved stat handles for the per-access and lock paths.
	cWbbParked, cWbbFullStalls     stats.Counter
	cLLCEvictionsDelayed           stats.Counter
	cPMLinesDropped                stats.Counter
	cLockContended                 stats.Counter
	cCyclesBlocked, cSampledCycles stats.Counter

	crashAt sim.Cycles
	Crashed bool
	started bool // initial per-core/sampler events scheduled (see Start)

	// tr is the trace this machine replays, kept so a checkpoint image can
	// embed the full run recipe (config, model, trace) next to the state.
	tr *trace.Trace

	// Sharded-run state (nil/empty on serial machines). cluster owns the
	// per-domain engines: domain 0 (Eng) hosts the cores, hierarchy, locks,
	// WBBs, and the model; domains 1..N-1 each host a subset of the memory
	// controllers. link is the cross-domain message fabric (a serial
	// passthrough when cluster is nil). mcSts are the MC domains' private
	// stat sets, merged into St once after the run — controllers must not
	// write the CPU domain's set concurrently.
	cluster *sim.Cluster
	link    *persist.Link
	mcSts   []*stats.Set
	merged  bool

	// wbbPreds caches per-core ReleaseIf predicates so the sampler does not
	// close over the loop variable every interval.
	wbbPreds []func(mem.Line) bool
	// tlVals is the timeline row scratch, reused across ticks.
	tlVals []uint64

	trc        obs.Tracer // nil unless tracing; every use must be nil-guarded
	coreTracks []obs.TrackID
	engTrack   obs.TrackID
	timeline   *obs.Timeline
	tlETs      bool          // timeline includes epoch-table columns
	progress   *obs.Progress // nil unless progress reporting; published by sample
	progressET model.EpochTabled
}

type coreState struct {
	id      int
	ops     []trace.Op
	pc      int
	pstores int // persistent stores issued so far (token origin index)
	finish  sim.Cycles
	done    bool

	waitingLock bool // a "lock wait" trace span is open for this core

	// stepFn, dfenceDoneFn and relDoneFn are the core's resume callbacks,
	// built once at construction and passed to the model as done-callbacks
	// so the per-op path allocates no closures. Each core has at most one
	// op in flight, so a single callback per core suffices.
	stepFn       func()
	dfenceDoneFn func()
	relDoneFn    func()

	// pendLine/pendToken stage the persistent store issued when the pending
	// mEvPStore event fires. Valid because the core is serial: no second
	// store can be staged before the event dispatches.
	pendLine  mem.Line
	pendToken mem.Token

	// relLine/relTS stage the lock release in flight (mEvRelease plus the
	// model's Release continuation); handoffLine stages the lock line of a
	// contended acquire handed to this core (mEvHandoff). One of each can
	// be pending per core: releases are ops of the serial core, and a core
	// receiving a handoff is parked on that acquire.
	relLine     mem.Line
	relTS       uint64
	handoffLine mem.Line
}

type lockState struct {
	held    bool
	holder  int
	waiters []*coreState
}

// New builds a machine running the named model over the trace. The trace
// may use at most cfg.Cores threads.
func New(cfg config.Config, modelName string, tr *trace.Trace) (*Machine, error) {
	return NewSharded(cfg, modelName, tr, 1)
}

// Lookahead is the conservative window width of a sharded machine: the
// minimum modeled latency of any cross-domain interaction. Every CPU↔MC
// message crosses the Link at FlushLat (flush deliveries) or MsgLat
// (commits, replies, demand-read and eviction-classify accounting), so
// the window is their minimum and every send made inside a window is
// stamped at or beyond the next barrier.
func Lookahead(cfg config.Config) sim.Cycles {
	if cfg.FlushLat < cfg.MsgLat {
		return cfg.FlushLat
	}
	return cfg.MsgLat
}

// EffectiveShards reports how many timing domains a machine built with
// NewSharded(cfg, modelName, tr, shards) actually runs. A result of 1
// means the serial engine.
//
// The map is CPU | MCs: domain 0 hosts the cores, caches, locks and the
// model (they share one LLC and directory and cannot split), domain 1
// hosts every memory controller. More MC domains would dispatch — but
// not reproduce serial results: result-identity rests on the watermark
// merge (sim.Engine.ArriveOp), which places each receiver's arrivals
// exactly where the serial engine would have, and that placement is only
// total when a receiver's same-cycle arrivals come from one sending
// domain. Split the MCs and two controllers' same-cycle replies reach
// the CPU from different domains; their serial order is a global
// schedule sequence no parallel execution can reconstruct (measured: a
// few-cycle result drift on the ASAP models). So requests above 2 clamp
// to 2, and models that require synchronous controller access
// (model.Shardable) collapse to 1.
func EffectiveShards(cfg config.Config, modelName string, shards int) int {
	if shards < 2 || !model.Shardable(modelName) {
		return 1
	}
	if os.Getenv("ASAP_DET") == "1" {
		return 1 // global kill switch: force the byte-identical serial engine
	}
	return 2
}

// Sharded reports whether the machine runs on a multi-domain cluster
// (EffectiveShards > 1). Tracing, timelines and crash injection are
// unavailable on sharded machines; callers gate on this.
func (m *Machine) Sharded() bool { return m.cluster != nil }

// Trace returns the trace this machine replays. Machines only read it, and
// checkpoint images embed it so a restored machine replays the same ops.
func (m *Machine) Trace() *trace.Trace { return m.tr }

// HasObservers reports whether any observability sink (tracer, timeline,
// progress gauge) is attached. Checkpoint images exclude observer history —
// rolling it back would falsify the record of the run so far — so saving an
// observed machine is refused rather than silently dropping its sinks.
func (m *Machine) HasObservers() bool {
	return m.trc != nil || m.timeline != nil || m.progress != nil
}

// NewSharded builds a machine split across shards timing domains (clamped
// by EffectiveShards; 0 or 1 builds the ordinary serial machine, which is
// byte-identical to New). Parallel runs dispatch the same events with the
// same simulated timestamps as serial ones and produce the same results
// (pinned by TestShardedDifferential); only the interleaving of same-cycle
// work across domains differs. Tracing, timelines, and crash injection
// require the serial engine.
func NewSharded(cfg config.Config, modelName string, tr *trace.Trace, shards int) (*Machine, error) {
	cfg.Validate()
	if tr.NumThreads() > cfg.Cores {
		return nil, fmt.Errorf("machine: trace has %d threads but config has %d cores", tr.NumThreads(), cfg.Cores)
	}
	eff := EffectiveShards(cfg, modelName, shards)
	var (
		eng     *sim.Engine
		cluster *sim.Cluster
	)
	if eff > 1 {
		cluster = sim.NewCluster(eff, Lookahead(cfg))
		eng = cluster.Domain(0)
	} else {
		eng = sim.NewEngine()
	}
	st := stats.New()
	m := &Machine{
		Eng:    eng,
		Cfg:    cfg,
		Hier:   cache.NewHierarchy(cfg),
		IL:     mem.NewInterleaver(cfg.MCs, cfg.InterleaveBytes),
		St:     st,
		Ledger: NewLedger(),
		locks:  make(map[mem.Line]*lockState),
		pm:     newPMFilter(tr),

		cWbbParked:           st.Counter(kWbbParked),
		cWbbFullStalls:       st.Counter(kWbbFullStalls),
		cLLCEvictionsDelayed: st.Counter(kLLCEvictionsDelayed),
		cPMLinesDropped:      st.Counter(kPMLinesDropped),
		cLockContended:       st.Counter(kLockContended),
		cCyclesBlocked:       st.Counter(kCyclesBlocked),
		cSampledCycles:       st.Counter(kCoreSampledCycles),
	}
	m.cluster = cluster
	m.tr = tr
	spec := model.Speculative(modelName)
	m.MCs = make([]*persist.MC, cfg.MCs)
	if cluster != nil {
		// Every controller lives on domain 1 (see EffectiveShards), with
		// a private stat set merged into St after the run.
		m.mcSts = make([]*stats.Set, eff)
		mcDomain := make([]int, cfg.MCs)
		for i := range m.MCs {
			d := 1 + i%(eff-1)
			mcDomain[i] = d
			if m.mcSts[d] == nil {
				m.mcSts[d] = stats.New()
			}
			m.MCs[i] = persist.NewMC(i, cluster.Domain(d), cfg, spec, m.mcSts[d])
		}
		m.link = persist.NewCrossLink(cluster, cfg, m.MCs, mcDomain)
	} else {
		for i := range m.MCs {
			m.MCs[i] = persist.NewMC(i, eng, cfg, spec, st)
		}
		m.link = persist.NewLink(eng, cfg, m.MCs)
	}
	mdl, err := model.New(modelName, model.Env{
		Eng:    eng,
		Cfg:    cfg,
		MCs:    m.MCs,
		IL:     m.IL,
		Dir:    m.Hier.Directory(),
		St:     st,
		Ledger: m.Ledger,
		Link:   m.link,
	})
	if err != nil {
		return nil, err
	}
	m.Model = mdl
	m.cores = make([]*coreState, tr.NumThreads())
	m.wbbs = make([]*persist.WBB, tr.NumThreads())
	m.wbbPreds = make([]func(mem.Line) bool, tr.NumThreads())
	for i := range m.cores {
		c := &coreState{id: i, ops: tr.Threads[i]}
		c.stepFn = func() { m.step(c) }
		c.dfenceDoneFn = func() {
			if m.trc != nil {
				m.trc.End(m.coreTracks[c.id])
			}
			m.step(c)
		}
		c.relDoneFn = func() { m.finishRelease(c) }
		m.cores[i] = c
		m.wbbs[i] = persist.NewWBB(16)
		i := i
		m.wbbPreds[i] = func(l mem.Line) bool { return !m.Model.PBHasLine(i, l) }
	}
	if cluster == nil {
		// Fix the engine's typed-event receiver table in construction order
		// (machine, model, controllers, link) instead of first-schedule
		// order. Dispatch is ordered by (when, seq) alone, so slot indices
		// never affect results — but checkpoint images reference receivers
		// by index, and a canonical order makes the table identical between
		// the machine that saved an image and the machine restoring it.
		eng.RegisterOp(m)
		if op, ok := mdl.(sim.EventOp); ok {
			eng.RegisterOp(op)
		}
		for _, mc := range m.MCs {
			eng.RegisterOp(mc)
		}
		eng.RegisterOp(m.link)
	}
	return m, nil
}

// RunEvent dispatches the machine's typed events.
func (m *Machine) RunEvent(kind int, arg uint64) {
	switch kind {
	case mEvStep:
		m.step(m.cores[arg])
	case mEvPStore:
		c := m.cores[arg]
		m.Model.Store(c.id, c.pendLine, c.pendToken, c.stepFn)
	case mEvOfence:
		m.Model.Ofence(int(arg), m.cores[arg].stepFn)
	case mEvDfence:
		c := m.cores[arg]
		if m.trc != nil {
			m.trc.Begin(m.coreTracks[c.id], "dfence")
		}
		m.Model.Dfence(c.id, c.dfenceDoneFn)
	case mEvRelease:
		c := m.cores[arg]
		m.Model.Release(c.id, c.relLine, c.relDoneFn) //asaplint:ignore alloccheck lock release is contention-only, cold next to the per-access path
	case mEvHandoff:
		c := m.cores[arg]
		m.finishAcquire(c, c.handoffLine)
	case mEvSample:
		m.sample() //asaplint:ignore alloccheck periodic sampler fires once per SampleInterval, amortized off the per-op path
	case mEvTimeline:
		m.timelineTick() //asaplint:ignore alloccheck interval-paced timeline row; off unless -timeline is set
	default:
		panic(fmt.Sprintf("machine: unknown event kind %d", kind))
	}
}

// WBB returns the core's write-back buffer (§V-F), which parks LLC
// evictions of lines whose writes are still queued in the persist buffer.
func (m *Machine) WBB(core int) *persist.WBB { return m.wbbs[core] }

// AttachTracer wires tr through every layer of the machine: core tracks
// (dfence and lock-wait spans), the model's persist path, the memory
// controllers with their WPQ/RT/XPBuffer/NVM, the write-back buffers, and
// an engine track counting event dispatches. Call before Run; tracing left
// unattached costs one nil comparison per hook site.
func (m *Machine) AttachTracer(tr obs.Tracer) {
	if m.cluster != nil {
		panic("machine: tracing requires the serial engine (build with shards=1)")
	}
	m.trc = tr
	m.coreTracks = make([]obs.TrackID, len(m.cores))
	for i := range m.cores {
		// Cores at even sort indices so each core's persist-path track
		// (2*i+1, allocated by the model) sits directly beneath it.
		m.coreTracks[i] = tr.Track(fmt.Sprintf("core%d", i), 2*i)
	}
	m.engTrack = tr.Track("engine", 1000)
	if t, ok := m.Model.(model.Traced); ok {
		t.AttachTracer(tr)
	}
	for _, mc := range m.MCs {
		mc.AttachTracer(tr)
	}
	for i, wbb := range m.wbbs {
		wbb.AttachTracer(tr, m.coreTracks[i])
	}
}

// AttachProgress wires a progress sink into the machine: the periodic
// sampler publishes a full snapshot — simulated clock, events dispatched,
// ops retired, persist-buffer and epoch-table occupancy, and the
// wall-clock simulation rate — through p every SampleInterval cycles, so
// concurrent readers (asapd's status endpoint and SSE stream) can watch
// an in-flight run advance without racing the single-goroutine machine.
// Call before Run; the cost is a seqlock publish per sample period (a few
// uncontended atomic stores), allocation-free, and nothing on the per-op
// path when unattached.
func (m *Machine) AttachProgress(p *obs.Progress) {
	m.progress = p
	m.progressET, _ = m.Model.(model.EpochTabled)
}

// publishProgress assembles and publishes one progress snapshot. Called
// only from the sampler (and once more at its first post-completion
// firing, so the final cycle count lands), and only when a sink is
// attached.
func (m *Machine) publishProgress() {
	var ops, pb uint64
	for _, c := range m.cores {
		ops += uint64(c.pc)
		pb += uint64(m.Model.PBOccupancy(c.id))
	}
	var et uint64
	if m.progressET != nil {
		for _, c := range m.cores {
			et += uint64(m.progressET.ETLen(c.id))
		}
	}
	m.progress.Publish(m.Eng.Now(), m.Eng.Dispatched(), ops, pb, et)
}

// EnableTimeline starts periodic occupancy sampling into a CSV timeline:
// one row every interval cycles (0 = obs.DefaultTimelineInterval) with
// per-core persist-buffer occupancy, per-core epoch-table size (models
// implementing model.EpochTabled), per-MC WPQ depth, and per-MC
// recovery-table occupancy. Call before Run; the returned timeline is
// filled during the run and serialized by the caller.
func (m *Machine) EnableTimeline(interval sim.Cycles) *obs.Timeline {
	if m.cluster != nil {
		panic("machine: timelines require the serial engine (build with shards=1)")
	}
	_, m.tlETs = m.Model.(model.EpochTabled)
	var cols []string
	for i := range m.cores {
		cols = append(cols, fmt.Sprintf("pb%d", i))
	}
	if m.tlETs {
		for i := range m.cores {
			cols = append(cols, fmt.Sprintf("et%d", i))
		}
	}
	for j := range m.MCs {
		cols = append(cols, fmt.Sprintf("wpq%d", j))
	}
	for j, mc := range m.MCs {
		if mc.RT != nil {
			cols = append(cols, fmt.Sprintf("rt%d", j))
		}
	}
	m.timeline = obs.NewTimeline(interval, cols...)
	return m.timeline
}

// timelineTick appends one occupancy row and reschedules itself.
func (m *Machine) timelineTick() {
	if m.allDone() || m.Eng.Halted() {
		return
	}
	vals := m.tlVals[:0]
	for _, c := range m.cores {
		vals = append(vals, uint64(m.Model.PBOccupancy(c.id)))
	}
	if m.tlETs {
		et := m.Model.(model.EpochTabled)
		for _, c := range m.cores {
			vals = append(vals, uint64(et.ETLen(c.id)))
		}
	}
	for _, mc := range m.MCs {
		vals = append(vals, uint64(mc.WPQ.Len()))
	}
	for _, mc := range m.MCs {
		if mc.RT != nil {
			vals = append(vals, uint64(mc.RT.Occupancy()))
		}
	}
	m.tlVals = vals
	m.timeline.Append(m.Eng.Now(), vals...)
	m.Eng.AfterOp(m.timeline.Interval(), m, mEvTimeline, 0)
}

// ScheduleCrash arranges a power failure at the given cycle: the ADR logic
// runs (WPQ drain plus undo-record write-back) and the simulation halts.
func (m *Machine) ScheduleCrash(at sim.Cycles) {
	if m.cluster != nil {
		panic("machine: crash injection requires the serial engine (build with shards=1)")
	}
	m.crashAt = at
	//asaplint:ignore schedcheck one crash event per experiment, cold
	m.Eng.At(at, func() {
		m.Crashed = true
		if m.trc != nil {
			m.trc.Instant(m.engTrack, "crash")
		}
		for _, mc := range m.MCs {
			mc.CrashFlush()
		}
		m.Eng.Halt()
	})
}

// Result summarizes one run.
type Result struct {
	ModelName string
	Cycles    sim.Cycles // max per-core finish time (execution time)
	PerCore   []sim.Cycles
	Stats     *stats.Set
	PMWrites  uint64 // media writes across all controllers (Figure 9)
	PMReads   uint64
	RTMaxOcc  int // max recovery-table occupancy across MCs (Figure 12)
	WPQMaxOcc int
	Crashed   bool
}

// Start schedules the initial events — one step per core, the sampler, and
// the timeline tick if enabled — without dispatching anything. Run calls it
// implicitly; the checkpoint/crash drivers call it before Advance so a
// capture at cycle zero already contains the bootstrap events. Start is
// idempotent: the first call wins, later calls are no-ops.
func (m *Machine) Start() {
	if m.started {
		return
	}
	m.started = true
	for _, c := range m.cores {
		m.Eng.AfterOp(0, m, mEvStep, uint64(c.id))
	}
	m.Eng.AfterOp(SampleInterval, m, mEvSample, 0)
	if m.timeline != nil {
		m.Eng.AfterOp(m.timeline.Interval(), m, mEvTimeline, 0)
	}
}

// Run starts all cores and dispatches events until every core drains (and
// the controllers go idle), a scheduled crash fires, or limit cycles pass
// (0 = no limit). It returns the run summary.
func (m *Machine) Run(limit sim.Cycles) Result {
	m.Start()
	if m.cluster != nil {
		m.cluster.Run(limit)
	} else {
		m.Eng.Run(limit)
	}
	return m.result()
}

// Advance runs the machine through cycle `to` and stops with the clock
// exactly there: every event at or before `to` has fired, none after. It is
// the incremental form of Run for checkpoint captures and forked crash
// campaigns, and requires the serial engine (sharded machines advance only
// in lookahead windows). Calling it with a cycle already in the past is a
// no-op beyond clock normalization.
func (m *Machine) Advance(to sim.Cycles) {
	if m.cluster != nil {
		panic("machine: Advance requires the serial engine (build with shards=1)")
	}
	m.Start()
	m.Eng.RunUntil(to)
}

// CrashNow injects a power failure at cycle `at` synchronously: it advances
// through cycle at-1, moves the clock to `at` without dispatching the
// events scheduled there, and performs the ADR crash sequence (WPQ drain
// plus undo write-back on every controller, then halt). The machine ends in
// exactly the state a ScheduleCrash(at)+Run(0) pair produces — the
// scheduled crash event carried sequence number zero, so it too fired
// before any same-cycle work (pinned by TestCrashNowEquivalence) — but
// without dedicating a heap slot from construction, which is what lets a
// forked campaign decide the crash cycle after the prefix has already run.
func (m *Machine) CrashNow(at sim.Cycles) {
	if m.cluster != nil {
		panic("machine: crash injection requires the serial engine (build with shards=1)")
	}
	if at == 0 {
		panic("machine: crash at cycle 0 precedes all work")
	}
	m.Advance(at - 1)
	m.Eng.JumpTo(at)
	m.crashAt = at
	m.Crashed = true
	if m.trc != nil {
		m.trc.Instant(m.engTrack, "crash")
	}
	for _, mc := range m.MCs {
		mc.CrashFlush()
	}
	m.Eng.Halt()
}

func (m *Machine) result() Result {
	if m.cluster != nil && !m.merged {
		// Fold the MC domains' private stat sets and eviction-classify
		// counts into the CPU domain's set, once; the workers have joined,
		// so the reads are quiescent.
		m.merged = true
		for _, st := range m.mcSts {
			if st != nil {
				m.St.Merge(st)
			}
		}
		var delayed, dropped uint64
		for _, mc := range m.MCs {
			d, dr := mc.EvictionCounts()
			delayed += d
			dropped += dr
		}
		if delayed > 0 {
			m.cLLCEvictionsDelayed.Add(delayed)
		}
		if dropped > 0 {
			m.cPMLinesDropped.Add(dropped)
		}
	}
	res := Result{
		ModelName: m.Model.Name(),
		Stats:     m.St,
		PerCore:   make([]sim.Cycles, len(m.cores)),
		Crashed:   m.Crashed,
	}
	for i, c := range m.cores {
		res.PerCore[i] = c.finish
		if c.finish > res.Cycles {
			res.Cycles = c.finish
		}
	}
	if !m.allDone() && !m.Crashed {
		// Ran into the limit; report the clock so callers notice.
		res.Cycles = m.Eng.Now()
	}
	for _, mc := range m.MCs {
		res.PMWrites += mc.NVM.Writes()
		res.PMReads += mc.NVM.Reads()
		if mc.RT != nil && mc.RT.MaxOccupancy() > res.RTMaxOcc {
			res.RTMaxOcc = mc.RT.MaxOccupancy()
		}
		if mc.WPQ.MaxOccupancy() > res.WPQMaxOcc {
			res.WPQMaxOcc = mc.WPQ.MaxOccupancy()
		}
	}
	return res
}

func (m *Machine) allDone() bool { return m.finished == len(m.cores) }

// step executes the next op of core c.
func (m *Machine) step(c *coreState) {
	if m.Eng.Halted() || c.done {
		return
	}
	if c.pc >= len(c.ops) {
		//asaplint:ignore alloccheck drain completion fires once per core at end of trace
		m.Model.StartDrain(c.id, func() {
			c.done = true
			c.finish = m.Eng.Now()
			m.finished++
		})
		return
	}
	op := c.ops[c.pc]
	c.pc++
	core := uint64(c.id)

	switch op.Kind {
	case trace.OpCompute:
		m.Eng.AfterOp(sim.Cycles(op.N), m, mEvStep, core)

	case trace.OpLoad:
		line := mem.LineOf(op.Addr)
		res := m.access(c.id, line, false, false)
		m.Eng.AfterOp(res.Latency+m.Cfg.LoadCost, m, mEvStep, core)

	case trace.OpStore:
		line := mem.LineOf(op.Addr)
		m.access(c.id, line, true, false)
		// Stores retire through the store buffer: the 8-way OoO cores of
		// Table II hide write-allocate miss latency, so the core is
		// charged only the L1 write port. The cache state (fills,
		// invalidations, evictions) still updates above, and the persist
		// path sees the write immediately.
		lat := m.Cfg.L1Hit + m.Cfg.StoreCost
		if op.Persistent {
			m.pm.mark(line)
			m.tokenSeq++
			m.Ledger.SetOrigin(m.tokenSeq, Origin{Thread: c.id, Seq: c.pstores})
			c.pstores++
			c.pendLine, c.pendToken = line, m.tokenSeq
			m.Eng.AfterOp(lat, m, mEvPStore, core)
		} else {
			m.Eng.AfterOp(lat, m, mEvStep, core)
		}

	case trace.OpOfence:
		m.Eng.AfterOp(m.Cfg.FenceCost, m, mEvOfence, core)

	case trace.OpDfence:
		m.Eng.AfterOp(m.Cfg.FenceCost, m, mEvDfence, core)

	case trace.OpAcquire:
		m.acquire(c, mem.LineOf(op.Addr))

	case trace.OpRelease:
		m.release(c, mem.LineOf(op.Addr))

	case trace.OpStrand:
		// Strand boundaries are free for models without strand support:
		// their epoch ordering is a conservative superset (§VII-E).
		if sm, ok := m.Model.(model.StrandModel); ok {
			sm.Strand(c.id)
		}
		m.Eng.AfterOp(1, m, mEvStep, core)

	default:
		panic(fmt.Sprintf("machine: unknown op kind %v", op.Kind))
	}
}

// access runs one hierarchy access, reports conflicts to the model, and
// handles LLC evictions of persistent lines. The result aliases hierarchy
// scratch and is valid only until the next access.
func (m *Machine) access(core int, line mem.Line, write, acq bool) *cache.AccessResult {
	res := m.Hier.Access(core, line, write, acq, m.Model.CurrentTS(core))
	if res.Level == cache.LevelMem {
		// Demand fill from the media: account the PM read (Figure 9's
		// read traffic baseline against which undo reads add ~5%). On a
		// sharded machine the controller's NVM belongs to another domain,
		// so the accounting crosses the Link instead.
		if m.cluster == nil {
			m.MCs[m.IL.Home(line)].NVM.Read(line)
		} else {
			m.link.DemandRead(m.IL.Home(line), line)
		}
	}
	if res.Conflict != nil {
		m.Model.Conflict(core, res.Conflict)
	}
	for i, ev := range res.LLCEvicted {
		if !m.pm.has(ev) {
			continue // volatile line: ordinary DRAM write-back, not modelled
		}
		// Persistent lines are dropped on LLC eviction (the persist path
		// owns durability, §V-A) — unless the line's writes are still
		// queued in the owner's persist buffer, in which case the
		// write-back buffer parks the eviction (§V-F), or the MC's Bloom
		// filter says a NACKed flush still holds the newest value. The
		// hierarchy captured the last writer during the eviction, so no
		// second directory probe is needed here.
		if w := res.LLCEvictedWriter[i]; w >= 0 && w < len(m.wbbs) &&
			m.Model.PBHasLine(w, ev) {
			if m.wbbs[w].Park(ev, 0) {
				m.cWbbParked.Inc()
			} else {
				m.cWbbFullStalls.Inc()
			}
			continue
		}
		if m.cluster != nil {
			// The Bloom filter lives with its controller on another
			// domain: the classification crosses the Link and the MC
			// counts it (merged back in result). The filter is consulted
			// MsgLat later than serial, so the delayed/dropped split can
			// differ; the differential suite compares the pair's sum.
			m.link.ClassifyEviction(m.IL.Home(ev), ev)
			continue
		}
		mc := m.MCs[m.IL.Home(ev)]
		if mc.Bloom != nil && mc.Bloom.MaybeContains(ev) {
			m.cLLCEvictionsDelayed.Inc()
		} else {
			m.cPMLinesDropped.Inc()
		}
	}
	return res
}

// acquire takes the spinlock at line, parking the core when held.
func (m *Machine) acquire(c *coreState, line mem.Line) {
	lk := m.lock(line)
	if lk.held {
		m.cLockContended.Inc()
		if m.trc != nil {
			m.trc.Begin(m.coreTracks[c.id], "lock wait")
			c.waitingLock = true
		}
		lk.waiters = append(lk.waiters, c) //asaplint:ignore alloccheck contention-only; bounded by core count, backing array reaches it once
		return                             // release hands off and resumes us
	}
	lk.held = true
	lk.holder = c.id
	m.finishAcquire(c, line)
}

// finishAcquire performs the lock-line read with acquire semantics and
// resumes the core.
func (m *Machine) finishAcquire(c *coreState, line mem.Line) {
	if c.waitingLock {
		if m.trc != nil {
			m.trc.End(m.coreTracks[c.id])
		}
		c.waitingLock = false
	}
	res := m.access(c.id, line, false, true)
	m.Model.Acquire(c.id, line)
	m.Eng.AfterOp(res.Latency+m.Cfg.LoadCost, m, mEvStep, uint64(c.id))
}

// release runs the model's release work (epoch close, or flush+fence on the
// baseline), then performs the lock-line store, tags the release epoch in
// the directory, and hands the lock to the next waiter. The whole chain is
// staged in coreState fields and driven by typed events plus the
// construction-time relDoneFn — lock-heavy workloads release constantly,
// and the closure form this replaced was a double-digit share of Fig8's
// allocations.
func (m *Machine) release(c *coreState, line mem.Line) {
	c.relLine = line
	c.relTS = m.Model.CurrentTS(c.id)
	m.Eng.AfterOp(m.Cfg.FenceCost, m, mEvRelease, uint64(c.id))
}

// finishRelease is the model's release-done continuation: the lock-line
// store, directory release tag, and lock handoff.
func (m *Machine) finishRelease(c *coreState) {
	line := c.relLine
	res := m.access(c.id, line, true, false)
	m.Hier.Directory().MarkRelease(c.id, line, c.relTS)

	lk := m.lock(line)
	if !lk.held || lk.holder != c.id {
		panic("machine: release of a lock not held by this core")
	}
	if len(lk.waiters) > 0 {
		next := lk.waiters[0]
		lk.waiters = lk.waiters[1:]
		lk.holder = next.id
		next.handoffLine = line
		m.Eng.AfterOp(m.Cfg.RemoteXfer, m, mEvHandoff, uint64(next.id))
	} else {
		lk.held = false
	}
	m.Eng.AfterOp(res.Latency+m.Cfg.StoreCost, m, mEvStep, uint64(c.id))
}

func (m *Machine) lock(line mem.Line) *lockState {
	lk, ok := m.locks[line]
	if !ok {
		lk = &lockState{}  //asaplint:ignore alloccheck one lockState per distinct lock line in the workload
		m.locks[line] = lk //asaplint:ignore alloccheck map bounded by the workload's lock-line footprint
	}
	return lk
}

// sample periodically records persist-buffer occupancy (Figure 11), blocked
// flushing (Figure 3), and recovery-table occupancy, until all cores finish.
func (m *Machine) sample() {
	if m.progress != nil {
		m.publishProgress()
	}
	if m.allDone() || m.Eng.Halted() {
		return
	}
	for _, c := range m.cores {
		if c.done {
			continue
		}
		m.St.Observe("pbOccupancy", uint64(m.Model.PBOccupancy(c.id)))
		if m.Model.PBBlocked(c.id) {
			m.cCyclesBlocked.Add(uint64(SampleInterval))
		}
		m.cSampledCycles.Add(uint64(SampleInterval))
		if m.trc != nil {
			m.trc.Counter(m.coreTracks[c.id], "pbOcc", int64(m.Model.PBOccupancy(c.id)))
		}
	}
	if m.trc != nil {
		m.trc.Counter(m.engTrack, "events", int64(m.Eng.Dispatched()))
	}
	// Recovery-table occupancy lives with the controllers; on a sharded
	// machine the sampler must not read another domain's state mid-run,
	// so the rtOccupancy distribution is serial-only (it feeds Figure 12
	// exploration, not the golden tables).
	if m.cluster == nil {
		for _, mc := range m.MCs {
			if mc.RT != nil {
				m.St.Observe("rtOccupancy", uint64(mc.RT.Occupancy()))
			}
		}
	}
	// Lazily release parked write-back-buffer evictions whose persist
	// buffer entries have since flushed.
	for i, wbb := range m.wbbs {
		if wbb.Len() > 0 {
			wbb.ReleaseIf(m.wbbPreds[i])
		}
	}
	m.Eng.AfterOp(SampleInterval, m, mEvSample, 0)
}
