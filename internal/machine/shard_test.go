package machine

import (
	"testing"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/stats"
	"asap/internal/workload"
)

// diffParams keeps the differential matrix affordable: every workload ×
// model × shard-count combination runs, so each single run is small.
func diffParams() workload.Params {
	return workload.Params{Threads: 4, OpsPerThread: 80, KeyRange: 1024, ValueSize: 32, Seed: 7}
}

// runSharded executes one workload × model pair at the given shard count
// and returns the result. shards == 1 is the serial reference engine.
func runSharded(t *testing.T, wl, mdl string, shards int) Result {
	t.Helper()
	tr, err := workload.Generate(wl, diffParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSharded(config.Default(), mdl, tr, shards)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run(500_000_000)
	if !m.allDone() {
		t.Fatalf("%s/%s shards=%d did not finish (cycle %d, finished %d/%d)",
			wl, mdl, shards, m.Eng.Now(), m.finished, len(m.cores))
	}
	return res
}

// counterSnapshot flattens a run's counters for comparison. The LLC
// eviction classification (delayed behind the Bloom filter vs dropped)
// is consulted MsgLat later on a sharded machine, so only the pair's sum
// is shard-invariant; the snapshot folds the two into one key.
func counterSnapshot(st *stats.Set) map[string]uint64 {
	out := make(map[string]uint64)
	for _, cv := range st.CounterValues() {
		out[cv.Name] = cv.Value
	}
	evictions := out["llcEvictionsDelayed"] + out["pmLinesDropped"]
	delete(out, "llcEvictionsDelayed")
	delete(out, "pmLinesDropped")
	if evictions > 0 {
		out["evictionsClassified"] = evictions
	}
	return out
}

// distSnapshot flattens a run's distributions, dropping rtOccupancy: the
// recovery tables live on MC domains, so the sampler only observes them
// on the serial engine.
func distSnapshot(st *stats.Set) map[string]stats.DistValue {
	out := make(map[string]stats.DistValue)
	for _, dv := range st.DistValues() {
		if dv.Name == "rtOccupancy" {
			continue
		}
		out[dv.Name] = dv
	}
	return out
}

// compareRuns asserts that a sharded run reproduced the serial result:
// same execution time, same per-core finish times, same media traffic and
// high-water marks, same counters, same distributions.
func compareRuns(t *testing.T, label string, serial, sharded Result) {
	t.Helper()
	if serial.Cycles != sharded.Cycles {
		t.Errorf("%s: cycles diverged: serial %d, sharded %d", label, serial.Cycles, sharded.Cycles)
	}
	for i := range serial.PerCore {
		if serial.PerCore[i] != sharded.PerCore[i] {
			t.Errorf("%s: core %d finish diverged: serial %d, sharded %d",
				label, i, serial.PerCore[i], sharded.PerCore[i])
		}
	}
	if serial.PMWrites != sharded.PMWrites || serial.PMReads != sharded.PMReads {
		t.Errorf("%s: media traffic diverged: serial %d/%d writes/reads, sharded %d/%d",
			label, serial.PMWrites, serial.PMReads, sharded.PMWrites, sharded.PMReads)
	}
	if serial.RTMaxOcc != sharded.RTMaxOcc {
		t.Errorf("%s: RT max occupancy diverged: serial %d, sharded %d", label, serial.RTMaxOcc, sharded.RTMaxOcc)
	}
	if serial.WPQMaxOcc != sharded.WPQMaxOcc {
		t.Errorf("%s: WPQ max occupancy diverged: serial %d, sharded %d", label, serial.WPQMaxOcc, sharded.WPQMaxOcc)
	}
	sc, pc := counterSnapshot(serial.Stats), counterSnapshot(sharded.Stats)
	for name, v := range sc {
		if pv, ok := pc[name]; !ok || pv != v {
			t.Errorf("%s: counter %s diverged: serial %d, sharded %d", label, name, v, pv)
		}
	}
	for name := range pc {
		if _, ok := sc[name]; !ok {
			t.Errorf("%s: counter %s touched only by the sharded run (%d)", label, name, pc[name])
		}
	}
	sd, pd := distSnapshot(serial.Stats), distSnapshot(sharded.Stats)
	for name, v := range sd {
		if pv, ok := pd[name]; !ok || pv != v {
			t.Errorf("%s: dist %s diverged: serial %+v, sharded %+v", label, name, v, pv)
		}
	}
}

// TestShardedSmoke pins one pair end to end before the full matrix runs.
func TestShardedSmoke(t *testing.T) {
	serial := runSharded(t, "cceh", model.NameASAPEP, 1)
	sharded := runSharded(t, "cceh", model.NameASAPEP, 4)
	compareRuns(t, "cceh/asap_ep/4", serial, sharded)
}

// TestShardedDifferential is the tentpole contract: every workload ×
// model pair, at 2, 4 and 8 requested shards, must reproduce the serial
// engine's results exactly — execution time, per-core finish times, media
// traffic, high-water marks, counters and sampled distributions. Models
// that are not shardable (vorpal) fall back to the serial engine and
// compare trivially; that fallback staying silent and correct is part of
// the contract.
func TestShardedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload × model × shards matrix")
	}
	for _, wl := range workload.Names() {
		for _, mdl := range model.ExtendedNames() {
			wl, mdl := wl, mdl
			t.Run(wl+"/"+mdl, func(t *testing.T) {
				t.Parallel()
				serial := runSharded(t, wl, mdl, 1)
				for _, shards := range []int{2, 4, 8} {
					sharded := runSharded(t, wl, mdl, shards)
					compareRuns(t, wl+"/"+mdl+"/"+itoa(shards), serial, sharded)
				}
			})
		}
	}
}

func itoa(n int) string { return string(rune('0' + n)) }
