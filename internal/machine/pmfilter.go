package machine

import (
	"asap/internal/mem"
	"asap/internal/trace"
)

// pmFilterMaxSpan caps the dense-bitset representation of pmFilter at 2^27
// lines (8 GiB of PM, a 16 MiB bitset). Real workloads allocate from a
// contiguous PM heap well under this; a pathological trace spanning more
// falls back to a map so correctness never depends on layout.
const pmFilterMaxSpan = 1 << 27

// pmFilter answers "is this line persistent memory?" on the LLC-eviction
// path. The previous representation was a map[mem.Line]bool probed once per
// evicted line; this is a bitset over the persistent address range observed
// in the trace — two compares and a bit test. The range is fixed by a
// pre-scan at construction, but membership is still marked at run time as
// each persistent store issues, so stats that depend on when a line became
// persistent are unchanged.
type pmFilter struct {
	base mem.Line
	span uint64
	bits []uint64
	// over is the fallback when the trace's persistent footprint exceeds
	// pmFilterMaxSpan lines; nil whenever bits is in use.
	over map[mem.Line]bool
}

// newPMFilter sizes the filter from the trace's persistent-store footprint.
func newPMFilter(tr *trace.Trace) pmFilter {
	var lo, hi mem.Line
	seen := false
	for _, ops := range tr.Threads {
		for i := range ops {
			op := &ops[i]
			if op.Kind != trace.OpStore || !op.Persistent {
				continue
			}
			l := mem.LineOf(op.Addr)
			if !seen {
				lo, hi, seen = l, l, true
			} else if l < lo {
				lo = l
			} else if l > hi {
				hi = l
			}
		}
	}
	if !seen {
		return pmFilter{}
	}
	span := uint64(hi-lo) + 1
	if span > pmFilterMaxSpan {
		return pmFilter{over: make(map[mem.Line]bool)}
	}
	return pmFilter{
		base: lo,
		span: span,
		bits: make([]uint64, (span+63)/64),
	}
}

// mark records line l as persistent. Only lines inside the pre-scanned
// range are ever marked (marks come from the same trace ops the scan saw).
func (f *pmFilter) mark(l mem.Line) {
	if f.bits != nil {
		off := uint64(l - f.base)
		f.bits[off>>6] |= 1 << (off & 63)
		return
	}
	if f.over != nil {
		f.over[l] = true //asaplint:ignore alloccheck overflow map bounded by the workload's PM-line footprint
	}
}

// has reports whether line l has carried a persistent store.
func (f *pmFilter) has(l mem.Line) bool {
	if f.bits != nil {
		if l < f.base {
			return false
		}
		off := uint64(l - f.base)
		return off < f.span && f.bits[off>>6]&(1<<(off&63)) != 0
	}
	return f.over != nil && f.over[l]
}
