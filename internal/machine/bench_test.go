package machine

import (
	"testing"

	"asap/internal/config"
)

// BenchmarkMachineOps measures end-to-end op dispatch through a full
// machine running the ASAP model — core tick, cache access, persist-path
// scheduling and controller service — reported per trace op. This is the
// composite figure the hot-path allocation purge targets; benchdiff gates
// its ns/op and allocs/op.
func BenchmarkMachineOps(b *testing.B) {
	tr := smallTrace(4, 2000, 7)
	ops := tr.TotalOps()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		b.StopTimer()
		m, err := New(config.Default(), "asap_ep", tr)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		m.Run(0)
		n += ops
	}
}
