package machine

import (
	"testing"
	"testing/quick"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/rng"
	"asap/internal/trace"
)

// genTrace builds a pseudo-random trace from a compact recipe, shared by the
// property tests below.
func genTrace(seed uint64, threads, ops int) *trace.Trace {
	r := rng.New(seed)
	tr := &trace.Trace{Name: "prop"}
	const (
		pmBase = 1 << 30
		nLocks = 3
	)
	for t := 0; t < threads; t++ {
		var b trace.Builder
		for i := 0; i < ops; i++ {
			switch r.Intn(12) {
			case 0, 1, 2:
				b.StoreP(uint64(pmBase + t<<16 + r.Intn(24)*64))
			case 3:
				b.StoreP(uint64(pmBase + 1<<22 + r.Intn(8)*64)) // shared
			case 4:
				lock := uint64(1<<20 + r.Intn(nLocks)*64)
				b.Acquire(lock)
				b.StoreP(uint64(pmBase + 1<<23 + r.Intn(6)*64))
				b.Ofence()
				b.StoreP(uint64(pmBase + 1<<23 + 8*64))
				b.Release(lock)
			case 5:
				b.Ofence()
			case 6:
				b.Dfence()
			case 7:
				b.Load(uint64(pmBase + r.Intn(64)*64))
			case 8:
				b.StoreV(uint64(1<<21 + r.Intn(16)*64))
			default:
				b.Compute(uint32(5 + r.Intn(40)))
			}
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// TestPropertyAllModelsComplete (Theorem 1 as a property): for arbitrary
// seeds, every model completes the generated contended trace.
func TestPropertyAllModelsComplete(t *testing.T) {
	names := model.ExtendedNames()
	prop := func(seed uint64, pick uint8) bool {
		name := names[int(pick)%len(names)]
		tr := genTrace(seed, 3, 60)
		m, err := New(config.Default(), name, tr)
		if err != nil {
			return false
		}
		m.Run(1_000_000_000)
		if !m.allDone() {
			t.Logf("seed=%d model=%s deadlocked", seed, name)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterministicReplay: the same trace under the same model
// always produces identical cycle counts and PM write counts.
func TestPropertyDeterministicReplay(t *testing.T) {
	prop := func(seed uint64) bool {
		tr := genTrace(seed, 3, 50)
		a, _ := New(config.Default(), model.NameASAPRP, tr)
		ra := a.Run(0)
		b, _ := New(config.Default(), model.NameASAPRP, tr)
		rb := b.Run(0)
		return ra.Cycles == rb.Cycles && ra.PMWrites == rb.PMWrites &&
			ra.Stats.Get("totSpecWrites") == rb.Stats.Get("totSpecWrites")
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
