package machine

import (
	"slices"

	"asap/internal/mem"
	"asap/internal/persist"
)

// WriteRec is one persistent write as ground truth for the crash checker.
type WriteRec struct {
	Token mem.Token
	Epoch persist.EpochID
}

// Origin locates a token in its source trace: the Seq-th persistent store
// of thread Thread. It bridges the token-based timing model back to the
// byte-level heap images recorded by pmds (post-crash reopen).
type Origin struct {
	Thread int
	Seq    int
}

// EpochWrite is one write attributed to an epoch.
type EpochWrite struct {
	Line  mem.Line
	Token mem.Token
}

type tokenFlags uint8

const (
	tokRecorded tokenFlags = 1 << iota // RecordWrite seen for this token
	tokHasOrigin
)

// tokenRec is the per-token ground truth. The machine issues tokens as a
// dense 1..N sequence, so everything previously spread over four
// token-keyed maps (position, record, line, origin) lives in one slice
// entry indexed by the token itself — RecordWrite on the persist hot path
// touches one cache line here instead of hashing four maps.
type tokenRec struct {
	line   mem.Line
	epoch  persist.EpochID
	origin Origin
	pos    int32
	flags  tokenFlags
}

// lineSlot is one slot of the ledger's open-addressed line table (linear
// probing, no deletes — the same shape as the cache directory's table).
// ref is index+1 into lineWrites; 0 marks the slot empty, since line 0 is
// a valid key.
type lineSlot struct {
	line mem.Line
	ref  int32
}

// ledgerInitSlots is the line table's initial size; must be a power of two.
const ledgerInitSlots = 1024

// threadEpochs is one thread's epoch-keyed ground truth. Epoch timestamps
// are small dense per-thread sequences, so TS indexes a slice directly —
// no EpochID hashing on the write path.
type threadEpochs struct {
	writes    [][]EpochWrite
	deps      [][]persist.EpochID
	committed []bool
}

// Ledger is the machine's ground-truth log: for every line the ordered
// sequence of persistent writes (coherence order), the cross-thread
// dependency edges the model created, and the set of committed epochs.
// The crash checker (package crash) verifies the post-crash NVM image
// against it — implementing Theorem 2 of the paper as an executable check.
//
// RecordWrite is called once per persistent store, making it one of the
// hottest functions of a full run; the representation is therefore flat:
// a token-indexed slab, an open-addressed line table, and per-thread
// TS-indexed epoch logs, rather than the seven maps a direct transcription
// would use.
type Ledger struct {
	recs []tokenRec // indexed by token; index 0 unused (token 0 = "never written")

	lineSlots  []lineSlot
	lineMask   uint64
	lineCount  int
	lineWrites [][]WriteRec
	lineKeys   []mem.Line // first-touch order; sorted on demand by Lines

	byThread   []threadEpochs
	nDeps      uint64
	nCommitted int
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		lineSlots: make([]lineSlot, ledgerInitSlots),
		lineMask:  ledgerInitSlots - 1,
	}
}

// lineHash spreads line numbers across the table (Fibonacci hashing);
// workload lines are sequential within a structure, so the low bits alone
// would cluster whole regions onto neighbouring probe chains.
func lineHash(l mem.Line) uint64 {
	return uint64(l) * 0x9E3779B97F4A7C15
}

// findLine returns the slot index holding l, or the empty slot where l
// would be inserted.
func (lg *Ledger) findLine(l mem.Line) int {
	i := (lineHash(l) >> 32) & lg.lineMask
	for {
		s := &lg.lineSlots[i]
		if s.ref == 0 || s.line == l {
			return int(i)
		}
		i = (i + 1) & lg.lineMask
	}
}

// lineRef returns the lineWrites index for l, creating the log on first
// touch.
func (lg *Ledger) lineRef(l mem.Line) int32 {
	i := lg.findLine(l)
	if r := lg.lineSlots[i].ref; r != 0 {
		return r - 1
	}
	lg.lineWrites = append(lg.lineWrites, nil) //asaplint:ignore alloccheck one slot per distinct line in the workload footprint
	lg.lineKeys = append(lg.lineKeys, l)       //asaplint:ignore alloccheck one slot per distinct line in the workload footprint
	ref := int32(len(lg.lineWrites))
	lg.lineSlots[i] = lineSlot{line: l, ref: ref}
	lg.lineCount++
	if uint64(lg.lineCount)*4 >= uint64(len(lg.lineSlots))*3 {
		lg.growLines()
	}
	return ref - 1
}

// growLines doubles the line table and re-places every occupied slot.
func (lg *Ledger) growLines() {
	old := lg.lineSlots
	lg.lineSlots = make([]lineSlot, len(old)*2) //asaplint:ignore alloccheck amortized doubling of the open-addressed line table
	lg.lineMask = uint64(len(lg.lineSlots)) - 1
	for _, s := range old {
		if s.ref == 0 {
			continue
		}
		i := (lineHash(s.line) >> 32) & lg.lineMask
		for lg.lineSlots[i].ref != 0 {
			i = (i + 1) & lg.lineMask
		}
		lg.lineSlots[i] = s
	}
}

// rec returns the record for token, growing the slab to cover it. Tokens
// are dense, so growth amortizes to one append per token.
func (lg *Ledger) rec(token mem.Token) *tokenRec {
	for uint64(len(lg.recs)) <= uint64(token) {
		lg.recs = append(lg.recs, tokenRec{}) //asaplint:ignore alloccheck tokens are dense; amortizes to one append per token
	}
	return &lg.recs[token]
}

// thread returns thread th's epoch log, growing the per-thread slice to
// cover it.
func (lg *Ledger) thread(th int) *threadEpochs {
	for len(lg.byThread) <= th {
		lg.byThread = append(lg.byThread, threadEpochs{}) //asaplint:ignore alloccheck grows once to the machine's thread count
	}
	return &lg.byThread[th]
}

// RecordWrite implements model.Ledger.
func (lg *Ledger) RecordWrite(e persist.EpochID, line mem.Line, token mem.Token) {
	ref := lg.lineRef(line)
	r := lg.rec(token)
	r.line = line
	r.epoch = e
	r.pos = int32(len(lg.lineWrites[ref]))
	r.flags |= tokRecorded
	lg.lineWrites[ref] = append(lg.lineWrites[ref], WriteRec{Token: token, Epoch: e}) //asaplint:ignore alloccheck the ledger is an append-only audit log; recording every persist is its function
	te := lg.thread(e.Thread)
	for uint64(len(te.writes)) <= e.TS {
		te.writes = append(te.writes, nil) //asaplint:ignore alloccheck one slot per epoch; epochs are dense per thread
	}
	te.writes[e.TS] = append(te.writes[e.TS], EpochWrite{Line: line, Token: token}) //asaplint:ignore alloccheck the ledger is an append-only audit log; recording every persist is its function
}

// DepCreated implements model.Ledger.
func (lg *Ledger) DepCreated(src, dst persist.EpochID) {
	te := lg.thread(dst.Thread)
	for uint64(len(te.deps)) <= dst.TS {
		te.deps = append(te.deps, nil) //asaplint:ignore alloccheck one slot per epoch; epochs are dense per thread
	}
	te.deps[dst.TS] = append(te.deps[dst.TS], src) //asaplint:ignore alloccheck the ledger is an append-only audit log; dependency edges are part of the record
	lg.nDeps++
}

// EpochCommitted implements model.Ledger.
func (lg *Ledger) EpochCommitted(e persist.EpochID) {
	te := lg.thread(e.Thread)
	for uint64(len(te.committed)) <= e.TS {
		te.committed = append(te.committed, false) //asaplint:ignore alloccheck audit log: dense per-epoch growth, amortized doubling
	}
	if !te.committed[e.TS] {
		te.committed[e.TS] = true
		lg.nCommitted++
	}
}

// Writes returns the write order of a line.
func (lg *Ledger) Writes(line mem.Line) []WriteRec {
	if r := lg.lineSlots[lg.findLine(line)].ref; r != 0 {
		return lg.lineWrites[r-1]
	}
	return nil
}

// Lines calls fn for every line with at least one persistent write, in
// ascending line order so crash-check reports are reproducible.
func (lg *Ledger) Lines(fn func(mem.Line, []WriteRec)) {
	lines := make([]mem.Line, len(lg.lineKeys))
	copy(lines, lg.lineKeys)
	slices.Sort(lines)
	for _, l := range lines {
		fn(l, lg.Writes(l))
	}
}

// TokenPos returns the position of token in its line's write order.
func (lg *Ledger) TokenPos(token mem.Token) (int, bool) {
	if uint64(token) < uint64(len(lg.recs)) && lg.recs[token].flags&tokRecorded != 0 {
		return int(lg.recs[token].pos), true
	}
	return 0, false
}

// TokenRec returns the write record for a token.
func (lg *Ledger) TokenRec(token mem.Token) (WriteRec, bool) {
	if uint64(token) < uint64(len(lg.recs)) && lg.recs[token].flags&tokRecorded != 0 {
		return WriteRec{Token: token, Epoch: lg.recs[token].epoch}, true
	}
	return WriteRec{}, false
}

// IsCommitted reports whether epoch e committed before the crash. Epochs on
// the same thread with a lower timestamp than any committed epoch are
// committed transitively (models commit per-thread in order).
func (lg *Ledger) IsCommitted(e persist.EpochID) bool {
	if e.Thread < 0 || e.Thread >= len(lg.byThread) {
		return false
	}
	te := &lg.byThread[e.Thread]
	return e.TS < uint64(len(te.committed)) && te.committed[e.TS]
}

// Predecessors returns the recorded dependency sources of epoch e; the
// intra-thread predecessor (TS-1) is implicit and not included.
func (lg *Ledger) Predecessors(e persist.EpochID) []persist.EpochID {
	if e.Thread < 0 || e.Thread >= len(lg.byThread) {
		return nil
	}
	te := &lg.byThread[e.Thread]
	if e.TS >= uint64(len(te.deps)) {
		return nil
	}
	return te.deps[e.TS]
}

// EpochWrites returns the writes attributed to epoch e (nil for an epoch
// that issued none).
func (lg *Ledger) EpochWrites(e persist.EpochID) []EpochWrite {
	if e.Thread < 0 || e.Thread >= len(lg.byThread) {
		return nil
	}
	te := &lg.byThread[e.Thread]
	if e.TS >= uint64(len(te.writes)) {
		return nil
	}
	return te.writes[e.TS]
}

// TokenLine returns the line a token was written to.
func (lg *Ledger) TokenLine(token mem.Token) (mem.Line, bool) {
	if uint64(token) < uint64(len(lg.recs)) && lg.recs[token].flags&tokRecorded != 0 {
		return lg.recs[token].line, true
	}
	return 0, false
}

// CommittedEpochs calls fn for every committed epoch, ordered by thread
// then timestamp so downstream reports are reproducible. The per-thread
// logs store epochs in exactly that order, so no sort is needed.
func (lg *Ledger) CommittedEpochs(fn func(persist.EpochID)) {
	for th := range lg.byThread {
		committed := lg.byThread[th].committed
		for ts := range committed {
			if committed[ts] {
				fn(persist.EpochID{Thread: th, TS: uint64(ts)})
			}
		}
	}
}

// SetOrigin records the trace origin of a token (set by the machine when
// the store issues).
func (lg *Ledger) SetOrigin(token mem.Token, o Origin) {
	r := lg.rec(token)
	r.origin = o
	r.flags |= tokHasOrigin
}

// Origin returns the trace origin of a token.
func (lg *Ledger) Origin(token mem.Token) (Origin, bool) {
	if uint64(token) < uint64(len(lg.recs)) && lg.recs[token].flags&tokHasOrigin != 0 {
		return lg.recs[token].origin, true
	}
	return Origin{}, false
}

// TokenForOrigin finds the token issued for the given trace origin (0 if
// that store never issued, e.g. the run crashed first). Tokens map to
// unique origins, so the ascending scan finds at most one match.
func (lg *Ledger) TokenForOrigin(o Origin) mem.Token {
	for tok := 1; tok < len(lg.recs); tok++ {
		if lg.recs[tok].flags&tokHasOrigin != 0 && lg.recs[tok].origin == o {
			return mem.Token(tok)
		}
	}
	return 0
}

// NumDeps returns the number of cross-thread dependency edges recorded —
// the quantity plotted in Figure 2.
func (lg *Ledger) NumDeps() uint64 { return lg.nDeps }

// NumCommitted returns the number of committed epochs.
func (lg *Ledger) NumCommitted() int { return lg.nCommitted }
