package machine

import (
	"sort"

	"asap/internal/mem"
	"asap/internal/persist"
)

// WriteRec is one persistent write as ground truth for the crash checker.
type WriteRec struct {
	Token mem.Token
	Epoch persist.EpochID
}

// Origin locates a token in its source trace: the Seq-th persistent store
// of thread Thread. It bridges the token-based timing model back to the
// byte-level heap images recorded by pmds (post-crash reopen).
type Origin struct {
	Thread int
	Seq    int
}

// Ledger is the machine's ground-truth log: for every line the ordered
// sequence of persistent writes (coherence order), the cross-thread
// dependency edges the model created, and the set of committed epochs.
// The crash checker (package crash) verifies the post-crash NVM image
// against it — implementing Theorem 2 of the paper as an executable check.
type Ledger struct {
	writes      map[mem.Line][]WriteRec
	tokenPos    map[mem.Token]int // position of token within its line's order
	tokenRec    map[mem.Token]WriteRec
	tokenLine   map[mem.Token]mem.Line
	epochWrites map[persist.EpochID][]EpochWrite
	deps        map[persist.EpochID][]persist.EpochID // epoch -> predecessors
	committed   map[persist.EpochID]bool
	origins     map[mem.Token]Origin
	nDeps       uint64
}

// EpochWrite is one write attributed to an epoch.
type EpochWrite struct {
	Line  mem.Line
	Token mem.Token
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		writes:      make(map[mem.Line][]WriteRec),
		tokenPos:    make(map[mem.Token]int),
		tokenRec:    make(map[mem.Token]WriteRec),
		tokenLine:   make(map[mem.Token]mem.Line),
		epochWrites: make(map[persist.EpochID][]EpochWrite),
		deps:        make(map[persist.EpochID][]persist.EpochID),
		committed:   make(map[persist.EpochID]bool),
		origins:     make(map[mem.Token]Origin),
	}
}

// RecordWrite implements model.Ledger.
func (lg *Ledger) RecordWrite(e persist.EpochID, line mem.Line, token mem.Token) {
	rec := WriteRec{Token: token, Epoch: e}
	lg.tokenPos[token] = len(lg.writes[line])
	lg.tokenRec[token] = rec
	lg.tokenLine[token] = line
	lg.writes[line] = append(lg.writes[line], rec)
	lg.epochWrites[e] = append(lg.epochWrites[e], EpochWrite{Line: line, Token: token})
}

// DepCreated implements model.Ledger.
func (lg *Ledger) DepCreated(src, dst persist.EpochID) {
	lg.deps[dst] = append(lg.deps[dst], src)
	lg.nDeps++
}

// EpochCommitted implements model.Ledger.
func (lg *Ledger) EpochCommitted(e persist.EpochID) {
	lg.committed[e] = true
}

// Writes returns the write order of a line.
func (lg *Ledger) Writes(line mem.Line) []WriteRec { return lg.writes[line] }

// Lines calls fn for every line with at least one persistent write, in
// ascending line order so crash-check reports are reproducible.
func (lg *Ledger) Lines(fn func(mem.Line, []WriteRec)) {
	lines := make([]mem.Line, 0, len(lg.writes))
	for l := range lg.writes {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		fn(l, lg.writes[l])
	}
}

// TokenPos returns the position of token in its line's write order.
func (lg *Ledger) TokenPos(token mem.Token) (int, bool) {
	p, ok := lg.tokenPos[token]
	return p, ok
}

// TokenRec returns the write record for a token.
func (lg *Ledger) TokenRec(token mem.Token) (WriteRec, bool) {
	r, ok := lg.tokenRec[token]
	return r, ok
}

// IsCommitted reports whether epoch e committed before the crash. Epochs on
// the same thread with a lower timestamp than any committed epoch are
// committed transitively (models commit per-thread in order).
func (lg *Ledger) IsCommitted(e persist.EpochID) bool { return lg.committed[e] }

// Predecessors returns the recorded dependency sources of epoch e; the
// intra-thread predecessor (TS-1) is implicit and not included.
func (lg *Ledger) Predecessors(e persist.EpochID) []persist.EpochID { return lg.deps[e] }

// EpochWrites returns the writes attributed to epoch e (nil for an epoch
// that issued none).
func (lg *Ledger) EpochWrites(e persist.EpochID) []EpochWrite { return lg.epochWrites[e] }

// TokenLine returns the line a token was written to.
func (lg *Ledger) TokenLine(token mem.Token) (mem.Line, bool) {
	l, ok := lg.tokenLine[token]
	return l, ok
}

// CommittedEpochs calls fn for every committed epoch, ordered by thread
// then timestamp so downstream reports are reproducible.
func (lg *Ledger) CommittedEpochs(fn func(persist.EpochID)) {
	epochs := make([]persist.EpochID, 0, len(lg.committed))
	for e := range lg.committed {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool {
		if epochs[i].Thread != epochs[j].Thread {
			return epochs[i].Thread < epochs[j].Thread
		}
		return epochs[i].TS < epochs[j].TS
	})
	for _, e := range epochs {
		fn(e)
	}
}

// SetOrigin records the trace origin of a token (set by the machine when
// the store issues).
func (lg *Ledger) SetOrigin(token mem.Token, o Origin) { lg.origins[token] = o }

// Origin returns the trace origin of a token.
func (lg *Ledger) Origin(token mem.Token) (Origin, bool) {
	o, ok := lg.origins[token]
	return o, ok
}

// TokenForOrigin finds the token issued for the given trace origin (0 if
// that store never issued, e.g. the run crashed first).
func (lg *Ledger) TokenForOrigin(o Origin) mem.Token {
	//asaplint:ignore detcheck origins maps tokens to unique origins, so this scan finds at most one match regardless of order
	for tok, org := range lg.origins {
		if org == o {
			return tok
		}
	}
	return 0
}

// NumDeps returns the number of cross-thread dependency edges recorded —
// the quantity plotted in Figure 2.
func (lg *Ledger) NumDeps() uint64 { return lg.nDeps }

// NumCommitted returns the number of committed epochs.
func (lg *Ledger) NumCommitted() int { return len(lg.committed) }
