package machine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/obs"
)

// runTraced builds an asap_ep machine over a contended trace, attaches a
// collector and timeline, runs it, and returns the serialized artifacts.
func runTraced(t *testing.T) (trace string, timeline string, cycles uint64) {
	t.Helper()
	m, err := New(config.Default(), model.NameASAPEP, smallTrace(4, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(m.Eng.Now)
	m.AttachTracer(col)
	tl := m.EnableTimeline(100)
	res := m.Run(200_000_000)
	if !m.allDone() {
		t.Fatal("traced run did not complete")
	}
	if col.OpenSpans() != 0 {
		t.Fatalf("%d spans left open after a clean run", col.OpenSpans())
	}
	if col.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := tl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	return buf.String(), csv.String(), res.Cycles
}

func TestTracingEndToEnd(t *testing.T) {
	out, csv, traced := runTraced(t)

	if err := json.Unmarshal([]byte(out), &struct{}{}); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	for _, track := range []string{"core0", "core0 pb", "mc0", "engine"} {
		if !strings.Contains(out, `"name":"`+track+`"`) {
			t.Errorf("track %q missing from trace", track)
		}
	}
	if !strings.HasPrefix(csv, "cycle,pb0,") {
		t.Fatalf("timeline header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") < 3 {
		t.Fatalf("timeline too short:\n%s", csv)
	}
	// The timeline of an asap machine carries epoch-table and
	// recovery-table columns.
	header := strings.SplitN(csv, "\n", 2)[0]
	if !strings.Contains(header, "et0") || !strings.Contains(header, "rt0") {
		t.Fatalf("asap timeline missing et/rt columns: %q", header)
	}

	// Tracing must observe, not perturb: an untraced run of the same
	// machine reports identical execution time.
	m, err := New(config.Default(), model.NameASAPEP, smallTrace(4, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	if plain := m.Run(200_000_000); plain.Cycles != traced {
		t.Fatalf("tracing changed the simulation: %d cycles traced vs %d untraced", traced, plain.Cycles)
	}
}

func TestTracingDeterministic(t *testing.T) {
	out1, csv1, _ := runTraced(t)
	out2, csv2, _ := runTraced(t)
	if out1 != out2 {
		t.Fatal("identical traced runs serialized different traces")
	}
	if csv1 != csv2 {
		t.Fatal("identical traced runs produced different timelines")
	}
}
