package machine

import (
	"testing"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/obs"
)

// runToCompletion builds and finishes a small machine so the sampler can
// be exercised in isolation afterwards.
func runToCompletion(t *testing.T) *Machine {
	t.Helper()
	m, err := New(config.Default(), model.NameASAPRP, smallTrace(2, 100, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Run(0); res.Cycles == 0 {
		t.Fatal("run did not progress")
	}
	return m
}

// TestSampleAllocFree pins the sampler's allocation contract both ways:
// with no progress sink attached (the default for asapsim/asapfig runs)
// and with one attached (every asapd run), one sampler firing allocates
// nothing. The alloccheck proof covers the hot per-op path statically;
// this covers the periodic path dynamically, including the
// publishProgress walk over cores and the seqlock Publish.
func TestSampleAllocFree(t *testing.T) {
	m := runToCompletion(t)
	if n := testing.AllocsPerRun(100, m.sample); n != 0 {
		t.Fatalf("unattached sample allocates %v per firing", n)
	}
	m.AttachProgress(&obs.Progress{})
	if n := testing.AllocsPerRun(100, m.sample); n != 0 {
		t.Fatalf("attached sample allocates %v per firing", n)
	}
}

// TestProgressPublishedDuringRun: attaching a sink before Run yields a
// final snapshot consistent with the machine's own result.
func TestProgressPublishedDuringRun(t *testing.T) {
	m, err := New(config.Default(), model.NameASAPRP, smallTrace(2, 200, 3))
	if err != nil {
		t.Fatal(err)
	}
	var p obs.Progress
	m.AttachProgress(&p)
	res := m.Run(0)

	sn := p.Snapshot()
	if sn.Cycles == 0 {
		t.Fatal("no progress published during run")
	}
	// The sampler's final post-completion firing publishes the engine
	// clock, which can pass the last core's finish cycle by up to one
	// sampling period.
	if sn.Cycles > res.Cycles+uint64(SampleInterval) {
		t.Fatalf("published cycles %d beyond result cycles %d + sample interval", sn.Cycles, res.Cycles)
	}
	if sn.Events == 0 {
		t.Fatal("events dispatched not published")
	}
	if sn.OpsRetired == 0 {
		t.Fatal("ops retired not published")
	}
}
