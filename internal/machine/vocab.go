package machine

import "asap/internal/stats"

// The machine harness's stat vocabulary: cache/WBB behaviour at the LLC
// boundary, lock contention, and the periodic occupancy sampler. See
// internal/model/vocab.go for the rationale. Registration returns the dense
// keys the machine resolves to Counter handles at construction, so the
// per-access path never hashes a stat name; distributions stay string-keyed
// on the cold sampler path.
var (
	kCoreSampledCycles   = stats.Register("coreSampledCycles", "core-cycles covered by the periodic sampler")
	kCyclesBlocked       = stats.Register("cyclesBlocked", "sampled cycles during which a persist buffer could not flush")
	kLLCEvictionsDelayed = stats.Register("llcEvictionsDelayed", "LLC evictions of PM lines delayed behind the WBB")
	kLockContended       = stats.Register("lockContended", "lock acquisitions that found the lock held")
	_                    = stats.RegisterDist("pbOccupancy", "sampled persist-buffer occupancy distribution")
	kPMLinesDropped      = stats.Register("pmLinesDropped", "PM-line evictions dropped (clean or superseded)")
	_                    = stats.RegisterDist("rtOccupancy", "sampled recovery-table occupancy distribution")
	kWbbFullStalls       = stats.Register("wbbFullStalls", "evictions stalled on a full write-back buffer")
	kWbbParked           = stats.Register("wbbParked", "dirty PM lines parked in the write-back buffer")
)
