package machine

import "asap/internal/stats"

// The machine harness's stat vocabulary: cache/WBB behaviour at the LLC
// boundary, lock contention, and the periodic occupancy sampler. See
// internal/model/vocab.go for the rationale.
func init() {
	stats.Register("coreSampledCycles", "core-cycles covered by the periodic sampler")
	stats.Register("cyclesBlocked", "sampled cycles during which a persist buffer could not flush")
	stats.Register("llcEvictionsDelayed", "LLC evictions of PM lines delayed behind the WBB")
	stats.Register("lockContended", "lock acquisitions that found the lock held")
	stats.Register("pbOccupancy", "sampled persist-buffer occupancy distribution")
	stats.Register("pmLinesDropped", "PM-line evictions dropped (clean or superseded)")
	stats.Register("rtOccupancy", "sampled recovery-table occupancy distribution")
	stats.Register("wbbFullStalls", "evictions stalled on a full write-back buffer")
	stats.Register("wbbParked", "dirty PM lines parked in the write-back buffer")
}
