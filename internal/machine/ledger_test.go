package machine

import (
	"testing"

	"asap/internal/persist"
)

func TestLedgerWriteOrder(t *testing.T) {
	lg := NewLedger()
	e1 := persist.EpochID{Thread: 0, TS: 1}
	e2 := persist.EpochID{Thread: 1, TS: 3}
	lg.RecordWrite(e1, 10, 100)
	lg.RecordWrite(e2, 10, 101)
	lg.RecordWrite(e1, 20, 102)

	ws := lg.Writes(10)
	if len(ws) != 2 || ws[0].Token != 100 || ws[1].Token != 101 {
		t.Fatalf("line order wrong: %+v", ws)
	}
	if p, ok := lg.TokenPos(101); !ok || p != 1 {
		t.Fatalf("TokenPos(101) = %d,%v", p, ok)
	}
	if l, ok := lg.TokenLine(102); !ok || l != 20 {
		t.Fatalf("TokenLine(102) = %d,%v", l, ok)
	}
	if rec, ok := lg.TokenRec(100); !ok || rec.Epoch != e1 {
		t.Fatalf("TokenRec(100) = %+v,%v", rec, ok)
	}
	if len(lg.EpochWrites(e1)) != 2 || len(lg.EpochWrites(e2)) != 1 {
		t.Fatal("epoch attribution wrong")
	}
}

func TestLedgerDepsAndCommits(t *testing.T) {
	lg := NewLedger()
	src := persist.EpochID{Thread: 0, TS: 5}
	dst := persist.EpochID{Thread: 1, TS: 2}
	lg.DepCreated(src, dst)
	if lg.NumDeps() != 1 {
		t.Fatal("dep not counted")
	}
	preds := lg.Predecessors(dst)
	if len(preds) != 1 || preds[0] != src {
		t.Fatalf("predecessors = %v", preds)
	}
	if lg.IsCommitted(src) {
		t.Fatal("uncommitted epoch reported committed")
	}
	lg.EpochCommitted(src)
	lg.EpochCommitted(src) // idempotent
	if !lg.IsCommitted(src) || lg.NumCommitted() != 1 {
		t.Fatal("commit tracking wrong")
	}
	n := 0
	lg.CommittedEpochs(func(persist.EpochID) { n++ })
	if n != 1 {
		t.Fatal("CommittedEpochs iteration wrong")
	}
}
