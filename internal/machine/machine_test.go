package machine

import (
	"testing"

	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/model"
	"asap/internal/rng"
	"asap/internal/trace"
)

// smallTrace builds a synthetic multi-threaded trace with persistent writes,
// fences, shared lines and locks — enough to exercise every model path.
func smallTrace(threads, opsPerThread int, seed uint64) *trace.Trace {
	r := rng.New(seed)
	tr := &trace.Trace{Name: "smoke"}
	const (
		pmBase   = 1 << 30
		lockAddr = 1 << 20
	)
	for t := 0; t < threads; t++ {
		var b trace.Builder
		for i := 0; i < opsPerThread; i++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3:
				// Private persistent store.
				b.StoreP(uint64(pmBase + t*8192 + r.Intn(32)*64))
			case 4:
				// Shared persistent store under a lock.
				b.Acquire(lockAddr)
				b.StoreP(uint64(pmBase + 1<<20 + r.Intn(8)*64))
				b.Ofence()
				b.StoreP(uint64(pmBase + 1<<20 + 9*64))
				b.Release(lockAddr)
			case 5:
				b.Ofence()
			case 6:
				b.Dfence()
			case 7:
				b.Load(uint64(pmBase + r.Intn(64)*64))
			default:
				b.Compute(uint32(10 + r.Intn(50)))
			}
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// TestAllModelsComplete checks forward progress (Theorem 1): every model
// runs the same contended multi-threaded trace to completion.
func TestAllModelsComplete(t *testing.T) {
	tr := smallTrace(4, 400, 1)
	for _, name := range model.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := New(config.Default(), name, tr)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run(200_000_000)
			if !m.allDone() {
				t.Fatalf("%s deadlocked: finished %d/%d cores at cycle %d",
					name, m.finished, len(m.cores), m.Eng.Now())
			}
			if res.Cycles == 0 {
				t.Fatalf("%s reported zero execution time", name)
			}
			t.Logf("%s: %d cycles, pmWrites=%d stats:\n%s", name, res.Cycles, res.PMWrites, res.Stats)
		})
	}
}

// TestModelOrderingSanity checks the performance relationships the paper
// reports: baseline is slowest, eADR fastest, ASAP between HOPS and eADR.
func TestModelOrderingSanity(t *testing.T) {
	tr := smallTrace(4, 600, 2)
	cycles := map[string]uint64{}
	for _, name := range model.AllNames() {
		m, err := New(config.Default(), name, tr)
		if err != nil {
			t.Fatal(err)
		}
		res := m.Run(500_000_000)
		if !m.allDone() {
			t.Fatalf("%s did not finish", name)
		}
		cycles[name] = res.Cycles
	}
	t.Logf("cycles: %v", cycles)
	if cycles[model.NameEADR] > cycles[model.NameBaseline] {
		t.Errorf("eADR (%d) should not be slower than baseline (%d)",
			cycles[model.NameEADR], cycles[model.NameBaseline])
	}
	if cycles[model.NameASAPRP] > cycles[model.NameBaseline] {
		t.Errorf("ASAP_RP (%d) should not be slower than baseline (%d)",
			cycles[model.NameASAPRP], cycles[model.NameBaseline])
	}
	if cycles[model.NameASAPRP] > cycles[model.NameHOPSRP]*11/10 {
		t.Errorf("ASAP_RP (%d) should not be more than 10%% slower than HOPS_RP (%d)",
			cycles[model.NameASAPRP], cycles[model.NameHOPSRP])
	}
}

// TestSingleThreadNoDeps: a single-threaded run must detect no cross-thread
// dependencies under any model.
func TestSingleThreadNoDeps(t *testing.T) {
	tr := smallTrace(1, 500, 3)
	for _, name := range model.AllNames() {
		m, err := New(config.Default(), name, tr)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(100_000_000)
		if !m.allDone() {
			t.Fatalf("%s did not finish", name)
		}
		if got := m.St.Get("interTEpochConflict"); got != 0 {
			t.Errorf("%s: expected 0 cross-thread deps for 1 thread, got %d", name, got)
		}
	}
}

// TestScheduleCrashHalts: a crash stops the run at the scheduled cycle and
// drains the ADR domain.
func TestScheduleCrashHalts(t *testing.T) {
	tr := smallTrace(4, 400, 5)
	m, err := New(config.Default(), model.NameASAPRP, tr)
	if err != nil {
		t.Fatal(err)
	}
	m.ScheduleCrash(20_000)
	res := m.Run(0)
	if !res.Crashed {
		t.Fatal("crash did not fire")
	}
	if m.Eng.Now() != 20_000 {
		t.Fatalf("halted at %d, want 20000", m.Eng.Now())
	}
	for _, mc := range m.MCs {
		if mc.WPQ.Len() != 0 {
			t.Fatal("WPQ not drained by the ADR crash path")
		}
		if mc.RT != nil && mc.RT.Occupancy() != 0 {
			t.Fatal("recovery table not reset after crash")
		}
	}
}

// TestLockHandoffFIFO: contended lock waiters resume in arrival order.
func TestLockHandoffFIFO(t *testing.T) {
	// Three threads take the same lock, write a private line, release.
	tr := &trace.Trace{Name: "locks"}
	for th := 0; th < 3; th++ {
		var b trace.Builder
		for i := 0; i < 30; i++ {
			b.Acquire(1 << 20)
			b.StoreP(uint64(1<<30 + th*4096 + i*64))
			b.Release(1 << 20)
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	m, err := New(config.Default(), model.NameASAPRP, tr)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	if !m.allDone() {
		t.Fatal("lock convoy deadlocked")
	}
	if m.St.Get("lockContended") == 0 {
		t.Fatal("expected lock contention")
	}
}

// TestWBBParksEvictions: a tiny LLC forces evictions of lines whose writes
// are still buffered; the write-back buffer must park them.
func TestWBBParksEvictions(t *testing.T) {
	cfg := config.Default()
	cfg.LLCSize = 64 * 32 // 32 lines
	cfg.LLCWays = 2
	var b trace.Builder
	// Stream stores over many lines with no fences: PB holds writes while
	// LLC evicts under pressure.
	for i := 0; i < 400; i++ {
		b.StoreP(uint64(1<<30 + i*64))
	}
	b.Dfence()
	tr := &trace.Trace{Name: "wbb", Threads: [][]trace.Op{b.Ops()}}
	m, err := New(cfg, model.NameHOPSRP, tr)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(0)
	if m.St.Get("wbbParked") == 0 {
		t.Error("no evictions parked in the WBB despite LLC pressure")
	}
}

// TestExtendedModelsComplete: the related-work designs also pass the
// forward-progress test on the contended trace.
func TestExtendedModelsComplete(t *testing.T) {
	tr := smallTrace(4, 300, 8)
	for _, name := range []string{model.NameLBPP, model.NameDPO, model.NameLRP, model.NamePMEMSpec} {
		m, err := New(config.Default(), name, tr)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(500_000_000)
		if !m.allDone() {
			t.Fatalf("%s deadlocked (finished %d/%d)", name, m.finished, len(m.cores))
		}
	}
}

// TestLedgerRecordsEverything: every persistent store lands in the ledger
// with its epoch, under every model.
func TestLedgerRecordsEverything(t *testing.T) {
	tr := smallTrace(2, 150, 9)
	stores := 0
	for _, th := range tr.Threads {
		for _, op := range th {
			if op.Kind == trace.OpStore && op.Persistent {
				stores++
			}
		}
	}
	for _, name := range model.ExtendedNames() {
		m, err := New(config.Default(), name, tr)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(0)
		n := 0
		m.Ledger.Lines(func(_ mem.Line, ws []WriteRec) { n += len(ws) })
		if n != stores {
			t.Errorf("%s: ledger has %d writes, trace has %d persistent stores", name, n, stores)
		}
	}
}
