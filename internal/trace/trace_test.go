package trace

import (
	"strings"
	"testing"
	"unsafe"
)

func TestBuilder(t *testing.T) {
	var b Builder
	b.Compute(10)
	b.Load(0x40)
	b.StoreP(0x80)
	b.StoreV(0xc0)
	b.Ofence()
	b.Dfence()
	b.Acquire(0x1000)
	b.Release(0x1000)
	ops := b.Ops()
	if len(ops) != 8 || b.Len() != 8 {
		t.Fatalf("len = %d", len(ops))
	}
	if ops[0].Kind != OpCompute || ops[0].N != 10 {
		t.Fatal("compute op wrong")
	}
	if ops[2].Kind != OpStore || !ops[2].Persistent {
		t.Fatal("persistent store wrong")
	}
	if ops[3].Kind != OpStore || ops[3].Persistent {
		t.Fatal("volatile store wrong")
	}
	if ops[6].Kind != OpAcquire || ops[6].Addr != 0x1000 {
		t.Fatal("acquire wrong")
	}
}

func TestTraceCounts(t *testing.T) {
	var a, b Builder
	a.StoreP(0x40)
	a.Ofence()
	b.Load(0x40)
	tr := &Trace{Name: "x", Threads: [][]Op{a.Ops(), b.Ops()}}
	if tr.NumThreads() != 2 || tr.TotalOps() != 3 {
		t.Fatal("counts wrong")
	}
	c := tr.Counts()
	if c[OpStore] != 1 || c[OpOfence] != 1 || c[OpLoad] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestCompile(t *testing.T) {
	var a, b, c Builder
	a.StoreP(0x40)
	a.Ofence()
	b.Load(0x80)
	// c stays empty: zero-length thread streams must survive compilation.
	tr := &Trace{Name: "x", Threads: [][]Op{a.Ops(), c.Ops(), b.Ops()}}
	want := [][]Op{append([]Op(nil), a.Ops()...), nil, append([]Op(nil), b.Ops()...)}

	if got := tr.Compile(); got != tr {
		t.Fatal("Compile must return its receiver")
	}
	if tr.NumThreads() != 3 || tr.TotalOps() != 3 {
		t.Fatalf("counts changed: threads=%d ops=%d", tr.NumThreads(), tr.TotalOps())
	}
	for i, th := range tr.Threads {
		if len(th) != len(want[i]) {
			t.Fatalf("thread %d: len %d, want %d", i, len(th), len(want[i]))
		}
		for j := range th {
			if th[j] != want[i][j] {
				t.Fatalf("thread %d op %d changed: %+v != %+v", i, j, th[j], want[i][j])
			}
		}
		// Capacity-clipped windows: appending through one thread's slice
		// must reallocate, never bleed into the next thread's ops.
		if cap(th) != len(th) {
			t.Fatalf("thread %d window not capacity-clipped: cap %d, len %d", i, cap(th), len(th))
		}
	}
	// Adjacent non-empty windows share one arena: thread 2 starts right
	// after thread 0's two ops.
	base := unsafe.Pointer(&tr.Threads[0][0])
	next := unsafe.Add(base, uintptr(len(tr.Threads[0]))*unsafe.Sizeof(Op{}))
	if unsafe.Pointer(&tr.Threads[2][0]) != next {
		t.Fatal("thread streams do not share a contiguous arena")
	}
}

func TestCompileIdempotent(t *testing.T) {
	var a Builder
	a.StoreP(0x40)
	tr := (&Trace{Name: "x", Threads: [][]Op{a.Ops()}}).Compile()
	first := &tr.Threads[0][0]
	tr.Compile()
	if tr.TotalOps() != 1 || tr.Threads[0][0].Addr != 0x40 {
		t.Fatal("second Compile corrupted the trace")
	}
	_ = first // recompiling may re-arena; contents above are what matter
}

func TestKindString(t *testing.T) {
	for k := OpCompute; k <= OpRelease; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Fatal("unknown kind should fall back")
	}
}
