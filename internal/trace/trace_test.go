package trace

import (
	"strings"
	"testing"
)

func TestBuilder(t *testing.T) {
	var b Builder
	b.Compute(10)
	b.Load(0x40)
	b.StoreP(0x80)
	b.StoreV(0xc0)
	b.Ofence()
	b.Dfence()
	b.Acquire(0x1000)
	b.Release(0x1000)
	ops := b.Ops()
	if len(ops) != 8 || b.Len() != 8 {
		t.Fatalf("len = %d", len(ops))
	}
	if ops[0].Kind != OpCompute || ops[0].N != 10 {
		t.Fatal("compute op wrong")
	}
	if ops[2].Kind != OpStore || !ops[2].Persistent {
		t.Fatal("persistent store wrong")
	}
	if ops[3].Kind != OpStore || ops[3].Persistent {
		t.Fatal("volatile store wrong")
	}
	if ops[6].Kind != OpAcquire || ops[6].Addr != 0x1000 {
		t.Fatal("acquire wrong")
	}
}

func TestTraceCounts(t *testing.T) {
	var a, b Builder
	a.StoreP(0x40)
	a.Ofence()
	b.Load(0x40)
	tr := &Trace{Name: "x", Threads: [][]Op{a.Ops(), b.Ops()}}
	if tr.NumThreads() != 2 || tr.TotalOps() != 3 {
		t.Fatal("counts wrong")
	}
	c := tr.Counts()
	if c[OpStore] != 1 || c[OpOfence] != 1 || c[OpLoad] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestKindString(t *testing.T) {
	for k := OpCompute; k <= OpRelease; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Fatal("unknown kind should fall back")
	}
}
