// Package trace defines the per-thread operation streams the machine
// replays. Workload generators (package workload) and the instrumented
// persistent data structures (package pmds) both produce traces.
package trace

import "fmt"

// Kind enumerates trace operations.
type Kind uint8

const (
	// OpCompute spends N cycles of non-memory work.
	OpCompute Kind = iota
	// OpLoad reads Addr.
	OpLoad
	// OpStore writes Addr; Persistent selects the PM persist path.
	OpStore
	// OpOfence orders earlier persistent writes before later ones.
	OpOfence
	// OpDfence additionally guarantees earlier writes are durable.
	OpDfence
	// OpAcquire takes the lock at Addr (spins if held).
	OpAcquire
	// OpRelease releases the lock at Addr.
	OpRelease
	// OpStrand begins a new strand (strand persistency): subsequent
	// writes are unordered against other strands of the same thread.
	// Models without strand support ignore it (their epoch ordering is a
	// conservative superset).
	OpStrand
)

func (k Kind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpOfence:
		return "ofence"
	case OpDfence:
		return "dfence"
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpStrand:
		return "strand"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one operation of one thread.
type Op struct {
	Kind       Kind
	Addr       uint64 // byte address for memory ops and locks
	N          uint32 // compute cycles for OpCompute
	Persistent bool   // store targets persistent memory
}

// Trace holds one op stream per thread.
type Trace struct {
	Name    string
	Threads [][]Op
}

// NumThreads returns the thread count.
func (t *Trace) NumThreads() int { return len(t.Threads) }

// Compile repacks the per-thread streams into one flat op arena: a single
// backing []Op with each thread's stream a three-index window into it. A
// generated trace arrives as one heap allocation per thread builder (plus
// the builders' growth garbage); the compiled form is one allocation total,
// contiguous in replay order, so a harness replaying the same trace across
// many models touches one cache-friendly slab. The windows are capacity-
// clipped, so an append through one thread's slice can never bleed into the
// next thread's ops. Compiling is idempotent; it returns t for chaining.
func (t *Trace) Compile() *Trace {
	arena := make([]Op, 0, t.TotalOps())
	for _, th := range t.Threads {
		arena = append(arena, th...)
	}
	off := 0
	for i, th := range t.Threads {
		end := off + len(th)
		t.Threads[i] = arena[off:end:end]
		off = end
	}
	return t
}

// TotalOps returns the op count across all threads.
func (t *Trace) TotalOps() int {
	n := 0
	for _, th := range t.Threads {
		n += len(th)
	}
	return n
}

// Counts tallies ops by kind across all threads.
func (t *Trace) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, th := range t.Threads {
		for _, op := range th {
			out[op.Kind]++
		}
	}
	return out
}

// Builder accumulates a per-thread stream with convenience emitters.
type Builder struct {
	ops     []Op
	pstores int
}

// Compute appends n cycles of computation.
func (b *Builder) Compute(n uint32) { b.ops = append(b.ops, Op{Kind: OpCompute, N: n}) }

// Load appends a load of addr.
func (b *Builder) Load(addr uint64) { b.ops = append(b.ops, Op{Kind: OpLoad, Addr: addr}) }

// StoreP appends a persistent store to addr.
func (b *Builder) StoreP(addr uint64) {
	b.ops = append(b.ops, Op{Kind: OpStore, Addr: addr, Persistent: true})
	b.pstores++
}

// StoreV appends a volatile store to addr.
func (b *Builder) StoreV(addr uint64) { b.ops = append(b.ops, Op{Kind: OpStore, Addr: addr}) }

// Ofence / Dfence append persist barriers.
func (b *Builder) Ofence() { b.ops = append(b.ops, Op{Kind: OpOfence}) }
func (b *Builder) Dfence() { b.ops = append(b.ops, Op{Kind: OpDfence}) }

// Acquire / Release append lock operations on lock address addr.
func (b *Builder) Acquire(addr uint64) { b.ops = append(b.ops, Op{Kind: OpAcquire, Addr: addr}) }
func (b *Builder) Release(addr uint64) { b.ops = append(b.ops, Op{Kind: OpRelease, Addr: addr}) }

// NewStrand appends a strand boundary (strand persistency).
func (b *Builder) NewStrand() { b.ops = append(b.ops, Op{Kind: OpStrand}) }

// Ops returns the accumulated stream.
func (b *Builder) Ops() []Op { return b.ops }

// Len returns the number of accumulated ops.
func (b *Builder) Len() int { return len(b.ops) }

// PersistentStores returns the number of persistent stores accumulated —
// the same sequence numbering the machine's token origins use.
func (b *Builder) PersistentStores() int { return b.pstores }
