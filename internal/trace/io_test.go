package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var a, b Builder
	a.StoreP(0x1000)
	a.Ofence()
	a.Compute(500)
	a.Load(0x2000)
	a.Dfence()
	b.Acquire(0x40)
	b.StoreV(0x3000)
	b.Release(0x40)
	tr := &Trace{Name: "rt-test", Threads: [][]Op{a.Ops(), b.Ops()}}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.NumThreads() != 2 {
		t.Fatalf("header mismatch: %q %d", got.Name, got.NumThreads())
	}
	for ti := range tr.Threads {
		if len(got.Threads[ti]) != len(tr.Threads[ti]) {
			t.Fatalf("thread %d length mismatch", ti)
		}
		for oi := range tr.Threads[ti] {
			if got.Threads[ti][oi] != tr.Threads[ti][oi] {
				t.Fatalf("op %d/%d: %+v != %+v", ti, oi, got.Threads[ti][oi], tr.Threads[ti][oi])
			}
		}
	}
}

// TestRoundTripProperty: arbitrary op streams survive the round trip.
func TestRoundTripProperty(t *testing.T) {
	type rawOp struct {
		Kind       uint8
		Arg        uint32
		Persistent bool
	}
	prop := func(name string, raw []rawOp) bool {
		tr := &Trace{Name: name}
		var b Builder
		for _, r := range raw {
			op := Op{Kind: Kind(r.Kind % 7), Persistent: r.Persistent}
			if op.Kind == OpCompute {
				op.N = r.Arg
			} else {
				op.Addr = uint64(r.Arg)
			}
			b.ops = append(b.ops, op)
		}
		tr.Threads = append(tr.Threads, b.Ops())

		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Name != tr.Name || len(got.Threads[0]) != len(tr.Threads[0]) {
			return false
		}
		for i := range tr.Threads[0] {
			if got.Threads[0][i] != tr.Threads[0][i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"WRONGMAG",
		"ASAPTRC1", // truncated after magic
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) accepted garbage", c)
		}
	}
	// Unknown op kind.
	var buf bytes.Buffer
	tr := &Trace{Name: "x", Threads: [][]Op{{{Kind: OpLoad, Addr: 1}}}}
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-2] = 0x7f // corrupt the kind byte
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("corrupted kind accepted")
	}
}
