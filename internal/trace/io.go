package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format, version 1:
//
//	magic "ASAPTRC1"
//	name  (uvarint length + bytes)
//	nthreads (uvarint)
//	per thread: nops (uvarint), then per op:
//	    1 byte: kind (low 7 bits) | persistent flag (bit 7)
//	    uvarint: addr (memory/lock ops) or N (compute)
//
// The format is deterministic and self-contained so experiments can be
// archived and replayed bit-identically (the artifact-appendix workflow of
// the paper, minus the 50 GB of disk images).

const traceMagic = "ASAPTRC1"

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUv := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUv(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUv(uint64(len(t.Threads))); err != nil {
		return err
	}
	for _, ops := range t.Threads {
		if err := putUv(uint64(len(ops))); err != nil {
			return err
		}
		for _, op := range ops {
			kb := byte(op.Kind)
			if op.Persistent {
				kb |= 0x80
			}
			if err := bw.WriteByte(kb); err != nil {
				return err
			}
			arg := op.Addr
			if op.Kind == OpCompute {
				arg = uint64(op.N)
			}
			if err := putUv(arg); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("trace: name: %w", err)
	}
	nThreads, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: thread count: %w", err)
	}
	if nThreads > 1<<12 {
		return nil, fmt.Errorf("trace: unreasonable thread count %d", nThreads)
	}
	tr := &Trace{Name: string(nameBytes)}
	for t := uint64(0); t < nThreads; t++ {
		nOps, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op count (thread %d): %w", t, err)
		}
		if nOps > 1<<28 {
			return nil, fmt.Errorf("trace: unreasonable op count %d", nOps)
		}
		ops := make([]Op, 0, nOps)
		for i := uint64(0); i < nOps; i++ {
			kb, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: op kind: %w", err)
			}
			arg, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: op arg: %w", err)
			}
			op := Op{Kind: Kind(kb & 0x7f), Persistent: kb&0x80 != 0}
			if op.Kind > OpStrand {
				return nil, fmt.Errorf("trace: unknown op kind %d", op.Kind)
			}
			if op.Kind == OpCompute {
				if arg > 1<<32-1 {
					return nil, fmt.Errorf("trace: compute duration %d overflows", arg)
				}
				op.N = uint32(arg)
			} else {
				op.Addr = arg
			}
			ops = append(ops, op)
		}
		tr.Threads = append(tr.Threads, ops)
	}
	return tr, nil
}
