package obs

import "sync/atomic"

// Gauge is a race-free progress sink: the single-goroutine machine
// publishes its simulated clock through an atomic, and a concurrent
// reader — asapd's status endpoint — polls it while the run is in
// flight. Unlike Collector and Timeline, which are read only after the
// run, a Gauge is explicitly safe to read during one.
//
// The machine updates the gauge from its periodic sampler (every
// machine.SampleInterval cycles), so the cost is one atomic store per
// sample period, nothing on the per-op path, and zero when no gauge is
// attached.
type Gauge struct {
	cycles atomic.Uint64
}

// Set publishes the current simulated cycle.
func (g *Gauge) Set(c Cycles) { g.cycles.Store(c) }

// Cycles reads the most recently published simulated cycle. It returns 0
// before the first sample fires.
func (g *Gauge) Cycles() Cycles { return g.cycles.Load() }
