package obs

import (
	"sync/atomic"
	"time"
)

// Progress is a race-free multi-field progress sink: the single-goroutine
// machine publishes a snapshot of its run — simulated clock, events
// dispatched, trace ops retired, persist-buffer and epoch-table occupancy
// — from its periodic sampler, and concurrent readers (asapd's status
// endpoint and SSE stream) poll it while the run is in flight. Unlike
// Collector and Timeline, which are read only after the run, a Progress
// is explicitly safe to read during one.
//
// Publication uses a seqlock over individual atomics: the writer bumps
// seq to odd, stores the fields, and bumps seq to even; a reader retries
// until it sees one even seq across the whole read, so a Snapshot is
// always internally consistent (all fields from one Publish). The writer
// side is allocation-free and pays a handful of uncontended atomic stores
// once per machine.SampleInterval — the same amortized cost class as the
// single-field gauge it replaces — and nothing at all on the per-op path;
// an unattached sink costs the machine one nil comparison per sample.
//
// Publish also derives the wall-clock simulation rate (cycles/sec,
// averaged over the run so far). The wall clock is read here rather than
// in the machine because package machine is inside the detcheck
// determinism boundary (no time.Now); obs is a leaf outside it, and the
// rate feeds only observability, never the simulation.
type Progress struct {
	seq    atomic.Uint64
	cycles atomic.Uint64
	events atomic.Uint64
	ops    atomic.Uint64
	pbOcc  atomic.Uint64
	etOcc  atomic.Uint64
	rate   atomic.Uint64

	// Writer-private (the machine goroutine only): wall-clock anchor of
	// the first publish, for the cumulative cycles/sec rate.
	startWall time.Time
}

// ProgressSnapshot is one consistent published snapshot.
type ProgressSnapshot struct {
	Cycles       Cycles // simulated clock
	Events       uint64 // engine events dispatched
	OpsRetired   uint64 // trace ops retired across all cores
	PBOccupancy  uint64 // persist-buffer entries across all cores
	ETOccupancy  uint64 // epoch-table entries across all cores (0 for models without one)
	CyclesPerSec uint64 // wall-clock simulation rate, averaged over the run
}

// Publish stores one snapshot. Only the owning machine goroutine may call
// it; concurrent Snapshot readers are safe.
func (p *Progress) Publish(cycles Cycles, events, ops, pbOcc, etOcc uint64) {
	now := time.Now()
	var rate uint64
	if p.startWall.IsZero() {
		p.startWall = now
	} else if elapsed := now.Sub(p.startWall); elapsed > 0 {
		rate = uint64(float64(cycles) / elapsed.Seconds())
	}
	p.seq.Add(1) // odd: snapshot in flux
	p.cycles.Store(cycles)
	p.events.Store(events)
	p.ops.Store(ops)
	p.pbOcc.Store(pbOcc)
	p.etOcc.Store(etOcc)
	p.rate.Store(rate)
	p.seq.Add(1) // even: snapshot stable
}

// Snapshot returns the most recently published snapshot (the zero
// snapshot before the first Publish). It spins only while a Publish is in
// flight, which lasts a few stores.
func (p *Progress) Snapshot() ProgressSnapshot {
	for {
		s1 := p.seq.Load()
		if s1&1 != 0 {
			continue
		}
		snap := ProgressSnapshot{
			Cycles:       p.cycles.Load(),
			Events:       p.events.Load(),
			OpsRetired:   p.ops.Load(),
			PBOccupancy:  p.pbOcc.Load(),
			ETOccupancy:  p.etOcc.Load(),
			CyclesPerSec: p.rate.Load(),
		}
		if p.seq.Load() == s1 {
			return snap
		}
	}
}

// Cycles reads the published simulated clock without snapshot consistency
// (single-field reads need no seqlock round).
func (p *Progress) Cycles() Cycles { return p.cycles.Load() }
