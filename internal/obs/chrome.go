package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Collector is the standard Tracer: it accumulates events in memory and
// serializes them as Chrome trace-event JSON (the "JSON Array Format"
// understood by Perfetto and chrome://tracing). Timestamps come from the
// clock passed to NewCollector — the simulation engine's Now — mapped
// from cycles to microseconds at the simulated core frequency, so one
// simulated nanosecond reads as one nanosecond in the viewer.
type Collector struct {
	now    func() Cycles
	tracks []track
	events []event
	opens  [][]int // per-track stack of open Begin event indices
}

type track struct {
	name string
	sort int
}

type event struct {
	ts    Cycles
	track TrackID
	ph    byte // 'B', 'E', 'i', 'C'
	name  string
	val   int64
}

// NewCollector returns a collector reading event times from now
// (typically sim.Engine.Now).
func NewCollector(now func() Cycles) *Collector {
	if now == nil {
		panic("obs: NewCollector requires a clock")
	}
	return &Collector{now: now}
}

// Track registers a named track. Registering an existing name returns
// the prior ID, so independent components may share a track.
func (c *Collector) Track(name string, sort int) TrackID {
	for i, t := range c.tracks {
		if t.name == name {
			return TrackID(i)
		}
	}
	c.tracks = append(c.tracks, track{name: name, sort: sort})
	c.opens = append(c.opens, nil)
	return TrackID(len(c.tracks) - 1)
}

// TrackName returns the registered name of track t.
func (c *Collector) TrackName(t TrackID) string { return c.tracks[t].name }

// Len reports the number of recorded events (metadata excluded).
func (c *Collector) Len() int { return len(c.events) }

func (c *Collector) checkTrack(t TrackID) {
	if int(t) < 0 || int(t) >= len(c.tracks) {
		panic(fmt.Sprintf("obs: event on unregistered track %d", t))
	}
}

// Begin opens a duration span on track t.
func (c *Collector) Begin(t TrackID, name string) {
	c.checkTrack(t)
	c.opens[t] = append(c.opens[t], len(c.events))
	c.events = append(c.events, event{ts: c.now(), track: t, ph: 'B', name: name})
}

// End closes the innermost open span on track t. Ending with no span
// open is a protocol bug upstream and panics.
func (c *Collector) End(t TrackID) {
	c.checkTrack(t)
	n := len(c.opens[t])
	if n == 0 {
		panic(fmt.Sprintf("obs: End on track %q with no open span", c.tracks[t].name))
	}
	c.opens[t] = c.opens[t][:n-1]
	c.events = append(c.events, event{ts: c.now(), track: t, ph: 'E'})
}

// Instant records a point event on track t.
func (c *Collector) Instant(t TrackID, name string) {
	c.checkTrack(t)
	c.events = append(c.events, event{ts: c.now(), track: t, ph: 'i', name: name})
}

// Counter records the current value of series name on track t. The
// series is namespaced by the track name in the output ("core0/pb"), as
// the Chrome format attaches counters to processes, not threads.
func (c *Collector) Counter(t TrackID, name string, v int64) {
	c.checkTrack(t)
	c.events = append(c.events, event{ts: c.now(), track: t, ph: 'C', name: name, val: v})
}

// OpenSpans reports spans begun but not yet ended across all tracks.
func (c *Collector) OpenSpans() int {
	n := 0
	for _, s := range c.opens {
		n += len(s)
	}
	return n
}

// jsonEvent is the wire form of one trace event. Field order is fixed by
// the struct, so output is byte-deterministic for identical event
// sequences.
type jsonEvent struct {
	Name  string         `json:"name,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// tsOf maps a cycle count to a Chrome timestamp (microseconds).
func tsOf(c Cycles) float64 { return float64(c) / (CyclesPerNS * 1000) }

// WriteChromeTrace serializes the collected events as Chrome trace-event
// JSON. Spans still open at serialization time (a run stopped by a crash
// or a cycle limit) are closed at the time of the last event, keeping
// every track's begin/end pairs balanced. The collector remains usable
// afterwards.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[` + "\n")
	enc := func(e jsonEvent) {
		b, err := json.Marshal(e)
		if err != nil {
			bw.err = err
			return
		}
		bw.Write(b)
	}
	first := true
	emit := func(e jsonEvent) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		enc(e)
	}

	emit(jsonEvent{Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "asap simulated machine"}})
	for i, t := range c.tracks {
		emit(jsonEvent{Name: "thread_name", Phase: "M", PID: 0, TID: i,
			Args: map[string]any{"name": t.name}})
		emit(jsonEvent{Name: "thread_sort_index", Phase: "M", PID: 0, TID: i,
			Args: map[string]any{"sort_index": t.sort}})
	}

	var last Cycles
	for _, e := range c.events {
		if e.ts > last {
			last = e.ts
		}
		je := jsonEvent{Name: e.name, Phase: string(e.ph), TS: tsOf(e.ts), PID: 0, TID: int(e.track)}
		switch e.ph {
		case 'i':
			je.Scope = "t"
		case 'C':
			// Counters are per-process in the Chrome format; prefix the
			// series with the track name to keep per-core/per-MC series
			// apart.
			je.Name = c.tracks[e.track].name + "/" + e.name
			je.Args = map[string]any{"value": e.val}
		}
		emit(je)
	}

	// Balance any spans the run left open.
	for tid, open := range c.opens {
		for range open {
			emit(jsonEvent{Phase: "E", TS: tsOf(last), PID: 0, TID: tid})
		}
	}

	bw.WriteString("\n]}\n")
	return bw.err
}

// errWriter folds write errors so serialization reads linearly.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

func (e *errWriter) WriteString(s string) { e.Write([]byte(s)) }
