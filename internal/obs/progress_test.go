package obs

import (
	"sync"
	"testing"
)

// TestProgressSnapshotConsistency hammers a Progress with one writer and
// several readers (run under -race in CI). The writer publishes related
// fields — events = cycles*2, ops = cycles*3 — so any torn read, not
// just a data race, is detectable: a snapshot mixing two publishes
// breaks the relation.
func TestProgressSnapshotConsistency(t *testing.T) {
	var p Progress
	const publishes = 20000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); i <= publishes; i++ {
			p.Publish(i, i*2, i*3, i%7, i%11)
		}
	}()

	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sn := p.Snapshot()
				if sn.Events != sn.Cycles*2 || sn.OpsRetired != sn.Cycles*3 {
					t.Errorf("torn snapshot: cycles=%d events=%d ops=%d", sn.Cycles, sn.Events, sn.OpsRetired)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	<-done
	wg.Wait()

	final := p.Snapshot()
	if final.Cycles != publishes || final.Events != publishes*2 {
		t.Fatalf("final snapshot = %+v, want cycles=%d", final, publishes)
	}
}

// TestProgressRate: the first publish anchors the wall clock (rate 0),
// later publishes derive a positive cumulative rate.
func TestProgressRate(t *testing.T) {
	var p Progress
	p.Publish(1000, 0, 0, 0, 0)
	if r := p.Snapshot().CyclesPerSec; r != 0 {
		t.Fatalf("rate after first publish = %d, want 0 (anchor)", r)
	}
	p.Publish(2000, 0, 0, 0, 0)
	if r := p.Snapshot().CyclesPerSec; r == 0 {
		t.Fatal("rate still zero after second publish")
	}
}

// TestProgressZeroValue: reading before any publish yields the zero
// snapshot rather than blocking or faulting.
func TestProgressZeroValue(t *testing.T) {
	var p Progress
	if sn := p.Snapshot(); sn != (ProgressSnapshot{}) {
		t.Fatalf("zero-value snapshot = %+v", sn)
	}
	if c := p.Cycles(); c != 0 {
		t.Fatalf("zero-value cycles = %d", c)
	}
}

// TestProgressAllocFree pins the contract the machine's sampler relies
// on: Publish and Snapshot allocate nothing.
func TestProgressAllocFree(t *testing.T) {
	var p Progress
	if n := testing.AllocsPerRun(200, func() {
		p.Publish(1, 2, 3, 4, 5)
	}); n != 0 {
		t.Fatalf("Publish allocates %v per call", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = p.Snapshot()
	}); n != 0 {
		t.Fatalf("Snapshot allocates %v per call", n)
	}
}
