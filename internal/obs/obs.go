// Package obs is the simulator's observability layer: event tracing and
// time-series sampling, designed to cost nothing when disabled.
//
// Components hold a Tracer-typed hook that is nil by default. Every call
// site must be nil-guarded —
//
//	if m.trc != nil {
//		m.trc.Instant(track, "nack")
//	}
//
// — so a disabled tracer costs one pointer comparison and the event
// arguments are never materialized. The obscheck analyzer
// (internal/analysis/obscheck) enforces this contract statically.
//
// The package is a leaf: it imports nothing from the rest of the
// repository, so every simulator layer (sim, mem, cache, persist, model,
// machine) can hook into it without import cycles. Cycles mirrors
// sim.Cycles (both are uint64 aliases), keeping call sites cast-free.
//
// Two sinks are provided: Collector accumulates trace events and
// serializes them as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing, one track per core and per memory controller), and
// Timeline accumulates periodic occupancy samples and serializes them as
// CSV. Both are single-goroutine, like the simulated machine that feeds
// them: a parallel harness gives each machine its own sinks, which keeps
// tracing race-free and its content deterministic.
package obs

// Cycles mirrors sim.Cycles (one cycle of the 2 GHz core clock) so this
// package stays dependency-free.
type Cycles = uint64

// CyclesPerNS mirrors sim.CyclesPerNS: the simulated core frequency in
// cycles per nanosecond, used to map cycles to trace timestamps.
const CyclesPerNS = 2

// TrackID identifies one timeline in a trace: a core, a memory
// controller, or the engine itself. IDs are allocated by Tracer.Track.
type TrackID int

// Tracer is the event sink threaded through the simulation stack. All
// methods take the event time from the sink's clock (the simulation
// engine), so passive structures such as mem.WPQ can emit events without
// holding an engine reference.
//
// Implementations are not safe for concurrent use; one Tracer serves one
// single-goroutine machine.
type Tracer interface {
	// Track registers a named track and returns its ID. sort orders
	// tracks in the viewer (lower is higher). Registering the same name
	// twice returns the same ID.
	Track(name string, sort int) TrackID

	// Begin opens a duration span named name on track t. Spans on one
	// track must nest; close them with End in LIFO order.
	Begin(t TrackID, name string)
	// End closes the innermost open span on track t.
	End(t TrackID)
	// Instant records a point event named name on track t.
	Instant(t TrackID, name string)
	// Counter records the current value of series name on track t; the
	// series is plotted as a step function over time.
	Counter(t TrackID, name string, v int64)
}
