package obs

import (
	"fmt"
	"io"
	"strconv"
)

// Timeline is the time-series sink: a periodic sampler appends one row
// of occupancy gauges per interval, and WriteCSV renders the run as a
// plottable CSV timeline ("PB fills at cycle X under Baseline but not
// ASAP" becomes a fact you can graph). Like Collector, a Timeline serves
// one single-goroutine machine.
type Timeline struct {
	interval Cycles
	cols     []string
	rows     [][]uint64
}

// DefaultTimelineInterval is the sampling period machines use when the
// caller does not choose one, matching the statistics sampler.
const DefaultTimelineInterval Cycles = 200

// NewTimeline returns a timeline sampled every interval cycles with the
// given value columns (a leading "cycle" column is implicit).
func NewTimeline(interval Cycles, cols ...string) *Timeline {
	if interval == 0 {
		interval = DefaultTimelineInterval
	}
	if len(cols) == 0 {
		panic("obs: timeline needs at least one column")
	}
	return &Timeline{interval: interval, cols: cols}
}

// Interval returns the sampling period in cycles.
func (t *Timeline) Interval() Cycles { return t.interval }

// Columns returns the value column names (without the cycle column).
func (t *Timeline) Columns() []string { return t.cols }

// Len reports the number of rows sampled.
func (t *Timeline) Len() int { return len(t.rows) }

// Append records one sample row at the given cycle. The number of values
// must match the registered columns.
func (t *Timeline) Append(cycle Cycles, vals ...uint64) {
	if len(vals) != len(t.cols) {
		panic(fmt.Sprintf("obs: timeline row has %d values for %d columns", len(vals), len(t.cols)))
	}
	row := make([]uint64, 0, len(vals)+1)
	row = append(row, cycle)
	row = append(row, vals...)
	t.rows = append(t.rows, row)
}

// Row returns sample i as (cycle, values).
func (t *Timeline) Row(i int) (Cycles, []uint64) {
	r := t.rows[i]
	return r[0], r[1:]
}

// WriteCSV renders the timeline with a header row.
func (t *Timeline) WriteCSV(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.WriteString("cycle")
	for _, c := range t.cols {
		bw.WriteString("," + c)
	}
	bw.WriteString("\n")
	for _, r := range t.rows {
		for i, v := range r {
			if i > 0 {
				bw.WriteString(",")
			}
			bw.WriteString(strconv.FormatUint(v, 10))
		}
		bw.WriteString("\n")
	}
	return bw.err
}
