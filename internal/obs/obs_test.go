package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// fakeClock is an advanceable cycle counter standing in for sim.Engine.
type fakeClock struct{ now Cycles }

func (f *fakeClock) Now() Cycles { return f.now }

func TestCollectorTracksAndEvents(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(clk.Now)
	core := c.Track("core0", 0)
	mc := c.Track("mc0", 100)
	if again := c.Track("core0", 0); again != core {
		t.Fatalf("re-registering core0 gave %d, want %d", again, core)
	}
	if c.TrackName(mc) != "mc0" {
		t.Fatalf("TrackName(mc) = %q", c.TrackName(mc))
	}

	c.Begin(core, "dfence")
	clk.now = 10
	c.Instant(mc, "flush safe")
	c.Counter(mc, "wpq", 3)
	clk.now = 20
	c.End(core)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	if c.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d, want 0", c.OpenSpans())
	}
}

func TestEndWithoutBeginPanics(t *testing.T) {
	c := NewCollector(func() Cycles { return 0 })
	tr := c.Track("core0", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("End with no open span did not panic")
		}
	}()
	c.End(tr)
}

// chromeDoc mirrors the serialized trace for schema checks.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

func writeTrace(t *testing.T, c *Collector) chromeDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestChromeTraceShape(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(clk.Now)
	core := c.Track("core0", 0)
	mc := c.Track("mc0", 100)

	c.Begin(core, "dfence")
	clk.now = 2000 // 1 us at 2 GHz
	c.Counter(mc, "wpq", 5)
	clk.now = 4000
	c.End(core)

	doc := writeTrace(t, c)
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	names := map[string]bool{}
	var begins, ends int
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "M":
			if e.Name == "thread_name" {
				names[e.Args["name"].(string)] = true
			}
		case "B":
			begins++
		case "E":
			ends++
		case "C":
			if e.Name != "mc0/wpq" {
				t.Errorf("counter name = %q, want mc0/wpq", e.Name)
			}
			if v := e.Args["value"].(float64); v != 5 {
				t.Errorf("counter value = %v, want 5", v)
			}
			if e.TS != 1.0 { // 2000 cycles = 1 us
				t.Errorf("counter ts = %v us, want 1", e.TS)
			}
		}
	}
	if !names["core0"] || !names["mc0"] {
		t.Errorf("thread_name metadata missing: %v", names)
	}
	if begins != 1 || ends != 1 {
		t.Errorf("begin/end = %d/%d, want 1/1", begins, ends)
	}
}

func TestChromeTraceClosesOpenSpans(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(clk.Now)
	core := c.Track("core0", 0)
	c.Begin(core, "dfence")
	clk.now = 100
	c.Instant(core, "crash")

	doc := writeTrace(t, c)
	var begins, ends int
	var lastEnd float64
	for _, e := range doc.TraceEvents {
		switch e.Phase {
		case "B":
			begins++
		case "E":
			ends++
			lastEnd = e.TS
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("begin/end = %d/%d, want balanced 1/1", begins, ends)
	}
	if lastEnd != tsOf(100) {
		t.Errorf("auto-close ts = %v, want %v (time of last event)", lastEnd, tsOf(100))
	}
	// The collector itself still reports the span open: serialization
	// balances the output without mutating state.
	if c.OpenSpans() != 1 {
		t.Errorf("OpenSpans = %d after write, want 1", c.OpenSpans())
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() string {
		clk := &fakeClock{}
		c := NewCollector(clk.Now)
		core := c.Track("core0", 0)
		mc := c.Track("mc1", 101)
		for i := 0; i < 50; i++ {
			clk.now += 7
			c.Instant(core, "store")
			c.Counter(mc, "wpq", int64(i%9))
		}
		var buf bytes.Buffer
		if err := c.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatal("identical event sequences serialized differently")
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(0, "pb0", "wpq0")
	if tl.Interval() != DefaultTimelineInterval {
		t.Fatalf("Interval = %d", tl.Interval())
	}
	tl.Append(200, 3, 1)
	tl.Append(400, 5, 2)
	if tl.Len() != 2 {
		t.Fatalf("Len = %d", tl.Len())
	}
	cycle, vals := tl.Row(1)
	if cycle != 400 || vals[0] != 5 || vals[1] != 2 {
		t.Fatalf("Row(1) = %d %v", cycle, vals)
	}

	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "cycle,pb0,wpq0\n200,3,1\n400,5,2\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTimelineRowWidthPanics(t *testing.T) {
	tl := NewTimeline(100, "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	tl.Append(100, 1)
}

func TestCounterSeriesPerTrack(t *testing.T) {
	clk := &fakeClock{}
	c := NewCollector(clk.Now)
	a := c.Track("mc0", 100)
	b := c.Track("mc1", 101)
	c.Counter(a, "wpq", 1)
	c.Counter(b, "wpq", 2)
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"mc0/wpq"`) || !strings.Contains(s, `"mc1/wpq"`) {
		t.Fatalf("counter series not namespaced by track:\n%s", s)
	}
}
