package harness

import "testing"

// TestShardedTablesIdentical renders experiments on a serial harness and a
// sharded one (Shards: 2) and requires byte-identical tables: the machine
// package's differential suite proves result-identity run by run, this test
// proves it survives the full harness path — spec building (the shards
// field on every job), the engine cache, and table assembly.
func TestShardedTablesIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("renders full experiments twice")
	}
	serialOpts := QuickOptions()
	serialOpts.Parallel = 1
	shardedOpts := QuickOptions()
	shardedOpts.Parallel = 1
	shardedOpts.Shards = 2

	serial := New(serialOpts)
	sharded := New(shardedOpts)
	// fig8 is the headline (every workload × the six evaluated models);
	// tab5 adds the related-work designs, including vorpal's serial
	// fallback path.
	for _, id := range []string{"fig8", "tab5"} {
		want, err := serial.Experiment(id)
		if err != nil {
			t.Fatalf("serial %s: %v", id, err)
		}
		got, err := sharded.Experiment(id)
		if err != nil {
			t.Fatalf("sharded %s: %v", id, err)
		}
		if want.Text() != got.Text() {
			t.Errorf("%s diverged between serial and sharded engines:\n--- serial ---\n%s\n--- sharded ---\n%s",
				id, want.Text(), got.Text())
		}
	}
}
