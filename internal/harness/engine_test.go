package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/runspec"
	"asap/internal/trace"
)

// TestSingleflightDedup: concurrent requests for one key run the
// simulation exactly once and all see the identical result.
func TestSingleflightDedup(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 4})
	const callers = 16
	results := make([]uint64, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			r, err := h.Run("cceh", model.NameASAPRP, 4)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = uint64(r.Cycles)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw %d cycles, caller 0 saw %d", i, results[i], results[0])
		}
	}
	if _, runs := h.eng.execs(); runs != 1 {
		t.Fatalf("executed %d simulations for one key, want 1", runs)
	}
	traces, _ := h.eng.execs()
	if traces != 1 {
		t.Fatalf("generated %d traces for one key, want 1", traces)
	}
}

// TestRunSharedAcrossModels: runs of the same workload under different
// models share one generated trace.
func TestRunSharedAcrossModels(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 2})
	for _, mdl := range []string{model.NameBaseline, model.NameHOPSRP, model.NameASAPRP} {
		if _, err := h.Run("cceh", mdl, 4); err != nil {
			t.Fatal(err)
		}
	}
	traces, runs := h.eng.execs()
	if traces != 1 || runs != 3 {
		t.Fatalf("execs = %d traces / %d runs, want 1/3", traces, runs)
	}
}

// TestErrorPropagation: an invalid simulation returns an error instead of
// panicking, and the error reaches every waiter for that key.
func TestErrorPropagation(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 2})
	_, err := h.Run("no_such_workload", model.NameASAPRP, 4)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("err = %v, want unknown-workload error", err)
	}
	// The error is cached: a second request sees it without re-executing.
	_, err2 := h.Run("no_such_workload", model.NameASAPRP, 4)
	if err2 == nil {
		t.Fatal("cached error lost")
	}
}

// TestUnknownModelError: machine construction failures surface as errors
// naming the run.
func TestUnknownModelError(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 2})
	_, err := h.Run("cceh", "no_such_model", 4)
	if err == nil || !strings.Contains(err.Error(), "cceh/no_such_model/4t") {
		t.Fatalf("err = %v, want error naming cceh/no_such_model/4t", err)
	}
}

// TestZeroCyclesError: a run that simulates zero cycles is reported as an
// error, not a panic (an empty trace drains immediately).
func TestZeroCyclesError(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 2})
	k := h.job("cceh", model.NameASAPRP, 4)
	// Pre-seed the trace cache with an empty trace: no cores ever run, so
	// the machine reports zero cycles.
	tk := traceKey{wl: k.Workload, p: k.Params}
	ready := make(chan struct{})
	close(ready)
	h.eng.calls[tk] = &call{ready: ready, val: &trace.Trace{Name: "empty"}}
	_, err := h.Run("cceh", model.NameASAPRP, 4)
	if err == nil || !strings.Contains(err.Error(), "zero cycles") {
		t.Fatalf("err = %v, want zero-cycles error", err)
	}
}

// TestPanicBecomesError: a panic below a worker is converted into an
// error that propagates through the pool instead of killing the process.
func TestPanicBecomesError(t *testing.T) {
	e := newEngine(Options{Parallel: 2})
	_, err := e.protect("boom-test", func() (any, error) {
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want captured panic", err)
	}
}

// TestFirstErrorCancels: after one simulation fails, leaders that have
// not started yet return the first failure's root cause instead of
// running.
func TestFirstErrorCancels(t *testing.T) {
	e := newEngine(Options{Parallel: 1})
	root := errors.New("root cause failure")
	if _, err := e.once("a", func() (any, error) {
		return e.protect("a", func() (any, error) { return nil, root })
	}); !errors.Is(err, root) {
		t.Fatalf("leader a: err = %v", err)
	}
	var ran atomic.Bool
	_, err := e.once("b", func() (any, error) {
		return e.protect("b", func() (any, error) {
			ran.Store(true)
			return 1, nil
		})
	})
	if !errors.Is(err, root) {
		t.Fatalf("leader b: err = %v, want the root cause", err)
	}
	if ran.Load() {
		t.Fatal("leader b executed after cancellation")
	}
}

// TestKeepGoingIsolatesErrors: with KeepGoing set (asapd's mode), a
// failed simulation stays failed under its own spec but does not cancel
// the engine — an unrelated spec still runs to completion afterwards.
func TestKeepGoingIsolatesErrors(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 2, KeepGoing: true})
	if _, err := h.Run("no_such_workload", model.NameASAPRP, 4); err == nil {
		t.Fatal("want error for unknown workload")
	}
	r, err := h.Run("cceh", model.NameASAPRP, 4)
	if err != nil {
		t.Fatalf("unrelated run poisoned by earlier error: %v", err)
	}
	if r.Cycles == 0 {
		t.Fatal("unrelated run produced no cycles")
	}
	// The failed spec's error remains cached.
	if _, err := h.Run("no_such_workload", model.NameASAPRP, 4); err == nil {
		t.Fatal("cached error lost under KeepGoing")
	}
}

// TestObserveHook: the Observe hook fires once per leader simulation
// (cache hits do not re-observe), sees the executing spec, and observing
// does not change the result.
func TestObserveHook(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	h := New(Options{Ops: 30, Seed: 1, Parallel: 2,
		Observe: func(spec runspec.RunSpec, m *machine.Machine) {
			if m == nil {
				t.Error("Observe got nil machine")
			}
			mu.Lock()
			seen[spec.String()]++
			mu.Unlock()
		}})
	r1, err := h.Run("cceh", model.NameASAPRP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run("cceh", model.NameASAPRP, 4); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := seen["cceh/asap_rp/4t"]
	mu.Unlock()
	if n != 1 {
		t.Fatalf("Observe fired %d times for one leader, want 1", n)
	}
	plain := New(Options{Ops: 30, Seed: 1, Parallel: 1})
	r2, err := plain.Run("cceh", model.NameASAPRP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("observing changed the simulation: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}

// TestPoolBound: no more than Parallel simulations execute at once.
func TestPoolBound(t *testing.T) {
	const bound = 3
	e := newEngine(Options{Parallel: bound})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e.once(i, func() (any, error) {
				return e.protect("job", func() (any, error) {
					n := cur.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					// Busy loop briefly so workers overlap.
					for j := 0; j < 1000; j++ {
						_ = fmt.Sprintf("%d", j)
					}
					cur.Add(-1)
					return i, nil
				})
			})
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrency %d exceeds pool bound %d", p, bound)
	}
}

// TestRunMachineCached: RunMachine returns the identical machine for
// repeated requests (it is cached for Fig2's ledger inspection).
func TestRunMachineCached(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 2})
	m1, err := h.RunMachine("cceh", model.NameASAPRP, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := h.RunMachine("cceh", model.NameASAPRP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("RunMachine re-ran instead of returning the cached machine")
	}
}
