package harness

import (
	"fmt"

	"asap/internal/hwcost"
)

// Tab5 reproduces Table V: hardware overheads of the persist buffer, epoch
// table and recovery table vs a 32 kB L1 cache, from the analytic CACTI
// stand-in in package hwcost, plus the §VII-D draining-energy comparison.
func (h *Harness) Tab5() (*Table, error) {
	t := &Table{
		ID:     "tab5",
		Title:  "Hardware overheads (22 nm analytic model; paper used CACTI 7)",
		Header: []string{"structure", "area (mm2)", "access (ns)", "write (pJ)", "read (pJ)"},
	}
	for _, s := range []hwcost.Structure{
		hwcost.PersistBuffer(),
		hwcost.EpochTable(),
		hwcost.RecoveryTable(),
		hwcost.L1Cache(),
	} {
		c := hwcost.Model(s)
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.3f", c.AreaMM2),
			fmt.Sprintf("%.3f", c.AccessNS),
			fmt.Sprintf("%.3f", c.WriteEnergy),
			fmt.Sprintf("%.3f", c.ReadEnergy),
		})
	}
	t.Notes = append(t.Notes,
		"paper Table V: PB 0.093mm2/0.402ns/30pJ/28.9pJ; ET 0.006/0.185/0.428/0.092; RT 0.097/0.413/31.5/31.5; L1 0.759/1.403/327.9/327.9",
		fmt.Sprintf("ADR drain on power failure: ASAP flushes <%d B from recovery tables (paper: <4 KB), vs ~64 KB for BBB and ~42 MB for eADR on a 32-core server",
			hwcost.DrainBytes(32, 2)),
	)
	return t, nil
}
