// Package harness regenerates every figure and table of the ASAP paper's
// evaluation (§VII). Each experiment returns a Table that the cmd/asapfig
// binary prints as text or CSV; EXPERIMENTS.md records paper-vs-measured.
package harness

import (
	"fmt"
	"sort"
	"strings"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/trace"
	"asap/internal/workload"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Text renders the table for a terminal.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Options scales experiments: Ops is structure-level operations per thread.
type Options struct {
	Ops  int
	Seed uint64
}

// DefaultOptions gives publication-scale runs (a few seconds per figure).
func DefaultOptions() Options { return Options{Ops: 400, Seed: 1} }

// QuickOptions gives fast runs for tests and benchmarks.
func QuickOptions() Options { return Options{Ops: 80, Seed: 1} }

// Harness caches generated traces and run results across experiments.
type Harness struct {
	opts   Options
	traces map[string]*trace.Trace
	runs   map[string]machine.Result
}

// New builds a harness.
func New(opts Options) *Harness {
	if opts.Ops <= 0 {
		opts = DefaultOptions()
	}
	return &Harness{
		opts:   opts,
		traces: make(map[string]*trace.Trace),
		runs:   make(map[string]machine.Result),
	}
}

// Workloads returns the Table III workload list (the bandwidth micro is
// excluded; it has its own experiment).
func Workloads() []string {
	var out []string
	for _, n := range workload.Names() {
		if n != "bandwidth" {
			out = append(out, n)
		}
	}
	return out
}

func (h *Harness) params(threads int) workload.Params {
	p := workload.Default()
	p.Threads = threads
	p.OpsPerThread = h.opts.Ops
	p.Seed = h.opts.Seed
	return p
}

func (h *Harness) traceFor(wl string, threads int) *trace.Trace {
	key := fmt.Sprintf("%s/%d", wl, threads)
	if tr, ok := h.traces[key]; ok {
		return tr
	}
	tr, err := workload.Generate(wl, h.params(threads))
	if err != nil {
		panic(err)
	}
	h.traces[key] = tr
	return tr
}

// Run executes workload wl under the named model with `threads` threads on
// a machine with max(threads, 4) cores and 2 MCs, caching the result.
func (h *Harness) Run(wl, mdl string, threads int) machine.Result {
	key := fmt.Sprintf("%s/%s/%d", wl, mdl, threads)
	if r, ok := h.runs[key]; ok {
		return r
	}
	cfg := config.Default()
	if threads > cfg.Cores {
		cfg.Cores = threads
	}
	m, err := machine.New(cfg, mdl, h.traceFor(wl, threads))
	if err != nil {
		panic(err)
	}
	r := m.Run(0)
	if r.Cycles == 0 {
		panic(fmt.Sprintf("harness: %s produced zero cycles", key))
	}
	h.runs[key] = r
	return r
}

func (h *Harness) cfgFor(threads int) config.Config {
	cfg := config.Default()
	if threads > cfg.Cores {
		cfg.Cores = threads
	}
	return cfg
}

func (h *Harness) runTrace(cfg config.Config, mdl string, tr *trace.Trace) machine.Result {
	m, err := machine.New(cfg, mdl, tr)
	if err != nil {
		panic(err)
	}
	r := m.Run(0)
	if r.Cycles == 0 {
		panic("harness: run produced zero cycles")
	}
	return r
}

// RunMachine builds and runs a machine without caching, returning it for
// inspection (used by experiments needing ledger access).
func (h *Harness) RunMachine(wl, mdl string, threads int) *machine.Machine {
	cfg := config.Default()
	if threads > cfg.Cores {
		cfg.Cores = threads
	}
	m, err := machine.New(cfg, mdl, h.traceFor(wl, threads))
	if err != nil {
		panic(err)
	}
	m.Run(0)
	return m
}

// Experiments lists the available experiment IDs in paper order.
func Experiments() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var experiments = map[string]func(*Harness) *Table{
	"fig2":  (*Harness).Fig2,
	"fig3":  (*Harness).Fig3,
	"fig8":  (*Harness).Fig8,
	"fig9":  (*Harness).Fig9,
	"fig10": (*Harness).Fig10,
	"fig11": (*Harness).Fig11,
	"fig12": (*Harness).Fig12,
	"fig13": (*Harness).Fig13,
	"tab5":  (*Harness).Tab5,
}

// Experiment runs one experiment by ID.
func (h *Harness) Experiment(id string) (*Table, error) {
	fn, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
	}
	return fn(h), nil
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
