// Package harness regenerates every figure and table of the ASAP paper's
// evaluation (§VII). Each experiment returns a Table that the cmd/asapfig
// binary prints as text or CSV; EXPERIMENTS.md records paper-vs-measured.
//
// Experiments execute on a concurrent engine (engine.go): the independent
// (workload, model, config) simulations behind a table fan out across a
// bounded worker pool, deduplicated so overlapping experiments compute
// each simulation exactly once, while table assembly stays serial — so
// parallel output is byte-identical to serial output.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/runspec"
	"asap/internal/trace"
	"asap/internal/workload"
)

// Table is one rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Text renders the table for a terminal.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Options scales experiments: Ops is structure-level operations per thread.
type Options struct {
	Ops  int
	Seed uint64
	// Parallel bounds concurrently executing simulations: 0 picks
	// GOMAXPROCS, 1 runs strictly serially. Results are identical at any
	// setting (every simulation is a pure function of its key).
	Parallel int
	// TraceDir, when non-empty, captures a Chrome trace-event JSON and an
	// occupancy-timeline CSV for every executed simulation into this
	// directory (<workload>_<model>_<N>t_<hash>.trace.json / .timeline.csv).
	// Artifacts are deterministic and written exactly once per simulation,
	// so capture is safe at any Parallel setting.
	TraceDir string
	// KeepGoing stops the first simulation error from cancelling the
	// whole engine. Batch callers (asapfig) want fail-fast: one broken
	// experiment aborts the run with its root cause. A long-running
	// service (asapd) wants the opposite — errors stay cached under
	// their own spec, and unrelated requests keep working.
	KeepGoing bool
	// Shards requests a sharded (multi-domain) simulation engine for every
	// run the harness builds: 0 or 1 selects the serial engine, larger
	// values split each machine across timing domains (see
	// machine.NewSharded; the effective count may be clamped). Sharded runs
	// reproduce serial results exactly, so tables are identical at any
	// setting — the differential suite in package machine and the
	// golden-table test here enforce that. Runs requested through RunSpec
	// carry their own Shards field and are unaffected by this option.
	// Trace capture requires the serial engine: sharded leaders skip
	// artifact writes (see engine.instrument).
	Shards int
	// Observe, when non-nil, is invoked on each leader simulation's
	// machine after construction and before Run, so callers can attach
	// observability sinks (asapd attaches an obs.Gauge for progress
	// reporting). It runs on worker goroutines — implementations must be
	// safe for concurrent calls — and must only observe: scheduling model
	// work from here would perturb the simulation.
	Observe func(runspec.RunSpec, *machine.Machine)
}

// DefaultOptions gives publication-scale runs (a few seconds per figure).
func DefaultOptions() Options { return Options{Ops: 400, Seed: 1} }

// QuickOptions gives fast runs for tests and benchmarks.
func QuickOptions() Options { return Options{Ops: 80, Seed: 1} }

// Harness runs experiments on a shared concurrent engine; traces and run
// results are cached and deduplicated across experiments.
type Harness struct {
	opts Options
	eng  *engine
}

// New builds a harness. A non-positive Ops selects DefaultOptions scale
// (and its seed, when none is given); every other option passes through.
func New(opts Options) *Harness {
	if opts.Ops <= 0 {
		opts.Ops = DefaultOptions().Ops
		if opts.Seed == 0 {
			opts.Seed = DefaultOptions().Seed
		}
	}
	return &Harness{opts: opts, eng: newEngine(opts)}
}

// Parallelism reports the engine's worker-pool size.
func (h *Harness) Parallelism() int { return h.eng.workers() }

// Perf reports the work the engine has executed so far: leader
// simulations run (cache hits excluded) and the simulated cycles they
// covered. cmd/asapfig divides the cycle count by wall time for its
// cycles/sec report.
func (h *Harness) Perf() (runs int64, simCycles uint64) {
	_, r := h.eng.execs()
	return r, h.eng.simCycles.Load()
}

// Workloads returns the Table III workload list (the bandwidth micro is
// excluded; it has its own experiment).
func Workloads() []string {
	var out []string
	for _, n := range workload.Names() {
		if n != "bandwidth" {
			out = append(out, n)
		}
	}
	return out
}

func (h *Harness) params(threads int) workload.Params {
	p := workload.Default()
	p.Threads = threads
	p.OpsPerThread = h.opts.Ops
	p.Seed = h.opts.Seed
	return p
}

func (h *Harness) cfgFor(threads int) config.Config {
	cfg := config.Default()
	if threads > cfg.Cores {
		cfg.Cores = threads
	}
	return cfg
}

// job builds the run spec for the standard configuration: `threads`
// threads on a machine with max(threads, 4) cores and 2 MCs.
func (h *Harness) job(wl, mdl string, threads int) runspec.RunSpec {
	return h.jobParams(h.cfgFor(threads), h.params(threads), wl, mdl)
}

// jobCfg is job with an explicit machine configuration (ablation sweeps).
func (h *Harness) jobCfg(cfg config.Config, wl, mdl string, threads int) runspec.RunSpec {
	return h.jobParams(cfg, h.params(threads), wl, mdl)
}

// jobParams is job with explicit machine configuration and workload
// parameters (bandwidth and strand traces). Every harness-built spec
// passes through here, so the Shards option lands on all of them.
func (h *Harness) jobParams(cfg config.Config, p workload.Params, wl, mdl string) runspec.RunSpec {
	s := runspec.New(wl, mdl, p, cfg)
	s.Shards = h.opts.Shards
	s.Normalize()
	return s
}

func (h *Harness) traceFor(wl string, threads int) (*trace.Trace, error) {
	return h.eng.trace(traceKey{wl: wl, p: h.params(threads)})
}

// Run executes workload wl under the named model with `threads` threads on
// a machine with max(threads, 4) cores and 2 MCs, caching the result.
func (h *Harness) Run(wl, mdl string, threads int) (machine.Result, error) {
	return h.eng.run(h.job(wl, mdl, threads))
}

// RunCfg is Run with an explicit machine configuration.
func (h *Harness) RunCfg(cfg config.Config, wl, mdl string, threads int) (machine.Result, error) {
	return h.eng.run(h.jobCfg(cfg, wl, mdl, threads))
}

// RunParams is Run with explicit machine configuration and workload
// parameters (the bandwidth micro and strand-annotated traces).
func (h *Harness) RunParams(cfg config.Config, p workload.Params, wl, mdl string) (machine.Result, error) {
	return h.eng.run(h.jobParams(cfg, p, wl, mdl))
}

// RunMachine builds and runs a machine, returning it for inspection (used
// by experiments needing ledger access). The run machine is cached; it
// must not be mutated.
func (h *Harness) RunMachine(wl, mdl string, threads int) (*machine.Machine, error) {
	return h.eng.machine(h.job(wl, mdl, threads))
}

// Spec builds the RunSpec for the standard configuration — the spec Run
// would execute for the same arguments. Callers that need full control
// over parameters or configuration build specs with runspec.New.
func (h *Harness) Spec(wl, mdl string, threads int) runspec.RunSpec {
	return h.job(wl, mdl, threads)
}

// RunSpec executes an explicit spec through the engine's singleflight
// cache: concurrent submissions of one spec simulate once, repeats are
// cache hits, and errors are cached per spec. This is asapd's entry
// point; the spec's Ops/Seed override the harness-level Options scale.
func (h *Harness) RunSpec(spec runspec.RunSpec) (machine.Result, error) {
	return h.eng.run(spec)
}

// experiment couples a table builder with the prefetch plan that lists
// the simulations the builder will request. The plan is an optimization
// contract, not a correctness one: the body always goes through the
// engine cache, so a drifted plan only costs parallelism (the
// plan-coverage test keeps plans honest).
type experiment struct {
	run  func(*Harness) (*Table, error)
	plan func(*Harness) []prefetchJob
}

// prefetchJob is one planned simulation; machine marks RunMachine users
// whose whole machine must be cached, not just the Result.
type prefetchJob struct {
	key     runspec.RunSpec
	machine bool
}

// jobs converts plain run specs into prefetch jobs.
func jobs(keys ...runspec.RunSpec) []prefetchJob {
	out := make([]prefetchJob, len(keys))
	for i, k := range keys {
		out[i] = prefetchJob{key: k}
	}
	return out
}

// Experiments lists the available experiment IDs in paper order.
func Experiments() []string {
	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

var experiments = map[string]experiment{
	"fig2":  {run: (*Harness).Fig2, plan: (*Harness).planFig2},
	"fig3":  {run: (*Harness).Fig3, plan: (*Harness).planFig3},
	"fig8":  {run: (*Harness).Fig8, plan: (*Harness).planFig8},
	"fig9":  {run: (*Harness).Fig9, plan: (*Harness).planFig9},
	"fig10": {run: (*Harness).Fig10, plan: (*Harness).planFig10},
	"fig11": {run: (*Harness).Fig11, plan: (*Harness).planFig11},
	"fig12": {run: (*Harness).Fig12, plan: (*Harness).planFig12},
	"fig13": {run: (*Harness).Fig13, plan: (*Harness).planFig13},
	"tab5":  {run: (*Harness).Tab5},
}

// Experiment runs one experiment by ID. With a parallel engine the
// experiment's planned simulations fan out across the worker pool first;
// the body then assembles the table serially from the cache, so output
// does not depend on the pool size.
func (h *Harness) Experiment(id string) (*Table, error) {
	exp, ok := experiments[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, Experiments())
	}
	if exp.plan != nil && h.Parallelism() > 1 {
		h.prefetch(exp.plan(h))
	}
	return exp.run(h)
}

// prefetch fans the planned simulations out across the engine's worker
// pool and waits for them. Individual failures are not reported here: the
// experiment body hits the same cached error (or the first failure's
// root cause, once cancellation fires) in its deterministic serial order.
func (h *Harness) prefetch(plan []prefetchJob) {
	var wg sync.WaitGroup
	wg.Add(len(plan))
	for _, j := range plan {
		go func(j prefetchJob) {
			defer wg.Done()
			if j.machine {
				h.eng.machine(j.key) //nolint:errcheck // body re-reads from cache
			} else {
				h.eng.run(j.key) //nolint:errcheck // body re-reads from cache
			}
		}(j)
	}
	wg.Wait()
}

// Tables runs the given experiments — concurrently when the engine is
// parallel, with simulations shared between them computed exactly once —
// and returns the tables in request order. The first failure (in request
// order) is returned as an error wrapped with its experiment ID.
func (h *Harness) Tables(ids []string) ([]*Table, error) {
	out := make([]*Table, len(ids))
	errs := make([]error, len(ids))
	if h.Parallelism() > 1 {
		var wg sync.WaitGroup
		wg.Add(len(ids))
		for i, id := range ids {
			go func(i int, id string) {
				defer wg.Done()
				out[i], errs[i] = h.Experiment(id)
			}(i, id)
		}
		wg.Wait()
	} else {
		for i, id := range ids {
			out[i], errs[i] = h.Experiment(id)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ids[i], err)
		}
	}
	return out, nil
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
