package harness

import (
	"testing"

	"asap/internal/workload"
)

// TestTraceCacheSharesArena pins the process-global compiled-trace cache:
// two lookups of the same key return the identical trace object (one
// generation per process), distinct keys miss, and eviction bounds the
// cache without breaking in-flight results.
func TestTraceCacheSharesArena(t *testing.T) {
	k := traceKey{wl: "cceh", p: workload.Params{Threads: 2, OpsPerThread: 16, Seed: 999999}}
	a, err := lookupTrace(k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lookupTrace(k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same key generated twice: cache miss on repeat lookup")
	}
	k2 := k
	k2.p.Seed++
	c, err := lookupTrace(k2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct keys shared a trace")
	}
}

// TestTraceCacheErrorsReleaseSlot pins that failed generations reach the
// caller as errors and do not occupy cache capacity.
func TestTraceCacheErrorsReleaseSlot(t *testing.T) {
	k := traceKey{wl: "no-such-workload", p: workload.Params{Threads: 1, OpsPerThread: 1}}
	if _, err := lookupTrace(k); err == nil {
		t.Fatal("unknown workload did not error")
	}
	compiledTraces.mu.Lock()
	_, held := compiledTraces.byKey[k]
	compiledTraces.mu.Unlock()
	if held {
		t.Fatal("failed generation kept its cache slot")
	}
}

// TestTraceCacheEviction fills the cache past capacity and verifies the
// oldest entries leave while results stay correct.
func TestTraceCacheEviction(t *testing.T) {
	base := traceKey{wl: "cceh", p: workload.Params{Threads: 1, OpsPerThread: 4, Seed: 5_000_000}}
	first := base
	if _, err := lookupTrace(first); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < compiledTraceCap+8; i++ {
		k := base
		k.p.Seed += uint64(i + 1)
		if _, err := lookupTrace(k); err != nil {
			t.Fatal(err)
		}
	}
	compiledTraces.mu.Lock()
	n := compiledTraces.order.Len()
	_, firstHeld := compiledTraces.byKey[first]
	compiledTraces.mu.Unlock()
	if n > compiledTraceCap {
		t.Fatalf("cache grew to %d entries (cap %d)", n, compiledTraceCap)
	}
	if firstHeld {
		t.Fatal("oldest entry survived eviction")
	}
}
