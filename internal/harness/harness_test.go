package harness

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	out := tb.Text()
	if !strings.Contains(out, "== x: demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "# a note") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns align: "333" forces column width 3.
	if !strings.HasPrefix(lines[2], "1  ") {
		t.Errorf("row not padded: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,y", `say "hi"`}},
	}
	out := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if out != want {
		t.Fatalf("CSV = %q, want %q", out, want)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	wantIDs := []string{"fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"tab4", "tab5", "abl_rt", "abl_pb", "abl_eager", "abl_xpbuf", "abl_interleave", "abl_nvmbw"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range wantIDs {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	h := New(QuickOptions())
	if _, err := h.Experiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWorkloadsExcludesBandwidth(t *testing.T) {
	for _, wl := range Workloads() {
		if wl == "bandwidth" {
			t.Fatal("bandwidth micro must not be in the Table III workload list")
		}
	}
	if len(Workloads()) != 14 {
		t.Fatalf("expected 14 Table III workloads, got %d", len(Workloads()))
	}
}

// TestRunDeterminism: the harness cache must be consistent — and two
// harnesses with the same options must agree on cycle counts.
func TestRunDeterminism(t *testing.T) {
	a := New(QuickOptions())
	b := New(QuickOptions())
	ra, err := a.Run("cceh", "asap_rp", 4)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run("cceh", "asap_rp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cycles != rb.Cycles || ra.PMWrites != rb.PMWrites {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d cycles/writes",
			ra.Cycles, ra.PMWrites, rb.Cycles, rb.PMWrites)
	}
	// Cached second run returns the identical result.
	r2, err := a.Run("cceh", "asap_rp", 4)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles != ra.Cycles {
		t.Fatal("cache returned a different result")
	}
}

// TestTab5Static: the hardware-cost table needs no simulation and must
// always produce 4 rows.
func TestTab5Static(t *testing.T) {
	h := New(QuickOptions())
	tb, err := h.Experiment("tab5")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("tab5 rows = %d", len(tb.Rows))
	}
}

// TestFigureShapes: one shared quick harness; every figure has the expected
// table structure and physically sensible values.
func TestFigureShapes(t *testing.T) {
	h := New(QuickOptions())
	nWL := len(Workloads())

	fig2, err := h.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2.Rows) != nWL {
		t.Errorf("fig2 rows = %d, want %d", len(fig2.Rows), nWL)
	}

	fig3, err := h.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Rows) != nWL+1 { // + average
		t.Errorf("fig3 rows = %d", len(fig3.Rows))
	}

	fig8, err := h.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8.Rows) != nWL+1 || len(fig8.Header) != 6 {
		t.Errorf("fig8 shape %dx%d", len(fig8.Rows), len(fig8.Header))
	}
	for _, row := range fig8.Rows {
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmtSscan(cell, &v); err == nil && (v <= 0 || v > 50) {
				t.Errorf("fig8 speedup %q out of physical range", cell)
			}
		}
	}

	fig12, err := h.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig12.Rows[:len(fig12.Rows)-1] {
		var occ int
		if _, err := fmtSscan(row[1], &occ); err == nil && occ > 32 {
			t.Errorf("fig12: RT occupancy %d exceeds its 32-entry capacity", occ)
		}
	}

	fig13, err := h.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig13.Rows) != 3 {
		t.Errorf("fig13 rows = %d", len(fig13.Rows))
	}
}

// TestTablesOrder: Tables returns tables in request order regardless of
// completion order, and wraps failures with the experiment ID.
func TestTablesOrder(t *testing.T) {
	h := New(Options{Ops: 30, Seed: 1, Parallel: 4})
	ids := []string{"tab5", "fig13", "abl_interleave"}
	tbs, err := h.Tables(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range tbs {
		if tb.ID != ids[i] {
			t.Errorf("tables[%d].ID = %s, want %s", i, tb.ID, ids[i])
		}
	}
	if _, err := h.Tables([]string{"tab5", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "bogus") {
		t.Errorf("Tables error = %v, want wrapped with failing ID", err)
	}
}

// TestPlansCoverBodies: after a prefetch of an experiment's plan, the
// body must find every simulation it needs already in the cache. A drift
// between plan and body is invisible in output (the cache serves both
// paths identically) but silently serializes the drifted runs — this test
// pins the contract.
func TestPlansCoverBodies(t *testing.T) {
	for _, id := range Experiments() {
		exp := experiments[id]
		if exp.plan == nil {
			continue
		}
		t.Run(id, func(t *testing.T) {
			h := New(Options{Ops: 20, Seed: 1, Parallel: 2})
			h.prefetch(exp.plan(h))
			_, preRuns := h.eng.execs()
			if _, err := exp.run(h); err != nil {
				t.Fatal(err)
			}
			if _, postRuns := h.eng.execs(); postRuns != preRuns {
				t.Errorf("body executed %d simulations the plan missed", postRuns-preRuns)
			}
		})
	}
}

func fmtSscan(s string, v interface{}) (int, error) { return fmt.Sscan(s, v) }
