package harness

import (
	"fmt"

	"asap/internal/model"
	"asap/internal/runspec"
	"asap/internal/workload"
)

// strandWorkloads are the structures annotated for the strand extension.
var strandWorkloads = []string{"cceh", "fast_fair", "dash_eh", "p_masstree"}

// strandModels run per workload, baseline first (the speedup denominator).
var strandModels = []string{
	model.NameBaseline, model.NameHOPSRP, model.NameStrandWeaver, model.NameASAPRP,
}

// strandParams annotates each structure-level operation as its own strand.
func (h *Harness) strandParams() workload.Params {
	p := h.params(4)
	p.Strands = true
	return p
}

// AblStrands runs the strand-persistency extension the paper flags as
// follow-on work (§VII-E): workloads annotated with one strand per
// structure-level operation run under HOPS (conservative, strand-blind),
// StrandWeaver (per-strand conservative flushing, strands concurrent) and
// ASAP (eager flushing — which already extracts the cross-epoch concurrency
// strands expose, without strand annotations). Expected ordering per the
// paper: HOPS < StrandWeaver <= ASAP.
func (h *Harness) AblStrands() (*Table, error) {
	t := &Table{
		ID:     "abl_strands",
		Title:  "Strand persistency extension (strand-annotated traces, 4 threads; speedup vs baseline)",
		Header: []string{"workload", "hops_rp", "strandweaver", "asap_rp", "sw/hops", "asap/sw"},
	}
	for _, wl := range strandWorkloads {
		p := h.strandParams()
		cfg := h.cfgFor(4)
		cycles := make(map[string]float64, len(strandModels))
		for _, mn := range strandModels {
			r, err := h.RunParams(cfg, p, wl, mn)
			if err != nil {
				return nil, err
			}
			cycles[mn] = float64(r.Cycles)
		}
		base := cycles[model.NameBaseline]
		hops := cycles[model.NameHOPSRP]
		sw := cycles[model.NameStrandWeaver]
		asap := cycles[model.NameASAPRP]
		t.Rows = append(t.Rows, []string{
			wl,
			fmt.Sprintf("%.2f", base/hops),
			fmt.Sprintf("%.2f", base/sw),
			fmt.Sprintf("%.2f", base/asap),
			fmt.Sprintf("%.2f", hops/sw),
			fmt.Sprintf("%.2f", sw/asap),
		})
	}
	t.Notes = append(t.Notes,
		"paper §VII-E: StrandWeaver > HOPS (strands flush concurrently); ASAP >= StrandWeaver",
		"(eager flushing already overlaps epochs without needing strand annotations)")
	return t, nil
}

func (h *Harness) planAblStrands() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range strandWorkloads {
		for _, mn := range strandModels {
			keys = append(keys, h.jobParams(h.cfgFor(4), h.strandParams(), wl, mn))
		}
	}
	return jobs(keys...)
}

func init() {
	experiments["abl_strands"] = experiment{run: (*Harness).AblStrands, plan: (*Harness).planAblStrands}
}
