package harness

import (
	"fmt"

	"asap/internal/model"
	"asap/internal/workload"
)

// AblStrands runs the strand-persistency extension the paper flags as
// follow-on work (§VII-E): workloads annotated with one strand per
// structure-level operation run under HOPS (conservative, strand-blind),
// StrandWeaver (per-strand conservative flushing, strands concurrent) and
// ASAP (eager flushing — which already extracts the cross-epoch concurrency
// strands expose, without strand annotations). Expected ordering per the
// paper: HOPS < StrandWeaver <= ASAP.
func (h *Harness) AblStrands() *Table {
	t := &Table{
		ID:     "abl_strands",
		Title:  "Strand persistency extension (strand-annotated traces, 4 threads; speedup vs baseline)",
		Header: []string{"workload", "hops_rp", "strandweaver", "asap_rp", "sw/hops", "asap/sw"},
	}
	for _, wl := range []string{"cceh", "fast_fair", "dash_eh", "p_masstree"} {
		p := h.params(4)
		p.Strands = true
		tr, err := workload.Generate(wl, p)
		if err != nil {
			panic(err)
		}
		cfg := h.cfgFor(4)
		base := float64(h.runTrace(cfg, model.NameBaseline, tr).Cycles)
		hops := float64(h.runTrace(cfg, model.NameHOPSRP, tr).Cycles)
		sw := float64(h.runTrace(cfg, model.NameStrandWeaver, tr).Cycles)
		asap := float64(h.runTrace(cfg, model.NameASAPRP, tr).Cycles)
		t.Rows = append(t.Rows, []string{
			wl,
			fmt.Sprintf("%.2f", base/hops),
			fmt.Sprintf("%.2f", base/sw),
			fmt.Sprintf("%.2f", base/asap),
			fmt.Sprintf("%.2f", hops/sw),
			fmt.Sprintf("%.2f", sw/asap),
		})
	}
	t.Notes = append(t.Notes,
		"paper §VII-E: StrandWeaver > HOPS (strands flush concurrently); ASAP >= StrandWeaver",
		"(eager flushing already overlaps epochs without needing strand annotations)")
	return t
}

func init() {
	experiments["abl_strands"] = (*Harness).AblStrands
}
