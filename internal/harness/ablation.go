package harness

import (
	"fmt"

	"asap/internal/config"
	"asap/internal/model"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's own sensitivity studies (extension work): each isolates
// one mechanism of ASAP.

// ablationWorkloads are a representative subset: one dependency-heavy
// structure, one fence-heavy tree, one WHISPER app.
var ablationWorkloads = []string{"cceh", "fast_fair", "nstore"}

func (h *Harness) runWith(cfg config.Config, wl, mdl string, threads int) uint64 {
	return uint64(h.runTrace(cfg, mdl, h.traceFor(wl, threads)).Cycles)
}

// AblRT sweeps the recovery-table size: smaller tables NACK more and fall
// back to conservative flushing; the paper argues 32 entries suffice.
func (h *Harness) AblRT() *Table {
	sizes := []int{4, 8, 16, 32, 64}
	t := &Table{
		ID:     "abl_rt",
		Title:  "Ablation: recovery table size (ASAP_RP cycles normalized to 32 entries)",
		Header: []string{"workload", "4", "8", "16", "32", "64"},
	}
	for _, wl := range ablationWorkloads {
		ref := float64(0)
		row := []string{wl}
		var vals []float64
		for _, sz := range sizes {
			cfg := config.Default()
			cfg.RTEntries = sz
			c := float64(h.runWith(cfg, wl, model.NameASAPRP, 4))
			if sz == 32 {
				ref = c
			}
			vals = append(vals, c)
		}
		for _, v := range vals {
			row = append(row, f2(v/ref))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "NACK fallback keeps small tables functional; expect mild slowdown below 16")
	return t
}

// AblPB sweeps the persist-buffer size: Figure 11 suggests ASAP performs
// well with far fewer than 32 entries.
func (h *Harness) AblPB() *Table {
	sizes := []int{4, 8, 16, 32, 64}
	t := &Table{
		ID:     "abl_pb",
		Title:  "Ablation: persist buffer size (cycles normalized to 32 entries)",
		Header: []string{"workload", "model", "4", "8", "16", "32", "64"},
	}
	for _, wl := range ablationWorkloads {
		for _, mdl := range []string{model.NameHOPSRP, model.NameASAPRP} {
			row := []string{wl, mdl}
			var vals []float64
			ref := 0.0
			for _, sz := range sizes {
				cfg := config.Default()
				cfg.PBEntries = sz
				c := float64(h.runWith(cfg, wl, mdl, 4))
				if sz == 32 {
					ref = c
				}
				vals = append(vals, c)
			}
			for _, v := range vals {
				row = append(row, f2(v/ref))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, "paper (§VII-B): \"we expect to observe similar performance with smaller PBs\" for ASAP")
	return t
}

// AblEager disables eager flushing while keeping the buffering: isolates the
// speculation mechanism from the persist-buffer decoupling.
func (h *Harness) AblEager() *Table {
	t := &Table{
		ID:     "abl_eager",
		Title:  "Ablation: ASAP_RP with eager flushing disabled (safe flushes only)",
		Header: []string{"workload", "eager cycles", "no-eager cycles", "eager gain"},
	}
	for _, wl := range Workloads() {
		eager := float64(h.Run(wl, model.NameASAPRP, 4).Cycles)
		cfg := config.Default()
		cfg.ASAPNoEager = true
		cons := float64(h.runWith(cfg, wl, model.NameASAPRP, 4))
		t.Rows = append(t.Rows, []string{
			wl, fmt.Sprintf("%.0f", eager), fmt.Sprintf("%.0f", cons), f2(cons / eager),
		})
	}
	t.Notes = append(t.Notes, "no-eager ASAP ~= HOPS with CDR messages instead of polling")
	return t
}

// AblXPBuf sweeps the Optane XPBuffer size, which sets the cost of
// undo-record creation reads (§V-A argues most hit this buffer).
func (h *Harness) AblXPBuf() *Table {
	sizes := []int{0, 16, 64, 256}
	t := &Table{
		ID:     "abl_xpbuf",
		Title:  "Ablation: XPBuffer lines vs undo-read media traffic (ASAP_RP)",
		Header: []string{"workload", "xp=0 reads", "xp=16", "xp=64", "xp=256", "cycles xp0/xp64"},
	}
	for _, wl := range ablationWorkloads {
		row := []string{wl}
		var cyc0, cyc64 float64
		for _, sz := range sizes {
			cfg := config.Default()
			cfg.XPBufLines = sz
			res := h.runTrace(cfg, model.NameASAPRP, h.traceFor(wl, 4))
			row = append(row, fmt.Sprintf("%d", res.Stats.Get("mcUndoMediaReads")))
			switch sz {
			case 0:
				cyc0 = float64(res.Cycles)
			case 64:
				cyc64 = float64(res.Cycles)
			}
		}
		row = append(row, f2(cyc0/cyc64))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AblInterleave compares 256 B vs 4 KB interleaving across the controllers:
// fine interleaving spreads epochs over both MCs, the regime where eager
// flushing matters most (§III).
func (h *Harness) AblInterleave() *Table {
	t := &Table{
		ID:     "abl_interleave",
		Title:  "Ablation: MC interleave granularity (cycles, 4 threads)",
		Header: []string{"workload", "model", "256B", "4KB", "256B/4KB"},
	}
	for _, wl := range ablationWorkloads {
		for _, mdl := range []string{model.NameHOPSRP, model.NameASAPRP} {
			cfg := config.Default()
			cfg.InterleaveBytes = 256
			fine := float64(h.runWith(cfg, wl, mdl, 4))
			cfg.InterleaveBytes = 4096
			coarse := float64(h.runWith(cfg, wl, mdl, 4))
			t.Rows = append(t.Rows, []string{
				wl, mdl, fmt.Sprintf("%.0f", fine), fmt.Sprintf("%.0f", coarse), f2(fine / coarse),
			})
		}
	}
	return t
}

func init() {
	experiments["abl_rt"] = (*Harness).AblRT
	experiments["abl_pb"] = (*Harness).AblPB
	experiments["abl_eager"] = (*Harness).AblEager
	experiments["abl_xpbuf"] = (*Harness).AblXPBuf
	experiments["abl_interleave"] = (*Harness).AblInterleave
}
