package harness

import (
	"fmt"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/runspec"
)

// Ablation studies for the design choices DESIGN.md calls out. These go
// beyond the paper's own sensitivity studies (extension work): each isolates
// one mechanism of ASAP.

// ablationWorkloads are a representative subset: one dependency-heavy
// structure, one fence-heavy tree, one WHISPER app.
var ablationWorkloads = []string{"cceh", "fast_fair", "nstore"}

// ablStructSizes is the structure-size sweep shared by AblRT and AblPB.
var ablStructSizes = []int{4, 8, 16, 32, 64}

// rtCfg is the recovery-table size sweep's machine configuration.
func rtCfg(entries int) config.Config {
	cfg := config.Default()
	cfg.RTEntries = entries
	return cfg
}

// AblRT sweeps the recovery-table size: smaller tables NACK more and fall
// back to conservative flushing; the paper argues 32 entries suffice.
func (h *Harness) AblRT() (*Table, error) {
	t := &Table{
		ID:     "abl_rt",
		Title:  "Ablation: recovery table size (ASAP_RP cycles normalized to 32 entries)",
		Header: []string{"workload", "4", "8", "16", "32", "64"},
	}
	for _, wl := range ablationWorkloads {
		ref := float64(0)
		row := []string{wl}
		var vals []float64
		for _, sz := range ablStructSizes {
			r, err := h.RunCfg(rtCfg(sz), wl, model.NameASAPRP, 4)
			if err != nil {
				return nil, err
			}
			c := float64(r.Cycles)
			if sz == 32 {
				ref = c
			}
			vals = append(vals, c)
		}
		for _, v := range vals {
			row = append(row, f2(v/ref))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "NACK fallback keeps small tables functional; expect mild slowdown below 16")
	return t, nil
}

func (h *Harness) planAblRT() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range ablationWorkloads {
		for _, sz := range ablStructSizes {
			keys = append(keys, h.jobCfg(rtCfg(sz), wl, model.NameASAPRP, 4))
		}
	}
	return jobs(keys...)
}

// pbCfg is the persist-buffer size sweep's machine configuration.
func pbCfg(entries int) config.Config {
	cfg := config.Default()
	cfg.PBEntries = entries
	return cfg
}

// AblPB sweeps the persist-buffer size: Figure 11 suggests ASAP performs
// well with far fewer than 32 entries.
func (h *Harness) AblPB() (*Table, error) {
	t := &Table{
		ID:     "abl_pb",
		Title:  "Ablation: persist buffer size (cycles normalized to 32 entries)",
		Header: []string{"workload", "model", "4", "8", "16", "32", "64"},
	}
	for _, wl := range ablationWorkloads {
		for _, mdl := range []string{model.NameHOPSRP, model.NameASAPRP} {
			row := []string{wl, mdl}
			var vals []float64
			ref := 0.0
			for _, sz := range ablStructSizes {
				r, err := h.RunCfg(pbCfg(sz), wl, mdl, 4)
				if err != nil {
					return nil, err
				}
				c := float64(r.Cycles)
				if sz == 32 {
					ref = c
				}
				vals = append(vals, c)
			}
			for _, v := range vals {
				row = append(row, f2(v/ref))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, "paper (§VII-B): \"we expect to observe similar performance with smaller PBs\" for ASAP")
	return t, nil
}

func (h *Harness) planAblPB() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range ablationWorkloads {
		for _, mdl := range []string{model.NameHOPSRP, model.NameASAPRP} {
			for _, sz := range ablStructSizes {
				keys = append(keys, h.jobCfg(pbCfg(sz), wl, mdl, 4))
			}
		}
	}
	return jobs(keys...)
}

// noEagerCfg disables eager flushing (safe flushes only).
func noEagerCfg() config.Config {
	cfg := config.Default()
	cfg.ASAPNoEager = true
	return cfg
}

// AblEager disables eager flushing while keeping the buffering: isolates the
// speculation mechanism from the persist-buffer decoupling.
func (h *Harness) AblEager() (*Table, error) {
	t := &Table{
		ID:     "abl_eager",
		Title:  "Ablation: ASAP_RP with eager flushing disabled (safe flushes only)",
		Header: []string{"workload", "eager cycles", "no-eager cycles", "eager gain"},
	}
	for _, wl := range Workloads() {
		er, err := h.Run(wl, model.NameASAPRP, 4)
		if err != nil {
			return nil, err
		}
		cr, err := h.RunCfg(noEagerCfg(), wl, model.NameASAPRP, 4)
		if err != nil {
			return nil, err
		}
		eager := float64(er.Cycles)
		cons := float64(cr.Cycles)
		t.Rows = append(t.Rows, []string{
			wl, fmt.Sprintf("%.0f", eager), fmt.Sprintf("%.0f", cons), f2(cons / eager),
		})
	}
	t.Notes = append(t.Notes, "no-eager ASAP ~= HOPS with CDR messages instead of polling")
	return t, nil
}

func (h *Harness) planAblEager() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range Workloads() {
		keys = append(keys,
			h.job(wl, model.NameASAPRP, 4),
			h.jobCfg(noEagerCfg(), wl, model.NameASAPRP, 4))
	}
	return jobs(keys...)
}

// ablXPBufSizes is the XPBuffer sweep (lines per MC).
var ablXPBufSizes = []int{0, 16, 64, 256}

// xpBufCfg sets the XPBuffer size.
func xpBufCfg(lines int) config.Config {
	cfg := config.Default()
	cfg.XPBufLines = lines
	return cfg
}

// AblXPBuf sweeps the Optane XPBuffer size, which sets the cost of
// undo-record creation reads (§V-A argues most hit this buffer).
func (h *Harness) AblXPBuf() (*Table, error) {
	t := &Table{
		ID:     "abl_xpbuf",
		Title:  "Ablation: XPBuffer lines vs undo-read media traffic (ASAP_RP)",
		Header: []string{"workload", "xp=0 reads", "xp=16", "xp=64", "xp=256", "cycles xp0/xp64"},
	}
	for _, wl := range ablationWorkloads {
		row := []string{wl}
		var cyc0, cyc64 float64
		for _, sz := range ablXPBufSizes {
			res, err := h.RunCfg(xpBufCfg(sz), wl, model.NameASAPRP, 4)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.Stats.Get("mcUndoMediaReads")))
			switch sz {
			case 0:
				cyc0 = float64(res.Cycles)
			case 64:
				cyc64 = float64(res.Cycles)
			}
		}
		row = append(row, f2(cyc0/cyc64))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (h *Harness) planAblXPBuf() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range ablationWorkloads {
		for _, sz := range ablXPBufSizes {
			keys = append(keys, h.jobCfg(xpBufCfg(sz), wl, model.NameASAPRP, 4))
		}
	}
	return jobs(keys...)
}

// interleaveCfg sets the MC interleave granularity.
func interleaveCfg(bytes uint64) config.Config {
	cfg := config.Default()
	cfg.InterleaveBytes = bytes
	return cfg
}

// AblInterleave compares 256 B vs 4 KB interleaving across the controllers:
// fine interleaving spreads epochs over both MCs, the regime where eager
// flushing matters most (§III).
func (h *Harness) AblInterleave() (*Table, error) {
	t := &Table{
		ID:     "abl_interleave",
		Title:  "Ablation: MC interleave granularity (cycles, 4 threads)",
		Header: []string{"workload", "model", "256B", "4KB", "256B/4KB"},
	}
	for _, wl := range ablationWorkloads {
		for _, mdl := range []string{model.NameHOPSRP, model.NameASAPRP} {
			fr, err := h.RunCfg(interleaveCfg(256), wl, mdl, 4)
			if err != nil {
				return nil, err
			}
			cr, err := h.RunCfg(interleaveCfg(4096), wl, mdl, 4)
			if err != nil {
				return nil, err
			}
			fine := float64(fr.Cycles)
			coarse := float64(cr.Cycles)
			t.Rows = append(t.Rows, []string{
				wl, mdl, fmt.Sprintf("%.0f", fine), fmt.Sprintf("%.0f", coarse), f2(fine / coarse),
			})
		}
	}
	return t, nil
}

func (h *Harness) planAblInterleave() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range ablationWorkloads {
		for _, mdl := range []string{model.NameHOPSRP, model.NameASAPRP} {
			keys = append(keys,
				h.jobCfg(interleaveCfg(256), wl, mdl, 4),
				h.jobCfg(interleaveCfg(4096), wl, mdl, 4))
		}
	}
	return jobs(keys...)
}

func init() {
	experiments["abl_rt"] = experiment{run: (*Harness).AblRT, plan: (*Harness).planAblRT}
	experiments["abl_pb"] = experiment{run: (*Harness).AblPB, plan: (*Harness).planAblPB}
	experiments["abl_eager"] = experiment{run: (*Harness).AblEager, plan: (*Harness).planAblEager}
	experiments["abl_xpbuf"] = experiment{run: (*Harness).AblXPBuf, plan: (*Harness).planAblXPBuf}
	experiments["abl_interleave"] = experiment{run: (*Harness).AblInterleave, plan: (*Harness).planAblInterleave}
}
