package harness

import "testing"

// renderAll runs every experiment on one harness and returns the rendered
// Text and CSV per experiment ID.
func renderAll(t *testing.T, opts Options) map[string][2]string {
	t.Helper()
	h := New(opts)
	out := make(map[string][2]string)
	for _, id := range Experiments() {
		tb, err := h.Experiment(id)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = [2]string{tb.Text(), tb.CSV()}
	}
	return out
}

// TestDeterministicOutput runs every experiment twice with the same seed
// and demands byte-identical table output. The simulator's claim to be a
// reproducible measurement instrument rests on this: any map-iteration
// order leaking into event scheduling or report formatting shows up here
// as a diff (and should also be caught statically by asaplint's detcheck).
func TestDeterministicOutput(t *testing.T) {
	first := renderAll(t, QuickOptions())
	second := renderAll(t, QuickOptions())
	for _, id := range Experiments() {
		if first[id][0] != second[id][0] {
			t.Errorf("%s: Text() differs between two same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				id, first[id][0], second[id][0])
		}
		if first[id][1] != second[id][1] {
			t.Errorf("%s: CSV() differs between two same-seed runs", id)
		}
	}
}

// TestParallelMatchesSerial: the concurrent engine must be invisible in
// the output — every experiment renders byte-identically whether the
// simulations ran strictly serially or fanned out across 8 workers. This
// is the property that makes the golden-table CI gate and the parallel
// `asapfig all` safe, and (run under `go test -race` in CI) the test that
// exercises the engine's concurrency.
func TestParallelMatchesSerial(t *testing.T) {
	serial := renderAll(t, Options{Ops: 80, Seed: 1, Parallel: 1})
	parallel := renderAll(t, Options{Ops: 80, Seed: 1, Parallel: 8})
	for _, id := range Experiments() {
		if serial[id][0] != parallel[id][0] {
			t.Errorf("%s: Text() differs between serial and parallel engines:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial[id][0], parallel[id][0])
		}
		if serial[id][1] != parallel[id][1] {
			t.Errorf("%s: CSV() differs between serial and parallel engines", id)
		}
	}
}

// TestParallelTablesMatchSerial: the whole-campaign path (Tables, the one
// `asapfig all` uses, experiments themselves concurrent and sharing
// simulations) is byte-identical to the serial path too.
func TestParallelTablesMatchSerial(t *testing.T) {
	opts := Options{Ops: 40, Seed: 1}
	ids := Experiments()

	opts.Parallel = 1
	st, err := New(opts).Tables(ids)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	pt, err := New(opts).Tables(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if st[i].Text() != pt[i].Text() {
			t.Errorf("%s: Tables output differs between serial and parallel", ids[i])
		}
	}
}
