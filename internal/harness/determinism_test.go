package harness

import "testing"

// TestDeterministicOutput runs every experiment twice with the same seed
// and demands byte-identical table output. The simulator's claim to be a
// reproducible measurement instrument rests on this: any map-iteration
// order leaking into event scheduling or report formatting shows up here
// as a diff (and should also be caught statically by asaplint's detcheck).
func TestDeterministicOutput(t *testing.T) {
	render := func() map[string][2]string {
		h := New(QuickOptions())
		out := make(map[string][2]string)
		for _, id := range Experiments() {
			tb, err := h.Experiment(id)
			if err != nil {
				t.Fatal(err)
			}
			out[id] = [2]string{tb.Text(), tb.CSV()}
		}
		return out
	}

	first := render()
	second := render()
	for _, id := range Experiments() {
		if first[id][0] != second[id][0] {
			t.Errorf("%s: Text() differs between two same-seed runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				id, first[id][0], second[id][0])
		}
		if first[id][1] != second[id][1] {
			t.Errorf("%s: CSV() differs between two same-seed runs", id)
		}
	}
}
