package harness

// The process-global compiled-trace cache. A generated trace is immutable
// once workload.Generate returns it (machines only read the op streams,
// and the compiled arena's windows are capacity-clipped), so one compiled
// trace can back every engine in the process: repeated harness
// constructions — benchmarks iterating a figure, asapd serving many
// requests, the CLI running figure after figure — stop paying generation
// and recompilation for identical (workload, params) keys. The cache is a
// bounded LRU so pathological parameter sweeps cannot retain every trace
// ever generated, and singleflighted so concurrent engines requesting the
// same key generate it once.

import (
	"container/list"
	"fmt"
	"sync"

	"asap/internal/trace"
	"asap/internal/workload"
)

// compiledTraceCap bounds the cache. The full evaluation touches well
// under a hundred distinct (workload, params) keys; 256 keeps every
// figure's traces resident while capping worst-case footprint.
const compiledTraceCap = 256

type traceCacheEntry struct {
	key   traceKey
	ready chan struct{} // closed once tr/err are final
	tr    *trace.Trace
	err   error
}

var compiledTraces = struct {
	mu    sync.Mutex
	order *list.List // *traceCacheEntry, front = most recently used
	byKey map[traceKey]*list.Element
}{
	order: list.New(),
	byKey: make(map[traceKey]*list.Element),
}

// lookupTrace returns the compiled trace for k, generating it at most once
// per process; concurrent requesters of an in-flight key wait for the
// leader. Failed generations release their slot (the error still reaches
// every waiter), so an error never occupies LRU capacity.
func lookupTrace(k traceKey) (*trace.Trace, error) {
	c := &compiledTraces
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.order.MoveToFront(el)
		ent := el.Value.(*traceCacheEntry)
		c.mu.Unlock()
		<-ent.ready
		return ent.tr, ent.err
	}
	ent := &traceCacheEntry{key: k, ready: make(chan struct{})}
	el := c.order.PushFront(ent)
	c.byKey[k] = el
	if c.order.Len() > compiledTraceCap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*traceCacheEntry).key)
	}
	c.mu.Unlock()

	done := false
	defer func() {
		if done {
			return
		}
		// Unwinding from a generator panic: publish an error so waiters
		// never block, release the slot, and let the panic propagate to
		// the leader's capture wrapper.
		ent.err = fmt.Errorf("workload %s: generation panicked", k.wl)
		dropTraceSlot(k, el)
		close(ent.ready)
	}()
	ent.tr, ent.err = workload.Generate(k.wl, k.p)
	done = true
	if ent.err != nil {
		dropTraceSlot(k, el)
	}
	close(ent.ready)
	return ent.tr, ent.err
}

// dropTraceSlot removes k's slot if it still holds el (a concurrent
// re-insert after eviction must not be removed by a stale leader).
func dropTraceSlot(k traceKey, el *list.Element) {
	c := &compiledTraces
	c.mu.Lock()
	if cur, ok := c.byKey[k]; ok && cur == el {
		c.order.Remove(el)
		delete(c.byKey, k)
	}
	c.mu.Unlock()
}
