package harness

import (
	"fmt"

	"asap/internal/model"
	"asap/internal/runspec"
	"asap/internal/workload"
)

// msCycles is one millisecond at 2 GHz, the window Figure 2 counts over.
const msCycles = 2_000_000.0

// Fig2 counts epochs and cross-thread dependencies per millisecond of
// 4-thread execution under release persistency (Figure 2). The paper's
// observation: the WHISPER applications have almost no cross dependencies;
// the new concurrent structures (CCEH, Dash, RECIPE) have many.
func (h *Harness) Fig2() (*Table, error) {
	t := &Table{
		ID:     "fig2",
		Title:  "Epochs and cross-thread dependencies per 1 ms (4 threads, release persistency)",
		Header: []string{"workload", "epochs/ms", "crossdeps/ms", "epochs", "crossdeps"},
	}
	for _, wl := range Workloads() {
		m, err := h.RunMachine(wl, model.NameASAPRP, 4)
		if err != nil {
			return nil, err
		}
		cyc := float64(m.Eng.Now())
		epochs := float64(m.St.Get("epochsCommitted"))
		deps := float64(m.Ledger.NumDeps())
		scale := msCycles / cyc
		t.Rows = append(t.Rows, []string{
			wl, f1(epochs * scale), f1(deps * scale),
			fmt.Sprintf("%.0f", epochs), fmt.Sprintf("%.0f", deps),
		})
	}
	t.Notes = append(t.Notes,
		"paper: WHISPER apps (nstore..memcached) near-zero crossdeps; CCEH/Dash/RECIPE frequent")
	return t, nil
}

func (h *Harness) planFig2() []prefetchJob {
	var plan []prefetchJob
	for _, wl := range Workloads() {
		plan = append(plan, prefetchJob{key: h.job(wl, model.NameASAPRP, 4), machine: true})
	}
	return plan
}

// Fig3 measures the percentage of cycles the HOPS persist buffers are
// blocked from flushing (Figure 3; paper average 26%).
func (h *Harness) Fig3() (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "Persist buffer stall cycles under HOPS_RP (4 threads)",
		Header: []string{"workload", "blocked%"},
	}
	var sum float64
	for _, wl := range Workloads() {
		r, err := h.Run(wl, model.NameHOPSRP, 4)
		if err != nil {
			return nil, err
		}
		blocked := float64(r.Stats.Get("cyclesBlocked"))
		total := float64(r.Stats.Get("coreSampledCycles"))
		frac := 0.0
		if total > 0 {
			frac = blocked / total
		}
		sum += frac
		t.Rows = append(t.Rows, []string{wl, pct(frac)})
	}
	t.Rows = append(t.Rows, []string{"average", pct(sum / float64(len(Workloads())))})
	t.Notes = append(t.Notes, "paper: persist buffers blocked 26% of cycles on average")
	return t, nil
}

func (h *Harness) planFig3() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range Workloads() {
		keys = append(keys, h.job(wl, model.NameHOPSRP, 4))
	}
	return jobs(keys...)
}

// fig8Models are the evaluated models of Figure 8, paper order, with the
// baseline prepended where the speedup denominator needs it.
var fig8Models = []string{
	model.NameHOPSEP, model.NameHOPSRP,
	model.NameASAPEP, model.NameASAPRP, model.NameEADR,
}

// Fig8 is the headline performance study: speedup over the Intel baseline
// for all six models in a 4-core 2-MC system (Figure 8). Paper averages:
// ASAP_EP 2.1x, ASAP_RP 2.29x over baseline; ASAP ~23% over HOPS_RP and
// within 3.9% of eADR/BBB.
func (h *Harness) Fig8() (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Speedup over baseline (4 cores, 2 MCs)",
		Header: append([]string{"workload"}, fig8Models...),
	}
	sums := make([]float64, len(fig8Models))
	for _, wl := range Workloads() {
		base, err := h.Run(wl, model.NameBaseline, 4)
		if err != nil {
			return nil, err
		}
		row := []string{wl}
		for i, mn := range fig8Models {
			r, err := h.Run(wl, mn, 4)
			if err != nil {
				return nil, err
			}
			sp := float64(base.Cycles) / float64(r.Cycles)
			sums[i] += sp
			row = append(row, f2(sp))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, f2(s/float64(len(Workloads()))))
	}
	t.Rows = append(t.Rows, avg)
	t.Notes = append(t.Notes,
		"paper: ASAP_EP 2.1x, ASAP_RP 2.29x over baseline; ASAP_RP within 3.9% of eADR/BBB")
	return t, nil
}

func (h *Harness) planFig8() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range Workloads() {
		keys = append(keys, h.job(wl, model.NameBaseline, 4))
		for _, mn := range fig8Models {
			keys = append(keys, h.job(wl, mn, 4))
		}
	}
	return jobs(keys...)
}

// Fig9 compares PM media write operations, ASAP vs HOPS, normalized to HOPS
// (Figure 9), plus the PM read increase from undo-record creation (paper:
// +5.3% reads on average).
func (h *Harness) Fig9() (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "PM write operations, ASAP_RP normalized to HOPS_RP (4 threads)",
		Header: []string{"workload", "writes(norm)", "reads(norm)", "hopsWrites", "asapWrites"},
	}
	var wsum, rsum float64
	for _, wl := range Workloads() {
		hops, err := h.Run(wl, model.NameHOPSRP, 4)
		if err != nil {
			return nil, err
		}
		asap, err := h.Run(wl, model.NameASAPRP, 4)
		if err != nil {
			return nil, err
		}
		wn := float64(asap.PMWrites) / float64(hops.PMWrites)
		rn := 1.0
		if hops.PMReads > 0 {
			rn = float64(asap.PMReads) / float64(hops.PMReads)
		} else if asap.PMReads > 0 {
			rn = float64(asap.PMReads)
		}
		wsum += wn
		rsum += rn
		t.Rows = append(t.Rows, []string{
			wl, f2(wn), f2(rn),
			fmt.Sprintf("%d", hops.PMWrites), fmt.Sprintf("%d", asap.PMWrites),
		})
	}
	n := float64(len(Workloads()))
	t.Rows = append(t.Rows, []string{"average", f2(wsum / n), f2(rsum / n), "", ""})
	t.Notes = append(t.Notes,
		"paper: ASAP usually fewer writes (undo suppression + RT/WPQ coalescing); reads +5.3%")
	return t, nil
}

func (h *Harness) planFig9() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range Workloads() {
		keys = append(keys,
			h.job(wl, model.NameHOPSRP, 4),
			h.job(wl, model.NameASAPRP, 4))
	}
	return jobs(keys...)
}

// fig10Threads is Figure 10's thread sweep.
var fig10Threads = []int{1, 2, 4, 8}

// Fig10 is the core-count sensitivity study: speedup over single-threaded
// HOPS for 1/2/4/8 threads, 2 MCs, for the best-scaling workload (P-ART),
// the worst (skip list), and the all-workload average (Figure 10).
func (h *Harness) Fig10() (*Table, error) {
	t := &Table{
		ID:    "fig10",
		Title: "Scalability: speedup vs 1-thread HOPS (2 MCs)",
		Header: []string{"workload", "model",
			"1t", "2t", "4t", "8t"},
	}
	focus := []string{"p_art", "atlas_skiplist"}
	addRows := func(wl string) error {
		// Throughput scaling: ops are proportional to threads, so
		// speedup = (cycles_hops_1t * threads) / cycles.
		b, err := h.Run(wl, model.NameHOPSRP, 1)
		if err != nil {
			return err
		}
		base := float64(b.Cycles)
		for _, mn := range []string{model.NameHOPSRP, model.NameASAPRP} {
			row := []string{wl, mn}
			for _, th := range fig10Threads {
				r, err := h.Run(wl, mn, th)
				if err != nil {
					return err
				}
				row = append(row, f2(base*float64(th)/float64(r.Cycles)))
			}
			t.Rows = append(t.Rows, row)
		}
		return nil
	}
	for _, wl := range focus {
		if err := addRows(wl); err != nil {
			return nil, err
		}
	}
	// Average over all workloads.
	for _, mn := range []string{model.NameHOPSRP, model.NameASAPRP} {
		row := []string{"average", mn}
		for _, th := range fig10Threads {
			var sum float64
			for _, wl := range Workloads() {
				b, err := h.Run(wl, model.NameHOPSRP, 1)
				if err != nil {
					return nil, err
				}
				r, err := h.Run(wl, mn, th)
				if err != nil {
					return nil, err
				}
				sum += float64(b.Cycles) * float64(th) / float64(r.Cycles)
			}
			row = append(row, f2(sum/float64(len(Workloads()))))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: ASAP 1.18/1.79/2.51/2.85x at 1/2/4/8 threads vs HOPS-1t; HOPS only 1/1.36/1.94/2.15x")
	return t, nil
}

func (h *Harness) planFig10() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range Workloads() {
		keys = append(keys, h.job(wl, model.NameHOPSRP, 1))
		for _, mn := range []string{model.NameHOPSRP, model.NameASAPRP} {
			for _, th := range fig10Threads {
				keys = append(keys, h.job(wl, mn, th))
			}
		}
	}
	return jobs(keys...)
}

// Fig11 reports persist-buffer occupancy (average and 99th percentile) for
// HOPS and ASAP (Figure 11): eager flushing keeps ASAP's buffers far
// emptier.
func (h *Harness) Fig11() (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Persist buffer occupancy (4 threads)",
		Header: []string{"workload", "hops avg", "hops p99", "asap avg", "asap p99"},
	}
	var hsum, asum float64
	for _, wl := range Workloads() {
		hr, err := h.Run(wl, model.NameHOPSRP, 4)
		if err != nil {
			return nil, err
		}
		ar, err := h.Run(wl, model.NameASAPRP, 4)
		if err != nil {
			return nil, err
		}
		hd := hr.Stats.Dist("pbOccupancy")
		ad := ar.Stats.Dist("pbOccupancy")
		t.Rows = append(t.Rows, []string{
			wl, f2(hd.Mean()), fmt.Sprintf("%d", hd.Percentile(0.99)),
			f2(ad.Mean()), fmt.Sprintf("%d", ad.Percentile(0.99)),
		})
		hsum += hd.Mean()
		asum += ad.Mean()
	}
	n := float64(len(Workloads()))
	t.Rows = append(t.Rows, []string{"average", f2(hsum / n), "", f2(asum / n), ""})
	t.Notes = append(t.Notes, "paper: both average and p99 much lower under ASAP")
	return t, nil
}

func (h *Harness) planFig11() []prefetchJob { return h.planFig9() }

// Fig12 reports the maximum recovery-table occupancy at 4 and 8 threads
// (Figure 12): occupancy stays small and grows little with threads.
func (h *Harness) Fig12() (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "Recovery table max occupancy (ASAP_RP; 32-entry RT per MC)",
		Header: []string{"workload", "4 threads", "8 threads"},
	}
	var s4, s8 float64
	for _, wl := range Workloads() {
		r4, err := h.Run(wl, model.NameASAPRP, 4)
		if err != nil {
			return nil, err
		}
		r8, err := h.Run(wl, model.NameASAPRP, 8)
		if err != nil {
			return nil, err
		}
		s4 += float64(r4.RTMaxOcc)
		s8 += float64(r8.RTMaxOcc)
		t.Rows = append(t.Rows, []string{
			wl, fmt.Sprintf("%d", r4.RTMaxOcc), fmt.Sprintf("%d", r8.RTMaxOcc),
		})
	}
	n := float64(len(Workloads()))
	t.Rows = append(t.Rows, []string{"average", f1(s4 / n), f1(s8 / n)})
	t.Notes = append(t.Notes,
		"paper: max occupancy small, grows little 4->8 threads; Nstore occasionally fills the RT (NACKs)")
	return t, nil
}

func (h *Harness) planFig12() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range Workloads() {
		keys = append(keys,
			h.job(wl, model.NameASAPRP, 4),
			h.job(wl, model.NameASAPRP, 8))
	}
	return jobs(keys...)
}

// fig13Params scales the bandwidth micro's op count up so the controllers
// see plenty of blocks at every thread count.
func (h *Harness) fig13Params(threads int) workload.Params {
	p := h.params(threads)
	p.OpsPerThread = h.opts.Ops * 4
	return p
}

// Fig13 is the bandwidth microbenchmark (Figure 13): 256 B writes
// alternating across the two controllers, ordered by ofence. The paper
// reports ASAP ~2x HOPS from overlapping the two MCs.
func (h *Harness) Fig13() (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "System write bandwidth utilization (256 B ofence-ordered writes across 2 MCs)",
		Header: []string{"threads", "baseline GB/s", "hops GB/s", "asap GB/s", "asap/hops"},
	}
	for _, th := range []int{1, 2, 4} {
		p := h.fig13Params(th)
		bytes := float64(workload.BandwidthBytes(p))
		row := []string{fmt.Sprintf("%d", th)}
		var hopsBW, asapBW float64
		for _, mn := range []string{model.NameBaseline, model.NameHOPSRP, model.NameASAPRP} {
			r, err := h.RunParams(h.cfgFor(th), p, "bandwidth", mn)
			if err != nil {
				return nil, err
			}
			secs := float64(r.Cycles) / 2e9 // 2 GHz
			gbs := bytes / secs / 1e9
			switch mn {
			case model.NameHOPSRP:
				hopsBW = gbs
			case model.NameASAPRP:
				asapBW = gbs
			}
			row = append(row, f2(gbs))
		}
		row = append(row, f2(asapBW/hopsBW))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: ASAP ~2x HOPS by overlapping writes to both controllers")
	return t, nil
}

func (h *Harness) planFig13() []prefetchJob {
	var keys []runspec.RunSpec
	for _, th := range []int{1, 2, 4} {
		p := h.fig13Params(th)
		for _, mn := range []string{model.NameBaseline, model.NameHOPSRP, model.NameASAPRP} {
			keys = append(keys, h.jobParams(h.cfgFor(th), p, "bandwidth", mn))
		}
	}
	return jobs(keys...)
}
