package harness

import "testing"

func TestAllExperimentsQuick(t *testing.T) {
	h := New(QuickOptions())
	for _, id := range Experiments() {
		tb, err := h.Experiment(id)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("\n%s", tb.Text())
	}
}
