package harness

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"asap/internal/model"
)

// runTracedSet executes an overlapping set of simulations concurrently
// with trace capture enabled and returns every artifact produced,
// keyed by file name.
func runTracedSet(t *testing.T, dir string) map[string]string {
	t.Helper()
	h := New(Options{Ops: 30, Seed: 1, Parallel: 4, TraceDir: dir})
	var wg sync.WaitGroup
	for _, mdl := range []string{model.NameBaseline, model.NameASAPEP, model.NameASAPRP} {
		for _, threads := range []int{2, 4} {
			wg.Add(1)
			go func(mdl string, threads int) {
				defer wg.Done()
				if _, err := h.Run("atlas_queue", mdl, threads); err != nil {
					t.Error(err)
				}
			}(mdl, threads)
		}
	}
	wg.Wait()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string]string, len(ents))
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(b)
	}
	return files
}

// TestTraceCapture: with TraceDir set, every executed simulation leaves a
// trace JSON and a timeline CSV, and a re-run of the same key set under a
// parallel pool produces byte-identical artifacts. Run under -race this
// also proves concurrent capture shares no collector state.
func TestTraceCapture(t *testing.T) {
	files := runTracedSet(t, t.TempDir())
	var traces, timelines int
	for name, body := range files {
		switch {
		case strings.HasSuffix(name, ".trace.json"):
			traces++
			if !strings.Contains(body, `"traceEvents"`) {
				t.Errorf("%s: not a Chrome trace", name)
			}
		case strings.HasSuffix(name, ".timeline.csv"):
			timelines++
			if !strings.HasPrefix(body, "cycle,pb0,") {
				t.Errorf("%s: bad timeline header %q", name, strings.SplitN(body, "\n", 2)[0])
			}
		default:
			t.Errorf("unexpected artifact %s", name)
		}
	}
	// 3 models x 2 thread counts = 6 simulations, two artifacts each.
	if traces != 6 || timelines != 6 {
		t.Fatalf("got %d traces / %d timelines, want 6/6", traces, timelines)
	}

	again := runTracedSet(t, t.TempDir())
	if len(again) != len(files) {
		t.Fatalf("re-run produced %d artifacts, want %d", len(again), len(files))
	}
	for name, body := range files {
		if again[name] != body {
			t.Errorf("artifact %s differs between identical runs", name)
		}
	}
}

// TestTraceCaptureDoesNotPerturb: results with capture on equal results
// with capture off (tracing observes, never schedules model work).
func TestTraceCaptureDoesNotPerturb(t *testing.T) {
	plain := New(Options{Ops: 30, Seed: 1, Parallel: 1})
	traced := New(Options{Ops: 30, Seed: 1, Parallel: 1, TraceDir: t.TempDir()})
	rp, err := plain.Run("atlas_queue", model.NameASAPEP, 4)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := traced.Run("atlas_queue", model.NameASAPEP, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Cycles != rt.Cycles {
		t.Fatalf("capture changed the simulation: %d cycles traced vs %d untraced", rt.Cycles, rp.Cycles)
	}
}
