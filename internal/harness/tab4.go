package harness

import (
	"fmt"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/runspec"
	"asap/internal/sim"
)

// tab4Models are the Table IV designs compared at the default 2-MC
// configuration.
var tab4Models = []string{
	model.NameLBPP, model.NameHOPSRP, model.NameDPO, model.NameLRP,
	model.NameVorpal, model.NamePMEMSpec, model.NameASAPRP, model.NameEADR,
}

// tab4Workloads is the representative workload subset of the comparison.
var tab4Workloads = []string{"nstore", "cceh", "fast_fair", "atlas_queue", "p_masstree"}

// oneMCCfg is the single-controller machine, the configuration where the
// paper says PMEM-Spec matches ASAP (it never mis-speculates there).
func oneMCCfg() config.Config {
	cfg := config.Default()
	cfg.MCs = 1
	return cfg
}

// Tab4 makes the paper's qualitative related-work comparison (Table IV)
// quantitative for the designs implemented here: the six evaluated models
// plus DPO (conservative flushing, snooped dependency resolution, weak
// multi-MC story) and PMEM-Spec (unbuffered speculation with software
// mis-speculation recovery). PMEM-Spec also runs on a 1-MC machine, the
// configuration where the paper says it matches ASAP.
func (h *Harness) Tab4() (*Table, error) {
	t := &Table{
		ID:    "tab4",
		Title: "Quantitative Table IV: speedup over baseline (2 MCs; pmem_spec also at 1 MC)",
		Header: append(append([]string{"workload"}, tab4Models...),
			"pmem_spec@1mc", "asap_rp@1mc"),
	}
	for _, wl := range tab4Workloads {
		br, err := h.Run(wl, model.NameBaseline, 4)
		if err != nil {
			return nil, err
		}
		base := float64(br.Cycles)
		row := []string{wl}
		for _, mn := range tab4Models {
			r, err := h.Run(wl, mn, 4)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(base/float64(r.Cycles)))
		}
		// Single-controller runs: PMEM-Spec never mis-speculates there.
		base1r, err := h.RunCfg(oneMCCfg(), wl, model.NameBaseline, 4)
		if err != nil {
			return nil, err
		}
		spec1r, err := h.RunCfg(oneMCCfg(), wl, model.NamePMEMSpec, 4)
		if err != nil {
			return nil, err
		}
		asap1r, err := h.RunCfg(oneMCCfg(), wl, model.NameASAPRP, 4)
		if err != nil {
			return nil, err
		}
		base1 := float64(base1r.Cycles)
		row = append(row, f2(base1/float64(spec1r.Cycles)), f2(base1/float64(asap1r.Cycles)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper Table IV: every conservative design (LB++, HOPS, DPO, LRP) below ASAP; DPO ~ HOPS;",
		"PMEM-Spec: no stalls but high recovery cost in multi-MC systems, ~ASAP at 1 MC;",
		"eADR: no stalls, large battery. Mis-speculation counts appear in run stats (specMisspeculations).",
		"note: this LB++ omits its cache-eviction stalls, so it can beat polling-bound HOPS on short epochs;",
		"vorpal pays a 500-cycle clock broadcast before any epoch's successor may persist, so dfence-heavy",
		"workloads fall below even the synchronous baseline — the paper's broadcast-frequency criticism")
	return t, nil
}

func (h *Harness) planTab4() []prefetchJob {
	var keys []runspec.RunSpec
	for _, wl := range tab4Workloads {
		keys = append(keys, h.job(wl, model.NameBaseline, 4))
		for _, mn := range tab4Models {
			keys = append(keys, h.job(wl, mn, 4))
		}
		for _, mn := range []string{model.NameBaseline, model.NamePMEMSpec, model.NameASAPRP} {
			keys = append(keys, h.jobCfg(oneMCCfg(), wl, mn, 4))
		}
	}
	return jobs(keys...)
}

// ablNVMBWGaps is the NVMDrainGap sweep in ns; the header labels the
// per-controller write bandwidth each gap corresponds to.
var ablNVMBWGaps = []uint64{56, 28, 14, 7}

// nvmBWCfg sets the per-line media drain gap (write throughput).
func (h *Harness) nvmBWCfg(threads int, gapNS uint64) config.Config {
	cfg := h.cfgFor(threads)
	cfg.NVMDrainGap = sim.NS(gapNS)
	return cfg
}

// AblNVMBW sweeps the per-controller NVM write bandwidth on the
// bandwidth-bound microbenchmark: the paper's §I claim that ASAP "offers
// greater performance benefit with increasing NVM write bandwidth" — faster
// media raises ASAP's eager-flushing ceiling while conservative designs
// stay bound by their per-epoch ACK round trip.
func (h *Harness) AblNVMBW() (*Table, error) {
	t := &Table{
		ID:     "abl_nvmbw",
		Title:  "Sensitivity: NVM write bandwidth per MC vs ASAP's advantage over HOPS (bandwidth micro)",
		Header: []string{"threads", "1.1GB/s", "2.3GB/s", "4.6GB/s", "9.1GB/s"},
	}
	for _, th := range []int{1, 2} {
		p := h.fig13Params(th)
		row := []string{fmt.Sprintf("%d", th)}
		for _, gapNS := range ablNVMBWGaps {
			cfg := h.nvmBWCfg(th, gapNS)
			hr, err := h.RunParams(cfg, p, "bandwidth", model.NameHOPSRP)
			if err != nil {
				return nil, err
			}
			ar, err := h.RunParams(cfg, p, "bandwidth", model.NameASAPRP)
			if err != nil {
				return nil, err
			}
			row = append(row, f2(float64(hr.Cycles)/float64(ar.Cycles)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cells: HOPS/ASAP cycle ratio (>1 = ASAP faster); drain gaps swept: %v ns/line", ablNVMBWGaps),
		"paper §I: ASAP offers greater benefit with increasing NVM write bandwidth")
	return t, nil
}

func (h *Harness) planAblNVMBW() []prefetchJob {
	var keys []runspec.RunSpec
	for _, th := range []int{1, 2} {
		p := h.fig13Params(th)
		for _, gapNS := range ablNVMBWGaps {
			cfg := h.nvmBWCfg(th, gapNS)
			keys = append(keys,
				h.jobParams(cfg, p, "bandwidth", model.NameHOPSRP),
				h.jobParams(cfg, p, "bandwidth", model.NameASAPRP))
		}
	}
	return jobs(keys...)
}

func init() {
	experiments["tab4"] = experiment{run: (*Harness).Tab4, plan: (*Harness).planTab4}
	experiments["abl_nvmbw"] = experiment{run: (*Harness).AblNVMBW, plan: (*Harness).planAblNVMBW}
}
