package harness

import (
	"fmt"

	"asap/internal/config"
	"asap/internal/model"
	"asap/internal/sim"
	"asap/internal/workload"
)

// Tab4 makes the paper's qualitative related-work comparison (Table IV)
// quantitative for the designs implemented here: the six evaluated models
// plus DPO (conservative flushing, snooped dependency resolution, weak
// multi-MC story) and PMEM-Spec (unbuffered speculation with software
// mis-speculation recovery). PMEM-Spec also runs on a 1-MC machine, the
// configuration where the paper says it matches ASAP.
func (h *Harness) Tab4() *Table {
	models := []string{
		model.NameLBPP, model.NameHOPSRP, model.NameDPO, model.NameLRP,
		model.NameVorpal, model.NamePMEMSpec, model.NameASAPRP, model.NameEADR,
	}
	t := &Table{
		ID:    "tab4",
		Title: "Quantitative Table IV: speedup over baseline (2 MCs; pmem_spec also at 1 MC)",
		Header: append(append([]string{"workload"}, models...),
			"pmem_spec@1mc", "asap_rp@1mc"),
	}
	wls := []string{"nstore", "cceh", "fast_fair", "atlas_queue", "p_masstree"}
	for _, wl := range wls {
		base := float64(h.Run(wl, model.NameBaseline, 4).Cycles)
		row := []string{wl}
		for _, mn := range models {
			r := h.Run(wl, mn, 4)
			row = append(row, f2(base/float64(r.Cycles)))
		}
		// Single-controller runs: PMEM-Spec never mis-speculates there.
		oneMC := config.Default()
		oneMC.MCs = 1
		base1 := float64(h.runTrace(oneMC, model.NameBaseline, h.traceFor(wl, 4)).Cycles)
		spec1 := float64(h.runTrace(oneMC, model.NamePMEMSpec, h.traceFor(wl, 4)).Cycles)
		asap1 := float64(h.runTrace(oneMC, model.NameASAPRP, h.traceFor(wl, 4)).Cycles)
		row = append(row, f2(base1/spec1), f2(base1/asap1))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper Table IV: every conservative design (LB++, HOPS, DPO, LRP) below ASAP; DPO ~ HOPS;",
		"PMEM-Spec: no stalls but high recovery cost in multi-MC systems, ~ASAP at 1 MC;",
		"eADR: no stalls, large battery. Mis-speculation counts appear in run stats (specMisspeculations).",
		"note: this LB++ omits its cache-eviction stalls, so it can beat polling-bound HOPS on short epochs;",
		"vorpal pays a 500-cycle clock broadcast before any epoch's successor may persist, so dfence-heavy",
		"workloads fall below even the synchronous baseline — the paper's broadcast-frequency criticism")
	return t
}

// AblNVMBW sweeps the per-controller NVM write bandwidth on the
// bandwidth-bound microbenchmark: the paper's §I claim that ASAP "offers
// greater performance benefit with increasing NVM write bandwidth" — faster
// media raises ASAP's eager-flushing ceiling while conservative designs
// stay bound by their per-epoch ACK round trip.
func (h *Harness) AblNVMBW() *Table {
	t := &Table{
		ID:     "abl_nvmbw",
		Title:  "Sensitivity: NVM write bandwidth per MC vs ASAP's advantage over HOPS (bandwidth micro)",
		Header: []string{"threads", "1.1GB/s", "2.3GB/s", "4.6GB/s", "9.1GB/s"},
	}
	gaps := []uint64{56, 28, 14, 7} // NVMDrainGap in ns
	for _, th := range []int{1, 2} {
		p := h.params(th)
		p.OpsPerThread = h.opts.Ops * 4
		tr, err := workload.Generate("bandwidth", p)
		if err != nil {
			panic(err)
		}
		row := []string{fmt.Sprintf("%d", th)}
		for _, gapNS := range gaps {
			cfg := h.cfgFor(th)
			cfg.NVMDrainGap = sim.NS(gapNS)
			hops := float64(h.runTrace(cfg, model.NameHOPSRP, tr).Cycles)
			asap := float64(h.runTrace(cfg, model.NameASAPRP, tr).Cycles)
			row = append(row, f2(hops/asap))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cells: HOPS/ASAP cycle ratio (>1 = ASAP faster); drain gaps swept: %v ns/line", gaps),
		"paper §I: ASAP offers greater benefit with increasing NVM write bandwidth")
	return t
}

func init() {
	experiments["tab4"] = (*Harness).Tab4
	experiments["abl_nvmbw"] = (*Harness).AblNVMBW
}
