package harness

// The experiment engine: a concurrency-safe, singleflight-deduplicated
// cache of workload traces and simulation runs, executed by a bounded
// worker pool.
//
// Every simulation in the evaluation is a pure function of its
// runspec.RunSpec — (workload, generator params, model, machine config)
// — and each machine.Machine instance is single-goroutine deterministic,
// so independent simulations may run concurrently without changing any
// result: parallel output is byte-identical to serial output. The engine
// guarantees each spec is computed exactly once (fig8/fig9/fig10 request
// heavily overlapping runs), bounds concurrently executing simulations to
// the pool size, converts panics on worker goroutines into errors, and —
// unless Options.KeepGoing is set (asapd serves unrelated requests; one
// bad spec must not poison the service) — cancels outstanding work when
// any simulation fails (first error wins and is reported as the cause
// everywhere).

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"asap/internal/machine"
	"asap/internal/obs"
	"asap/internal/runspec"
	"asap/internal/trace"
	"asap/internal/workload"
)

// traceKey identifies one generated trace. workload.Params is a flat
// comparable struct, so the key is directly usable in a map.
type traceKey struct {
	wl string
	p  workload.Params
}

// machineKey caches a fully-run Machine (RunMachine callers need ledger
// and engine state, not just the Result summary) under a distinct type so
// it never collides with the Result cache for the same spec.
type machineKey runspec.RunSpec

// call is one singleflight computation: the first requester of a key
// becomes the leader and computes; everyone else waits on ready.
type call struct {
	ready chan struct{} // closed once val/err are final
	val   any
	err   error
}

// engine executes simulations with bounded concurrency and caches every
// outcome (including errors — a failed simulation stays failed; results
// are deterministic, so a cached error is as final as a cached result).
type engine struct {
	sem       chan struct{} // bounds concurrently executing simulations
	ctx       context.Context
	cancel    context.CancelCauseFunc
	traceDir  string // when non-empty, capture trace artifacts per run
	keepGoing bool   // don't cancel the engine on the first error
	observe   func(runspec.RunSpec, *machine.Machine)

	mu    sync.Mutex
	calls map[any]*call

	// traceGens and runExecs count leader executions (not cache hits);
	// the plan-coverage test uses them to prove prefetch plans request
	// everything the experiment bodies consume, and asapd's /v1/stats
	// reports them. simCycles accumulates the simulated cycles of
	// executed runs for cycles/sec reporting.
	traceGens atomic.Int64
	runExecs  atomic.Int64
	simCycles atomic.Uint64
}

// newEngine builds an engine from the harness options; Parallel <= 0
// selects GOMAXPROCS.
func newEngine(opts Options) *engine {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	return &engine{
		sem:       make(chan struct{}, parallel),
		ctx:       ctx,
		cancel:    cancel,
		traceDir:  opts.TraceDir,
		keepGoing: opts.KeepGoing,
		observe:   opts.Observe,
		calls:     make(map[any]*call),
	}
}

// workers reports the pool size.
func (e *engine) workers() int { return cap(e.sem) }

// once runs fn exactly once per key, caching the outcome. Concurrent
// callers of the same key block until the leader finishes. Any error
// cancels the engine so outstanding leaders stop before simulating (the
// first error becomes the cancellation cause reported everywhere) —
// unless the engine keeps going, in which case the error is cached for
// its own key and other keys are untouched.
func (e *engine) once(key any, fn func() (any, error)) (any, error) {
	e.mu.Lock()
	if c, ok := e.calls[key]; ok {
		e.mu.Unlock()
		<-c.ready
		return c.val, c.err
	}
	c := &call{ready: make(chan struct{})}
	e.calls[key] = c
	e.mu.Unlock()

	c.val, c.err = fn()
	if c.err != nil && !e.keepGoing {
		e.cancel(c.err) // no-op after the first cancellation
	}
	close(c.ready)
	return c.val, c.err
}

// capture converts a panic below fn — the simulator's internal invariant
// checks still panic — into a returned error, so a failure on a worker
// goroutine propagates through the pool instead of killing the process.
func capture(what string, fn func() (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: panic: %v", what, r)
		}
	}()
	return fn()
}

// protect is the worker-slot wrapper for simulation leaders: it waits for
// a pool slot, honours cancellation (returning the root-cause error of
// whichever simulation failed first), and captures panics.
func (e *engine) protect(what string, fn func() (any, error)) (any, error) {
	select {
	case <-e.ctx.Done():
		return nil, context.Cause(e.ctx)
	case e.sem <- struct{}{}:
	}
	defer func() { <-e.sem }()
	if e.ctx.Err() != nil { // cancelled while we raced the slot
		return nil, context.Cause(e.ctx)
	}
	return capture(what, fn)
}

// trace returns the generated trace for key, computing it at most once per
// engine and consulting the process-global compiled-trace cache so repeat
// engines share one arena (traceGens still counts this engine's leader
// executions — the plan-coverage test reasons about engine-local work).
// Trace generation deliberately does not take a pool slot: it is always
// invoked either inline by a run leader that already holds one, or
// directly from a serial experiment body, so a slot-per-trace would risk
// leaders deadlocking behind runs that wait for their traces.
func (e *engine) trace(k traceKey) (*trace.Trace, error) {
	v, err := e.once(k, func() (any, error) {
		return capture("workload "+k.wl, func() (any, error) {
			e.traceGens.Add(1)
			return lookupTrace(k)
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*trace.Trace), nil
}

// run executes the simulation for spec, computing it at most once.
func (e *engine) run(k runspec.RunSpec) (machine.Result, error) {
	v, err := e.once(k, func() (any, error) {
		return e.protect(k.String(), func() (any, error) {
			m, err := e.build(k)
			if err != nil {
				return nil, err
			}
			flush := e.instrument(k, m)
			e.runExecs.Add(1)
			r := m.Run(0)
			if r.Cycles == 0 {
				return nil, fmt.Errorf("harness: %s produced zero cycles", k)
			}
			e.simCycles.Add(uint64(r.Cycles))
			if err := flush(); err != nil {
				return nil, err
			}
			return r, nil
		})
	})
	if err != nil {
		return machine.Result{}, err
	}
	return v.(machine.Result), nil
}

// machine executes the simulation for spec and caches the whole run
// machine, for experiments that inspect ledger or engine state after the
// run (Fig2). Cached machines are read-only once their run completes.
func (e *engine) machine(k runspec.RunSpec) (*machine.Machine, error) {
	v, err := e.once(machineKey(k), func() (any, error) {
		return e.protect(k.String(), func() (any, error) {
			m, err := e.build(k)
			if err != nil {
				return nil, err
			}
			flush := e.instrument(k, m)
			e.runExecs.Add(1)
			r := m.Run(0)
			if r.Cycles == 0 {
				return nil, fmt.Errorf("harness: %s produced zero cycles", k)
			}
			e.simCycles.Add(uint64(r.Cycles))
			if err := flush(); err != nil {
				return nil, err
			}
			return m, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return v.(*machine.Machine), nil
}

// build assembles the machine for spec (trace generation is singleflighted
// separately: runs of the same workload under different models share one
// trace, which machines only read). The Observe hook fires here, before
// Run, so callers can attach obs sinks — asapd attaches a progress gauge.
func (e *engine) build(k runspec.RunSpec) (*machine.Machine, error) {
	tr, err := e.trace(traceKey{wl: k.Workload, p: k.Params})
	if err != nil {
		return nil, err
	}
	shards := k.Shards
	if shards == 0 {
		shards = 1 // the normalized serial value
	}
	m, err := machine.NewSharded(k.Config, k.Model, tr, shards)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", k, err)
	}
	if e.observe != nil {
		e.observe(k, m)
	}
	return m, nil
}

// execs reports leader executions so far (traces generated, runs
// simulated) — cache hits excluded.
func (e *engine) execs() (traces, runs int64) {
	return e.traceGens.Load(), e.runExecs.Load()
}

// artifactKey dedups trace-artifact writes: the Result cache and the
// Machine cache may both execute the same spec, and the artifacts are
// deterministic, so whichever leader finishes first writes the files.
type artifactKey string

// instrument attaches a fresh collector and default-interval timeline to
// m when trace capture is enabled, and returns the function that
// serializes both artifacts after the run. Each leader owns its own
// collector, so parallel captures never share mutable state. With capture
// disabled it returns a no-op, keeping the call sites unconditional.
// Sharded machines cannot be traced (the tracer assumes the serial
// engine); their leaders skip capture rather than panic — the CLIs reject
// the flag combination up front, this guard covers specs arriving with
// Shards set over the RunSpec path.
func (e *engine) instrument(k runspec.RunSpec, m *machine.Machine) func() error {
	if e.traceDir == "" || m.Sharded() {
		return func() error { return nil }
	}
	col := obs.NewCollector(m.Eng.Now)
	m.AttachTracer(col)
	tl := m.EnableTimeline(0)
	return func() error { return e.writeArtifacts(k, col, tl) }
}

// writeArtifacts serializes one run's Chrome trace and occupancy timeline
// into the engine's trace directory, at most once per artifact name.
func (e *engine) writeArtifacts(k runspec.RunSpec, col *obs.Collector, tl *obs.Timeline) error {
	name := artifactName(k)
	_, err := e.once(artifactKey(name), func() (any, error) {
		if err := os.MkdirAll(e.traceDir, 0o755); err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := col.WriteChromeTrace(&buf); err != nil {
			return nil, err
		}
		if err := os.WriteFile(filepath.Join(e.traceDir, name+".trace.json"), buf.Bytes(), 0o644); err != nil {
			return nil, err
		}
		buf.Reset()
		if err := tl.WriteCSV(&buf); err != nil {
			return nil, err
		}
		return nil, os.WriteFile(filepath.Join(e.traceDir, name+".timeline.csv"), buf.Bytes(), 0o644)
	})
	return err
}

// artifactName derives a stable, filesystem-safe name for a run's trace
// artifacts. Workload/model/threads make the common case readable; a
// prefix of the spec's content address separates ablation runs that
// differ only in machine configuration or generator parameters, and ties
// each artifact to the same hash asapd's store files the result under.
func artifactName(k runspec.RunSpec) string {
	return fmt.Sprintf("%s_%s_%dt_%s", k.Workload, k.Model, k.Params.Threads, k.MustHash()[:8])
}
