package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Fatalf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(4)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank 0 should take roughly 1/H(100) ~ 19% of the mass at s=1.
	frac := float64(counts[0]) / n
	if frac < 0.12 || frac > 0.30 {
		t.Fatalf("Zipf head mass %v implausible", frac)
	}
}

func TestUint64n(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
}
