// Package rng provides a small deterministic pseudo-random number generator
// used by workload generators. Determinism matters: every figure in
// EXPERIMENTS.md must be exactly reproducible from a seed.
package rng

import "math"

// RNG is an xorshift64* generator. The zero value is not valid; use New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed (zero is remapped to a fixed
// non-zero constant, since xorshift has an all-zero fixed point).
func New(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Zipf returns a Zipf-distributed integer in [0, n) with exponent s,
// computed by inverse-CDF over a precomputed table. Use NewZipf for repeated
// draws.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s (> 0). Larger s
// skews more heavily toward small values.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: r, cdf: cdf}
}

// Next draws the next Zipf-distributed value.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
