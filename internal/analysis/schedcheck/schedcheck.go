// Package schedcheck enforces the event-scheduler access discipline that
// keeps the zero-allocation hot path honest:
//
//  1. The engine's event heap is private. Appending to an Engine's events
//     slice anywhere outside internal/sim bypasses the (when, seq)
//     heap ordering that makes dispatch deterministic — events must enter
//     through At/After/ScheduleOp/AfterOp, which assign the sequence
//     number that breaks timestamp ties.
//
//  2. In the packages converted to typed events (internal/machine,
//     internal/persist), the closure-form After/At calls allocate a
//     closure per event and are reserved for cold paths. Each surviving
//     call site must carry an //asaplint:ignore schedcheck directive
//     naming why it is cold; an unannotated closure schedule is treated
//     as an accidental hot-path regression.
//
// The Engine type is matched structurally (a named struct type called
// Engine with an After method), so fixtures need no non-stdlib imports.
package schedcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"asap/internal/analysis"
)

// New returns the schedcheck analyzer.
func New() analysis.Analyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "schedcheck" }

func (checker) Doc() string {
	return "events enter the engine only via its schedule methods; converted packages (machine, persist) must use the typed AfterOp/ScheduleOp form except on annotated cold paths"
}

// convertedPkgs are the packages whose hot paths were rewritten to the
// typed-event form; closure-form After/At there needs a cold-path
// annotation.
var convertedPkgs = []string{
	"internal/machine",
	"internal/persist",
}

func (c checker) Run(pass *analysis.Pass) {
	insideSim := strings.HasSuffix(pass.Path, "internal/sim")
	converted := false
	for _, p := range convertedPkgs {
		if strings.HasSuffix(pass.Path, p) {
			converted = true
			break
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !insideSim {
				c.checkEventsAppend(pass, call)
			}
			if converted {
				c.checkClosureSchedule(pass, call)
			}
			return true
		})
	}
}

// checkEventsAppend flags append(e.events, ...) where e is a sim.Engine.
// The field is unexported, so the compiler already rejects this outside
// the sim package; the analyzer keeps the invariant explicit so that
// exporting the slice (or embedding the engine) can never quietly open a
// scheduling side door.
func (c checker) checkEventsAppend(pass *analysis.Pass, call *ast.CallExpr) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return
	}
	sel, ok := call.Args[0].(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "events" || !isEngine(pass.TypeOf(sel.X)) {
		return
	}
	pass.Reportf(call.Pos(),
		"direct append to %s bypasses the engine's (when, seq) heap ordering: schedule through At/After/ScheduleOp/AfterOp",
		types.ExprString(call.Args[0]))
}

// checkClosureSchedule flags closure-form After/At calls on an Engine in
// a converted package.
func (c checker) checkClosureSchedule(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "After" && name != "At" {
		return
	}
	if !isEngine(pass.TypeOf(sel.X)) {
		return
	}
	pass.Reportf(call.Pos(),
		"closure-form %s.%s allocates per event on a converted package's path: use %s with a typed event kind, or annotate a cold path with //asaplint:ignore schedcheck <reason>",
		types.ExprString(sel.X), name, typedForm(name))
}

func typedForm(name string) string {
	if name == "After" {
		return "AfterOp"
	}
	return "ScheduleOp"
}

// isEngine matches any named struct type called Engine that has an After
// method, directly or behind a pointer — internal/sim.Engine in the real
// tree, a local stand-in in fixtures.
func isEngine(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Engine" {
		return false
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return false
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "After" {
			return true
		}
	}
	return false
}
