// Fixture for schedcheck under a converted package path
// (asap/internal/machine): closure-form After/At are flagged unless
// annotated, typed-form scheduling and appends to non-engine slices pass.
package machine

type Cycles = uint64

type EventOp interface {
	RunEvent(kind int, arg uint64)
}

type event struct {
	when Cycles
	fn   func()
}

type Engine struct {
	events []event
}

// The real scheduling methods live in internal/sim; these stubs only
// give the fixture the right call-site shapes.
func (e *Engine) At(when Cycles, fn func())     {}
func (e *Engine) After(delay Cycles, fn func()) {}

func (e *Engine) ScheduleOp(when Cycles, op EventOp, kind int, arg uint64) {}
func (e *Engine) AfterOp(delay Cycles, op EventOp, kind int, arg uint64)   {}

type machine struct {
	eng *Engine
}

func (m *machine) RunEvent(kind int, arg uint64) {}

func (m *machine) hotPath() {
	m.eng.AfterOp(1, m, 0, 7) // typed form: ok
	m.eng.ScheduleOp(5, m, 1, 7)
	m.eng.After(1, func() {}) // want `closure-form m\.eng\.After allocates per event`
	m.eng.At(5, func() {})    // want `closure-form m\.eng\.At allocates per event`
}

func (m *machine) coldPath() {
	//asaplint:ignore schedcheck crash scheduling runs once per experiment
	m.eng.At(100, func() {})
	m.eng.After(2, func() {}) //asaplint:ignore schedcheck lock handoff is contention-only
}

func (m *machine) sideDoor() {
	m.eng.events = append(m.eng.events, event{0, nil}) // want `direct append to m\.eng\.events bypasses`
}

type jobs struct {
	events []event
}

func (m *machine) notAnEngine(j *jobs) {
	// A non-Engine events slice is someone else's business.
	j.events = append(j.events, event{})
}
