// Fixture for schedcheck under an unconverted package path
// (asap/internal/model): closure scheduling is still the norm there, but
// the engine's event heap stays off-limits.
package model

type Cycles = uint64

type event struct {
	when Cycles
	fn   func()
}

type Engine struct {
	events []event
}

// Stubs; the real methods live in internal/sim.
func (e *Engine) At(when Cycles, fn func())     {}
func (e *Engine) After(delay Cycles, fn func()) {}

type model struct {
	eng *Engine
}

func (m *model) schedule() {
	m.eng.After(3, func() {}) // closure form allowed: package not converted
	m.eng.At(9, func() {})
}

func (m *model) sideDoor() {
	m.eng.events = append(m.eng.events, event{}) // want `direct append to m\.eng\.events bypasses`
}
