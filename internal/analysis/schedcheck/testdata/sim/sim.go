// Fixture for schedcheck under the engine's own package path
// (asap/internal/sim): the heap implementation appends to its own events
// slice freely.
package sim

type Cycles = uint64

type event struct {
	when Cycles
	fn   func()
}

type Engine struct {
	events []event
}

func (e *Engine) After(delay Cycles, fn func()) { e.push(event{delay, fn}) }

func (e *Engine) push(ev event) {
	e.events = append(e.events, ev) // the engine owns its heap
}
