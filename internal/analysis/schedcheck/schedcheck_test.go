package schedcheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/schedcheck"
)

// TestSchedcheckConverted: in a converted package, closure-form After/At
// are flagged (unless carrying an ignore directive) and events-appends
// outside sim are flagged.
func TestSchedcheckConverted(t *testing.T) {
	analysistest.Run(t, schedcheck.New(), "asap/internal/machine", "testdata/sched")
}

// TestSchedcheckUnconverted: closure scheduling stays legal in packages
// not yet converted, but the heap side door is still closed.
func TestSchedcheckUnconverted(t *testing.T) {
	analysistest.Run(t, schedcheck.New(), "asap/internal/model", "testdata/unconverted")
}

// TestSchedcheckSimExempt: the engine appends to its own heap.
func TestSchedcheckSimExempt(t *testing.T) {
	analysistest.Run(t, schedcheck.New(), "asap/internal/sim", "testdata/sim")
}
