// Package obsfix exercises obscheck: tracer hook calls must be
// nil-guarded. The local Tracer interface mirrors internal/obs.Tracer
// (fixtures may import only the standard library; the analyzer matches
// the interface structurally by name).
package obsfix

type TrackID int

type Tracer interface {
	Track(name string, sort int) TrackID
	Begin(t TrackID, name string)
	End(t TrackID)
	Instant(t TrackID, name string)
	Counter(t TrackID, name string, v int64)
}

type dev struct {
	trc   Tracer // nil unless tracing
	track TrackID
	busy  bool
}

func (d *dev) goodBlock() {
	if d.trc != nil {
		d.trc.Begin(d.track, "serve")
		d.trc.End(d.track)
	}
}

func (d *dev) goodConjunct() {
	if d.busy && d.trc != nil {
		d.trc.Instant(d.track, "busy")
	}
}

func (d *dev) goodNested() {
	if d.trc != nil {
		if d.busy {
			d.trc.Counter(d.track, "q", 1)
		}
	}
}

func (d *dev) goodClosureOwnGuard(after func(func())) {
	after(func() {
		if d.trc != nil {
			d.trc.Instant(d.track, "later")
		}
	})
}

// attach wires the tracer; Track is exempt from guarding because
// AttachTracer contracts a non-nil tracer.
func (d *dev) attach(tr Tracer) {
	d.trc = tr
	d.track = tr.Track("dev", 0)
}

func (d *dev) badUnguarded() {
	d.trc.Instant(d.track, "x") // want `obs hook d\.trc\.Instant not nil-guarded`
}

func (d *dev) badWrongReceiver(other *dev) {
	if other.trc != nil {
		d.trc.Counter(d.track, "q", 2) // want `obs hook d\.trc\.Counter not nil-guarded`
	}
}

func (d *dev) badElseBranch() {
	if d.trc != nil {
		d.trc.Instant(d.track, "on")
	} else {
		d.trc.End(d.track) // want `obs hook d\.trc\.End not nil-guarded`
	}
}

func (d *dev) badGuardDoesNotCrossClosure(after func(func())) {
	if d.trc != nil {
		after(func() {
			d.trc.Begin(d.track, "later") // want `obs hook d\.trc\.Begin not nil-guarded`
		})
	}
}

func (d *dev) badEqGuard() {
	if d.trc == nil {
		return
	}
	d.trc.Instant(d.track, "x") // want `obs hook d\.trc\.Instant not nil-guarded`
}

func (d *dev) suppressed() {
	//asaplint:ignore obscheck early-return guards are not tracked; this site is provably guarded
	d.trc.Instant(d.track, "x")
}
