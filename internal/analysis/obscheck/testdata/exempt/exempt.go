// Package obsexempt stands in for internal/obs itself: the package that
// defines Tracer may call hooks unguarded (its own tests drive concrete
// collectors), so obscheck must not fire here. No want comments: every
// finding would fail the test.
package obsexempt

type TrackID int

type Tracer interface {
	Track(name string, sort int) TrackID
	Begin(t TrackID, name string)
	End(t TrackID)
	Instant(t TrackID, name string)
	Counter(t TrackID, name string, v int64)
}

type probe struct {
	trc Tracer
}

func (p *probe) drive() {
	p.trc.Begin(0, "x")
	p.trc.End(0)
}
