package obscheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/obscheck"
)

func TestObscheck(t *testing.T) {
	analysistest.Run(t, obscheck.New(), "asap/internal/machine", "testdata/obs")
}

// TestObscheckExemptsObsPackage: the obs package itself (which implements
// Tracer) is out of scope.
func TestObscheckExemptsObsPackage(t *testing.T) {
	analysistest.Run(t, obscheck.New(), "asap/internal/obs", "testdata/exempt")
}
