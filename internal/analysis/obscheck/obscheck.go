// Package obscheck enforces the observability layer's zero-overhead
// contract: tracer hooks embedded in the simulator (internal/obs.Tracer's
// Begin/End/Instant/Counter) are nil when tracing is off, so every call
// site must sit inside an `if <tracer> != nil { ... }` guard — an
// unguarded call either panics on untraced runs or forces callers to
// allocate a no-op tracer, both of which break the tracing-off fast path.
//
// The analyzer matches the Tracer interface structurally (a named
// interface type called Tracer), so its fixtures need no non-stdlib
// imports, and it exempts internal/obs itself. Track is deliberately not
// checked: it is called only from AttachTracer wiring, where the tracer
// is contractually non-nil. Guards do not propagate into function
// literals — a closure may run after the guarded block, so it needs its
// own check.
package obscheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asap/internal/analysis"
)

// New returns the obscheck analyzer.
func New() analysis.Analyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "obscheck" }

func (checker) Doc() string {
	return "every obs.Tracer hook call (Begin/End/Instant/Counter) must be nil-guarded; tracers are nil unless tracing is enabled"
}

// hookNames are the Tracer methods that run on simulation hot paths and
// therefore must be guarded at every call site.
var hookNames = map[string]bool{
	"Begin":   true,
	"End":     true,
	"Instant": true,
	"Counter": true,
}

func (c checker) Run(pass *analysis.Pass) {
	if strings.HasSuffix(pass.Path, "internal/obs") {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.visit(pass, fd.Body, nil)
			}
		}
	}
}

// visit walks a subtree carrying the set of expressions known non-nil on
// the current path (rendered with types.ExprString).
func (c checker) visit(pass *analysis.Pass, node ast.Node, guards map[string]bool) {
	switch s := node.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			c.visit(pass, s.Init, guards)
		}
		c.visit(pass, s.Cond, guards)
		c.visit(pass, s.Body, merge(guards, nilGuards(s.Cond)))
		if s.Else != nil {
			c.visit(pass, s.Else, guards)
		}
		return
	case *ast.FuncLit:
		// A closure may execute long after the guarded block (deferred,
		// scheduled as a sim event), when the tracer field could differ:
		// it must carry its own guard.
		c.visit(pass, s.Body, nil)
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil || n == node {
			return true
		}
		switch n.(type) {
		case *ast.IfStmt, *ast.FuncLit:
			c.visit(pass, n, guards)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			c.checkCall(pass, call, guards)
		}
		return true
	})
}

func (c checker) checkCall(pass *analysis.Pass, call *ast.CallExpr, guards map[string]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !hookNames[sel.Sel.Name] || !isTracer(pass.TypeOf(sel.X)) {
		return
	}
	if recv := types.ExprString(sel.X); !guards[recv] {
		pass.Reportf(call.Pos(),
			"obs hook %s.%s not nil-guarded: wrap the call in `if %s != nil { ... }` (tracers are nil unless tracing is on)",
			recv, sel.Sel.Name, recv)
	}
}

// isTracer matches any named interface type called Tracer, so the check
// applies to internal/obs.Tracer in the real tree and to the stdlib-only
// fixture's local copy alike.
func isTracer(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Tracer" {
		return false
	}
	_, ok = n.Underlying().(*types.Interface)
	return ok
}

// nilGuards collects the expressions an if-condition proves non-nil:
// `x != nil` comparisons, including conjuncts of && chains.
func nilGuards(cond ast.Expr) map[string]bool {
	out := make(map[string]bool)
	var collect func(e ast.Expr)
	collect = func(e ast.Expr) {
		switch b := e.(type) {
		case *ast.ParenExpr:
			collect(b.X)
		case *ast.BinaryExpr:
			switch b.Op {
			case token.LAND:
				collect(b.X)
				collect(b.Y)
			case token.NEQ:
				if isNilIdent(b.X) {
					out[types.ExprString(b.Y)] = true
				} else if isNilIdent(b.Y) {
					out[types.ExprString(b.X)] = true
				}
			}
		}
	}
	collect(cond)
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func merge(a, b map[string]bool) map[string]bool {
	if len(b) == 0 {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
