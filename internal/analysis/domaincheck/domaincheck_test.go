package domaincheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/domaincheck"
)

func TestDomainFindings(t *testing.T) {
	analysistest.RunModule(t, domaincheck.New(), "asap/fixture", "testdata/domains")
}
