// Package fixture exercises domaincheck: event callbacks (RunEvent and
// what it reaches) may only mutate their own component's state.
package fixture

// Package-level state: off-limits to every event domain.
var counter int
var registry = map[string]int{}

type subState struct{ x int }

// Station is a component: it has RunEvent(int, uint64).
type Station struct {
	n    int
	sub  *subState
	peer *Link
}

// Link is a second component, pointed to by Station.
type Link struct {
	n    int
	back *Station
}

func (s *Station) RunEvent(kind int, arg uint64) {
	s.n++             // ok: own field
	s.sub.x = 3       // ok: own subtree through a non-component pointer
	counter++         // want `write to package-level var counter`
	registry["k"] = 1 // want `write to package-level var registry`
	s.peer.n = 4      // want `write to field n of component Link`
	b := s.peer
	b.n++       // want `write to field n of component Link`
	*b = Link{} // want `write through pointer into component Link`
	s.helper(arg)
	func() {
		counter += 2 // want `write to package-level var counter`
		s.n--        // ok: closures run in the owning domain
	}()
	s.detach() //asaplint:ignore domaincheck teardown runs once, engine drained
}

// helper is in Station's domain via the static call in RunEvent.
func (s *Station) helper(arg uint64) {
	s.n = int(arg) // ok
	s.peer.n -= 2  // want `write to field n of component Link`
	touchGlobals()
}

// touchGlobals is a free function: it executes inline in whichever
// callback calls it, so its writes are the caller's writes.
func touchGlobals() {
	counter = 9 // want `write to package-level var counter`
}

// detach sits behind an ignored call edge: the directive cuts it out of
// the domain, so nothing here is a finding.
func (s *Station) detach() {
	counter = 0
	s.peer.back = nil
}

// audit is not reachable from any RunEvent: identical writes are not
// findings.
func (s *Station) audit() {
	counter = 7
	s.peer.n = 1
}

func (l *Link) RunEvent(kind int, arg uint64) {
	l.n++ // ok: own field
	if l.back != nil {
		l.back.n = 5 // want `write to field n of component Station`
	}
}

// Shard boundaries: components annotated with //asap:domain may not call
// each other synchronously across different shard names.

// Pump models a CPU-side component.
//
//asap:domain cpu
type Pump struct {
	n    int
	ctrl *Ctrl
	mate *Gauge
	sink receiver
	ring *ring
}

// Ctrl models an MC-side component.
//
//asap:domain mc
type Ctrl struct{ n int }

// Gauge shares Pump's shard: calls between them stay legal.
//
//asap:domain cpu
type Gauge struct{ n int }

// ring is the messaging fabric: unannotated, so both shards may call it.
type ring struct{ q []uint64 }

type receiver interface{ Receive(v int) }

func (c *Ctrl) RunEvent(kind int, arg uint64) { c.n++ }
func (c *Ctrl) Receive(v int)                 { c.n = v }

func (g *Gauge) RunEvent(kind int, arg uint64) { g.n++ }
func (g *Gauge) Observe(v int)                 { g.n = v }

func (r *ring) Send(v uint64) { r.q = append(r.q, v) }

func (p *Pump) RunEvent(kind int, arg uint64) {
	p.n++
	p.ctrl.Receive(1)  // want `synchronous call to \(fixture.Ctrl\).Receive \(shard "mc"\)`
	p.mate.Observe(2)  // ok: same shard
	p.ring.Send(arg)   // ok: the fabric is unannotated
	p.sink.Receive(3)  // want `synchronous call to \(fixture.Ctrl\).Receive \(shard "mc"\)`
	p.relay()          // helper joins the domain; its edges are checked too
	p.ctrl.Receive(9)  //asaplint:ignore domaincheck serial-gated fallback, cluster==nil branch
	func() { p.n-- }() // ok: closure runs on the owning shard
}

// relay is in Pump's domain via the static call in RunEvent.
func (p *Pump) relay() {
	p.ctrl.Receive(4) // want `synchronous call to \(fixture.Ctrl\).Receive \(shard "mc"\)`
}

// drain is not reachable from Pump.RunEvent: identical calls are legal
// outside the event domain (setup/teardown and post-run merging).
func (p *Pump) drain() {
	p.ctrl.Receive(5)
}
