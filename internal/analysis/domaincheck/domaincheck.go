// Package domaincheck enforces the state-isolation invariant that the
// planned parallel discrete-event engine will rely on: an event callback
// may only mutate state owned by its component.
//
// A component is a named struct type implementing the typed event
// interface — a method
//
//	RunEvent(kind int, arg uint64)
//
// (sim.EventOp). Everything reachable from a component's RunEvent
// through static calls, interface dispatch and closures, restricted to
// the component's own methods, its closures, and free functions, forms
// that component's event domain. Inside the domain, two kinds of write
// are flagged:
//
//   - writes to package-level variables (shared by every domain, so any
//     mutation races once event execution is sharded), and
//   - writes that reach through a pointer into a *different* component
//     (assignments to its fields, or through a dereference of a pointer
//     to it). Cross-component *method calls* stay legal — they are the
//     messaging fabric, and the parallel engine will serialize them by
//     scheduling domain-tagged events — but reaching directly into
//     another component's memory is exactly the data race the sharding
//     cannot fix.
//
// The engine itself is shared infrastructure by contract (schedule calls
// from any domain); it has no RunEvent, so it is not a component and
// writes via its API are method calls anyway. Violations carry the
// owning domain in the message and honor //asaplint:ignore domaincheck,
// which on a call site also cuts the edge out of the domain like
// alloccheck's propagation control.
//
// # Shard boundaries
//
// The sharded engine (sim.Cluster) assigns components to timing domains;
// a component type declares its assignment with a directive in its doc
// comment:
//
//	//asap:domain cpu
//
// Between two components annotated with *different* shard names, the
// method-call allowance above is withdrawn: a synchronous call from one
// annotated component's event domain into the other annotated component
// is a cross-shard interaction that bypasses the ring fabric — at run
// time the callee's state lives on another goroutine's clock. Such calls
// must go through the cross-shard ring (persist.Link), whose types are
// deliberately unannotated: ring endpoints run on whichever domain drains
// them. Components without a directive are unconstrained by this rule
// (the serial-only models stay legal), and //asaplint:ignore on the call
// site waives it for deliberately serial-gated fallbacks.
package domaincheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asap/internal/analysis"
	"asap/internal/analysis/callgraph"
)

// New returns the domaincheck module analyzer.
func New() analysis.ModuleAnalyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "domaincheck" }

func (checker) Doc() string {
	return "event callbacks (RunEvent and everything it reaches) may only mutate their own component's state: no package-level variable writes, no writes into other components' fields, no synchronous calls into components on a different //asap:domain shard"
}

// DomainDirective assigns a component type to a shard of the parallel
// engine; see the package comment.
const DomainDirective = "//asap:domain"

func (c checker) RunModule(pass *analysis.ModulePass) {
	g := callgraph.Build(pass.Pkgs)
	dc := &domainCtx{pass: pass, g: g, flagged: make(map[token.Pos]bool)}
	for _, named := range g.NamedTypes() {
		if isComponent(named) {
			dc.components = append(dc.components, named)
		}
	}
	dc.shards = collectShardNames(pass)
	for _, comp := range dc.components {
		dc.checkDomain(comp)
	}
}

type domainCtx struct {
	pass       *analysis.ModulePass
	g          *callgraph.Graph
	components []*types.Named
	// shards maps an annotated component type to its //asap:domain name.
	shards map[*types.Named]string
	// flagged dedupes findings by position: a free function reachable
	// from several domains is reported once, for the first domain that
	// reaches it.
	flagged map[token.Pos]bool
}

// collectShardNames walks every type declaration for //asap:domain
// directives. The directive binds to the TypeSpec (its own doc, or the
// GenDecl doc for the common single-spec form).
func collectShardNames(pass *analysis.ModulePass) map[*types.Named]string {
	shards := make(map[*types.Named]string)
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					name := shardNameOf(ts.Doc)
					if name == "" && len(gd.Specs) == 1 {
						name = shardNameOf(gd.Doc)
					}
					if name == "" {
						continue
					}
					if tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						if named, ok := tn.Type().(*types.Named); ok {
							shards[named] = name
						}
					}
				}
			}
		}
	}
	return shards
}

// shardNameOf extracts the name from an //asap:domain line in a doc
// comment, or "".
func shardNameOf(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, DomainDirective)
		if !ok || rest == "" {
			continue
		}
		if fields := strings.Fields(rest); len(fields) > 0 {
			return fields[0]
		}
	}
	return ""
}

// isComponent reports whether the named type is a struct with a
// RunEvent(kind int, arg uint64) method (pointer method set).
func isComponent(named *types.Named) bool {
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), "RunEvent")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	p0, ok0 := sig.Params().At(0).Type().(*types.Basic)
	p1, ok1 := sig.Params().At(1).Type().(*types.Basic)
	return ok0 && ok1 && p0.Kind() == types.Int && p1.Kind() == types.Uint64
}

// checkDomain walks the event domain of one component.
func (dc *domainCtx) checkDomain(owner *types.Named) {
	runEvent := dc.methodNode(owner, "RunEvent")
	if runEvent == nil || runEvent.Body == nil {
		return
	}
	inScope := map[*callgraph.Node]bool{runEvent: true}
	queue := []*callgraph.Node{runEvent}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, call := range n.Calls {
			if call.Kind != callgraph.Static && call.Kind != callgraph.Interface {
				continue
			}
			if dc.pass.Ignored(callPos(call)) {
				continue // directive cuts the edge out of the domain
			}
			dc.checkShardEdge(owner, call)
			for _, callee := range call.Callees {
				if inScope[callee] || !dc.inDomain(owner, callee) {
					continue
				}
				inScope[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	for _, n := range dc.g.Nodes { // deterministic order
		if inScope[n] && n.Body != nil {
			dc.checkBody(owner, n)
		}
	}
}

// checkShardEdge flags a call edge that crosses a shard boundary: owner
// and the callee's receiver component are both //asap:domain-annotated,
// with different names. Such a call executes against state owned by
// another timing domain's goroutine — it must go through the cross-shard
// ring instead.
func (dc *domainCtx) checkShardEdge(owner *types.Named, call callgraph.Call) {
	ownShard := dc.shards[owner]
	if ownShard == "" {
		return
	}
	for _, callee := range call.Callees {
		if callee.Func == nil {
			continue // literal: runs in the calling domain, checked there
		}
		sig, ok := callee.Func.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		target := receiverNamed(sig.Recv().Type())
		if target == nil || target == owner {
			continue
		}
		theirShard := dc.shards[target]
		if theirShard == "" || theirShard == ownShard {
			continue
		}
		pos := callPos(call)
		if dc.flagged[pos] {
			return
		}
		dc.flagged[pos] = true
		dc.pass.Reportf(pos,
			"synchronous call to (%s).%s (shard %q) from the event domain of %s (shard %q); cross-shard interaction must go through the ring",
			shortTypeName(target), callee.Func.Name(), theirShard, shortTypeName(owner), ownShard)
		return
	}
}

// inDomain decides whether a callee executes as part of owner's domain:
// the owner's own methods, closures created inside the domain, and free
// functions. Methods of other named types are the messaging surface and
// are policed by their own component (if any).
func (dc *domainCtx) inDomain(owner *types.Named, n *callgraph.Node) bool {
	if n.Lit != nil {
		return true // creation edges only exist from in-scope nodes
	}
	sig := n.Func.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return true // free function: runs inline in the callback
	}
	return receiverNamed(recv.Type()) == owner
}

func callPos(call callgraph.Call) token.Pos {
	if call.Site != nil {
		return call.Site.Pos()
	}
	return call.Callees[0].Pos()
}

func receiverNamed(t types.Type) *types.Named {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// componentOf returns the component a value of type t belongs to, or nil.
func (dc *domainCtx) componentOf(t types.Type) *types.Named {
	named := receiverNamed(derefType(t))
	if named == nil {
		return nil
	}
	for _, c := range dc.components {
		if c == named {
			return c
		}
	}
	return nil
}

func derefType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// checkBody flags domain-violating writes in one in-scope body. Nested
// function literals are skipped: they are separate nodes, analyzed when
// the scope walk reaches them.
func (dc *domainCtx) checkBody(owner *types.Named, n *callgraph.Node) {
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				dc.checkTarget(owner, n, lhs)
			}
		case *ast.IncDecStmt:
			dc.checkTarget(owner, n, st.X)
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				dc.checkTarget(owner, n, st.Key)
				dc.checkTarget(owner, n, st.Value)
			}
		}
		return true
	})
}

// checkTarget classifies one assignment target, walking selector, index
// and dereference steps toward the root. A step that crosses into a
// different component flags the write; a root resolving to a
// package-level variable flags it too.
func (dc *domainCtx) checkTarget(owner *types.Named, n *callgraph.Node, lhs ast.Expr) {
	if lhs == nil {
		return
	}
	info := n.Pkg.Info
	e := ast.Unparen(lhs)
	for {
		switch ex := e.(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(ex.X).(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, ok := info.Uses[ex.Sel].(*types.Var); ok && isPkgLevel(v) {
						dc.flag(lhs.Pos(), owner, "write to package-level var %s.%s", id.Name, ex.Sel.Name)
					}
					return
				}
			}
			if comp := dc.componentOf(info.TypeOf(ex.X)); comp != nil && comp != owner {
				dc.flag(lhs.Pos(), owner, "write to field %s of component %s", ex.Sel.Name, comp.Obj().Name())
				return
			}
			e = ast.Unparen(ex.X)
		case *ast.StarExpr:
			if comp := dc.componentOf(info.TypeOf(ex.X)); comp != nil && comp != owner {
				dc.flag(lhs.Pos(), owner, "write through pointer into component %s", comp.Obj().Name())
				return
			}
			e = ast.Unparen(ex.X)
		case *ast.IndexExpr:
			e = ast.Unparen(ex.X)
		case *ast.Ident:
			if v, ok := objOf(info, ex).(*types.Var); ok && isPkgLevel(v) {
				dc.flag(lhs.Pos(), owner, "write to package-level var %s", ex.Name)
			}
			return
		default:
			return
		}
	}
}

func (dc *domainCtx) flag(pos token.Pos, owner *types.Named, format string, args ...interface{}) {
	if dc.flagged[pos] {
		return
	}
	dc.flagged[pos] = true
	msg := format + " from the event domain of " + shortTypeName(owner) + "; event callbacks may only mutate their own component's state"
	dc.pass.Reportf(pos, msg, args...)
}

func shortTypeName(named *types.Named) string {
	s := named.Obj().Pkg().Name() + "." + named.Obj().Name()
	return strings.TrimPrefix(s, "main.")
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isPkgLevel reports whether v is a package-scope variable.
func isPkgLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// methodNode returns the node of the named method of *T, or nil.
func (dc *domainCtx) methodNode(named *types.Named, name string) *callgraph.Node {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return dc.g.NodeOf(fn.Origin())
}
