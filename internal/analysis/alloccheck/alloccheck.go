// Package alloccheck turns the simulator's zero-allocation hot path from
// a benchmark observation into a static proof. A function annotated
//
//	//asap:hot
//
// in its doc comment is a hot-path root: it and everything transitively
// reachable from it through the module call graph must be provably free
// of heap allocation. Inside that hot set the analyzer flags every
// construct that allocates or that defeats the proof:
//
//   - make, new, append (growth), print/println
//   - &T{...}, slice and map composite literals
//   - map assignments (insertion may allocate)
//   - string concatenation and allocating conversions
//     (string<->[]byte/[]rune, conversion to string)
//   - closure creation and bound method values
//   - interface conversions that box a non-pointer-shaped value
//   - go statements
//   - calls into functions outside the module (nothing can be proven
//     about their bodies), and dynamic calls through function values
//
// Escape hatch and propagation control: an //asaplint:ignore alloccheck
// directive suppresses a finding as usual, and when it sits on a call
// site (or a closure literal) it also *cuts the call edge* — the callee
// is no longer part of the proof obligation through that path. This is
// how deliberately cold branches inside hot functions (stall paths,
// once-per-run drains, debug hooks) are carved out: the directive's
// reason documents why the branch is cold, and the subtree behind it is
// excluded until someone removes the directive.
//
// Two built-in exemptions keep the proof aligned with the measured
// contract (0 allocs/op with tracing off):
//
//   - panic arguments are skipped — the program is dying;
//   - calls on an obs-style Tracer interface (a named interface
//     "Tracer" with an Instant method) are skipped, because obscheck
//     separately enforces that every tracer call is nil-guarded, and
//     with tracing off the guarded branch never runs.
package alloccheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asap/internal/analysis"
	"asap/internal/analysis/callgraph"
)

// New returns the alloccheck module analyzer.
func New() analysis.ModuleAnalyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "alloccheck" }

func (checker) Doc() string {
	return "functions annotated //asap:hot must be transitively allocation-free; ignore directives on call sites cut deliberately cold branches out of the proof"
}

// allowedExternal lists packages outside the module whose functions are
// known not to allocate (pure arithmetic).
var allowedExternal = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// hotness records how a node entered the hot set.
type hotness struct {
	root *callgraph.Node
	via  *callgraph.Node // caller that pulled this node in (nil for roots)
}

func (c checker) RunModule(pass *analysis.ModulePass) {
	g := callgraph.Build(pass.Pkgs)
	hot := propagate(pass, g)
	// Report in deterministic graph order; SortDiagnostics orders the
	// final output by position anyway.
	for _, n := range g.Nodes {
		if h, ok := hot[n]; ok && n.Body != nil {
			checkBody(pass, g, n, chainDesc(hot, n, h))
		}
	}
}

// propagate computes the hot set: breadth-first closure over call edges
// from every //asap:hot root, stopping at ignored call sites and at
// tracer calls.
func propagate(pass *analysis.ModulePass, g *callgraph.Graph) map[*callgraph.Node]hotness {
	hot := make(map[*callgraph.Node]hotness)
	var queue []*callgraph.Node
	for _, root := range g.HotRoots() {
		hot[root] = hotness{root: root}
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, call := range n.Calls {
			if call.Kind != callgraph.Static && call.Kind != callgraph.Interface {
				continue
			}
			if isTracerCall(call.Fn) {
				continue
			}
			if pass.Ignored(callPos(call)) {
				continue // directive cuts the edge: the callee is declared cold
			}
			for _, callee := range call.Callees {
				if _, seen := hot[callee]; !seen {
					hot[callee] = hotness{root: hot[n].root, via: n}
					queue = append(queue, callee)
				}
			}
		}
	}
	return hot
}

// callPos returns the position that an ignore directive must cover to
// cut this edge: the call expression, or the literal itself for the
// synthetic closure-creation edge.
func callPos(call callgraph.Call) token.Pos {
	if call.Site != nil {
		return call.Site.Pos()
	}
	return call.Callees[0].Pos()
}

// chainDesc renders how a node became hot: its root and (abbreviated)
// call path, so a finding deep in a callee explains which annotation
// put it on the hook.
func chainDesc(hot map[*callgraph.Node]hotness, n *callgraph.Node, h hotness) string {
	if h.via == nil {
		return "declared //asap:hot"
	}
	// Walk up to the root collecting the path (bounded: BFS parents form
	// a tree, but cap the walk defensively).
	var path []string
	for cur := h; cur.via != nil && len(path) < 32; cur = hot[cur.via] {
		path = append(path, shortName(cur.via.Name()))
	}
	// path is callee→root order; show root first, then the last hops.
	root := shortName(h.root.Name())
	if len(path) <= 1 {
		return fmt.Sprintf("reachable from //asap:hot %s", root)
	}
	last := path[0] // immediate caller
	if len(path) == 2 {
		return fmt.Sprintf("reachable from //asap:hot %s via %s", root, last)
	}
	return fmt.Sprintf("reachable from //asap:hot %s via … → %s", root, last)
}

// shortName strips the module path noise from a FullName:
// "(*asap/internal/sim.Engine).dispatch" → "(*sim.Engine).dispatch".
func shortName(name string) string {
	name = strings.ReplaceAll(name, "asap/internal/", "")
	return strings.ReplaceAll(name, "asap/", "")
}

// isTracerCall reports whether fn is a method of a Tracer-shaped
// interface (named "Tracer", has an Instant method). Tracer hooks are
// nil-guarded by contract (enforced by obscheck), so with tracing off —
// the mode the zero-alloc proof covers — the call never runs.
func isTracerCall(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Name() != "Tracer" || !types.IsInterface(named) {
		return false
	}
	iface := named.Underlying().(*types.Interface)
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Instant" {
			return true
		}
	}
	return false
}

// walker carries per-node state for the allocation-site walk.
type walker struct {
	pass  *analysis.ModulePass
	node  *callgraph.Node
	info  *types.Info
	where string
	// calls maps each call site to its classification.
	calls map[*ast.CallExpr]callgraph.Call
	// callFuns marks selector expressions in call-function position, so
	// the method-value check does not fire on ordinary method calls.
	callFuns map[ast.Expr]bool
}

func checkBody(pass *analysis.ModulePass, g *callgraph.Graph, n *callgraph.Node, where string) {
	w := &walker{
		pass:     pass,
		node:     n,
		info:     n.Pkg.Info,
		where:    where,
		calls:    make(map[*ast.CallExpr]callgraph.Call),
		callFuns: make(map[ast.Expr]bool),
	}
	for _, call := range n.Calls {
		if call.Site != nil {
			w.calls[call.Site] = call
		}
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			fun := ast.Unparen(call.Fun)
			switch idx := fun.(type) {
			case *ast.IndexExpr:
				fun = ast.Unparen(idx.X)
			case *ast.IndexListExpr:
				fun = ast.Unparen(idx.X)
			}
			w.callFuns[fun] = true
		}
		return true
	})
	for _, stmt := range n.Body.List {
		w.visitStmt(stmt)
	}
}

func (w *walker) reportf(pos token.Pos, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	w.pass.Reportf(pos, "%s in %s, which must stay allocation-free (%s)", msg, shortName(w.node.Name()), w.where)
}

// visitStmt dispatches statements, handling the statement forms that
// carry allocation semantics of their own before descending into the
// contained expressions.
func (w *walker) visitStmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			w.checkAssignTarget(lhs, st.Tok)
			w.visitExpr(lhs)
		}
		// Boxing: assignment of concrete values into interface targets.
		if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
			if len(st.Lhs) == len(st.Rhs) {
				for i, rhs := range st.Rhs {
					w.checkBoxing(w.info.TypeOf(st.Lhs[i]), rhs)
				}
			}
		}
		if st.Tok == token.ADD_ASSIGN && isString(w.info.TypeOf(st.Lhs[0])) {
			w.reportf(st.TokPos, "string concatenation allocates")
		}
		for _, rhs := range st.Rhs {
			w.visitExpr(rhs)
		}
	case *ast.IncDecStmt:
		w.checkAssignTarget(st.X, st.Tok)
		w.visitExpr(st.X)
	case *ast.GoStmt:
		w.reportf(st.Pos(), "go statement allocates a goroutine (and breaks single-threaded determinism)")
		w.visitExpr(st.Call)
	case *ast.DeferStmt:
		w.visitExpr(st.Call)
	case *ast.ReturnStmt:
		results := w.resultTypes()
		for i, r := range st.Results {
			if i < len(results) {
				w.checkBoxing(results[i], r)
			}
			w.visitExpr(r)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if i < len(vs.Names) {
						w.checkBoxing(w.info.TypeOf(vs.Names[i]), v)
					}
					w.visitExpr(v)
				}
			}
		}
	case *ast.ExprStmt:
		w.visitExpr(st.X)
	case *ast.SendStmt:
		w.visitExpr(st.Chan)
		w.visitExpr(st.Value)
	case *ast.IfStmt:
		w.visitStmt(st.Init)
		w.visitExpr(st.Cond)
		w.visitStmt(st.Body)
		w.visitStmt(st.Else)
	case *ast.ForStmt:
		w.visitStmt(st.Init)
		w.visitExpr(st.Cond)
		w.visitStmt(st.Post)
		w.visitStmt(st.Body)
	case *ast.RangeStmt:
		w.visitExpr(st.X)
		w.visitStmt(st.Body)
	case *ast.SwitchStmt:
		w.visitStmt(st.Init)
		w.visitExpr(st.Tag)
		w.visitStmt(st.Body)
	case *ast.TypeSwitchStmt:
		w.visitStmt(st.Init)
		w.visitStmt(st.Assign)
		w.visitStmt(st.Body)
	case *ast.SelectStmt:
		w.visitStmt(st.Body)
	case *ast.BlockStmt:
		for _, s := range st.List {
			w.visitStmt(s)
		}
	case *ast.CaseClause:
		for _, e := range st.List {
			w.visitExpr(e)
		}
		for _, s := range st.Body {
			w.visitStmt(s)
		}
	case *ast.CommClause:
		w.visitStmt(st.Comm)
		for _, s := range st.Body {
			w.visitStmt(s)
		}
	case *ast.LabeledStmt:
		w.visitStmt(st.Stmt)
	default:
		// BranchStmt, EmptyStmt: nothing to check.
	}
}

// resultTypes returns the node's declared result types (for boxing
// checks on return statements).
func (w *walker) resultTypes() []types.Type {
	var sig *types.Signature
	if w.node.Func != nil {
		sig = w.node.Func.Type().(*types.Signature)
	} else if t := w.info.TypeOf(w.node.Lit); t != nil {
		sig, _ = t.(*types.Signature)
	}
	if sig == nil {
		return nil
	}
	out := make([]types.Type, sig.Results().Len())
	for i := range out {
		out[i] = sig.Results().At(i).Type()
	}
	return out
}

// checkAssignTarget flags writes whose target forces allocation: a map
// assignment may grow the map.
func (w *walker) checkAssignTarget(lhs ast.Expr, tok token.Token) {
	if tok == token.DEFINE {
		return
	}
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	if _, isMap := coreType(w.info.TypeOf(idx.X)).(*types.Map); isMap {
		w.reportf(lhs.Pos(), "map assignment may allocate")
	}
}

// visitExpr walks one expression, flagging allocation sites. Function
// literals are flagged but not descended into: their bodies are separate
// call-graph nodes, analyzed when the hot set reaches them.
func (w *walker) visitExpr(e ast.Expr) {
	switch ex := e.(type) {
	case nil:
	case *ast.FuncLit:
		w.reportf(ex.Pos(), "closure creation allocates")
	case *ast.UnaryExpr:
		if ex.Op == token.AND {
			if lit, ok := ast.Unparen(ex.X).(*ast.CompositeLit); ok {
				w.reportf(ex.Pos(), "&composite literal allocates")
				for _, el := range lit.Elts {
					w.visitExpr(el)
				}
				return
			}
		}
		w.visitExpr(ex.X)
	case *ast.CompositeLit:
		switch coreType(w.info.TypeOf(ex)).(type) {
		case *types.Slice:
			w.reportf(ex.Pos(), "slice literal allocates")
		case *types.Map:
			w.reportf(ex.Pos(), "map literal allocates")
		}
		for _, el := range ex.Elts {
			w.visitExpr(el)
		}
	case *ast.BinaryExpr:
		if ex.Op == token.ADD && isString(w.info.TypeOf(ex)) && w.info.Types[ex].Value == nil {
			w.reportf(ex.OpPos, "string concatenation allocates")
		}
		w.visitExpr(ex.X)
		w.visitExpr(ex.Y)
	case *ast.CallExpr:
		w.visitCall(ex)
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[ex]; ok && sel.Kind() == types.MethodVal && !w.callFuns[ex] {
			w.reportf(ex.Pos(), "bound method value allocates a closure")
		}
		w.visitExpr(ex.X)
	case *ast.ParenExpr:
		w.visitExpr(ex.X)
	case *ast.StarExpr:
		w.visitExpr(ex.X)
	case *ast.IndexExpr:
		w.visitExpr(ex.X)
		w.visitExpr(ex.Index)
	case *ast.IndexListExpr:
		w.visitExpr(ex.X)
		for _, i := range ex.Indices {
			w.visitExpr(i)
		}
	case *ast.SliceExpr:
		w.visitExpr(ex.X)
		w.visitExpr(ex.Low)
		w.visitExpr(ex.High)
		w.visitExpr(ex.Max)
	case *ast.TypeAssertExpr:
		w.visitExpr(ex.X)
	case *ast.KeyValueExpr:
		w.visitExpr(ex.Key)
		w.visitExpr(ex.Value)
	default:
		// Identifiers, literals, types: nothing to check.
	}
}

// visitCall handles builtins, conversions and ordinary calls.
func (w *walker) visitCall(call *ast.CallExpr) {
	tv, ok := w.info.Types[call.Fun]
	switch {
	case ok && tv.IsBuiltin():
		name := builtinName(call.Fun)
		switch name {
		case "append":
			w.reportf(call.Pos(), "append may grow its backing array")
		case "make":
			w.reportf(call.Pos(), "make allocates")
		case "new":
			w.reportf(call.Pos(), "new allocates")
		case "print", "println":
			w.reportf(call.Pos(), "%s allocates (and is debug output)", name)
		case "panic":
			// A panic is the death of the run; its argument (often a
			// formatted message) is exempt from the proof.
			return
		}
		for _, arg := range call.Args {
			w.visitExpr(arg)
		}
		return
	case ok && tv.IsType():
		w.checkConversion(call, tv.Type)
		for _, arg := range call.Args {
			w.visitExpr(arg)
		}
		return
	}
	// Ordinary call: classification from the call graph.
	if info, ok := w.calls[call]; ok {
		switch info.Kind {
		case callgraph.Dynamic:
			w.reportf(call.Pos(), "dynamic call through a function value cannot be proven allocation-free")
		case callgraph.External:
			if !isTracerCall(info.Fn) && !externalAllowed(info.Fn) {
				w.reportf(call.Pos(), "call to %s outside the module cannot be proven allocation-free", shortName(info.Fn.FullName()))
			}
		}
	}
	// Boxing of arguments into interface parameters.
	w.checkArgBoxing(call)
	w.visitExpr(call.Fun)
	for _, arg := range call.Args {
		w.visitExpr(arg)
	}
}

// checkConversion flags conversions that copy memory: string<->byte/rune
// slices and any conversion producing a string.
func (w *walker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := w.info.TypeOf(call.Args[0])
	toCore, fromCore := coreType(to), coreType(from)
	switch {
	case isString(to) && !isString(from) && w.info.Types[call].Value == nil:
		w.reportf(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(toCore) && isString(from):
		w.reportf(call.Pos(), "string to slice conversion allocates")
	case types.IsInterface(to) && !types.IsInterface(from) && !pointerShaped(fromCore):
		w.reportf(call.Pos(), "interface conversion boxes a %s value", from)
	}
}

// checkArgBoxing flags non-pointer-shaped concrete values passed to
// interface parameters (each such pass heap-boxes the value).
func (w *walker) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := coreType(w.info.TypeOf(call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // arg... passes the slice itself
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		w.checkBoxing(pt, arg)
	}
}

// checkBoxing flags storing a non-pointer-shaped concrete value into an
// interface-typed destination.
func (w *walker) checkBoxing(to types.Type, e ast.Expr) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	from := w.info.TypeOf(e)
	if from == nil || types.IsInterface(from) {
		return
	}
	if b, ok := from.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(coreType(from)) {
		return
	}
	w.reportf(e.Pos(), "interface conversion boxes a %s value", from)
}

func builtinName(fun ast.Expr) string {
	if id, ok := ast.Unparen(fun).(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func externalAllowed(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	pkg := fn.Pkg()
	return pkg != nil && allowedExternal[pkg.Path()]
}

// coreType unwraps aliases and named types to the underlying type, nil
// safe.
func coreType(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(t types.Type) bool {
	b, ok := coreType(t).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether values of the type fit an interface's
// data word without boxing: pointers, channels, maps, funcs, unsafe
// pointers.
func pointerShaped(t types.Type) bool {
	switch b := t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return b.Kind() == types.UnsafePointer
	}
	return false
}
