package alloccheck_test

import (
	"testing"

	"asap/internal/analysis/alloccheck"
	"asap/internal/analysis/analysistest"
)

func TestHotPathFindings(t *testing.T) {
	analysistest.RunModule(t, alloccheck.New(), "asap/fixture", "testdata/hot")
}
