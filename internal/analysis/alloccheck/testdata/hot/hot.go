// Package fixture exercises alloccheck: allocation sites inside the
// //asap:hot transitive closure are flagged; identical code outside it
// is not; ignore directives suppress findings and cut propagation.
package fixture

type event struct {
	when uint64
	kind int
}

type sink interface{ consume(e *event) }

type ring struct {
	buf  []event
	vals map[string]int
	s    sink
	name string
	hook func()
}

// Tracer mirrors the obs tracing interface: nil-guarded by contract, so
// calls on it are exempt from the proof.
type Tracer interface {
	Instant(name string)
}

type collector struct{ n int }

func (c *collector) consume(e *event) {
	c.n++
	c.grow()
}

// grow is hot only transitively, via the interface dispatch in push.
func (c *collector) grow() {
	big := make([]int, 16) // want `make allocates .*reachable from //asap:hot`
	_ = big
}

//asap:hot per-operation scheduling path
func (r *ring) push(e event, trc Tracer) {
	r.buf = append(r.buf, e)     // want `append may grow its backing array`
	r.vals["depth"] = len(r.buf) // want `map assignment may allocate`
	p := &event{when: e.when}    // want `&composite literal allocates`
	extra := []int{1, 2}         // want `slice literal allocates`
	r.name = r.name + "x"        // want `string concatenation allocates`
	r.hook = func() { r.bump() } // want `closure creation allocates`
	r.hook()                     // want `dynamic call`
	f := r.bump                  // want `bound method value allocates`
	_ = f
	r.s.consume(p) // interface dispatch: pulls (*collector).consume into the hot set
	r.helper(extra)
	if trc != nil {
		trc.Instant("push") // tracer calls are exempt
	}
	r.cold() //asaplint:ignore alloccheck end-of-run statistics, never on the per-op path
}

// helper is hot via the static call in push.
func (r *ring) helper(v []int) {
	_ = new(event)     // want `new allocates`
	r.s = &collector{} // want `&composite literal allocates`
	r.describe(len(v))
}

// describe shows boxing and conversion findings.
func (r *ring) describe(n int) {
	var s sink
	var v valueSink
	s = v // want `interface conversion boxes`
	_ = s
	b := []byte(r.name) // want `string to slice conversion allocates`
	_ = string(n)       // want `conversion to string allocates`
	_ = b
}

// cold sits behind an ignored call site in push: the directive cuts the
// edge, so none of these allocations are findings.
func (r *ring) cold() {
	all := make([]event, 0, len(r.buf))
	all = append(all, r.buf...)
	r.vals["total"] = len(all)
}

// sweep is not reachable from any //asap:hot root; identical allocation
// sites are not findings.
func (r *ring) sweep() {
	r.buf = append(r.buf, event{})
	r.vals["sweeps"]++
	_ = make([]int, 8)
	_ = func() {}
}

func (r *ring) bump() { r.buf[0].kind++ }

// valueSink implements sink with a value receiver, so storing it in a
// sink variable boxes the struct.
type valueSink struct{ seen int }

func (valueSink) consume(e *event) {}

//asap:hot ignored sites stay suppressed even on the hot path
func (r *ring) pop() event {
	e := r.buf[0]
	r.vals["pops"]++ //asaplint:ignore alloccheck steady-state: key pre-inserted at init
	return e
}
