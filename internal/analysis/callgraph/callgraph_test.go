package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"asap/internal/analysis"
)

const src = `package fixture

type Runner interface{ Run(n int) }

type A struct{ calls int }

func (a *A) Run(n int) { a.calls += n }

type B struct{}

func (B) Run(n int) {}

type Quiet interface{ Hush() }

//asap:hot dispatch loop
func hot(r Runner, q Quiet, fn func()) {
	r.Run(1)     // interface: A and B implement Runner
	q.Hush()     // external: no module implementation
	fn()         // dynamic
	helper()     // static
	f := func() { helper() }
	f()          // dynamic (through a variable)
	func() { helper() }() // immediately invoked
}

func helper() { _ = len("x") }
`

func load(t *testing.T) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := (&types.Config{}).Check("asap/fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &analysis.Package{Path: "asap/fixture", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
	return Build([]*analysis.Package{pkg})
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if strings.HasSuffix(n.Name(), name) {
			return n
		}
	}
	t.Fatalf("no node named %s; have %v", name, names(g.Nodes))
	return nil
}

func names(nodes []*Node) []string {
	var out []string
	for _, n := range nodes {
		out = append(out, n.Name())
	}
	return out
}

func TestGraphShape(t *testing.T) {
	g := load(t)
	hot := nodeByName(t, g, ".hot")

	kinds := make(map[CallKind]int)
	for _, c := range hot.Calls {
		kinds[c.Kind]++
	}
	// Two closure-creation edges plus one static helper() call.
	if kinds[Static] != 3 {
		t.Errorf("static calls = %d, want 3 (helper + 2 closure creations): %+v", kinds[Static], kinds)
	}
	if kinds[Interface] != 1 {
		t.Errorf("interface calls = %d, want 1", kinds[Interface])
	}
	if kinds[External] != 1 {
		t.Errorf("external calls = %d, want 1 (Quiet has no module impl)", kinds[External])
	}
	// fn() and f() are dynamic.
	if kinds[Dynamic] != 2 {
		t.Errorf("dynamic calls = %d, want 2", kinds[Dynamic])
	}
}

func TestInterfaceDispatchResolvesAllImplementations(t *testing.T) {
	g := load(t)
	hot := nodeByName(t, g, ".hot")
	for _, c := range hot.Calls {
		if c.Kind != Interface {
			continue
		}
		if len(c.Callees) != 2 {
			t.Fatalf("Runner.Run resolved to %v, want A.Run and B.Run", names(c.Callees))
		}
		return
	}
	t.Fatal("no interface call recorded")
}

func TestClosuresAttachToEncloser(t *testing.T) {
	g := load(t)
	hot := nodeByName(t, g, ".hot")
	var closures []*Node
	for _, n := range g.Nodes {
		if n.Lit != nil {
			if n.Parent != hot {
				t.Errorf("closure %s has parent %v, want hot", n.Name(), n.Parent)
			}
			closures = append(closures, n)
		}
	}
	if len(closures) != 2 {
		t.Fatalf("closure nodes = %v, want 2", names(closures))
	}
	// The first closure's body contains a static call to helper.
	found := false
	for _, c := range closures[0].Calls {
		if c.Kind == Static && c.Fn != nil && c.Fn.Name() == "helper" {
			found = true
		}
	}
	if !found {
		t.Error("closure body's static call to helper not recorded")
	}
}

func TestHotRoots(t *testing.T) {
	g := load(t)
	roots := g.HotRoots()
	if len(roots) != 1 || !strings.HasSuffix(roots[0].Name(), ".hot") {
		t.Fatalf("HotRoots = %v, want [hot]", names(roots))
	}
}
