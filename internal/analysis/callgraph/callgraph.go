// Package callgraph builds a module-wide call graph over the packages
// the asaplint loader produces, using nothing but go/ast and go/types.
// It is the shared substrate of the whole-program analyzers: alloccheck
// walks it to prove //asap:hot functions transitively allocation-free,
// and domaincheck walks it to scope event callbacks to their owning
// component.
//
// The graph is a conservative over-approximation:
//
//   - Static calls (package functions, concrete methods) resolve to
//     exactly one callee.
//   - Interface method calls resolve to the matching method of every
//     named type in the module that implements the interface — class
//     hierarchy analysis, with no attempt to narrow by data flow. A
//     call through an interface with no module implementation resolves
//     to nothing and is classified External (the callee's body is
//     outside the module, so nothing can be proven about it).
//   - Function literals get their own node, attached to the enclosing
//     function; creating a closure adds an edge from the encloser, on
//     the grounds that a closure is usually created to be called.
//   - Calls through function-typed values (fields, variables,
//     parameters) are Dynamic: the target set is unknown, so the graph
//     records the site and resolves no callee. Analyzers that need
//     soundness treat Dynamic sites as "anything could happen".
//
// Nodes, edges and call lists are all in deterministic order (packages
// sorted by import path, files by name, declarations by position), so
// analyzer output is reproducible run to run.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"asap/internal/analysis"
)

// CallKind classifies one call site.
type CallKind int

const (
	// Static: a direct call of a module function or concrete method.
	Static CallKind = iota
	// Interface: a call through an interface method, resolved to the
	// implementing methods found in the module.
	Interface
	// External: a call whose target is outside the module (stdlib
	// function, or an interface with no module implementation).
	External
	// Dynamic: a call through a function value; the target is unknown.
	Dynamic
)

func (k CallKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case External:
		return "external"
	case Dynamic:
		return "dynamic"
	}
	return "callkind?"
}

// Call is one call site inside a node's body.
type Call struct {
	Site *ast.CallExpr
	Kind CallKind
	// Fn is the called *types.Func when one is known: the static target,
	// the abstract interface method, or the external function. Nil for
	// Dynamic sites.
	Fn *types.Func
	// Callees are the module-internal nodes the call may reach (one for
	// Static, zero or more for Interface, none otherwise).
	Callees []*Node
}

// Node is one function body in the module: a declared function or
// method, or a function literal.
type Node struct {
	// Func is the types object for declared functions and methods; nil
	// for function literals.
	Func *types.Func
	// Decl is the declaration (nil for literals); Lit the literal (nil
	// for declarations). Body is the shared body pointer of whichever is
	// set, and may be nil for body-less declarations (assembly stubs).
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	// Pkg is the package the body lives in.
	Pkg *analysis.Package
	// Parent is the enclosing function node for literals, nil otherwise.
	Parent *Node
	// Calls lists every call site in the body, in source order.
	Calls []Call
	// name caches the display name.
	name string
}

// Name returns a human-readable identifier: the FullName of declared
// functions ("(*asap/internal/sim.Engine).dispatch"), and the enclosing
// function's name plus a literal counter for closures.
func (n *Node) Name() string { return n.name }

// Pos returns the position of the function's declaration or literal.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Graph is the module call graph.
type Graph struct {
	// Nodes lists every function body in deterministic order.
	Nodes []*Node
	// byFunc maps declared functions and methods to their nodes.
	byFunc map[*types.Func]*Node
	// byLit maps function literals to their nodes.
	byLit map[*ast.FuncLit]*Node
	// namedTypes lists every named (non-alias, non-interface) type
	// declared in the module, in deterministic order — the candidate set
	// for interface dispatch resolution.
	namedTypes []*types.Named
	// implCache memoizes interface-method resolution keyed by the
	// abstract method.
	implCache map[*types.Func][]*Node
}

// NodeOf returns the node of a declared function or method, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// NamedTypes returns every named (non-alias, non-interface) type declared
// in the module, in deterministic order.
func (g *Graph) NamedTypes() []*types.Named { return g.namedTypes }

// Build constructs the call graph of the given packages (normally every
// package of the module; fixtures pass a single package).
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		byFunc:    make(map[*types.Func]*Node),
		byLit:     make(map[*ast.FuncLit]*Node),
		implCache: make(map[*types.Func][]*Node),
	}
	// Pass 1: index declared functions and named types, so pass 2 can
	// resolve forward and cross-package references.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, ok := pkg.Info.Defs[d.Name].(*types.Func)
					if !ok {
						continue
					}
					n := &Node{Func: fn, Decl: d, Body: d.Body, Pkg: pkg, name: fn.FullName()}
					g.Nodes = append(g.Nodes, n)
					g.byFunc[fn] = n
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok || ts.Assign.IsValid() {
							continue // skip aliases
						}
						tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
						if !ok {
							continue
						}
						if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
							g.namedTypes = append(g.namedTypes, named)
						}
					}
				}
			}
		}
	}
	// Pass 2: walk bodies, collecting call sites and closure nodes.
	decls := g.Nodes // literals appended during the walk; iterate a copy
	for _, n := range decls {
		if n.Body != nil {
			g.walkBody(n)
		}
	}
	return g
}

// walkBody collects n's call sites and creates child nodes for the
// function literals it encloses (recursively, in source order).
func (g *Graph) walkBody(n *Node) {
	lits := 0
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			lits++
			child := &Node{
				Lit: e, Body: e.Body, Pkg: n.Pkg, Parent: n,
				name: fmt.Sprintf("%s·func%d", n.name, lits),
			}
			g.Nodes = append(g.Nodes, child)
			g.byLit[e] = child
			// Creating a closure is treated as a potential call of it.
			n.Calls = append(n.Calls, Call{Site: nil, Kind: Static, Callees: []*Node{child}})
			g.walkBody(child)
			return false // the child walk owns the literal's body
		case *ast.CallExpr:
			g.addCall(n, e)
		}
		return true
	}
	ast.Inspect(n.Body, walk)
}

// addCall classifies one call site and appends it to n.Calls. Type
// conversions and builtins are not calls in the graph sense and are
// skipped (analyzers inspect them directly from the AST).
func (g *Graph) addCall(n *Node, call *ast.CallExpr) {
	info := n.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiations f[T](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			g.addResolved(n, call, obj)
		default:
			// A variable, parameter, or field of function type.
			n.Calls = append(n.Calls, Call{Site: call, Kind: Dynamic})
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[f]
		if !ok {
			// Qualified identifier: pkg.Func.
			if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
				g.addResolved(n, call, obj)
			} else {
				n.Calls = append(n.Calls, Call{Site: call, Kind: Dynamic})
			}
			return
		}
		switch sel.Kind() {
		case types.MethodVal, types.MethodExpr:
			m := sel.Obj().(*types.Func)
			if types.IsInterface(sel.Recv()) {
				g.addInterfaceCall(n, call, m, sel.Recv().Underlying().(*types.Interface))
			} else {
				g.addResolved(n, call, m)
			}
		default: // FieldVal: a func-typed struct field
			n.Calls = append(n.Calls, Call{Site: call, Kind: Dynamic})
		}
	case *ast.FuncLit:
		// Immediately-invoked literal. The inspection visits the literal
		// right after this call node and adds the creation edge then, so
		// the site needs no second record.
	default:
		n.Calls = append(n.Calls, Call{Site: call, Kind: Dynamic})
	}
}

// addResolved records a static call to fn, which may live outside the
// module. Generic instantiations are folded onto their origin.
func (g *Graph) addResolved(n *Node, call *ast.CallExpr, fn *types.Func) {
	fn = fn.Origin()
	if callee, ok := g.byFunc[fn]; ok {
		n.Calls = append(n.Calls, Call{Site: call, Kind: Static, Fn: fn, Callees: []*Node{callee}})
		return
	}
	n.Calls = append(n.Calls, Call{Site: call, Kind: External, Fn: fn})
}

// addInterfaceCall resolves a call through interface method m to every
// module implementation.
func (g *Graph) addInterfaceCall(n *Node, call *ast.CallExpr, m *types.Func, iface *types.Interface) {
	impls := g.implementations(m, iface)
	if len(impls) == 0 {
		n.Calls = append(n.Calls, Call{Site: call, Kind: External, Fn: m})
		return
	}
	n.Calls = append(n.Calls, Call{Site: call, Kind: Interface, Fn: m, Callees: impls})
}

// implementations returns the nodes of every module method that can be
// the target of a call through abstract method m of iface, memoized.
func (g *Graph) implementations(m *types.Func, iface *types.Interface) []*Node {
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	var impls []*Node
	seen := make(map[*Node]bool)
	for _, named := range g.namedTypes {
		// A pointer receiver's method set includes the value receiver's,
		// so checking *T covers both; types stored by value in interfaces
		// additionally need T itself to implement.
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := g.byFunc[fn.Origin()]; node != nil && !seen[node] {
			impls = append(impls, node)
			seen[node] = true
		}
	}
	g.implCache[m] = impls
	return impls
}

// HotDirective is the annotation marking a function as a hot-path root:
// every function transitively reachable from it must be provably
// allocation-free (enforced by alloccheck).
const HotDirective = "//asap:hot"

// HotRoots returns the nodes whose declaration doc comment carries the
// //asap:hot directive, in graph order.
func (g *Graph) HotRoots() []*Node {
	var roots []*Node
	for _, n := range g.Nodes {
		if n.Decl != nil && HasHotDirective(n.Decl) {
			roots = append(roots, n)
		}
	}
	return roots
}

// HasHotDirective reports whether the declaration's doc comment contains
// an //asap:hot line (optionally followed by explanatory text).
func HasHotDirective(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if c.Text == HotDirective || len(c.Text) > len(HotDirective) &&
			c.Text[:len(HotDirective)] == HotDirective &&
			(c.Text[len(HotDirective)] == ' ' || c.Text[len(HotDirective)] == '\t') {
			return true
		}
	}
	return false
}
