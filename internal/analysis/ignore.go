package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//asaplint:ignore <analyzer> <reason>
//
// where <analyzer> is an analyzer name or "all", and <reason> is a
// non-empty justification. A directive suppresses findings of that
// analyzer on its own line and on the line immediately below it (so it
// can sit inline after the flagged code or on its own line above it).
// A directive missing the analyzer or the reason is itself reported as a
// finding, so suppressions can never silently rot.
const ignorePrefix = "asaplint:ignore"

type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

// collectIgnores extracts the ignore directives of a file set. Malformed
// directives are returned as diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "asaplint",
						Message:  "malformed ignore directive: want //asaplint:ignore <analyzer> <reason>",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      c.Pos(),
				})
			}
		}
	}
	return dirs, bad
}

// FilterIgnored drops findings suppressed by //asaplint:ignore directives
// in files and appends a diagnostic for each malformed directive. The
// returned slice is sorted.
func FilterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs, bad := collectIgnores(fset, files)
	suppressed := func(d Diagnostic) bool {
		for _, dir := range dirs {
			if dir.file != d.Pos.Filename {
				continue
			}
			if dir.analyzer != d.Analyzer && dir.analyzer != "all" {
				continue
			}
			if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
				return true
			}
		}
		return false
	}
	var kept []Diagnostic
	for _, d := range diags {
		if !suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	SortDiagnostics(kept)
	return kept
}
