package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//asaplint:ignore <analyzer>[,<analyzer>...] <reason>
//
// where each <analyzer> is an analyzer name or "all", and <reason> is a
// non-empty justification. A directive suppresses findings of the named
// analyzers on its own line and on the line immediately below it (so it
// can sit inline after the flagged code or on its own line above it).
// The comma form lets one line silence two analyzers that trip on the
// same construct (a cold-path closure flagged by both schedcheck and
// alloccheck, say) without stacking directives. A directive missing the
// analyzer or the reason is itself reported as a finding, so
// suppressions can never silently rot.
const ignorePrefix = "asaplint:ignore"

type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
	reason    string
	pos       token.Pos
}

func (d ignoreDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// collectIgnores extracts the ignore directives of a file set. Malformed
// directives are returned as diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "asaplint",
						Message:  "malformed ignore directive: want //asaplint:ignore <analyzer> <reason>",
					})
					continue
				}
				dirs = append(dirs, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
					pos:       c.Pos(),
				})
			}
		}
	}
	return dirs, bad
}

// FilterIgnored drops findings suppressed by //asaplint:ignore directives
// in files and appends a diagnostic for each malformed directive. The
// returned slice is sorted.
func FilterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	dirs, bad := collectIgnores(fset, files)
	suppressed := func(d Diagnostic) bool {
		for _, dir := range dirs {
			if dir.file != d.Pos.Filename || !dir.covers(d.Analyzer) {
				continue
			}
			if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
				return true
			}
		}
		return false
	}
	var kept []Diagnostic
	for _, d := range diags {
		if !suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	SortDiagnostics(kept)
	return kept
}

// IgnoreMatcher returns a predicate reporting whether a position is
// covered by an //asaplint:ignore directive for the given analyzer in
// files. Module-wide analyzers use it during analysis — not just as a
// post-filter — because a directive can carry semantics beyond
// suppression: alloccheck stops hot-path propagation at an ignored call
// site, so the directive prunes the callee's whole subtree from the
// proof obligation.
func IgnoreMatcher(fset *token.FileSet, files []*ast.File, analyzer string) func(token.Pos) bool {
	dirs, _ := collectIgnores(fset, files)
	var mine []ignoreDirective
	for _, d := range dirs {
		if d.covers(analyzer) {
			mine = append(mine, d)
		}
	}
	return func(pos token.Pos) bool {
		p := fset.Position(pos)
		for _, d := range mine {
			if d.file == p.Filename && (p.Line == d.line || p.Line == d.line+1) {
				return true
			}
		}
		return false
	}
}
