// Package analysis is a small stdlib-only static-analysis framework for
// enforcing simulator invariants the Go compiler cannot see: done-callback
// discipline, determinism (no wall clocks, no unseeded randomness, no
// order-dependent map iteration), cycle/nanosecond unit hygiene, and
// ledger ground-truth coverage. It is intentionally free of
// golang.org/x/tools — analyzers are built directly on go/ast, go/parser
// and go/types, and packages are loaded by a module-aware source importer
// (see load.go), so the linter builds with nothing but the standard
// library.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. The cmd/asaplint driver loads every package in the module,
// runs all registered analyzers, filters findings through
// //asaplint:ignore directives (see ignore.go) and exits non-zero if any
// finding survives.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run inspects the pass's package and
// reports findings via pass.Reportf; it must not retain the pass.
type Analyzer interface {
	// Name is the analyzer's short identifier, used in diagnostics and in
	// //asaplint:ignore directives.
	Name() string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc() string
	// Run analyzes one package.
	Run(pass *Pass)
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass gives an analyzer one type-checked package to inspect.
type Pass struct {
	Analyzer string         // name of the running analyzer
	Path     string         // import path of the package under analysis
	Fset     *token.FileSet // positions for Files
	Files    []*ast.File    // parsed source, with comments
	Pkg      *types.Package // type-checked package
	Info     *types.Info    // Types, Defs, Uses, Selections for Files
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf resolves an identifier through Defs and Uses.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// TypeOf returns the type of an expression, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ModuleAnalyzer is a static check that needs the whole module at once —
// the call-graph analyzers (alloccheck, domaincheck) resolve calls across
// package boundaries, so a per-package Pass cannot carry enough context.
// RunModule inspects every loaded package and reports findings positioned
// wherever the offending code lives; the driver buckets them per package
// for ignore filtering.
type ModuleAnalyzer interface {
	// Name is the analyzer's short identifier, used in diagnostics and in
	// //asaplint:ignore directives.
	Name() string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc() string
	// RunModule analyzes the whole module.
	RunModule(pass *ModulePass)
}

// ModulePass gives a module analyzer every type-checked package of the
// module to inspect.
type ModulePass struct {
	Analyzer string         // name of the running analyzer
	Fset     *token.FileSet // positions, shared across all packages
	Pkgs     []*Package     // all loaded packages, sorted by import path
	report   func(Diagnostic)
	ignored  func(token.Pos) bool
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Ignored reports whether pos carries (or sits directly below) an
// //asaplint:ignore directive naming this analyzer. Findings there would
// be filtered anyway; module analyzers also consult it mid-analysis when
// a directive changes what is reachable (see IgnoreMatcher).
func (p *ModulePass) Ignored(pos token.Pos) bool { return p.ignored(pos) }

// RunModule applies one module analyzer to the loaded module and returns
// its raw findings (before ignore-directive filtering), sorted.
func RunModule(a ModuleAnalyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	if len(pkgs) == 0 {
		return diags
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Files...)
	}
	pass := &ModulePass{
		Analyzer: a.Name(),
		Fset:     pkgs[0].Fset,
		Pkgs:     pkgs,
		report:   func(d Diagnostic) { diags = append(diags, d) },
		ignored:  IgnoreMatcher(pkgs[0].Fset, files, a.Name()),
	}
	a.RunModule(pass)
	SortDiagnostics(diags)
	return diags
}

// Run applies one analyzer to one loaded package and returns its raw
// findings (before ignore-directive filtering), sorted by position.
func Run(a Analyzer, pkg *Package) []Diagnostic {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: a.Name(),
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	a.Run(pass)
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
