// Fixture for statcheck under an unconverted package path
// (asap/internal/harness): string-keyed writes stay legal everywhere,
// even in functions whose names match the hot list.
package harness

type Set struct {
	counters map[string]uint64
}

func (s *Set) Inc(name string) {}

type runner struct{ st *Set }

func (r *runner) tryEnqueue() {
	r.st.Inc("entriesInserted") // unconverted package: ok
}

func (r *runner) access() {
	r.st.Inc("pmLinesDropped") // unconverted package: ok
}
