// Fixture for statcheck under a converted package path
// (asap/internal/model): string-keyed counter writes inside hot functions
// are flagged unless annotated; handle writes, distribution observes,
// non-literal keys, and cold functions pass.
package model

type Set struct {
	counters map[string]uint64
}

func (s *Set) Inc(name string)               {}
func (s *Set) Add(name string, d uint64)     {}
func (s *Set) SetMax(name string, v uint64)  {}
func (s *Set) Observe(name string, v uint64) {}

type Counter struct{ s *Set }

func (c Counter) Inc()         {}
func (c Counter) Add(d uint64) {}

type model struct {
	st              *Set
	entriesInserted Counter
}

func (m *model) tryEnqueue() {
	m.st.Inc("entriesInserted")    // want `string-keyed m\.st\.Inc\("entriesInserted"\) in hot function tryEnqueue`
	m.st.Add("cyclesStalled", 5)   // want `string-keyed m\.st\.Add\("cyclesStalled"\) in hot function tryEnqueue`
	m.st.SetMax("highWater", 9)    // want `string-keyed m\.st\.SetMax\("highWater"\) in hot function tryEnqueue`
	m.entriesInserted.Inc()        // handle form: ok
	m.entriesInserted.Add(3)       // handle form: ok
	m.st.Observe("pbOccupancy", 1) // distributions feed the cold sampler: ok
}

func (m *model) flushOne() {
	// The stall closure runs on the hot path too: nesting inside a
	// function literal does not launder the write.
	retry := func() {
		m.st.Inc("pbNacks") // want `string-keyed m\.st\.Inc\("pbNacks"\) in hot function flushOne`
	}
	retry()
}

func (m *model) coldReport() {
	// Not a hot function: reporting code may use string keys freely.
	m.st.Inc("entriesInserted")
	m.st.Add("cyclesStalled", 1)
}

func (m *model) access() {
	//asaplint:ignore statcheck crash-only accounting, one write per experiment
	m.st.Inc("llcEvictionsDelayed")
	name := pick()
	m.st.Inc(name) // non-literal key: cannot be handle-resolved statically, ok
}

func pick() string { return "dynamic" }

type journal struct{}

func (j *journal) Inc(name string) {}

type other struct{ st *journal }

// A non-stats Inc-taking type is someone else's business.
func (o *other) step() {
	o.st.Inc("entriesInserted")
}
