package statcheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/statcheck"
)

// TestStatcheckHot: in a converted package, string-literal Inc/Add/SetMax
// on a stats Set inside a hot function are flagged — including inside
// nested function literals — while handle writes, Observe, non-literal
// keys, cold functions and //asaplint:ignore'd sites pass.
func TestStatcheckHot(t *testing.T) {
	analysistest.Run(t, statcheck.New(), "asap/internal/model", "testdata/hot")
}

// TestStatcheckUnconverted: packages outside machine/model/persist keep
// string-keyed writes even in hot-named functions.
func TestStatcheckUnconverted(t *testing.T) {
	analysistest.Run(t, statcheck.New(), "asap/internal/harness", "testdata/cold")
}
