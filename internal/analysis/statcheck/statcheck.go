// Package statcheck enforces the handle-based stats discipline on the
// simulator's hot paths: per-op code in the converted packages
// (internal/machine, internal/model, internal/persist) must not write
// counters through string keys — St.Inc("name") hashes the key on every
// call — but through stats.Counter handles resolved once at construction
// (st.Counter(key)). String-keyed writes stay legal on cold paths (setup,
// sampling, reporting); a string-keyed write inside one of the known hot
// functions needs an //asaplint:ignore statcheck directive naming why it
// is cold, the same escape hatch schedcheck uses.
//
// The stats Set is matched structurally (a named struct type called Set
// with an Inc method), so fixtures need no non-stdlib imports.
package statcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"asap/internal/analysis"
)

// New returns the statcheck analyzer.
func New() analysis.Analyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "statcheck" }

func (checker) Doc() string {
	return "hot functions in converted packages (machine, model, persist) must use pre-resolved stats.Counter handles, not string-keyed Inc/Add/SetMax"
}

// convertedPkgs are the packages whose per-op stat writes were rewritten
// to Counter handles.
var convertedPkgs = []string{
	"internal/machine",
	"internal/model",
	"internal/persist",
}

// hotFuncs names the functions on the per-access, per-store, per-flush and
// per-conflict paths. A string-keyed counter write inside one of these (or
// any function literal nested in one) is a hot-path regression.
var hotFuncs = map[string]bool{
	// machine: the per-op core loop and the cache access path.
	"access":  true,
	"step":    true,
	"acquire": true,
	// model: store enqueue, fences, flush issue/reply, commit protocol,
	// conflict-driven dependency tracking.
	"tryEnqueue":    true,
	"Store":         true,
	"Ofence":        true,
	"Dfence":        true,
	"Conflict":      true,
	"addDependency": true,
	"flushOne":      true,
	"issueFlushes":  true,
	"onFlushReply":  true,
	"onAck":         true,
	"tryCommit":     true,
	"finishCommit":  true,
	"fence":         true,
	// persist: the controller's job-service path.
	"enqueueFlush":  true,
	"nack":          true,
	"processFlush":  true,
	"processCommit": true,
	"commitNext":    true,
	"readCurrent":   true,
	"readDone":      true,
	"insertWrite":   true,
}

// checkedMethods are the string-keyed counter writes; Observe is exempt
// because distributions only feed the cold periodic sampler.
var checkedMethods = map[string]bool{
	"Inc":    true,
	"Add":    true,
	"SetMax": true,
}

func (c checker) Run(pass *analysis.Pass) {
	converted := false
	for _, p := range convertedPkgs {
		if strings.HasSuffix(pass.Path, p) {
			converted = true
			break
		}
	}
	if !converted {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotFuncs[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					c.checkCall(pass, fd.Name.Name, call)
				}
				return true
			})
		}
	}
}

// checkCall flags X.Inc("literal")-shaped writes where X is a stats Set.
func (c checker) checkCall(pass *analysis.Pass, hot string, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !checkedMethods[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind.String() != "STRING" {
		return
	}
	if !isStatsSet(pass.TypeOf(sel.X)) {
		return
	}
	pass.Reportf(call.Pos(),
		"string-keyed %s.%s(%s) in hot function %s hashes the stat name per call: resolve a stats.Counter handle at construction, or annotate a cold path with //asaplint:ignore statcheck <reason>",
		types.ExprString(sel.X), sel.Sel.Name, lit.Value, hot)
}

// isStatsSet matches any named struct type called Set that has an Inc
// method, directly or behind a pointer — internal/stats.Set in the real
// tree, a local stand-in in fixtures.
func isStatsSet(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Name() != "Set" {
		return false
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return false
	}
	for i := 0; i < n.NumMethods(); i++ {
		if n.Method(i).Name() == "Inc" {
			return true
		}
	}
	return false
}
