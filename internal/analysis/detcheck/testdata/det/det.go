// Package detfixture exercises the detcheck analyzer: no wall clocks,
// no unseeded randomness, no unsorted map iteration.
package detfixture

import (
	"math/rand"
	"sort"
	"time"
)

// Wall-clock reads are forbidden.
func WallClock() int64 {
	t := time.Now() // want `wall-clock call time\.Now breaks determinism`
	return t.Unix()
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock call time\.Since breaks determinism`
}

// Unseeded package-level randomness is forbidden...
func GlobalRand() int {
	return rand.Intn(10) // want `unseeded rand\.Intn draws from the global source`
}

func GlobalFloat() float64 {
	return rand.Float64() // want `unseeded rand\.Float64 draws from the global source`
}

// ...but an explicitly seeded *rand.Rand is the approved path.
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Ranging over a map without sorting is forbidden.
func SumFirst(m map[string]int) int {
	for _, v := range m { // want `map iteration order is nondeterministic`
		return v
	}
	return 0
}

// Collect-then-sort is the blessed idiom.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Collecting without sorting afterwards is still flagged.
func UnsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// Order-independent loops can be suppressed with a justified directive.
func CountAll(m map[string]int) int {
	n := 0
	//asaplint:ignore detcheck pure count, order-independent
	for range m {
		n++
	}
	return n
}

// Slices are not maps: no finding.
func SumSlice(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
