// Package cleanfixture uses wall clocks and global randomness, which is
// acceptable outside the deterministic simulator packages: detcheck must
// stay silent here.
package cleanfixture

import (
	"math/rand"
	"time"
)

func Wall() time.Time { return time.Now() }

func Roll(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n + rand.Intn(6)
}
