// Package detcheck enforces the determinism contract of the simulator
// (internal/sim/engine.go: the single-threaded event loop "keeps the
// model deterministic"). Inside the deterministic packages it forbids:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — simulated
//     time comes from sim.Engine only;
//   - unseeded randomness: package-level math/rand functions draw from
//     the globally seeded source, so two runs diverge. Randomness must
//     flow through an explicitly seeded *rand.Rand (see internal/rng);
//     the rand.New*/rand.NewSource constructors remain allowed;
//   - ranging over a map: iteration order is randomized per run, so any
//     map range that feeds event scheduling or output ordering breaks
//     run-to-run reproducibility. Collect-then-sort loops (a body that
//     only appends keys, followed by a sort call in the same function)
//     are recognized and allowed; genuinely order-independent loops can
//     carry an //asaplint:ignore detcheck <reason> directive.
package detcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"asap/internal/analysis"
)

// scopes are the package-path suffixes the determinism contract covers.
var scopes = []string{
	"internal/sim",
	"internal/model",
	"internal/machine",
	"internal/mem",
	"internal/persist",
	"internal/cache",
	"internal/harness",
}

// New returns the detcheck analyzer.
func New() analysis.Analyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "detcheck" }

func (checker) Doc() string {
	return "forbid wall-clock time, unseeded randomness and unsorted map iteration in deterministic simulator packages"
}

func inScope(path string) bool {
	for _, s := range scopes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func (checker) Run(pass *analysis.Pass) {
	if !inScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		bodies := funcBodies(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, v)
			case *ast.RangeStmt:
				checkRange(pass, v, bodies)
			}
			return true
		})
	}
}

// checkSelector flags wall-clock and unseeded-randomness calls.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(sel.Pos(), "wall-clock call time.%s breaks determinism; simulated time comes from sim.Engine", name)
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(name, "New") {
			pass.Reportf(sel.Pos(), "unseeded rand.%s draws from the global source; use an explicitly seeded *rand.Rand", name)
		}
	}
}

// checkRange flags iteration over maps unless it is the
// collect-keys-then-sort idiom.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, bodies []*ast.BlockStmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := types.Unalias(t).Underlying().(*types.Map); !ok {
		return
	}
	if isCollectThenSort(pass, rs, bodies) {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration order is nondeterministic; sort the keys before ranging")
}

// isCollectThenSort recognizes the blessed idiom: the loop body only
// appends to slices, and a sort/slices call follows the loop inside the
// same enclosing function.
func isCollectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, bodies []*ast.BlockStmt) bool {
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
	}
	body := enclosing(bodies, rs.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Pos() <= rs.End() {
			return true
		}
		if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

// funcBodies lists every function body in the file.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			if v.Body != nil {
				bodies = append(bodies, v.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, v.Body)
		}
		return true
	})
	return bodies
}

// enclosing returns the smallest body containing pos.
func enclosing(bodies []*ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= pos && pos <= b.End() {
			if best == nil || b.End()-b.Pos() < best.End()-best.Pos() {
				best = b
			}
		}
	}
	return best
}
