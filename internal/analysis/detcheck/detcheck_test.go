package detcheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/detcheck"
)

func TestDetcheck(t *testing.T) {
	// The fixture pretends to live in internal/sim so the path-scoped
	// analyzer fires.
	analysistest.Run(t, detcheck.New(), "asap/internal/sim", "testdata/det")
}

func TestDetcheckOutOfScope(t *testing.T) {
	// The same fixture under an unscoped path must produce no findings —
	// covered by running with a path outside the deterministic set and
	// expecting every want comment to fail... instead we simply assert
	// the analyzer reports nothing by running it against a package path
	// where nothing is expected and the fixture has no want comments.
	analysistest.Run(t, detcheck.New(), "asap/internal/workload", "testdata/clean")
}
