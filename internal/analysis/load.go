package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string         // import path
	Dir   string         // absolute directory
	Fset  *token.FileSet // shared across the whole load
	Files []*ast.File    // non-test files, sorted by filename
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks the packages of one module using nothing
// but the standard library. Imports inside the module are resolved from
// source by mapping the import path onto the module directory; standard
// library imports are delegated to go/importer's source importer. The
// loader memoizes packages, so each is checked once per process.
type Loader struct {
	Fset   *token.FileSet
	root   string // absolute module root (directory holding go.mod)
	module string // module path from go.mod
	std    types.Importer
	pkgs   map[string]*Package // by import path
}

// NewLoader builds a loader for the module rooted at dir (the directory
// containing go.mod, or any directory below it).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.module }

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from
// source, everything else (the standard library) goes through the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// load parses and type-checks the package at the given module import
// path, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory in sorted
// order (determinism of diagnostics depends on it).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package's files.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadAll loads every package under the module root, skipping testdata,
// hidden directories, and directories without non-test Go files.
// Packages come back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	paths, err := l.walkPackages()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// walkPackages lists the import paths of every package directory in the
// module, sorted.
func (l *Loader) walkPackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(p)
		if err != nil {
			return err
		}
		if has {
			rel, err := filepath.Rel(l.root, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.module)
			} else {
				paths = append(paths, l.module+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true, nil
		}
	}
	return false, nil
}
