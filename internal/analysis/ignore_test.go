package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFixture parses src as a single file named fixture.go and returns the
// fileset and file, for driving FilterIgnored/IgnoreMatcher directly.
func parseFixture(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return fset, []*ast.File{f}
}

func diagAt(line int, analyzer string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: "fixture.go", Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  "finding",
	}
}

// A directive on the very last line of a file (no line below it) must still
// suppress findings on its own line.
func TestIgnoreDirectiveOnLastLine(t *testing.T) {
	src := "package p\n\nvar x = 1 //asaplint:ignore acheck reason here"
	fset, files := parseFixture(t, src)
	got := FilterIgnored(fset, files, []Diagnostic{diagAt(3, "acheck")})
	if len(got) != 0 {
		t.Fatalf("directive on last line did not suppress: %v", got)
	}
}

// The "all" wildcard suppresses findings from every analyzer.
func TestIgnoreAllWildcard(t *testing.T) {
	src := "package p\n\n//asaplint:ignore all reason here\nvar x = 1\n"
	fset, files := parseFixture(t, src)
	diags := []Diagnostic{diagAt(4, "acheck"), diagAt(4, "bcheck"), diagAt(4, "ccheck")}
	got := FilterIgnored(fset, files, diags)
	if len(got) != 0 {
		t.Fatalf("all wildcard did not suppress every analyzer: %v", got)
	}
}

// One comma-form directive silences two analyzers that trip on the same
// target line, while leaving a third analyzer's finding intact.
func TestIgnoreCommaListTwoAnalyzersOneLine(t *testing.T) {
	src := "package p\n\n//asaplint:ignore acheck,bcheck one line, two analyzers\nvar x = 1\n"
	fset, files := parseFixture(t, src)
	diags := []Diagnostic{diagAt(4, "acheck"), diagAt(4, "bcheck"), diagAt(4, "ccheck")}
	got := FilterIgnored(fset, files, diags)
	if len(got) != 1 || got[0].Analyzer != "ccheck" {
		t.Fatalf("want only the ccheck finding kept, got %v", got)
	}
}

// A directive naming analyzers but no reason is malformed and must be
// reported as exactly one finding — not once per suppressed-or-checked
// analyzer, and not silently dropped.
func TestMalformedDirectiveReportedExactlyOnce(t *testing.T) {
	src := "package p\n\n//asaplint:ignore acheck\nvar x = 1\n"
	fset, files := parseFixture(t, src)
	got := FilterIgnored(fset, files, []Diagnostic{diagAt(4, "acheck"), diagAt(4, "bcheck")})
	var malformed, kept int
	for _, d := range got {
		if d.Analyzer == "asaplint" && strings.Contains(d.Message, "malformed") {
			malformed++
		} else {
			kept++
		}
	}
	if malformed != 1 {
		t.Fatalf("want malformed directive reported exactly once, got %d: %v", malformed, got)
	}
	// A malformed directive suppresses nothing: both findings survive.
	if kept != 2 {
		t.Fatalf("malformed directive must not suppress; want 2 findings kept, got %d: %v", kept, got)
	}
}

// Coverage is the directive's own line plus the line immediately below —
// never two lines down, and never for an analyzer the list does not name.
func TestIgnoreCoverageWindow(t *testing.T) {
	src := "package p\n\n//asaplint:ignore acheck reason here\nvar x = 1\nvar y = 2\n"
	fset, files := parseFixture(t, src)
	diags := []Diagnostic{
		diagAt(3, "acheck"), // directive's own line: suppressed
		diagAt(4, "acheck"), // line below: suppressed
		diagAt(5, "acheck"), // two lines down: kept
		diagAt(4, "bcheck"), // other analyzer: kept
	}
	got := FilterIgnored(fset, files, diags)
	if len(got) != 2 {
		t.Fatalf("want 2 findings kept, got %v", got)
	}
	for _, d := range got {
		if d.Analyzer == "acheck" && d.Pos.Line != 5 {
			t.Fatalf("acheck finding on line %d should have been suppressed", d.Pos.Line)
		}
	}
}

// IgnoreMatcher exposes the same window to module analyzers mid-analysis:
// positions on the directive line and the line below match for a named
// analyzer (or all), others do not.
func TestIgnoreMatcherWindowAndNames(t *testing.T) {
	src := "package p\n\nvar a = 1 //asaplint:ignore acheck,bcheck reason here\nvar b = 2\nvar c = 3\n"
	fset, files := parseFixture(t, src)
	file := fset.File(files[0].Pos())
	posOn := func(line int) token.Pos { return file.LineStart(line) }

	for _, name := range []string{"acheck", "bcheck"} {
		m := IgnoreMatcher(fset, files, name)
		if !m(posOn(3)) || !m(posOn(4)) {
			t.Fatalf("%s: directive line and line below must match", name)
		}
		if m(posOn(5)) {
			t.Fatalf("%s: two lines down must not match", name)
		}
	}
	if m := IgnoreMatcher(fset, files, "ccheck"); m(posOn(3)) || m(posOn(4)) {
		t.Fatal("ccheck is not named by the directive and must not match")
	}
}
