// Package unitcheck guards the Table II timing parameters against unit
// confusion: values measured in nanoseconds (NVM latencies, drain gaps)
// must never mix with values measured in 2 GHz core cycles without an
// explicit conversion (sim.NS or a *PerNS factor). Unit membership is
// inferred from two signals: identifier words ("gapNS", "nanos" → ns;
// "cycles", "cyc" → cycles; names carrying both, like CyclesPerNS, are
// conversion factors and neutral) and declared types (the sim.Cycles
// alias → cycles, time.Duration → ns). Flagged shapes:
//
//   - a + b, a - b, and comparisons where one side is nanoseconds and
//     the other cycles (multiplication and division are exempt — that is
//     how conversions are written);
//   - assignments and composite-literal fields giving a nanosecond value
//     to a cycle-typed destination (or vice versa). Scaling by a bare
//     numeric literal does not convert: 2*gapNS is still nanoseconds —
//     write sim.NS(gapNS) instead.
package unitcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"asap/internal/analysis"
)

// New returns the unitcheck analyzer.
func New() analysis.Analyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "unitcheck" }

func (checker) Doc() string {
	return "flag arithmetic and assignments mixing nanosecond- and cycle-denominated values without an explicit conversion"
}

type unit int

const (
	unitUnknown unit = iota
	unitNS
	unitCycles
	unitConversion // carries both (CyclesPerNS): a conversion factor
)

func (u unit) String() string {
	switch u {
	case unitNS:
		return "nanoseconds"
	case unitCycles:
		return "cycles"
	default:
		return "unknown"
	}
}

func conflict(a, b unit) bool {
	return (a == unitNS && b == unitCycles) || (a == unitCycles && b == unitNS)
}

func (checker) Run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, v)
			case *ast.AssignStmt:
				checkAssign(pass, v)
			case *ast.CompositeLit:
				checkComposite(pass, v)
			}
			return true
		})
	}
}

func checkBinary(pass *analysis.Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return // * and / are how conversions are written
	}
	lu, ru := exprUnit(pass, be.X), exprUnit(pass, be.Y)
	if conflict(lu, ru) {
		pass.Reportf(be.OpPos, "mixing %s and %s in %q without conversion (use sim.NS)", lu, ru, be.Op)
	}
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lu, ru := exprUnit(pass, lhs), exprUnit(pass, as.Rhs[i])
		if conflict(lu, ru) {
			pass.Reportf(as.Rhs[i].Pos(), "assigning %s value to %s destination without conversion (use sim.NS)", ru, lu)
		}
	}
}

func checkComposite(pass *analysis.Pass, cl *ast.CompositeLit) {
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		ku := nameUnit(key.Name)
		if ku == unitUnknown {
			if obj := pass.ObjectOf(key); obj != nil {
				ku = typeUnit(obj.Type())
			}
		}
		vu := exprUnit(pass, kv.Value)
		if conflict(ku, vu) {
			pass.Reportf(kv.Value.Pos(), "assigning %s value to %s field %s without conversion (use sim.NS)", vu, ku, key.Name)
		}
	}
}

// exprUnit infers the unit of an expression.
func exprUnit(pass *analysis.Pass, e ast.Expr) unit {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return exprUnit(pass, v.X)
	case *ast.BasicLit:
		return unitUnknown
	case *ast.CallExpr:
		// A call to a conversion function named NS yields cycles; any
		// other call (including explicit type conversions) is judged by
		// its result type.
		if calleeName(v) == "NS" {
			return unitCycles
		}
		return typeUnit(pass.TypeOf(e))
	case *ast.Ident:
		if u := nameUnit(v.Name); u != unitUnknown {
			return u
		}
		return typeUnit(pass.TypeOf(e))
	case *ast.SelectorExpr:
		if u := nameUnit(v.Sel.Name); u != unitUnknown {
			return u
		}
		return typeUnit(pass.TypeOf(e))
	case *ast.BinaryExpr:
		switch v.Op {
		case token.MUL:
			// Scaling by a bare literal preserves the unit; multiplying
			// by a conversion factor (or anything unit-bearing) does not
			// resolve to a single unit here.
			if _, ok := v.X.(*ast.BasicLit); ok {
				return exprUnit(pass, v.Y)
			}
			if _, ok := v.Y.(*ast.BasicLit); ok {
				return exprUnit(pass, v.X)
			}
			return unitUnknown
		case token.ADD, token.SUB:
			lu, ru := exprUnit(pass, v.X), exprUnit(pass, v.Y)
			if lu == ru {
				return lu
			}
			return unitUnknown
		default:
			return unitUnknown
		}
	default:
		return typeUnit(pass.TypeOf(e))
	}
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// nameUnit classifies an identifier by its words.
func nameUnit(name string) unit {
	ns, cyc := false, false
	for _, w := range splitWords(name) {
		switch strings.ToLower(w) {
		case "ns", "nanos", "nanosecond", "nanoseconds":
			ns = true
		case "cyc", "cycle", "cycles":
			cyc = true
		}
	}
	switch {
	case ns && cyc:
		return unitConversion
	case ns:
		return unitNS
	case cyc:
		return unitCycles
	}
	return unitUnknown
}

// typeUnit classifies by declared type: the sim.Cycles alias (or any
// type named Cycles) is cycles; time.Duration is nanoseconds.
func typeUnit(t types.Type) unit {
	for i := 0; t != nil && i < 10; i++ {
		var obj *types.TypeName
		switch tt := t.(type) {
		case *types.Alias:
			obj = tt.Obj()
			t = types.Unalias(tt)
		case *types.Named:
			obj = tt.Obj()
			t = nil
		default:
			return unitUnknown
		}
		if obj != nil {
			if obj.Name() == "Cycles" {
				return unitCycles
			}
			if obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration" {
				return unitNS
			}
		}
	}
	return unitUnknown
}

// splitWords breaks an identifier into camelCase/underscore words.
func splitWords(name string) []string {
	var words []string
	runes := []rune(name)
	start := 0
	flush := func(end int) {
		if end > start {
			words = append(words, string(runes[start:end]))
		}
		start = end
	}
	for i := 1; i < len(runes); i++ {
		prev, cur := runes[i-1], runes[i]
		switch {
		case cur == '_':
			flush(i)
			start = i + 1
		case unicode.IsLower(prev) && unicode.IsUpper(cur):
			flush(i)
		case unicode.IsUpper(prev) && unicode.IsUpper(cur) && i+1 < len(runes) && unicode.IsLower(runes[i+1]):
			flush(i)
		case unicode.IsDigit(prev) != unicode.IsDigit(cur):
			flush(i)
		}
	}
	flush(len(runes))
	return words
}
