// Package unitfixture exercises the unitcheck analyzer: nanosecond and
// cycle quantities must not mix without explicit conversion.
package unitfixture

// Cycles mirrors sim.Cycles: an alias, so it survives in type info.
type Cycles = uint64

// CyclesPerNS is a conversion factor: its name carries both units, so it
// is neutral.
const CyclesPerNS = 2

// NS converts nanoseconds to cycles, the blessed conversion.
func NS(ns uint64) Cycles { return ns * CyclesPerNS }

// Config mirrors the Table II shape: latencies denominated in cycles.
type Config struct {
	FlushLat Cycles
	DrainGap Cycles
}

// Additions and comparisons across units are flagged.
func AddMix(lat Cycles, gapNS uint64) uint64 {
	return lat + gapNS // want `mixing cycles and nanoseconds in "\+" without conversion`
}

func CompareMix(lat Cycles, gapNS uint64) bool {
	return gapNS < lat // want `mixing nanoseconds and cycles in "<" without conversion`
}

// Assigning a nanosecond value to a cycle-typed destination is flagged,
// including the hand-rolled 2*ns conversion.
func AssignMix(cfg *Config, gapNS uint64) {
	cfg.DrainGap = gapNS     // want `assigning nanoseconds value to cycles destination without conversion`
	cfg.DrainGap = 2 * gapNS // want `assigning nanoseconds value to cycles destination without conversion`
}

// The explicit conversions stay silent.
func Converted(cfg *Config, gapNS uint64) {
	cfg.DrainGap = NS(gapNS)
	cfg.FlushLat = gapNS * CyclesPerNS
	cfg.FlushLat = cfg.DrainGap + NS(3)
}

// Composite literals are checked per field.
func Literal(gapNS uint64) Config {
	return Config{
		FlushLat: NS(60),
		DrainGap: gapNS, // want `assigning nanoseconds value to cycles field DrainGap without conversion`
	}
}

// Same-unit arithmetic is fine.
func SameUnit(a, b Cycles, xNS, yNS uint64) (Cycles, uint64) {
	return a + b, xNS + yNS
}
