package unitcheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	analysistest.Run(t, unitcheck.New(), "unitfixture", "testdata/unit")
}
