// Package donecheck verifies the Model callback contract: every function
// that receives a `done func()` parameter must invoke it exactly once on
// every path (internal/model/model.go: "they must invoke it exactly
// once"). Zero-call paths hang the simulated core forever; double-call
// paths double-complete an operation and corrupt timing.
//
// A "consumption" of done is a direct call done(), a handoff of done as
// an argument to another call (the callee inherits the obligation, e.g.
// m.Dfence(core, done)), a store of done into a variable or field for
// later invocation (c.dfenceWaiter = done), or a function literal that
// captures done (the stored closure will invoke it, e.g. the
// storeWaiters retry pattern that re-enqueues through sim.Engine).
// Mentions of done in nil-comparisons do not consume it. Paths ending in
// panic or os.Exit are exempt.
package donecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"asap/internal/analysis"
)

// New returns the donecheck analyzer.
func New() analysis.Analyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "donecheck" }

func (checker) Doc() string {
	return "every function taking a done func() parameter must invoke or hand off done exactly once on every return path"
}

func (checker) Run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			name := "function literal"
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ft, body, name = fn.Type, fn.Body, fn.Name.Name
			case *ast.FuncLit:
				ft, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || ft.Params == nil {
				return true
			}
			for _, field := range ft.Params.List {
				if !isNullaryFuncType(field.Type) {
					continue
				}
				for _, nm := range field.Names {
					if nm.Name != "done" {
						continue
					}
					obj := pass.ObjectOf(nm)
					if obj == nil {
						continue
					}
					fc := &funcCheck{pass: pass, fname: name, obj: obj, reported: make(map[string]bool)}
					fc.collectAliases(body)
					out := fc.flowList(body.List, canZero)
					fc.exit(out, body.Rbrace)
				}
			}
			return true
		})
	}
}

// isNullaryFuncType reports whether t is the literal type func().
func isNullaryFuncType(t ast.Expr) bool {
	ft, ok := t.(*ast.FuncType)
	if !ok {
		return false
	}
	return (ft.Params == nil || len(ft.Params.List) == 0) &&
		(ft.Results == nil || len(ft.Results.List) == 0)
}

// mask is the set of possible done-consumption counts along the paths
// reaching a program point: zero, exactly one, or two-or-more.
type mask uint8

const (
	canZero mask = 1 << iota
	canOne
	canMany
)

// bump shifts every possible count up by one consumption.
func (m mask) bump() mask {
	var out mask
	if m&canZero != 0 {
		out |= canOne
	}
	if m&(canOne|canMany) != 0 {
		out |= canMany
	}
	return out
}

func (m mask) addN(n int) mask {
	for ; n > 0; n-- {
		m = m.bump()
	}
	return m
}

// funcCheck analyzes one function body for one done parameter.
type funcCheck struct {
	pass     *analysis.Pass
	fname    string
	obj      types.Object
	aliases  map[types.Object]bool // local closures that consume done
	aliasDef map[ast.Node]bool     // the defining FuncLits (not consumptions)
	reported map[string]bool
}

func (c *funcCheck) isDone(id *ast.Ident) bool {
	obj := c.pass.ObjectOf(id)
	return obj == c.obj || (obj != nil && c.aliases[obj])
}

// collectAliases registers local helper closures that capture done, like
// the ack/nack pattern in the memory controller:
//
//	ack := func() { ...; done() }
//
// Defining the closure is not a consumption; each use of ack afterwards
// consumes done once. Aliases chain (a closure capturing ack is itself
// an alias), so the scan iterates to a fixpoint.
func (c *funcCheck) collectAliases(body *ast.BlockStmt) {
	c.aliases = make(map[types.Object]bool)
	c.aliasDef = make(map[ast.Node]bool)
	for {
		added := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := as.Rhs[i].(*ast.FuncLit)
				if !ok || !c.mentions(lit.Body) {
					continue
				}
				obj := c.pass.ObjectOf(id)
				if obj == nil || c.aliases[obj] {
					continue
				}
				c.aliases[obj] = true
				c.aliasDef[lit] = true
				added = true
			}
			return true
		})
		if !added {
			return
		}
	}
}

// mentions reports whether the subtree references the done parameter.
func (c *funcCheck) mentions(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && c.isDone(id) {
			found = true
		}
		return !found
	})
	return found
}

// count tallies the consumptions of done in a simple statement or
// expression: each identifier resolving to the parameter counts once,
// except bare mentions in ==/!= comparisons (nil guards); a function
// literal capturing done counts once as a whole.
func (c *funcCheck) count(n ast.Node) int {
	if n == nil {
		return 0
	}
	cnt := 0
	guarded := make(map[ast.Node]bool)
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if guarded[x] {
			return false
		}
		switch v := x.(type) {
		case *ast.FuncLit:
			if c.aliasDef[v] {
				return false // defining an alias closure is not a use
			}
			if c.mentions(v.Body) {
				cnt++
			}
			return false
		case *ast.BinaryExpr:
			if v.Op == token.EQL || v.Op == token.NEQ {
				if id, ok := v.X.(*ast.Ident); ok && c.isDone(id) {
					guarded[v.X] = true
				}
				if id, ok := v.Y.(*ast.Ident); ok && c.isDone(id) {
					guarded[v.Y] = true
				}
			}
		case *ast.Ident:
			if c.isDone(v) {
				cnt++
			}
		}
		return true
	})
	return cnt
}

// exit validates the consumption mask at a return point.
func (c *funcCheck) exit(m mask, pos token.Pos) {
	if m == 0 {
		return
	}
	if m&canZero != 0 {
		c.reportOnce(pos, "done is never invoked on some path returning here")
	}
	if m&canMany != 0 {
		c.reportOnce(pos, "done may be invoked more than once on some path returning here")
	}
}

func (c *funcCheck) reportOnce(pos token.Pos, msg string) {
	key := c.pass.Fset.Position(pos).String() + msg
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, "%s: %s", c.fname, msg)
}

func (c *funcCheck) flowList(stmts []ast.Stmt, in mask) mask {
	cur := in
	for _, s := range stmts {
		cur = c.flowStmt(s, cur)
	}
	return cur
}

// flowStmt propagates the consumption mask through one statement. A zero
// mask means the point is unreachable. Loops are run to a fixpoint
// (masks are monotone and saturate at "two or more", so three passes
// converge). Returns and terminal calls (panic, os.Exit) cut the flow.
func (c *funcCheck) flowStmt(s ast.Stmt, in mask) mask {
	if s == nil || in == 0 {
		return in
	}
	switch v := s.(type) {
	case *ast.ExprStmt:
		if isTerminalCall(v.X) {
			return 0
		}
		return in.addN(c.count(v.X))
	case *ast.ReturnStmt:
		m := in
		for _, r := range v.Results {
			m = m.addN(c.count(r))
		}
		c.exit(m, v.Pos())
		return 0
	case *ast.AssignStmt:
		out := in
		for _, r := range v.Rhs {
			out = out.addN(c.count(r))
		}
		return out
	case *ast.DeferStmt:
		return in.addN(c.count(v.Call))
	case *ast.GoStmt:
		return in.addN(c.count(v.Call))
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		return in.addN(c.count(s))
	case *ast.BlockStmt:
		return c.flowList(v.List, in)
	case *ast.IfStmt:
		cur := c.flowStmt(v.Init, in)
		cur = cur.addN(c.count(v.Cond))
		thenOut := c.flowStmt(v.Body, cur)
		elseOut := cur
		if v.Else != nil {
			elseOut = c.flowStmt(v.Else, cur)
		}
		return thenOut | elseOut
	case *ast.ForStmt:
		cur := c.flowStmt(v.Init, in)
		cur = cur.addN(c.count(v.Cond))
		iter := cur
		for i := 0; i < 3; i++ {
			out := c.flowList(v.Body.List, iter)
			out = c.flowStmt(v.Post, out)
			out = out.addN(c.count(v.Cond))
			iter |= out
		}
		if v.Cond == nil && !hasLoopBreak(v.Body) {
			return 0 // for{}: leaves only via return/panic inside
		}
		return cur | iter
	case *ast.RangeStmt:
		cur := in.addN(c.count(v.X))
		iter := cur
		for i := 0; i < 3; i++ {
			iter |= c.flowList(v.Body.List, iter)
		}
		return cur | iter
	case *ast.SwitchStmt:
		cur := c.flowStmt(v.Init, in)
		cur = cur.addN(c.count(v.Tag))
		return c.flowCases(v.Body, cur)
	case *ast.TypeSwitchStmt:
		cur := c.flowStmt(v.Init, in)
		cur = c.flowStmt(v.Assign, cur)
		return c.flowCases(v.Body, cur)
	case *ast.SelectStmt:
		if len(v.Body.List) == 0 {
			return 0 // select{} blocks forever
		}
		var out mask
		for _, cc := range v.Body.List {
			comm := cc.(*ast.CommClause)
			cin := c.flowStmt(comm.Comm, in)
			out |= c.flowList(comm.Body, cin)
		}
		return out
	case *ast.LabeledStmt:
		return c.flowStmt(v.Stmt, in)
	case *ast.BranchStmt:
		return 0 // break/continue/goto: approximated as cutting this flow
	case *ast.EmptyStmt:
		return in
	default:
		return in.addN(c.count(s))
	}
}

// flowCases unions the outcomes of switch cases; without a default the
// switch may fall through untouched.
func (c *funcCheck) flowCases(body *ast.BlockStmt, in mask) mask {
	var out mask
	hasDefault := false
	for _, cc := range body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		cin := in
		for _, e := range clause.List {
			cin = cin.addN(c.count(e))
		}
		if clause.List == nil {
			hasDefault = true
		}
		out |= c.flowList(clause.Body, cin)
	}
	if !hasDefault {
		out |= in
	}
	return out
}

// isTerminalCall reports whether the expression is a call that never
// returns: panic(...) or os.Exit(...).
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			return pkg.Name == "os" && fn.Sel.Name == "Exit"
		}
	}
	return false
}

// hasLoopBreak reports whether the loop body can break out of the
// enclosing loop: an unlabeled break at this nesting level, or any
// labeled break inside nested loop/switch/select statements.
func hasLoopBreak(body *ast.BlockStmt) bool {
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		switch v := n.(type) {
		case *ast.BranchStmt:
			if v.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Unlabeled break inside binds to the inner statement; only
			// labeled breaks can escape to our loop.
			ast.Inspect(n, func(m ast.Node) bool {
				if b, ok := m.(*ast.BranchStmt); ok && b.Tok == token.BREAK && b.Label != nil {
					found = true
				}
				return !found
			})
			return false
		case *ast.FuncLit:
			return false // break inside a closure cannot escape it
		}
		return true
	}
	for _, s := range body.List {
		ast.Inspect(s, visit)
	}
	return found
}
