// Package donefixture exercises the donecheck analyzer: done must be
// invoked or handed off exactly once on every path.
package donefixture

var waiters []func()

// OK: direct invocation on the single path.
func DirectCall(done func()) {
	done()
}

// OK: handoff to another call transfers the obligation.
func Handoff(done func()) {
	helper(done)
}

func helper(cb func()) { cb() }

// OK: the sim.Engine retry pattern — a stored closure capturing done
// counts as the one consumption.
func Park(full func() bool, done func()) {
	if full() {
		waiters = append(waiters, func() { Park(full, done) })
		return
	}
	done()
}

type core struct{ waiter func() }

// OK: storing done in a field for later invocation, with a panic path.
func (c *core) Wait(done func()) {
	if c.waiter != nil {
		panic("busy")
	}
	c.waiter = done
}

// OK: defer fires exactly once.
func Deferred(done func()) {
	defer done()
}

// Missing: the false branch returns without invoking done.
func MissingOnBranch(ok bool, done func()) {
	if ok {
		done()
	}
} // want `MissingOnBranch: done is never invoked on some path returning here`

// Missing: early return skips the invocation.
func EarlyReturn(n int, done func()) {
	if n > 0 {
		return // want `EarlyReturn: done is never invoked on some path returning here`
	}
	done()
}

// Double: unconditional second invocation.
func Double(done func()) {
	done()
	done()
} // want `Double: done may be invoked more than once on some path returning here`

// Double: one branch adds a second invocation.
func BranchDouble(ok bool, done func()) {
	done()
	if ok {
		done()
	}
} // want `BranchDouble: done may be invoked more than once on some path returning here`

// Double: a loop may hand done off on several iterations.
func LoopHandoff(n int, done func()) {
	for i := 0; i < n; i++ {
		helper(done)
	}
} // want `LoopHandoff: done is never invoked on some path returning here` `LoopHandoff: done may be invoked more than once on some path returning here`

// OK: the controller ack/nack pattern — local closures capturing done
// are aliases; defining them is free, each use consumes done once.
func AckNack(ok bool, done func()) {
	ack := func() { done() }
	nack := func() { done() }
	if ok {
		ack()
		return
	}
	nack()
}

// Double through an alias: two alias uses on one path.
func AliasDouble(done func()) {
	ack := func() { done() }
	ack()
	ack()
} // want `AliasDouble: done may be invoked more than once on some path returning here`

// Missing through an alias: one branch never uses it.
func AliasSkipped(ok bool, done func()) {
	ack := func() { done() }
	if ok {
		ack()
	}
} // want `AliasSkipped: done is never invoked on some path returning here`

// Suppressed: the ignore directive on the line above the closing brace
// silences the zero-call finding.
func Intentional(done func()) {
	_ = len(waiters)
	//asaplint:ignore donecheck completion is signalled out of band in this fixture
}
