package donecheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/donecheck"
)

func TestDonecheck(t *testing.T) {
	analysistest.Run(t, donecheck.New(), "donefixture", "testdata/done")
}
