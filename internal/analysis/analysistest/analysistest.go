// Package analysistest runs an analyzer over fixture files and matches
// its findings against in-source expectation comments, in the spirit of
// golang.org/x/tools/go/analysis/analysistest but with zero dependencies
// outside the standard library.
//
// A fixture line that should be flagged carries a trailing comment
//
//	code() // want "regexp" "another regexp"
//
// with one quoted regular expression per expected finding on that line.
// The harness fails the test if a finding has no matching expectation on
// its line, or an expectation goes unmatched. //asaplint:ignore
// directives are honored, so suppression behavior is testable too.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"asap/internal/analysis"
)

// wantRx extracts the quoted regexps of a want comment; both "..." and
// `...` forms are accepted.
var wantRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

// Run parses and type-checks every .go file in dir as one package,
// runs the analyzer over it under the given import path (so path-scoped
// analyzers fire), and compares findings with // want comments.
func Run(t *testing.T, a analysis.Analyzer, pkgpath, dir string) {
	t.Helper()
	pkg, err := loadDir(pkgpath, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := analysis.Run(a, pkg)
	diags = analysis.FilterIgnored(pkg.Fset, pkg.Files, diags)

	wants, err := collectWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected finding %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// RunModule is Run for module-wide analyzers: the fixture directory is
// loaded as a single one-package module and handed to the analyzer.
func RunModule(t *testing.T, a analysis.ModuleAnalyzer, pkgpath, dir string) {
	t.Helper()
	pkg, err := loadDir(pkgpath, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := analysis.RunModule(a, []*analysis.Package{pkg})
	diags = analysis.FilterIgnored(pkg.Fset, pkg.Files, diags)

	wants, err := collectWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", dir, err)
	}

	for _, d := range diags {
		if !consume(wants, d) {
			t.Errorf("unexpected finding %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// consume marks the first unmatched expectation on the diagnostic's line
// whose regexp matches the message.
func consume(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.rx.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRx.FindAllString(rest, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without quoted regexp", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx, raw: q})
				}
			}
		}
	}
	return wants, nil
}

// loadDir parses and type-checks the fixture files of one directory.
// Fixtures may import only the standard library.
func loadDir(pkgpath, dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture: %w", err)
	}
	return &analysis.Package{Path: pkgpath, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
