// Package ledgercheck keeps the crash checker honest: the theorems it
// verifies (package crash, Theorem 2) are vacuous unless every Model
// implementation reports its persistent writes to the Ledger. For each
// concrete type in internal/model with a Store method taking a done
// callback, the analyzer walks the package-local call graph reachable
// from Store; if no reachable function calls Ledger.RecordWrite, the
// model's writes would be invisible to the crash checker and Store is
// flagged.
package ledgercheck

import (
	"go/ast"
	"go/types"
	"strings"

	"asap/internal/analysis"
)

// New returns the ledgercheck analyzer.
func New() analysis.Analyzer { return checker{} }

type checker struct{}

func (checker) Name() string { return "ledgercheck" }

func (checker) Doc() string {
	return "every Model implementation's Store path must reach a Ledger.RecordWrite call, or the crash checker has no ground truth"
}

func (checker) Run(pass *analysis.Pass) {
	if !strings.HasSuffix(pass.Path, "internal/model") {
		return
	}

	// Package-local call graph: function object -> called function
	// objects, plus which functions call RecordWrite directly. Calls
	// inside stored closures count — the closure still belongs to the
	// enclosing function's path.
	calls := make(map[*types.Func][]*types.Func)
	direct := make(map[*types.Func]bool)
	var stores []storeMethod

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.ObjectOf(fd.Name).(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var callee *ast.Ident
				switch fn := call.Fun.(type) {
				case *ast.Ident:
					callee = fn
				case *ast.SelectorExpr:
					callee = fn.Sel
				default:
					return true
				}
				if callee.Name == "RecordWrite" {
					direct[obj] = true
					return true
				}
				if target, ok := pass.ObjectOf(callee).(*types.Func); ok &&
					target.Pkg() == pass.Pkg {
					calls[obj] = append(calls[obj], target)
				}
				return true
			})
			if isStoreMethod(fd) {
				stores = append(stores, storeMethod{decl: fd, obj: obj})
			}
		}
	}

	for _, s := range stores {
		if !reachesRecordWrite(s.obj, calls, direct) {
			pass.Reportf(s.decl.Pos(),
				"%s.Store never reaches Ledger.RecordWrite: the crash checker has no ground truth for this model",
				recvTypeName(s.decl))
		}
	}
}

type storeMethod struct {
	decl *ast.FuncDecl
	obj  *types.Func
}

// isStoreMethod matches the Model.Store shape: a method named Store
// whose last parameter is a bare func() callback.
func isStoreMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Store" {
		return false
	}
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	last, ok := params.List[len(params.List)-1].Type.(*ast.FuncType)
	if !ok {
		return false
	}
	return (last.Params == nil || len(last.Params.List) == 0) &&
		(last.Results == nil || len(last.Results.List) == 0)
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "?"
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// reachesRecordWrite BFS-walks the call graph from start.
func reachesRecordWrite(start *types.Func, calls map[*types.Func][]*types.Func, direct map[*types.Func]bool) bool {
	seen := map[*types.Func]bool{start: true}
	queue := []*types.Func{start}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if direct[fn] {
			return true
		}
		for _, next := range calls[fn] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}
