package ledgercheck_test

import (
	"testing"

	"asap/internal/analysis/analysistest"
	"asap/internal/analysis/ledgercheck"
)

func TestLedgercheck(t *testing.T) {
	// The fixture pretends to live in internal/model so the path-scoped
	// analyzer fires.
	analysistest.Run(t, ledgercheck.New(), "asap/internal/model", "testdata/ledger")
}
