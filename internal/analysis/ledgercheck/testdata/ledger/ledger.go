// Package ledgerfixture exercises the ledgercheck analyzer: every model
// Store path must reach Ledger.RecordWrite.
package ledgerfixture

// Ledger mirrors model.Ledger.
type Ledger interface {
	RecordWrite(epoch uint64, line uint64, token uint64)
}

type env struct{ ledger Ledger }

// GoodDirect records ground truth directly in Store.
type GoodDirect struct{ env env }

func (m *GoodDirect) Store(core int, line, token uint64, done func()) {
	m.env.ledger.RecordWrite(1, line, token)
	done()
}

// GoodIndirect reaches RecordWrite through a helper, like the models'
// tryEnqueue pattern.
type GoodIndirect struct{ env env }

func (m *GoodIndirect) Store(core int, line, token uint64, done func()) {
	m.tryEnqueue(line, token, done)
}

func (m *GoodIndirect) tryEnqueue(line, token uint64, done func()) {
	if line == 0 {
		m.tryEnqueue(line+1, token, done)
		return
	}
	m.env.ledger.RecordWrite(1, line, token)
	done()
}

// BadSilent never reports its writes: the crash checker would verify a
// vacuous theorem against it.
type BadSilent struct{ env env }

func (m *BadSilent) Store(core int, line, token uint64, done func()) { // want `BadSilent\.Store never reaches Ledger\.RecordWrite`
	done()
}

// BadDeep loses the ledger two helpers down.
type BadDeep struct{ env env }

func (m *BadDeep) Store(core int, line, token uint64, done func()) { // want `BadDeep\.Store never reaches Ledger\.RecordWrite`
	m.enqueue(line, token, done)
}

func (m *BadDeep) enqueue(line, token uint64, done func()) {
	m.flush(line)
	done()
}

func (m *BadDeep) flush(line uint64) {}
