package checkpoint

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/rng"
	"asap/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden checkpoint images")

// newAt builds a machine for (model, case) and advances it to cycle `at`.
func newAt(t *testing.T, mn string, c diffCase, at uint64) *machine.Machine {
	t.Helper()
	tr, err := workload.Generate(c.wl, c.p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	m, err := machine.New(config.Default(), mn, tr)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	if at > 0 {
		m.Advance(at)
	}
	return m
}

// TestImageRoundtrip is the cross-process half of the tentpole pin: for
// every model × a workload sample, a machine advanced to a randomized
// mid-run cycle, saved to a binary image, loaded back, and run to
// completion must reproduce the uninterrupted run byte-identically —
// Result, stats, and every controller's NVM image. Models that drive
// flush loops through engine closures save at the next quiescent cycle.
func TestImageRoundtrip(t *testing.T) {
	for _, mn := range model.ExtendedNames() {
		for _, c := range diffWorkloads() {
			t.Run(mn+"/"+c.wl, func(t *testing.T) {
				t.Parallel()
				oracle := newAt(t, mn, c, 0)
				resA := oracle.Run(0)
				want := summarize(oracle, resA)

				r := rng.New(uint64(len(mn))*31 + c.p.Seed*17)
				cut := 1 + r.Uint64n(resA.Cycles)
				m := newAt(t, mn, c, cut)
				img, at, err := SaveNextQuiescent(m, resA.Cycles)
				if err != nil {
					t.Fatalf("save at cycle %d: %v", cut, err)
				}
				if at < cut {
					t.Fatalf("saved at %d, before requested cycle %d", at, cut)
				}
				if gotCycle, err := ImageCycle(img); err != nil || gotCycle != at {
					t.Fatalf("ImageCycle = %d, %v; want %d", gotCycle, err, at)
				}

				// The machine Save mutated must itself still finish correctly.
				compare(t, "saver-continue", want, summarize(m, m.Run(0)))

				// Two independent loads, run to completion.
				for i := 0; i < 2; i++ {
					lm, err := Load(img)
					if err != nil {
						t.Fatalf("load: %v", err)
					}
					if lm.Eng.Now() != at {
						t.Fatalf("loaded clock %d, want %d", lm.Eng.Now(), at)
					}
					compare(t, "load-continue", want, summarize(lm, lm.Run(0)))
				}
			})
		}
	}
}

// TestImageDeterministic pins that Save is a pure function of machine
// state: two machines advanced identically produce byte-identical images
// (map entries are sorted, ids are dense in traversal order, no addresses
// or timestamps leak into the encoding).
func TestImageDeterministic(t *testing.T) {
	c := diffCase{wl: "cceh", p: workload.Params{Threads: 2, OpsPerThread: 120, Seed: 7}}
	a, atA, err := SaveNextQuiescent(newAt(t, model.NameASAPEP, c, 500), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	b, atB, err := SaveNextQuiescent(newAt(t, model.NameASAPEP, c, 500), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if atA != atB {
		t.Fatalf("quiescence search diverged: %d vs %d", atA, atB)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical machine states produced different images")
	}
}

// TestImageRejectsBadInput pins the acceptance requirement that corrupted,
// truncated, and wrong-version images error — never panic. Every prefix
// truncation and every single-byte corruption of a real image must be
// rejected (the digest covers the whole payload).
func TestImageRejectsBadInput(t *testing.T) {
	c := diffCase{wl: "echo", p: workload.Params{Threads: 2, OpsPerThread: 60, Seed: 5}}
	img, _, err := SaveNextQuiescent(newAt(t, model.NameASAPEP, c, 200), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(nil); err == nil {
		t.Fatal("Load(nil) succeeded")
	}
	if _, err := Load([]byte("ASAPCKP1")); err == nil {
		t.Fatal("magic-only image loaded")
	}
	if _, err := Load([]byte("NOTANIMG" + string(img[8:]))); err == nil {
		t.Fatal("wrong magic loaded")
	}
	// Wrong version: byte 8 is the uvarint version (1).
	bad := append([]byte(nil), img...)
	bad[8] = 99
	if _, err := Load(bad); err == nil {
		t.Fatal("wrong-version image loaded")
	}
	// Every truncation point.
	for n := 0; n < len(img); n += 1 + n/16 {
		if _, err := Load(img[:n]); err == nil {
			t.Fatalf("truncated image (%d/%d bytes) loaded", n, len(img))
		}
	}
	// Single-byte corruption at a spread of offsets.
	for off := 0; off < len(img); off += 1 + len(img)/512 {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x40
		if _, err := Load(bad); err == nil {
			t.Fatalf("corrupted image (byte %d flipped) loaded", off)
		}
	}
}

// TestImageRejectsUnquiescent pins the gating contract for closure-driven
// models, and that SaveNextQuiescent reports non-quiescence when the
// search window is too small.
func TestImageRejectsUnquiescent(t *testing.T) {
	c := diffCase{wl: "cceh", p: workload.Params{Threads: 2, OpsPerThread: 200, Seed: 3}}
	m := newAt(t, model.NameHOPSRP, c, 0)
	// Find a cycle where hops_rp has a closure in flight: step until Save
	// refuses, which must happen early in any run with persist traffic.
	found := false
	for i := uint64(1); i < 2000; i++ {
		m.Advance(i)
		if _, err := Save(m); err != nil {
			if !errors.Is(err, ErrNotQuiescent) {
				t.Fatalf("unexpected save error: %v", err)
			}
			if _, _, err := SaveNextQuiescent(newAt(t, model.NameHOPSRP, c, i), 0); !errors.Is(err, ErrNotQuiescent) {
				t.Fatalf("zero-window search: got %v, want ErrNotQuiescent", err)
			}
			found = true
			break
		}
	}
	if !found {
		t.Skip("hops_rp never left quiescence on this workload")
	}
}

// goldenImagePath is the committed checkpoint image: asap_ep on the cceh
// workload, saved at cycle 400. CI's golden job loads it and reruns it.
func goldenImagePath(t *testing.T) string {
	t.Helper()
	return filepath.Join("..", "..", "testdata", "golden", "checkpoint_asap_ep_cceh.ckpt")
}

func goldenMachine(t *testing.T) *machine.Machine {
	t.Helper()
	return newAt(t, model.NameASAPEP,
		diffCase{wl: "cceh", p: workload.Params{Threads: 2, OpsPerThread: 150, Seed: 42}}, 400)
}

// TestGoldenImage pins the on-disk format: the committed image must load
// and finish identically to a fresh run, and a fresh Save of the same
// state must reproduce the committed bytes exactly. A schema or format
// change fails this test; regenerate with `go test ./internal/checkpoint
// -run TestGoldenImage -update` and review the diff deliberately — old
// images stop loading when the fingerprint moves.
func TestGoldenImage(t *testing.T) {
	img, at, err := SaveNextQuiescent(goldenMachine(t), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("golden image captured at cycle %d (%d bytes)", at, len(img))
	path := goldenImagePath(t)
	if *updateGolden {
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(img))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden image (regenerate with -update): %v", err)
	}
	if !bytes.Equal(img, want) {
		t.Fatalf("checkpoint image format drifted from golden (%d bytes vs %d): regenerate with -update if intended", len(img), len(want))
	}

	lm, err := Load(want)
	if err != nil {
		t.Fatalf("golden image failed to load: %v", err)
	}
	oracle := newAt(t, model.NameASAPEP,
		diffCase{wl: "cceh", p: workload.Params{Threads: 2, OpsPerThread: 150, Seed: 42}}, 0)
	compare(t, "golden", summarize(oracle, oracle.Run(0)), summarize(lm, lm.Run(0)))
}
