package checkpoint

// The state walker: a reflection-driven deep traversal of the machine's
// object graph that records everything needed to put the graph back into a
// captured state, byte for byte, without the machine knowing it is being
// snapshotted.
//
// The traversal decomposes state into restore actions:
//
//   - POD regions and POD slice contents (no pointers, maps, interfaces or
//     funcs anywhere inside — the bulk of machine state: cache arrays, the
//     event heap, ledger slabs, NVM tokens) are captured into one shared
//     byte arena and restored with plain memmoves. This is the fast path
//     that makes a campaign's thousand rewinds affordable.
//   - non-POD pointees are captured as typed shallow copies (reflect.Set —
//     a typedmemmove with proper write barriers). Restoring the copy puts
//     back every scalar, every pointer (identity — the graph keeps its
//     original objects), every func value (closures are shared, not
//     cloned: everything they capture is itself rolled back), and every
//     slice/map header.
//   - slice contents are copied back into the original backing array,
//     preserving aliasing (two slices sharing a backing array keep sharing
//     it after restore).
//   - map contents are restored in place (clear + refill), preserving map
//     identity; the hot simulation maps (mem.Line keyed) restore through
//     native typed clones instead of reflect's per-entry path.
//
// Restore order is regions, then slice contents, then maps. Slice content
// destinations are the capture-time data pointers, which the captured
// headers keep alive, so the passes never depend on each other beyond that.
//
// Unexported fields are reached through unsafe.Pointer arithmetic
// (reflect.NewAt over base+offset), which sidesteps reflect's read-only
// flag; the machine graph is a single-goroutine object tree, so the walk
// races nothing as long as the machine is not mid-Run.

import (
	"fmt"
	"maps"
	"reflect"
	"sync"
	"unsafe"

	"asap/internal/mem"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/trace"
)

// rawRestore is one memmove: n bytes of the arena (at off) back to dst.
// Only pointer-free bytes ever take this path, so the untyped writes can
// never hide a pointer from the garbage collector.
type rawRestore struct {
	dst unsafe.Pointer
	off int
	n   int
}

// region is one typed-captured non-POD pointee.
type region struct {
	ptr    unsafe.Pointer
	typ    reflect.Type  // pointee type
	shadow reflect.Value // *typ holding the captured copy
}

// sliceCopy is the captured contents of one non-POD slice ([0:len]).
type sliceCopy struct {
	ptr  unsafe.Pointer // address of the slice header
	typ  reflect.Type   // slice type
	data reflect.Value  // contents copy, len == captured len
}

// mapCopy is the captured contents of one map on the generic path. Values
// are restricted to pointer, POD, or slice-of-(POD|pointer) types (see
// captureMap), so the entry snapshot is shallow and pointees are rolled
// back through their own regions.
type mapCopy struct {
	ptr        unsafe.Pointer // address of the map header
	typ        reflect.Type   // map type
	keys, vals reflect.Value  // parallel slices of captured entries
	cloneVals  bool           // slice values: re-clone per restore
}

// seenKey dedups pointees. The type is part of the key: distinct views of
// one address (a struct and its first field) must not alias a region.
type seenKey struct {
	ptr unsafe.Pointer
	typ reflect.Type
}

// walker accumulates the restore actions for one capture.
type walker struct {
	arena   []byte
	raw     []rawRestore
	regions []region
	slices  []sliceCopy
	maps    []mapCopy
	typed   []func() // typed fast-path map restores
	seen    map[seenKey]struct{}
}

// Skip rules. Observability sinks accumulate history (trace spans, timeline
// rows, progress snapshots) that describes the run so far; rolling them back
// would falsify it, and nothing in the simulation reads them, so the walker
// restores the *references* (bitwise, via the enclosing region) but never
// descends into the objects. sim.Cluster owns goroutines and channels and is
// nil on the serial machines checkpointing supports. []trace.Op is the
// replayed program: immutable by contract, shared between machine and trace,
// and far too large to copy per capture.
var (
	tracerType   = reflect.TypeOf((*obs.Tracer)(nil)).Elem()
	progressType = reflect.TypeOf((*obs.Progress)(nil))
	timelineType = reflect.TypeOf((*obs.Timeline)(nil))
	clusterType  = reflect.TypeOf((*sim.Cluster)(nil))
	opSliceType  = reflect.TypeOf([]trace.Op(nil))

	lineTokenMapType = reflect.TypeOf(map[mem.Line]mem.Token(nil))
	lineBoolMapType  = reflect.TypeOf(map[mem.Line]bool(nil))
	lineU64MapType   = reflect.TypeOf(map[mem.Line]uint64(nil))
)

func skipType(t reflect.Type) bool {
	return t == tracerType || t == progressType || t == timelineType || t == clusterType
}

// podCache memoizes isPOD per type; shared by concurrent captures.
var podCache sync.Map // reflect.Type -> bool

// isPOD reports whether t contains no pointers, slices, maps, interfaces,
// funcs, or channels — i.e. a bitwise copy of a value of t captures it
// completely. Strings count as POD: their bytes are immutable, so restoring
// the header restores the value.
func isPOD(t reflect.Type) bool {
	if v, ok := podCache.Load(t); ok {
		return v.(bool)
	}
	pod := computePOD(t)
	podCache.Store(t, pod)
	return pod
}

func computePOD(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Uintptr, reflect.Float32, reflect.Float64,
		reflect.Complex64, reflect.Complex128:
		return true
	case reflect.String:
		// String headers point into immutable bytes, but the header itself
		// contains a pointer, so raw byte restores must not carry it (the
		// arena copy would hide the pointer from the collector if the
		// destination were the only reference). Strings therefore ride the
		// typed path.
		return false
	case reflect.Array:
		return isPOD(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !isPOD(t.Field(i).Type) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// shallow reports whether t needs no interior walk beyond its own bytes:
// POD, strings (immutable bytes), or funcs (restored by identity).
func shallow(t reflect.Type) bool {
	if isPOD(t) {
		return true
	}
	switch t.Kind() {
	case reflect.String, reflect.Func:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !shallow(t.Field(i).Type) {
				return false
			}
		}
		return true
	case reflect.Array:
		return shallow(t.Elem())
	}
	return false
}

// captureRaw stages n bytes at ptr in the arena for a memmove restore.
func (w *walker) captureRaw(ptr unsafe.Pointer, n int) {
	if n == 0 {
		return
	}
	off := len(w.arena)
	w.arena = append(w.arena, unsafe.Slice((*byte)(ptr), n)...)
	w.raw = append(w.raw, rawRestore{dst: ptr, off: off, n: n})
}

// walkRegion captures the pointee at ptr and scans its interior.
func (w *walker) walkRegion(ptr unsafe.Pointer, t reflect.Type) {
	key := seenKey{ptr, t}
	if _, ok := w.seen[key]; ok {
		return
	}
	w.seen[key] = struct{}{}
	if isPOD(t) {
		w.captureRaw(ptr, int(t.Size()))
		return
	}
	shadow := reflect.New(t)
	shadow.Elem().Set(reflect.NewAt(t, ptr).Elem())
	w.regions = append(w.regions, region{ptr: ptr, typ: t, shadow: shadow})
	w.walkInterior(ptr, t)
}

// walkInterior scans the memory at ptr (type t, already captured by an
// enclosing copy) for state the shallow copy does not own: pointees, slice
// contents, map contents.
func (w *walker) walkInterior(ptr unsafe.Pointer, t reflect.Type) {
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if shallow(f.Type) {
				continue
			}
			w.walkInterior(unsafe.Add(ptr, f.Offset), f.Type)
		}
	case reflect.Array:
		et := t.Elem()
		if shallow(et) {
			return
		}
		sz := et.Size()
		for i := 0; i < t.Len(); i++ {
			w.walkInterior(unsafe.Add(ptr, uintptr(i)*sz), et)
		}
	case reflect.Pointer:
		if skipType(t) {
			return
		}
		p := *(*unsafe.Pointer)(ptr)
		if p == nil {
			return
		}
		w.walkRegion(p, t.Elem())
	case reflect.Slice:
		w.captureSlice(ptr, t)
	case reflect.Map:
		w.captureMap(ptr, t)
	case reflect.Interface:
		if skipType(t) {
			return
		}
		v := reflect.NewAt(t, ptr).Elem()
		if v.IsNil() {
			return
		}
		elem := v.Elem()
		if elem.Kind() == reflect.Pointer {
			if skipType(elem.Type()) || elem.IsNil() {
				return
			}
			w.walkRegion(elem.UnsafePointer(), elem.Type().Elem())
		}
		// A non-pointer concrete value boxed in an interface is immutable
		// through that interface (no pointer-receiver methods in its method
		// set), so restoring the interface words restores the value.
	case reflect.Func, reflect.String:
		// Func values restore by identity, string bytes are immutable; the
		// enclosing copy owns both headers.
	case reflect.Chan, reflect.UnsafePointer:
		panic(fmt.Sprintf("checkpoint: cannot snapshot %v (machine state must stay channel-free)", t))
	}
}

// captureSlice records a slice's contents and scans its elements. POD
// contents go to the byte arena; everything else gets a typed copy.
func (w *walker) captureSlice(ptr unsafe.Pointer, t reflect.Type) {
	if t == opSliceType {
		return // replayed program: immutable, shared, header-only
	}
	sv := reflect.NewAt(t, ptr).Elem()
	n := sv.Len()
	if n == 0 {
		return // header (incl. nil-ness) restored by the enclosing copy
	}
	et := t.Elem()
	base := sv.UnsafePointer()
	sz := et.Size()
	if isPOD(et) {
		w.captureRaw(base, n*int(sz))
		return
	}
	buf := reflect.MakeSlice(t, n, n)
	reflect.Copy(buf, sv)
	w.slices = append(w.slices, sliceCopy{ptr: ptr, typ: t, data: buf})
	if shallow(et) {
		return
	}
	for i := 0; i < n; i++ {
		w.walkInterior(unsafe.Add(base, uintptr(i)*sz), et)
	}
}

// captureMap records a map's entries and registers pointer values'
// pointees. The hot simulation maps (mem.Line keyed, POD values) restore
// through native clones; the generic reflect path covers the rest.
func (w *walker) captureMap(ptr unsafe.Pointer, t reflect.Type) {
	switch t {
	case lineTokenMapType:
		captureTypedMap[mem.Line, mem.Token](w, ptr)
		return
	case lineBoolMapType:
		captureTypedMap[mem.Line, bool](w, ptr)
		return
	case lineU64MapType:
		captureTypedMap[mem.Line, uint64](w, ptr)
		return
	}
	mv := reflect.NewAt(t, ptr).Elem()
	if mv.IsNil() {
		return
	}
	vt := t.Elem()
	ptrVal := vt.Kind() == reflect.Pointer
	sliceVal := vt.Kind() == reflect.Slice &&
		(isPOD(vt.Elem()) || vt.Elem().Kind() == reflect.Pointer)
	if !ptrVal && !sliceVal && !isPOD(vt) {
		panic(fmt.Sprintf("checkpoint: map value type %v needs deep copy; keep machine maps POD-, pointer-, or slice-valued", vt))
	}
	n := mv.Len()
	keys := reflect.MakeSlice(reflect.SliceOf(t.Key()), 0, n)
	vals := reflect.MakeSlice(reflect.SliceOf(vt), 0, n)
	it := mv.MapRange() //asaplint:ignore detcheck snapshot capture; entry order never reaches simulation results
	for it.Next() {
		keys = reflect.Append(keys, it.Key())
		v := it.Value()
		if sliceVal && v.Len() > 0 {
			// Detach slice values: the live slice keeps being appended to
			// (and mutated in place) after the capture, so the snapshot
			// needs its own backing array. Restore clones it again — see
			// restore — so later in-place writes through the map can never
			// reach the checkpoint's copy.
			d := reflect.MakeSlice(vt, v.Len(), v.Len())
			reflect.Copy(d, v)
			v = d
		}
		vals = reflect.Append(vals, v)
	}
	w.maps = append(w.maps, mapCopy{ptr: ptr, typ: t, keys: keys, vals: vals, cloneVals: sliceVal})
	switch {
	case ptrVal:
		pt := vt.Elem()
		for i := 0; i < vals.Len(); i++ {
			pv := vals.Index(i)
			if !pv.IsNil() {
				w.walkRegion(pv.UnsafePointer(), pt)
			}
		}
	case sliceVal && vt.Elem().Kind() == reflect.Pointer:
		pt := vt.Elem().Elem()
		for i := 0; i < vals.Len(); i++ {
			sv := vals.Index(i)
			for j := 0; j < sv.Len(); j++ {
				pv := sv.Index(j)
				if !pv.IsNil() {
					w.walkRegion(pv.UnsafePointer(), pt)
				}
			}
		}
	}
}

// captureTypedMap is the native snapshot of a POD-keyed, POD-valued map:
// one clone at capture, one clear+copy per restore — no reflect per entry.
func captureTypedMap[K comparable, V any](w *walker, ptr unsafe.Pointer) {
	m := *(*map[K]V)(ptr)
	if m == nil {
		return
	}
	snap := maps.Clone(m) //asaplint:ignore detcheck snapshot capture; entry order never reaches simulation results
	w.typed = append(w.typed, func() {
		live := *(*map[K]V)(ptr)
		clear(live)
		maps.Copy(live, snap) //asaplint:ignore detcheck in-place map refill; entry order never reaches simulation results
	})
}

// restore replays the captured actions, rewinding every reached object.
func (w *walker) restore() {
	for i := range w.regions {
		r := &w.regions[i]
		reflect.NewAt(r.typ, r.ptr).Elem().Set(r.shadow.Elem())
	}
	for i := range w.raw {
		r := &w.raw[i]
		copy(unsafe.Slice((*byte)(r.dst), r.n), w.arena[r.off:r.off+r.n])
	}
	for i := range w.slices {
		s := &w.slices[i]
		reflect.Copy(reflect.NewAt(s.typ, s.ptr).Elem(), s.data)
	}
	for i := range w.maps {
		mc := &w.maps[i]
		mv := reflect.NewAt(mc.typ, mc.ptr).Elem()
		mv.Clear()
		for j := 0; j < mc.keys.Len(); j++ {
			v := mc.vals.Index(j)
			if mc.cloneVals && v.Len() > 0 {
				d := reflect.MakeSlice(mc.typ.Elem(), v.Len(), v.Len())
				reflect.Copy(d, v)
				v = d
			}
			mv.SetMapIndex(mc.keys.Index(j), v)
		}
	}
	for _, fn := range w.typed {
		fn()
	}
}
