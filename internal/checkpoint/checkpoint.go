// Package checkpoint snapshots a complete simulated machine — caches and
// directory, persist buffers and epoch/recovery tables, memory-controller
// job and reply rings, model state, per-core trace cursors, and the sim
// engine's typed event heap with its free-list indices — so a run can be
// forked from a warmed state (Capture/Fork, in memory, O(state)) or saved
// to a compact versioned binary image and resumed in another process
// (Save/Load). Both paths continue byte-identically to an uninterrupted
// run: same results, same stats, same NVM image (pinned by the package's
// differential tests).
//
// This is the gem5 checkpointing workflow adapted to a deterministic
// single-goroutine simulator: because the machine is a pure object graph on
// one goroutine with no wall-clock or RNG inputs, a deep snapshot of that
// graph *is* the full architectural and microarchitectural state, and
// restoring it replays the identical future. The heavy user is the crash
// campaign (internal/crash), which forks one warmed machine per injection
// point instead of re-simulating the prefix N times.
package checkpoint

import (
	"fmt"
	"reflect"
	"unsafe"

	"asap/internal/machine"
	"asap/internal/sim"
)

// Checkpoint is an in-memory snapshot of one serial machine, taken by
// Capture. It rewinds that same machine instance: Fork puts the machine
// back into the captured state in place, preserving every object identity
// (pointers, closures, map and slice backing arrays), so in-flight
// continuations the model holds remain valid. Forks are therefore
// sequential — each Fork abandons whatever the previous fork simulated —
// which is exactly the shape a crash campaign needs: fork, crash, check,
// fork again.
type Checkpoint struct {
	m     *machine.Machine
	cycle sim.Cycles
	w     walker
}

// Capture snapshots m's full state at the current cycle. The machine must
// be serial (sharded machines span goroutines) and not mid-dispatch: call
// between Advance boundaries. Attached observability sinks (tracer,
// timeline, progress) are deliberately not rolled back by a later Fork —
// they are append-only history, not simulation state.
func Capture(m *machine.Machine) (*Checkpoint, error) {
	if m.Sharded() {
		return nil, fmt.Errorf("checkpoint: sharded machines cannot be captured (build with shards=1)")
	}
	c := &Checkpoint{m: m, cycle: m.Eng.Now()}
	c.w.seen = make(map[seenKey]struct{}, 256)
	c.w.walkRegion(unsafe.Pointer(m), reflect.TypeOf(*m))
	return c, nil
}

// Cycle reports the simulation time the snapshot was taken at.
func (c *Checkpoint) Cycle() sim.Cycles { return c.cycle }

// Machine returns the machine this checkpoint captured (and rewinds).
func (c *Checkpoint) Machine() *machine.Machine { return c.m }

// Fork rewinds the captured machine to the snapshot instant and returns it.
// The rewind is O(state): three linear passes (bitwise region copies, slice
// contents, map refills) with no serialization and no new object graph.
// After Fork the machine continues byte-identically to how it continued the
// first time — including a re-fork after running further: the restore also
// rewinds the engine clock, event heap, and sequence counters.
func (c *Checkpoint) Fork() *machine.Machine {
	c.w.restore()
	return c.m
}
