package checkpoint

// The binary checkpoint image: Save serializes a quiescent machine's full
// state — caches and directory, persist buffers, epoch/recovery tables,
// WPQ and controller rings, model state, trace cursors, and the engine's
// typed event heap — into a compact, versioned, checksummed byte image;
// Load rebuilds a machine that continues byte-identically.
//
// The format leans on the same property the in-memory Fork does:
// machine construction is deterministic. An image embeds the full run
// recipe (config, model name, trace) next to the state, and Load replays
// construction — machine.New — to obtain a fresh machine whose object
// graph has the construction-time shape, then decodes the state over it
// positionally. Both encoder and decoder traverse the graph with the same
// deterministic walk (struct fields in order, slice elements in order, map
// entries sorted by encoded key), so "the third pointer of the second
// core" means the same object on both sides:
//
//   - POD leaves encode as varints (field-wise, never raw struct bytes, so
//     padding can't leak and images are byte-stable across runs).
//   - Pointers carry def/ref tags: the first visit of a pointee assigns
//     the next dense id and encodes its contents; later visits reference
//     the id. The decoder mirrors the numbering, reusing the fresh
//     machine's pointee where construction provides one and allocating
//     where the state grew past construction (ledger records, delay
//     records, lock states).
//   - Func values are construction-time callbacks (stepFn, model done
//     hooks): the image records only non-nilness, and the decoder keeps
//     the fresh machine's function. Save co-traverses a pristine machine
//     built from the same recipe and refuses any func value construction
//     does not supply — a stored continuation cannot be rebuilt.
//   - Interfaces hold long-lived components (model, controllers, link):
//     def/ref over their pointees plus a dynamic type name check.
//   - The engine must be quiescent (sim.Engine.Quiesce): typed events
//     serialize by canonical receiver index, closure events cannot.
//
// Layout: magic, format version, then a SHA-256 digest of the remainder,
// then the digested payload: schema fingerprint (a hash of the machine's
// reflect type tree plus the model's), clock cycle, model name, config,
// trace (trace.Write), and the graph encoding. Any flipped or missing byte
// fails the digest before decoding begins, so corrupted and truncated
// images error cleanly; a schema change flips the fingerprint, so stale
// images from older builds are rejected rather than misread.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"unsafe"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/trace"
)

const (
	imageMagic   = "ASAPCKP1"
	imageVersion = 1

	// maxImageElems bounds any decoded collection length; with the digest
	// already verified this is defense in depth against resource blowups.
	maxImageElems = 1 << 27
	maxImageStr   = 1 << 20
)

// Tag bytes for pointer-shaped values.
const (
	tagNil  = 0
	tagDef  = 1 // first visit: id assigned implicitly, contents follow
	tagRef  = 2 // later visit: uvarint id follows
	tagKeep = 3 // opaque immutable boxed value: keep the fresh machine's
	tagSkip = 4 // dynamically skipped (observability sink in an interface)
)

// codecFail carries a codec error up through the recursive walk; Save and
// Load recover it (and any other panic) into a returned error.
type codecFail struct{ err error }

// memSpan is one captured memory extent, for the aliasing audit.
type memSpan struct {
	base uintptr
	size uintptr
	what string
}

// imgEncoder is the Save-side state.
type imgEncoder struct {
	buf []byte
	// ids assigns dense ids to pointees: the spine pass (see spine below)
	// numbers construction-backed objects first, the graph pass numbers
	// the rest in stream order. emitted marks ids whose contents have been
	// written; pairs maps a captured pointee to its pristine counterpart
	// discovered by the spine pass, for positions where the local
	// co-traversal has lost the pairing (first visit via a transient path).
	ids     map[seenKey]uint64
	emitted map[uint64]bool
	pairs   map[seenKey]unsafe.Pointer
	next    uint64
	spans   []memSpan
	path    []string
}

// imgDecoder is the Load-side state.
type imgDecoder struct {
	data []byte
	pos  int
	// table maps def ids (dense from 1) to the materialized pointees; the
	// spine pass pre-fills construction-backed entries from the fresh
	// machine, the graph pass appends the rest in stream order.
	table []reflect.Value
	path  []string
}

// hasRefs reports whether values of t can contain pointer or interface
// slots the spine pass cares about. Purely type-derived, so encoder and
// decoder prune identically. Maps are opaque to the spine (their iteration
// order cannot be paired), so they do not count.
var (
	hasRefsMu   sync.Mutex
	hasRefsMemo = map[reflect.Type]bool{}
)

func hasRefs(t reflect.Type) bool {
	hasRefsMu.Lock()
	defer hasRefsMu.Unlock()
	return hasRefsLocked(t)
}

func hasRefsLocked(t reflect.Type) bool {
	if v, ok := hasRefsMemo[t]; ok {
		return v
	}
	hasRefsMemo[t] = false // break recursive types; a cycle needs a pointer, caught below
	var v bool
	switch t.Kind() {
	case reflect.Pointer, reflect.Interface:
		v = true
	case reflect.Slice, reflect.Array:
		v = hasRefsLocked(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField() && !v; i++ {
			v = hasRefsLocked(t.Field(i).Type)
		}
	}
	hasRefsMemo[t] = v
	return v
}

func (e *imgEncoder) fail(format string, args ...any) {
	panic(codecFail{fmt.Errorf("checkpoint: encode %s: %s", strings.Join(e.path, "."), fmt.Sprintf(format, args...))})
}

func (d *imgDecoder) fail(format string, args ...any) {
	panic(codecFail{fmt.Errorf("checkpoint: decode %s: %s", strings.Join(d.path, "."), fmt.Sprintf(format, args...))})
}

// --- primitive writers/readers ---

func (e *imgEncoder) byte(b byte) { e.buf = append(e.buf, b) }

func (e *imgEncoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *imgEncoder) varint(v int64) {
	e.uvarint(uint64(v)<<1 ^ uint64(v>>63)) // zigzag
}

func (e *imgEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (d *imgDecoder) byteVal() byte {
	if d.pos >= len(d.data) {
		d.fail("truncated")
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *imgDecoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad varint")
	}
	d.pos += n
	return v
}

func (d *imgDecoder) varint() int64 {
	u := d.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (d *imgDecoder) str() string {
	n := d.uvarint()
	if n > maxImageStr || d.pos+int(n) > len(d.data) {
		d.fail("bad string length %d", n)
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// --- value codec ---

// imgDebugMarks, when non-nil, receives (buffer offset, path) pairs as the
// encoder descends — a test-only hook for attributing image bytes.
var imgDebugMarks func(off int, path string)

// pushPath/pop keep a human-readable location for error messages; the
// codec is the cold path, so the bookkeeping is free where it matters.
func (e *imgEncoder) push(seg string) {
	e.path = append(e.path, seg)
	if imgDebugMarks != nil {
		imgDebugMarks(len(e.buf), strings.Join(e.path, "."))
	}
}
func (e *imgEncoder) pop()            { e.path = e.path[:len(e.path)-1] }
func (d *imgDecoder) push(seg string) { d.path = append(d.path, seg) }
func (d *imgDecoder) pop()            { d.path = d.path[:len(d.path)-1] }

// encValue serializes the value of type t at ptr. pr is the pristine
// machine's value at the same structural position, or nil where the
// captured graph grew past construction.
func (e *imgEncoder) encValue(ptr, pr unsafe.Pointer, t reflect.Type) {
	v := reflect.NewAt(t, ptr).Elem()
	switch t.Kind() {
	case reflect.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		e.byte(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.varint(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.uvarint(v.Uint())
	case reflect.Float32:
		e.uvarint(uint64(math.Float32bits(float32(v.Float()))))
	case reflect.Float64:
		e.uvarint(math.Float64bits(v.Float()))
	case reflect.String:
		e.str(v.String())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			e.push(f.Name)
			var fpr unsafe.Pointer
			if pr != nil {
				fpr = unsafe.Add(pr, f.Offset)
			}
			e.encValue(unsafe.Add(ptr, f.Offset), fpr, f.Type)
			e.pop()
		}
	case reflect.Array:
		et := t.Elem()
		sz := et.Size()
		for i := 0; i < t.Len(); i++ {
			var epr unsafe.Pointer
			if pr != nil {
				epr = unsafe.Add(pr, uintptr(i)*sz)
			}
			e.encValue(unsafe.Add(ptr, uintptr(i)*sz), epr, et)
		}
	case reflect.Slice:
		e.encSlice(ptr, pr, t)
	case reflect.Map:
		e.encMap(ptr, t)
	case reflect.Pointer:
		e.encPtr(ptr, pr, t)
	case reflect.Interface:
		e.encIface(ptr, pr, t)
	case reflect.Func:
		if v.IsNil() {
			e.byte(tagNil)
			return
		}
		if pr == nil || reflect.NewAt(t, pr).Elem().IsNil() {
			// A live closure construction does not supply is a blocked
			// operation's resume continuation: the machine is mid-operation,
			// not quiescent. SaveNextQuiescent steps past these instants.
			panic(codecFail{fmt.Errorf("%w: stored continuation at %s (%v)", ErrNotQuiescent, strings.Join(e.path, "."), t)})
		}
		e.byte(tagDef)
	default:
		e.fail("unsupported kind %v", t.Kind())
	}
}

// decValue deserializes the value of type t into the fresh machine's
// memory at ptr, mirroring encValue exactly.
func (d *imgDecoder) decValue(ptr unsafe.Pointer, t reflect.Type) {
	v := reflect.NewAt(t, ptr).Elem()
	switch t.Kind() {
	case reflect.Bool:
		v.SetBool(d.byteVal() != 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		x := d.varint()
		if v.OverflowInt(x) {
			d.fail("int overflow")
		}
		v.SetInt(x)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		x := d.uvarint()
		if v.OverflowUint(x) {
			d.fail("uint overflow")
		}
		v.SetUint(x)
	case reflect.Float32:
		u := d.uvarint()
		if u > math.MaxUint32 {
			d.fail("float32 overflow")
		}
		v.SetFloat(float64(math.Float32frombits(uint32(u))))
	case reflect.Float64:
		v.SetFloat(math.Float64frombits(d.uvarint()))
	case reflect.String:
		v.SetString(d.str())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			d.push(f.Name)
			d.decValue(unsafe.Add(ptr, f.Offset), f.Type)
			d.pop()
		}
	case reflect.Array:
		et := t.Elem()
		sz := et.Size()
		for i := 0; i < t.Len(); i++ {
			d.decValue(unsafe.Add(ptr, uintptr(i)*sz), et)
		}
	case reflect.Slice:
		d.decSlice(ptr, t)
	case reflect.Map:
		d.decMap(ptr, t)
	case reflect.Pointer:
		d.decPtr(ptr, t)
	case reflect.Interface:
		d.decIface(ptr, t)
	case reflect.Func:
		if d.byteVal() == tagNil {
			v.SetZero()
			return
		}
		if v.IsNil() {
			d.fail("image has a func value construction did not supply (stored continuation)")
		}
		// Keep the fresh machine's construction-time callback.
	default:
		d.fail("unsupported kind %v", t.Kind())
	}
}

// encSlice writes nil-ness, length, and elements. []trace.Op headers are
// windows into the immutable replayed program: only the length is written,
// and the decoder keeps the fresh machine's own window.
func (e *imgEncoder) encSlice(ptr, pr unsafe.Pointer, t reflect.Type) {
	sv := reflect.NewAt(t, ptr).Elem()
	if t == opSliceType {
		e.uvarint(uint64(sv.Len()))
		return
	}
	if sv.IsNil() {
		e.uvarint(0)
		return
	}
	n := sv.Len()
	e.uvarint(uint64(n) + 1)
	if n == 0 {
		return
	}
	et := t.Elem()
	base := sv.UnsafePointer()
	sz := et.Size()
	var prBase unsafe.Pointer
	if pr != nil {
		pv := reflect.NewAt(t, pr).Elem()
		if pv.Len() == n {
			prBase = pv.UnsafePointer()
		}
	}
	// Pristine-backed equal-length slices decode in place over the fresh
	// machine's backing, so construction-time aliasing (two headers over
	// one array) is reproduced; only backings the decoder would rebuild
	// must prove nothing else points into them.
	if sz > 0 && prBase == nil {
		e.spans = append(e.spans, memSpan{base: uintptr(base), size: uintptr(n) * sz, what: "slice " + strings.Join(e.path, ".")})
	}
	for i := 0; i < n; i++ {
		var epr unsafe.Pointer
		if prBase != nil {
			epr = unsafe.Add(prBase, uintptr(i)*sz)
		}
		e.encValue(unsafe.Add(base, uintptr(i)*sz), epr, et)
	}
}

func (d *imgDecoder) decSlice(ptr unsafe.Pointer, t reflect.Type) {
	v := reflect.NewAt(t, ptr).Elem()
	if t == opSliceType {
		if n := d.uvarint(); n != uint64(v.Len()) {
			d.fail("trace window length %d does not match the embedded trace (%d)", v.Len(), n)
		}
		return
	}
	raw := d.uvarint()
	if raw == 0 {
		v.SetZero()
		return
	}
	n := raw - 1
	if n > maxImageElems {
		d.fail("slice length %d exceeds limit", n)
	}
	if uint64(v.Len()) != n {
		v.Set(reflect.MakeSlice(t, int(n), int(n)))
	} else if v.IsNil() && n == 0 {
		v.Set(reflect.MakeSlice(t, 0, 0))
	}
	if n == 0 {
		return
	}
	et := t.Elem()
	base := v.UnsafePointer()
	sz := et.Size()
	for i := uint64(0); i < n; i++ {
		d.decValue(unsafe.Add(base, uintptr(i)*sz), et)
	}
}

// encMap writes entries sorted by their encoded key bytes — the only
// deterministic order available for arbitrary POD keys. Keys must be POD
// or strings (every machine map qualifies); values go through the full
// codec via a temporary, so pointer values join the def/ref graph.
func (e *imgEncoder) encMap(ptr unsafe.Pointer, t reflect.Type) {
	mv := reflect.NewAt(t, ptr).Elem()
	if mv.IsNil() {
		e.uvarint(0)
		return
	}
	kt, vt := t.Key(), t.Elem()
	if !isPOD(kt) && kt.Kind() != reflect.String {
		e.fail("map key type %v is not POD", kt)
	}
	n := mv.Len()
	e.uvarint(uint64(n) + 1)
	type entry struct {
		kb  []byte
		val reflect.Value
	}
	entries := make([]entry, 0, n)
	it := mv.MapRange() //asaplint:ignore detcheck entries are sorted by encoded key before writing
	for it.Next() {
		sub := imgEncoder{path: e.path}
		kTmp := reflect.New(kt)
		kTmp.Elem().Set(it.Key())
		sub.encValue(kTmp.UnsafePointer(), nil, kt)
		vTmp := reflect.New(vt)
		vTmp.Elem().Set(it.Value())
		entries = append(entries, entry{kb: sub.buf, val: vTmp})
	}
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].kb, entries[j].kb) < 0 })
	for _, ent := range entries {
		e.buf = append(e.buf, ent.kb...)
		e.encValue(ent.val.UnsafePointer(), nil, vt)
	}
}

func (d *imgDecoder) decMap(ptr unsafe.Pointer, t reflect.Type) {
	v := reflect.NewAt(t, ptr).Elem()
	raw := d.uvarint()
	if raw == 0 {
		v.SetZero()
		return
	}
	n := raw - 1
	if n > maxImageElems {
		d.fail("map length %d exceeds limit", n)
	}
	if v.IsNil() {
		v.Set(reflect.MakeMapWithSize(t, int(n)))
	} else {
		v.Clear()
	}
	kt, vt := t.Key(), t.Elem()
	for i := uint64(0); i < n; i++ {
		kTmp := reflect.New(kt)
		d.decValue(kTmp.UnsafePointer(), kt)
		vTmp := reflect.New(vt)
		d.decValue(vTmp.UnsafePointer(), vt)
		v.SetMapIndex(kTmp.Elem(), vTmp.Elem())
	}
}

// defID returns the id for a first-visit pointee (spine-assigned or newly
// numbered) and the pristine counterpart to co-traverse with — the local
// one when the current position has it, else the spine pairing.
func (e *imgEncoder) defID(key seenKey, localPr unsafe.Pointer) (uint64, unsafe.Pointer) {
	id, ok := e.ids[key]
	if !ok {
		e.next++
		id = e.next
		e.ids[key] = id
	}
	e.emitted[id] = true
	prp := localPr
	if prp == nil {
		prp = e.pairs[key]
	}
	// Construction-backed pointees decode into the fresh machine's own
	// object, so captured-side aliasing (pointers into the middle of the
	// machine, say) is reproduced and needs no audit span. Only mid-run
	// allocations — which the decoder rebuilds with reflect.New — must
	// prove they are not aliased.
	if prp == nil {
		if sz := key.typ.Size(); sz > 0 {
			e.spans = append(e.spans, memSpan{base: uintptr(key.ptr), size: sz, what: "pointee " + strings.Join(e.path, ".")})
		}
	}
	return id, prp
}

// encPtr writes the def/ref graph structure for one pointer.
func (e *imgEncoder) encPtr(ptr, pr unsafe.Pointer, t reflect.Type) {
	if skipType(t) {
		return // observability sink: not part of the image
	}
	p := *(*unsafe.Pointer)(ptr)
	if p == nil {
		e.byte(tagNil)
		return
	}
	et := t.Elem()
	key := seenKey{ptr: p, typ: et}
	if id, ok := e.ids[key]; ok && e.emitted[id] {
		e.byte(tagRef)
		e.uvarint(id)
		return
	}
	var localPr unsafe.Pointer
	if pr != nil {
		localPr = *(*unsafe.Pointer)(pr)
	}
	id, prp := e.defID(key, localPr)
	e.byte(tagDef)
	e.uvarint(id)
	e.encValue(p, prp, et)
}

func (d *imgDecoder) decPtr(ptr unsafe.Pointer, t reflect.Type) {
	if skipType(t) {
		return // fresh machine's (nil) sink stands
	}
	v := reflect.NewAt(t, ptr).Elem()
	switch tag := d.byteVal(); tag {
	case tagNil:
		v.SetZero()
	case tagDef:
		target := d.defTarget(d.uvarint(), v, t)
		v.Set(target)
		d.decValue(target.UnsafePointer(), t.Elem())
	case tagRef:
		id := d.uvarint()
		if id == 0 || id > uint64(len(d.table)) {
			d.fail("dangling pointer ref %d", id)
		}
		tv := d.table[id-1]
		if tv.Type() != t {
			d.fail("pointer ref %d has type %v, want %v", id, tv.Type(), t)
		}
		v.Set(tv)
	default:
		d.fail("bad pointer tag %d", tag)
	}
}

// defTarget resolves a def id to the object that carries the decoded
// contents: a spine-registered fresh pointee, the fresh machine's pointee
// at this position, or (for mid-run allocations) a new object. Non-spine
// ids must arrive in stream order — anything else is a corrupt graph.
func (d *imgDecoder) defTarget(id uint64, v reflect.Value, t reflect.Type) reflect.Value {
	if id == 0 {
		d.fail("def id 0")
	}
	if id <= uint64(len(d.table)) {
		tv := d.table[id-1]
		if tv.Type() != t {
			d.fail("def %d has type %v, want %v", id, tv.Type(), t)
		}
		return tv
	}
	if id != uint64(len(d.table))+1 {
		d.fail("def id %d out of order (table has %d)", id, len(d.table))
	}
	var target reflect.Value
	if !v.IsNil() {
		target = reflect.NewAt(t.Elem(), v.UnsafePointer())
	} else {
		target = reflect.New(t.Elem())
	}
	d.table = append(d.table, target)
	return target
}

// encIface handles interface-typed state: long-lived components referenced
// through interfaces (model, controllers, link) encode as def/ref over
// their pointees with a dynamic-type check; non-pointer boxed values are
// immutable through the interface and keep the fresh machine's copy.
func (e *imgEncoder) encIface(ptr, pr unsafe.Pointer, t reflect.Type) {
	if skipType(t) {
		return
	}
	v := reflect.NewAt(t, ptr).Elem()
	if v.IsNil() {
		e.byte(tagNil)
		return
	}
	elem := v.Elem()
	if elem.Kind() != reflect.Pointer {
		e.byte(tagKeep)
		e.str(elem.Type().String())
		return
	}
	if skipType(elem.Type()) {
		e.byte(tagSkip)
		return
	}
	if elem.IsNil() {
		e.fail("typed-nil %v inside interface", elem.Type())
	}
	p := elem.UnsafePointer()
	et := elem.Type().Elem()
	key := seenKey{ptr: p, typ: et}
	if id, ok := e.ids[key]; ok && e.emitted[id] {
		e.byte(tagRef)
		e.uvarint(id)
		return
	}
	var localPr unsafe.Pointer
	if pr != nil {
		pv := reflect.NewAt(t, pr).Elem()
		if !pv.IsNil() && pv.Elem().Type() == elem.Type() {
			localPr = pv.Elem().UnsafePointer()
		}
	}
	id, prp := e.defID(key, localPr)
	e.byte(tagDef)
	e.uvarint(id)
	e.str(elem.Type().String())
	e.encValue(p, prp, et)
}

func (d *imgDecoder) decIface(ptr unsafe.Pointer, t reflect.Type) {
	if skipType(t) {
		return
	}
	v := reflect.NewAt(t, ptr).Elem()
	switch tag := d.byteVal(); tag {
	case tagNil:
		v.SetZero()
	case tagKeep:
		want := d.str()
		if v.IsNil() || v.Elem().Type().String() != want {
			d.fail("boxed value mismatch: image has %s, fresh machine has %v", want, v)
		}
	case tagSkip:
		// Dynamically skipped observability value; fresh machine stands.
	case tagDef:
		id := d.uvarint()
		want := d.str()
		var target reflect.Value
		if id >= 1 && id <= uint64(len(d.table)) {
			target = d.table[id-1]
		} else if id == uint64(len(d.table))+1 &&
			!v.IsNil() && v.Elem().Kind() == reflect.Pointer && !v.Elem().IsNil() {
			pe := v.Elem()
			target = reflect.NewAt(pe.Type().Elem(), pe.UnsafePointer())
			d.table = append(d.table, target)
		} else {
			d.fail("interface def %s (id %d) has no fresh counterpart — construction diverged", want, id)
		}
		if target.Type().String() != want {
			d.fail("interface def %d is %v, image says %s", id, target.Type(), want)
		}
		if !target.Type().Implements(t) {
			d.fail("interface def %d (%v) does not implement %v", id, target.Type(), t)
		}
		v.Set(target)
		d.decValue(target.UnsafePointer(), target.Type().Elem())
	case tagRef:
		id := d.uvarint()
		if id == 0 || id > uint64(len(d.table)) {
			d.fail("dangling interface ref %d", id)
		}
		tv := d.table[id-1]
		if !tv.Type().Implements(t) {
			d.fail("interface ref %d (%v) does not implement %v", id, tv.Type(), t)
		}
		v.Set(tv)
	default:
		d.fail("bad interface tag %d", tag)
	}
}

// auditSpans rejects captures whose pointer graph aliases memory in ways
// the positional decode cannot reproduce: a pointee inside a slice backing
// (the decoder may reallocate the backing) or overlapping pointees
// (pointers into the middle of another object). Construction-time aliasing
// is reproduced by pointee reuse; this audit catches the mid-run kind.
func (e *imgEncoder) auditSpans() {
	spans := e.spans
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	for i := 1; i < len(spans); i++ {
		prev, cur := &spans[i-1], &spans[i]
		if cur.base < prev.base+prev.size {
			panic(codecFail{fmt.Errorf("checkpoint: encode: %s overlaps %s — interior pointers are not serializable", cur.what, prev.what)})
		}
	}
}

// --- spine pass ---
//
// Objects allocated at construction (cores, model internals, controllers,
// the engine) can be reached through transient state too: an in-flight
// controller job holds its requesting core through a FlushReplier
// interface, and the graph walk may meet the core there first — a position
// where the pristine machine has nothing, so the co-traversal pairing is
// lost and construction-supplied func fields cannot be validated, and the
// decoder would not know which fresh object carries the state.
//
// The spine pass fixes identity up front. Before the graph body, the
// encoder co-walks the captured and pristine machines over pointer and
// interface slots; wherever both sides are populated compatibly it assigns
// the next dense id to the captured pointee, records the pristine pairing,
// and recurses. Each slot visited emits one bit — paired or not — into the
// image, and the decoder replays the identical walk over the fresh machine,
// consuming the bits and pre-filling its id table with the fresh pointees.
// Construction determinism makes the three walks isomorphic; the bitstream
// carries the only information the decoder cannot reconstruct (which slots
// the *captured* machine had populated).

func (e *imgEncoder) spine(cp, pp unsafe.Pointer, t reflect.Type) {
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !hasRefs(f.Type) {
				continue
			}
			e.spine(unsafe.Add(cp, f.Offset), unsafe.Add(pp, f.Offset), f.Type)
		}
	case reflect.Array:
		et := t.Elem()
		if !hasRefs(et) {
			return
		}
		sz := et.Size()
		for i := 0; i < t.Len(); i++ {
			e.spine(unsafe.Add(cp, uintptr(i)*sz), unsafe.Add(pp, uintptr(i)*sz), et)
		}
	case reflect.Slice:
		et := t.Elem()
		if t == opSliceType || !hasRefs(et) {
			return
		}
		cv := reflect.NewAt(t, cp).Elem()
		pv := reflect.NewAt(t, pp).Elem()
		if cv.IsNil() || pv.IsNil() || cv.Len() != pv.Len() {
			e.byte(0)
			return
		}
		e.byte(1)
		cb, pb := cv.UnsafePointer(), pv.UnsafePointer()
		sz := et.Size()
		for i := 0; i < cv.Len(); i++ {
			e.spine(unsafe.Add(cb, uintptr(i)*sz), unsafe.Add(pb, uintptr(i)*sz), et)
		}
	case reflect.Pointer:
		if skipType(t) {
			return
		}
		cptr := *(*unsafe.Pointer)(cp)
		pptr := *(*unsafe.Pointer)(pp)
		if cptr == nil || pptr == nil {
			e.byte(0)
			return
		}
		e.byte(1)
		e.spinePair(cptr, pptr, t.Elem())
	case reflect.Interface:
		if skipType(t) {
			return
		}
		cv := reflect.NewAt(t, cp).Elem()
		pv := reflect.NewAt(t, pp).Elem()
		if cv.IsNil() || pv.IsNil() {
			e.byte(0)
			return
		}
		ce, pe := cv.Elem(), pv.Elem()
		if ce.Kind() != reflect.Pointer || ce.Type() != pe.Type() ||
			skipType(ce.Type()) || ce.IsNil() || pe.IsNil() {
			e.byte(0)
			return
		}
		e.byte(1)
		e.spinePair(ce.UnsafePointer(), pe.UnsafePointer(), ce.Type().Elem())
	}
}

// spinePair registers one captured/pristine pointee pair and recurses into
// it on first registration (later sightings keep the earlier id, and the
// decoder makes the same already-seen decision on its side).
func (e *imgEncoder) spinePair(cptr, pptr unsafe.Pointer, et reflect.Type) {
	key := seenKey{ptr: cptr, typ: et}
	if _, ok := e.ids[key]; ok {
		return
	}
	e.next++
	e.ids[key] = e.next
	e.pairs[key] = pptr
	e.spine(cptr, pptr, et)
}

func (d *imgDecoder) spineWalk(fp unsafe.Pointer, t reflect.Type, seen map[seenKey]bool) {
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !hasRefs(f.Type) {
				continue
			}
			d.spineWalk(unsafe.Add(fp, f.Offset), f.Type, seen)
		}
	case reflect.Array:
		et := t.Elem()
		if !hasRefs(et) {
			return
		}
		sz := et.Size()
		for i := 0; i < t.Len(); i++ {
			d.spineWalk(unsafe.Add(fp, uintptr(i)*sz), et, seen)
		}
	case reflect.Slice:
		et := t.Elem()
		if t == opSliceType || !hasRefs(et) {
			return
		}
		if d.byteVal() == 0 {
			return
		}
		fv := reflect.NewAt(t, fp).Elem()
		if fv.IsNil() {
			d.fail("spine: image pairs a slice the fresh machine does not have")
		}
		fb := fv.UnsafePointer()
		sz := et.Size()
		for i := 0; i < fv.Len(); i++ {
			d.spineWalk(unsafe.Add(fb, uintptr(i)*sz), et, seen)
		}
	case reflect.Pointer:
		if skipType(t) {
			return
		}
		if d.byteVal() == 0 {
			return
		}
		fptr := *(*unsafe.Pointer)(fp)
		if fptr == nil {
			d.fail("spine: image pairs a pointer the fresh machine does not have — construction diverged")
		}
		d.spineSeen(fptr, t.Elem(), seen)
	case reflect.Interface:
		if skipType(t) {
			return
		}
		if d.byteVal() == 0 {
			return
		}
		fv := reflect.NewAt(t, fp).Elem()
		if fv.IsNil() || fv.Elem().Kind() != reflect.Pointer || fv.Elem().IsNil() {
			d.fail("spine: image pairs an interface the fresh machine does not have — construction diverged")
		}
		fe := fv.Elem()
		d.spineSeen(fe.UnsafePointer(), fe.Type().Elem(), seen)
	}
}

func (d *imgDecoder) spineSeen(fptr unsafe.Pointer, et reflect.Type, seen map[seenKey]bool) {
	key := seenKey{ptr: fptr, typ: et}
	if seen[key] {
		return
	}
	seen[key] = true
	d.table = append(d.table, reflect.NewAt(et, fptr))
	d.spineWalk(fptr, et, seen)
}

// --- fingerprint ---

// typeFingerprint hashes the reflect type tree reachable from the given
// roots: kinds, type names, sizes, field names and order. Any change to
// the machine's state schema flips the fingerprint, so images from an
// older build are rejected with a clear error instead of misdecoded.
func typeFingerprint(roots ...reflect.Type) [8]byte {
	h := sha256.New()
	seen := make(map[reflect.Type]bool)
	var walk func(t reflect.Type)
	walk = func(t reflect.Type) {
		fmt.Fprintf(h, "%s|%s|%d;", t.Kind(), t.String(), t.Size())
		if seen[t] {
			return
		}
		seen[t] = true
		switch t.Kind() {
		case reflect.Struct:
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				fmt.Fprintf(h, "f%d=%s:", i, f.Name)
				walk(f.Type)
			}
		case reflect.Pointer, reflect.Slice, reflect.Array:
			walk(t.Elem())
		case reflect.Map:
			walk(t.Key())
			walk(t.Elem())
		}
	}
	for _, t := range roots {
		walk(t)
	}
	var fp [8]byte
	copy(fp[:], h.Sum(nil))
	return fp
}

var machineType = reflect.TypeOf(machine.Machine{})

// --- Save / Load ---

// Save serializes m into a checkpoint image. The machine must be serial,
// unobserved (no tracer/timeline/progress attached), and quiescent: no
// closure-form events in flight (sim.Engine.Quiesce). Crash campaigns and
// warm-started sweeps use the in-memory Capture/Fork; Save is the
// cross-process form — archive a warmed machine, restore it in another
// process, and continue byte-identically.
func Save(m *machine.Machine) (img []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cf, ok := r.(codecFail); ok {
				img, err = nil, cf.err
				return
			}
			img, err = nil, fmt.Errorf("checkpoint: save panicked: %v", r)
		}
	}()
	if m.Sharded() {
		return nil, fmt.Errorf("checkpoint: cannot save a sharded machine (serial engines only)")
	}
	if m.HasObservers() {
		return nil, fmt.Errorf("checkpoint: cannot save an observed machine (detach tracer/timeline/progress first)")
	}
	if m.Trace() == nil {
		return nil, fmt.Errorf("checkpoint: machine has no trace to embed")
	}
	if qerr := m.Eng.Quiesce(); qerr != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotQuiescent, qerr)
	}
	pristine, err := machine.New(m.Cfg, m.Model.Name(), m.Trace())
	if err != nil {
		return nil, fmt.Errorf("checkpoint: rebuilding pristine machine: %w", err)
	}

	e := &imgEncoder{
		ids:     make(map[seenKey]uint64, 256),
		emitted: make(map[uint64]bool, 256),
		pairs:   make(map[seenKey]unsafe.Pointer, 256),
	}
	fp := typeFingerprint(machineType, reflect.TypeOf(m.Model).Elem())
	e.buf = append(e.buf, fp[:]...)
	e.uvarint(m.Eng.Now())
	e.str(m.Model.Name())
	cfg := m.Cfg
	e.push("config")
	e.encValue(unsafe.Pointer(&cfg), nil, reflect.TypeOf(cfg))
	e.pop()
	var tb bytes.Buffer
	if err := m.Trace().Write(&tb); err != nil {
		return nil, fmt.Errorf("checkpoint: embedding trace: %w", err)
	}
	e.uvarint(uint64(tb.Len()))
	e.buf = append(e.buf, tb.Bytes()...)

	// Spine pass: pin identities of construction-backed objects (the root
	// machine is id 1), then encode the graph body over them.
	rootKey := seenKey{ptr: unsafe.Pointer(m), typ: machineType}
	e.next = 1
	e.ids[rootKey] = 1
	e.emitted[1] = true // root contents are the graph body itself
	e.pairs[rootKey] = unsafe.Pointer(pristine)
	e.push("spine")
	e.spine(unsafe.Pointer(m), unsafe.Pointer(pristine), machineType)
	e.pop()
	e.push("machine")
	e.encValue(unsafe.Pointer(m), unsafe.Pointer(pristine), machineType)
	e.pop()
	e.auditSpans()

	out := make([]byte, 0, len(e.buf)+8+2+32)
	out = append(out, imageMagic...)
	out = binary.AppendUvarint(out, imageVersion)
	sum := sha256.Sum256(e.buf)
	out = append(out, sum[:]...)
	out = append(out, e.buf...)
	return out, nil
}

// Load rebuilds a machine from a checkpoint image. The returned machine
// continues byte-identically with the one Save captured: same results,
// same stats, same NVM images (pinned by TestImageRoundtrip). Corrupted,
// truncated, or wrong-version images return errors, never panic.
func Load(img []byte) (m *machine.Machine, err error) {
	defer func() {
		if r := recover(); r != nil {
			if cf, ok := r.(codecFail); ok {
				m, err = nil, cf.err
				return
			}
			m, err = nil, fmt.Errorf("checkpoint: load panicked: %v", r)
		}
	}()
	if len(img) < len(imageMagic)+1+32 {
		return nil, fmt.Errorf("checkpoint: image truncated (%d bytes)", len(img))
	}
	if string(img[:len(imageMagic)]) != imageMagic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", img[:len(imageMagic)])
	}
	rest := img[len(imageMagic):]
	ver, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("checkpoint: bad version varint")
	}
	if ver != imageVersion {
		return nil, fmt.Errorf("checkpoint: image version %d, this build reads version %d", ver, imageVersion)
	}
	rest = rest[n:]
	if len(rest) < 32 {
		return nil, fmt.Errorf("checkpoint: image truncated before digest")
	}
	want := rest[:32]
	payload := rest[32:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("checkpoint: digest mismatch — image corrupted or truncated")
	}

	d := &imgDecoder{data: payload}
	var fp [8]byte
	if d.pos+8 > len(d.data) {
		return nil, fmt.Errorf("checkpoint: image truncated in fingerprint")
	}
	copy(fp[:], d.data[d.pos:])
	d.pos += 8
	cycle := d.uvarint()
	modelName := d.str()
	var cfg config.Config
	d.push("config")
	d.decValue(unsafe.Pointer(&cfg), reflect.TypeOf(cfg))
	d.pop()
	tn := d.uvarint()
	if tn > uint64(len(d.data)-d.pos) {
		return nil, fmt.Errorf("checkpoint: trace block overruns image")
	}
	tr, err := trace.Read(bytes.NewReader(d.data[d.pos : d.pos+int(tn)]))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: embedded trace: %w", err)
	}
	d.pos += int(tn)
	tr.Compile()

	fresh, err := machine.New(cfg, modelName, tr)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: rebuilding machine: %w", err)
	}
	if got := typeFingerprint(machineType, reflect.TypeOf(fresh.Model).Elem()); got != fp {
		return nil, fmt.Errorf("checkpoint: schema fingerprint mismatch — image was saved by a different build")
	}

	d.table = append(d.table, reflect.ValueOf(fresh)) // id 1 = the machine
	seen := map[seenKey]bool{{ptr: unsafe.Pointer(fresh), typ: machineType}: true}
	d.push("spine")
	d.spineWalk(unsafe.Pointer(fresh), machineType, seen)
	d.pop()
	d.push("machine")
	d.decValue(unsafe.Pointer(fresh), machineType)
	d.pop()
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes after graph", len(d.data)-d.pos)
	}
	if fresh.Eng.Now() != cycle {
		return nil, fmt.Errorf("checkpoint: decoded clock %d does not match header cycle %d", fresh.Eng.Now(), cycle)
	}
	return fresh, nil
}

// ErrNotQuiescent reports that Save found live closures — the machine is
// between instants the image format can represent. Two sources: engine
// closure events (models that drive flush loops via Eng.After), and
// blocked-operation continuations inside any model (a stalled store, an
// ofence waiting on a full epoch table, a dfence mid-drain). Both clear on
// their own as the run proceeds.
var ErrNotQuiescent = fmt.Errorf("checkpoint: machine not quiescent")

// hasFuncPath reports whether values of t can reach a func value. The
// continuation scan prunes by it, which keeps the per-cycle quiescence
// probe off the big POD regions (caches, directory, ledger).
var hasFuncPathMemo = map[reflect.Type]bool{}

func hasFuncPathLocked(t reflect.Type) bool {
	if v, ok := hasFuncPathMemo[t]; ok {
		return v
	}
	hasFuncPathMemo[t] = false // break type cycles
	var v bool
	switch t.Kind() {
	case reflect.Func:
		v = true
	case reflect.Interface:
		v = true // dynamic contents unknown
	case reflect.Pointer, reflect.Slice, reflect.Array:
		v = hasFuncPathLocked(t.Elem())
	case reflect.Map:
		v = hasFuncPathLocked(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField() && !v; i++ {
			v = hasFuncPathLocked(t.Field(i).Type)
		}
	}
	hasFuncPathMemo[t] = v
	return v
}

func hasFuncPath(t reflect.Type) bool {
	hasRefsMu.Lock()
	defer hasRefsMu.Unlock()
	return hasFuncPathLocked(t)
}

// contScan is the cheap quiescence probe behind SaveNextQuiescent: a
// func-pruned walk that reports the first live closure construction does
// not supply, without paying for an encode attempt. pair mirrors the
// encoder's spine pass (identity for construction-backed objects); scan
// then visits every captured object that can reach a func.
type contScan struct {
	pairs map[seenKey]unsafe.Pointer
	seen  map[seenKey]bool
	path  []string
}

func (s *contScan) pair(cp, pp unsafe.Pointer, t reflect.Type) {
	if !hasRefs(t) || !hasFuncPath(t) {
		return
	}
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			s.pair(unsafe.Add(cp, f.Offset), unsafe.Add(pp, f.Offset), f.Type)
		}
	case reflect.Array:
		sz := t.Elem().Size()
		for i := 0; i < t.Len(); i++ {
			s.pair(unsafe.Add(cp, uintptr(i)*sz), unsafe.Add(pp, uintptr(i)*sz), t.Elem())
		}
	case reflect.Slice:
		if t == opSliceType {
			return
		}
		cv := reflect.NewAt(t, cp).Elem()
		pv := reflect.NewAt(t, pp).Elem()
		if cv.IsNil() || pv.IsNil() || cv.Len() != pv.Len() {
			return
		}
		cb, pb := cv.UnsafePointer(), pv.UnsafePointer()
		sz := t.Elem().Size()
		for i := 0; i < cv.Len(); i++ {
			s.pair(unsafe.Add(cb, uintptr(i)*sz), unsafe.Add(pb, uintptr(i)*sz), t.Elem())
		}
	case reflect.Pointer:
		if skipType(t) {
			return
		}
		cptr := *(*unsafe.Pointer)(cp)
		pptr := *(*unsafe.Pointer)(pp)
		if cptr == nil || pptr == nil {
			return
		}
		s.pairObj(cptr, pptr, t.Elem())
	case reflect.Interface:
		if skipType(t) {
			return
		}
		cv := reflect.NewAt(t, cp).Elem()
		pv := reflect.NewAt(t, pp).Elem()
		if cv.IsNil() || pv.IsNil() {
			return
		}
		ce, pe := cv.Elem(), pv.Elem()
		if ce.Kind() != reflect.Pointer || ce.Type() != pe.Type() || skipType(ce.Type()) || ce.IsNil() {
			return
		}
		s.pairObj(ce.UnsafePointer(), pe.UnsafePointer(), ce.Type().Elem())
	}
}

func (s *contScan) pairObj(cptr, pptr unsafe.Pointer, et reflect.Type) {
	key := seenKey{ptr: cptr, typ: et}
	if _, ok := s.pairs[key]; ok {
		return
	}
	s.pairs[key] = pptr
	s.pair(cptr, pptr, et)
}

// scan walks the captured graph; pp is the paired pristine position or nil
// where construction has no counterpart. Returns non-nil on the first
// stored continuation.
func (s *contScan) scan(cp, pp unsafe.Pointer, t reflect.Type) error {
	if !hasFuncPath(t) {
		return nil
	}
	switch t.Kind() {
	case reflect.Func:
		if !reflect.NewAt(t, cp).Elem().IsNil() {
			if pp == nil || reflect.NewAt(t, pp).Elem().IsNil() {
				return fmt.Errorf("%w: stored continuation at %s (%v)", ErrNotQuiescent, strings.Join(s.path, "."), t)
			}
		}
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			var fpp unsafe.Pointer
			if pp != nil {
				fpp = unsafe.Add(pp, f.Offset)
			}
			s.path = append(s.path, f.Name)
			err := s.scan(unsafe.Add(cp, f.Offset), fpp, f.Type)
			s.path = s.path[:len(s.path)-1]
			if err != nil {
				return err
			}
		}
	case reflect.Array:
		sz := t.Elem().Size()
		for i := 0; i < t.Len(); i++ {
			var epp unsafe.Pointer
			if pp != nil {
				epp = unsafe.Add(pp, uintptr(i)*sz)
			}
			if err := s.scan(unsafe.Add(cp, uintptr(i)*sz), epp, t.Elem()); err != nil {
				return err
			}
		}
	case reflect.Slice:
		if t == opSliceType {
			return nil
		}
		cv := reflect.NewAt(t, cp).Elem()
		if cv.IsNil() {
			return nil
		}
		var pb unsafe.Pointer
		if pp != nil {
			pv := reflect.NewAt(t, pp).Elem()
			if !pv.IsNil() && pv.Len() == cv.Len() {
				pb = pv.UnsafePointer()
			}
		}
		cb := cv.UnsafePointer()
		sz := t.Elem().Size()
		for i := 0; i < cv.Len(); i++ {
			var epp unsafe.Pointer
			if pb != nil {
				epp = unsafe.Add(pb, uintptr(i)*sz)
			}
			if err := s.scan(unsafe.Add(cb, uintptr(i)*sz), epp, t.Elem()); err != nil {
				return err
			}
		}
	case reflect.Map:
		mv := reflect.NewAt(t, cp).Elem()
		if mv.IsNil() {
			return nil
		}
		vt := t.Elem()
		it := mv.MapRange() //asaplint:ignore detcheck scan order does not affect the error/no-error outcome
		for it.Next() {
			tmp := reflect.New(vt)
			tmp.Elem().Set(it.Value())
			if err := s.scan(tmp.UnsafePointer(), nil, vt); err != nil {
				return err
			}
		}
	case reflect.Pointer:
		if skipType(t) {
			return nil
		}
		cptr := *(*unsafe.Pointer)(cp)
		if cptr == nil {
			return nil
		}
		return s.scanObj(cptr, t.Elem())
	case reflect.Interface:
		if skipType(t) {
			return nil
		}
		cv := reflect.NewAt(t, cp).Elem()
		if cv.IsNil() {
			return nil
		}
		ce := cv.Elem()
		if ce.Kind() != reflect.Pointer || skipType(ce.Type()) || ce.IsNil() {
			return nil
		}
		return s.scanObj(ce.UnsafePointer(), ce.Type().Elem())
	}
	return nil
}

func (s *contScan) scanObj(cptr unsafe.Pointer, et reflect.Type) error {
	key := seenKey{ptr: cptr, typ: et}
	if s.seen[key] {
		return nil
	}
	s.seen[key] = true
	return s.scan(cptr, s.pairs[key], et)
}

// scanQuiescent is the cheap form of Save's stored-continuation check.
func scanQuiescent(m, pristine *machine.Machine) error {
	s := &contScan{
		pairs: make(map[seenKey]unsafe.Pointer, 64),
		seen:  make(map[seenKey]bool, 64),
	}
	s.pairs[seenKey{ptr: unsafe.Pointer(m), typ: machineType}] = unsafe.Pointer(pristine)
	s.pair(unsafe.Pointer(m), unsafe.Pointer(pristine), machineType)
	return s.scanObj(unsafe.Pointer(m), machineType)
}

// SaveNextQuiescent advances m cycle by cycle (up to maxAhead cycles past
// its current clock) until Save succeeds, and returns the image together
// with the cycle actually captured. The advance is part of the run the
// caller intended anyway — the restored machine resumes from the returned
// cycle. Non-quiescence is the only error it retries; each rejected cycle
// costs a func-pruned scan, not an encode attempt.
func SaveNextQuiescent(m *machine.Machine, maxAhead uint64) ([]byte, uint64, error) {
	if m.Sharded() || m.HasObservers() || m.Trace() == nil {
		_, err := Save(m) // produce the precise gating error
		return nil, 0, err
	}
	pristine, err := machine.New(m.Cfg, m.Model.Name(), m.Trace())
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: rebuilding pristine machine: %w", err)
	}
	limit := m.Eng.Now() + maxAhead
	for {
		quiet := m.Eng.Quiesce() == nil && scanQuiescent(m, pristine) == nil
		if quiet {
			img, err := Save(m)
			if err == nil {
				return img, m.Eng.Now(), nil
			}
			if !errors.Is(err, ErrNotQuiescent) {
				return nil, 0, err
			}
			// The scan under-approximated; fall through and keep stepping.
		}
		if m.Eng.Now() >= limit {
			return nil, 0, fmt.Errorf("%w after %d extra cycles", ErrNotQuiescent, maxAhead)
		}
		prev := m.Eng.Now()
		m.Advance(prev + 1)
		if m.Eng.Now() == prev {
			// Halted with the clock pinned; stepping cannot change anything.
			return nil, 0, fmt.Errorf("%w and the machine is halted", ErrNotQuiescent)
		}
	}
}

// ImageCycle reads the capture cycle from an image header without decoding
// the graph (cmd/asapsim prints it when restoring).
func ImageCycle(img []byte) (uint64, error) {
	prefix := len(imageMagic)
	if len(img) < prefix+1+32+8 {
		return 0, fmt.Errorf("checkpoint: image truncated")
	}
	if string(img[:prefix]) != imageMagic {
		return 0, fmt.Errorf("checkpoint: bad magic")
	}
	rest := img[prefix:]
	_, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, fmt.Errorf("checkpoint: bad version varint")
	}
	rest = rest[n+32:]
	if len(rest) < 8 {
		return 0, fmt.Errorf("checkpoint: image truncated")
	}
	cycle, n := binary.Uvarint(rest[8:])
	if n <= 0 {
		return 0, fmt.Errorf("checkpoint: bad cycle varint")
	}
	return cycle, nil
}
