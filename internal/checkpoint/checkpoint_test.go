package checkpoint

import (
	"reflect"
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/rng"
	"asap/internal/workload"
)

// diffCase is one (workload, model) cell of the differential matrix.
type diffCase struct {
	wl string
	p  workload.Params
}

// diffWorkloads samples the generator families: a hash table (pure persist
// traffic), a lock-heavy logger, and a queue with cross-thread dependencies.
func diffWorkloads() []diffCase {
	return []diffCase{
		{wl: "cceh", p: workload.Params{Threads: 2, OpsPerThread: 120, Seed: 7}},
		{wl: "atlas_queue", p: workload.Params{Threads: 3, OpsPerThread: 80, Seed: 11}},
		{wl: "echo", p: workload.Params{Threads: 2, OpsPerThread: 100, Seed: 3}},
	}
}

// summarize flattens everything a run observably produces: the Result
// scalars, the full stats set (counters and distributions), and every
// controller's NVM image.
type runSummary struct {
	Res      machine.Result
	Stats    string
	NVM      []map[uint64]uint64
	PMWrites []uint64
	PMReads  []uint64
}

func summarize(m *machine.Machine, res machine.Result) runSummary {
	s := runSummary{Res: res, Stats: res.Stats.String()}
	s.Res.Stats = nil // compared via the rendered form
	for _, mc := range m.MCs {
		img := make(map[uint64]uint64)
		for l, tok := range mc.NVM.Snapshot() {
			img[uint64(l)] = uint64(tok)
		}
		s.NVM = append(s.NVM, img)
		s.PMWrites = append(s.PMWrites, mc.NVM.Writes())
		s.PMReads = append(s.PMReads, mc.NVM.Reads())
	}
	return s
}

// TestForkDifferential is the tentpole's correctness pin: for every model ×
// a workload sample, a machine advanced to a randomized mid-run cycle,
// captured, run to completion, then forked (twice) and run to completion
// again must reproduce the uninterrupted run byte-identically — Result,
// stats counters and distributions, and the final NVM image of every
// controller. Runs under -race like the rest of the suite.
func TestForkDifferential(t *testing.T) {
	cfg := config.Default()
	for _, mn := range model.ExtendedNames() {
		for _, c := range diffWorkloads() {
			t.Run(mn+"/"+c.wl, func(t *testing.T) {
				t.Parallel()
				tr, err := workload.Generate(c.wl, c.p)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}

				// Uninterrupted oracle.
				mA, err := machine.New(cfg, mn, tr)
				if err != nil {
					t.Fatalf("new: %v", err)
				}
				resA := mA.Run(0)
				want := summarize(mA, resA)

				// Checkpointed run: advance to a randomized mid-run cycle,
				// capture, finish; then rewind and finish twice more.
				mB, err := machine.New(cfg, mn, tr)
				if err != nil {
					t.Fatalf("new: %v", err)
				}
				r := rng.New(uint64(len(mn))*1e9 + c.p.Seed)
				cut := 1 + r.Uint64n(resA.Cycles)
				mB.Advance(cut)
				cp, err := Capture(mB)
				if err != nil {
					t.Fatalf("capture: %v", err)
				}
				if cp.Cycle() != cut {
					t.Fatalf("capture cycle %d, want %d", cp.Cycle(), cut)
				}
				compare(t, "continue", want, summarize(mB, mB.Run(0)))
				for fork := 0; fork < 2; fork++ {
					fm := cp.Fork()
					compare(t, "fork", want, summarize(fm, fm.Run(0)))
				}
			})
		}
	}
}

func compare(t *testing.T, phase string, want, got runSummary) {
	t.Helper()
	if !reflect.DeepEqual(want.Res, got.Res) {
		t.Errorf("%s: result diverged:\nwant %+v\ngot  %+v", phase, want.Res, got.Res)
	}
	if want.Stats != got.Stats {
		t.Errorf("%s: stats diverged:\nwant:\n%s\ngot:\n%s", phase, want.Stats, got.Stats)
	}
	if !reflect.DeepEqual(want.NVM, got.NVM) {
		t.Errorf("%s: NVM image diverged", phase)
	}
	if !reflect.DeepEqual(want.PMWrites, got.PMWrites) || !reflect.DeepEqual(want.PMReads, got.PMReads) {
		t.Errorf("%s: PM traffic diverged: want w=%v r=%v, got w=%v r=%v",
			phase, want.PMWrites, want.PMReads, got.PMWrites, got.PMReads)
	}
}

// TestCaptureRejectsSharded pins the serial-only contract.
func TestCaptureRejectsSharded(t *testing.T) {
	tr, err := workload.Generate("cceh", workload.Params{Threads: 4, OpsPerThread: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.NewSharded(config.Default(), model.NameASAPEP, tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sharded() {
		t.Skip("host clamps to serial")
	}
	if _, err := Capture(m); err == nil {
		t.Fatal("Capture accepted a sharded machine")
	}
}
