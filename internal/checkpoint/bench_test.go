package checkpoint

import (
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/workload"
)

// BenchmarkCheckpointRoundtrip measures one full Save+Load cycle on a
// mid-run asap_ep/cceh machine parked at a quiescent cycle — the unit of
// work a checkpoint-resume or image-based campaign pays per image. The
// committed baseline gates its time and allocs/op via cmd/benchdiff.
func BenchmarkCheckpointRoundtrip(b *testing.B) {
	tr, err := workload.Generate("cceh", workload.Params{Threads: 2, OpsPerThread: 150, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.New(config.Default(), model.NameASAPEP, tr)
	if err != nil {
		b.Fatal(err)
	}
	m.Advance(400)
	// Park the machine on its next quiescent cycle so every iteration's
	// Save succeeds without searching.
	img, at, err := SaveNextQuiescent(m, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("image: %d bytes at cycle %d", len(img), at)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := Save(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Load(img); err != nil {
			b.Fatal(err)
		}
	}
}
