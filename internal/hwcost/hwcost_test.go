package hwcost

import "testing"

func TestRelativeMagnitudes(t *testing.T) {
	pb := Model(PersistBuffer())
	et := Model(EpochTable())
	rt := Model(RecoveryTable())
	l1 := Model(L1Cache())

	// Table V's qualitative relationships.
	if et.AreaMM2 >= pb.AreaMM2 {
		t.Error("epoch table should be far smaller than the persist buffer")
	}
	if pb.AreaMM2 >= l1.AreaMM2/2 {
		t.Errorf("persist buffer (%.3f) should be a small fraction of L1 (%.3f)", pb.AreaMM2, l1.AreaMM2)
	}
	if rt.AreaMM2 < pb.AreaMM2*0.7 || rt.AreaMM2 > pb.AreaMM2*1.6 {
		t.Errorf("RT (%.3f) and PB (%.3f) should be comparable", rt.AreaMM2, pb.AreaMM2)
	}
	if l1.WriteEnergy < 5*pb.WriteEnergy {
		t.Error("L1 access energy should dwarf the small CAMs")
	}
	if et.AccessNS >= pb.AccessNS || pb.AccessNS >= l1.AccessNS {
		t.Error("latency ordering ET < PB < L1 violated")
	}
}

func TestCalibrationBallpark(t *testing.T) {
	// Within ~3x of the paper's CACTI numbers (first-order model).
	checks := []struct {
		name      string
		got, want float64
	}{
		{"PB area", Model(PersistBuffer()).AreaMM2, 0.093},
		{"ET area", Model(EpochTable()).AreaMM2, 0.006},
		{"RT area", Model(RecoveryTable()).AreaMM2, 0.097},
		{"L1 area", Model(L1Cache()).AreaMM2, 0.759},
		{"PB write pJ", Model(PersistBuffer()).WriteEnergy, 30},
		{"RT write pJ", Model(RecoveryTable()).WriteEnergy, 31.5},
		{"L1 write pJ", Model(L1Cache()).WriteEnergy, 327.9},
	}
	for _, c := range checks {
		ratio := c.got / c.want
		if ratio < 1.0/3 || ratio > 3 {
			t.Errorf("%s = %.4f, paper %.4f (ratio %.2f out of band)", c.name, c.got, c.want, ratio)
		}
	}
}

func TestMonotoneInEntries(t *testing.T) {
	small := Model(Structure{Name: "s", Entries: 8, BitsPerEntry: 100, CAMBits: 20, Ports: 1})
	big := Model(Structure{Name: "b", Entries: 64, BitsPerEntry: 100, CAMBits: 20, Ports: 1})
	if big.AreaMM2 <= small.AreaMM2 || big.AccessNS <= small.AccessNS || big.WriteEnergy <= small.WriteEnergy {
		t.Error("cost must grow with entries")
	}
}

func TestDrainBytes(t *testing.T) {
	b := DrainBytes(32, 2)
	if b <= 0 || b > 4096 {
		t.Errorf("drain obligation %d should be under the paper's 4 KB bound", b)
	}
}
