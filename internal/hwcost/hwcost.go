// Package hwcost is an analytic area/latency/energy model for the small CAM
// and SRAM structures ASAP adds, standing in for the CACTI 7 simulations of
// Table V (22 nm node). The model uses first-order per-bit constants for
// SRAM cells and CAM match logic, calibrated against CACTI's published
// numbers for the paper's structure sizes, and reproduces the paper's
// qualitative conclusion: the persist buffer, epoch table and recovery
// table together cost a small fraction of one 32 kB L1 cache.
package hwcost

import (
	"fmt"
	"math"
)

// Structure describes one hardware buffer.
type Structure struct {
	Name    string
	Entries int
	// BitsPerEntry is the payload width; CAMBits of those are searched
	// associatively (address tags), the rest are SRAM payload.
	BitsPerEntry int
	CAMBits      int
	// Ports approximates the port count (read+write).
	Ports int
}

// Cost is the modelled implementation cost.
type Cost struct {
	AreaMM2     float64 // silicon area, mm^2
	AccessNS    float64 // access latency, ns
	WriteEnergy float64 // pJ per write
	ReadEnergy  float64 // pJ per read/search
}

// Constants at 22 nm, calibrated against CACTI 7's outputs for the Table V
// structure sizes (see hwcost_test.go for the calibration check):
//
//   - area is per bit, with CAM cells ~2.5x SRAM and a multiplier per
//     extra port;
//   - dynamic energy is per *accessed entry*, scaled up with total array
//     size (bitline/wordline capacitance grows with the array);
//   - latency grows with the square root of the array size (H-tree).
const (
	sramAreaPerBit = 2.2e-6 // mm^2
	camAreaPerBit  = 5.4e-6 // mm^2 (match line + cell)
	portAreaFactor = 0.35   // extra area per additional port

	energyPerEntryBit = 0.01454 // pJ per bit of the accessed entry
	energySizeFactor  = 0.1413  // growth per kilobit of total array

	baseLatencyNS      = 0.15  // decoder + sense floor
	latencyPerSqrtKbit = 0.075 // ns per sqrt(kilobit) of array
)

// Model computes the cost of a structure.
func Model(s Structure) Cost {
	sramBits := float64(s.Entries * (s.BitsPerEntry - s.CAMBits))
	camBits := float64(s.Entries * s.CAMBits)
	totalKbits := (sramBits + camBits) / 1024

	area := sramBits*sramAreaPerBit + camBits*camAreaPerBit
	if s.Ports > 1 {
		area *= 1 + portAreaFactor*float64(s.Ports-1)
	}
	lat := baseLatencyNS + latencyPerSqrtKbit*math.Sqrt(totalKbits)
	writeE := float64(s.BitsPerEntry) * energyPerEntryBit * (1 + energySizeFactor*totalKbits)
	readE := writeE * 0.97 // reads skip the write drivers

	return Cost{AreaMM2: area, AccessNS: lat, WriteEnergy: writeE, ReadEnergy: readE}
}

// The paper's structures (entry fields from Figure 6b).
//
// Persist buffer entry: data line 512 b + address 48 b + timestamp 16 b +
// status ~4 b; the address is the CAM field.
// Epoch table entry: timestamp 16 b + counts/deps/status ~48 b; timestamp
// is the CAM field (no addresses, no data — "ETs are very small").
// Recovery table entry: data 512 b + address 48 b + thread 8 b +
// timestamp 16 b; address and (thread,timestamp) are searched.

// PersistBuffer returns the paper's 32-entry per-core persist buffer.
func PersistBuffer() Structure {
	return Structure{Name: "Persist Buffer", Entries: 32, BitsPerEntry: 580, CAMBits: 48, Ports: 2}
}

// EpochTable returns the paper's 32-entry per-core epoch table.
func EpochTable() Structure {
	return Structure{Name: "Epoch Table", Entries: 32, BitsPerEntry: 64, CAMBits: 16, Ports: 1}
}

// RecoveryTable returns the paper's 32-entry per-MC recovery table.
func RecoveryTable() Structure {
	return Structure{Name: "Recovery Table", Entries: 32, BitsPerEntry: 584, CAMBits: 72, Ports: 2}
}

// L1Cache returns a 32 kB 8-way L1 for comparison (tag bits as CAM-ish
// comparators spread over ways; modelled as SRAM-dominated).
func L1Cache() Structure {
	// 512 lines x (512 data + 40 tag/state) bits.
	return Structure{Name: "32KB L1 cache", Entries: 512, BitsPerEntry: 552, CAMBits: 40, Ports: 2}
}

// DrainBytes bounds the ADR drain obligation on power failure (§VII-D): at
// most one 64 B line per recovery-table record reaches NVM, matching the
// paper's "less than 4 KB" for 2 controllers with 32-entry tables.
func DrainBytes(rtEntries, mcs int) int {
	return rtEntries * mcs * 64
}

// String renders a cost line.
func (c Cost) String() string {
	return fmt.Sprintf("area=%.3fmm2 access=%.3fns write=%.1fpJ read=%.1fpJ",
		c.AreaMM2, c.AccessNS, c.WriteEnergy, c.ReadEnergy)
}
