package config

import "testing"

func TestDefaultIsValid(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Default() failed validation: %v", r)
		}
	}()
	Default().Validate()
}

func TestDefaultMatchesTableII(t *testing.T) {
	c := Default()
	if c.Cores != 4 || c.MCs != 2 {
		t.Error("topology differs from Table II")
	}
	if c.PBEntries != 32 || c.ETEntries != 32 || c.RTEntries != 32 || c.WPQEntries != 16 {
		t.Error("structure sizes differ from Table II")
	}
	if c.NVMRead != 350 || c.NVMWrite != 180 { // 175 ns / 90 ns @ 2 GHz
		t.Error("NVM latencies differ from Table II")
	}
	if c.FlushLat != 120 { // 60 ns
		t.Error("persist buffer flush latency differs from Table II")
	}
	if c.HOPSPollInterval != 500 || c.HOPSPollCost != 50 {
		t.Error("HOPS polling parameters differ from §VII")
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.MCs = 0 },
		func(c *Config) { c.PBEntries = 0 },
		func(c *Config) { c.PBMaxInflight = 0 },
		func(c *Config) { c.InterleaveBytes = 100 },
	}
	for i, mutate := range cases {
		c := Default()
		mutate(&c)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			c.Validate()
		}()
	}
}
