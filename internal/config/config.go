// Package config holds the machine configuration shared by the cache,
// persist and model packages. Defaults reproduce Table II of the ASAP paper
// (4 cores @2 GHz, 2 memory controllers, Optane-like NVM timing).
package config

import "asap/internal/sim"

// Config describes one simulated machine. All latencies are in cycles of the
// 2 GHz core clock (1 ns = 2 cycles).
type Config struct {
	// Topology.
	Cores           int
	MCs             int
	InterleaveBytes uint64 // address interleave granularity across MCs

	// Cache hierarchy (sizes in bytes).
	L1Size, L1Ways   int
	L2Size, L2Ways   int
	LLCSize, LLCWays int

	// Access latencies.
	L1Hit      sim.Cycles // 1 ns
	L2Hit      sim.Cycles // 10 ns
	LLCHit     sim.Cycles
	RemoteXfer sim.Cycles // cache-to-cache transfer
	NVMRead    sim.Cycles // 175 ns
	NVMWrite   sim.Cycles // 90 ns
	// NVMDrainGap is the WPQ→media drain interval per line: the media's
	// write *throughput*, distinct from the 90 ns write latency. Optane
	// DIMMs overlap writes internally (~2.3 GB/s per DIMM [38]), so the
	// per-line service interval is well below the access latency.
	NVMDrainGap sim.Cycles
	// NVMReadGap is the per-line read-throughput interval at the
	// controller. PM read bandwidth is ~3x its write bandwidth (the
	// asymmetry §V-A relies on to make undo-record reads cheap); the
	// controller pipelines reads, so an undo-record read serializes the
	// front-end for this interval, not the full access latency.
	NVMReadGap sim.Cycles
	XPBufHit   sim.Cycles // Optane internal buffer hit
	FlushLat   sim.Cycles // persist buffer -> MC flush, 60 ns
	MsgLat     sim.Cycles // on-chip message (ACK/NACK/commit/CDR)

	// Structure sizes (entries).
	PBEntries  int // persist buffer, per core
	ETEntries  int // epoch table, per core
	RTEntries  int // recovery table, per MC
	WPQEntries int // write pending queue, per MC
	XPBufLines int // XPBuffer lines, per MC

	// Issue limits.
	PBMaxInflight int // outstanding un-ACKed flushes per persist buffer

	// HOPS cross-thread dependency resolution (§VII): poll the global TS
	// register every PollInterval cycles, each access costing PollCost.
	HOPSPollInterval sim.Cycles
	HOPSPollCost     sim.Cycles

	// Base op costs at the core.
	StoreCost sim.Cycles
	LoadCost  sim.Cycles
	FenceCost sim.Cycles // fixed pipeline cost of executing a fence op

	// ASAPNoEager disables eager flushing in the ASAP models (ablation):
	// persist buffers issue only safe flushes, so the recovery tables are
	// never used. Isolates the contribution of speculation vs buffering.
	ASAPNoEager bool
}

// Default returns the Table II configuration.
func Default() Config {
	return Config{
		Cores:           4,
		MCs:             2,
		InterleaveBytes: 256,

		L1Size: 32 << 10, L1Ways: 8,
		L2Size: 2 << 20, L2Ways: 8,
		LLCSize: 16 << 20, LLCWays: 16,

		L1Hit:       sim.NS(1),
		L2Hit:       sim.NS(10),
		LLCHit:      sim.NS(25),
		RemoteXfer:  sim.NS(40),
		NVMRead:     sim.NS(175),
		NVMWrite:    sim.NS(90),
		NVMDrainGap: sim.NS(28), // ~2.3 GB/s per controller
		NVMReadGap:  sim.NS(10), // ~6.4 GB/s per controller
		XPBufHit:    sim.NS(10),
		FlushLat:    sim.NS(60),
		MsgLat:      sim.NS(10), // on-chip ACK/NACK/commit/CDR hop

		PBEntries:  32,
		ETEntries:  32,
		RTEntries:  32,
		WPQEntries: 16,
		XPBufLines: 512, // ~16 KB XPBuffer per DIMM, several DIMMs per MC

		PBMaxInflight: 8,

		HOPSPollInterval: 500,
		HOPSPollCost:     50,

		StoreCost: 1,
		LoadCost:  1,
		FenceCost: 2,
	}
}

// Validate panics if the configuration is internally inconsistent. Call it
// after hand-editing a Config.
func (c Config) Validate() {
	switch {
	case c.Cores <= 0:
		panic("config: Cores must be positive")
	case c.MCs <= 0:
		panic("config: MCs must be positive")
	case c.MCs > 64:
		panic("config: MCs must fit the epoch table's controller bitmask (max 64)")
	case c.PBEntries <= 0 || c.ETEntries <= 0 || c.WPQEntries <= 0:
		panic("config: structure sizes must be positive")
	case c.PBMaxInflight <= 0:
		panic("config: PBMaxInflight must be positive")
	case c.InterleaveBytes == 0 || c.InterleaveBytes%64 != 0:
		panic("config: InterleaveBytes must be a positive multiple of the line size")
	}
}
