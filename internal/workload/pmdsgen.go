package workload

import (
	"asap/internal/pmds"
	"asap/internal/rng"
	"asap/internal/trace"
)

// heapSize scales the simulated PM heap with the op count.
func heapSize(p Params) int {
	sz := 8 << 20
	need := p.Threads * p.OpsPerThread * (p.ValueSize + 512)
	for sz < need {
		sz <<= 1
	}
	return sz
}

// driveKV interleaves update-intensive key/value operations (80% insert,
// 20% lookup) across logical threads, zipf-skewed so threads collide on hot
// keys — the source of the cross-thread dependencies in Figure 2.
func driveKV(h *pmds.Heap, p Params, name string,
	insert func(key, val uint64), lookup func(key uint64)) *trace.Trace {
	r := rng.New(p.Seed)
	zip := rng.NewZipf(r, int(p.KeyRange), 0.9)
	total := p.Threads * p.OpsPerThread
	for i := 0; i < total; i++ {
		t := i % p.Threads
		h.SetThread(t)
		key := uint64(zip.Next()) + 1
		if p.Strands {
			// Each operation is its own strand: ops on independent keys
			// have no inter-op ordering requirement (strand persistency).
			h.NewStrand()
		}
		h.Compute(uint32(80 + r.Intn(160))) // application work between ops
		if r.Bool(0.8) {
			insert(key, r.Uint64())
		} else {
			lookup(key)
		}
	}
	// Each thread finishes with a durability point, as real benchmark
	// harnesses do before reporting.
	for t := 0; t < p.Threads; t++ {
		h.SetThread(t)
		h.Dfence()
	}
	return h.Trace(name)
}

func genCCEH(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	c := pmds.NewCCEH(h, 4, p.ValueSize)
	return driveKV(h, p, "cceh",
		func(k, v uint64) { c.Insert(k, v) },
		func(k uint64) { c.Get(k) })
}

func genFastFair(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	f := pmds.NewFastFair(h, 14, p.ValueSize)
	// Table III: FAST&FAIR runs insert/search/delete. Reuse the KV driver
	// mix but convert one in eight inserts into a delete of the same key.
	r := rng.New(p.Seed ^ 0xFA57)
	n := 0
	return driveKV(h, p, "fast_fair",
		func(k, v uint64) {
			n++
			if n%8 == 0 && r.Bool(0.9) {
				f.Delete(k)
			} else {
				f.Insert(k, v)
			}
		},
		func(k uint64) { f.Get(k) })
}

func genDashLH(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	// Size the levels so resizes stay rare, as in the paper's setup.
	d := pmds.NewDashLH(h, p.KeyRange, p.ValueSize)
	return driveKV(h, p, "dash_lh",
		func(k, v uint64) { d.Insert(k, v) },
		func(k uint64) { d.Get(k) })
}

func genDashEH(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	d := pmds.NewDashEH(h, 4, p.KeyRange/16+1, p.ValueSize)
	return driveKV(h, p, "dash_eh",
		func(k, v uint64) { d.Insert(k, v) },
		func(k uint64) { d.Get(k) })
}

func genPART(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p)*8, p.Threads) // radix nodes are large
	a := pmds.NewART(h, p.ValueSize)
	return driveKV(h, p, "p_art",
		func(k, v uint64) { a.Insert(k, v) },
		func(k uint64) { a.Get(k) })
}

func genPCLHT(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	c := pmds.NewCLHT(h, p.KeyRange/2+1, p.ValueSize)
	return driveKV(h, p, "p_clht",
		func(k, v uint64) { c.Insert(k, v) },
		func(k uint64) { c.Get(k) })
}

func genPMasstree(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	m := pmds.NewMasstree(h, 15, p.ValueSize)
	return driveKV(h, p, "p_masstree",
		func(k, v uint64) { m.Insert(k, v) },
		func(k uint64) { m.Get(k) })
}

func genAtlasQueue(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	q := pmds.NewAtlasQueue(h, p.ValueSize)
	r := rng.New(p.Seed)
	total := p.Threads * p.OpsPerThread
	for i := 0; i < total; i++ {
		h.SetThread(i % p.Threads)
		h.Compute(uint32(60 + r.Intn(120)))
		if r.Bool(0.6) || q.Len() == 0 {
			q.Enqueue(r.Uint64())
		} else {
			q.Dequeue()
		}
	}
	for t := 0; t < p.Threads; t++ {
		h.SetThread(t)
		h.Dfence()
	}
	return h.Trace("atlas_queue")
}

func genAtlasHeap(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	a := pmds.NewAtlasHeap(h, p.Threads*p.OpsPerThread+16)
	r := rng.New(p.Seed)
	total := p.Threads * p.OpsPerThread
	for i := 0; i < total; i++ {
		h.SetThread(i % p.Threads)
		h.Compute(uint32(60 + r.Intn(120)))
		if r.Bool(0.65) || a.Size() == 0 {
			a.Insert(r.Uint64() % (p.KeyRange * 16))
		} else {
			a.PopMin()
		}
	}
	for t := 0; t < p.Threads; t++ {
		h.SetThread(t)
		h.Dfence()
	}
	return h.Trace("atlas_heap")
}

func genAtlasSkiplist(p Params) *trace.Trace {
	h := pmds.NewHeap(heapSize(p), p.Threads)
	s := pmds.NewAtlasSkipList(h, p.ValueSize)
	r := rng.New(p.Seed)
	zip := rng.NewZipf(r, int(p.KeyRange), 0.9)
	total := p.Threads * p.OpsPerThread
	for i := 0; i < total; i++ {
		h.SetThread(i % p.Threads)
		h.Compute(uint32(60 + r.Intn(120)))
		key := uint64(zip.Next()) + 1
		switch {
		case r.Bool(0.6):
			s.Insert(key, r.Uint64())
		case r.Bool(0.5):
			s.Delete(key)
		default:
			s.Get(key)
		}
	}
	for t := 0; t < p.Threads; t++ {
		h.SetThread(t)
		h.Dfence()
	}
	return h.Trace("atlas_skiplist")
}
