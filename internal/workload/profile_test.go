package workload

import (
	"testing"

	"asap/internal/trace"
)

// These tests pin the persistence *profiles* the WHISPER generators claim to
// reproduce (DESIGN.md substitution table): fence rates, locking discipline
// and the volatile/persistent split. If a generator drifts, Figure 2/3
// fidelity silently degrades — so the profiles are tested.

func profile(t *testing.T, name string) (*trace.Trace, map[trace.Kind]int) {
	t.Helper()
	p := Default()
	p.OpsPerThread = 200
	tr, err := Generate(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return tr, tr.Counts()
}

func TestNstoreProfile(t *testing.T) {
	_, c := profile(t, "nstore")
	txs := 4 * 200
	// Every transaction: >=1 ofence (log/data split) and exactly one
	// dfence (commit), plus the final drain fences.
	if c[trace.OpDfence] < txs {
		t.Errorf("dfence = %d, want >= %d (one per transaction)", c[trace.OpDfence], txs)
	}
	if c[trace.OpOfence] < txs {
		t.Errorf("ofence = %d, want >= %d", c[trace.OpOfence], txs)
	}
	// Nstore uses no locks (partitioned DB).
	if c[trace.OpAcquire] != 0 {
		t.Errorf("nstore should not use locks, got %d acquires", c[trace.OpAcquire])
	}
	// Log + tuple writes: at least 4 persistent stores per transaction.
	if c[trace.OpStore] < txs*4 {
		t.Errorf("stores = %d, want >= %d", c[trace.OpStore], txs*4)
	}
}

func TestVacationProfile(t *testing.T) {
	tr, c := profile(t, "vacation")
	txs := 4 * 200
	// Coarse-grained lock: exactly one acquire/release pair per query.
	if c[trace.OpAcquire] != txs || c[trace.OpRelease] != txs {
		t.Errorf("acquire/release = %d/%d, want %d", c[trace.OpAcquire], c[trace.OpRelease], txs)
	}
	// Volatile bookkeeping inside the critical section (the property that
	// makes eager flushing unhelpful here, §VII-A).
	volatileStores := 0
	for _, th := range tr.Threads {
		for _, op := range th {
			if op.Kind == trace.OpStore && !op.Persistent {
				volatileStores++
			}
		}
	}
	if volatileStores < txs*4 {
		t.Errorf("volatile stores = %d, want >= %d (bookkeeping before unlock)", volatileStores, txs*4)
	}
}

func TestMemcachedProfile(t *testing.T) {
	_, c := profile(t, "memcached")
	txs := 4 * 200
	// Per-bucket locks: one pair per request.
	if c[trace.OpAcquire] != txs {
		t.Errorf("acquires = %d, want %d", c[trace.OpAcquire], txs)
	}
	// PMDK undo logging: at least two fences per update.
	if c[trace.OpOfence] < txs*2 {
		t.Errorf("ofences = %d, want >= %d", c[trace.OpOfence], txs*2)
	}
}

func TestEchoProfile(t *testing.T) {
	_, c := profile(t, "echo")
	// Batched master-store merges: locks far rarer than operations.
	txs := 4 * 200
	if c[trace.OpAcquire] == 0 {
		t.Error("echo should take the master lock sometimes")
	}
	if c[trace.OpAcquire] > txs/4 {
		t.Errorf("echo locks too often: %d acquires for %d ops", c[trace.OpAcquire], txs)
	}
}

func TestBandwidthProfile(t *testing.T) {
	p := Default()
	p.Threads = 1
	p.OpsPerThread = 100
	tr, err := Generate("bandwidth", p)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Counts()
	// 4 line stores + 1 ofence per 256 B block.
	if c[trace.OpStore] != 400 {
		t.Errorf("stores = %d, want 400", c[trace.OpStore])
	}
	if c[trace.OpOfence] != 100 {
		t.Errorf("ofences = %d, want 100", c[trace.OpOfence])
	}
	if BandwidthBytes(p) != 100*256 {
		t.Errorf("BandwidthBytes = %d", BandwidthBytes(p))
	}
	// Blocks alternate controllers under 256 B interleaving: consecutive
	// block base lines differ by 4.
	var stores []uint64
	for _, op := range tr.Threads[0] {
		if op.Kind == trace.OpStore {
			stores = append(stores, op.Addr)
		}
	}
	if (stores[0]/64)/4%2 == (stores[4]/64)/4%2 {
		t.Error("consecutive blocks do not alternate 256 B granules")
	}
}

// TestValueSizeScalesStores: larger values touch more lines per insert.
func TestValueSizeScalesStores(t *testing.T) {
	p := Default()
	p.OpsPerThread = 100
	p.ValueSize = 8
	small, err := Generate("cceh", p)
	if err != nil {
		t.Fatal(err)
	}
	p.ValueSize = 128
	large, err := Generate("cceh", p)
	if err != nil {
		t.Fatal(err)
	}
	if large.Counts()[trace.OpStore] <= small.Counts()[trace.OpStore] {
		t.Errorf("128 B values (%d stores) should write more lines than 8 B (%d)",
			large.Counts()[trace.OpStore], small.Counts()[trace.OpStore])
	}
}
