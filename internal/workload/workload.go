// Package workload builds the traces of Table III. The concurrent
// persistent data structures (CCEH, FAST&FAIR, Dash, the RECIPE indexes and
// the Atlas structures) run their real implementations from package pmds
// and record traces. The four WHISPER applications (Nstore, Echo, Vacation,
// Memcached) are synthetic generators reproducing each application's
// published persistence profile — epoch sizes, fence rates, locking
// discipline and cross-thread sharing — because the original binaries
// cannot run inside this simulator (see DESIGN.md, substitutions).
//
// All workloads are configured update-intensive, as in §VII: "We configure
// all applications to be update-intensive in order to stress PM write
// performance"; key and value sizes vary from 16 B to 128 B.
package workload

import (
	"fmt"
	"sort"

	"asap/internal/trace"
)

// Params configures a workload run.
type Params struct {
	Threads      int
	OpsPerThread int    // structure-level operations per thread
	KeyRange     uint64 // key universe size
	ValueSize    int    // bytes per value
	Seed         uint64
	// Strands annotates each structure-level operation as its own strand
	// (strand persistency): operations on independent keys carry no
	// inter-operation ordering requirement. Only strand-aware models use
	// the annotation; everyone else conservatively ignores it.
	Strands bool
}

// Normalized returns p with the zero-value defaults Generate applies
// filled in (KeyRange 1024, ValueSize 8 — the historical defaults).
// Parameter sets that differ only in elided defaults normalize to the
// same value, which package runspec relies on to give them one hash.
func (p Params) Normalized() Params {
	if p.KeyRange == 0 {
		p.KeyRange = 1024
	}
	if p.ValueSize == 0 {
		p.ValueSize = 8
	}
	return p
}

// Default returns the 4-thread configuration used for Figure 8.
func Default() Params {
	return Params{
		Threads:      4,
		OpsPerThread: 600,
		KeyRange:     4096,
		ValueSize:    64,
		Seed:         1,
	}
}

// Generator builds a trace for the given parameters.
type Generator func(Params) *trace.Trace

var registry = map[string]Generator{}

// ordered keeps the paper's presentation order (Figure 8, left to right).
var ordered []string

func register(name string, g Generator) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration of " + name)
	}
	registry[name] = g
	ordered = append(ordered, name)
}

// Names lists the registered workloads in presentation order.
func Names() []string {
	out := make([]string, len(ordered))
	copy(out, ordered)
	return out
}

// SortedNames lists the registered workloads alphabetically.
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// Known reports whether a workload with this name is registered (asapd
// validates request specs against the registry before running them).
func Known(name string) bool {
	_, ok := registry[name]
	return ok
}

// Generate builds the named workload's trace, compiled into a flat op
// arena (trace.Compile): the machine replays a single contiguous slab
// instead of one heap object per thread builder.
//
// Generate is safe for concurrent callers: the registry is immutable
// after package init, and every generator builds a private heap, data
// structure and RNG per call (the harness's parallel engine relies on
// this to generate traces from worker goroutines).
func Generate(name string, p Params) (*trace.Trace, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
	}
	if p.Threads <= 0 || p.OpsPerThread <= 0 {
		return nil, fmt.Errorf("workload: Threads and OpsPerThread must be positive")
	}
	return g(p.Normalized()).Compile(), nil
}

func init() {
	// WHISPER suite (§VII, Table III).
	register("nstore", genNstore)
	register("echo", genEcho)
	register("vacation", genVacation)
	register("memcached", genMemcached)
	// ATLAS data structures.
	register("atlas_heap", genAtlasHeap)
	register("atlas_queue", genAtlasQueue)
	register("atlas_skiplist", genAtlasSkiplist)
	// Concurrent persistent data structures.
	register("cceh", genCCEH)
	register("fast_fair", genFastFair)
	register("dash_lh", genDashLH)
	register("dash_eh", genDashEH)
	// RECIPE.
	register("p_art", genPART)
	register("p_clht", genPCLHT)
	register("p_masstree", genPMasstree)
	// Microbenchmark for Figure 13.
	register("bandwidth", genBandwidth)
}
