package workload

import (
	"sync"
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/trace"
)

func smallParams() Params {
	p := Default()
	p.OpsPerThread = 60
	p.KeyRange = 512
	return p
}

// TestGenerateAll: every registered workload produces a non-trivial
// multi-threaded trace with persistent stores and fences.
func TestGenerateAll(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := Generate(name, smallParams())
			if err != nil {
				t.Fatal(err)
			}
			if tr.NumThreads() != 4 {
				t.Fatalf("threads=%d", tr.NumThreads())
			}
			counts := tr.Counts()
			if counts[trace.OpStore] == 0 {
				t.Error("no stores recorded")
			}
			if counts[trace.OpOfence]+counts[trace.OpDfence] == 0 {
				t.Error("no fences recorded")
			}
			if tr.TotalOps() < 4*60 {
				t.Errorf("suspiciously small trace: %d ops", tr.TotalOps())
			}
		})
	}
}

// TestGenerateDeterministic: same seed, same trace.
func TestGenerateDeterministic(t *testing.T) {
	for _, name := range []string{"cceh", "nstore", "p_art"} {
		a, err := Generate(name, smallParams())
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(name, smallParams())
		if err != nil {
			t.Fatal(err)
		}
		if a.TotalOps() != b.TotalOps() {
			t.Fatalf("%s: non-deterministic op counts %d vs %d", name, a.TotalOps(), b.TotalOps())
		}
		for i := range a.Threads {
			for j := range a.Threads[i] {
				if a.Threads[i][j] != b.Threads[i][j] {
					t.Fatalf("%s: trace diverges at thread %d op %d", name, i, j)
				}
			}
		}
	}
}

// TestGenerateConcurrent: Generate is documented safe for concurrent
// callers (the harness's parallel engine generates traces from worker
// goroutines). Each generator builds a private heap and RNG, and the
// registry is immutable after init — this test pins that by generating
// the same and different workloads from many goroutines at once and
// demanding byte-identical traces; `go test -race` in CI checks the
// absence of sharing.
func TestGenerateConcurrent(t *testing.T) {
	names := []string{"cceh", "cceh", "fast_fair", "p_art", "nstore", "bandwidth", "cceh", "echo"}
	ref := make(map[string]*trace.Trace)
	for _, n := range names {
		tr, err := Generate(n, smallParams())
		if err != nil {
			t.Fatal(err)
		}
		ref[n] = tr
	}
	var wg sync.WaitGroup
	for rep := 0; rep < 4; rep++ {
		for _, n := range names {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				tr, err := Generate(n, smallParams())
				if err != nil {
					t.Error(err)
					return
				}
				want := ref[n]
				if tr.TotalOps() != want.TotalOps() {
					t.Errorf("%s: concurrent generation produced %d ops, want %d",
						n, tr.TotalOps(), want.TotalOps())
					return
				}
				for i := range want.Threads {
					for j := range want.Threads[i] {
						if tr.Threads[i][j] != want.Threads[i][j] {
							t.Errorf("%s: concurrent trace diverges at thread %d op %d", n, i, j)
							return
						}
					}
				}
			}(n)
		}
	}
	wg.Wait()
}

// TestUnknownWorkload: helpful error.
func TestUnknownWorkload(t *testing.T) {
	if _, err := Generate("nope", Default()); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
}

// TestAllWorkloadsRunAllModels is the broad integration matrix: every
// workload × every model runs to completion under the Table II machine.
func TestAllWorkloadsRunAllModels(t *testing.T) {
	p := smallParams()
	p.OpsPerThread = 40
	for _, wl := range Names() {
		tr, err := Generate(wl, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, mn := range model.ExtendedNames() {
			m, err := machine.New(config.Default(), mn, tr)
			if err != nil {
				t.Fatal(err)
			}
			res := m.Run(2_000_000_000)
			if res.Cycles == 0 {
				t.Errorf("%s/%s: zero cycles", wl, mn)
			}
			if res.Stats.Get("entriesInserted") == 0 && mn != model.NameBaseline && mn != model.NameEADR {
				t.Errorf("%s/%s: no persist buffer activity", wl, mn)
			}
		}
	}
}

// TestConcurrentStructuresHaveDeps: the concurrent data structures must
// exhibit cross-thread dependencies under ASAP_RP (Figure 2's claim), while
// nstore should have almost none.
func TestConcurrentStructuresHaveDeps(t *testing.T) {
	p := smallParams()
	p.OpsPerThread = 120
	deps := map[string]uint64{}
	for _, wl := range []string{"cceh", "p_art", "dash_lh", "nstore"} {
		tr, err := Generate(wl, p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(config.Default(), model.NameASAPRP, tr)
		if err != nil {
			t.Fatal(err)
		}
		m.Run(0)
		deps[wl] = m.St.Get("interTEpochConflict")
	}
	t.Logf("cross-thread deps: %v", deps)
	for _, wl := range []string{"cceh", "p_art"} {
		if deps[wl] == 0 {
			t.Errorf("%s: expected cross-thread dependencies, got none", wl)
		}
	}
	if deps["nstore"] > deps["cceh"] && deps["cceh"] > 0 {
		t.Errorf("nstore (%d) should have fewer deps than cceh (%d)", deps["nstore"], deps["cceh"])
	}
}

// TestStrandAnnotation: Params.Strands adds strand boundaries; off by
// default.
func TestStrandAnnotation(t *testing.T) {
	p := smallParams()
	tr, err := Generate("cceh", p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Counts()[trace.OpStrand] != 0 {
		t.Fatal("strand ops present without the option")
	}
	p.Strands = true
	tr, err = Generate("cceh", p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Threads * p.OpsPerThread
	if got := tr.Counts()[trace.OpStrand]; got != want {
		t.Fatalf("strand ops = %d, want %d (one per structure op)", got, want)
	}
	// The annotated trace still runs everywhere (strand-blind models
	// ignore the boundaries).
	for _, mn := range []string{model.NameBaseline, model.NameHOPSRP, model.NameStrandWeaver, model.NameASAPRP} {
		m, err := machine.New(config.Default(), mn, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res := m.Run(1_000_000_000); res.Cycles == 0 {
			t.Errorf("%s: zero cycles on a strand trace", mn)
		}
	}
}
