package workload

import (
	"asap/internal/rng"
	"asap/internal/trace"
)

// WHISPER-profile generators. Each reproduces the persistence behaviour the
// WHISPER analysis [6] and Figures 2/3 of the ASAP paper report for the
// application: epoch sizes, fence frequency, locking discipline, the split
// between persistent and volatile traffic, and (low) cross-thread
// dependency rates. Addresses spread across both memory controllers via the
// machine's 256 B interleaving.

const (
	wPMBase   = uint64(1) << 32
	wLockBase = uint64(1) << 24
	wLine     = 64
)

// region gives thread t a private PM area plus a shared area.
func wPrivate(t int, slot uint64) uint64 { return wPMBase + uint64(t)<<24 + slot*wLine }
func wShared(slot uint64) uint64         { return wPMBase + uint64(1)<<30 + slot*wLine }
func wVolatile(t int, slot uint64) uint64 {
	return uint64(1)<<28 + uint64(t)<<16 + slot*wLine
}

// genNstore models a PM-native DBMS (N-Store): transactions append a
// multi-line log record, fence, update 2–4 tuple lines in a mostly
// partitioned table, and end with a durable commit. Epochs are large and
// cross-thread dependencies rare.
func genNstore(p Params) *trace.Trace {
	r := rng.New(p.Seed)
	tr := &trace.Trace{Name: "nstore"}
	for t := 0; t < p.Threads; t++ {
		var b trace.Builder
		logHead := uint64(0)
		for i := 0; i < p.OpsPerThread; i++ {
			b.Compute(uint32(200 + r.Intn(400))) // query processing
			// Log record: 2-3 lines, appended sequentially.
			logLines := 2 + r.Intn(2)
			for l := 0; l < logLines; l++ {
				b.StoreP(wPrivate(t, 4096+logHead))
				logHead = (logHead + 1) % 2048
			}
			b.Ofence()
			// Tuple updates: mostly private partition, occasionally a
			// shared table region (cross-thread but rarely conflicting).
			tuples := 2 + r.Intn(3)
			for u := 0; u < tuples; u++ {
				if r.Bool(0.05) {
					b.StoreP(wShared(uint64(r.Intn(512))))
				} else {
					b.StoreP(wPrivate(t, uint64(r.Intn(2048))))
				}
			}
			// Durable commit.
			b.Dfence()
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// genEcho models Echo, a scalable key-value store with per-thread local
// logs that batch into a shared master store under a lock: medium epochs,
// occasional cross-thread dependencies at the batch boundary.
func genEcho(p Params) *trace.Trace {
	r := rng.New(p.Seed)
	tr := &trace.Trace{Name: "echo"}
	masterLock := wLockBase
	for t := 0; t < p.Threads; t++ {
		var b trace.Builder
		local := uint64(0)
		for i := 0; i < p.OpsPerThread; i++ {
			b.Compute(uint32(120 + r.Intn(240)))
			// Local log append (worker store): value then marker.
			for l := 0; l < 1+p.ValueSize/wLine; l++ {
				b.StoreP(wPrivate(t, 8192+local))
				local = (local + 1) % 1024
			}
			b.Ofence()
			b.StoreP(wPrivate(t, 8192+local)) // commit marker
			b.Ofence()
			// Every 8th op, merge the batch into the master store.
			if i%8 == 7 {
				b.Acquire(masterLock)
				for mds := 0; mds < 4; mds++ {
					b.StoreP(wShared(uint64(r.Intn(1024))))
					b.Ofence()
				}
				b.Release(masterLock)
				b.Dfence()
			}
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// genVacation models the PMDK-based STAMP Vacation port: a coarse-grained
// lock protects each reservation query, the transaction undo-logs each PM
// write (log line + fence + data line), and substantial *volatile*
// bookkeeping happens before the lock is released — which is why eager
// flushing buys little here (§VII-A): by the time another thread acquires
// the lock the writes have drained.
func genVacation(p Params) *trace.Trace {
	r := rng.New(p.Seed)
	tr := &trace.Trace{Name: "vacation"}
	tableLock := wLockBase + 2*wLine
	for t := 0; t < p.Threads; t++ {
		var b trace.Builder
		for i := 0; i < p.OpsPerThread; i++ {
			b.Compute(uint32(250 + r.Intn(500))) // query planning
			b.Acquire(tableLock)
			writes := 2 + r.Intn(3)
			for u := 0; u < writes; u++ {
				// PMDK tx: undo-log entry, fence, then the data write.
				b.StoreP(wPrivate(t, 12288+uint64(r.Intn(256))))
				b.Ofence()
				b.StoreP(wShared(uint64(r.Intn(2048))))
				b.Ofence()
			}
			b.Dfence() // transaction commit
			// Volatile bookkeeping inside the critical section.
			for v := 0; v < 6+r.Intn(6); v++ {
				b.StoreV(wVolatile(t, uint64(r.Intn(64))))
				b.Compute(20)
			}
			b.Release(tableLock)
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// genMemcached models PM-Memcached: per-bucket locks on a large hash table
// (low contention), PMDK-style undo logging per item update, and heavy
// volatile LRU bookkeeping.
func genMemcached(p Params) *trace.Trace {
	r := rng.New(p.Seed)
	tr := &trace.Trace{Name: "memcached"}
	const buckets = 64
	for t := 0; t < p.Threads; t++ {
		var b trace.Builder
		for i := 0; i < p.OpsPerThread; i++ {
			b.Compute(uint32(150 + r.Intn(300))) // request parsing, hashing
			bkt := uint64(r.Intn(buckets))
			b.Acquire(wLockBase + (4+bkt)*wLine)
			// Undo-log entry then the item write (header + value lines).
			b.StoreP(wPrivate(t, 16384+uint64(r.Intn(128))))
			b.Ofence()
			itemLines := 1 + p.ValueSize/wLine
			for l := 0; l < itemLines; l++ {
				b.StoreP(wShared(bkt*64 + uint64(r.Intn(32))))
			}
			b.Ofence()
			b.Dfence()
			// Volatile LRU list maintenance.
			for v := 0; v < 4; v++ {
				b.StoreV(wVolatile(t, uint64(r.Intn(32))))
			}
			b.Release(wLockBase + (4+bkt)*wLine)
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// genBandwidth is the Figure 13 microbenchmark: 256-byte writes (four
// lines) alternating across the two controllers, each write ordered with an
// ofence.
func genBandwidth(p Params) *trace.Trace {
	tr := &trace.Trace{Name: "bandwidth"}
	for t := 0; t < p.Threads; t++ {
		var b trace.Builder
		base := wPMBase + uint64(t)<<26
		block := uint64(0)
		for i := 0; i < p.OpsPerThread; i++ {
			// One 256 B write: 4 consecutive lines, which with 256 B
			// interleaving land on one controller; the next block lands
			// on the other.
			for l := uint64(0); l < 4; l++ {
				b.StoreP(base + block*256 + l*wLine)
			}
			b.Ofence()
			block++
		}
		b.Dfence()
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// BandwidthBytes returns the payload bytes written by one bandwidth-trace
// run, for GB/s computation in the Figure 13 harness.
func BandwidthBytes(p Params) uint64 {
	return uint64(p.Threads) * uint64(p.OpsPerThread) * 256
}
