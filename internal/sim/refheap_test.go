package sim

import "container/heap"

// refEvent and refEngine are a reference implementation of the scheduler
// built on container/heap, kept test-only: the shipped Engine replaced it
// with an inlined 4-ary typed heap, and TestDifferentialDeterminism drives
// both with identical randomized workloads to prove the dispatch order —
// the only observable the simulator depends on — is unchanged.
type refEvent struct {
	when Cycles
	seq  uint64
	fn   func()
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// refEngine mirrors Engine's scheduling semantics over the reference heap.
type refEngine struct {
	now    Cycles
	seq    uint64
	events refHeap
}

func (e *refEngine) Now() Cycles { return e.now }

func (e *refEngine) At(when Cycles, fn func()) {
	if when < e.now {
		panic("refEngine: event scheduled in the past")
	}
	heap.Push(&e.events, refEvent{when: when, seq: e.seq, fn: fn})
	e.seq++
}

func (e *refEngine) After(delay Cycles, fn func()) { e.At(e.now+delay, fn) }

func (e *refEngine) Run() {
	for len(e.events) > 0 {
		next := heap.Pop(&e.events).(refEvent)
		e.now = next.when
		next.fn()
	}
}
