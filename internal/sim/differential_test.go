package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// scheduler is the common surface of Engine and refEngine the differential
// workload drives.
type scheduler interface {
	Now() Cycles
	After(delay Cycles, fn func())
}

// dispatchRecord is one observed dispatch: which logical event fired and at
// what cycle. Comparing the full sequences from both schedulers checks both
// time ordering and the (when, seq) tie-break.
type dispatchRecord struct {
	id   int
	when Cycles
}

// runDifferentialWorkload schedules a randomized, self-extending event
// workload on s and returns the dispatch sequence. All randomness comes
// from a fresh rand.Rand with the given seed, consumed in dispatch order —
// so two schedulers that dispatch identically consume the stream
// identically, and any ordering divergence immediately desynchronizes the
// recorded sequences.
//
// The workload deliberately produces heavy same-cycle ties (delays drawn
// from a tiny range), bursts of fan-out, and nested rescheduling — the
// patterns the machine, persist buffers and memory controllers generate.
func runDifferentialWorkload(s scheduler, seed int64, run func()) []dispatchRecord {
	rng := rand.New(rand.NewSource(seed))
	var got []dispatchRecord
	nextID := 0
	budget := 2000 // total events, bounds the self-extension

	var schedule func(delay Cycles)
	schedule = func(delay Cycles) {
		id := nextID
		nextID++
		s.After(delay, func() {
			got = append(got, dispatchRecord{id: id, when: s.Now()})
			// Fan out 0-3 children with tiny delays (0-4 cycles) so many
			// events collide on the same cycle and exercise the tie-break.
			for n := rng.Intn(4); n > 0 && budget > 0; n-- {
				budget--
				schedule(Cycles(rng.Intn(5)))
			}
		})
	}
	for i := 0; i < 50; i++ {
		budget--
		schedule(Cycles(rng.Intn(20)))
	}
	run()
	return got
}

// TestDifferentialDeterminism drives the shipped 4-ary typed heap and the
// reference container/heap scheduler with identical randomized workloads
// across several seeds and requires identical dispatch sequences. This is
// the determinism pin for the scheduler rewrite: (when, seq) is a total
// order, so any heap that pops the global minimum must dispatch in exactly
// this sequence.
func TestDifferentialDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			eng := NewEngine()
			gotNew := runDifferentialWorkload(eng, seed, func() { eng.Run(0) })

			ref := &refEngine{}
			gotRef := runDifferentialWorkload(ref, seed, func() { ref.Run() })

			if len(gotNew) != len(gotRef) {
				t.Fatalf("dispatch counts differ: engine %d, reference %d", len(gotNew), len(gotRef))
			}
			for i := range gotNew {
				if gotNew[i] != gotRef[i] {
					t.Fatalf("dispatch %d diverges: engine {id %d, cycle %d}, reference {id %d, cycle %d}",
						i, gotNew[i].id, gotNew[i].when, gotRef[i].id, gotRef[i].when)
				}
			}
		})
	}
}

// TestDifferentialDeterminismStepped re-runs one differential seed
// dispatching the engine one Step at a time, so the Run and Step paths are
// proven to share dispatch semantics.
func TestDifferentialDeterminismStepped(t *testing.T) {
	eng := NewEngine()
	gotNew := runDifferentialWorkload(eng, 7, func() {
		for eng.Step() {
		}
	})
	ref := &refEngine{}
	gotRef := runDifferentialWorkload(ref, 7, func() { ref.Run() })
	if len(gotNew) != len(gotRef) {
		t.Fatalf("dispatch counts differ: engine %d, reference %d", len(gotNew), len(gotRef))
	}
	for i := range gotNew {
		if gotNew[i] != gotRef[i] {
			t.Fatalf("dispatch %d diverges under Step: engine %+v, reference %+v", i, gotNew[i], gotRef[i])
		}
	}
}
