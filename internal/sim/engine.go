// Package sim provides the discrete-event simulation engine that drives every
// timing model in this repository. Time is measured in CPU cycles of a 2 GHz
// clock (1 ns = 2 cycles), matching the configuration in Table II of the
// ASAP paper.
package sim

import "fmt"

// Cycles is the simulation time unit: one cycle of the 2 GHz core clock.
type Cycles = uint64

// Frequency of the simulated cores, cycles per nanosecond.
const CyclesPerNS = 2

// NS converts nanoseconds to cycles.
func NS(ns uint64) Cycles { return ns * CyclesPerNS }

// EventOp is the typed-event form of a scheduled callback: a long-lived
// component (machine, model, memory controller) implements RunEvent and
// dispatches on kind, with arg carrying a small payload such as a core
// index. Scheduling through ScheduleOp/AfterOp stores the receiver in the
// event slot directly, so the hot paths schedule without allocating the
// per-event closure the fn form costs. kind values are private to each
// receiver; the engine never interprets them.
type EventOp interface {
	RunEvent(kind int, arg uint64)
}

// event is a scheduled callback. seq breaks ties deterministically so that
// two events scheduled for the same cycle fire in schedule order.
//
// The struct is deliberately pointer-free: the heap permutes events
// constantly (every push and pop moves several), and if the element held a
// closure or interface directly, every one of those moves would run a GC
// write barrier — measured at a double-digit share of whole-machine time.
// Instead an event holds indices: opIdx into the engine's registered
// receiver table (typed form) or fnIdx into the in-flight closure table
// (closure form, opIdx < 0). A 40-byte pointer-free element makes heap
// sifts plain memmoves and packs more of the frontier per cache line.
type event struct {
	when  Cycles
	seq   uint64
	arg   uint64
	sub   uint64
	kind  int32
	opIdx int32 // index into Engine.ops; -1 for closure events
	fnIdx int32 // index into Engine.fns (closure events only)
}

// localSub is the sub-order rank of locally scheduled events. Cross-shard
// arrivals are merged into the heap with the seq watermark of their send
// moment (see arriveOp): an arrival and a local event can therefore carry
// the same (when, seq), and sub breaks that tie. Arrival ranks are built
// from (source domain, drain order) and stay below localSub, so an arrival
// sorts before the first local event scheduled after its send moment —
// exactly where the serial engine would have dispatched it. In a serial
// engine every event carries localSub and seq alone is already a total
// order, so the extra comparison never fires.
const localSub = 1 << 63

// Engine is a single-threaded discrete-event simulator. Components schedule
// callbacks at future cycles; Run dispatches them in time order. Engine is
// not safe for concurrent use: the whole simulated machine runs on one
// goroutine, which keeps the model deterministic.
//
// The pending-event queue is an inlined 4-ary min-heap over a typed event
// slice, ordered by (when, seq). Compared to container/heap's binary heap
// of interface{} values this removes the per-event boxing allocation, the
// Push/Pop interface-call overhead, and (being 4-ary) roughly halves the
// sift-down depth, trading it for cheaper, cache-resident sibling scans.
// Because (when, seq) is a total order, dispatch order is independent of
// heap shape: every pop removes the unique global minimum, so this heap
// dispatches byte-identically to the container/heap implementation it
// replaced (pinned by TestDifferentialDeterminism).
type Engine struct {
	now        Cycles
	seq        uint64
	dispatched uint64  // events dispatched so far (see Dispatched)
	events     []event // 4-ary min-heap by (when, seq)
	halted     bool
	onDispatch func(when Cycles)

	// ops holds the typed-event receivers ever scheduled on this engine,
	// deduplicated by identity; events reference them by index so the
	// heap elements stay pointer-free. A machine registers only a handful
	// of receivers (machine, model, controllers), so the lookup in
	// ScheduleOp is a short pointer-compare scan.
	ops []EventOp

	// fns holds in-flight closure callbacks; fnFree recycles dispatched
	// slots. A slot is cleared at dispatch so the closure (and everything
	// it captures) is collectable as soon as it has run.
	fns    []func()
	fnFree []int32

	// marks is the seq watermark ring, maintained only when the engine is
	// a shard of a Cluster (nil on serial engines, so the serial dispatch
	// path is untouched). Each entry records "the clock advanced to cycle
	// at seq count seq": every seq below it was assigned while now was
	// below cycle. watermark() inverts that to place cross-shard arrivals
	// into the serial total order by their send moment.
	marks    []mark
	markHead int
}

// mark records one clock advance; see Engine.marks.
type mark struct {
	cycle Cycles
	seq   uint64
}

// NewEngine returns an engine with the clock at cycle zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulation time in cycles.
func (e *Engine) Now() Cycles { return e.now }

// At schedules fn to run at absolute cycle when. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(when Cycles, fn func()) {
	if when < e.now {
		panic("sim: event scheduled in the past")
	}
	var idx int32
	if n := len(e.fnFree); n > 0 {
		idx = e.fnFree[n-1]
		e.fnFree = e.fnFree[:n-1]
		e.fns[idx] = fn
	} else {
		idx = int32(len(e.fns))
		e.fns = append(e.fns, fn) //asaplint:ignore alloccheck free-list miss; bounded by peak in-flight closure events
	}
	e.push(event{when: when, seq: e.seq, opIdx: -1, fnIdx: idx, sub: localSub})
	e.seq++
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycles, fn func()) {
	e.At(e.now+delay, fn)
}

// ScheduleOp schedules the typed event (op, kind, arg) at absolute cycle
// when. It is the allocation-free counterpart of At: op is stored in the
// event slot as an interface over an existing pointer, so no closure is
// created. Scheduling in the past panics, as with At.
func (e *Engine) ScheduleOp(when Cycles, op EventOp, kind int, arg uint64) {
	if when < e.now {
		panic("sim: event scheduled in the past")
	}
	e.push(event{when: when, seq: e.seq, opIdx: e.opIndex(op), kind: int32(kind), arg: arg, sub: localSub})
	e.seq++
}

// opIndex returns op's slot in the receiver table, registering it on first
// use. Identity comparison of the interface pair is exact: receivers are
// long-lived pointers (machine, model, controllers).
func (e *Engine) opIndex(op EventOp) int32 {
	for i, o := range e.ops {
		if o == op {
			return int32(i)
		}
	}
	e.ops = append(e.ops, op) //asaplint:ignore alloccheck registers each long-lived receiver once; a handful of appends per run
	return int32(len(e.ops) - 1)
}

// AfterOp schedules the typed event (op, kind, arg) delay cycles from now.
func (e *Engine) AfterOp(delay Cycles, op EventOp, kind int, arg uint64) {
	e.ScheduleOp(e.now+delay, op, kind, arg)
}

// Pending reports the number of scheduled events not yet dispatched.
func (e *Engine) Pending() int { return len(e.events) }

// Dispatched reports the number of events dispatched since construction.
// The machine's periodic sampler publishes it as a progress metric; unlike
// the dispatch hook, the native counter is always on, so observability
// readers never see zero just because no tracer was attached.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// SetDispatchHook registers fn to be called immediately before each event
// dispatch (the observability layer counts dispatches through it). A nil fn
// clears the hook; with no hook set, dispatch pays one pointer comparison.
func (e *Engine) SetDispatchHook(fn func(when Cycles)) { e.onDispatch = fn }

// Halt stops Run before the next event is dispatched. It is typically called
// from within an event handler (e.g. by a crash injector).
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Run dispatches events in time order until the queue drains, Halt is
// called, or the clock would pass limit (limit 0 means no limit). It returns
// the cycle at which it stopped.
func (e *Engine) Run(limit Cycles) Cycles {
	for len(e.events) > 0 && !e.halted {
		if limit != 0 && e.events[0].when > limit {
			e.now = limit
			return e.now
		}
		e.dispatch()
	}
	return e.now
}

// RunUntil dispatches every event scheduled at or before limit and leaves
// the clock exactly at limit, even when the last event fired earlier (or no
// event was pending at all). It is the checkpoint/crash-injection driver's
// "advance to cycle" primitive: unlike Run, limit 0 means cycle zero, not
// "no limit", and the clock never stops short of limit — so a capture taken
// after RunUntil(c) always observes the state the machine has at cycle c,
// with every pre-c event retired.
func (e *Engine) RunUntil(limit Cycles) Cycles {
	for len(e.events) > 0 && !e.halted && e.events[0].when <= limit {
		e.dispatch()
	}
	if !e.halted && e.now < limit {
		e.now = limit
	}
	return e.now
}

// JumpTo advances the clock to when without dispatching anything. Crash
// injection uses it to place the power-failure instant between "every event
// before the crash cycle has fired" (RunUntil(when-1)) and "no event at the
// crash cycle has" — the same machine state the scheduled-crash event used
// to observe, since it carried sequence number zero and preempted all
// same-cycle work. Jumping backwards panics like scheduling in the past.
func (e *Engine) JumpTo(when Cycles) {
	if when < e.now {
		panic("sim: clock jump into the past")
	}
	e.now = when
}

// RegisterOp pre-registers a typed-event receiver, fixing its slot in the
// receiver table at construction time instead of first-schedule time. The
// slot index never influences dispatch order — (when, seq) does — but a
// checkpoint image stores heap events by receiver index, so machines
// register their receivers in one canonical construction order to make the
// table reproducible between the machine that saved an image and the fresh
// machine that restores it.
func (e *Engine) RegisterOp(op EventOp) { e.opIndex(op) }

// Quiesce verifies the engine holds no state a checkpoint image cannot
// carry — pending closure-form events, live closure slots, or a dispatch
// hook — and canonicalizes the closure tables to empty on success. Closure
// events capture arbitrary environments the serializer cannot reconstruct;
// typed events (ScheduleOp) are pointer-free and serialize by receiver
// index. A machine that schedules closures is still checkpointable at any
// cycle where none are in flight, which is what the quiescence search in
// cmd/asapsim looks for.
func (e *Engine) Quiesce() error {
	for i := range e.events {
		if e.events[i].opIdx < 0 {
			return fmt.Errorf("sim: closure event pending at cycle %d (not quiescent)", e.events[i].when)
		}
	}
	for i, fn := range e.fns {
		if fn != nil {
			return fmt.Errorf("sim: closure slot %d live (not quiescent)", i)
		}
	}
	if e.onDispatch != nil {
		return fmt.Errorf("sim: dispatch hook attached")
	}
	e.fns = e.fns[:0]
	e.fnFree = e.fnFree[:0]
	return nil
}

// Step dispatches exactly one event if available and reports whether it did.
func (e *Engine) Step() bool {
	if len(e.events) == 0 || e.halted {
		return false
	}
	e.dispatch()
	return true
}

// dispatch pops the minimum event, advances the clock, and runs the
// callback. It is the single dispatch path shared by Run and Step.
//
//asap:hot the event loop: every simulated cycle of work funnels through here
func (e *Engine) dispatch() {
	next := e.events[0]
	e.popMin()
	e.now = next.when
	e.dispatched++
	if e.onDispatch != nil {
		e.onDispatch(next.when) //asaplint:ignore alloccheck nil-guarded observability hook; off on measured runs
	}
	if next.opIdx >= 0 {
		e.ops[next.opIdx].RunEvent(int(next.kind), next.arg)
	} else {
		fn := e.fns[next.fnIdx]
		e.fns[next.fnIdx] = nil
		e.fnFree = append(e.fnFree, next.fnIdx) //asaplint:ignore alloccheck free list bounded by peak closure events; backing array reaches it once
		fn()                                    //asaplint:ignore alloccheck closure-form events are the cold-path API; schedcheck keeps them out of converted packages
	}
}

// less orders heap slots by (when, seq, sub). Locally scheduled events
// never share a seq, so for a serial engine the sub comparison is dead
// code on a branch that never executes; it exists to rank cross-shard
// arrivals against the local events around their send moment.
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq || (a.seq == b.seq && a.sub < b.sub)
}

// push appends ev and restores the heap property by sifting it up.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev) //asaplint:ignore alloccheck heap storage reaches steady-state capacity, then appends reuse it
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// popMin removes the root. Events are pointer-free (closures live in
// Engine.fns and are cleared at dispatch), so the vacated tail slot needs
// no zeroing for the collector's sake.
func (e *Engine) popMin() {
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events = e.events[:n]
	if n > 1 {
		e.siftDown(0)
	}
}

// siftDown restores the heap property below slot i: swap with the smallest
// of up to four children until neither child is smaller.
func (e *Engine) siftDown(i int) {
	n := len(e.events)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(c, min) {
				min = c
			}
		}
		if !e.less(min, i) {
			return
		}
		e.events[i], e.events[min] = e.events[min], e.events[i]
		i = min
	}
}
