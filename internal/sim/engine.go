// Package sim provides the discrete-event simulation engine that drives every
// timing model in this repository. Time is measured in CPU cycles of a 2 GHz
// clock (1 ns = 2 cycles), matching the configuration in Table II of the
// ASAP paper.
package sim

import "container/heap"

// Cycles is the simulation time unit: one cycle of the 2 GHz core clock.
type Cycles = uint64

// Frequency of the simulated cores, cycles per nanosecond.
const CyclesPerNS = 2

// NS converts nanoseconds to cycles.
func NS(ns uint64) Cycles { return ns * CyclesPerNS }

// event is a scheduled callback. seq breaks ties deterministically so that
// two events scheduled for the same cycle fire in schedule order.
type event struct {
	when Cycles
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. Components schedule
// callbacks at future cycles; Run dispatches them in time order. Engine is
// not safe for concurrent use: the whole simulated machine runs on one
// goroutine, which keeps the model deterministic.
type Engine struct {
	now        Cycles
	seq        uint64
	events     eventHeap
	halted     bool
	onDispatch func(when Cycles)
}

// NewEngine returns an engine with the clock at cycle zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulation time in cycles.
func (e *Engine) Now() Cycles { return e.now }

// At schedules fn to run at absolute cycle when. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (e *Engine) At(when Cycles, fn func()) {
	if when < e.now {
		panic("sim: event scheduled in the past")
	}
	heap.Push(&e.events, event{when: when, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycles, fn func()) {
	e.At(e.now+delay, fn)
}

// Pending reports the number of scheduled events not yet dispatched.
func (e *Engine) Pending() int { return len(e.events) }

// SetDispatchHook registers fn to be called immediately before each event
// dispatch (the observability layer counts dispatches through it). A nil fn
// clears the hook; with no hook set, dispatch pays one pointer comparison.
func (e *Engine) SetDispatchHook(fn func(when Cycles)) { e.onDispatch = fn }

// Halt stops Run before the next event is dispatched. It is typically called
// from within an event handler (e.g. by a crash injector).
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called.
func (e *Engine) Halted() bool { return e.halted }

// Run dispatches events in time order until the queue drains, Halt is
// called, or the clock would pass limit (limit 0 means no limit). It returns
// the cycle at which it stopped.
func (e *Engine) Run(limit Cycles) Cycles {
	for len(e.events) > 0 && !e.halted {
		next := e.events[0]
		if limit != 0 && next.when > limit {
			e.now = limit
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.when
		if e.onDispatch != nil {
			e.onDispatch(next.when)
		}
		next.fn()
	}
	return e.now
}

// Step dispatches exactly one event if available and reports whether it did.
func (e *Engine) Step() bool {
	if len(e.events) == 0 || e.halted {
		return false
	}
	next := heap.Pop(&e.events).(event)
	e.now = next.when
	if e.onDispatch != nil {
		e.onDispatch(next.when)
	}
	next.fn()
	return true
}
