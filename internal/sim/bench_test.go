package sim

import "testing"

// BenchmarkEventThroughput measures raw simulator event dispatch rate — the
// figure that bounds how much simulated time per wall-second every
// experiment gets.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(3, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkEventThroughputHooked is BenchmarkEventThroughput with a
// dispatch hook attached — the tracing-on configuration. The delta
// against BenchmarkEventThroughput is the cost tracing adds per
// dispatched event; CI gates both through benchdiff.
func BenchmarkEventThroughputHooked(b *testing.B) {
	e := NewEngine()
	var dispatched uint64
	e.SetDispatchHook(func(Cycles) { dispatched++ })
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(3, tick)
		}
	}
	e.After(1, tick)
	b.ResetTimer()
	e.Run(0)
	if dispatched == 0 {
		b.Fatal("dispatch hook never fired")
	}
}

// benchTickOp is the typed-event receiver for BenchmarkEventThroughputTyped.
type benchTickOp struct {
	e *Engine
	n int
	N int
}

func (t *benchTickOp) RunEvent(kind int, arg uint64) {
	t.n++
	if t.n < t.N {
		t.e.AfterOp(3, t, 0, 0)
	}
}

// BenchmarkEventThroughputTyped is BenchmarkEventThroughput on the typed
// ScheduleOp/AfterOp path the converted hot layers use — no closure even at
// schedule time. Gated at 0 allocs/op through benchdiff.
func BenchmarkEventThroughputTyped(b *testing.B) {
	e := NewEngine()
	op := &benchTickOp{e: e, N: b.N}
	e.AfterOp(1, op, 0, 0)
	b.ResetTimer()
	e.Run(0)
}

// BenchmarkEventFanout measures dispatch with a deep, wide queue (the
// pattern MC drain + per-core flushers produce).
func BenchmarkEventFanout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			j := j
			e.At(Cycles(j%97+1), func() {
				if j%10 == 0 {
					e.After(5, func() {})
				}
			})
		}
		e.Run(0)
	}
}
