package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// The differential fixture: P communicating state machines, runnable
// either on one serial engine or on a P-domain cluster. Each component
// ticks on its own phase class (all its schedule calls happen at cycles
// congruent to its id modulo P), so no two domains ever make a schedule
// call at the same cycle — the one case where sharded arrival order is
// allowed to differ from serial order. Under that restriction the
// sharded cluster must reproduce the serial engine's per-component
// dispatch log exactly, which pins the watermark arrival placement.

type dispatchRec struct {
	when Cycles
	kind int
	arg  uint64
}

type diffComp struct {
	id       int
	peers    int
	period   Cycles // = peers: tick delays are multiples, preserving phase
	look     Cycles
	eng      *Engine
	send     func(src, dst int, delay Cycles, kind int, arg uint64)
	state    uint64
	ticks    int
	maxTicks int
	log      []dispatchRec
}

func (c *diffComp) RunEvent(kind int, arg uint64) {
	c.log = append(c.log, dispatchRec{c.eng.Now(), kind, arg})
	c.state = c.state*6364136223846793005 + arg*31 + uint64(kind) + 1442695040888963407
	if kind != 0 || c.ticks >= c.maxTicks {
		return
	}
	c.ticks++
	c.eng.AfterOp(c.period*Cycles(1+c.state%5), c, 0, c.state>>7)
	if c.state%3 == 0 {
		dst := int(c.state>>11) % c.peers
		if dst != c.id {
			delay := c.look + Cycles(c.state%7)*c.period
			c.send(c.id, dst, delay, 1, c.state>>3)
		}
	}
}

// testMsg and testInbox are the test's stand-in for the persist.Link
// endpoints: a stamped SPSC ring drained into the destination heap.
type testMsg struct {
	when Cycles
	sent Cycles
	kind int32
	arg  uint64
}

type testInbox struct {
	ring *Ring[testMsg]
	dst  *diffComp
	ctr  uint64
}

func (ib *testInbox) Drain(dst *Engine, subBase uint64) {
	var m testMsg
	for ib.ring.Recv(&m) {
		dst.ArriveOp(m.when, m.sent, ib.dst, int(m.kind), m.arg, subBase|ib.ctr)
		ib.ctr++
	}
}

func newComps(p, maxTicks int, look Cycles) []*diffComp {
	comps := make([]*diffComp, p)
	for i := range comps {
		comps[i] = &diffComp{
			id: i, peers: p, period: Cycles(p), look: look,
			state: uint64(i)*0x9e3779b97f4a7c15 + 1, maxTicks: maxTicks,
		}
	}
	return comps
}

func runSerialDiff(p, maxTicks int, look Cycles) []*diffComp {
	comps := newComps(p, maxTicks, look)
	eng := NewEngine()
	for _, c := range comps {
		c.eng = eng
		c.send = func(src, dst int, delay Cycles, kind int, arg uint64) {
			eng.AfterOp(delay, comps[dst], kind, arg)
		}
		eng.ScheduleOp(Cycles(c.id), c, 0, 0)
	}
	eng.Run(0)
	return comps
}

func runShardedDiff(p, maxTicks int, look Cycles) []*diffComp {
	comps := newComps(p, maxTicks, look)
	cl := NewCluster(p, look)
	rings := make([][]*Ring[testMsg], p)
	for src := 0; src < p; src++ {
		rings[src] = make([]*Ring[testMsg], p)
		for dst := 0; dst < p; dst++ {
			if src != dst {
				rings[src][dst] = NewRing[testMsg](1 << 12)
			}
		}
	}
	for dst := 0; dst < p; dst++ {
		for src := 0; src < p; src++ {
			if src != dst {
				cl.AddInbox(dst, &testInbox{ring: rings[src][dst], dst: comps[dst]})
			}
		}
	}
	for _, c := range comps {
		c.eng = cl.Domain(c.id)
		c.send = func(src, dst int, delay Cycles, kind int, arg uint64) {
			e := cl.Domain(src)
			if !rings[src][dst].Send(testMsg{when: e.Now() + delay, sent: e.Now(), kind: int32(kind), arg: arg}) {
				panic("test ring full")
			}
		}
		c.eng.ScheduleOp(Cycles(c.id), c, 0, 0)
	}
	cl.Run(0)
	return comps
}

// TestClusterMatchesSerial pins the sharded scheduler's contract: with
// schedule moments phase-separated across domains, every component's
// dispatch log — times, kinds, payloads, order — is identical to the
// serial engine's, for several domain counts.
func TestClusterMatchesSerial(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		p := p
		t.Run(fmt.Sprintf("domains=%d", p), func(t *testing.T) {
			look := Cycles(p) * 2
			serial := runSerialDiff(p, 400, look)
			sharded := runShardedDiff(p, 400, look)
			for i := range serial {
				if len(serial[i].log) == 0 {
					t.Fatalf("comp %d: empty serial log", i)
				}
				if !reflect.DeepEqual(serial[i].log, sharded[i].log) {
					for j := range serial[i].log {
						if j >= len(sharded[i].log) || serial[i].log[j] != sharded[i].log[j] {
							t.Fatalf("comp %d diverges at dispatch %d: serial %+v sharded %+v",
								i, j, serial[i].log[j], at(sharded[i].log, j))
						}
					}
					t.Fatalf("comp %d: sharded log longer (%d vs %d)", i, len(sharded[i].log), len(serial[i].log))
				}
				if serial[i].state != sharded[i].state {
					t.Fatalf("comp %d: state %#x vs %#x", i, serial[i].state, sharded[i].state)
				}
			}
		})
	}
}

func at(log []dispatchRec, j int) any {
	if j < len(log) {
		return log[j]
	}
	return "<missing>"
}

// TestClusterFinalClock pins that the cluster's stop time matches the
// serial engine's Now after the same run, including the limit case.
func TestClusterFinalClock(t *testing.T) {
	look := Cycles(3) * 2
	comps := newComps(3, 200, look)
	eng := NewEngine()
	for _, c := range comps {
		c.eng = eng
		c.send = func(src, dst int, delay Cycles, kind int, arg uint64) {
			eng.AfterOp(delay, comps[dst], kind, arg)
		}
		eng.ScheduleOp(Cycles(c.id), c, 0, 0)
	}
	serialEnd := eng.Run(0)

	sharded := runShardedDiff(3, 200, look)
	if got := sharded[0].eng.Now(); got != serialEnd {
		t.Fatalf("sharded stop clock %d, serial %d", got, serialEnd)
	}

	// Limit: both engines report exactly the limit when events remain.
	limit := serialEnd / 2
	eng2 := NewEngine()
	comps2 := newComps(3, 200, look)
	for _, c := range comps2 {
		c.eng = eng2
		c.send = func(src, dst int, delay Cycles, kind int, arg uint64) {
			eng2.AfterOp(delay, comps2[dst], kind, arg)
		}
		eng2.ScheduleOp(Cycles(c.id), c, 0, 0)
	}
	if got := eng2.Run(limit); got != limit {
		t.Fatalf("serial limit run stopped at %d, want %d", got, limit)
	}

	comps3 := newComps(3, 200, look)
	cl := NewCluster(3, look)
	rings := make([][]*Ring[testMsg], 3)
	for src := range rings {
		rings[src] = make([]*Ring[testMsg], 3)
		for dst := range rings[src] {
			if src != dst {
				rings[src][dst] = NewRing[testMsg](1 << 12)
			}
		}
	}
	for dst := 0; dst < 3; dst++ {
		for src := 0; src < 3; src++ {
			if src != dst {
				cl.AddInbox(dst, &testInbox{ring: rings[src][dst], dst: comps3[dst]})
			}
		}
	}
	for _, c := range comps3 {
		c.eng = cl.Domain(c.id)
		c.send = func(src, dst int, delay Cycles, kind int, arg uint64) {
			e := cl.Domain(src)
			rings[src][dst].Send(testMsg{when: e.Now() + delay, sent: e.Now(), kind: int32(kind), arg: arg})
		}
		c.eng.ScheduleOp(Cycles(c.id), c, 0, 0)
	}
	if got := cl.Run(limit); got != limit {
		t.Fatalf("cluster limit run stopped at %d, want %d", got, limit)
	}
}

// panicComp panics on its nth dispatch.
type panicComp struct {
	eng  *Engine
	n    int
	seen int
}

func (p *panicComp) RunEvent(kind int, arg uint64) {
	p.seen++
	if p.seen >= p.n {
		panic("boom from shard")
	}
	p.eng.AfterOp(4, p, 0, 0)
}

// TestClusterPanicPropagates pins that a panic inside any shard reaches
// the Run caller with its original value and does not deadlock siblings.
func TestClusterPanicPropagates(t *testing.T) {
	for _, dom := range []int{0, 1} {
		cl := NewCluster(2, 4)
		pc := &panicComp{eng: cl.Domain(dom), n: 5}
		pc.eng.ScheduleOp(0, pc, 0, 0)
		// Keep the other domain busy so it is parked at the barrier.
		other := &panicComp{eng: cl.Domain(1 - dom), n: 1 << 30}
		other.eng.ScheduleOp(0, other, 0, 0)
		func() {
			defer func() {
				if r := recover(); r != "boom from shard" {
					t.Fatalf("domain %d: recovered %v, want boom", dom, r)
				}
			}()
			cl.Run(0)
			t.Fatalf("domain %d: Run returned without panicking", dom)
		}()
	}
}

// TestRingSPSC hammers one ring from a producer and a consumer goroutine
// with randomized burst sizes, asserting FIFO integrity and no loss.
// Under -race this is the memory-model gate for the cross-shard channel.
func TestRingSPSC(t *testing.T) {
	const total = 200000
	r := NewRing[uint64](1 << 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		next := uint64(0)
		for next < total {
			burst := rng.Intn(300) + 1
			for i := 0; i < burst && next < total; i++ {
				if r.Send(next) {
					next++
				}
			}
		}
	}()
	rng := rand.New(rand.NewSource(11))
	want := uint64(0)
	for want < total {
		burst := rng.Intn(300) + 1
		var v uint64
		for i := 0; i < burst && want < total; i++ {
			if r.Recv(&v) {
				if v != want {
					t.Fatalf("ring out of order: got %d want %d", v, want)
				}
				want++
			}
		}
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not drained: %d left", r.Len())
	}
}

// TestClusterStress runs the differential fixture big and wide — this is
// the randomized-burst barrier/ring stress test the CI race job runs
// under -race. Correctness is still pinned against serial.
func TestClusterStress(t *testing.T) {
	p, ticks := 4, 3000
	if testing.Short() {
		ticks = 500
	}
	look := Cycles(p) * 2
	serial := runSerialDiff(p, ticks, look)
	sharded := runShardedDiff(p, ticks, look)
	for i := range serial {
		if serial[i].state != sharded[i].state {
			t.Fatalf("comp %d: state %#x vs %#x", i, serial[i].state, sharded[i].state)
		}
		if len(serial[i].log) != len(sharded[i].log) {
			t.Fatalf("comp %d: %d vs %d dispatches", i, len(serial[i].log), len(sharded[i].log))
		}
	}
}

// tickComp reschedules itself forever at a fixed period; with one per
// domain it makes every window dispatch exactly one event per shard,
// so BenchmarkShardBarrier measures the per-window synchronization cost
// (two barrier crossings + drain + min-reduce) of the cluster.
type tickComp struct {
	eng    *Engine
	period Cycles
}

func (tc *tickComp) RunEvent(kind int, arg uint64) {
	tc.eng.AfterOp(tc.period, tc, 0, 0)
}

func BenchmarkShardBarrier(b *testing.B) {
	const look = 20
	cl := NewCluster(2, look)
	for d := 0; d < 2; d++ {
		tc := &tickComp{eng: cl.Domain(d), period: look}
		tc.eng.ScheduleOp(0, tc, 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	cl.Run(Cycles(b.N) * look)
}
