package sim

import (
	"runtime"
	"testing"
)

// recordingOp is a typed-event receiver that logs (kind, arg, cycle).
type recordingOp struct {
	eng *Engine
	got [][3]uint64
}

func (r *recordingOp) RunEvent(kind int, arg uint64) {
	r.got = append(r.got, [3]uint64{uint64(kind), arg, r.eng.Now()})
}

// TestTypedEvents checks that ScheduleOp/AfterOp dispatch in (when, seq)
// order interleaved with closure-form events, carrying kind and arg intact.
func TestTypedEvents(t *testing.T) {
	e := NewEngine()
	r := &recordingOp{eng: e}
	e.ScheduleOp(20, r, 2, 200)
	e.AfterOp(10, r, 1, 100)
	closureRan := false
	e.At(15, func() { closureRan = true })
	e.AfterOp(20, r, 3, 300)
	e.Run(0)
	want := [][3]uint64{{1, 100, 10}, {2, 200, 20}, {3, 300, 20}}
	if len(r.got) != len(want) {
		t.Fatalf("dispatched %d typed events, want %d", len(r.got), len(want))
	}
	for i, w := range want {
		if r.got[i] != w {
			t.Fatalf("typed event %d = %v, want %v", i, r.got[i], w)
		}
	}
	if !closureRan {
		t.Fatal("closure event interleaved with typed events did not run")
	}
}

// TestTypedTieBreakWithClosures: typed and closure events scheduled for the
// same cycle fire in schedule order, regardless of form.
func TestTypedTieBreakWithClosures(t *testing.T) {
	e := NewEngine()
	var order []int
	r := &funcOp{fn: func(kind int, _ uint64) { order = append(order, kind) }}
	e.ScheduleOp(5, r, 0, 0)
	e.At(5, func() { order = append(order, 1) })
	e.ScheduleOp(5, r, 2, 0)
	e.At(5, func() { order = append(order, 3) })
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle mixed-form events out of schedule order: %v", order)
		}
	}
}

type funcOp struct {
	fn func(kind int, arg uint64)
}

func (f *funcOp) RunEvent(kind int, arg uint64) { f.fn(kind, arg) }

// TestScheduleOpPastPanics mirrors TestSchedulePastPanics for the typed form.
func TestScheduleOpPastPanics(t *testing.T) {
	e := NewEngine()
	r := &recordingOp{eng: e}
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleOp in the past did not panic")
			}
		}()
		e.ScheduleOp(5, r, 0, 0)
	})
	e.Run(0)
}

// TestTypedEventZeroAlloc pins the zero-allocation contract of the typed
// scheduling path: a steady-state AfterOp reschedule chain must not
// allocate at all.
func TestTypedEventZeroAlloc(t *testing.T) {
	e := NewEngine()
	var op *funcOp
	n := 0
	op = &funcOp{fn: func(int, uint64) {
		n++
		if n < 1000 {
			e.AfterOp(3, op, 0, 0)
		}
	}}
	// Warm up so the event slice reaches steady-state capacity.
	e.AfterOp(1, op, 0, 0)
	e.Run(0)
	n = 0
	allocs := testing.AllocsPerRun(10, func() {
		n = 0
		e.AfterOp(1, op, 0, 0)
		e.Run(0)
	})
	if allocs > 0 {
		t.Fatalf("typed event chain allocated %.1f times per run, want 0", allocs)
	}
}

// TestPopReleasesEventMemory: after dispatch, the queue must not keep the
// event's closure reachable through the slice's spare capacity. The closure
// captures a large buffer and sets a finalizer canary on it; if popMin
// failed to clear the vacated slot, the buffer would survive collection.
func TestPopReleasesEventMemory(t *testing.T) {
	e := NewEngine()
	collected := make(chan struct{})
	func() {
		buf := make([]byte, 1<<20)
		runtime.SetFinalizer(&buf[0], func(*byte) { close(collected) })
		e.After(1, func() { buf[0] = 1 })
	}()
	// Keep the engine alive (and with it the events slice's spare capacity)
	// while forcing collection of the dispatched event's closure.
	e.Run(0)
	for i := 0; i < 10; i++ {
		runtime.GC()
		select {
		case <-collected:
			if e.Pending() != 0 {
				t.Fatal("queue not empty")
			}
			return
		default:
		}
	}
	t.Fatal("dispatched event's closure still reachable: popMin did not clear the vacated slot")
}
