package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.After(30, func() { got = append(got, 3) })
	e.After(10, func() { got = append(got, 1) })
	e.After(20, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestTieBreakIsScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events dispatched out of schedule order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Cycles
	e.After(1, func() {
		trace = append(trace, e.Now())
		e.After(5, func() {
			trace = append(trace, e.Now())
		})
		e.After(0, func() {
			trace = append(trace, e.Now())
		})
	})
	e.Run(0)
	if len(trace) != 3 || trace[0] != 1 || trace[1] != 1 || trace[2] != 6 {
		t.Fatalf("nested schedule times wrong: %v", trace)
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(100, func() { fired = true })
	end := e.Run(50)
	if fired {
		t.Fatal("event beyond the limit fired")
	}
	if end != 50 {
		t.Fatalf("Run returned %d, want 50", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run(0)
	if !fired {
		t.Fatal("event did not fire after resuming")
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Cycles(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Fatalf("dispatched %d events after Halt, want 3", count)
	}
	if !e.Halted() {
		t.Fatal("Halted() false after Halt")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.After(1, func() { n++ })
	e.After(2, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatal("first Step failed")
	}
	if !e.Step() || n != 2 {
		t.Fatal("second Step failed")
	}
	if e.Step() {
		t.Fatal("Step on empty queue reported true")
	}
}

// TestMonotonicClock (property): for any delay sequence, dispatch times are
// non-decreasing.
func TestMonotonicClock(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var times []Cycles
		for _, d := range delays {
			e.After(Cycles(d), func() { times = append(times, e.Now()) })
		}
		e.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNSConversion(t *testing.T) {
	if NS(1) != 2 || NS(90) != 180 || NS(175) != 350 {
		t.Fatal("NS conversion wrong for 2 GHz clock")
	}
}
