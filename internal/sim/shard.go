// Sharded parallel dispatch: a Cluster partitions one simulated machine
// into timing domains, each owning a private Engine driven by its own
// worker goroutine, synchronized by a conservative time window in the
// gem5 multi-event-queue style.
//
// The contract is the classic conservative-PDES one: every cross-domain
// interaction must be routed as a message with a simulated latency of at
// least the cluster's lookahead (for this machine, min(FlushLat, MsgLat)
// from the config). Each round, all domains agree on the global minimum
// pending event time m and dispatch only events in [m, m+lookahead); a
// message sent while dispatching inside that window carries a delivery
// stamp >= m+lookahead, so it is always drained into the destination
// heap at a barrier before the destination can reach it.
//
// Arrival ordering is what makes parallel results match serial ones. The
// serial engine orders same-cycle events by a global schedule sequence.
// A sharded engine cannot assign a global seq, but it can reconstruct
// where an arrival would have landed: each shard records a watermark
// (cycle, seq) at every clock advance, and an arrival sent at cycle S is
// merged with the seq its receiver's counter held when its clock passed
// S — i.e. exactly after every local event scheduled while now <= S and
// before every event scheduled later, which is where a serial engine's
// global seq would have placed it. The only serial/parallel divergence
// left is the relative order of schedule calls made at the same cycle on
// different domains, which the differential suite pins as result-neutral.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// markRingSize bounds the watermark history a shard retains. Arrivals
// drained at a window boundary were sent no earlier than the previous
// window, and a window spans at most lookahead distinct dispatch cycles,
// so the live span is tiny; the ring is generously larger and watermark
// panics if an arrival ever looks past it.
const markRingSize = 1024

// shardInit prepares e to run as one domain of a Cluster: the watermark
// ring is what distinguishes a shard engine from a serial one.
func (e *Engine) shardInit() {
	e.marks = make([]mark, markRingSize)
}

// watermark places a cross-shard send moment into this engine's local
// seq order: it returns the seq an event scheduled here at cycle sent
// would have received. Concretely that is the seq counter value at the
// first recorded clock advance past sent, or the live counter if the
// clock has not advanced past sent.
func (e *Engine) watermark(sent Cycles) uint64 {
	w := e.seq
	n := len(e.marks)
	lo := e.markHead - n
	if lo < 0 {
		lo = 0
	}
	for i := e.markHead - 1; i >= lo; i-- {
		m := &e.marks[i&(n-1)]
		if m.cycle <= sent {
			return w
		}
		w = m.seq
	}
	if e.markHead > n {
		panic("sim: watermark ring too small for arrival send time")
	}
	return w
}

// ArriveOp merges a cross-shard typed event into the heap. when is the
// delivery stamp, sent the sender's clock at the send; sub ranks
// arrivals that share a send moment (callers build it from the source
// domain and drain order, below localSub). Only the engine's own worker
// may call it, between windows.
func (e *Engine) ArriveOp(when, sent Cycles, op EventOp, kind int, arg uint64, sub uint64) {
	if when < e.now {
		panic("sim: cross-shard arrival in the past (latency below cluster lookahead)")
	}
	e.push(event{when: when, seq: e.watermark(sent), arg: arg, kind: int32(kind), opIdx: e.opIndex(op), sub: sub})
}

// ArriveFn is ArriveOp for closure-form deliveries (the legacy model
// API); the closure parks in the engine's fns table like an At call.
func (e *Engine) ArriveFn(when, sent Cycles, fn func(), sub uint64) {
	if when < e.now {
		panic("sim: cross-shard arrival in the past (latency below cluster lookahead)")
	}
	var idx int32
	if n := len(e.fnFree); n > 0 {
		idx = e.fnFree[n-1]
		e.fnFree = e.fnFree[:n-1]
		e.fns[idx] = fn
	} else {
		idx = int32(len(e.fns))
		e.fns = append(e.fns, fn) //asaplint:ignore alloccheck free-list miss; bounded by peak in-flight closure events
	}
	e.push(event{when: when, seq: e.watermark(sent), opIdx: -1, fnIdx: idx, sub: sub})
}

// minWhen reports the earliest pending event time, or ^0 when idle.
func (e *Engine) minWhen() Cycles {
	if len(e.events) == 0 {
		return ^Cycles(0)
	}
	return e.events[0].when
}

// runWindow dispatches events strictly before horizon, recording a seq
// watermark at every clock advance so later arrivals can be placed. It
// reports false if a handler halted the engine.
//
//asap:hot the shard dispatch loop: every sharded cycle of work funnels through here
func (e *Engine) runWindow(horizon Cycles) bool {
	for len(e.events) > 0 && !e.halted {
		next := &e.events[0]
		if next.when >= horizon {
			break
		}
		if next.when != e.now {
			e.marks[e.markHead&(markRingSize-1)] = mark{cycle: next.when, seq: e.seq}
			e.markHead++
		}
		e.dispatch()
	}
	return !e.halted
}

// Ring is a fixed-capacity single-producer single-consumer queue: the
// cross-shard message channel. One goroutine sends, one receives; the
// Cluster's window barrier supplies the ordering that makes "producer
// finished before consumer drains" hold each round.
type Ring[T any] struct {
	mask uint64
	buf  []T
	_    [48]byte
	head atomic.Uint64 // consumer cursor
	_    [56]byte
	tail atomic.Uint64 // producer cursor
	_    [56]byte
}

// NewRing returns a ring holding up to capacity elements (rounded up to
// a power of two, minimum 2).
func NewRing[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{mask: uint64(n - 1)}
	r.buf = make([]T, n)
	return r
}

// Send enqueues v, reporting false if the ring is full.
//
//asap:hot cross-shard send: called from dispatch handlers via Link
func (r *Ring[T]) Send(v T) bool {
	t := r.tail.Load()            //asaplint:ignore alloccheck atomic.Uint64.Load is a single MOV, no allocation
	if t-r.head.Load() > r.mask { //asaplint:ignore alloccheck atomic.Uint64.Load is a single MOV, no allocation
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1) //asaplint:ignore alloccheck atomic.Uint64.Store is a single XCHG, no allocation
	return true
}

// Recv dequeues into v, reporting false if the ring is empty. The slot
// is zeroed so payload references do not outlive delivery.
//
//asap:hot cross-shard drain: called at every window barrier
func (r *Ring[T]) Recv(v *T) bool {
	h := r.head.Load()      //asaplint:ignore alloccheck atomic.Uint64.Load is a single MOV, no allocation
	if h == r.tail.Load() { //asaplint:ignore alloccheck atomic.Uint64.Load is a single MOV, no allocation
		return false
	}
	i := h & r.mask
	*v = r.buf[i]
	var zero T
	r.buf[i] = zero
	r.head.Store(h + 1) //asaplint:ignore alloccheck atomic.Uint64.Store is a single XCHG, no allocation
	return true
}

// Len reports the number of queued elements (exact only when producer
// and consumer are quiescent, as at a window barrier).
func (r *Ring[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// An Inbox delivers cross-shard messages into a destination engine at a
// window barrier. Implementations (persist.Link's ring endpoints) pop
// every pending message and ArriveOp/ArriveFn it, ranking each arrival
// as sub = subBase | ctr where ctr is the inbox's own delivery counter,
// monotonic over the whole run: two arrivals from one source that
// collapse to the same (when, seq) — the receiver idle between their
// send moments — must still sort in send order, and a counter that
// reset each drain would collide across windows.
type Inbox interface {
	Drain(dst *Engine, subBase uint64)
}

// subShift positions the inbox index above the 48-bit delivery counter
// in an arrival's sub rank; both stay below localSub.
const subShift = 48

// padCycles keeps each domain's posted minimum on its own cache line.
type padCycles struct {
	v Cycles
	_ [56]byte
}

// Cluster coordinates the domain engines of one sharded machine. Domain
// 0 conventionally hosts the cores and runs on the caller's goroutine;
// Run drives all domains to completion.
type Cluster struct {
	domains   []*Engine
	inboxes   [][]Inbox
	lookahead Cycles
	limit     Cycles

	// barrier state: a central sense-reversing barrier, crossed twice
	// per window (once after sends quiesce, once after minima post).
	arrived atomic.Int32
	sense   atomic.Uint32
	haltReq atomic.Bool
	abort   atomic.Bool
	mins    []padCycles

	// reducer-written between barrier senses, read by all after release.
	windowEnd Cycles
	done      bool
	hitLimit  bool

	panicOnce sync.Once
	panicVal  any
}

// NewCluster builds n domain engines synchronized at the given lookahead
// (the minimum cross-domain message latency, in cycles). n must be at
// least 2 and lookahead at least 1.
func NewCluster(n int, lookahead Cycles) *Cluster {
	if n < 2 {
		panic("sim: cluster needs at least two domains")
	}
	if lookahead == 0 {
		panic("sim: cluster lookahead must be positive")
	}
	c := &Cluster{
		domains:   make([]*Engine, n),
		inboxes:   make([][]Inbox, n),
		lookahead: lookahead,
		mins:      make([]padCycles, n),
	}
	for i := range c.domains {
		e := NewEngine()
		e.shardInit()
		c.domains[i] = e
	}
	return c
}

// Domain returns shard i's engine. Components assigned to a domain must
// schedule exclusively on its engine.
func (c *Cluster) Domain(i int) *Engine { return c.domains[i] }

// Domains reports the number of shards.
func (c *Cluster) Domains() int { return len(c.domains) }

// Lookahead reports the conservative window width in cycles.
func (c *Cluster) Lookahead() Cycles { return c.lookahead }

// AddInbox registers an inbox draining into domain dst. Registration
// order fixes arrival order between inboxes; callers register in source
// domain order to keep it deterministic.
func (c *Cluster) AddInbox(dst int, ib Inbox) {
	c.inboxes[dst] = append(c.inboxes[dst], ib)
}

// Run drives every domain until all heaps and rings drain, a handler
// halts, or the clock would pass limit (0 = no limit), then aligns all
// domain clocks to the global stop time — the same cycle the serial
// engine would report — and returns it.
func (c *Cluster) Run(limit Cycles) Cycles {
	c.limit = limit
	c.done = false
	c.hitLimit = false
	var wg sync.WaitGroup
	for d := 1; d < len(c.domains); d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			c.worker(d)
		}(d)
	}
	c.worker(0)
	wg.Wait()
	if c.panicVal != nil {
		panic(c.panicVal)
	}
	stop := Cycles(0)
	for _, e := range c.domains {
		if e.now > stop {
			stop = e.now
		}
	}
	if c.hitLimit && limit > stop {
		stop = limit
	}
	for _, e := range c.domains {
		e.now = stop
	}
	return stop
}

// abortPanic is the sentinel a waiter throws to escape the barrier when
// a sibling shard has already panicked; it never shadows the original
// panic value.
type abortPanic struct{}

// worker is one domain's drive loop: quiesce sends, drain arrivals,
// agree on the next window, dispatch it.
func (c *Cluster) worker(d int) {
	defer func() {
		if r := recover(); r != nil {
			if _, sentinel := r.(abortPanic); !sentinel {
				c.panicOnce.Do(func() { c.panicVal = r })
			}
			c.abort.Store(true)
			if d == 0 {
				// Domain 0 runs on the caller's goroutine, so its panic
				// must reach Run's caller — the original value, not the
				// barrier-escape sentinel, when a sibling panicked first.
				if _, sentinel := r.(abortPanic); sentinel && c.panicVal != nil {
					panic(c.panicVal)
				}
				panic(r)
			}
		}
	}()
	e := c.domains[d]
	for {
		c.barrier(false) // all domains' sends for the last window are in the rings
		for i, ib := range c.inboxes[d] {
			ib.Drain(e, uint64(i+1)<<subShift)
		}
		c.mins[d].v = e.minWhen()
		c.barrier(true) // reducer fixes the next window from the posted minima
		if c.done {
			return
		}
		if !e.runWindow(c.windowEnd) {
			c.haltReq.Store(true)
		}
	}
}

// barrier is the central sense-reversing barrier. The last arriver
// optionally runs the window reduction before releasing the others.
// Waiters spin briefly and then yield, so an oversubscribed box (or a
// single-core one) degrades to cooperative scheduling instead of
// burning a quantum per window.
func (c *Cluster) barrier(reduce bool) {
	s := c.sense.Load()
	if int(c.arrived.Add(1)) == len(c.domains) {
		c.arrived.Store(0)
		if reduce {
			c.reduce()
		}
		c.sense.Store(s ^ 1)
		return
	}
	for spins := 0; c.sense.Load() == s; spins++ {
		if c.abort.Load() {
			panic(abortPanic{})
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// reduce computes the next window [m, m+lookahead) from the posted
// minima, or marks the run done: on global quiescence, on a halt
// request, or when the minimum passes the run limit.
func (c *Cluster) reduce() {
	min := ^Cycles(0)
	for i := range c.mins {
		if c.mins[i].v < min {
			min = c.mins[i].v
		}
	}
	switch {
	case c.haltReq.Load() || c.abort.Load() || min == ^Cycles(0):
		c.done = true
	case c.limit != 0 && min > c.limit:
		c.done = true
		c.hitLimit = true
	default:
		end := min + c.lookahead
		if c.limit != 0 && end > c.limit+1 {
			end = c.limit + 1
		}
		c.windowEnd = end
	}
}
