package pmds

// CCEH is cacheline-conscious extendible hashing (Nam et al., FAST'19), one
// of the concurrent persistent data structures whose frequent cross-thread
// dependencies motivate ASAP (Figure 2). A directory of segment pointers is
// indexed by the top globalDepth hash bits; segments hold buckets of
// four 16-byte slots probed linearly across a small neighbourhood. Inserts
// write the value word first and the key word last (the key is the commit
// marker), with an ofence between — CCEH's logging-free crash consistency —
// and a dfence before returning. A full neighbourhood splits the segment:
// a new segment is allocated, entries are rehashed and the directory is
// atomically repointed, each step ordered by fences.
type CCEH struct {
	h *Heap

	rootAddr    uint64 // persistent root record: [dirAddr, globalDepth]
	dirAddr     uint64 // directory: dirSize segment addresses
	globalDepth uint
	segLocks    map[uint64]uint64 // segment addr -> lock addr
	valueSize   int

	// geometry
	bucketsPerSeg uint64
	slotsPerBkt   uint64
	probeBuckets  uint64
}

const (
	ccehSlotBytes   = 16 // key(8) + value(8)
	ccehSegDepthOff = 0
	ccehSegHeader   = 64 // one line of segment header (local depth)
)

// NewCCEH builds a table with 2^initialDepth segments. valueSize bytes are
// written out-of-line per insert when larger than 8.
func NewCCEH(h *Heap, initialDepth uint, valueSize int) *CCEH {
	c := &CCEH{
		h:             h,
		globalDepth:   initialDepth,
		segLocks:      make(map[uint64]uint64),
		valueSize:     valueSize,
		bucketsPerSeg: 64,
		slotsPerBkt:   4,
		probeBuckets:  2,
	}
	dirSize := uint64(1) << initialDepth
	c.rootAddr = h.Alloc(16, 64)
	c.dirAddr = h.Alloc(int(dirSize*8), 64)
	for i := uint64(0); i < dirSize; i++ {
		seg := c.newSegment(initialDepth)
		h.Write64(c.dirAddr+i*8, seg)
	}
	h.Ofence()
	// Publish the persistent root record last: a reopen after a crash
	// finds a fully initialized table or none.
	h.Write64(c.rootAddr, c.dirAddr)
	h.Write64(c.rootAddr+8, uint64(initialDepth))
	h.Dfence()
	return c
}

// RootAddr returns the persistent root record's address; pass it to
// ReopenCCEH after a (simulated) restart.
func (c *CCEH) RootAddr() uint64 { return c.rootAddr }

// ReopenCCEH reattaches to a CCEH table in an existing heap image (e.g. one
// reconstructed after a crash): it reads the root record, walks the
// directory, and rebuilds the volatile lock table — the only state that
// does not live in persistent memory. No recovery pass is needed, which is
// the paper's §V-E point: ASAP restores memory during the crash itself.
func ReopenCCEH(h *Heap, rootAddr uint64, valueSize int) *CCEH {
	c := &CCEH{
		h:             h,
		rootAddr:      rootAddr,
		segLocks:      make(map[uint64]uint64),
		valueSize:     valueSize,
		bucketsPerSeg: 64,
		slotsPerBkt:   4,
		probeBuckets:  2,
	}
	c.dirAddr = h.Read64(rootAddr)
	c.globalDepth = uint(h.Read64(rootAddr + 8))
	dirSize := uint64(1) << c.globalDepth
	for i := uint64(0); i < dirSize; i++ {
		seg := h.Read64(c.dirAddr + i*8)
		if _, ok := c.segLocks[seg]; !ok && seg != 0 {
			c.segLocks[seg] = h.NewLock()
		}
	}
	return c
}

func (c *CCEH) segBytes() int {
	return ccehSegHeader + int(c.bucketsPerSeg*c.slotsPerBkt)*ccehSlotBytes
}

func (c *CCEH) newSegment(depth uint) uint64 {
	seg := c.h.Alloc(c.segBytes(), 64)
	c.h.Write64(seg+ccehSegDepthOff, uint64(depth))
	c.segLocks[seg] = c.h.NewLock()
	return seg
}

func (c *CCEH) slotAddr(seg, bucket, slot uint64) uint64 {
	return seg + ccehSegHeader + (bucket*c.slotsPerBkt+slot)*ccehSlotBytes
}

// hash is a splitmix64 mix; the top bits select the segment.
func ccehHash(key uint64) uint64 {
	z := key + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (c *CCEH) dirIndex(hash uint64) uint64 {
	if c.globalDepth == 0 {
		return 0
	}
	return hash >> (64 - c.globalDepth)
}

func (c *CCEH) segment(hash uint64) uint64 {
	return c.h.Read64(c.dirAddr + c.dirIndex(hash)*8)
}

// Insert puts key -> val. Keys must be non-zero (zero marks an empty slot).
// It reports whether the insert succeeded (duplicate keys update in place).
func (c *CCEH) Insert(key, val uint64) bool {
	if key == 0 {
		panic("pmds: CCEH key must be non-zero")
	}
	h := c.h
	h.Compute(20) // hash + index arithmetic

	// Out-of-line value for large value sizes.
	valAddr := val
	if c.valueSize > 8 {
		va := h.Alloc(c.valueSize, 64)
		h.WriteValue(va, val, c.valueSize)
		h.Ofence()
		valAddr = va
	}

	for attempt := 0; attempt < 8; attempt++ {
		hash := ccehHash(key)
		seg := c.segment(hash)
		lock := c.segLocks[seg]
		h.Acquire(lock)
		// Re-check the directory under the lock (a split may have moved us).
		if c.segment(hash) != seg {
			h.Release(lock)
			continue
		}
		bkt := (hash >> 32) % c.bucketsPerSeg
		// Probe the whole neighbourhood for the key first (deletions
		// leave holes, so a free slot does not prove absence), keeping
		// the first free slot for the insert.
		freeSlot := uint64(0)
		haveFree := false
		for p := uint64(0); p < c.probeBuckets; p++ {
			b := (bkt + p) % c.bucketsPerSeg
			for s := uint64(0); s < c.slotsPerBkt; s++ {
				a := c.slotAddr(seg, b, s)
				k := h.Read64(a)
				if k == key {
					// Update in place: value word only.
					h.Write64(a+8, valAddr)
					h.Release(lock)
					h.Dfence() // durability point after the release (RP idiom)
					return true
				}
				if k == 0 && !haveFree {
					freeSlot, haveFree = a, true
				}
			}
		}
		if haveFree {
			// Value first, fence, then the key as commit marker.
			h.Write64(freeSlot+8, valAddr)
			h.Ofence()
			h.Write64(freeSlot, key)
			h.Release(lock)
			h.Dfence() // durability point after the release (RP idiom)
			return true
		}
		// Neighbourhood full: split the segment, then retry.
		c.split(seg, hash)
		h.Release(lock)
	}
	return false
}

// split rehashes a full segment into two, one local-depth deeper, and
// repoints the directory half that moves. Requires the segment lock.
func (c *CCEH) split(seg uint64, hash uint64) {
	h := c.h
	localDepth := uint(h.Read64(seg + ccehSegDepthOff))
	if localDepth >= c.globalDepth {
		c.doubleDirectory()
	}
	newDepth := localDepth + 1
	newSeg := c.newSegment(newDepth)

	// Rehash: entries whose split bit is 1 move to the new segment.
	for b := uint64(0); b < c.bucketsPerSeg; b++ {
		for s := uint64(0); s < c.slotsPerBkt; s++ {
			a := c.slotAddr(seg, b, s)
			k := h.Read64(a)
			if k == 0 {
				continue
			}
			kh := ccehHash(k)
			if (kh>>(64-newDepth))&1 == 1 {
				v := h.Read64(a + 8)
				nb := (kh >> 32) % c.bucketsPerSeg
				if !c.placeRaw(newSeg, nb, k, v) {
					// Extremely unlikely with half occupancy; place in
					// any free slot.
					c.placeAnywhere(newSeg, k, v)
				}
				h.Ofence()
				h.Write64(a, 0) // clear source slot after the copy persists
			}
		}
	}
	h.Write64(seg+ccehSegDepthOff, uint64(newDepth))
	h.Ofence()

	// Repoint the directory half that now maps to the new segment: the
	// old segment covered a 2^(globalDepth-localDepth) aligned run of
	// directory entries; the odd half (split bit set) moves.
	dirSize := uint64(1) << c.globalDepth
	run := uint64(1) << (c.globalDepth - localDepth)
	first := (c.dirIndex(hash) / run) * run
	for i := first; i < first+run && i < dirSize; i++ {
		if (i>>(c.globalDepth-newDepth))&1 == 1 {
			h.Write64(c.dirAddr+i*8, newSeg)
		}
	}
	h.Dfence()
}

// placeRaw inserts into the probe neighbourhood of a fresh segment.
func (c *CCEH) placeRaw(seg, bkt uint64, key, val uint64) bool {
	h := c.h
	for p := uint64(0); p < c.probeBuckets; p++ {
		b := (bkt + p) % c.bucketsPerSeg
		for s := uint64(0); s < c.slotsPerBkt; s++ {
			a := c.slotAddr(seg, b, s)
			if h.Read64(a) == 0 {
				h.Write64(a+8, val)
				h.Write64(a, key)
				return true
			}
		}
	}
	return false
}

func (c *CCEH) placeAnywhere(seg uint64, key, val uint64) {
	h := c.h
	for b := uint64(0); b < c.bucketsPerSeg; b++ {
		for s := uint64(0); s < c.slotsPerBkt; s++ {
			a := c.slotAddr(seg, b, s)
			if h.Read64(a) == 0 {
				h.Write64(a+8, val)
				h.Write64(a, key)
				return
			}
		}
	}
	panic("pmds: CCEH split target segment full")
}

// doubleDirectory doubles the directory, copying pointers.
func (c *CCEH) doubleDirectory() {
	h := c.h
	oldSize := uint64(1) << c.globalDepth
	newDir := h.Alloc(int(oldSize*2*8), 64)
	for i := uint64(0); i < oldSize; i++ {
		p := h.Read64(c.dirAddr + i*8)
		h.Write64(newDir+(2*i)*8, p)
		h.Write64(newDir+(2*i+1)*8, p)
	}
	h.Ofence()
	c.dirAddr = newDir
	c.globalDepth++
	// Repoint the persistent root record (directory pointer first, then
	// depth; readers tolerate the old smaller directory meanwhile).
	h.Write64(c.rootAddr, newDir)
	h.Ofence()
	h.Write64(c.rootAddr+8, uint64(c.globalDepth))
	h.Dfence()
}

// Get looks up key, returning (value, found). For out-of-line values the
// stored word is the value address; Get follows it.
func (c *CCEH) Get(key uint64) (uint64, bool) {
	h := c.h
	h.Compute(20)
	hash := ccehHash(key)
	seg := c.segment(hash)
	bkt := (hash >> 32) % c.bucketsPerSeg
	for p := uint64(0); p < c.probeBuckets; p++ {
		b := (bkt + p) % c.bucketsPerSeg
		for s := uint64(0); s < c.slotsPerBkt; s++ {
			a := c.slotAddr(seg, b, s)
			if h.Read64(a) == key {
				v := h.Read64(a + 8)
				if c.valueSize > 8 {
					return h.ReadValue(v, c.valueSize), true
				}
				return v, true
			}
		}
	}
	return 0, false
}

// Depth returns the current global depth (tests).
func (c *CCEH) Depth() uint { return c.globalDepth }

// Delete removes key, reporting whether it was present. The key word is
// cleared first (making the slot logically free), then fenced — the
// reverse of the insert commit order.
func (c *CCEH) Delete(key uint64) bool {
	h := c.h
	h.Compute(20)
	hash := ccehHash(key)
	seg := c.segment(hash)
	lock := c.segLocks[seg]
	h.Acquire(lock)
	if c.segment(hash) != seg {
		// Raced with a split; retry once on the new segment.
		h.Release(lock)
		seg = c.segment(hash)
		lock = c.segLocks[seg]
		h.Acquire(lock)
	}
	bkt := (hash >> 32) % c.bucketsPerSeg
	for p := uint64(0); p < c.probeBuckets; p++ {
		b := (bkt + p) % c.bucketsPerSeg
		for s := uint64(0); s < c.slotsPerBkt; s++ {
			a := c.slotAddr(seg, b, s)
			if h.Read64(a) == key {
				h.Write64(a, 0)
				h.Release(lock)
				h.Dfence()
				return true
			}
		}
	}
	h.Release(lock)
	return false
}
