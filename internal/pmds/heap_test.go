package pmds

import (
	"testing"

	"asap/internal/trace"
)

func TestHeapAllocAlignment(t *testing.T) {
	h := NewHeap(1<<20, 1)
	a := h.Alloc(10, 64)
	if a%64 != 0 {
		t.Fatalf("alloc not 64-aligned: %#x", a)
	}
	b := h.Alloc(8, 0) // default alignment
	if b%8 != 0 {
		t.Fatalf("alloc not 8-aligned: %#x", b)
	}
	if b <= a {
		t.Fatal("allocations overlap")
	}
}

func TestHeapExhaustionPanics(t *testing.T) {
	h := NewHeap(8192, 1)
	defer func() {
		if recover() == nil {
			t.Error("exhausted heap did not panic")
		}
	}()
	h.Alloc(1<<20, 8)
}

func TestHeapReadWriteRoundTrip(t *testing.T) {
	h := NewHeap(1<<20, 2)
	a := h.Alloc(64, 64)
	h.SetThread(1)
	h.Write64(a, 0xDEADBEEF)
	if h.Read64(a) != 0xDEADBEEF || h.Peek64(a) != 0xDEADBEEF {
		t.Fatal("round trip failed")
	}
	if h.Thread() != 1 {
		t.Fatal("thread attribution lost")
	}
	// The write and read were recorded on thread 1's stream.
	tr := h.Trace("t")
	c1 := 0
	for _, op := range tr.Threads[1] {
		if op.Addr == a {
			c1++
		}
	}
	if c1 < 2 {
		t.Fatalf("thread 1 stream has %d ops on the address", c1)
	}
}

func TestHeapOutOfRangePanics(t *testing.T) {
	h := NewHeap(4096+64, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-heap access did not panic")
		}
	}()
	h.Read64(PMBase + 1<<30)
}

func TestWriteValueMultiLine(t *testing.T) {
	h := NewHeap(1<<20, 1)
	a := h.Alloc(256, 64)
	before := h.PStoreCount(0)
	h.WriteValue(a, 42, 256)
	stores := h.PStoreCount(0) - before
	if stores != 4 { // 256 B = 4 lines
		t.Fatalf("WriteValue(256B) emitted %d stores, want 4", stores)
	}
	if h.ReadValue(a, 256) != 42 {
		t.Fatal("ReadValue mismatch")
	}
}

func TestCaptureImages(t *testing.T) {
	h := NewHeap(1<<20, 2)
	h.CaptureImages()
	a := h.Alloc(64, 64)
	h.SetThread(1)
	h.Write64(a, 7)
	h.Write64(a+8, 9)
	imgs := h.Images(1)
	if len(imgs) != 2 {
		t.Fatalf("images = %d, want 2", len(imgs))
	}
	lineAddr := a &^ 63
	if imgs[0].LineAddr != lineAddr || imgs[1].LineAddr != lineAddr {
		t.Fatal("image line addresses wrong")
	}
	// The second image includes both words.
	var w0, w1 uint64
	for i := 0; i < 8; i++ {
		w0 |= uint64(imgs[1].Data[(a%64)+uint64(i)]) << (8 * i)
		w1 |= uint64(imgs[1].Data[(a%64)+8+uint64(i)]) << (8 * i)
	}
	if w0 != 7 || w1 != 9 {
		t.Fatalf("image content = %d,%d, want 7,9", w0, w1)
	}
	// Image indexing matches the persistent-store sequence.
	if h.PStoreCount(1) != 2 {
		t.Fatalf("pstore count = %d", h.PStoreCount(1))
	}
}

func TestReopenHeap(t *testing.T) {
	h := NewHeap(1<<20, 1)
	a := h.Alloc(64, 64)
	h.Write64(a, 123)
	img := make([]byte, 1<<20)
	// Simulate RebuildImage: copy the raw line.
	copy(img[a-PMBase:], []byte{123})
	h2 := ReopenHeap(img, 1)
	if h2.Peek64(a) != 123 {
		t.Fatal("reopened heap lost data")
	}
	// Reopened heaps cannot allocate.
	defer func() {
		if recover() == nil {
			t.Error("alloc on a reopened heap did not panic")
		}
	}()
	h2.Alloc(64, 64)
}

func TestLockAddressesDistinct(t *testing.T) {
	h := NewHeap(1<<20, 1)
	a, b := h.NewLock(), h.NewLock()
	if a == b || a/64 == b/64 {
		t.Fatal("locks share a cache line")
	}
	if a >= PMBase {
		t.Fatal("lock address inside persistent memory")
	}
}

func TestStrandRecording(t *testing.T) {
	h := NewHeap(1<<20, 1)
	h.NewStrand()
	h.NewStrand()
	tr := h.Trace("s")
	if tr.Counts()[trace.OpStrand] != 2 {
		t.Fatal("strand ops not recorded")
	}
}
