package pmds

// Atlas-style structures (Chakrabarti et al., OOPSLA'14): persistence
// sections are delimited by lock acquire/release — Atlas guarantees that
// outermost critical sections are failure-atomic, which on this machine
// maps onto release persistency (writes before the release persist before
// it). The three hand-written structures from the paper's Table III:
// a binary min-heap, a FIFO queue and a skip list, all insert/delete
// element workloads under a global structure lock.

// AtlasQueue is a persistent linked-list FIFO.
type AtlasQueue struct {
	h    *Heap
	lock uint64
	// head/tail pointer words in PM.
	headAddr  uint64
	tailAddr  uint64
	valueSize int
	length    int
}

// Queue node: value word(8) + next(8) + optional out-of-line value.
const aqNodeBytes = 16

// NewAtlasQueue builds an empty queue.
func NewAtlasQueue(h *Heap, valueSize int) *AtlasQueue {
	q := &AtlasQueue{h: h, lock: h.NewLock(), valueSize: valueSize}
	q.headAddr = h.Alloc(8, 64)
	q.tailAddr = h.Alloc(8, 64)
	h.Write64(q.headAddr, 0)
	h.Write64(q.tailAddr, 0)
	h.Dfence()
	return q
}

// Enqueue appends val.
func (q *AtlasQueue) Enqueue(val uint64) {
	h := q.h
	h.Acquire(q.lock)
	n := h.Alloc(aqNodeBytes, 64)
	if q.valueSize > 8 {
		va := h.Alloc(q.valueSize, 64)
		h.WriteValue(va, val, q.valueSize)
		h.Write64(n, va)
	} else {
		h.Write64(n, val)
	}
	h.Write64(n+8, 0)
	h.Ofence() // node contents before linkage
	tail := h.Read64(q.tailAddr)
	if tail == 0 {
		h.Write64(q.headAddr, n)
	} else {
		h.Write64(tail+8, n)
	}
	h.Ofence()
	h.Write64(q.tailAddr, n)
	q.length++
	h.Release(q.lock)
}

// Dequeue removes and returns the oldest value, reporting emptiness.
func (q *AtlasQueue) Dequeue() (uint64, bool) {
	h := q.h
	h.Acquire(q.lock)
	head := h.Read64(q.headAddr)
	if head == 0 {
		h.Release(q.lock)
		return 0, false
	}
	v := h.Read64(head)
	if q.valueSize > 8 {
		v = h.ReadValue(v, q.valueSize)
	}
	next := h.Read64(head + 8)
	h.Write64(q.headAddr, next)
	if next == 0 {
		h.Write64(q.tailAddr, 0)
	}
	h.Ofence()
	q.length--
	h.Release(q.lock)
	return v, true
}

// Len returns the element count (tests).
func (q *AtlasQueue) Len() int { return q.length }

// AtlasHeap is a persistent array-backed binary min-heap.
type AtlasHeap struct {
	h        *Heap
	lock     uint64
	arrAddr  uint64
	sizeAddr uint64
	capacity int
}

// NewAtlasHeap builds a heap holding up to capacity keys.
func NewAtlasHeap(h *Heap, capacity int) *AtlasHeap {
	a := &AtlasHeap{h: h, lock: h.NewLock(), capacity: capacity}
	a.arrAddr = h.Alloc(capacity*8, 64)
	a.sizeAddr = h.Alloc(8, 64)
	h.Write64(a.sizeAddr, 0)
	h.Dfence()
	return a
}

func (a *AtlasHeap) at(i int) uint64 { return a.arrAddr + uint64(i*8) }

// Insert adds key, sifting up with ordered swaps; reports false when full.
func (a *AtlasHeap) Insert(key uint64) bool {
	h := a.h
	h.Acquire(a.lock)
	n := int(h.Read64(a.sizeAddr))
	if n >= a.capacity {
		h.Release(a.lock)
		return false
	}
	h.Write64(a.at(n), key)
	h.Ofence()
	h.Write64(a.sizeAddr, uint64(n+1))
	h.Ofence()
	// Sift up: each swap is two ordered stores.
	i := n
	for i > 0 {
		p := (i - 1) / 2
		ki := h.Read64(a.at(i))
		kp := h.Read64(a.at(p))
		if kp <= ki {
			break
		}
		h.Write64(a.at(i), kp)
		h.Write64(a.at(p), ki)
		h.Ofence()
		i = p
	}
	h.Release(a.lock)
	return true
}

// PopMin removes the smallest key.
func (a *AtlasHeap) PopMin() (uint64, bool) {
	h := a.h
	h.Acquire(a.lock)
	n := int(h.Read64(a.sizeAddr))
	if n == 0 {
		h.Release(a.lock)
		return 0, false
	}
	min := h.Read64(a.at(0))
	last := h.Read64(a.at(n - 1))
	h.Write64(a.at(0), last)
	h.Ofence()
	h.Write64(a.sizeAddr, uint64(n-1))
	h.Ofence()
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		ks := h.Read64(a.at(i))
		if l < n {
			if kl := h.Read64(a.at(l)); kl < ks {
				smallest, ks = l, kl
			}
		}
		if r < n {
			if kr := h.Read64(a.at(r)); kr < ks {
				smallest, ks = r, kr
			}
		}
		if smallest == i {
			break
		}
		ki := h.Read64(a.at(i))
		h.Write64(a.at(i), h.Read64(a.at(smallest)))
		h.Write64(a.at(smallest), ki)
		h.Ofence()
		i = smallest
	}
	h.Release(a.lock)
	return min, true
}

// Size returns the element count.
func (a *AtlasHeap) Size() int { return int(a.h.Peek64(a.sizeAddr)) }

// AtlasSkipList is a persistent skip list with towers up to 8 levels.
type AtlasSkipList struct {
	h         *Heap
	lock      uint64
	head      uint64 // head tower: levels x next pointers
	levels    int
	rngState  uint64
	valueSize int
	length    int
}

// Skip node layout: key(8) + value(8) + level(8) + next[level] pointers.
func slNodeBytes(level int) int { return 24 + 8*level }

// NewAtlasSkipList builds an empty list.
func NewAtlasSkipList(h *Heap, valueSize int) *AtlasSkipList {
	s := &AtlasSkipList{h: h, lock: h.NewLock(), levels: 8, rngState: 0xA5A5A5A5, valueSize: valueSize}
	s.head = h.Alloc(slNodeBytes(s.levels), 64)
	for l := 0; l < s.levels; l++ {
		h.Write64(s.nextAddr(s.head, l), 0)
	}
	h.Dfence()
	return s
}

func (s *AtlasSkipList) nextAddr(node uint64, level int) uint64 {
	return node + 24 + uint64(8*level)
}

func (s *AtlasSkipList) randLevel() int {
	// xorshift; each extra level with probability 1/2.
	x := s.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rngState = x
	lvl := 1
	for x&1 == 1 && lvl < s.levels {
		lvl++
		x >>= 1
	}
	return lvl
}

// Insert adds key -> val (no duplicates; existing keys update in place).
func (s *AtlasSkipList) Insert(key, val uint64) {
	h := s.h
	valWord := val
	if s.valueSize > 8 {
		va := h.Alloc(s.valueSize, 64)
		h.WriteValue(va, val, s.valueSize)
		h.Ofence()
		valWord = va
	}
	h.Acquire(s.lock)
	// Find predecessors at every level.
	preds := make([]uint64, s.levels)
	x := s.head
	for l := s.levels - 1; l >= 0; l-- {
		for {
			next := h.Read64(s.nextAddr(x, l))
			if next == 0 || h.Read64(next) >= key {
				break
			}
			x = next
		}
		preds[l] = x
	}
	if next := h.Read64(s.nextAddr(x, 0)); next != 0 && h.Read64(next) == key {
		h.Write64(next+8, valWord)
		h.Ofence()
		h.Release(s.lock)
		return
	}
	lvl := s.randLevel()
	n := h.Alloc(slNodeBytes(lvl), 64)
	h.Write64(n, key)
	h.Write64(n+8, valWord)
	h.Write64(n+16, uint64(lvl))
	for l := 0; l < lvl; l++ {
		h.Write64(s.nextAddr(n, l), h.Read64(s.nextAddr(preds[l], l)))
	}
	h.Ofence() // node fully built before linking
	for l := 0; l < lvl; l++ {
		h.Write64(s.nextAddr(preds[l], l), n)
		h.Ofence() // bottom-up linking, each level ordered
	}
	s.length++
	h.Release(s.lock)
}

// Delete removes key, reporting whether it existed.
func (s *AtlasSkipList) Delete(key uint64) bool {
	h := s.h
	h.Acquire(s.lock)
	preds := make([]uint64, s.levels)
	x := s.head
	for l := s.levels - 1; l >= 0; l-- {
		for {
			next := h.Read64(s.nextAddr(x, l))
			if next == 0 || h.Read64(next) >= key {
				break
			}
			x = next
		}
		preds[l] = x
	}
	target := h.Read64(s.nextAddr(x, 0))
	if target == 0 || h.Read64(target) != key {
		h.Release(s.lock)
		return false
	}
	lvl := int(h.Read64(target + 16))
	// Unlink top-down so a crash leaves the node reachable at level 0
	// until the last unlink.
	for l := lvl - 1; l >= 0; l-- {
		if h.Read64(s.nextAddr(preds[l], l)) == target {
			h.Write64(s.nextAddr(preds[l], l), h.Read64(s.nextAddr(target, l)))
			h.Ofence()
		}
	}
	s.length--
	h.Release(s.lock)
	return true
}

// Get looks up key.
func (s *AtlasSkipList) Get(key uint64) (uint64, bool) {
	h := s.h
	x := s.head
	for l := s.levels - 1; l >= 0; l-- {
		for {
			next := h.Read64(s.nextAddr(x, l))
			if next == 0 || h.Read64(next) > key {
				break
			}
			if h.Read64(next) == key {
				v := h.Read64(next + 8)
				if s.valueSize > 8 {
					return h.ReadValue(v, s.valueSize), true
				}
				return v, true
			}
			x = next
		}
	}
	return 0, false
}

// Len returns the element count.
func (s *AtlasSkipList) Len() int { return s.length }

// Scan returns up to max keys >= start in ascending order (level-0 walk).
func (s *AtlasSkipList) Scan(start uint64, max int) []uint64 {
	h := s.h
	var out []uint64
	x := s.head
	for l := s.levels - 1; l >= 0; l-- {
		for {
			next := h.Read64(s.nextAddr(x, l))
			if next == 0 || h.Read64(next) >= start {
				break
			}
			x = next
		}
	}
	for n := h.Read64(s.nextAddr(x, 0)); n != 0 && len(out) < max; n = h.Read64(s.nextAddr(n, 0)) {
		if k := h.Read64(n); k >= start {
			out = append(out, k)
		}
	}
	return out
}
