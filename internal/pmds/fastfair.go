package pmds

// FastFair is the FAST & FAIR B+-tree (Hwang et al., FAST'18): a sorted-node
// B+-tree whose insert path shifts entries one by one, each 8-byte shift
// made durable and ordered (an ofence per shift) before the next — "failure-
// atomic shift" — so no logging is needed: a crash mid-shift leaves a
// duplicate entry that readers tolerate. Writers serialize on a tree lock;
// searches are lock-free as in the paper.
type FastFair struct {
	h         *Heap
	rootAddr  uint64 // persistent root record: [root node, height]
	root      uint64
	lock      uint64
	order     int // max keys per node
	valueSize int

	height int
}

// Node layout (little-endian words):
//
//	+0   header: leaf flag (bit 0) | count<<8
//	+8   sibling pointer (right neighbour at the same level)
//	+16  keys[order]
//	+16+8*order values/children[order+1] (children use one extra slot)
const (
	ffHdrOff  = 0
	ffSibOff  = 8
	ffKeysOff = 16
)

// NewFastFair builds an empty tree with the given node order (keys/node).
func NewFastFair(h *Heap, order int, valueSize int) *FastFair {
	if order < 3 {
		panic("pmds: FastFair order must be >= 3")
	}
	t := &FastFair{h: h, order: order, lock: h.NewLock(), valueSize: valueSize, height: 1}
	t.rootAddr = h.Alloc(16, 64)
	t.root = t.newNode(true)
	h.Ofence()
	t.publishRoot()
	h.Dfence()
	return t
}

// publishRoot persists the root record (root pointer, then height).
func (t *FastFair) publishRoot() {
	t.h.Write64(t.rootAddr, t.root)
	t.h.Ofence()
	t.h.Write64(t.rootAddr+8, uint64(t.height))
}

// RootAddr returns the persistent root record's address for ReopenFastFair.
func (t *FastFair) RootAddr() uint64 { return t.rootAddr }

// ReopenFastFair reattaches to a FAST&FAIR tree in an existing heap image
// (e.g. reconstructed after a crash) — only the volatile writer lock is
// rebuilt; no recovery pass runs (§V-E).
func ReopenFastFair(h *Heap, rootAddr uint64, order, valueSize int) *FastFair {
	t := &FastFair{
		h: h, rootAddr: rootAddr, order: order,
		lock: h.NewLock(), valueSize: valueSize,
	}
	t.root = h.Read64(rootAddr)
	t.height = int(h.Read64(rootAddr + 8))
	return t
}

func (t *FastFair) nodeBytes() int { return ffKeysOff + 8*t.order + 8*(t.order+1) }

func (t *FastFair) newNode(leaf bool) uint64 {
	n := t.h.Alloc(t.nodeBytes(), 64)
	hdr := uint64(0)
	if leaf {
		hdr = 1
	}
	t.h.Write64(n+ffHdrOff, hdr)
	t.h.Write64(n+ffSibOff, 0)
	return n
}

func (t *FastFair) isLeaf(n uint64) bool { return t.h.Read64(n+ffHdrOff)&1 == 1 }
func (t *FastFair) count(n uint64) int   { return int(t.h.Read64(n+ffHdrOff) >> 8) }
func (t *FastFair) setCount(n uint64, c int) {
	hdr := (t.h.Read64(n+ffHdrOff) & 0xff) | uint64(c)<<8
	t.h.Write64(n+ffHdrOff, hdr)
}
func (t *FastFair) keyAddr(n uint64, i int) uint64 { return n + ffKeysOff + uint64(8*i) }
func (t *FastFair) valAddr(n uint64, i int) uint64 {
	return n + ffKeysOff + uint64(8*t.order) + uint64(8*i)
}

// Insert puts key -> val (non-zero key). Duplicates update in place.
func (t *FastFair) Insert(key, val uint64) {
	if key == 0 {
		panic("pmds: FastFair key must be non-zero")
	}
	h := t.h
	valWord := val
	if t.valueSize > 8 {
		va := h.Alloc(t.valueSize, 64)
		h.WriteValue(va, val, t.valueSize)
		h.Ofence()
		valWord = va
	}
	h.Acquire(t.lock)
	t.insertLocked(key, valWord)
	h.Release(t.lock)
	h.Dfence() // durability point after the release (RP idiom)
}

func (t *FastFair) insertLocked(key, val uint64) {
	// Descend, remembering the path for splits.
	path := make([]uint64, 0, t.height)
	n := t.root
	for !t.isLeaf(n) {
		path = append(path, n)
		n = t.child(n, key)
	}
	if t.count(n) == t.order {
		n = t.splitPath(path, n, key)
	}
	t.insertIntoNode(n, key, val, 0)
}

// child finds the subtree for key in inner node n.
func (t *FastFair) child(n uint64, key uint64) uint64 {
	h := t.h
	cnt := t.count(n)
	i := 0
	for ; i < cnt; i++ {
		if key < h.Read64(t.keyAddr(n, i)) {
			break
		}
	}
	h.Compute(uint32(4 * (i + 1)))
	return h.Read64(t.valAddr(n, i))
}

// insertIntoNode performs the FAST shift-insert: entries greater than key
// shift right one at a time, each shift fenced, then the new entry lands.
// child, when non-zero, is the right child for inner nodes.
func (t *FastFair) insertIntoNode(n uint64, key, val uint64, child uint64) {
	h := t.h
	cnt := t.count(n)
	pos := cnt
	for i := 0; i < cnt; i++ {
		k := h.Read64(t.keyAddr(n, i))
		if k == key && t.isLeaf(n) {
			h.Write64(t.valAddr(n, i), val)
			return
		}
		if key < k {
			pos = i
			break
		}
	}
	// Shift right, last to pos. FAST's optimization: 8-byte stores within
	// one cache line persist atomically together, so an ordering fence is
	// needed only when the shift crosses a cache-line boundary.
	for i := cnt; i > pos; i-- {
		h.Write64(t.keyAddr(n, i), h.Read64(t.keyAddr(n, i-1)))
		if t.isLeaf(n) {
			h.Write64(t.valAddr(n, i), h.Read64(t.valAddr(n, i-1)))
		} else {
			h.Write64(t.valAddr(n, i+1), h.Read64(t.valAddr(n, i)))
		}
		if t.keyAddr(n, i)%64 == 0 {
			h.Ofence()
		}
	}
	h.Write64(t.keyAddr(n, pos), key)
	if t.isLeaf(n) {
		h.Write64(t.valAddr(n, pos), val)
	} else {
		h.Write64(t.valAddr(n, pos+1), child)
	}
	h.Ofence()
	t.setCount(n, cnt+1)
	h.Ofence()
}

// splitPath splits the full leaf (and any full ancestors) and returns the
// leaf that should receive key.
func (t *FastFair) splitPath(path []uint64, leaf uint64, key uint64) uint64 {
	h := t.h
	mid := t.order / 2
	midKey := h.Read64(t.keyAddr(leaf, mid))

	right := t.newNode(true)
	// Copy the upper half to the new node, then fence, then shrink the
	// old node's count (FAIR: the sibling pointer makes the split
	// tolerable to readers mid-way).
	j := 0
	for i := mid; i < t.order; i++ {
		h.Write64(t.keyAddr(right, j), h.Read64(t.keyAddr(leaf, i)))
		h.Write64(t.valAddr(right, j), h.Read64(t.valAddr(leaf, i)))
		j++
	}
	t.setCount(right, j)
	h.Write64(right+ffSibOff, h.Read64(leaf+ffSibOff))
	h.Ofence()
	h.Write64(leaf+ffSibOff, right)
	h.Ofence()
	t.setCount(leaf, mid)
	h.Ofence()

	t.insertUp(path, midKey, leaf, right)

	if key < midKey {
		return leaf
	}
	return right
}

// insertUp inserts the separator into the parent, splitting recursively.
func (t *FastFair) insertUp(path []uint64, key uint64, left, right uint64) {
	h := t.h
	if len(path) == 0 {
		newRoot := t.newNode(false)
		h.Write64(t.keyAddr(newRoot, 0), key)
		h.Write64(t.valAddr(newRoot, 0), left)
		h.Write64(t.valAddr(newRoot, 1), right)
		t.setCount(newRoot, 1)
		h.Ofence()
		t.root = newRoot
		t.height++
		t.publishRoot()
		h.Ofence()
		return
	}
	parent := path[len(path)-1]
	if t.count(parent) == t.order {
		parent = t.splitInner(path, parent, key)
	}
	t.insertIntoNode(parent, key, 0, right)
}

// splitInner splits a full inner node and returns the side receiving key.
func (t *FastFair) splitInner(path []uint64, n uint64, key uint64) uint64 {
	h := t.h
	mid := t.order / 2
	midKey := h.Read64(t.keyAddr(n, mid))

	right := t.newNode(false)
	j := 0
	for i := mid + 1; i < t.order; i++ {
		h.Write64(t.keyAddr(right, j), h.Read64(t.keyAddr(n, i)))
		h.Write64(t.valAddr(right, j), h.Read64(t.valAddr(n, i)))
		j++
	}
	h.Write64(t.valAddr(right, j), h.Read64(t.valAddr(n, t.order)))
	t.setCount(right, j)
	h.Ofence()
	t.setCount(n, mid)
	h.Ofence()

	t.insertUp(path[:len(path)-1], midKey, n, right)
	if key < midKey {
		return n
	}
	return right
}

// Get searches for key (lock-free, as in the paper).
func (t *FastFair) Get(key uint64) (uint64, bool) {
	h := t.h
	n := t.root
	for !t.isLeaf(n) {
		n = t.child(n, key)
	}
	cnt := t.count(n)
	for i := 0; i < cnt; i++ {
		if h.Read64(t.keyAddr(n, i)) == key {
			v := h.Read64(t.valAddr(n, i))
			if t.valueSize > 8 {
				return h.ReadValue(v, t.valueSize), true
			}
			return v, true
		}
	}
	return 0, false
}

// Delete removes key with fenced left-shifts, reporting whether it existed.
func (t *FastFair) Delete(key uint64) bool {
	h := t.h
	h.Acquire(t.lock)
	defer func() {
		h.Release(t.lock)
		h.Dfence() // durability point after the release (RP idiom)
	}()
	n := t.root
	for !t.isLeaf(n) {
		n = t.child(n, key)
	}
	cnt := t.count(n)
	for i := 0; i < cnt; i++ {
		if h.Read64(t.keyAddr(n, i)) == key {
			for j := i; j < cnt-1; j++ {
				h.Write64(t.keyAddr(n, j), h.Read64(t.keyAddr(n, j+1)))
				h.Write64(t.valAddr(n, j), h.Read64(t.valAddr(n, j+1)))
				if t.keyAddr(n, j)%64 == 56 {
					h.Ofence() // line-crossing shift (FAST)
				}
			}
			t.setCount(n, cnt-1)
			h.Ofence()
			return true
		}
	}
	return false
}

// Height returns the tree height (tests).
func (t *FastFair) Height() int { return t.height }

// Scan returns up to max key/value pairs with key >= start, in ascending
// order, walking leaves through their sibling pointers (the FAIR linked
// leaf level). Like Get it is lock-free.
func (t *FastFair) Scan(start uint64, max int) (keys, vals []uint64) {
	h := t.h
	n := t.root
	for !t.isLeaf(n) {
		n = t.child(n, start)
	}
	for n != 0 && len(keys) < max {
		cnt := t.count(n)
		for i := 0; i < cnt && len(keys) < max; i++ {
			k := h.Read64(t.keyAddr(n, i))
			if k < start {
				continue
			}
			v := h.Read64(t.valAddr(n, i))
			if t.valueSize > 8 {
				v = h.ReadValue(v, t.valueSize)
			}
			keys = append(keys, k)
			vals = append(vals, v)
		}
		n = h.Read64(n + ffSibOff)
	}
	return keys, vals
}
