package pmds

// Masstree is P-Masstree from RECIPE, distilled to the property RECIPE
// relies on for crash consistency: B+-tree nodes store entries *unsorted*
// and publish them through an 8-byte permutation word — an insert writes
// the key and value into a free slot, fences, then updates the permutation
// word (slot count and order) with a single atomic store, then fences
// again. Readers see either the old or the new permutation, never a torn
// node. Inner nodes route by the key's most significant bytes; writers
// serialize on a tree lock, lookups are lock-free.
type Masstree struct {
	h         *Heap
	root      uint64
	lock      uint64
	fanout    int
	valueSize int
}

// Node layout:
//
//	+0   header: leaf flag
//	+8   permutation word: count (low byte) | slot order (4 bits/slot, up to 15 slots)
//	+16  keys[fanout]
//	+16+8*fanout  values/children[fanout+1]
const (
	mtHdrOff  = 0
	mtPermOff = 8
	mtKeysOff = 16
)

// NewMasstree builds an empty tree; fanout is capped at 15 slots by the
// permutation encoding.
func NewMasstree(h *Heap, fanout int, valueSize int) *Masstree {
	if fanout < 3 || fanout > 15 {
		panic("pmds: Masstree fanout must be in [3,15]")
	}
	t := &Masstree{h: h, fanout: fanout, lock: h.NewLock(), valueSize: valueSize}
	t.root = t.newNode(true)
	h.Dfence()
	return t
}

func (t *Masstree) nodeBytes() int { return mtKeysOff + 8*t.fanout + 8*(t.fanout+1) }

func (t *Masstree) newNode(leaf bool) uint64 {
	n := t.h.Alloc(t.nodeBytes(), 64)
	hdr := uint64(0)
	if leaf {
		hdr = 1
	}
	t.h.Write64(n+mtHdrOff, hdr)
	t.h.Write64(n+mtPermOff, 0)
	return n
}

func (t *Masstree) isLeaf(n uint64) bool { return t.h.Read64(n+mtHdrOff)&1 == 1 }

// perm decodes the permutation word into the ordered slot indices. The
// encoding matches Masstree's: a 4-bit count plus fifteen 4-bit slot
// indices, exactly filling the 64-bit word.
func (t *Masstree) perm(n uint64) []int {
	w := t.h.Read64(n + mtPermOff)
	cnt := int(w & 0xf)
	out := make([]int, cnt)
	for i := 0; i < cnt; i++ {
		out[i] = int((w >> uint(4+4*i)) & 0xf)
	}
	return out
}

// writePerm encodes and atomically publishes the permutation.
func (t *Masstree) writePerm(n uint64, order []int) {
	w := uint64(len(order) & 0xf)
	for i, s := range order {
		w |= uint64(s&0xf) << uint(4+4*i)
	}
	t.h.Write64(n+mtPermOff, w)
}

func (t *Masstree) keyAddr(n uint64, slot int) uint64 { return n + mtKeysOff + uint64(8*slot) }
func (t *Masstree) valAddr(n uint64, slot int) uint64 {
	return n + mtKeysOff + uint64(8*t.fanout) + uint64(8*slot)
}

// Insert puts key -> val.
func (t *Masstree) Insert(key, val uint64) {
	h := t.h
	h.Compute(12)
	valWord := val
	if t.valueSize > 8 {
		va := h.Alloc(t.valueSize, 64)
		h.WriteValue(va, val, t.valueSize)
		h.Ofence()
		valWord = va
	}
	h.Acquire(t.lock)
	t.insertLocked(key, valWord)
	h.Release(t.lock)
	h.Dfence() // durability point after the release (RP idiom)
}

func (t *Masstree) insertLocked(key, val uint64) {
	var path []uint64
	n := t.root
	for !t.isLeaf(n) {
		path = append(path, n)
		n = t.route(n, key)
	}
	order := t.perm(n)
	// Update in place?
	for _, s := range order {
		if t.h.Read64(t.keyAddr(n, s)) == key {
			t.h.Write64(t.valAddr(n, s), val)
			t.h.Ofence()
			return
		}
	}
	if len(order) == t.fanout {
		n = t.split(path, n, key)
		order = t.perm(n)
	}
	t.insertIntoNode(n, order, key, val, 0)
}

// insertIntoNode writes entry into a free slot, fences, then publishes the
// new permutation word atomically — the Masstree recipe.
func (t *Masstree) insertIntoNode(n uint64, order []int, key, val uint64, child uint64) {
	h := t.h
	slot := t.freeSlot(order)
	h.Write64(t.keyAddr(n, slot), key)
	if t.isLeaf(n) {
		h.Write64(t.valAddr(n, slot), val)
	} else {
		h.Write64(t.valAddr(n, slot+1), child)
	}
	h.Ofence()
	pos := len(order)
	for i, s := range order {
		if key < h.Read64(t.keyAddr(n, s)) {
			pos = i
			break
		}
	}
	newOrder := make([]int, 0, len(order)+1)
	newOrder = append(newOrder, order[:pos]...)
	newOrder = append(newOrder, slot)
	newOrder = append(newOrder, order[pos:]...)
	t.writePerm(n, newOrder)
	h.Ofence()
}

func (t *Masstree) freeSlot(order []int) int {
	used := make([]bool, t.fanout)
	for _, s := range order {
		used[s] = true
	}
	for i, u := range used {
		if !u {
			return i
		}
	}
	panic("pmds: Masstree node has no free slot")
}

// route picks the child for key in inner node n. Child slot convention:
// child i sits at valAddr(slot_i+1) for the slot at order position i, and
// the leftmost child at valAddr(0)... To keep the permutation scheme simple
// for inner nodes, children are stored at slot+1 and the leftmost child at
// index 0.
func (t *Masstree) route(n uint64, key uint64) uint64 {
	h := t.h
	order := t.perm(n)
	childIdx := 0 // leftmost
	for _, s := range order {
		if key >= h.Read64(t.keyAddr(n, s)) {
			childIdx = s + 1
		} else {
			break
		}
	}
	h.Compute(uint32(4 * (len(order) + 1)))
	return h.Read64(t.valAddr(n, childIdx))
}

// split divides a full leaf (or recursively its ancestors); returns the
// node that should receive key.
func (t *Masstree) split(path []uint64, n uint64, key uint64) uint64 {
	h := t.h
	order := t.perm(n)
	mid := len(order) / 2
	midKey := h.Read64(t.keyAddr(n, order[mid]))

	right := t.newNode(t.isLeaf(n))
	var rightOrder []int
	j := 0
	start := mid
	if !t.isLeaf(n) {
		start = mid + 1
		// Move the cross child to the leftmost slot of right.
		h.Write64(t.valAddr(right, 0), h.Read64(t.valAddr(n, order[mid]+1)))
	}
	for i := start; i < len(order); i++ {
		s := order[i]
		h.Write64(t.keyAddr(right, j), h.Read64(t.keyAddr(n, s)))
		if t.isLeaf(n) {
			h.Write64(t.valAddr(right, j), h.Read64(t.valAddr(n, s)))
		} else {
			h.Write64(t.valAddr(right, j+1), h.Read64(t.valAddr(n, s+1)))
		}
		rightOrder = append(rightOrder, j)
		j++
	}
	t.writePerm(right, rightOrder)
	h.Ofence()
	t.writePerm(n, order[:mid])
	h.Ofence()

	t.insertUp(path, midKey, n, right)
	if key < midKey {
		return n
	}
	return right
}

func (t *Masstree) insertUp(path []uint64, key uint64, left, right uint64) {
	h := t.h
	if len(path) == 0 {
		root := t.newNode(false)
		h.Write64(t.keyAddr(root, 0), key)
		h.Write64(t.valAddr(root, 0), left)
		h.Write64(t.valAddr(root, 1), right)
		h.Ofence()
		t.writePerm(root, []int{0})
		h.Ofence()
		t.root = root
		return
	}
	parent := path[len(path)-1]
	order := t.perm(parent)
	if len(order) == t.fanout {
		parent = t.split(path[:len(path)-1], parent, key)
		order = t.perm(parent)
	}
	t.insertIntoNode(parent, order, key, 0, right)
}

// Get looks up key lock-free.
func (t *Masstree) Get(key uint64) (uint64, bool) {
	h := t.h
	h.Compute(12)
	n := t.root
	for !t.isLeaf(n) {
		n = t.route(n, key)
	}
	for _, s := range t.perm(n) {
		if h.Read64(t.keyAddr(n, s)) == key {
			v := h.Read64(t.valAddr(n, s))
			if t.valueSize > 8 {
				return h.ReadValue(v, t.valueSize), true
			}
			return v, true
		}
	}
	return 0, false
}

// Delete removes key, reporting whether it was present: the new permutation
// word (without the slot) publishes atomically, exactly like an insert.
func (t *Masstree) Delete(key uint64) bool {
	h := t.h
	h.Compute(12)
	h.Acquire(t.lock)
	n := t.root
	for !t.isLeaf(n) {
		n = t.route(n, key)
	}
	order := t.perm(n)
	for i, s := range order {
		if h.Read64(t.keyAddr(n, s)) == key {
			newOrder := make([]int, 0, len(order)-1)
			newOrder = append(newOrder, order[:i]...)
			newOrder = append(newOrder, order[i+1:]...)
			t.writePerm(n, newOrder)
			h.Ofence()
			h.Release(t.lock)
			h.Dfence()
			return true
		}
	}
	h.Release(t.lock)
	return false
}
