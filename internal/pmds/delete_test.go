package pmds

import (
	"sort"
	"testing"

	"asap/internal/rng"
)

// kvDeleter extends the oracle interface with deletion.
type kvDeleter interface {
	kvStore
	del(key uint64) bool
}

// runKVDeleteOracle mixes inserts, deletes and lookups against a map oracle.
func runKVDeleteOracle(t *testing.T, h *Heap, s kvDeleter, n int, keyRange uint64, threads int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	oracle := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		h.SetThread(i % threads)
		key := 1 + r.Uint64n(keyRange)
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4:
			val := r.Uint64()
			if s.insert(key, val) {
				oracle[key] = val
			}
		case 5, 6:
			got := s.del(key)
			_, want := oracle[key]
			if got != want {
				t.Fatalf("op %d: delete(%d)=%v, oracle=%v", i, key, got, want)
			}
			delete(oracle, key)
		default:
			got, ok := s.get(key)
			want, exists := oracle[key]
			if ok != exists || (ok && got != want) {
				t.Fatalf("op %d: get(%d)=(%d,%v), oracle=(%d,%v)", i, key, got, ok, want, exists)
			}
		}
	}
	for k, want := range oracle {
		if got, ok := s.get(k); !ok || got != want {
			t.Fatalf("final: get(%d)=(%d,%v), want %d", k, got, ok, want)
		}
	}
}

type ccehDelAdapter struct{ c *CCEH }

func (a ccehDelAdapter) insert(k, v uint64) bool     { return a.c.Insert(k, v) }
func (a ccehDelAdapter) get(k uint64) (uint64, bool) { return a.c.Get(k) }
func (a ccehDelAdapter) del(k uint64) bool           { return a.c.Delete(k) }

func TestCCEHDeleteOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	c := NewCCEH(h, 3, 8)
	runKVDeleteOracle(t, h, ccehDelAdapter{c}, 6000, 2000, 4, 51)
}

type clhtDelAdapter struct{ c *CLHT }

func (a clhtDelAdapter) insert(k, v uint64) bool     { a.c.Insert(k, v); return true }
func (a clhtDelAdapter) get(k uint64) (uint64, bool) { return a.c.Get(k) }
func (a clhtDelAdapter) del(k uint64) bool           { return a.c.Delete(k) }

func TestCLHTDeleteOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	c := NewCLHT(h, 256, 8)
	runKVDeleteOracle(t, h, clhtDelAdapter{c}, 6000, 2000, 4, 52)
}

type artDelAdapter struct{ a *ART }

func (x artDelAdapter) insert(k, v uint64) bool     { x.a.Insert(k, v); return true }
func (x artDelAdapter) get(k uint64) (uint64, bool) { return x.a.Get(k) }
func (x artDelAdapter) del(k uint64) bool           { return x.a.Delete(k) }

func TestARTDeleteOracle(t *testing.T) {
	h := NewHeap(512<<20, 4)
	a := NewART(h, 8)
	runKVDeleteOracle(t, h, artDelAdapter{a}, 4000, 1000, 4, 53)
}

type mtDelAdapter struct{ m *Masstree }

func (x mtDelAdapter) insert(k, v uint64) bool     { x.m.Insert(k, v); return true }
func (x mtDelAdapter) get(k uint64) (uint64, bool) { return x.m.Get(k) }
func (x mtDelAdapter) del(k uint64) bool           { return x.m.Delete(k) }

func TestMasstreeDeleteOracle(t *testing.T) {
	h := NewHeap(128<<20, 4)
	m := NewMasstree(h, 15, 8)
	runKVDeleteOracle(t, h, mtDelAdapter{m}, 5000, 1500, 4, 54)
}

func TestFastFairScan(t *testing.T) {
	h := NewHeap(64<<20, 1)
	f := NewFastFair(h, 8, 8)
	r := rng.New(55)
	inserted := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		k := 1 + r.Uint64n(10000)
		v := r.Uint64()
		f.Insert(k, v)
		inserted[k] = v
	}
	var sorted []uint64
	for k := range inserted {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	start := sorted[len(sorted)/3]
	keys, vals := f.Scan(start, 50)
	if len(keys) != 50 {
		t.Fatalf("scan returned %d keys", len(keys))
	}
	// Expected: the 50 smallest keys >= start.
	idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= start })
	for i := 0; i < 50; i++ {
		want := sorted[idx+i]
		if keys[i] != want {
			t.Fatalf("scan[%d] = %d, want %d", i, keys[i], want)
		}
		if vals[i] != inserted[want] {
			t.Fatalf("scan[%d] value mismatch", i)
		}
	}
	// Scan past the end returns what is left.
	keys, _ = f.Scan(sorted[len(sorted)-1], 50)
	if len(keys) != 1 {
		t.Fatalf("tail scan returned %d keys", len(keys))
	}
}

func TestSkipListScan(t *testing.T) {
	h := NewHeap(32<<20, 1)
	s := NewAtlasSkipList(h, 8)
	for k := uint64(10); k <= 1000; k += 10 {
		s.Insert(k, k)
	}
	got := s.Scan(500, 10)
	if len(got) != 10 {
		t.Fatalf("scan returned %d", len(got))
	}
	for i, k := range got {
		want := uint64(500 + 10*i)
		if k != want {
			t.Fatalf("scan[%d]=%d, want %d", i, k, want)
		}
	}
	if out := s.Scan(2000, 5); len(out) != 0 {
		t.Fatalf("scan past end returned %v", out)
	}
}
