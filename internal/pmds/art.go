package pmds

// ART is P-ART, the persistent adaptive radix tree from RECIPE (SOSP'19).
// Keys are consumed 8 bits per level over a 256-way node; a tagged pointer
// distinguishes child nodes from leaves. RECIPE's conversion recipe makes
// each 8-byte pointer update failure-atomic with a flush+fence after the
// store (ofence here). Lookups are lock-free.
//
// P-ART synchronizes writers per-node (ROWEX). We model that fine-grained
// synchronization with 32 top-level subtree locks: key bits are first mixed
// by a fixed bijection so that dense integer keys spread uniformly over
// subtrees (real ART would concentrate small integers under one prefix
// chain and a per-node protocol would serialize only the colliding nodes —
// the striped locks reproduce the same contention behaviour: conflicts only
// between writers in the same subtree). Each stripe covers exactly one
// cache line of the root node (8 of its 256 slots), so two writers never
// share a line without sharing a lock — required for release persistency,
// which demands race-free code at persist (line) granularity (§IV-E). Lazy
// expansion keeps single leaves near the root until a conflicting key
// forces a path split, as in real ART.
type ART struct {
	h         *Heap
	root      uint64 // address of the root node
	locks     [32]uint64
	valueSize int
}

// artMix is a fixed odd-multiplier bijection spreading key bits.
func artMix(key uint64) uint64 {
	return key * 0x9E3779B97F4A7C15
}

const (
	artNodeSlots = 256
	artNodeBytes = artNodeSlots * 8
	// artLeafTag marks a pointer word as a leaf record.
	artLeafTag = uint64(1)
	// leaf record: key(8) + value(8)
	artLeafBytes = 16
)

// NewART builds an empty tree.
func NewART(h *Heap, valueSize int) *ART {
	a := &ART{h: h, valueSize: valueSize}
	for i := range a.locks {
		a.locks[i] = h.NewLock()
	}
	a.root = a.newNode()
	h.Dfence()
	return a
}

func (a *ART) lockFor(mixed uint64) uint64 {
	return a.locks[mixed>>59] // top 5 bits: one root line per stripe
}

func (a *ART) newNode() uint64 {
	n := a.h.Alloc(artNodeBytes, 64)
	// Fresh heap memory is zero; a real implementation zeroes and flushes
	// the node before publishing. Model that with one header store.
	a.h.Write64(n, 0)
	return n
}

func artByte(key uint64, depth int) uint64 {
	return (key >> uint(56-8*depth)) & 0xff
}

func (a *ART) slotAddr(n uint64, b uint64) uint64 { return n + b*8 }

// Insert puts key -> val.
func (a *ART) Insert(key, val uint64) {
	h := a.h
	h.Compute(10)
	valWord := val
	if a.valueSize > 8 {
		va := h.Alloc(a.valueSize, 64)
		h.WriteValue(va, val, a.valueSize)
		h.Ofence()
		valWord = va
	}
	mixed := artMix(key)
	lock := a.lockFor(mixed)
	h.Acquire(lock)
	a.insertLocked(mixed, valWord)
	h.Release(lock)
	h.Dfence() // durability point after the release (RP idiom)
}

func (a *ART) insertLocked(key, val uint64) {
	h := a.h
	n := a.root
	for depth := 0; depth < 8; depth++ {
		slot := a.slotAddr(n, artByte(key, depth))
		p := h.Read64(slot)
		switch {
		case p == 0:
			// Empty slot: write the leaf record, fence, publish pointer.
			leaf := a.newLeaf(key, val)
			h.Ofence()
			h.Write64(slot, leaf|artLeafTag)
			h.Ofence()
			return
		case p&artLeafTag != 0:
			leafAddr := p &^ artLeafTag
			exKey := h.Read64(leafAddr)
			if exKey == key {
				h.Write64(leafAddr+8, val) // update in place
				h.Ofence()
				return
			}
			// Path split: push the existing leaf down until the key
			// bytes diverge, then publish the new subtree atomically.
			top, bottom := a.buildSplit(key, exKey, depth+1)
			leaf := a.newLeaf(key, val)
			h.Write64(a.slotAddr(bottom, artByte(key, a.divergeDepth(key, exKey))), leaf|artLeafTag)
			h.Write64(a.slotAddr(bottom, artByte(exKey, a.divergeDepth(key, exKey))), p)
			h.Ofence()
			h.Write64(slot, top) // single atomic publish of the subtree
			h.Ofence()
			return
		default:
			n = p
		}
	}
	panic("pmds: ART key bytes exhausted without placement")
}

// divergeDepth returns the first byte position where two keys differ.
func (a *ART) divergeDepth(k1, k2 uint64) int {
	for d := 0; d < 8; d++ {
		if artByte(k1, d) != artByte(k2, d) {
			return d
		}
	}
	panic("pmds: ART duplicate keys cannot diverge")
}

// buildSplit builds the chain of nodes from depth to the divergence point,
// returning the top node pointer and the bottom node where the two leaves
// land.
func (a *ART) buildSplit(key, exKey uint64, depth int) (top, bottom uint64) {
	h := a.h
	dd := a.divergeDepth(key, exKey)
	if dd < depth {
		panic("pmds: ART divergence above current depth")
	}
	bottom = a.newNode()
	node := bottom
	for d := dd - 1; d >= depth; d-- {
		parent := a.newNode()
		h.Write64(a.slotAddr(parent, artByte(key, d)), node)
		node = parent
	}
	return node, bottom
}

func (a *ART) newLeaf(key, val uint64) uint64 {
	leaf := a.h.Alloc(artLeafBytes, 16)
	a.h.Write64(leaf, key)
	a.h.Write64(leaf+8, val)
	return leaf
}

// Get looks up key lock-free.
func (a *ART) Get(key uint64) (uint64, bool) {
	h := a.h
	h.Compute(10)
	key = artMix(key)
	n := a.root
	for depth := 0; depth < 8; depth++ {
		p := h.Read64(a.slotAddr(n, artByte(key, depth)))
		if p == 0 {
			return 0, false
		}
		if p&artLeafTag != 0 {
			leafAddr := p &^ artLeafTag
			if h.Read64(leafAddr) != key {
				return 0, false
			}
			v := h.Read64(leafAddr + 8)
			if a.valueSize > 8 {
				return h.ReadValue(v, a.valueSize), true
			}
			return v, true
		}
		n = p
	}
	return 0, false
}

// Delete removes key, reporting whether it was present. The leaf pointer is
// cleared with one atomic store and fenced — path compaction is left to a
// background pass in real P-ART and is not needed for correctness.
func (a *ART) Delete(key uint64) bool {
	h := a.h
	h.Compute(10)
	mixed := artMix(key)
	lock := a.lockFor(mixed)
	h.Acquire(lock)
	n := a.root
	for depth := 0; depth < 8; depth++ {
		slot := a.slotAddr(n, artByte(mixed, depth))
		p := h.Read64(slot)
		if p == 0 {
			h.Release(lock)
			return false
		}
		if p&artLeafTag != 0 {
			if h.Read64(p&^artLeafTag) != mixed {
				h.Release(lock)
				return false
			}
			h.Write64(slot, 0)
			h.Release(lock)
			h.Dfence()
			return true
		}
		n = p
	}
	h.Release(lock)
	return false
}
