// Package pmds implements the persistent data structures the ASAP paper
// uses as workloads (Table III): CCEH extendible hashing, the FAST&FAIR
// B+-tree, Dash level/extendible hashing, RECIPE-style P-ART, P-CLHT and
// P-Masstree, and the Atlas lock-based heap, queue and skip list.
//
// The structures are real: their algorithms run over a byte-addressable
// simulated persistent heap, reading and writing actual bytes via
// encoding/binary. Every heap access, fence and lock operation is recorded
// into per-thread traces (package trace), which the timing machine replays.
// Functional correctness is tested directly against map/slice oracles.
package pmds

import (
	"encoding/binary"
	"fmt"

	"asap/internal/trace"
)

// Memory layout constants.
const (
	// PMBase is the first byte address of persistent memory. Lock and
	// other volatile addresses live below it.
	PMBase = uint64(1) << 32
	// LockBase is where simulated lock words are allocated.
	LockBase = uint64(1) << 24
	lineSize = 64
)

// Heap is a simulated persistent-memory heap with per-thread trace
// recording. Structure code calls SetThread to attribute subsequent
// operations; generation is single-goroutine, so no synchronization is
// needed even though the recorded trace is multi-threaded.
type Heap struct {
	data []byte
	brk  uint64 // allocation offset into data

	builders []*trace.Builder
	cur      int

	nextLock uint64
	allocs   uint64

	// images, when non-nil, records the post-store content of each
	// written line per thread (see CaptureImages).
	images map[int][]LineImage
}

// NewHeap returns a heap of size bytes recording nthreads trace streams.
func NewHeap(size int, nthreads int) *Heap {
	if nthreads <= 0 {
		panic("pmds: need at least one thread")
	}
	h := &Heap{
		data:     make([]byte, size),
		brk:      4096, // first page reserved for allocator metadata
		builders: make([]*trace.Builder, nthreads),
		nextLock: LockBase,
	}
	for i := range h.builders {
		h.builders[i] = &trace.Builder{}
	}
	return h
}

// SetThread attributes subsequent operations to logical thread t.
func (h *Heap) SetThread(t int) { h.cur = t }

// Thread returns the current logical thread.
func (h *Heap) Thread() int { return h.cur }

// b returns the active builder.
func (h *Heap) b() *trace.Builder { return h.builders[h.cur] }

// Trace assembles the recorded per-thread streams.
func (h *Heap) Trace(name string) *trace.Trace {
	tr := &trace.Trace{Name: name}
	for _, b := range h.builders {
		tr.Threads = append(tr.Threads, b.Ops())
	}
	return tr
}

// Alloc reserves n bytes aligned to align (power of two) and returns the
// address. One metadata store models allocator persistence.
func (h *Heap) Alloc(n int, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	h.brk = (h.brk + align - 1) &^ (align - 1)
	if h.brk+uint64(n) > uint64(len(h.data)) {
		panic(fmt.Sprintf("pmds: heap exhausted (%d + %d > %d)", h.brk, n, len(h.data)))
	}
	addr := PMBase + h.brk
	h.brk += uint64(n)
	h.allocs++
	// Allocator metadata persistence: per-thread arena lines in the
	// reserved first page (real PM allocators keep per-thread arenas, so
	// allocation must not create artificial cross-thread sharing).
	meta := PMBase + (uint64(h.cur)*8+(h.allocs%8))*lineSize
	h.b().StoreP(meta)
	h.recordImage(meta)
	return addr
}

// NewLock returns a fresh volatile lock address (one per cache line).
func (h *Heap) NewLock() uint64 {
	a := h.nextLock
	h.nextLock += lineSize
	return a
}

func (h *Heap) off(addr uint64) uint64 {
	if addr < PMBase || addr+8 > PMBase+uint64(len(h.data)) {
		panic(fmt.Sprintf("pmds: address %#x outside heap", addr))
	}
	return addr - PMBase
}

// Read64 loads a uint64, recording the access.
func (h *Heap) Read64(addr uint64) uint64 {
	h.b().Load(addr)
	return binary.LittleEndian.Uint64(h.data[h.off(addr):])
}

// Write64 stores a uint64 persistently, recording the access.
func (h *Heap) Write64(addr uint64, v uint64) {
	h.b().StoreP(addr)
	binary.LittleEndian.PutUint64(h.data[h.off(addr):], v)
	h.recordImage(addr)
}

// Peek64 reads without recording (assertions, oracles).
func (h *Heap) Peek64(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(h.data[h.off(addr):])
}

// WriteValue writes a value of the given byte size starting at addr: the
// first word carries val (so functional tests can read it back) and the
// remaining lines are touched with one persistent store each.
func (h *Heap) WriteValue(addr uint64, val uint64, size int) {
	h.Write64(addr, val)
	for o := lineSize; o < size; o += lineSize {
		h.b().StoreP(addr + uint64(o))
		h.recordImage(addr + uint64(o))
	}
}

// ReadValue reads a value written by WriteValue.
func (h *Heap) ReadValue(addr uint64, size int) uint64 {
	v := h.Read64(addr)
	for o := lineSize; o < size; o += lineSize {
		h.b().Load(addr + uint64(o))
	}
	return v
}

// Ofence and Dfence record persist barriers.
func (h *Heap) Ofence() { h.b().Ofence() }
func (h *Heap) Dfence() { h.b().Dfence() }

// Acquire and Release record lock operations.
func (h *Heap) Acquire(lock uint64) { h.b().Acquire(lock) }
func (h *Heap) Release(lock uint64) { h.b().Release(lock) }

// Compute records n cycles of computation (hashing, comparisons).
func (h *Heap) Compute(n uint32) { h.b().Compute(n) }

// NewStrand records a strand boundary (strand persistency annotation).
func (h *Heap) NewStrand() { h.b().NewStrand() }

// PStoreCount returns the number of persistent stores thread t has emitted
// so far — the sequence numbering shared with machine token origins.
func (h *Heap) PStoreCount(t int) int { return h.builders[t].PersistentStores() }

// ReopenHeap wraps an existing byte image (for example one reconstructed by
// crash.RebuildImage) as a heap for post-restart reads. The allocator is
// positioned at the end of the image: reopened structures can be read and
// updated in place but cannot allocate.
func ReopenHeap(data []byte, nthreads int) *Heap {
	h := NewHeap(len(data), nthreads)
	copy(h.data, data)
	h.brk = uint64(len(data))
	return h
}

// Used returns allocated bytes.
func (h *Heap) Used() uint64 { return h.brk }

// LineImage is the byte content of one 64-byte line immediately after one
// persistent store — recorded when image capture is on, so a crashed NVM
// image can be reconstructed at line granularity (package crash).
type LineImage struct {
	LineAddr uint64 // first byte address of the line
	Data     [64]byte
}

// CaptureImages turns on per-store line-image recording.
func (h *Heap) CaptureImages() {
	h.images = make(map[int][]LineImage)
}

// Images returns thread t's recorded images, indexed by the thread's
// persistent-store sequence number (the i-th OpStore with Persistent=true
// in its trace).
func (h *Heap) Images(t int) []LineImage { return h.images[t] }

// recordImage captures the line containing addr for the current thread.
// Metadata stores outside the data heap capture as zero lines.
func (h *Heap) recordImage(addr uint64) {
	if h.images == nil {
		return
	}
	lineAddr := addr &^ uint64(lineSize-1)
	img := LineImage{LineAddr: lineAddr}
	if lineAddr >= PMBase && lineAddr+lineSize <= PMBase+uint64(len(h.data)) {
		copy(img.Data[:], h.data[lineAddr-PMBase:])
	}
	h.images[h.cur] = append(h.images[h.cur], img)
}
