package pmds

// CLHT is P-CLHT from RECIPE: a cache-line hash table whose bucket — one
// cache line — holds three key/value pairs plus a lock word and a chain
// pointer. Writers take the per-bucket lock (fine-grained, so cross-thread
// persist dependencies arise only on real collisions); an insert writes the
// value word then the key word with an ofence between, then fences before
// unlocking. Lookups are lock-free.
type CLHT struct {
	h         *Heap
	buckets   uint64
	tableAddr uint64
	locks     []uint64 // per-bucket volatile lock addresses
	valueSize int
}

// Bucket layout (64 bytes): 3 x (key 8B, value 8B) + chain pointer 8B +
// 8B pad.
const (
	clhtSlots      = 3
	clhtBucketSize = 64
	clhtChainOff   = 48
)

// NewCLHT builds a table with the given bucket count (rounded up to a power
// of two).
func NewCLHT(h *Heap, buckets uint64, valueSize int) *CLHT {
	n := uint64(1)
	for n < buckets {
		n <<= 1
	}
	t := &CLHT{h: h, buckets: n, valueSize: valueSize}
	t.tableAddr = h.Alloc(int(n*clhtBucketSize), 64)
	t.locks = make([]uint64, n)
	for i := range t.locks {
		t.locks[i] = h.NewLock()
	}
	h.Dfence()
	return t
}

func (t *CLHT) bucketAddr(b uint64) uint64 { return t.tableAddr + b*clhtBucketSize }

func (t *CLHT) bucketOf(key uint64) uint64 { return ccehHash(key) & (t.buckets - 1) }

// Insert puts key -> val (non-zero key), chaining on overflow.
func (t *CLHT) Insert(key, val uint64) {
	if key == 0 {
		panic("pmds: CLHT key must be non-zero")
	}
	h := t.h
	h.Compute(15)
	valWord := val
	if t.valueSize > 8 {
		va := h.Alloc(t.valueSize, 64)
		h.WriteValue(va, val, t.valueSize)
		h.Ofence()
		valWord = va
	}
	b := t.bucketOf(key)
	h.Acquire(t.locks[b])
	t.insertChain(t.bucketAddr(b), key, valWord)
	h.Release(t.locks[b])
	h.Dfence() // durability point after the release (RP idiom)
}

func (t *CLHT) insertChain(bkt uint64, key, val uint64) {
	h := t.h
	// First pass: look for the key anywhere in the chain (deletions leave
	// holes, so a free slot does not prove absence), remembering the first
	// free slot for the insert.
	freeSlot := uint64(0)
	lastBkt := bkt
	for b := bkt; b != 0; b = h.Read64(b + clhtChainOff) {
		lastBkt = b
		for s := 0; s < clhtSlots; s++ {
			a := b + uint64(s*16)
			k := h.Read64(a)
			if k == key {
				h.Write64(a+8, val) // update in place
				return
			}
			if k == 0 && freeSlot == 0 {
				freeSlot = a
			}
		}
	}
	if freeSlot != 0 {
		h.Write64(freeSlot+8, val)
		h.Ofence()
		h.Write64(freeSlot, key)
		return
	}
	// Chain a fresh bucket.
	nb := h.Alloc(clhtBucketSize, 64)
	h.Write64(nb, 0) // initialize header line
	h.Write64(nb+8, val)
	h.Ofence()
	h.Write64(nb, key)
	h.Ofence()
	h.Write64(lastBkt+clhtChainOff, nb) // publish the chained bucket
}

// Get looks up key lock-free.
func (t *CLHT) Get(key uint64) (uint64, bool) {
	h := t.h
	h.Compute(15)
	bkt := t.bucketAddr(t.bucketOf(key))
	for {
		for s := 0; s < clhtSlots; s++ {
			a := bkt + uint64(s*16)
			if h.Read64(a) == key {
				v := h.Read64(a + 8)
				if t.valueSize > 8 {
					return h.ReadValue(v, t.valueSize), true
				}
				return v, true
			}
		}
		next := h.Read64(bkt + clhtChainOff)
		if next == 0 {
			return 0, false
		}
		bkt = next
	}
}

// Delete removes key, reporting whether it was present.
func (t *CLHT) Delete(key uint64) bool {
	h := t.h
	h.Compute(15)
	b := t.bucketOf(key)
	h.Acquire(t.locks[b])
	bkt := t.bucketAddr(b)
	for {
		for s := 0; s < clhtSlots; s++ {
			a := bkt + uint64(s*16)
			if h.Read64(a) == key {
				h.Write64(a, 0) // clearing the key word frees the slot atomically
				h.Release(t.locks[b])
				h.Dfence()
				return true
			}
		}
		next := h.Read64(bkt + clhtChainOff)
		if next == 0 {
			h.Release(t.locks[b])
			return false
		}
		bkt = next
	}
}
