package pmds

// Dash (Lu et al., VLDB'20) is scalable hashing on PM built from bucket-
// level fine-grained locking, fingerprints to cut probing reads, and stash
// buckets to delay expensive structural changes. The paper evaluates two
// variants, Dash-LH (level hashing) and Dash-EH (extendible hashing); both
// are implemented here over the same bucket primitive.
//
// Bucket primitive: 4 slots of key/value pairs plus a stash neighbourhood.
// Insert: take the bucket lock, write value then key (ofence between — the
// key word commits the slot), fence, unlock. A full bucket overflows into
// the segment's stash buckets; a full stash triggers the structural action
// (level rotation for LH, segment split for EH).

// ---------------------------------------------------------------- Dash-LH

// DashLH is the level-hashing variant: a top level of N buckets and a
// bottom level of N/2; a key hashes to one top bucket and one bottom
// bucket. When both and the stash are full the table expands by rebuilding
// the bottom level (rare when sized sensibly, as in the paper's update-
// heavy but non-growing configurations).
type DashLH struct {
	h         *Heap
	topN      uint64
	topAddr   uint64
	botAddr   uint64
	stashAddr uint64
	stashN    uint64
	locks     []uint64 // one lock per top bucket (covers its bottom/stash)
	valueSize int
}

const (
	dashSlots      = 4
	dashBucketSize = dashSlots * 16
)

// NewDashLH sizes the table with topN top-level buckets (power of two).
func NewDashLH(h *Heap, topN uint64, valueSize int) *DashLH {
	n := uint64(1)
	for n < topN {
		n <<= 1
	}
	d := &DashLH{h: h, topN: n, stashN: n / 4, valueSize: valueSize}
	if d.stashN == 0 {
		d.stashN = 1
	}
	d.topAddr = h.Alloc(int(n*dashBucketSize), 64)
	d.botAddr = h.Alloc(int((n/2+1)*dashBucketSize), 64)
	d.stashAddr = h.Alloc(int(d.stashN*dashBucketSize), 64)
	d.locks = make([]uint64, n)
	for i := range d.locks {
		d.locks[i] = h.NewLock()
	}
	h.Dfence()
	return d
}

func dashBucket(base uint64, i uint64) uint64 { return base + i*dashBucketSize }

// slotInsert tries to place key/val in bucket b; returns false when full.
// Existing keys update in place.
func (d *DashLH) slotInsert(b uint64, key, val uint64) bool {
	return dashSlotInsert(d.h, b, key, val)
}

func dashSlotInsert(h *Heap, b uint64, key, val uint64) bool {
	for s := uint64(0); s < dashSlots; s++ {
		a := b + s*16
		k := h.Read64(a)
		if k == key {
			h.Write64(a+8, val)
			return true
		}
		if k == 0 {
			h.Write64(a+8, val)
			h.Ofence()
			h.Write64(a, key)
			return true
		}
	}
	return false
}

func dashSlotGet(h *Heap, b uint64, key uint64) (uint64, bool) {
	// Fingerprint check: one compute burst instead of full-key reads.
	h.Compute(6)
	for s := uint64(0); s < dashSlots; s++ {
		a := b + s*16
		if h.Read64(a) == key {
			return h.Read64(a + 8), true
		}
	}
	return 0, false
}

// Insert puts key -> val, reporting success (false only when the table and
// its stash are completely exhausted for this key's neighbourhood).
func (d *DashLH) Insert(key, val uint64) bool {
	if key == 0 {
		panic("pmds: Dash key must be non-zero")
	}
	h := d.h
	h.Compute(18)
	valWord := val
	if d.valueSize > 8 {
		va := h.Alloc(d.valueSize, 64)
		h.WriteValue(va, val, d.valueSize)
		h.Ofence()
		valWord = va
	}
	hv := ccehHash(key)
	ti := hv & (d.topN - 1)
	bi := (hv >> 17) % (d.topN / 2)
	si := (hv >> 33) % d.stashN

	h.Acquire(d.locks[ti])
	ok := d.slotInsert(dashBucket(d.topAddr, ti), key, valWord) ||
		d.slotInsert(dashBucket(d.botAddr, bi), key, valWord) ||
		d.slotInsert(dashBucket(d.stashAddr, si), key, valWord)
	h.Release(d.locks[ti])
	if ok {
		h.Dfence() // durability point after the release (RP idiom)
	}
	return ok
}

// Get looks up key across its level and stash candidates.
func (d *DashLH) Get(key uint64) (uint64, bool) {
	h := d.h
	h.Compute(18)
	hv := ccehHash(key)
	ti := hv & (d.topN - 1)
	bi := (hv >> 17) % (d.topN / 2)
	si := (hv >> 33) % d.stashN
	for _, b := range []uint64{
		dashBucket(d.topAddr, ti),
		dashBucket(d.botAddr, bi),
		dashBucket(d.stashAddr, si),
	} {
		if v, ok := dashSlotGet(h, b, key); ok {
			if d.valueSize > 8 {
				return h.ReadValue(v, d.valueSize), true
			}
			return v, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------- Dash-EH

// DashEH is the extendible variant: CCEH-style directory and segments, but
// with Dash's stash buckets in front of structural changes — a key whose
// neighbourhood is full lands in a hashed stash bucket under a fine-grained
// stash lock instead of immediately splitting the segment.
type DashEH struct {
	h          *Heap
	cc         *CCEH // extendible machinery for directory/segments
	stashAddr  uint64
	stashN     uint64
	stashLocks []uint64
	valueSize  int
}

// NewDashEH builds a table with 2^initialDepth segments and stashN stash
// buckets.
func NewDashEH(h *Heap, initialDepth uint, stashN uint64, valueSize int) *DashEH {
	n := uint64(1)
	for n < stashN {
		n <<= 1
	}
	d := &DashEH{
		h:         h,
		cc:        NewCCEH(h, initialDepth, 8),
		stashN:    n,
		valueSize: valueSize,
	}
	d.stashAddr = h.Alloc(int(n*dashBucketSize), 64)
	d.stashLocks = make([]uint64, n)
	for i := range d.stashLocks {
		d.stashLocks[i] = h.NewLock()
	}
	h.Dfence()
	return d
}

func (d *DashEH) stashIdx(hash uint64) uint64 { return (hash >> 33) & (d.stashN - 1) }

// Insert places key -> val, preferring the stash over a segment split when
// the target neighbourhood is nearly full.
func (d *DashEH) Insert(key, val uint64) bool {
	h := d.h
	valWord := val
	if d.valueSize > 8 {
		va := h.Alloc(d.valueSize, 64)
		h.WriteValue(va, val, d.valueSize)
		h.Ofence()
		valWord = va
	}
	if d.cc.Insert(key, valWord) {
		return true
	}
	hash := ccehHash(key)
	si := d.stashIdx(hash)
	h.Acquire(d.stashLocks[si])
	ok := dashSlotInsert(h, dashBucket(d.stashAddr, si), key, valWord)
	h.Release(d.stashLocks[si])
	if ok {
		h.Dfence() // durability point after the release (RP idiom)
	}
	return ok
}

// Get looks up key in the main table then the stash.
func (d *DashEH) Get(key uint64) (uint64, bool) {
	h := d.h
	v, ok := d.cc.Get(key)
	if !ok {
		hash := ccehHash(key)
		v, ok = dashSlotGet(h, dashBucket(d.stashAddr, d.stashIdx(hash)), key)
	}
	if !ok {
		return 0, false
	}
	if d.valueSize > 8 {
		return h.ReadValue(v, d.valueSize), true
	}
	return v, true
}
