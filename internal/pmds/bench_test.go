package pmds

import (
	"testing"

	"asap/internal/rng"
)

// Data-structure microbenchmarks: operation cost in the functional layer
// (trace recording included, as in workload generation).

func benchKV(b *testing.B, mk func(h *Heap) (insert func(k, v uint64), get func(k uint64))) {
	b.Helper()
	h := NewHeap(256<<20, 1)
	insert, get := mk(h)
	r := rng.New(1)
	// Preload.
	for i := 0; i < 10000; i++ {
		insert(1+r.Uint64n(1<<20), r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 1 + r.Uint64n(1<<20)
		if i%5 == 0 {
			get(k)
		} else {
			insert(k, uint64(i))
		}
	}
}

func BenchmarkCCEHOps(b *testing.B) {
	benchKV(b, func(h *Heap) (func(k, v uint64), func(k uint64)) {
		c := NewCCEH(h, 6, 8)
		return func(k, v uint64) { c.Insert(k, v) }, func(k uint64) { c.Get(k) }
	})
}

func BenchmarkFastFairOps(b *testing.B) {
	benchKV(b, func(h *Heap) (func(k, v uint64), func(k uint64)) {
		t := NewFastFair(h, 14, 8)
		return func(k, v uint64) { t.Insert(k, v) }, func(k uint64) { t.Get(k) }
	})
}

func BenchmarkARTOps(b *testing.B) {
	benchKV(b, func(h *Heap) (func(k, v uint64), func(k uint64)) {
		a := NewART(h, 8)
		return func(k, v uint64) { a.Insert(k, v) }, func(k uint64) { a.Get(k) }
	})
}

func BenchmarkCLHTOps(b *testing.B) {
	benchKV(b, func(h *Heap) (func(k, v uint64), func(k uint64)) {
		c := NewCLHT(h, 1<<15, 8)
		return func(k, v uint64) { c.Insert(k, v) }, func(k uint64) { c.Get(k) }
	})
}

func BenchmarkMasstreeOps(b *testing.B) {
	benchKV(b, func(h *Heap) (func(k, v uint64), func(k uint64)) {
		m := NewMasstree(h, 15, 8)
		return func(k, v uint64) { m.Insert(k, v) }, func(k uint64) { m.Get(k) }
	})
}

func BenchmarkDashLHOps(b *testing.B) {
	benchKV(b, func(h *Heap) (func(k, v uint64), func(k uint64)) {
		d := NewDashLH(h, 1<<18, 8)
		return func(k, v uint64) { d.Insert(k, v) }, func(k uint64) { d.Get(k) }
	})
}

func BenchmarkSkipListOps(b *testing.B) {
	h := NewHeap(256<<20, 1)
	s := NewAtlasSkipList(h, 8)
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		s.Insert(1+r.Uint64n(1<<18), r.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := 1 + r.Uint64n(1<<18)
		switch i % 4 {
		case 0:
			s.Get(k)
		case 1:
			s.Delete(k)
		default:
			s.Insert(k, uint64(i))
		}
	}
}
