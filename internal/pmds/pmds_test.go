package pmds

import (
	"testing"

	"asap/internal/rng"
	"asap/internal/trace"
)

// kv is the common oracle-driven test: random inserts, updates and lookups
// against a map, across interleaved logical threads.
type kvStore interface {
	insert(key, val uint64) bool
	get(key uint64) (uint64, bool)
}

func runKVOracle(t *testing.T, h *Heap, s kvStore, n int, keyRange uint64, threads int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	oracle := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		h.SetThread(i % threads)
		key := 1 + r.Uint64n(keyRange)
		if r.Bool(0.7) {
			val := r.Uint64()
			if s.insert(key, val) {
				oracle[key] = val
			}
		} else {
			got, ok := s.get(key)
			want, exists := oracle[key]
			if ok != exists {
				t.Fatalf("op %d: get(%d) found=%v, oracle=%v", i, key, ok, exists)
			}
			if ok && got != want {
				t.Fatalf("op %d: get(%d)=%d, oracle=%d", i, key, got, want)
			}
		}
	}
	// Full verification pass.
	h.SetThread(0)
	for k, want := range oracle {
		got, ok := s.get(k)
		if !ok || got != want {
			t.Fatalf("final: get(%d)=(%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
}

type ccehAdapter struct{ c *CCEH }

func (a ccehAdapter) insert(k, v uint64) bool     { return a.c.Insert(k, v) }
func (a ccehAdapter) get(k uint64) (uint64, bool) { return a.c.Get(k) }

func TestCCEHOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	c := NewCCEH(h, 2, 8)
	runKVOracle(t, h, ccehAdapter{c}, 6000, 3000, 4, 42)
	if c.Depth() < 2 {
		t.Error("expected directory growth to have occurred or kept depth")
	}
}

func TestCCEHLargeValues(t *testing.T) {
	h := NewHeap(64<<20, 2)
	c := NewCCEH(h, 2, 128)
	runKVOracle(t, h, ccehAdapter{c}, 1500, 800, 2, 7)
}

type ffAdapter struct{ f *FastFair }

func (a ffAdapter) insert(k, v uint64) bool     { a.f.Insert(k, v); return true }
func (a ffAdapter) get(k uint64) (uint64, bool) { return a.f.Get(k) }

func TestFastFairOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	f := NewFastFair(h, 8, 8)
	runKVOracle(t, h, ffAdapter{f}, 6000, 3000, 4, 43)
	if f.Height() < 2 {
		t.Error("expected the tree to have split at least once")
	}
}

func TestFastFairDelete(t *testing.T) {
	h := NewHeap(16<<20, 1)
	f := NewFastFair(h, 8, 8)
	for k := uint64(1); k <= 200; k++ {
		f.Insert(k, k*10)
	}
	for k := uint64(1); k <= 200; k += 2 {
		if !f.Delete(k) {
			t.Fatalf("delete(%d) failed", k)
		}
	}
	for k := uint64(1); k <= 200; k++ {
		v, ok := f.Get(k)
		if k%2 == 1 && ok {
			t.Fatalf("get(%d) should be deleted", k)
		}
		if k%2 == 0 && (!ok || v != k*10) {
			t.Fatalf("get(%d)=(%d,%v), want (%d,true)", k, v, ok, k*10)
		}
	}
	if f.Delete(9999) {
		t.Error("delete of a missing key reported true")
	}
}

type artAdapter struct{ a *ART }

func (x artAdapter) insert(k, v uint64) bool     { x.a.Insert(k, v); return true }
func (x artAdapter) get(k uint64) (uint64, bool) { return x.a.Get(k) }

func TestARTOracle(t *testing.T) {
	h := NewHeap(256<<20, 4)
	a := NewART(h, 8)
	runKVOracle(t, h, artAdapter{a}, 4000, 2000, 4, 44)
}

func TestARTAdjacentKeys(t *testing.T) {
	// Adjacent keys share 7 prefix bytes: exercises the path-split code.
	h := NewHeap(256<<20, 1)
	a := NewART(h, 8)
	for k := uint64(1); k <= 512; k++ {
		a.Insert(k, k^0xdead)
	}
	for k := uint64(1); k <= 512; k++ {
		v, ok := a.Get(k)
		if !ok || v != k^0xdead {
			t.Fatalf("get(%d)=(%d,%v)", k, v, ok)
		}
	}
	if _, ok := a.Get(513); ok {
		t.Error("missing key found")
	}
}

type clhtAdapter struct{ c *CLHT }

func (x clhtAdapter) insert(k, v uint64) bool     { x.c.Insert(k, v); return true }
func (x clhtAdapter) get(k uint64) (uint64, bool) { return x.c.Get(k) }

func TestCLHTOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	c := NewCLHT(h, 512, 8)
	runKVOracle(t, h, clhtAdapter{c}, 6000, 3000, 4, 45)
}

type mtAdapter struct{ m *Masstree }

func (x mtAdapter) insert(k, v uint64) bool     { x.m.Insert(k, v); return true }
func (x mtAdapter) get(k uint64) (uint64, bool) { return x.m.Get(k) }

func TestMasstreeOracle(t *testing.T) {
	h := NewHeap(128<<20, 4)
	m := NewMasstree(h, 15, 8)
	runKVOracle(t, h, mtAdapter{m}, 6000, 3000, 4, 46)
}

func TestMasstreeSequential(t *testing.T) {
	h := NewHeap(64<<20, 1)
	m := NewMasstree(h, 7, 8)
	for k := uint64(1); k <= 1000; k++ {
		m.Insert(k, k*3)
	}
	for k := uint64(1); k <= 1000; k++ {
		if v, ok := m.Get(k); !ok || v != k*3 {
			t.Fatalf("get(%d)=(%d,%v)", k, v, ok)
		}
	}
}

type dashLHAdapter struct{ d *DashLH }

func (x dashLHAdapter) insert(k, v uint64) bool     { return x.d.Insert(k, v) }
func (x dashLHAdapter) get(k uint64) (uint64, bool) { return x.d.Get(k) }

func TestDashLHOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	d := NewDashLH(h, 2048, 8)
	runKVOracle(t, h, dashLHAdapter{d}, 4000, 2000, 4, 47)
}

type dashEHAdapter struct{ d *DashEH }

func (x dashEHAdapter) insert(k, v uint64) bool     { return x.d.Insert(k, v) }
func (x dashEHAdapter) get(k uint64) (uint64, bool) { return x.d.Get(k) }

func TestDashEHOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	d := NewDashEH(h, 2, 64, 8)
	runKVOracle(t, h, dashEHAdapter{d}, 4000, 2000, 4, 48)
}

func TestAtlasQueueFIFO(t *testing.T) {
	h := NewHeap(32<<20, 2)
	q := NewAtlasQueue(h, 8)
	for i := uint64(1); i <= 500; i++ {
		h.SetThread(int(i % 2))
		q.Enqueue(i * 7)
	}
	for i := uint64(1); i <= 500; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i*7 {
			t.Fatalf("dequeue %d = (%d,%v), want %d", i, v, ok, i*7)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("dequeue from empty queue succeeded")
	}
}

func TestAtlasHeapOrdering(t *testing.T) {
	h := NewHeap(32<<20, 2)
	a := NewAtlasHeap(h, 4096)
	r := rng.New(99)
	var n int
	for i := 0; i < 1000; i++ {
		if a.Insert(r.Uint64() % 100000) {
			n++
		}
	}
	if a.Size() != n {
		t.Fatalf("size=%d, want %d", a.Size(), n)
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		v, ok := a.PopMin()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if v < prev {
			t.Fatalf("heap order violated: %d after %d", v, prev)
		}
		prev = v
	}
	if _, ok := a.PopMin(); ok {
		t.Error("pop from empty heap succeeded")
	}
}

func TestAtlasSkipListOracle(t *testing.T) {
	h := NewHeap(64<<20, 4)
	s := NewAtlasSkipList(h, 8)
	r := rng.New(77)
	oracle := make(map[uint64]uint64)
	for i := 0; i < 4000; i++ {
		h.SetThread(i % 4)
		key := 1 + r.Uint64n(1500)
		switch r.Intn(3) {
		case 0:
			val := r.Uint64()
			s.Insert(key, val)
			oracle[key] = val
		case 1:
			got := s.Delete(key)
			_, want := oracle[key]
			if got != want {
				t.Fatalf("delete(%d)=%v, oracle=%v", key, got, want)
			}
			delete(oracle, key)
		default:
			got, ok := s.Get(key)
			want, exists := oracle[key]
			if ok != exists || (ok && got != want) {
				t.Fatalf("get(%d)=(%d,%v), oracle=(%d,%v)", key, got, ok, want, exists)
			}
		}
	}
	if s.Len() != len(oracle) {
		t.Fatalf("len=%d, oracle=%d", s.Len(), len(oracle))
	}
}

// TestTraceRecorded verifies that structure operations actually record
// multi-threaded traces with locks and fences.
func TestTraceRecorded(t *testing.T) {
	h := NewHeap(32<<20, 4)
	c := NewCCEH(h, 2, 8)
	for i := 0; i < 400; i++ {
		h.SetThread(i % 4)
		c.Insert(uint64(i+1), uint64(i))
	}
	tr := h.Trace("cceh")
	if tr.NumThreads() != 4 {
		t.Fatalf("threads=%d", tr.NumThreads())
	}
	counts := tr.Counts()
	for _, k := range []trace.Kind{trace.OpStore, trace.OpLoad, trace.OpOfence, trace.OpDfence, trace.OpAcquire, trace.OpRelease} {
		if counts[k] == 0 {
			t.Errorf("trace has no %v ops", k)
		}
	}
}
