// Package runspec defines the serializable, canonically-hashable
// specification of one simulation run: workload, persistence model,
// generator parameters and machine configuration.
//
// Every simulation in this repository is a pure function of its RunSpec
// (PR 2 proved parallel output byte-identical to serial for exactly this
// reason), which makes the spec a global cache key: two parties that
// agree on a RunSpec agree on the result. The canonical form makes that
// agreement mechanical — Canonical renders the spec as JSON with
// recursively sorted object keys and no insignificant whitespace, so the
// hash is independent of field order, formatting, and the Go struct
// declaration order, and Hash (SHA-256 of the canonical bytes) is the
// content address under which asapd's store, the harness cache and any
// future campaign runner file the result.
//
// The schema is versioned: Schema names the current version, Parse
// rejects specs from other versions, and because the version is part of
// the canonical bytes, bumping it changes every hash — old store entries
// are orphaned rather than silently misread. A golden-hash test pins the
// canonical form; accidental changes to Params or Config field sets fail
// loudly there.
package runspec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"asap/internal/config"
	"asap/internal/workload"
)

// Schema is the current RunSpec schema version. Bump it whenever the
// meaning of a spec changes (a field is added, removed, or reinterpreted
// in workload.Params or config.Config): the version participates in the
// canonical bytes, so a bump invalidates every previously computed hash
// instead of letting a stale store entry answer for a different run.
const Schema = 1

// RunSpec identifies one simulation run completely. It is a flat
// comparable value (usable directly as a map key — the harness engine's
// singleflight cache does) and round-trips through JSON.
type RunSpec struct {
	Schema   int             `json:"schema"`
	Workload string          `json:"workload"`
	Model    string          `json:"model"`
	Params   workload.Params `json:"params"`
	Config   config.Config   `json:"config"`

	// Shards requests a sharded (multi-domain) engine for the run. Sharded
	// runs reproduce the serial result exactly (the machine package's
	// differential suite is the contract), so 0 and 1 both mean "serial"
	// and are canonically identical: Normalize folds 1 into the zero value
	// and omitempty keeps it out of the canonical bytes — every pre-existing
	// content address is unchanged, and Schema stays at 1. Values above 1
	// do participate in the hash: they select a different execution engine,
	// and a store that wants to trust the equivalence may map such specs
	// back itself.
	Shards int `json:"shards,omitempty"`
}

// New builds a normalized RunSpec at the current schema version. A zero
// Config selects config.Default(), and the spec is normalized (see
// Normalize) so that equivalent requests hash identically.
func New(wl, mdl string, p workload.Params, cfg config.Config) RunSpec {
	s := RunSpec{Schema: Schema, Workload: wl, Model: mdl, Params: p, Config: cfg}
	s.Normalize()
	return s
}

// Normalize fills defaulted fields in place, mirroring what the
// simulator itself would do with the raw values: a zero Config becomes
// config.Default(), zero generator defaults are materialized
// (workload.Params.Normalized), and Cores is raised to Threads — the
// same adjustment the harness and asapsim apply before building a
// machine. Hashes are computed over normalized specs, so requests that
// differ only in elided defaults share one content address.
func (s *RunSpec) Normalize() {
	if s.Schema == 0 {
		s.Schema = Schema
	}
	if s.Config == (config.Config{}) {
		s.Config = config.Default()
	}
	s.Params = s.Params.Normalized()
	if s.Params.Threads > s.Config.Cores {
		s.Config.Cores = s.Params.Threads
	}
	if s.Shards == 1 {
		s.Shards = 0 // serial is the zero value; keeps the hash shard-free
	}
}

// Validate reports whether the spec is structurally runnable: current
// schema, named workload and model, positive scale parameters, and an
// internally consistent machine configuration. Name resolution (does the
// workload exist?) is left to the consumer, which has the registries.
func (s RunSpec) Validate() error {
	switch {
	case s.Schema != Schema:
		return fmt.Errorf("runspec: unsupported schema version %d (current %d)", s.Schema, Schema)
	case s.Workload == "":
		return fmt.Errorf("runspec: missing workload")
	case s.Model == "":
		return fmt.Errorf("runspec: missing model")
	case s.Params.Threads <= 0:
		return fmt.Errorf("runspec: Params.Threads must be positive")
	case s.Params.OpsPerThread <= 0:
		return fmt.Errorf("runspec: Params.OpsPerThread must be positive")
	case s.Params.Threads > s.Config.Cores:
		return fmt.Errorf("runspec: %d threads exceed %d cores (normalize the spec)", s.Params.Threads, s.Config.Cores)
	case s.Shards < 0:
		return fmt.Errorf("runspec: Shards must be non-negative (0 or 1 = serial)")
	}
	return validateConfig(s.Config)
}

// validateConfig adapts config.Validate's panic-on-inconsistency
// contract (built for hand-edited test configs) into an error, so a bad
// spec arriving over HTTP is a 400, not a crashed service.
func validateConfig(c config.Config) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runspec: %v", r)
		}
	}()
	c.Validate()
	return nil
}

// Parse decodes a RunSpec from JSON. Field order and whitespace are
// irrelevant; unknown fields are rejected (a typo must not silently
// select a default); a missing schema defaults to the current version,
// any other mismatch is an error. The result is normalized and
// validated, so Parse(b).Hash() is the content address the spec's
// result will be stored under.
func Parse(data []byte) (RunSpec, error) {
	var s RunSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("runspec: parse: %w", err)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return RunSpec{}, err
	}
	return s, nil
}

// Canonical renders the spec as canonical JSON: recursively sorted
// object keys, no insignificant whitespace, integers verbatim. The
// canonical bytes — not the Go struct — are the unit of agreement:
// hash them, store them, diff them.
func (s RunSpec) Canonical() ([]byte, error) {
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("runspec: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep integer literals exact (uint64 seeds overflow float64)
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("runspec: %w", err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeCanonical serializes v with sorted object keys and no whitespace.
func writeCanonical(b *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			b.Write(kb)
			b.WriteByte(':')
			if err := writeCanonical(b, x[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	case []any:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case json.Number:
		b.WriteString(string(x))
	case string:
		sb, err := json.Marshal(x)
		if err != nil {
			return err
		}
		b.Write(sb)
	case bool:
		if x {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case nil:
		b.WriteString("null")
	default:
		return fmt.Errorf("runspec: canonical: unexpected type %T", v)
	}
	return nil
}

// Hash returns the spec's content address: the lowercase-hex SHA-256 of
// its canonical bytes. Equal specs (after Normalize) hash equal on any
// machine, architecture, and Go version.
func (s RunSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// MustHash is Hash for specs built in-process (every field of a RunSpec
// marshals; failure indicates a corrupted program, not bad input).
func (s RunSpec) MustHash() string {
	h, err := s.Hash()
	if err != nil {
		panic(err)
	}
	return h
}

// HashLen is the length of a Hash string (hex SHA-256); consumers use
// it to reject malformed content addresses before touching the disk.
const HashLen = 2 * sha256.Size

// ValidHash reports whether h is a well-formed content address:
// lowercase hex of the right length. Store paths are derived from
// hashes, so this is also the path-traversal guard.
func ValidHash(h string) bool {
	if len(h) != HashLen {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// String names the run compactly for error messages and logs:
// workload/model/threads, the same shape the harness always used.
func (s RunSpec) String() string {
	return fmt.Sprintf("%s/%s/%dt", s.Workload, s.Model, s.Params.Threads)
}
