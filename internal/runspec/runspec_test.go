package runspec

import (
	"bytes"
	"strings"
	"testing"

	"asap/internal/config"
	"asap/internal/workload"
)

// defaultSpec is the reference spec of the golden-hash test: the Figure 8
// headline cell (cceh under asap_rp at the Table II configuration).
func defaultSpec() RunSpec {
	return New("cceh", "asap_rp", workload.Default(), config.Default())
}

// goldenHash pins the content address of defaultSpec. If this test fails
// you changed the canonical form — a field was added, removed or renamed
// in RunSpec, workload.Params or config.Config, or the canonical encoder
// changed. That invalidates every existing store entry: bump Schema,
// regenerate this constant (the failure message prints the new value),
// and mention the bump in the commit.
const goldenHash = "01bf3605d70c24d10c52896db345a228e1d24de47d2b10f6afac13319bd14e13"

func TestGoldenHash(t *testing.T) {
	h, err := defaultSpec().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenHash {
		t.Fatalf("canonical hash of the default spec changed:\n got  %s\n want %s\nIf the spec schema really changed, bump runspec.Schema and update goldenHash.", h, goldenHash)
	}
}

// TestHashIndependentOfFieldOrderAndWhitespace: the same spec serialized
// with shuffled key order and arbitrary whitespace parses to the same
// content address as the struct-built spec.
func TestHashIndependentOfFieldOrderAndWhitespace(t *testing.T) {
	want := defaultSpec().MustHash()
	canon, err := defaultSpec().Canonical()
	if err != nil {
		t.Fatal(err)
	}

	// Hand-written variant: top-level keys shuffled, nested keys shuffled,
	// whitespace everywhere, config elided (defaults fill it). Field
	// values mirror workload.Default().
	variant := `{
		"model":    "asap_rp",
		"params": { "Seed": 1, "Threads": 4, "OpsPerThread": 600,
			    "ValueSize": 64, "KeyRange": 4096, "Strands": false },
		"workload": "cceh",
		"schema": 1
	}`
	s1, err := Parse([]byte(variant))
	if err != nil {
		t.Fatal(err)
	}
	if got := s1.MustHash(); got != want {
		t.Fatalf("shuffled/whitespaced spec hashed %s, struct spec %s", got, want)
	}

	// And the canonical bytes themselves are a fixpoint: parsing them and
	// re-canonicalizing reproduces them exactly.
	s2, err := Parse(canon)
	if err != nil {
		t.Fatal(err)
	}
	canon2, err := s2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, canon2) {
		t.Fatalf("canonical form is not a fixpoint:\n%s\nvs\n%s", canon, canon2)
	}
}

// TestSchemaParticipatesInHash: bumping the schema version changes the
// hash even when every other field is identical, so a schema bump
// orphans old store entries instead of misreading them.
func TestSchemaParticipatesInHash(t *testing.T) {
	s := defaultSpec()
	bumped := s
	bumped.Schema = Schema + 1
	if s.MustHash() == bumped.MustHash() {
		t.Fatal("schema version does not participate in the hash")
	}
	// Parse refuses foreign schema versions outright.
	if _, err := Parse([]byte(`{"schema": 99, "workload": "cceh", "model": "asap_rp",
		"params": {"Threads": 1, "OpsPerThread": 1}}`)); err == nil ||
		!strings.Contains(err.Error(), "unsupported schema") {
		t.Fatalf("err = %v, want unsupported-schema error", err)
	}
}

// TestNormalization: elided defaults (missing config, zero KeyRange and
// ValueSize, missing schema, Threads above the default core count) are
// filled in by Parse, so minimal and fully spelled-out requests share
// one content address.
func TestNormalization(t *testing.T) {
	minimal := []byte(`{"workload": "cceh", "model": "asap_rp",
		"params": {"Threads": 8, "OpsPerThread": 100}}`)
	s, err := Parse(minimal)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != Schema {
		t.Fatalf("Schema = %d, want %d", s.Schema, Schema)
	}
	if s.Params.KeyRange != 1024 || s.Params.ValueSize != 8 {
		t.Fatalf("generator defaults not filled: %+v", s.Params)
	}
	if s.Config.Cores != 8 {
		t.Fatalf("Cores = %d, want raised to 8 threads", s.Config.Cores)
	}

	p := workload.Params{Threads: 8, OpsPerThread: 100, KeyRange: 1024, ValueSize: 8}
	cfg := config.Default()
	cfg.Cores = 8
	if want := New("cceh", "asap_rp", p, cfg).MustHash(); s.MustHash() != want {
		t.Fatalf("minimal spec hashed %s, explicit equivalent %s", s.MustHash(), want)
	}
}

// TestShardsHashNeutrality: the shards field is canonically invisible for
// serial runs — 0 (elided) and 1 (normalized to 0) produce byte-identical
// canonical forms, so every content address computed before the field
// existed is still valid. Only shards > 1 (a genuinely different engine)
// participates in the hash.
func TestShardsHashNeutrality(t *testing.T) {
	base := defaultSpec()
	canon, err := base.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), "shards") {
		t.Fatalf("serial canonical form mentions shards: %s", canon)
	}

	one := defaultSpec()
	one.Shards = 1
	one.Normalize()
	c1, err := one.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon, c1) {
		t.Fatalf("Shards=1 changed the canonical bytes:\n%s\nvs\n%s", canon, c1)
	}
	if one.MustHash() != goldenHash {
		t.Fatalf("Shards=1 changed the content address: %s", one.MustHash())
	}

	two := defaultSpec()
	two.Shards = 2
	two.Normalize()
	if two.MustHash() == goldenHash {
		t.Fatal("Shards=2 does not participate in the hash")
	}
	c2, err := two.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(c2), `"shards":2`) {
		t.Fatalf("Shards=2 missing from canonical form: %s", c2)
	}

	// Parse accepts the field (it is not "unknown"), normalizes 1 back to
	// the zero value, and rejects negatives.
	s, err := Parse([]byte(`{"workload": "cceh", "model": "asap_rp", "shards": 1,
		"params": {"Threads": 4, "OpsPerThread": 600, "KeyRange": 4096, "ValueSize": 64, "Seed": 1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards != 0 {
		t.Fatalf("parsed Shards = %d, want 0 after normalization", s.Shards)
	}
	if s.MustHash() != goldenHash {
		t.Fatalf("parsed shards:1 spec hashed %s, want %s", s.MustHash(), goldenHash)
	}
	if _, err := Parse([]byte(`{"workload": "cceh", "model": "asap_rp", "shards": -2,
		"params": {"Threads": 1, "OpsPerThread": 1}}`)); err == nil ||
		!strings.Contains(err.Error(), "Shards") {
		t.Fatalf("err = %v, want Shards complaint", err)
	}
}

// TestParseRejects: unknown fields (typos must not select defaults
// silently), malformed JSON, and structurally unrunnable specs.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"unknown field", `{"workload": "cceh", "modle": "asap_rp"}`, "unknown field"},
		{"malformed", `{"workload": `, "parse"},
		{"missing workload", `{"model": "asap_rp", "params": {"Threads": 1, "OpsPerThread": 1}}`, "missing workload"},
		{"missing model", `{"workload": "cceh", "params": {"Threads": 1, "OpsPerThread": 1}}`, "missing model"},
		{"zero threads", `{"workload": "cceh", "model": "asap_rp", "params": {"OpsPerThread": 1}}`, "Threads"},
		{"zero ops", `{"workload": "cceh", "model": "asap_rp", "params": {"Threads": 1}}`, "OpsPerThread"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.in)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateBadConfig: an internally inconsistent machine configuration
// is an error (not a panic — config.Validate's contract is adapted).
func TestValidateBadConfig(t *testing.T) {
	s := defaultSpec()
	s.Config.InterleaveBytes = 100 // not a multiple of the line size
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "InterleaveBytes") {
		t.Fatalf("err = %v, want InterleaveBytes complaint", err)
	}
}

// TestCanonicalShape: the canonical bytes are compact JSON with sorted
// keys — no spaces, schema before workload only if sorted order says so.
func TestCanonicalShape(t *testing.T) {
	c, err := defaultSpec().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s := string(c)
	if strings.ContainsAny(s, " \n\t") {
		t.Fatalf("canonical form contains whitespace: %s", s)
	}
	// Top-level keys in sorted order.
	order := []string{`"config"`, `"model"`, `"params"`, `"schema"`, `"workload"`}
	last := -1
	for _, k := range order {
		i := strings.Index(s, k)
		if i < 0 {
			t.Fatalf("canonical form missing %s: %s", k, s)
		}
		if i < last {
			t.Fatalf("canonical keys out of sorted order at %s: %s", k, s)
		}
		last = i
	}
}

// TestValidHash: the content-address format check used by store paths.
func TestValidHash(t *testing.T) {
	good := defaultSpec().MustHash()
	if !ValidHash(good) {
		t.Fatalf("real hash %s rejected", good)
	}
	for _, bad := range []string{
		"", "abc", strings.Repeat("g", HashLen), strings.ToUpper(good),
		"../" + good[3:], good + "ff",
	} {
		if ValidHash(bad) {
			t.Errorf("ValidHash(%q) = true, want false", bad)
		}
	}
}

// TestString: the compact run name used in errors and logs.
func TestString(t *testing.T) {
	if got := defaultSpec().String(); got != "cceh/asap_rp/4t" {
		t.Fatalf("String() = %q", got)
	}
}
