package stats

import (
	"strings"
	"testing"
)

// Register the ad-hoc names this file writes; production names live in the
// vocab files of the owning packages.
func init() {
	for _, n := range []string{"a", "b", "m", "x", "y", "zeta", "alpha"} {
		Register(n, "test counter "+n)
	}
	for _, n := range []string{"lat", "d", "occ"} {
		RegisterDist(n, "test counter "+n)
	}
}

func TestUnregisteredCounterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("write to unregistered counter did not panic")
		}
	}()
	s.Inc("definitely-not-registered")
}

func TestRegisterConflictPanics(t *testing.T) {
	Register("dup", "one description")
	Register("dup", "one description") // same description: idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	Register("dup", "another description")
}

func TestDescription(t *testing.T) {
	if d := Description("a"); d != "test counter a" {
		t.Fatalf("Description(a) = %q", d)
	}
	if Description("never-registered") != "" {
		t.Fatal("unknown name should describe as empty")
	}
}

func TestDescribeOutput(t *testing.T) {
	s := New()
	s.Add("a", 3)
	s.Observe("occ", 5)
	out := s.Describe()
	if !strings.Contains(out, "# test counter a") {
		t.Fatalf("counter description missing from %q", out)
	}
	if !strings.Contains(out, "# test counter occ") {
		t.Fatalf("dist description missing from %q", out)
	}
}

func TestCounters(t *testing.T) {
	s := New()
	s.Inc("a")
	s.Add("a", 4)
	if s.Get("a") != 5 {
		t.Fatalf("a = %d", s.Get("a"))
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
}

func TestCounterHandles(t *testing.T) {
	kA := Register("a", "test counter a")
	s := New()
	c := s.Counter(kA)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 || s.Get("a") != 5 {
		t.Fatalf("handle writes lost: Value=%d Get=%d", c.Value(), s.Get("a"))
	}
	// Handle and string writes share the same slot.
	s.Inc("a")
	if c.Value() != 6 {
		t.Fatal("string write invisible through handle")
	}
}

// TestCounterHandleSurvivesLateRegister pins the index-based handle design:
// registering a new name after a Set (and its handles) exist grows the
// dense storage without invalidating outstanding handles.
func TestCounterHandleSurvivesLateRegister(t *testing.T) {
	s := New()
	c := s.Counter(Register("a", "test counter a"))
	c.Inc()
	kLate := Register("late-registered-counter", "registered after the set was built")
	late := s.Counter(kLate)
	late.Add(2)
	c.Inc()
	if c.Value() != 2 || late.Value() != 2 {
		t.Fatalf("handles broke across growth: a=%d late=%d", c.Value(), late.Value())
	}
}

// TestUntouchedCountersUnlisted pins the print semantics the map gave us:
// resolving a handle does not materialize a printed entry, but any write —
// even Add(0) — does.
func TestUntouchedCountersUnlisted(t *testing.T) {
	s := New()
	s.Counter(Register("a", "test counter a")) // resolved, never written
	if n := s.Names(); len(n) != 0 {
		t.Fatalf("resolution alone listed %v", n)
	}
	s.Add("a", 0)
	if n := s.Names(); len(n) != 1 || n[0] != "a" {
		t.Fatalf("Add(0) should materialize the entry, got %v", n)
	}
}

func TestSetMax(t *testing.T) {
	s := New()
	s.SetMax("m", 5)
	s.SetMax("m", 3)
	s.SetMax("m", 9)
	if s.Get("m") != 9 {
		t.Fatalf("m = %d, want 9", s.Get("m"))
	}
}

func TestDistBasics(t *testing.T) {
	var d Dist
	for v := uint64(1); v <= 100; v++ {
		d.Observe(v)
	}
	if d.Count() != 100 {
		t.Fatalf("count = %d", d.Count())
	}
	if m := d.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	if d.Max() != 100 {
		t.Fatalf("max = %d", d.Max())
	}
	if p := d.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %d", p)
	}
	if p := d.Percentile(0.99); p != 99 {
		t.Fatalf("p99 = %d", p)
	}
}

func TestDistOverflowBucket(t *testing.T) {
	var d Dist
	d.Observe(10)
	d.Observe(1 << 20) // beyond bucket range
	if d.Max() != 1<<20 {
		t.Fatal("overflow sample lost from max")
	}
	if d.Mean() != float64(10+1<<20)/2 {
		t.Fatal("overflow sample lost from mean")
	}
	if p := d.Percentile(0.99); p != 1<<20 {
		t.Fatalf("p99 = %d, want the overflow max", p)
	}
}

func TestPercentileOverflowConsistency(t *testing.T) {
	// Two samples in the overflow bucket: per-value resolution is gone
	// there, so every percentile landing in it reports Max — not the
	// smaller overflow sample, which the buckets cannot distinguish.
	var d Dist
	d.Observe(10)
	d.Observe(5000)
	d.Observe(6000)
	if p := d.Percentile(0.3); p != 10 {
		t.Fatalf("p30 = %d, want exact-bucket 10", p)
	}
	if p := d.Percentile(0.5); p != 6000 {
		t.Fatalf("p50 = %d, want Max for an overflow-bucket target", p)
	}
}

func TestPercentileP100IsMax(t *testing.T) {
	cases := []struct {
		name    string
		samples []uint64
	}{
		{"exact", []uint64{1, 2, 3}},
		{"overflow", []uint64{1, 5000}},
		{"all-overflow", []uint64{4096, 9999}},
	}
	for _, c := range cases {
		var d Dist
		for _, v := range c.samples {
			d.Observe(v)
		}
		if got := d.Percentile(1); got != d.Max() {
			t.Errorf("%s: Percentile(1) = %d, Max = %d", c.name, got, d.Max())
		}
		if got := d.Percentile(1.5); got != d.Max() {
			t.Errorf("%s: Percentile(1.5) = %d, want clamp to Max", c.name, got)
		}
	}
}

func TestPercentileClampsNegative(t *testing.T) {
	var d Dist
	d.Observe(7)
	d.Observe(9)
	if p := d.Percentile(-0.5); p != 7 {
		t.Fatalf("Percentile(-0.5) = %d, want the minimum sample", p)
	}
}

func TestEmptyDist(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Percentile(0.99) != 0 || d.Max() != 0 {
		t.Fatal("empty dist should report zeros")
	}
}

func TestObserveAndDistLookup(t *testing.T) {
	s := New()
	s.Observe("lat", 7)
	s.Observe("lat", 9)
	d := s.Dist("lat")
	if d == nil || d.Count() != 2 {
		t.Fatal("dist not recorded")
	}
	if s.Dist("other") != nil {
		t.Fatal("unknown dist should be nil")
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Add("x", 3)
	b.Add("x", 4)
	b.Add("y", 1)
	a.Observe("d", 10)
	b.Observe("d", 20)
	a.Merge(b)
	if a.Get("x") != 7 || a.Get("y") != 1 {
		t.Fatal("counter merge wrong")
	}
	if d := a.Dist("d"); d.Count() != 2 || d.Max() != 20 {
		t.Fatal("dist merge wrong")
	}
}

func TestStringFormat(t *testing.T) {
	s := New()
	s.Add("zeta", 1)
	s.Add("alpha", 2)
	s.Observe("occ", 5)
	out := s.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "zeta") {
		t.Fatalf("missing counters in %q", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatal("counters not sorted")
	}
	if !strings.Contains(out, "occ") {
		t.Fatal("dist missing from String")
	}
}

func TestNames(t *testing.T) {
	s := New()
	s.Inc("b")
	s.Inc("a")
	n := s.Names()
	if len(n) != 2 || n[0] != "a" || n[1] != "b" {
		t.Fatalf("names = %v", n)
	}
}

// TestSnapshotOrderPinned pins the name-sorted order of the snapshot
// slices. Serialized envelopes and the Prometheus exposition both
// inherit their byte-determinism from this order, so it is contract, not
// implementation detail.
func TestSnapshotOrderPinned(t *testing.T) {
	s := New()
	for _, n := range []string{"zeta", "m", "alpha", "b", "x"} {
		s.Inc(n)
	}
	cs := s.CounterValues()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Name >= cs[i].Name {
			t.Fatalf("CounterValues out of order at %d: %q >= %q", i, cs[i-1].Name, cs[i].Name)
		}
	}
	if len(cs) != 5 || cs[0].Name != "alpha" || cs[4].Name != "zeta" {
		t.Fatalf("CounterValues = %+v", cs)
	}
	s.Observe("occ", 1)
	s.Observe("lat", 2)
	s.Observe("d", 3)
	ds := s.DistValues()
	if len(ds) != 3 || ds[0].Name != "d" || ds[1].Name != "lat" || ds[2].Name != "occ" {
		t.Fatalf("DistValues not name-sorted: %+v", ds)
	}
}

// TestRegistered: the registry vocabulary lists every registered name
// with its description, sorted, and is insensitive to Set state.
func TestRegistered(t *testing.T) {
	regs := Registered()
	if len(regs) == 0 {
		t.Fatal("empty registry")
	}
	found := false
	for i, r := range regs {
		if i > 0 && regs[i-1].Name >= r.Name {
			t.Fatalf("registry not sorted at %q", r.Name)
		}
		if r.Name == "zeta" {
			found = true
			if r.Desc != "test counter zeta" {
				t.Fatalf("zeta desc = %q", r.Desc)
			}
		}
	}
	if !found {
		t.Fatal("registered name missing from Registered()")
	}
}

// TestSnapshots: CounterValues/DistValues capture exactly the touched
// state, sorted by name, with the same numbers the accessors report.
func TestSnapshots(t *testing.T) {
	s := New()
	s.Add("zeta", 7)
	s.Add("alpha", 3)
	s.Observe("occ", 5)
	s.Observe("occ", 9)

	cs := s.CounterValues()
	if len(cs) != 2 || cs[0].Name != "alpha" || cs[0].Value != 3 || cs[1].Name != "zeta" || cs[1].Value != 7 {
		t.Fatalf("CounterValues = %+v", cs)
	}
	ds := s.DistValues()
	if len(ds) != 1 || ds[0].Name != "occ" || ds[0].Count != 2 || ds[0].Max != 9 || ds[0].Mean != 7 {
		t.Fatalf("DistValues = %+v", ds)
	}
	if ds[0].P99 != s.Dist("occ").Percentile(0.99) {
		t.Fatalf("P99 snapshot %d != live %d", ds[0].P99, s.Dist("occ").Percentile(0.99))
	}
}
