package stats

import (
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	s := New()
	s.Inc("a")
	s.Add("a", 4)
	if s.Get("a") != 5 {
		t.Fatalf("a = %d", s.Get("a"))
	}
	if s.Get("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
}

func TestSetMax(t *testing.T) {
	s := New()
	s.SetMax("m", 5)
	s.SetMax("m", 3)
	s.SetMax("m", 9)
	if s.Get("m") != 9 {
		t.Fatalf("m = %d, want 9", s.Get("m"))
	}
}

func TestDistBasics(t *testing.T) {
	var d Dist
	for v := uint64(1); v <= 100; v++ {
		d.Observe(v)
	}
	if d.Count() != 100 {
		t.Fatalf("count = %d", d.Count())
	}
	if m := d.Mean(); m != 50.5 {
		t.Fatalf("mean = %v", m)
	}
	if d.Max() != 100 {
		t.Fatalf("max = %d", d.Max())
	}
	if p := d.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %d", p)
	}
	if p := d.Percentile(0.99); p != 99 {
		t.Fatalf("p99 = %d", p)
	}
}

func TestDistOverflowBucket(t *testing.T) {
	var d Dist
	d.Observe(10)
	d.Observe(1 << 20) // beyond bucket range
	if d.Max() != 1<<20 {
		t.Fatal("overflow sample lost from max")
	}
	if d.Mean() != float64(10+1<<20)/2 {
		t.Fatal("overflow sample lost from mean")
	}
	if p := d.Percentile(0.99); p != 1<<20 {
		t.Fatalf("p99 = %d, want the overflow max", p)
	}
}

func TestEmptyDist(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Percentile(0.99) != 0 || d.Max() != 0 {
		t.Fatal("empty dist should report zeros")
	}
}

func TestObserveAndDistLookup(t *testing.T) {
	s := New()
	s.Observe("lat", 7)
	s.Observe("lat", 9)
	d := s.Dist("lat")
	if d == nil || d.Count() != 2 {
		t.Fatal("dist not recorded")
	}
	if s.Dist("other") != nil {
		t.Fatal("unknown dist should be nil")
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Add("x", 3)
	b.Add("x", 4)
	b.Add("y", 1)
	a.Observe("d", 10)
	b.Observe("d", 20)
	a.Merge(b)
	if a.Get("x") != 7 || a.Get("y") != 1 {
		t.Fatal("counter merge wrong")
	}
	if d := a.Dist("d"); d.Count() != 2 || d.Max() != 20 {
		t.Fatal("dist merge wrong")
	}
}

func TestStringFormat(t *testing.T) {
	s := New()
	s.Add("zeta", 1)
	s.Add("alpha", 2)
	s.Observe("occ", 5)
	out := s.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "zeta") {
		t.Fatalf("missing counters in %q", out)
	}
	if strings.Index(out, "alpha") > strings.Index(out, "zeta") {
		t.Fatal("counters not sorted")
	}
	if !strings.Contains(out, "occ") {
		t.Fatal("dist missing from String")
	}
}

func TestNames(t *testing.T) {
	s := New()
	s.Inc("b")
	s.Inc("a")
	n := s.Names()
	if len(n) != 2 || n[0] != "a" || n[1] != "b" {
		t.Fatalf("names = %v", n)
	}
}
