package stats

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the stats
// registry. WriteProm renders the full registered vocabulary — touched or
// not — so the metric families a scraper sees are a property of the
// binary, not of which workloads happened to run, and every scrape of an
// unchanged Set is byte-identical (iteration follows the sorted registry,
// floats render with strconv's shortest form).
//
// Counters render as
//
//	# HELP asap_cycles_blocked sampled cycles during which ...
//	# TYPE asap_cycles_blocked_total counter
//	asap_cycles_blocked_total 1234
//
// and distributions as summaries with the quantiles asapd's operators
// chart (p50/p95/p99 from Dist.Percentile) plus an explicit _max gauge,
// which Prometheus summaries lack but Figure 12-style occupancy analysis
// needs:
//
//	# TYPE asap_pb_occupancy summary
//	asap_pb_occupancy{quantile="0.5"} 3
//	...
//	asap_pb_occupancy_sum 812
//	asap_pb_occupancy_count 270
//	asap_pb_occupancy_max 14

// PromName converts a registry name (camelCase, Table VI vocabulary) into
// a Prometheus metric name under prefix: pbOccupancy with prefix "asap_"
// becomes asap_pb_occupancy. Registry names are ASCII letters and digits,
// which the conversion maps onto [a-z0-9_], the conventional subset.
func PromName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + len(name) + 4)
	b.WriteString(prefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			b.WriteByte('_')
			b.WriteByte(c - 'A' + 'a')
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line per the exposition format: backslash and
// newline are the only characters that need it.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat renders a float sample deterministically (shortest form that
// round-trips, matching strconv 'g' with -1 precision).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCounterProm emits one counter family: HELP, TYPE, and the sample.
// name must already be a full Prometheus name without the _total suffix.
func WriteCounterProm(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s_total %s\n# TYPE %s_total counter\n%s_total %d\n", name, escapeHelp(help), name, name, v)
}

// WriteGaugeProm emits one gauge family.
func WriteGaugeProm(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, escapeHelp(help), name, name, promFloat(v))
}

// summaryQuantiles are the quantile labels WriteDistProm renders, in
// exposition order.
var summaryQuantiles = []struct {
	label string
	p     float64
}{
	{"0.5", 0.5},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// WriteDistProm emits one distribution as a summary family plus its _max
// gauge. A nil d (registered but never observed) renders with zero count
// and no quantile samples, keeping the family present and the output
// byte-stable.
func WriteDistProm(w io.Writer, name, help string, d *Dist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, escapeHelp(help), name)
	var sum, count, max uint64
	if d != nil {
		sum, count, max = d.Sum(), d.Count(), d.Max()
		for _, q := range summaryQuantiles {
			fmt.Fprintf(w, "%s{quantile=%q} %d\n", name, q.label, d.Percentile(q.p))
		}
	}
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, sum, name, count)
	fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", name, name, max)
}

// WriteProm renders s in Prometheus text format under prefix, covering
// the complete registered vocabulary in sorted-name order: every
// counter-kind name (value 0 when untouched) and every dist-kind name
// (empty summary when never observed). Identical Sets render identical
// bytes, so the output can be golden-tested and diffed across scrapes.
func WriteProm(w io.Writer, prefix string, s *Set) {
	for _, reg := range Registered() {
		name := PromName(prefix, reg.Name)
		if reg.Kind == KindDist.String() {
			WriteDistProm(w, name, reg.Desc, s.Dist(reg.Name))
		} else {
			WriteCounterProm(w, name, reg.Desc, s.Get(reg.Name))
		}
	}
}
