package stats

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckProm validates a Prometheus text-format page: every line must be
// a well-formed comment (# HELP / # TYPE with a known type) or a sample
// (valid metric name, balanced label braces, float-parseable value), and
// a family's TYPE line must precede its samples and appear at most once.
// It is a syntax lint for CI scrapes — cheap, dependency-free, and far
// stricter than "curl got a 200" — not a full exposition parser.
func CheckProm(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := make(map[string]string) // family -> declared type
	sampled := make(map[string]bool) // family names seen as samples
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkPromComment(line, typed, sampled); err != nil {
				return fmt.Errorf("line %d: %w", n, err)
			}
			continue
		}
		if err := checkPromSample(line, typed, sampled); err != nil {
			return fmt.Errorf("line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(sampled) == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

func checkPromComment(line string, typed map[string]string, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !validPromName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	case "TYPE":
		name := fields[2]
		if !validPromName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE %s missing a type", name)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s has unknown type %q", name, fields[3])
		}
		if _, dup := typed[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		typed[name] = fields[3]
	default:
		// Other comments are permitted free-form.
	}
	return nil
}

func checkPromSample(line string, typed map[string]string, sampled map[string]bool) error {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name := rest[:i]
	if !validPromName(name) {
		return fmt.Errorf("invalid metric name in sample %q", line)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := checkPromLabels(rest)
		if err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	value := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		value = rest[:sp] // optional timestamp follows
		if _, err := strconv.ParseInt(strings.TrimSpace(rest[sp+1:]), 10, 64); err != nil {
			return fmt.Errorf("malformed timestamp in %q", line)
		}
	}
	if value != "+Inf" && value != "-Inf" && value != "NaN" {
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("malformed value %q in %q", value, line)
		}
	}
	sampled[name] = true
	// Histogram and summary series carry suffixes; fold them back onto
	// the declared family so the TYPE-before-sample check sees them.
	family := name
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name {
			if ty, ok := typed[base]; ok && (ty == "histogram" || ty == "summary") {
				family = base
			}
			break
		}
	}
	sampled[family] = true
	return nil
}

// checkPromLabels validates a label set starting at s[0] == '{' and
// returns the index just past the closing brace. Label values are quoted
// strings that may contain braces and commas, with backslash escapes, so
// the set is scanned rather than split.
func checkPromLabels(s string) (int, error) {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil // empty set or trailing comma's end
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validPromName(s[start:i]) {
			return 0, fmt.Errorf("malformed label name %q", s[start:min(i, len(s))])
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // past closing quote
		switch {
		case i < len(s) && s[i] == ',':
			i++
		case i < len(s) && s[i] == '}':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("unclosed label braces")
		}
	}
}

// validPromName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
