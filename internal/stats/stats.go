// Package stats collects simulation statistics. The counter names mirror the
// gem5 stats listed in Table VI of the ASAP paper so that EXPERIMENTS.md can
// speak the paper's vocabulary:
//
//	cyclesBlocked        cycles for which a persist buffer is unable to flush
//	cyclesStalled        CPU stall cycles because of a full persist buffer
//	dfenceStalled        CPU stall cycles because of dfence
//	entriesInserted      writes enqueued in the persist buffers
//	interTEpochConflict  cross-thread dependencies detected
//	totSpecWrites        early (speculative) flushes issued
//	totalUndo            undo records created
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// registry maps counter and distribution names to their one-line
// descriptions. It is written only from package init functions (the
// vocabulary files in machine, model, and persist) and read afterwards,
// so no locking is needed even under the parallel harness.
var registry = make(map[string]string)

// Register records a one-line description for stat name. Every counter or
// distribution must be registered before the first write; the write methods
// panic on unregistered names, which keeps the Table VI vocabulary closed —
// a typo in a stat name fails the first test that touches it instead of
// silently splitting a counter in two. Call Register from the owning
// package's init. Re-registering a name with the same description is a
// no-op; conflicting descriptions panic.
func Register(name, desc string) {
	if prev, ok := registry[name]; ok && prev != desc {
		panic(fmt.Sprintf("stats: %q registered twice with different descriptions (%q vs %q)", name, prev, desc))
	}
	registry[name] = desc
}

// Description returns the registered description for name, or "" if the
// name was never registered.
func Description(name string) string { return registry[name] }

func checkRegistered(name string) {
	if _, ok := registry[name]; !ok {
		panic(fmt.Sprintf("stats: counter %q used without stats.Register", name))
	}
}

// Set is a named collection of counters and distributions. The zero value is
// not usable; call New.
type Set struct {
	counters map[string]uint64
	dists    map[string]*Dist
}

// New returns an empty stat set.
func New() *Set {
	return &Set{
		counters: make(map[string]uint64),
		dists:    make(map[string]*Dist),
	}
}

// Add increments counter name by delta.
func (s *Set) Add(name string, delta uint64) {
	checkRegistered(name)
	s.counters[name] += delta
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the value of counter name (zero if never touched).
func (s *Set) Get(name string) uint64 { return s.counters[name] }

// SetMax raises counter name to v if v is larger. Used for high-water marks
// such as recovery-table max occupancy.
func (s *Set) SetMax(name string, v uint64) {
	checkRegistered(name)
	if v > s.counters[name] {
		s.counters[name] = v
	}
}

// Observe records sample v in the distribution named name.
func (s *Set) Observe(name string, v uint64) {
	checkRegistered(name)
	d, ok := s.dists[name]
	if !ok {
		d = &Dist{}
		s.dists[name] = d
	}
	d.Observe(v)
}

// Dist returns the distribution named name, or nil if never observed.
func (s *Set) Dist(name string) *Dist { return s.dists[name] }

// Names returns all counter names in sorted order.
func (s *Set) Names() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Merge adds every counter and distribution from other into s.
func (s *Set) Merge(other *Set) {
	for n, v := range other.counters {
		s.counters[n] += v
	}
	for n, d := range other.dists {
		mine, ok := s.dists[n]
		if !ok {
			mine = &Dist{}
			s.dists[n] = mine
		}
		mine.Merge(d)
	}
}

// String renders the set as "name value" lines, sorted by name, in the style
// of a gem5 stats.txt file.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%-28s %d\n", n, s.counters[n])
	}
	for _, n := range s.distNames() {
		d := s.dists[n]
		fmt.Fprintf(&b, "%-28s avg=%.2f p99=%d max=%d n=%d\n", n, d.Mean(), d.Percentile(0.99), d.Max(), d.Count())
	}
	return b.String()
}

// Describe renders the set like String but with the registered description
// of each stat as a trailing column, turning a stats dump into its own
// legend (`asapsim -stats`).
func (s *Set) Describe() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%-28s %-12d # %s\n", n, s.counters[n], Description(n))
	}
	for _, n := range s.distNames() {
		d := s.dists[n]
		fmt.Fprintf(&b, "%-28s avg=%.2f p99=%d max=%d n=%d # %s\n",
			n, d.Mean(), d.Percentile(0.99), d.Max(), d.Count(), Description(n))
	}
	return b.String()
}

func (s *Set) distNames() []string {
	names := make([]string, 0, len(s.dists))
	for n := range s.dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dist is a bounded-resolution distribution of non-negative integer samples.
// Samples up to distBuckets-1 are counted exactly; larger samples share the
// overflow bucket but still contribute exactly to mean and max.
type Dist struct {
	buckets [distBuckets]uint64
	over    uint64
	count   uint64
	sum     uint64
	max     uint64
}

const distBuckets = 4096

// Observe records one sample.
func (d *Dist) Observe(v uint64) {
	d.count++
	d.sum += v
	if v > d.max {
		d.max = v
	}
	if v < distBuckets {
		d.buckets[v]++
	} else {
		d.over++
	}
}

// Merge folds other into d.
func (d *Dist) Merge(other *Dist) {
	for i, c := range other.buckets {
		d.buckets[i] += c
	}
	d.over += other.over
	d.count += other.count
	d.sum += other.sum
	if other.max > d.max {
		d.max = other.max
	}
}

// Count returns the number of samples observed.
func (d *Dist) Count() uint64 { return d.count }

// Mean returns the sample mean, or 0 for an empty distribution.
func (d *Dist) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Max returns the largest sample observed.
func (d *Dist) Max() uint64 { return d.max }

// Percentile returns the smallest value v such that at least p of the
// samples are <= v, for p in [0, 1]; values outside that range are clamped.
//
// Resolution is exact for samples below the bucket range. Samples in the
// overflow bucket lose per-value resolution, so any percentile whose target
// sample lands there reports Max — the distribution's true upper bound —
// rather than an interpolated guess. In particular Percentile(1) == Max()
// always, on both the exact-bucket and overflow paths.
func (d *Dist) Percentile(p float64) uint64 {
	if d.count == 0 {
		return 0
	}
	if p >= 1 {
		return d.max
	}
	if p < 0 {
		p = 0
	}
	// Smallest v with at least ceil(p * count) samples <= v.
	target := uint64(p * float64(d.count))
	if float64(target) < p*float64(d.count) {
		target++
	}
	if target == 0 {
		target = 1
	}
	if target > d.count-d.over {
		// The target sample is in the overflow bucket.
		return d.max
	}
	var cum uint64
	for v, c := range d.buckets {
		cum += c
		if cum >= target {
			return uint64(v)
		}
	}
	return d.max
}
