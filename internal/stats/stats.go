// Package stats collects simulation statistics. The counter names mirror the
// gem5 stats listed in Table VI of the ASAP paper so that EXPERIMENTS.md can
// speak the paper's vocabulary:
//
//	cyclesBlocked        cycles for which a persist buffer is unable to flush
//	cyclesStalled        CPU stall cycles because of a full persist buffer
//	dfenceStalled        CPU stall cycles because of dfence
//	entriesInserted      writes enqueued in the persist buffers
//	interTEpochConflict  cross-thread dependencies detected
//	totSpecWrites        early (speculative) flushes issued
//	totalUndo            undo records created
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Key is the dense index assigned to a registered stat name. Keys are handed
// out by Register in registration order and are valid for every Set; hot
// call sites resolve a Key to a Counter handle once at construction and pay
// a slice index per increment instead of a string hash.
type Key int32

// The global registry: name → key plus the parallel name/description/kind
// tables a Key indexes. Written only from package init functions (the
// vocabulary files in machine, model, persist, and server) and read
// afterwards, so no locking is needed even under the parallel harness.
var (
	byName = make(map[string]Key)
	names  []string
	descs  []string
	kinds  []Kind
)

// Kind distinguishes the two stat families the registry holds. The
// Prometheus exposition (expose.go) renders counters and distributions
// differently, so registration records which one a name is.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count (rendered with a
	// _total suffix).
	KindCounter Kind = iota
	// KindDist is a sampled distribution (rendered as a summary with
	// quantiles from Dist.Percentile).
	KindDist
)

// String names the kind for the /v1/stats registry listing.
func (k Kind) String() string {
	if k == KindDist {
		return "dist"
	}
	return "counter"
}

// Register records a one-line description for stat name and returns its Key.
// Every counter or distribution must be registered before the first write;
// the write methods panic on unregistered names, which keeps the Table VI
// vocabulary closed — a typo in a stat name fails the first test that
// touches it instead of silently splitting a counter in two. Call Register
// from the owning package's init. Re-registering a name with the same
// description is a no-op returning the original Key; conflicting
// descriptions panic.
func Register(name, desc string) Key { return register(name, desc, KindCounter) }

// RegisterDist is Register for distribution stats (written with
// Set.Observe). The kind only affects exposition: distributions render as
// Prometheus summaries instead of counters.
func RegisterDist(name, desc string) Key { return register(name, desc, KindDist) }

func register(name, desc string, kind Kind) Key {
	if k, ok := byName[name]; ok {
		if descs[k] != desc {
			panic(fmt.Sprintf("stats: %q registered twice with different descriptions (%q vs %q)", name, descs[k], desc))
		}
		if kinds[k] != kind {
			panic(fmt.Sprintf("stats: %q registered twice with different kinds (%v vs %v)", name, kinds[k], kind))
		}
		return k
	}
	k := Key(len(names))
	byName[name] = k
	names = append(names, name)
	descs = append(descs, desc)
	kinds = append(kinds, kind)
	return k
}

// Registration is one entry of the stats registry: a counter or
// distribution name, its one-line description, and its kind. asapd's
// /v1/stats endpoint serves the full vocabulary through it.
type Registration struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
	Kind string `json:"kind"`
}

// Registered lists the complete registered vocabulary, sorted by name.
// The registry is immutable after package init, so the result reflects
// every stat any run in this process can touch.
func Registered() []Registration {
	out := make([]Registration, len(names))
	for k, n := range names {
		out[k] = Registration{Name: n, Desc: descs[k], Kind: kinds[k].String()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Description returns the registered description for name, or "" if the
// name was never registered.
func Description(name string) string {
	if k, ok := byName[name]; ok {
		return descs[k]
	}
	return ""
}

func keyOf(name string) Key {
	k, ok := byName[name]
	if !ok {
		panic(fmt.Sprintf("stats: counter %q used without stats.Register", name))
	}
	return k
}

// Set is a named collection of counters and distributions. The zero value is
// not usable; call New.
//
// Counters live in a dense slice indexed by Key; touched tracks which
// entries have ever been written so that printing and Names report exactly
// the counters a run touched (a write of zero still counts as touched,
// matching the old map semantics where Add(0) materialized the entry).
type Set struct {
	counters []uint64
	touched  []bool
	dists    map[string]*Dist
}

// New returns an empty stat set sized for every name registered so far;
// names registered later (tests) grow the set lazily on first use.
func New() *Set {
	return &Set{
		counters: make([]uint64, len(names)),
		touched:  make([]bool, len(names)),
		dists:    make(map[string]*Dist),
	}
}

// ensure grows the dense storage to cover k (only needed when a name was
// registered after this Set was built).
func (s *Set) ensure(k Key) {
	if int(k) >= len(s.counters) {
		c := make([]uint64, len(names))
		copy(c, s.counters)
		s.counters = c
		t := make([]bool, len(names))
		copy(t, s.touched)
		s.touched = t
	}
}

// Counter is a pre-resolved handle on one counter of one Set. Handles are
// cheap value types: resolve them once at construction (m.kFoo =
// st.Counter(kFoo)) and call Inc/Add on the hot path — no string hashing,
// no map probe. A handle stays valid when later Register calls grow the
// Set, because it holds the Key, not a slot pointer.
type Counter struct {
	s *Set
	k Key
}

// Counter resolves Key k against the set. Resolving does not mark the
// counter touched; only a write does.
func (s *Set) Counter(k Key) Counter {
	s.ensure(k)
	return Counter{s: s, k: k}
}

// Inc increments the counter by one.
func (c Counter) Inc() {
	c.s.counters[c.k]++
	c.s.touched[c.k] = true
}

// Add increments the counter by delta.
func (c Counter) Add(delta uint64) {
	c.s.counters[c.k] += delta
	c.s.touched[c.k] = true
}

// Value reads the counter.
func (c Counter) Value() uint64 { return c.s.counters[c.k] }

// Add increments counter name by delta. String-keyed writes remain for cold
// paths; per-op sites use Counter handles (enforced by asaplint statcheck).
func (s *Set) Add(name string, delta uint64) {
	k := keyOf(name)
	s.ensure(k)
	s.counters[k] += delta
	s.touched[k] = true
}

// Inc increments counter name by one.
func (s *Set) Inc(name string) { s.Add(name, 1) }

// Get returns the value of counter name (zero if never touched or never
// registered).
func (s *Set) Get(name string) uint64 {
	k, ok := byName[name]
	if !ok || int(k) >= len(s.counters) {
		return 0
	}
	return s.counters[k]
}

// SetMax raises counter name to v if v is larger. Used for high-water marks
// such as recovery-table max occupancy.
func (s *Set) SetMax(name string, v uint64) {
	k := keyOf(name)
	s.ensure(k)
	if v > s.counters[k] {
		s.counters[k] = v
	}
	s.touched[k] = true
}

// Observe records sample v in the distribution named name.
func (s *Set) Observe(name string, v uint64) {
	if k := keyOf(name); kinds[k] != KindDist {
		panic(fmt.Sprintf("stats: Observe on %q, which was registered as a counter (use RegisterDist)", name))
	}
	d, ok := s.dists[name]
	if !ok {
		d = &Dist{}
		s.dists[name] = d
	}
	d.Observe(v)
}

// Dist returns the distribution named name, or nil if never observed.
func (s *Set) Dist(name string) *Dist { return s.dists[name] }

// Names returns the names of all touched counters in sorted order.
func (s *Set) Names() []string {
	out := make([]string, 0, len(s.counters))
	for k, t := range s.touched {
		if t {
			out = append(out, names[k])
		}
	}
	sort.Strings(out)
	return out
}

// Merge adds every counter and distribution from other into s.
func (s *Set) Merge(other *Set) {
	for k, t := range other.touched {
		if !t {
			continue
		}
		s.ensure(Key(k))
		s.counters[k] += other.counters[k]
		s.touched[k] = true
	}
	for n, d := range other.dists {
		mine, ok := s.dists[n]
		if !ok {
			mine = &Dist{}
			s.dists[n] = mine
		}
		mine.Merge(d)
	}
}

// CounterValue is one touched counter in a serializable snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// CounterValues snapshots every touched counter, sorted by name — the
// deterministic order makes serialized results byte-identical across
// identical runs (asapd's store depends on that).
func (s *Set) CounterValues() []CounterValue {
	names := s.Names()
	out := make([]CounterValue, len(names))
	for i, n := range names {
		out[i] = CounterValue{Name: n, Value: s.Get(n)}
	}
	return out
}

// DistValue is one observed distribution in a serializable snapshot:
// the same summary String renders (mean, p99, max, count).
type DistValue struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// DistValues snapshots every observed distribution, sorted by name.
func (s *Set) DistValues() []DistValue {
	names := s.distNames()
	out := make([]DistValue, len(names))
	for i, n := range names {
		d := s.dists[n]
		out[i] = DistValue{Name: n, Count: d.Count(), Mean: d.Mean(), P99: d.Percentile(0.99), Max: d.Max()}
	}
	return out
}

// String renders the set as "name value" lines, sorted by name, in the style
// of a gem5 stats.txt file.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%-28s %d\n", n, s.Get(n))
	}
	for _, n := range s.distNames() {
		d := s.dists[n]
		fmt.Fprintf(&b, "%-28s avg=%.2f p99=%d max=%d n=%d\n", n, d.Mean(), d.Percentile(0.99), d.Max(), d.Count())
	}
	return b.String()
}

// Describe renders the set like String but with the registered description
// of each stat as a trailing column, turning a stats dump into its own
// legend (`asapsim -stats`).
func (s *Set) Describe() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%-28s %-12d # %s\n", n, s.Get(n), Description(n))
	}
	for _, n := range s.distNames() {
		d := s.dists[n]
		fmt.Fprintf(&b, "%-28s avg=%.2f p99=%d max=%d n=%d # %s\n",
			n, d.Mean(), d.Percentile(0.99), d.Max(), d.Count(), Description(n))
	}
	return b.String()
}

func (s *Set) distNames() []string {
	names := make([]string, 0, len(s.dists))
	for n := range s.dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dist is a bounded-resolution distribution of non-negative integer samples.
// Samples up to distBuckets-1 are counted exactly; larger samples share the
// overflow bucket but still contribute exactly to mean and max.
type Dist struct {
	buckets [distBuckets]uint64
	over    uint64
	count   uint64
	sum     uint64
	max     uint64
}

const distBuckets = 4096

// Observe records one sample.
func (d *Dist) Observe(v uint64) {
	d.count++
	d.sum += v
	if v > d.max {
		d.max = v
	}
	if v < distBuckets {
		d.buckets[v]++
	} else {
		d.over++
	}
}

// Merge folds other into d.
func (d *Dist) Merge(other *Dist) {
	for i, c := range other.buckets {
		d.buckets[i] += c
	}
	d.over += other.over
	d.count += other.count
	d.sum += other.sum
	if other.max > d.max {
		d.max = other.max
	}
}

// Count returns the number of samples observed.
func (d *Dist) Count() uint64 { return d.count }

// Sum returns the sum of all samples observed (the Prometheus summary
// _sum series).
func (d *Dist) Sum() uint64 { return d.sum }

// Mean returns the sample mean, or 0 for an empty distribution.
func (d *Dist) Mean() float64 {
	if d.count == 0 {
		return 0
	}
	return float64(d.sum) / float64(d.count)
}

// Max returns the largest sample observed.
func (d *Dist) Max() uint64 { return d.max }

// Percentile returns the smallest value v such that at least p of the
// samples are <= v, for p in [0, 1]; values outside that range are clamped.
//
// Resolution is exact for samples below the bucket range. Samples in the
// overflow bucket lose per-value resolution, so any percentile whose target
// sample lands there reports Max — the distribution's true upper bound —
// rather than an interpolated guess. In particular Percentile(1) == Max()
// always, on both the exact-bucket and overflow paths.
func (d *Dist) Percentile(p float64) uint64 {
	if d.count == 0 {
		return 0
	}
	if p >= 1 {
		return d.max
	}
	if p < 0 {
		p = 0
	}
	// Smallest v with at least ceil(p * count) samples <= v.
	target := uint64(p * float64(d.count))
	if float64(target) < p*float64(d.count) {
		target++
	}
	if target == 0 {
		target = 1
	}
	if target > d.count-d.over {
		// The target sample is in the overflow bucket.
		return d.max
	}
	var cum uint64
	for v, c := range d.buckets {
		cum += c
		if cum >= target {
			return uint64(v)
		}
	}
	return d.max
}
