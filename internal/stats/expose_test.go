package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ prefix, name, want string }{
		{"asap_", "pbOccupancy", "asap_pb_occupancy"},
		{"asap_", "llcEvictionsDelayed", "asap_llc_evictions_delayed"},
		{"asap_", "cycles", "asap_cycles"},
		{"", "wbbFullStalls", "wbb_full_stalls"},
	}
	for _, c := range cases {
		if got := PromName(c.prefix, c.name); got != c.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", c.prefix, c.name, got, c.want)
		}
	}
}

func TestWriteCounterProm(t *testing.T) {
	var b bytes.Buffer
	WriteCounterProm(&b, "asap_x", "things counted\nwith a newline", 42)
	want := "# HELP asap_x_total things counted\\nwith a newline\n" +
		"# TYPE asap_x_total counter\n" +
		"asap_x_total 42\n"
	if b.String() != want {
		t.Fatalf("counter exposition:\n%q\nwant\n%q", b.String(), want)
	}
}

func TestWriteDistProm(t *testing.T) {
	var d Dist
	for v := uint64(1); v <= 100; v++ {
		d.Observe(v)
	}
	var b bytes.Buffer
	WriteDistProm(&b, "asap_occ", "occupancy", &d)
	out := b.String()
	for _, want := range []string{
		"# TYPE asap_occ summary\n",
		`asap_occ{quantile="0.5"} 50`,
		`asap_occ{quantile="0.95"} 95`,
		`asap_occ{quantile="0.99"} 99`,
		"asap_occ_sum 5050\n",
		"asap_occ_count 100\n",
		"# TYPE asap_occ_max gauge\n",
		"asap_occ_max 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dist exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDistPromNil(t *testing.T) {
	var b bytes.Buffer
	WriteDistProm(&b, "asap_occ", "occupancy", nil)
	out := b.String()
	if strings.Contains(out, "quantile") {
		t.Fatalf("nil dist should emit no quantile samples:\n%s", out)
	}
	if !strings.Contains(out, "asap_occ_count 0\n") {
		t.Fatalf("nil dist should still expose the family with zero count:\n%s", out)
	}
}

// TestWritePromFullVocabulary: the exposition covers every registered
// name — touched or not — under the right family type, so the metric set
// a scraper discovers is a property of the binary.
func TestWritePromFullVocabulary(t *testing.T) {
	s := New()
	s.Add("zeta", 7)
	s.Observe("occ", 3)
	var b bytes.Buffer
	WriteProm(&b, "t_", s)
	out := b.String()

	if !strings.Contains(out, "t_zeta_total 7\n") {
		t.Error("touched counter missing")
	}
	if !strings.Contains(out, "t_alpha_total 0\n") {
		t.Error("untouched counter should expose as 0")
	}
	if !strings.Contains(out, "# TYPE t_occ summary\n") || !strings.Contains(out, "t_occ_count 1\n") {
		t.Error("touched dist missing")
	}
	if !strings.Contains(out, "t_lat_count 0\n") {
		t.Error("untouched dist should expose with zero count")
	}
	for _, reg := range Registered() {
		if !strings.Contains(out, PromName("t_", reg.Name)) {
			t.Errorf("registered name %q missing from exposition", reg.Name)
		}
	}
}

// TestWritePromByteStable: rendering an unchanged Set twice yields
// byte-identical output (the /metrics golden-scrape property).
func TestWritePromByteStable(t *testing.T) {
	s := New()
	s.Add("zeta", 7)
	s.Add("alpha", 2)
	s.Observe("occ", 3)
	s.Observe("occ", 9)
	var b1, b2 bytes.Buffer
	WriteProm(&b1, "asap_", s)
	WriteProm(&b2, "asap_", s)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two renders of one Set differ")
	}
}

// TestRegisterKindConflict: re-registering a name under the other kind
// panics, and Observe on a counter-kind name panics — the exposition
// depends on the kind table being truthful.
func TestRegisterKindConflict(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RegisterDist over an existing counter did not panic")
			}
		}()
		RegisterDist("a", "test counter a")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Observe on a counter-kind name did not panic")
			}
		}()
		New().Observe("a", 1)
	}()
}
