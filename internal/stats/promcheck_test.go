package stats

import (
	"strings"
	"testing"
)

func TestCheckPromAcceptsOwnOutput(t *testing.T) {
	s := New()
	s.Add("zeta", 7)
	s.Observe("occ", 3)
	var b strings.Builder
	WriteProm(&b, "asap_", s)
	if err := CheckProm(strings.NewReader(b.String())); err != nil {
		t.Fatalf("WriteProm output rejected: %v", err)
	}
}

func TestCheckPromRejects(t *testing.T) {
	cases := []struct{ name, page string }{
		{"empty", ""},
		{"bad metric name", "9leading_digit 1\n"},
		{"bad value", "asap_x notanumber\n"},
		{"unclosed braces", "asap_x{foo=\"bar\" 1\n"},
		{"unquoted label", "asap_x{foo=bar} 1\n"},
		{"unknown type", "# TYPE asap_x distribution\nasap_x 1\n"},
		{"duplicate type", "# TYPE asap_x counter\n# TYPE asap_x counter\nasap_x 1\n"},
		{"type after sample", "asap_x 1\n# TYPE asap_x counter\n"},
	}
	for _, c := range cases {
		if err := CheckProm(strings.NewReader(c.page)); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.page)
		}
	}
}

func TestCheckPromAcceptsBracesInLabelValues(t *testing.T) {
	page := "asapd_requests_total{method=\"GET\",route=\"/v1/runs/{id}\",code=\"200\"} 1\n"
	if err := CheckProm(strings.NewReader(page)); err != nil {
		t.Fatalf("braces inside a quoted label value rejected: %v", err)
	}
}

func TestCheckPromAcceptsHistogramSeries(t *testing.T) {
	page := "# TYPE h histogram\n" +
		"h_bucket{le=\"0.1\"} 1\n" +
		"h_bucket{le=\"+Inf\"} 2\n" +
		"h_sum 0.25\n" +
		"h_count 2\n"
	if err := CheckProm(strings.NewReader(page)); err != nil {
		t.Fatalf("histogram series rejected: %v", err)
	}
}
