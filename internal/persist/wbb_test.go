package persist

import (
	"testing"

	m "asap/internal/mem"
)

func TestWBBParkAndFlushRelease(t *testing.T) {
	w := NewWBB(4)
	if !w.Park(10, 3) || !w.Park(11, 5) {
		t.Fatal("parks rejected with space available")
	}
	if !w.Contains(10) || !w.Contains(11) {
		t.Fatal("parked lines missing")
	}
	// Parking an already-parked line keeps the earlier dependency.
	if !w.Park(10, 99) {
		t.Fatal("re-park should succeed")
	}
	if w.Len() != 2 {
		t.Fatal("re-park created a duplicate")
	}
	// Flushing PB entry 3 releases line 10 only.
	rel := w.OnFlush(3)
	if len(rel) != 1 || rel[0] != 10 {
		t.Fatalf("OnFlush(3) released %v", rel)
	}
	if w.Contains(10) || !w.Contains(11) {
		t.Fatal("wrong line released")
	}
	// Flushing a later entry releases everything waiting on earlier ones.
	if rel := w.OnFlush(100); len(rel) != 1 || rel[0] != 11 {
		t.Fatalf("OnFlush(100) released %v", rel)
	}
	if w.Parked() != 2 || w.ReleasedN() != 2 || w.MaxOccupancy() != 2 {
		t.Fatalf("counters parked=%d released=%d max=%d", w.Parked(), w.ReleasedN(), w.MaxOccupancy())
	}
}

func TestWBBCapacity(t *testing.T) {
	w := NewWBB(2)
	w.Park(1, 1)
	w.Park(2, 1)
	if w.Park(3, 1) {
		t.Fatal("full buffer accepted a park")
	}
	// A full buffer still accepts re-parks of held lines.
	if !w.Park(1, 9) {
		t.Fatal("re-park rejected")
	}
}

func TestWBBReleaseIf(t *testing.T) {
	w := NewWBB(8)
	for l := uint64(1); l <= 6; l++ {
		w.Park(m.Line(l), l)
	}
	n := w.ReleaseIf(func(l m.Line) bool { return uint64(l)%2 == 0 })
	if n != 3 || w.Len() != 3 {
		t.Fatalf("released %d, len %d", n, w.Len())
	}
	for l := uint64(1); l <= 6; l++ {
		if w.Contains(m.Line(l)) != (l%2 == 1) {
			t.Fatalf("line %d presence wrong", l)
		}
	}
}
