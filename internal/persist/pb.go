package persist

import (
	"asap/internal/mem"
	"asap/internal/obs"
)

// PBState is the lifecycle of one persist buffer entry.
type PBState int

const (
	// PBWaiting: enqueued, not yet flushed (or NACKed and awaiting retry).
	PBWaiting PBState = iota
	// PBInflight: flush issued to the memory controller, awaiting ACK.
	PBInflight
)

// PBEntry is one buffered write. Entries keep FIFO order; an entry is
// removed when the controller ACKs its flush (§V-A).
type PBEntry struct {
	ID    uint64
	Line  mem.Line
	Token mem.Token
	TS    uint64 // epoch timestamp the write belongs to
	State PBState
	// Early records whether the last issue of this entry was speculative.
	Early bool
	// Nacked marks an entry whose early flush was rejected; it must be
	// reissued as a safe flush once its epoch becomes safe (§V-D).
	Nacked bool
}

// PersistBuffer is the per-core circular buffer queueing writes to NVM
// alongside the private caches. Writes to the same line within the same
// epoch coalesce while still waiting, which both reduces NVM traffic and
// models the coalescing the paper credits for write-endurance gains.
type PersistBuffer struct {
	capacity int
	nextID   uint64
	entries  []*PBEntry // FIFO order, arbitrary removal on ACK
	free     []*PBEntry // recycled entries, reused by Enqueue
	inflight int

	inserted  uint64
	coalesced uint64
	maxOcc    int

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

// NewPersistBuffer returns a buffer holding capacity entries.
func NewPersistBuffer(capacity int) *PersistBuffer {
	if capacity <= 0 {
		panic("persist: persist buffer capacity must be positive")
	}
	return &PersistBuffer{capacity: capacity}
}

// AttachTracer emits occupancy counters and insert/flush events on track
// (the owning core's persist-path track).
func (pb *PersistBuffer) AttachTracer(tr obs.Tracer, track obs.TrackID) {
	pb.trc = tr
	pb.track = track
}

// Len returns the number of live entries (waiting + inflight).
func (pb *PersistBuffer) Len() int { return len(pb.entries) }

// Full reports whether a new entry cannot be accepted; the core must stall
// (cyclesStalled in Table VI).
func (pb *PersistBuffer) Full() bool { return len(pb.entries) >= pb.capacity }

// Empty reports whether the buffer has no live entries.
func (pb *PersistBuffer) Empty() bool { return len(pb.entries) == 0 }

// Inflight returns the number of entries awaiting an ACK.
func (pb *PersistBuffer) Inflight() int { return pb.inflight }

// Inserted returns total enqueued writes (entriesInserted in Table VI).
func (pb *PersistBuffer) Inserted() uint64 { return pb.inserted }

// Coalesced returns writes absorbed into an existing waiting entry.
func (pb *PersistBuffer) Coalesced() uint64 { return pb.coalesced }

// MaxOccupancy returns the high-water mark of Len.
func (pb *PersistBuffer) MaxOccupancy() int { return pb.maxOcc }

// Enqueue buffers a write of token to line within epoch ts. If a waiting
// entry for the same line and epoch exists, the write coalesces into it.
// It reports (coalesced, accepted); accepted is false when the buffer is
// full and nothing coalesced.
//
//asap:hot every persistent store enqueues here
func (pb *PersistBuffer) Enqueue(line mem.Line, token mem.Token, ts uint64) (bool, bool) {
	for i := len(pb.entries) - 1; i >= 0; i-- {
		e := pb.entries[i]
		if e.Line == line && e.TS == ts && e.State == PBWaiting {
			e.Token = token
			pb.coalesced++
			if pb.trc != nil {
				pb.trc.Instant(pb.track, "pb coalesce")
			}
			return true, true
		}
		// Stop scanning past an older epoch's entry for this line:
		// coalescing across epochs would break ordering.
		if e.Line == line {
			break
		}
	}
	if pb.Full() {
		return false, false
	}
	pb.nextID++
	var e *PBEntry
	if n := len(pb.free); n > 0 {
		e = pb.free[n-1]
		pb.free[n-1] = nil
		pb.free = pb.free[:n-1]
	} else {
		e = new(PBEntry) //asaplint:ignore alloccheck free-list miss; at most capacity allocations per run, then recycled forever
	}
	*e = PBEntry{
		ID:    pb.nextID,
		Line:  line,
		Token: token,
		TS:    ts,
		State: PBWaiting,
	}
	pb.entries = append(pb.entries, e) //asaplint:ignore alloccheck bounded by capacity (Full checked above); backing array reaches it once
	pb.inserted++
	if len(pb.entries) > pb.maxOcc {
		pb.maxOcc = len(pb.entries)
	}
	if pb.trc != nil {
		pb.trc.Counter(pb.track, "pb", int64(len(pb.entries)))
	}
	return false, true
}

// NextWaiting returns the oldest waiting entry satisfying pred, or nil.
// Models use pred to express their flushing policy: HOPS restricts to the
// oldest epoch, ASAP's eager mode accepts anything, and ASAP's conservative
// fallback accepts only safe epochs.
//
//asap:hot flush-issue path, polled once per drained entry
func (pb *PersistBuffer) NextWaiting(pred func(*PBEntry) bool) *PBEntry {
	for _, e := range pb.entries {
		if e.State == PBWaiting && pred(e) { //asaplint:ignore alloccheck policy predicate call: predicates are pure; their creation sites carry the alloc proof
			return e
		}
	}
	return nil
}

// MarkInflight transitions a waiting entry to inflight with the given
// speculation mark.
//
//asap:hot runs once per issued flush
func (pb *PersistBuffer) MarkInflight(e *PBEntry, early bool) {
	if e.State != PBWaiting {
		panic("persist: MarkInflight on non-waiting entry")
	}
	e.State = PBInflight
	e.Early = early
	pb.inflight++
}

// Ack removes the entry with the given ID, returning a copy of it and true
// (false if the ID is unknown, which indicates a protocol bug upstream).
// The slot itself is recycled onto the free list — returning by value means
// no caller can hold a pointer into a slot a later Enqueue reuses.
//
//asap:hot runs once per completed flush
func (pb *PersistBuffer) Ack(id uint64) (PBEntry, bool) {
	for i, e := range pb.entries {
		if e.ID == id {
			if e.State != PBInflight {
				panic("persist: ACK for entry that was not inflight")
			}
			pb.inflight--
			out := *e
			n := len(pb.entries) - 1
			copy(pb.entries[i:], pb.entries[i+1:])
			pb.entries[n] = nil // drop the duplicate tail reference
			pb.entries = pb.entries[:n]
			*e = PBEntry{}
			pb.free = append(pb.free, e) //asaplint:ignore alloccheck free list bounded by capacity; backing array reaches it once
			if pb.trc != nil {
				pb.trc.Counter(pb.track, "pb", int64(len(pb.entries)))
			}
			return out, true
		}
	}
	return PBEntry{}, false
}

// Nack returns the entry with the given ID to the waiting state and marks it
// NACKed so the flush policy reissues it as a safe flush.
//
//asap:hot misspeculation recovery path
func (pb *PersistBuffer) Nack(id uint64) *PBEntry {
	for _, e := range pb.entries {
		if e.ID == id {
			if e.State != PBInflight {
				panic("persist: NACK for entry that was not inflight")
			}
			pb.inflight--
			e.State = PBWaiting
			e.Nacked = true
			return e
		}
	}
	return nil
}

// PendingForEpoch counts live entries belonging to epoch ts.
func (pb *PersistBuffer) PendingForEpoch(ts uint64) int {
	n := 0
	for _, e := range pb.entries {
		if e.TS == ts {
			n++
		}
	}
	return n
}

// HasLine reports whether a live entry exists for line (used by the LLC
// eviction path: the newest value may still be here, §V-F).
//
//asap:hot probed on every LLC eviction
func (pb *PersistBuffer) HasLine(line mem.Line) bool {
	for _, e := range pb.entries {
		if e.Line == line {
			return true
		}
	}
	return false
}

// Entries returns the live entries in FIFO order (read-only use).
func (pb *PersistBuffer) Entries() []*PBEntry { return pb.entries }
