package persist

import "asap/internal/mem"

// CountingBloom is the counting Bloom filter ASAP places at each memory
// controller to guard LLC evictions of NACKed lines (§V-F). NACKed flush
// addresses are added; an LLC eviction whose address hits must be delayed
// because the newest value is still in a persist buffer. When the flush is
// successfully retried the address is removed.
type CountingBloom struct {
	counters []uint8
	hashes   int
	// scratch backs the slice indices returns; the engine is
	// single-threaded, so one buffer per filter suffices and every
	// Add/Remove/MaybeContains probe stays allocation-free.
	scratch []int
	adds    uint64
	hits    uint64
}

// NewCountingBloom returns a filter with m counters and k hash functions.
func NewCountingBloom(m, k int) *CountingBloom {
	if m <= 0 || k <= 0 {
		panic("persist: bloom filter needs positive size and hash count")
	}
	return &CountingBloom{counters: make([]uint8, m), hashes: k, scratch: make([]int, k)}
}

// indices derives k counter indices from the line address with a
// splitmix64-style mixer. The result aliases the filter's scratch buffer
// and is valid only until the next indices call.
func (b *CountingBloom) indices(l mem.Line) []int {
	idx := b.scratch
	x := uint64(l)
	for i := 0; i < b.hashes; i++ {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		idx[i] = int(z % uint64(len(b.counters)))
	}
	return idx
}

// Add inserts the line.
func (b *CountingBloom) Add(l mem.Line) {
	for _, i := range b.indices(l) {
		if b.counters[i] < 255 {
			b.counters[i]++
		}
	}
	b.adds++
}

// Remove deletes one insertion of the line. Removing a line that was never
// added can corrupt a plain Bloom filter; the counting variant saturates at
// zero, which matches hardware behaviour.
func (b *CountingBloom) Remove(l mem.Line) {
	for _, i := range b.indices(l) {
		if b.counters[i] > 0 {
			b.counters[i]--
		}
	}
}

// MaybeContains reports whether the line may be present (false positives
// possible, false negatives impossible apart from counter saturation).
func (b *CountingBloom) MaybeContains(l mem.Line) bool {
	for _, i := range b.indices(l) {
		if b.counters[i] == 0 {
			return false
		}
	}
	b.hits++
	return true
}

// Adds returns the number of insertions performed.
func (b *CountingBloom) Adds() uint64 { return b.adds }
