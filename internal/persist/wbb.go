package persist

import (
	"sort"

	"asap/internal/mem"
	"asap/internal/obs"
)

// WBB is the write-back buffer of §V-F (borrowed from StrandWeaver [17]):
// when a cache line is evicted from the private caches while writes to it
// are still queued in the persist buffer, the eviction parks here instead
// of propagating, so a later coherence request is still forwarded to the
// owning core and the cross-thread dependency is not lost. The line leaves
// the buffer once the persist buffer flushes the corresponding entry.
//
// Each entry records the persist-buffer entry ID it waits on ("WBB records
// the tail index of the persist buffer when the cache initiates the
// eviction").
type WBB struct {
	capacity int
	entries  map[mem.Line]uint64 // line -> PB entry ID it waits for

	parked   uint64
	released uint64
	maxOcc   int

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

// NewWBB returns a buffer holding capacity parked evictions.
func NewWBB(capacity int) *WBB {
	if capacity <= 0 {
		panic("persist: WBB capacity must be positive")
	}
	return &WBB{capacity: capacity, entries: make(map[mem.Line]uint64)}
}

// AttachTracer emits park instants and occupancy counters on track (the
// owning core's track).
func (w *WBB) AttachTracer(tr obs.Tracer, track obs.TrackID) {
	w.trc = tr
	w.track = track
}

// Park holds an evicted line until PB entry id is flushed. It reports false
// when the buffer is full (the eviction must then stall, which callers
// model as a delayed retry).
func (w *WBB) Park(line mem.Line, pbEntryID uint64) bool {
	if _, ok := w.entries[line]; ok {
		return true // already parked; keep the earlier dependency
	}
	if len(w.entries) >= w.capacity {
		return false
	}
	w.entries[line] = pbEntryID //asaplint:ignore alloccheck map bounded by WBB capacity (checked above); deleted slots recycle
	w.parked++
	if len(w.entries) > w.maxOcc {
		w.maxOcc = len(w.entries)
	}
	if w.trc != nil {
		w.trc.Instant(w.track, "wbb park")
		w.trc.Counter(w.track, "wbb", int64(len(w.entries)))
	}
	return true
}

// Contains reports whether the line is parked.
func (w *WBB) Contains(line mem.Line) bool {
	_, ok := w.entries[line]
	return ok
}

// sortedParked returns the parked lines in ascending order, so release
// processing is deterministic across runs.
func (w *WBB) sortedParked() []mem.Line {
	lines := make([]mem.Line, 0, len(w.entries))
	for l := range w.entries {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// OnFlush releases every line waiting on PB entry id (or any earlier
// entry), returning the released lines in ascending line order.
func (w *WBB) OnFlush(pbEntryID uint64) []mem.Line {
	var out []mem.Line
	for _, l := range w.sortedParked() {
		if w.entries[l] <= pbEntryID {
			out = append(out, l)
			delete(w.entries, l)
			w.released++
		}
	}
	return out
}

// ReleaseIf releases every parked line for which pred reports true (used by
// machines that poll the persist buffer state instead of receiving per-entry
// flush notifications) and returns the count released.
func (w *WBB) ReleaseIf(pred func(mem.Line) bool) int {
	n := 0
	for _, l := range w.sortedParked() {
		if pred(l) {
			delete(w.entries, l)
			w.released++
			n++
		}
	}
	if n > 0 && w.trc != nil {
		w.trc.Counter(w.track, "wbb", int64(len(w.entries)))
	}
	return n
}

// Len, MaxOccupancy, Parked and Released report usage.
func (w *WBB) Len() int          { return len(w.entries) }
func (w *WBB) MaxOccupancy() int { return w.maxOcc }
func (w *WBB) Parked() uint64    { return w.parked }
func (w *WBB) ReleasedN() uint64 { return w.released }
