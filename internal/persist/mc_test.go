package persist

import (
	"testing"

	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/sim"
	"asap/internal/stats"
)

func newTestMC(spec bool) (*MC, *sim.Engine) {
	eng := sim.NewEngine()
	cfg := config.Default()
	return NewMC(0, eng, cfg, spec, stats.New()), eng
}

func sendFlush(t *testing.T, mc *MC, eng *sim.Engine, pkt FlushPacket) FlushResult {
	t.Helper()
	var got FlushResult = -1
	mc.Receive(pkt, func(r FlushResult) { got = r })
	eng.Run(0)
	if got == -1 {
		t.Fatal("no reply from controller")
	}
	return got
}

func TestMCSafeFlushPersists(t *testing.T) {
	mc, eng := newTestMC(true)
	if r := sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 42, Epoch: e(0, 1)}); r != FlushAck {
		t.Fatalf("got %v", r)
	}
	if mc.NVM.Peek(5) != 42 {
		t.Fatal("safe flush did not reach media")
	}
	if !mc.Idle() {
		t.Fatal("controller should be idle")
	}
}

func TestMCEarlyFlushCreatesUndo(t *testing.T) {
	mc, eng := newTestMC(true)
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 1, Epoch: e(0, 1)})              // safe: memory=1
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 2, Epoch: e(0, 2), Early: true}) // speculative
	if mc.NVM.Peek(5) != 2 {
		t.Fatal("speculative update missing")
	}
	u, ok := mc.RT.Undo(5)
	if !ok || u.Safe != 1 || u.Creator != e(0, 2) {
		t.Fatalf("undo wrong: %+v", u)
	}
	// Crash now: memory must roll back to 1.
	mc.CrashFlush()
	if mc.NVM.Peek(5) != 1 {
		t.Fatalf("crash rollback failed: %d", mc.NVM.Peek(5))
	}
}

func TestMCSafeFlushWithUndoSuppressed(t *testing.T) {
	mc, eng := newTestMC(true)
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 3, Epoch: e(1, 1), Early: true})
	// A late safe flush (older value) must not clobber the newer
	// speculative value; it becomes the recorded safe state.
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 1, Epoch: e(0, 1)})
	if mc.NVM.Peek(5) != 3 {
		t.Fatal("newer speculative value clobbered")
	}
	if u, _ := mc.RT.Undo(5); u.Safe != 1 {
		t.Fatal("safe value not recorded")
	}
	if mc.Stats().Get("mcWritesSuppressed") != 1 {
		t.Fatal("suppression not counted")
	}
}

func TestMCCommitProcessesDelays(t *testing.T) {
	mc, eng := newTestMC(true)
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 3, Epoch: e(1, 1), Early: true})
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 2, Epoch: e(2, 1), Early: true}) // delayed

	// Commit the delaying epoch first: delay -> undo safe value.
	done := false
	mc.Commit(e(2, 1), func() { done = true })
	eng.Run(0)
	if !done {
		t.Fatal("commit not acknowledged")
	}
	if u, _ := mc.RT.Undo(5); u.Safe != 2 {
		t.Fatal("delay did not update the undo record")
	}
	// Commit the undo creator: record deleted, memory keeps 3.
	mc.Commit(e(1, 1), func() {})
	eng.Run(0)
	if _, ok := mc.RT.Undo(5); ok {
		t.Fatal("undo should be gone")
	}
	if mc.NVM.Peek(5) != 3 {
		t.Fatal("memory lost the newest value")
	}
}

func TestMCDelayWithoutUndoPersistsOnCommit(t *testing.T) {
	mc, eng := newTestMC(true)
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 3, Epoch: e(1, 1), Early: true})
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 4, Epoch: e(2, 1), Early: true}) // delayed
	mc.Commit(e(1, 1), func() {})                                                      // undo deleted
	eng.Run(0)
	mc.Commit(e(2, 1), func() {}) // delay now persists to media
	eng.Run(0)
	if mc.NVM.Peek(5) != 4 {
		t.Fatalf("delayed write lost: %d", mc.NVM.Peek(5))
	}
}

func TestMCNackWhenRTFull(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default()
	cfg.RTEntries = 2
	mc := NewMC(0, eng, cfg, true, stats.New())
	sendFlush(t, mc, eng, FlushPacket{Line: 1, Token: 1, Epoch: e(0, 2), Early: true})
	sendFlush(t, mc, eng, FlushPacket{Line: 2, Token: 2, Epoch: e(0, 3), Early: true})
	if r := sendFlush(t, mc, eng, FlushPacket{Line: 3, Token: 3, Epoch: e(0, 4), Early: true}); r != FlushNack {
		t.Fatalf("expected NACK, got %v", r)
	}
	if !mc.Bloom.MaybeContains(3) {
		t.Fatal("NACKed line not in the Bloom filter")
	}
	// Safe flushes never allocate RT space and must still succeed.
	if r := sendFlush(t, mc, eng, FlushPacket{Line: 3, Token: 3, Epoch: e(0, 4)}); r != FlushAck {
		t.Fatalf("safe flush NACKed: %v", r)
	}
}

func TestMCPlainControllerIgnoresSpeculation(t *testing.T) {
	mc, eng := newTestMC(false)
	if mc.RT != nil || mc.Bloom != nil {
		t.Fatal("plain controller should have no RT")
	}
	// Even packets marked early are plain writes on a non-speculative MC.
	sendFlush(t, mc, eng, FlushPacket{Line: 9, Token: 7, Epoch: e(0, 1), Early: true})
	if mc.NVM.Peek(9) != 7 {
		t.Fatal("write lost")
	}
}

func TestMCWPQBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default()
	cfg.WPQEntries = 2
	mc := NewMC(0, eng, cfg, false, stats.New())
	acks := 0
	for i := 0; i < 8; i++ {
		mc.Receive(FlushPacket{Line: mem.Line(100 + i), Token: mem.Token(i + 1), Epoch: e(0, 1)},
			func(FlushResult) { acks++ })
	}
	eng.Run(0)
	if acks != 8 {
		t.Fatalf("only %d/8 flushes acknowledged", acks)
	}
	if mc.Stats().Get("mcWpqFullStalls") == 0 {
		t.Fatal("expected WPQ backpressure with a 2-entry queue")
	}
	for i := 0; i < 8; i++ {
		if mc.NVM.Peek(mem.Line(100+i)) != mem.Token(i+1) {
			t.Fatalf("write %d lost", i)
		}
	}
}

func TestMCUndoReadUsesWPQAndXPBuffer(t *testing.T) {
	mc, eng := newTestMC(true)
	// Prime: a safe write parks in the WPQ briefly; an immediate early
	// write to the same line must read the pending value, not media.
	mc.Receive(FlushPacket{Line: 4, Token: 10, Epoch: e(0, 1)}, func(FlushResult) {})
	mc.Receive(FlushPacket{Line: 4, Token: 11, Epoch: e(0, 2), Early: true}, func(FlushResult) {})
	eng.Run(0)
	if u, ok := mc.RT.Undo(4); !ok || u.Safe != 10 {
		t.Fatalf("undo should hold the WPQ value 10: %+v", u)
	}
	if mc.Stats().Get("mcUndoMediaReads") != 0 {
		t.Fatal("undo read should have hit the WPQ, not media")
	}
}

func TestMCCrashDiscardsDelays(t *testing.T) {
	mc, eng := newTestMC(true)
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 3, Epoch: e(1, 1), Early: true})
	sendFlush(t, mc, eng, FlushPacket{Line: 5, Token: 9, Epoch: e(2, 1), Early: true}) // delayed
	mc.CrashFlush()
	// Undo restores 0 (pre-speculation); the delayed 9 must be gone.
	if got := mc.NVM.Peek(5); got != 0 {
		t.Fatalf("post-crash value %d, want 0", got)
	}
	if mc.RT.Occupancy() != 0 {
		t.Fatal("RT not reset after crash")
	}
}

// TestMCSameEpochSafeAfterEarly is a regression test: an epoch's early flush
// creates an undo record; a *later* write of the same epoch issues safe
// (the epoch became safe mid-flight). The newer value must reach memory, not
// be stashed in the undo record (which is deleted at commit). Found by the
// crash-campaign checker.
func TestMCSameEpochSafeAfterEarly(t *testing.T) {
	mc, eng := newTestMC(true)
	sendFlush(t, mc, eng, FlushPacket{Line: 8, Token: 100, Epoch: e(0, 5), Early: true})
	sendFlush(t, mc, eng, FlushPacket{Line: 8, Token: 101, Epoch: e(0, 5)}) // safe, same epoch
	mc.Commit(e(0, 5), func() {})
	eng.Run(0)
	if got := mc.NVM.Peek(8); got != 101 {
		t.Fatalf("memory = %d, want the epoch's newest write 101", got)
	}
}

// TestMCStaleDelayReplay is a regression test for the delay-replay hazard:
// epoch F's write is delayed behind E's undo record; E commits; a *newer*
// write of F then speculatively updates memory. F's commit must not replay
// the stale delayed value over the newer one. Found by the crash-campaign
// checker on FAST&FAIR's shift-heavy inserts.
func TestMCStaleDelayReplay(t *testing.T) {
	mc, eng := newTestMC(true)
	E, F := e(0, 1), e(0, 2)
	sendFlush(t, mc, eng, FlushPacket{Line: 8, Token: 10, Epoch: E, Early: true}) // undo(E), mem=10
	sendFlush(t, mc, eng, FlushPacket{Line: 8, Token: 20, Epoch: F, Early: true}) // delayed behind undo(E)
	mc.Commit(E, func() {})
	eng.Run(0)
	// F writes the line again: must coalesce into F's delay record, not
	// start a new speculative chain that the stale delay would clobber.
	sendFlush(t, mc, eng, FlushPacket{Line: 8, Token: 30, Epoch: F, Early: true})
	mc.Commit(F, func() {})
	eng.Run(0)
	if got := mc.NVM.Peek(8); got != 30 {
		t.Fatalf("memory = %d, want F's newest write 30", got)
	}
	if mc.RT.Occupancy() != 0 {
		t.Fatal("records left after both commits")
	}
}
