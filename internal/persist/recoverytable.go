package persist

import (
	"sort"

	"asap/internal/mem"
	"asap/internal/obs"
)

// UndoRecord stores the safe state for a speculatively updated address: the
// value in memory prior to the speculative persist, or the value written by
// the most recent safe flush (§V-A). Creator is the epoch whose early flush
// created the record; the record is deleted when that epoch commits.
type UndoRecord struct {
	Line    mem.Line
	Safe    mem.Token
	Creator EpochID
}

// DelayRecord holds an early write that arrived while an undo record already
// existed for its line. It is applied when its epoch commits (§IV-F).
type DelayRecord struct {
	Line  mem.Line
	Token mem.Token
	Epoch EpochID
}

// RecoveryTable is the CAM in each memory controller holding undo and delay
// records. Undo and delay records share the table's capacity.
type RecoveryTable struct {
	capacity int
	undo     map[mem.Line]*UndoRecord
	// delay records, keyed by epoch for commit processing. Within one
	// epoch, delays to the same line coalesce (§VII-A, "Coalescing in the
	// Recovery Table"), and arrival order across lines is preserved.
	delay     map[EpochID][]*DelayRecord
	delayLen  int
	maxOcc    int
	undoMade  uint64
	delayMade uint64
	coalesced uint64

	// undoFree recycles records deleted at commit. Callers only hold Undo()
	// pointers within one controller job, so a record freed by Commit has no
	// live references; reusing it keeps the early-flush path allocation-free.
	undoFree []*UndoRecord
	// delayFree and delaySlabs recycle delay records and the per-epoch
	// slices backing them. Controllers hand both back via RecycleDelays
	// once a commit's replay finishes, so steady-state delay traffic
	// allocates nothing.
	delayFree  []*DelayRecord
	delaySlabs [][]*DelayRecord

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

// NewRecoveryTable returns a table with the given total record capacity.
func NewRecoveryTable(capacity int) *RecoveryTable {
	if capacity <= 0 {
		panic("persist: recovery table capacity must be positive")
	}
	return &RecoveryTable{
		capacity: capacity,
		undo:     make(map[mem.Line]*UndoRecord),
		delay:    make(map[EpochID][]*DelayRecord),
	}
}

// AttachTracer emits record-creation instants and occupancy counters on
// track (the owning memory controller's track).
func (rt *RecoveryTable) AttachTracer(tr obs.Tracer, track obs.TrackID) {
	rt.trc = tr
	rt.track = track
}

// Occupancy returns the number of live records (undo + delay).
func (rt *RecoveryTable) Occupancy() int { return len(rt.undo) + rt.delayLen }

// MaxOccupancy returns the high-water mark of Occupancy, the quantity
// plotted in Figure 12.
func (rt *RecoveryTable) MaxOccupancy() int { return rt.maxOcc }

// Full reports whether no new record can be allocated.
func (rt *RecoveryTable) Full() bool { return rt.Occupancy() >= rt.capacity }

// UndosCreated and DelaysCreated report allocation counts (totalUndo in
// Table VI).
func (rt *RecoveryTable) UndosCreated() uint64  { return rt.undoMade }
func (rt *RecoveryTable) DelaysCreated() uint64 { return rt.delayMade }

// DelaysCoalesced reports delay-record writes absorbed by an existing record.
func (rt *RecoveryTable) DelaysCoalesced() uint64 { return rt.coalesced }

// Undo returns the undo record for line l, if present.
func (rt *RecoveryTable) Undo(l mem.Line) (*UndoRecord, bool) {
	r, ok := rt.undo[l]
	return r, ok
}

// CreateUndo allocates an undo record storing safe as the pre-speculation
// value of line l on behalf of epoch e. It reports false when the table is
// full (the controller NACKs the flush). Calling it when a record already
// exists for l is a controller bug and panics.
func (rt *RecoveryTable) CreateUndo(l mem.Line, safe mem.Token, e EpochID) bool {
	if _, ok := rt.undo[l]; ok {
		panic("persist: undo record already exists for line")
	}
	if rt.Full() {
		return false
	}
	var r *UndoRecord
	if n := len(rt.undoFree); n > 0 {
		r = rt.undoFree[n-1]
		rt.undoFree[n-1] = nil
		rt.undoFree = rt.undoFree[:n-1]
	} else {
		r = new(UndoRecord) //asaplint:ignore alloccheck free-list miss; bounded by table capacity, then recycled forever
	}
	*r = UndoRecord{Line: l, Safe: safe, Creator: e}
	rt.undo[l] = r //asaplint:ignore alloccheck map bounded by table capacity; deleted slots recycle at steady state
	rt.undoMade++
	rt.bumpOcc()
	if rt.trc != nil {
		rt.trc.Instant(rt.track, "undo create")
		rt.trc.Counter(rt.track, "rt", int64(rt.Occupancy()))
	}
	return true
}

// UpdateUndo overwrites the safe value of the undo record for line l. This
// is the Table I action for a safe flush (or a committing delay record) that
// finds an undo record: memory already holds a newer speculative value, so
// the incoming value becomes the recorded safe state instead.
func (rt *RecoveryTable) UpdateUndo(l mem.Line, safe mem.Token) {
	r, ok := rt.undo[l]
	if !ok {
		panic("persist: UpdateUndo without a record")
	}
	r.Safe = safe
}

// CreateDelay records an early write that must wait for its epoch to commit.
// Writes to the same line from the same epoch coalesce in place. It reports
// false when a new record is needed but the table is full.
func (rt *RecoveryTable) CreateDelay(l mem.Line, tok mem.Token, e EpochID) bool {
	for _, d := range rt.delay[e] {
		if d.Line == l {
			d.Token = tok
			rt.coalesced++
			return true
		}
	}
	if rt.Full() {
		return false
	}
	var d *DelayRecord
	if n := len(rt.delayFree); n > 0 {
		d = rt.delayFree[n-1]
		rt.delayFree[n-1] = nil
		rt.delayFree = rt.delayFree[:n-1]
	} else {
		d = new(DelayRecord) //asaplint:ignore alloccheck free-list miss; bounded by table capacity, then recycled forever
	}
	*d = DelayRecord{Line: l, Token: tok, Epoch: e}
	ds := rt.delay[e]
	if ds == nil {
		if n := len(rt.delaySlabs); n > 0 {
			ds = rt.delaySlabs[n-1][:0]
			rt.delaySlabs[n-1] = nil
			rt.delaySlabs = rt.delaySlabs[:n-1]
		}
	}
	ds = append(ds, d) //asaplint:ignore alloccheck recycled slab; backing array reaches steady-state capacity once
	rt.delay[e] = ds   //asaplint:ignore alloccheck epoch keys bounded by live epochs; deleted slots recycle
	rt.delayLen++
	rt.delayMade++
	rt.bumpOcc()
	if rt.trc != nil {
		rt.trc.Instant(rt.track, "delay create")
		rt.trc.Counter(rt.track, "rt", int64(rt.Occupancy()))
	}
	return true
}

// HasDelay reports whether epoch e already holds a delay record for line l.
func (rt *RecoveryTable) HasDelay(l mem.Line, e EpochID) bool {
	for _, d := range rt.delay[e] {
		if d.Line == l {
			return true
		}
	}
	return false
}

// Commit removes all records owned by epoch e: undo records created by e are
// deleted (their speculative writes are now safe), and e's delay records are
// removed and returned in arrival order so the controller can process them
// as if the flushes had just arrived (§V-C).
func (rt *RecoveryTable) Commit(e EpochID) []*DelayRecord {
	//asaplint:ignore detcheck deleting the subset owned by e is order-independent
	for l, r := range rt.undo {
		if r.Creator == e {
			delete(rt.undo, l)
			// Clear the dead record: Insert overwrites it wholesale on
			// reuse, and zeroed free records keep checkpoint images
			// byte-identical across processes (the free order follows
			// this map iteration).
			*r = UndoRecord{}
			rt.undoFree = append(rt.undoFree, r) //asaplint:ignore alloccheck free list bounded by table capacity; backing array reaches it once
		}
	}
	ds := rt.delay[e]
	if ds != nil {
		delete(rt.delay, e)
		rt.delayLen -= len(ds)
	}
	if rt.trc != nil {
		rt.trc.Counter(rt.track, "rt", int64(rt.Occupancy()))
	}
	return ds
}

// RecycleDelays hands a slice returned by Commit back to the table's
// free pool once the caller has replayed every record. The caller must
// drop all references to the slice and its records before calling.
func (rt *RecoveryTable) RecycleDelays(ds []*DelayRecord) {
	for i, d := range ds {
		*d = DelayRecord{}
		rt.delayFree = append(rt.delayFree, d) //asaplint:ignore alloccheck free list bounded by table capacity; backing array reaches it once
		ds[i] = nil
	}
	if cap(ds) > 0 {
		rt.delaySlabs = append(rt.delaySlabs, ds[:0]) //asaplint:ignore alloccheck slab pool bounded by live epochs; backing array reaches it once
	}
}

// UndoRecords returns all live undo records in ascending line order, so
// crash replay is deterministic; the crash handler writes their safe
// values back to NVM (§V-E). Delay records play no role in a crash.
func (rt *RecoveryTable) UndoRecords() []*UndoRecord {
	lines := make([]mem.Line, 0, len(rt.undo))
	for l := range rt.undo {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	out := make([]*UndoRecord, 0, len(lines))
	for _, l := range lines {
		out = append(out, rt.undo[l])
	}
	return out
}

// Reset clears the table, as after a post-crash restart.
func (rt *RecoveryTable) Reset() {
	rt.undo = make(map[mem.Line]*UndoRecord)
	rt.delay = make(map[EpochID][]*DelayRecord)
	rt.delayLen = 0
}

func (rt *RecoveryTable) bumpOcc() {
	if occ := rt.Occupancy(); occ > rt.maxOcc {
		rt.maxOcc = occ
	}
}
