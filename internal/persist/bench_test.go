package persist

import (
	"testing"

	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/sim"
	"asap/internal/stats"
)

// BenchmarkPBFlushCycle measures the persist buffer's steady-state write
// lifecycle: enqueue, pick for flushing, mark inflight, ACK-remove. The
// entry free list makes the cycle allocation-free; benchdiff gates that.
func BenchmarkPBFlushCycle(b *testing.B) {
	pb := NewPersistBuffer(32)
	pred := func(e *PBEntry) bool { return true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := pb.Enqueue(mem.Line(i%64), mem.Token(i), uint64(i)); !ok {
			b.Fatal("enqueue rejected")
		}
		e := pb.NextWaiting(pred)
		pb.MarkInflight(e, i%2 == 0)
		if _, ok := pb.Ack(e.ID); !ok {
			b.Fatal("ack failed")
		}
	}
}

// benchReplier counts controller replies without allocating per flush.
type benchReplier struct {
	acks, nacks int
}

func (r *benchReplier) FlushReply(arg uint64, res FlushResult) {
	if res == FlushAck {
		r.acks++
	} else {
		r.nacks++
	}
}

// BenchmarkMCFlushCommit measures the speculative controller's full early
// flush + epoch commit protocol: undo-record creation (with its WPQ/XPBuf
// read), speculative WPQ insert, drain to media, then the commit that
// deletes the record — the complete §V-A/§V-C round trip for one write.
func BenchmarkMCFlushCommit(b *testing.B) {
	eng := sim.NewEngine()
	mc := NewMC(0, eng, config.Default(), true, stats.New())
	r := &benchReplier{}
	done := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := EpochID{Thread: 0, TS: uint64(i + 1)}
		mc.ReceiveOp(FlushPacket{Line: mem.Line(i % 128), Token: mem.Token(i), Epoch: ep, Early: true}, r, uint64(i))
		mc.Commit(ep, done)
		eng.Run(0)
	}
	if r.acks+r.nacks != b.N {
		b.Fatalf("replies %d+%d, want %d", r.acks, r.nacks, b.N)
	}
}
