package persist

import (
	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/sim"
)

// Link is the model↔controller message fabric. Every interaction that
// crosses the CPU/MC timing boundary — persist-buffer flushes, epoch
// commits, their ACK/NACK replies, demand-fill read accounting and
// LLC-eviction classification — is issued through it.
//
// In a serial machine the Link is a passthrough that reproduces, event
// for event, the schedule the models used to produce themselves: one
// typed event per flush at +FlushLat, one per commit at +MsgLat, with
// FIFO payload queues — so the serial (when, seq) dispatch stream, and
// therefore the golden tables and golden trace, are byte-identical to
// the pre-Link engine.
//
// In a sharded machine (built over a sim.Cluster) the same calls become
// stamped messages on fixed-capacity SPSC rings between the CPU domain
// and each MC domain. Payloads park in a per-domain slab so the heap
// events stay pointer-free, and the controller's reply path (MC.sendReply)
// routes back through the Link with the MsgLat applied across the ring
// rather than inside the controller. All Link latencies are at least
// min(FlushLat, MsgLat), which is exactly the cluster lookahead — the
// conservative-window correctness condition.
type Link struct {
	eng *sim.Engine // CPU-domain engine (the only engine in serial mode)
	cfg config.Config
	mcs []*MC

	// serial delivery queues, head-indexed rings like MC's job queue.
	fq    []linkFlushSend
	fhead int
	cq    []linkCommitSend
	chead int

	// sharded state; nil/empty in serial mode.
	cluster  *sim.Cluster
	mcDomain []int                // MC index -> cluster domain
	toMC     []*sim.Ring[linkMsg] // per cluster domain; nil for domain 0
	toCPU    []*sim.Ring[linkMsg] // per cluster domain; nil for domain 0
	ports    []*linkPort          // per cluster domain payload slab
}

// linkFlushSend is one queued serial flush delivery.
type linkFlushSend struct {
	mc      *MC
	pkt     FlushPacket
	replier FlushReplier
	reply   func(FlushResult)
	arg     uint64
	retried bool
}

// linkCommitSend is one queued serial commit delivery.
type linkCommitSend struct {
	mc    *MC
	epoch EpochID
	acker CommitAcker
}

// Typed-event kinds dispatched through Link.RunEvent (serial mode).
const (
	linkEvFlush = iota
	linkEvCommit
)

// Cross-shard message kinds.
const (
	linkFlushMsg    = iota // CPU->MC: deliver a flush (typed or closure reply)
	linkCommitMsg          // CPU->MC: deliver an epoch commit
	linkReadMsg            // CPU->MC: account a demand-fill media read
	linkClassifyMsg        // CPU->MC: classify a dropped LLC eviction
	linkReplyMsg           // MC->CPU: deliver an ACK/NACK/commit-done
)

// linkMsg is the one cross-shard payload shape, both directions. Rings
// and slabs hold them by value; the heap only ever sees a slab index.
type linkMsg struct {
	when sim.Cycles // delivery stamp
	sent sim.Cycles // sender's clock at send (arrival ordering)
	kind int32
	mc   *MC

	pkt     FlushPacket
	replier FlushReplier
	reply   func(FlushResult)
	arg     uint64
	retried bool

	epoch EpochID
	acker CommitAcker
	ackFn func()

	line mem.Line
	res  FlushResult
}

// NewLink builds the serial passthrough fabric over eng.
func NewLink(eng *sim.Engine, cfg config.Config, mcs []*MC) *Link {
	return &Link{eng: eng, cfg: cfg, mcs: mcs}
}

// NewCrossLink builds the sharded fabric over cl: mcDomain maps each MC
// to its cluster domain (never domain 0, which hosts the cores and
// models). It wires the rings, registers the drain inboxes in source
// order, and points every controller's reply path back through the
// link.
func NewCrossLink(cl *sim.Cluster, cfg config.Config, mcs []*MC, mcDomain []int) *Link {
	l := &Link{
		eng:      cl.Domain(0),
		cfg:      cfg,
		mcs:      mcs,
		cluster:  cl,
		mcDomain: mcDomain,
		toMC:     make([]*sim.Ring[linkMsg], cl.Domains()),
		toCPU:    make([]*sim.Ring[linkMsg], cl.Domains()),
		ports:    make([]*linkPort, cl.Domains()),
	}
	for d := 0; d < cl.Domains(); d++ {
		l.ports[d] = &linkPort{link: l}
	}
	for _, d := range mcDomain {
		if d == 0 {
			panic("persist: MC assigned to the CPU domain")
		}
		if l.toMC[d] == nil {
			l.toMC[d] = sim.NewRing[linkMsg](linkRingCap)
			l.toCPU[d] = sim.NewRing[linkMsg](linkRingCap)
			cl.AddInbox(d, &linkInbox{ring: l.toMC[d], port: l.ports[d]})
		}
	}
	// CPU-side inboxes in MC-domain order, so arrival ranking between
	// controllers is deterministic.
	for d := 1; d < cl.Domains(); d++ {
		if l.toCPU[d] != nil {
			cl.AddInbox(0, &linkInbox{ring: l.toCPU[d], port: l.ports[0]})
		}
	}
	for i, mc := range mcs {
		mc.setCrossLink(l, mcDomain[i])
	}
	return l
}

// linkRingCap bounds in-flight cross-shard messages per direction and
// domain pair. Rings drain fully at every window barrier, so occupancy
// is one window's sends; Send panics via the caller if it ever fills.
const linkRingCap = 2048

// Sharded reports whether the link crosses shard boundaries.
func (l *Link) Sharded() bool { return l.cluster != nil }

// FlushOp issues a flush to mcs[mcID], delivered after FlushLat: the
// typed form used by the ASAP models. retried marks a NACK-retried
// flush, whose delivery removes the line's Bloom reservation — at the
// controller, in both modes, at the same simulated time.
//
//asap:hot flush issue: every persist-buffer drain goes through here
func (l *Link) FlushOp(mcID int, pkt FlushPacket, rp FlushReplier, arg uint64, retried bool) {
	mc := l.mcs[mcID]
	if l.cluster != nil {
		l.sendToMC(mc, linkMsg{
			when: l.eng.Now() + l.cfg.FlushLat, sent: l.eng.Now(), kind: linkFlushMsg,
			mc: mc, pkt: pkt, replier: rp, arg: arg, retried: retried,
		})
		return
	}
	l.fq = append(l.fq, linkFlushSend{mc: mc, pkt: pkt, replier: rp, arg: arg, retried: retried}) //asaplint:ignore alloccheck send queue reaches steady-state capacity, then appends reuse it
	l.eng.AfterOp(l.cfg.FlushLat, l, linkEvFlush, 0)
}

// Flush is the closure-reply form of FlushOp, used by the non-ASAP
// models; reply runs on the CPU domain in both modes.
func (l *Link) Flush(mcID int, pkt FlushPacket, reply func(FlushResult)) {
	mc := l.mcs[mcID]
	if l.cluster != nil {
		l.sendToMC(mc, linkMsg{
			when: l.eng.Now() + l.cfg.FlushLat, sent: l.eng.Now(), kind: linkFlushMsg,
			mc: mc, pkt: pkt, reply: reply,
		})
		return
	}
	l.fq = append(l.fq, linkFlushSend{mc: mc, pkt: pkt, reply: reply})
	l.eng.AfterOp(l.cfg.FlushLat, l, linkEvFlush, 0)
}

// CommitOp sends an epoch-commit message to mcs[mcID], delivered after
// MsgLat; the ACK comes back through acker.CommitAck.
//
//asap:hot commit issue: every epoch commit goes through here
func (l *Link) CommitOp(mcID int, e EpochID, acker CommitAcker) {
	mc := l.mcs[mcID]
	if l.cluster != nil {
		l.sendToMC(mc, linkMsg{
			when: l.eng.Now() + l.cfg.MsgLat, sent: l.eng.Now(), kind: linkCommitMsg,
			mc: mc, epoch: e, acker: acker,
		})
		return
	}
	l.cq = append(l.cq, linkCommitSend{mc: mc, epoch: e, acker: acker}) //asaplint:ignore alloccheck send queue reaches steady-state capacity, then appends reuse it
	l.eng.AfterOp(l.cfg.MsgLat, l, linkEvCommit, 0)
}

// DemandRead accounts a demand-fill media read at mcs[mcID] in sharded
// mode, where the CPU domain must not touch the controller's NVM
// directly; the read lands after MsgLat. Serial machines read the NVM
// in place instead.
func (l *Link) DemandRead(mcID int, line mem.Line) {
	mc := l.mcs[mcID]
	l.sendToMC(mc, linkMsg{
		when: l.eng.Now() + l.cfg.MsgLat, sent: l.eng.Now(), kind: linkReadMsg,
		mc: mc, line: line,
	})
}

// ClassifyEviction routes a dropped-LLC-eviction classification to
// mcs[mcID]'s Bloom filter in sharded mode; the controller counts it as
// delayed or dropped (merged into the machine stats after the run).
// Serial machines classify in place instead.
func (l *Link) ClassifyEviction(mcID int, line mem.Line) {
	mc := l.mcs[mcID]
	l.sendToMC(mc, linkMsg{
		when: l.eng.Now() + l.cfg.MsgLat, sent: l.eng.Now(), kind: linkClassifyMsg,
		mc: mc, line: line,
	})
}

// sendToMC rings m to its controller's domain.
//
//asap:hot cross-shard send fast path
func (l *Link) sendToMC(mc *MC, m linkMsg) {
	if !l.toMC[mc.crossDomain].Send(m) {
		panic("persist: cross-shard ring full (raise linkRingCap)")
	}
}

// replyFromMC crosses an ACK/NACK/commit-done back to the CPU domain,
// applying the MsgLat the serial controller applies internally.
//
//asap:hot cross-shard reply fast path
func (l *Link) replyFromMC(mc *MC, r mcReply) {
	m := linkMsg{
		when: mc.eng.Now() + l.cfg.MsgLat, sent: mc.eng.Now(), kind: linkReplyMsg,
		mc: mc, replier: r.replier, reply: r.legacy, arg: r.arg, res: r.res,
		acker: r.acker, ackFn: r.commit, epoch: r.ackEpoch,
	}
	if !l.toCPU[mc.crossDomain].Send(m) {
		panic("persist: cross-shard ring full (raise linkRingCap)")
	}
}

// RunEvent dispatches the serial delivery queues.
//
//asap:hot serial link delivery: one event per flush/commit in flight
func (l *Link) RunEvent(kind int, arg uint64) {
	switch kind {
	case linkEvFlush:
		s := l.fq[l.fhead]
		l.fq[l.fhead] = linkFlushSend{}
		l.fhead++
		if l.fhead == len(l.fq) {
			l.fq = l.fq[:0]
			l.fhead = 0
		}
		l.deliverFlush(s.mc, s.pkt, s.replier, s.reply, s.arg, s.retried)
	case linkEvCommit:
		s := l.cq[l.chead]
		l.cq[l.chead] = linkCommitSend{}
		l.chead++
		if l.chead == len(l.cq) {
			l.cq = l.cq[:0]
			l.chead = 0
		}
		s.mc.CommitOp(s.epoch, s.acker)
	default:
		panic("persist: unknown Link event kind")
	}
}

// deliverFlush lands a flush at its controller: the shared tail of the
// serial and sharded paths, at the same simulated time in both.
func (l *Link) deliverFlush(mc *MC, pkt FlushPacket, rp FlushReplier, reply func(FlushResult), arg uint64, retried bool) {
	if retried && mc.Bloom != nil {
		// The retry carries the newest value for the line; the Bloom
		// reservation that protected it from LLC-eviction drops lifts
		// the moment the retry reaches the controller.
		mc.Bloom.Remove(pkt.Line)
	}
	if rp != nil {
		mc.ReceiveOp(pkt, rp, arg)
	} else {
		mc.Receive(pkt, reply)
	}
}

// linkPort is one domain's delivery endpoint: arrivals park their
// payload in its slab and the heap event carries only the slot index,
// keeping shard heap elements pointer-free like every other event.
type linkPort struct {
	link *Link
	slab []linkMsg
	free []int32
}

// park stores m and returns its slot.
func (p *linkPort) park(m linkMsg) uint64 {
	var idx int32
	if n := len(p.free); n > 0 {
		idx = p.free[n-1]
		p.free = p.free[:n-1]
		p.slab[idx] = m
	} else {
		idx = int32(len(p.slab))
		p.slab = append(p.slab, m) //asaplint:ignore alloccheck slab reaches peak in-flight deliveries, then the free list recycles slots
	}
	return uint64(idx)
}

// RunEvent delivers a parked cross-shard message at its stamped time.
//
//asap:hot sharded delivery: every cross-shard message dispatches here
func (p *linkPort) RunEvent(kind int, arg uint64) {
	m := p.slab[arg]
	p.slab[arg] = linkMsg{}
	p.free = append(p.free, int32(arg)) //asaplint:ignore alloccheck free list bounded by peak in-flight deliveries
	switch m.kind {
	case linkFlushMsg:
		p.link.deliverFlush(m.mc, m.pkt, m.replier, m.reply, m.arg, m.retried)
	case linkCommitMsg:
		m.mc.CommitOp(m.epoch, m.acker)
	case linkReadMsg:
		m.mc.NVM.Read(m.line)
	case linkClassifyMsg:
		m.mc.classifyEviction(m.line)
	case linkReplyMsg:
		switch {
		case m.acker != nil:
			m.acker.CommitAck(m.epoch)
		case m.ackFn != nil:
			m.ackFn() //asaplint:ignore alloccheck legacy closure-form reply; models use the typed repliers
		case m.replier != nil:
			m.replier.FlushReply(m.arg, m.res)
		default:
			m.reply(m.res) //asaplint:ignore alloccheck legacy closure-form reply path for the non-ASAP models
		}
	default:
		panic("persist: unknown cross-shard message kind")
	}
}

// linkInbox adapts one ring to the cluster's drain contract; ctr keeps
// arrival ranking monotonic across windows.
type linkInbox struct {
	ring *sim.Ring[linkMsg]
	port *linkPort
	ctr  uint64
}

// Drain empties the ring into dst's heap.
//
//asap:hot cross-shard drain: runs at every window barrier
func (ib *linkInbox) Drain(dst *sim.Engine, subBase uint64) {
	var m linkMsg
	for ib.ring.Recv(&m) {
		dst.ArriveOp(m.when, m.sent, ib.port, 0, ib.port.park(m), subBase|ib.ctr)
		ib.ctr++
	}
}
