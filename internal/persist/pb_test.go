package persist

import (
	"testing"

	"asap/internal/mem"
)

func TestPBEnqueueAndCoalesce(t *testing.T) {
	pb := NewPersistBuffer(4)
	co, ok := pb.Enqueue(1, 10, 1)
	if co || !ok {
		t.Fatal("first enqueue should allocate")
	}
	// Same line, same epoch, still waiting: coalesce.
	co, ok = pb.Enqueue(1, 11, 1)
	if !co || !ok {
		t.Fatal("should coalesce")
	}
	if pb.Len() != 1 || pb.Coalesced() != 1 {
		t.Fatalf("len=%d coalesced=%d", pb.Len(), pb.Coalesced())
	}
	// Same line, later epoch: must NOT coalesce (ordering).
	co, ok = pb.Enqueue(1, 12, 2)
	if co || !ok {
		t.Fatal("cross-epoch coalescing must not happen")
	}
	if pb.Len() != 2 {
		t.Fatal("expected a second entry")
	}
	// And now the epoch-1 entry is shadowed: a new epoch-1 store for the
	// same line must not skip past the epoch-2 entry to coalesce.
	co, _ = pb.Enqueue(1, 13, 1)
	if co {
		t.Fatal("coalescing scanned past a newer epoch's entry for the line")
	}
}

func TestPBInflightNoCoalesce(t *testing.T) {
	pb := NewPersistBuffer(4)
	pb.Enqueue(1, 10, 1)
	e := pb.NextWaiting(func(*PBEntry) bool { return true })
	pb.MarkInflight(e, false)
	co, ok := pb.Enqueue(1, 11, 1)
	if co || !ok {
		t.Fatal("inflight entries must not absorb new writes")
	}
}

func TestPBFullAndAck(t *testing.T) {
	pb := NewPersistBuffer(2)
	pb.Enqueue(1, 10, 1)
	pb.Enqueue(2, 20, 1)
	if _, ok := pb.Enqueue(3, 30, 1); ok {
		t.Fatal("full buffer accepted an entry")
	}
	e := pb.NextWaiting(func(*PBEntry) bool { return true })
	pb.MarkInflight(e, true)
	if pb.Inflight() != 1 {
		t.Fatal("inflight count wrong")
	}
	got, ok := pb.Ack(e.ID)
	if !ok || got.Line != 1 || !got.Early {
		t.Fatalf("ack returned %+v", got)
	}
	if pb.Len() != 1 || pb.Inflight() != 0 {
		t.Fatal("ack did not free the entry")
	}
	if _, ok := pb.Enqueue(3, 30, 1); !ok {
		t.Fatal("freed capacity not usable")
	}
}

func TestPBNack(t *testing.T) {
	pb := NewPersistBuffer(2)
	pb.Enqueue(1, 10, 3)
	e := pb.NextWaiting(func(*PBEntry) bool { return true })
	pb.MarkInflight(e, true)
	n := pb.Nack(e.ID)
	if n == nil || n.State != PBWaiting || !n.Nacked {
		t.Fatalf("nack state wrong: %+v", n)
	}
	// The entry is eligible again under a safe-only predicate.
	if pb.NextWaiting(func(en *PBEntry) bool { return en.Nacked }) == nil {
		t.Fatal("NACKed entry not re-flushable")
	}
}

func TestPBFIFOOrder(t *testing.T) {
	pb := NewPersistBuffer(8)
	for i := 0; i < 5; i++ {
		pb.Enqueue(mem.Line(i), mem.Token(i), 1)
	}
	for i := 0; i < 5; i++ {
		e := pb.NextWaiting(func(*PBEntry) bool { return true })
		if e.Line != mem.Line(i) {
			t.Fatalf("FIFO broken: got line %d, want %d", e.Line, i)
		}
		pb.MarkInflight(e, false)
		pb.Ack(e.ID)
	}
}

func TestPBPredicateSkipsEpochs(t *testing.T) {
	pb := NewPersistBuffer(8)
	pb.Enqueue(1, 10, 1)
	pb.Enqueue(2, 20, 2)
	e := pb.NextWaiting(func(en *PBEntry) bool { return en.TS == 2 })
	if e == nil || e.Line != 2 {
		t.Fatal("predicate selection wrong")
	}
}

func TestPBPendingAndHasLine(t *testing.T) {
	pb := NewPersistBuffer(8)
	pb.Enqueue(1, 10, 1)
	pb.Enqueue(2, 20, 1)
	pb.Enqueue(3, 30, 2)
	if pb.PendingForEpoch(1) != 2 || pb.PendingForEpoch(2) != 1 {
		t.Fatal("PendingForEpoch wrong")
	}
	if !pb.HasLine(2) || pb.HasLine(9) {
		t.Fatal("HasLine wrong")
	}
	if pb.MaxOccupancy() != 3 {
		t.Fatal("MaxOccupancy wrong")
	}
}

func TestEpochTableLifecycle(t *testing.T) {
	et := NewEpochTable(0, 4)
	if et.CurrentTS() != 1 || et.Len() != 1 {
		t.Fatal("fresh table wrong")
	}
	et.Current().Unacked = 2
	e2 := et.Advance()
	e1, ok := et.Get(1)
	if e2.TS != 2 || !ok || !e1.Closed {
		t.Fatal("advance did not close epoch 1")
	}
	if !et.PrevCommitted(1) {
		t.Fatal("epoch 1 has no predecessor")
	}
	if et.PrevCommitted(2) {
		t.Fatal("epoch 2's predecessor is uncommitted")
	}
	ent1, _ := et.Get(1)
	ent1.Unacked = 0
	ent1.Committed = true
	et.Retire(1)
	if _, ok := et.Get(1); ok {
		t.Fatal("retire left the entry")
	}
	if !et.PrevCommitted(2) {
		t.Fatal("retired epochs are committed by definition")
	}
	if et.OldestTS() != 2 {
		t.Fatalf("oldest = %d", et.OldestTS())
	}
}

func TestEpochTableAllCommitted(t *testing.T) {
	et := NewEpochTable(0, 4)
	if !et.AllCommitted() {
		t.Fatal("empty open epoch should not block a dfence")
	}
	et.Current().Unacked = 1
	if et.AllCommitted() {
		t.Fatal("open epoch with writes must block")
	}
	et.Advance() // closes epoch 1
	e1, _ := et.Get(1)
	e1.Unacked = 0
	if et.AllCommitted() {
		t.Fatal("closed uncommitted epoch must block")
	}
	e1.Committed = true
	et.Retire(1)
	if !et.AllCommitted() {
		t.Fatal("all committed now")
	}
}

func TestEpochTableOverflowTolerated(t *testing.T) {
	et := NewEpochTable(0, 2)
	et.Advance()
	if !et.Full() {
		t.Fatal("should be at capacity")
	}
	// Coherence-triggered splits may exceed capacity (see Advance docs).
	et.Advance()
	if et.Len() != 3 {
		t.Fatal("overflow advance failed")
	}
	if et.MaxOccupancy() != 3 {
		t.Fatal("max occupancy should record the overflow")
	}
}

func TestRetireUncommittedPanics(t *testing.T) {
	et := NewEpochTable(0, 4)
	et.Advance()
	defer func() {
		if recover() == nil {
			t.Error("retiring an uncommitted epoch did not panic")
		}
	}()
	et.Retire(1)
}

func TestEpochsIteration(t *testing.T) {
	et := NewEpochTable(0, 8)
	et.Advance()
	et.Advance()
	var seen []uint64
	et.Epochs(func(e *ETEntry) { seen = append(seen, e.TS) })
	if len(seen) != 3 || seen[0] != 1 || seen[2] != 3 {
		t.Fatalf("iteration wrong: %v", seen)
	}
}
