package persist

import (
	"testing"
	"testing/quick"

	"asap/internal/mem"
)

func e(th int, ts uint64) EpochID { return EpochID{Thread: th, TS: ts} }

// TestTableISemantics walks every cell of Table I through the recovery
// table directly.
func TestTableISemantics(t *testing.T) {
	rt := NewRecoveryTable(8)
	line := mem.Line(7)

	// Early flush, no undo record: create one.
	if !rt.CreateUndo(line, 0 /* old memory value */, e(3, 1)) {
		t.Fatal("CreateUndo failed with space available")
	}
	u, ok := rt.Undo(line)
	if !ok || u.Safe != 0 || u.Creator != e(3, 1) {
		t.Fatalf("undo record wrong: %+v", u)
	}

	// Safe flush, undo record present: update the safe value.
	rt.UpdateUndo(line, 1)
	if u, _ := rt.Undo(line); u.Safe != 1 {
		t.Fatal("UpdateUndo did not store the safe value")
	}

	// Early flush, undo record present: delay record.
	if !rt.CreateDelay(line, 2, e(2, 1)) {
		t.Fatal("CreateDelay failed with space available")
	}
	if rt.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", rt.Occupancy())
	}
}

// TestFigure5Scenario reproduces the paper's write-collision example end to
// end at the record level.
func TestFigure5Scenario(t *testing.T) {
	rt := NewRecoveryTable(8)
	a := mem.Line(1)
	// Memory holds A=0. T3's early A=3 arrives first.
	rt.CreateUndo(a, 0, e(3, 1))
	// T2's early A=2 arrives while the undo exists: delayed.
	rt.CreateDelay(a, 2, e(2, 1))

	// T2 commits first (T3 depends on it): its delay record emerges and,
	// per §V-C, updates the undo record's safe value.
	delays := rt.Commit(e(2, 1))
	if len(delays) != 1 || delays[0].Token != 2 {
		t.Fatalf("T2 commit returned %v", delays)
	}
	rt.UpdateUndo(a, delays[0].Token)
	if u, _ := rt.Undo(a); u.Safe != 2 {
		t.Fatal("safe value should now be T2's write")
	}

	// Crash here would restore A=2 (T2 committed, T3 not): correct.
	// Instead T3 commits: undo deleted, memory keeps A=3.
	if ds := rt.Commit(e(3, 1)); len(ds) != 0 {
		t.Fatalf("T3 commit returned stray delays %v", ds)
	}
	if _, ok := rt.Undo(a); ok {
		t.Fatal("undo record should be deleted at creator commit")
	}
	if rt.Occupancy() != 0 {
		t.Fatal("table should be empty")
	}
}

func TestRecoveryTableCapacity(t *testing.T) {
	rt := NewRecoveryTable(2)
	if !rt.CreateUndo(1, 0, e(0, 1)) || !rt.CreateDelay(1, 5, e(1, 1)) {
		t.Fatal("fills rejected")
	}
	if !rt.Full() {
		t.Fatal("should be full")
	}
	if rt.CreateUndo(2, 0, e(0, 1)) {
		t.Fatal("undo accepted when full")
	}
	if rt.CreateDelay(2, 6, e(1, 1)) {
		t.Fatal("delay accepted when full")
	}
	// Coalescing into an existing delay record needs no new entry.
	if !rt.CreateDelay(1, 7, e(1, 1)) {
		t.Fatal("delay coalesce rejected when full")
	}
	if rt.DelaysCoalesced() != 1 {
		t.Fatal("coalesce not counted")
	}
	if rt.MaxOccupancy() != 2 {
		t.Fatalf("max occupancy = %d", rt.MaxOccupancy())
	}
}

func TestDelayOrderPreserved(t *testing.T) {
	rt := NewRecoveryTable(8)
	rt.CreateUndo(9, 0, e(0, 1))
	for i, l := range []mem.Line{3, 9, 5} {
		// line 9 has an undo; others don't need one for this test —
		// we only care about per-epoch delay ordering.
		if !rt.CreateDelay(l, mem.Token(i+1), e(1, 4)) {
			t.Fatal("delay rejected")
		}
	}
	ds := rt.Commit(e(1, 4))
	if len(ds) != 3 || ds[0].Line != 3 || ds[1].Line != 9 || ds[2].Line != 5 {
		t.Fatalf("delay order lost: %v", ds)
	}
}

func TestUndoRecordsAndReset(t *testing.T) {
	rt := NewRecoveryTable(8)
	rt.CreateUndo(1, 11, e(0, 1))
	rt.CreateUndo(2, 22, e(0, 2))
	recs := rt.UndoRecords()
	if len(recs) != 2 {
		t.Fatalf("got %d undo records", len(recs))
	}
	rt.Reset()
	if rt.Occupancy() != 0 {
		t.Fatal("reset left records")
	}
}

func TestDuplicateUndoPanics(t *testing.T) {
	rt := NewRecoveryTable(8)
	rt.CreateUndo(1, 0, e(0, 1))
	defer func() {
		if recover() == nil {
			t.Error("duplicate CreateUndo did not panic")
		}
	}()
	rt.CreateUndo(1, 0, e(0, 2))
}

// TestRecoveryTableInvariants (property): under random operations the
// occupancy accounting never drifts and capacity is never exceeded.
func TestRecoveryTableInvariants(t *testing.T) {
	type op struct {
		Kind  uint8
		Line  uint8
		Th    uint8
		TS    uint8
		Token uint16
	}
	prop := func(ops []op) bool {
		const capEntries = 6
		rt := NewRecoveryTable(capEntries)
		undoLines := map[mem.Line]bool{}
		for _, o := range ops {
			l := mem.Line(o.Line % 8)
			ep := EpochID{Thread: int(o.Th % 3), TS: uint64(o.TS%4) + 1}
			switch o.Kind % 3 {
			case 0: // early flush path
				if undoLines[l] {
					rt.CreateDelay(l, mem.Token(o.Token), ep)
				} else if rt.CreateUndo(l, mem.Token(o.Token), ep) {
					undoLines[l] = true
				}
			case 1: // safe flush with undo
				if undoLines[l] {
					rt.UpdateUndo(l, mem.Token(o.Token))
				}
			case 2: // commit
				rt.Commit(ep)
				for ln := range undoLines {
					if _, ok := rt.Undo(ln); !ok {
						delete(undoLines, ln)
					}
				}
			}
			if rt.Occupancy() > capEntries {
				return false
			}
			if rt.Occupancy() < 0 {
				return false
			}
		}
		// Committing every possible epoch must empty the table.
		for th := 0; th < 3; th++ {
			for ts := uint64(1); ts <= 4; ts++ {
				rt.Commit(EpochID{Thread: th, TS: ts})
			}
		}
		return rt.Occupancy() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFilter(t *testing.T) {
	b := NewCountingBloom(512, 3)
	for l := mem.Line(0); l < 50; l++ {
		b.Add(l)
	}
	for l := mem.Line(0); l < 50; l++ {
		if !b.MaybeContains(l) {
			t.Fatalf("false negative for %d", l)
		}
	}
	for l := mem.Line(0); l < 50; l++ {
		b.Remove(l)
	}
	fp := 0
	for l := mem.Line(0); l < 50; l++ {
		if b.MaybeContains(l) {
			fp++
		}
	}
	if fp != 0 {
		t.Fatalf("%d lines still present after removal", fp)
	}
}

// TestBloomNoFalseNegatives (property): any added-but-not-removed line is
// always reported present.
func TestBloomNoFalseNegatives(t *testing.T) {
	prop := func(lines []uint16) bool {
		b := NewCountingBloom(256, 3)
		for _, l := range lines {
			b.Add(mem.Line(l))
		}
		for _, l := range lines {
			if !b.MaybeContains(mem.Line(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
