package persist

import "asap/internal/stats"

// The memory controller's stat vocabulary (Table I flush handling and the
// recovery-table path). See internal/model/vocab.go for the rationale.
func init() {
	stats.Register("mcCommits", "epoch commit messages processed by the MC")
	stats.Register("mcDelayCoalesced", "flushes coalesced into an existing delay record")
	stats.Register("mcEarlyFlushes", "early (speculative) flushes accepted by the MC")
	stats.Register("mcNacks", "early flushes NACKed for lack of recovery-table space")
	stats.Register("mcSafeFlushes", "safe (post-commit) flushes received by the MC")
	stats.Register("mcUndoMediaReads", "NVM media reads to capture undo images")
	stats.Register("mcWpqFullStalls", "inserts stalled on a full write-pending queue")
	stats.Register("mcWritesSuppressed", "NVM writes suppressed by delay-record coalescing")
	stats.Register("totalUndo", "undo records created in the recovery table")
}
