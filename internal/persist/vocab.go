package persist

import "asap/internal/stats"

// The memory controller's stat vocabulary (Table I flush handling and the
// recovery-table path). See internal/model/vocab.go for the rationale.
// Registration returns the dense keys NewMC resolves to Counter handles so
// the per-flush service path never hashes a stat name.
var (
	kMcCommits          = stats.Register("mcCommits", "epoch commit messages processed by the MC")
	kMcDelayCoalesced   = stats.Register("mcDelayCoalesced", "flushes coalesced into an existing delay record")
	kMcEarlyFlushes     = stats.Register("mcEarlyFlushes", "early (speculative) flushes accepted by the MC")
	kMcNacks            = stats.Register("mcNacks", "early flushes NACKed for lack of recovery-table space")
	kMcSafeFlushes      = stats.Register("mcSafeFlushes", "safe (post-commit) flushes received by the MC")
	kMcUndoMediaReads   = stats.Register("mcUndoMediaReads", "NVM media reads to capture undo images")
	kMcWpqFullStalls    = stats.Register("mcWpqFullStalls", "inserts stalled on a full write-pending queue")
	kMcWritesSuppressed = stats.Register("mcWritesSuppressed", "NVM writes suppressed by delay-record coalescing")
	kTotalUndo          = stats.Register("totalUndo", "undo records created in the recovery table")
)

// mcCounters bundles the controller's pre-resolved stat handles.
type mcCounters struct {
	commits          stats.Counter
	delayCoalesced   stats.Counter
	earlyFlushes     stats.Counter
	nacks            stats.Counter
	safeFlushes      stats.Counter
	undoMediaReads   stats.Counter
	wpqFullStalls    stats.Counter
	writesSuppressed stats.Counter
	totalUndo        stats.Counter
}

func newMCCounters(st *stats.Set) mcCounters {
	return mcCounters{
		commits:          st.Counter(kMcCommits),
		delayCoalesced:   st.Counter(kMcDelayCoalesced),
		earlyFlushes:     st.Counter(kMcEarlyFlushes),
		nacks:            st.Counter(kMcNacks),
		safeFlushes:      st.Counter(kMcSafeFlushes),
		undoMediaReads:   st.Counter(kMcUndoMediaReads),
		wpqFullStalls:    st.Counter(kMcWpqFullStalls),
		writesSuppressed: st.Counter(kMcWritesSuppressed),
		totalUndo:        st.Counter(kTotalUndo),
	}
}
