package persist

// ETEntry is the metadata the epoch table keeps for one in-flight epoch
// (§V-A): outstanding write counts, cross-thread dependencies in both
// directions, the set of controllers that received early flushes, and the
// commit state machine's progress.
type ETEntry struct {
	TS uint64

	// Unacked counts writes of this epoch still live in the persist
	// buffer (waiting or inflight). The epoch is complete when the thread
	// has moved past it (Closed) and Unacked reaches zero.
	Unacked int

	// Deps are source epochs this epoch must wait on; Resolved counts CDR
	// messages received. With the paper's epoch-splitting rule an epoch
	// acquires at most one dependency, but the table supports several.
	Deps     []EpochID
	Resolved int

	// Dependents are remote epochs to notify with a CDR after commit.
	Dependents []EpochID

	// EarlyMCs records controllers that received early flushes from this
	// epoch, so commit messages go only where needed (§V-C). It is a
	// bitmask over controller IDs (config caps MCs at 64), which keeps
	// epoch bookkeeping allocation-free.
	EarlyMCs uint64

	// Closed: the thread has started a later epoch; no new writes will
	// join this one.
	Closed bool
	// CommitSent: commit messages are in flight to the controllers.
	CommitSent bool
	// CommitAcks counts commit ACKs still outstanding.
	CommitAcks int
	// Committed: safe, complete, and all controllers acknowledged.
	Committed bool
	// Nacked: an early flush of this epoch was NACKed; the persist buffer
	// is in conservative mode until this epoch commits.
	Nacked bool
}

// DepsResolved reports whether every cross-thread dependency has been
// cleared by a CDR message.
func (e *ETEntry) DepsResolved() bool { return e.Resolved >= len(e.Deps) }

// AddEarlyMC records that controller mc received an early flush.
func (e *ETEntry) AddEarlyMC(mc int) { e.EarlyMCs |= 1 << uint(mc) }

// EarlyMCCount returns the number of controllers that saw early flushes.
func (e *ETEntry) EarlyMCCount() int {
	n := 0
	for m := e.EarlyMCs; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// ForEachEarlyMC calls fn for each controller in ascending ID order — the
// same order the previous sorted-slice implementation produced, so commit
// message scheduling (and every downstream tie-break) is unchanged.
func (e *ETEntry) ForEachEarlyMC(fn func(mc int)) {
	for id, m := 0, e.EarlyMCs; m != 0; id, m = id+1, m>>1 {
		if m&1 != 0 {
			fn(id)
		}
	}
}

// EpochTable tracks the in-flight epochs of one core. Entries are ordered by
// TS; capacity bounds the number of uncommitted epochs, and an ofence that
// would exceed it stalls the core (§VI-A).
//
// Tracked timestamps always lie in the window [oldest, current], whose span
// is bounded by the table's occupancy, so the TS → entry index is a
// power-of-two ring addressed by ts&mask rather than a map: the Get on
// every flush ACK, commit attempt and CDR is two compares and an indexed
// load. The ring doubles in the rare case a burst of coherence-triggered
// splits pushes the window past its length (Advance may exceed nominal
// capacity; hardware reserves entries for this).
type EpochTable struct {
	capacity int
	thread   int
	current  uint64 // TS of the open epoch
	oldest   uint64 // lowest TS not yet retired
	ring     []*ETEntry
	mask     uint64 // len(ring) - 1
	count    int    // tracked (unretired) epochs
	maxOcc   int
	free     []*ETEntry // retired entries, recycled by Advance
}

// etRingSize returns the initial ring length: a power of two comfortably
// above the nominal capacity so transient over-capacity windows rarely
// force a grow.
func etRingSize(capacity int) int {
	n := 16
	for n < 2*capacity {
		n *= 2
	}
	return n
}

// NewEpochTable returns a table for the given hardware thread. Epoch 1 is
// open immediately; TS 0 is reserved as "before all epochs".
func NewEpochTable(thread, capacity int) *EpochTable {
	if capacity <= 0 {
		panic("persist: epoch table capacity must be positive")
	}
	n := etRingSize(capacity)
	et := &EpochTable{
		capacity: capacity,
		thread:   thread,
		current:  1,
		oldest:   1,
		ring:     make([]*ETEntry, n),
		mask:     uint64(n) - 1,
	}
	et.ring[1&et.mask] = &ETEntry{TS: 1}
	et.count = 1
	et.maxOcc = 1
	return et
}

// Thread returns the owning hardware thread.
func (et *EpochTable) Thread() int { return et.thread }

// CurrentTS returns the open epoch's timestamp.
func (et *EpochTable) CurrentTS() uint64 { return et.current }

// Current returns the open epoch's entry.
func (et *EpochTable) Current() *ETEntry { return et.ring[et.current&et.mask] }

// Get returns the entry for epoch ts, if still tracked. Within the window
// [oldest, current] ring slots are collision-free (the window never exceeds
// the ring length), so a slot holds either ts's entry or nil (retired).
func (et *EpochTable) Get(ts uint64) (*ETEntry, bool) {
	if ts < et.oldest || ts > et.current {
		return nil, false
	}
	e := et.ring[ts&et.mask]
	if e == nil {
		return nil, false
	}
	return e, true
}

// Len returns the number of tracked (unretired) epochs.
func (et *EpochTable) Len() int { return et.count }

// MaxOccupancy returns the high-water mark of Len.
func (et *EpochTable) MaxOccupancy() int { return et.maxOcc }

// Full reports whether opening another epoch would exceed capacity.
func (et *EpochTable) Full() bool { return et.count >= et.capacity }

// OldestTS returns the lowest unretired epoch timestamp.
func (et *EpochTable) OldestTS() uint64 { return et.oldest }

// grow doubles the ring and re-places the tracked window.
func (et *EpochTable) grow() {
	old := et.ring
	oldMask := et.mask
	et.ring = make([]*ETEntry, 2*len(old)) //asaplint:ignore alloccheck amortized doubling on transient over-capacity; steady state never grows
	et.mask = uint64(len(et.ring)) - 1
	for ts := et.oldest; ts <= et.current; ts++ {
		et.ring[ts&et.mask] = old[ts&oldMask]
	}
}

// Advance closes the current epoch and opens a new one, returning its entry.
// Fence instructions must stall on Full before advancing; coherence-
// triggered splits, however, call Advance unconditionally — a coherence
// reply cannot stall without deadlocking the protocol, so the table may
// transiently exceed its nominal capacity (hardware reserves entries for
// this). Lemma 0.1's acyclicity argument requires that the dependency
// source epoch is always closed at creation.
//
//asap:hot runs on every epoch boundary (fences, coherence splits)
func (et *EpochTable) Advance() *ETEntry {
	et.ring[et.current&et.mask].Closed = true
	et.current++
	if et.current-et.oldest+1 > uint64(len(et.ring)) {
		et.grow()
	}
	var e *ETEntry
	if n := len(et.free); n > 0 {
		e = et.free[n-1]
		et.free[n-1] = nil
		et.free = et.free[:n-1]
		deps, dependents := e.Deps[:0], e.Dependents[:0]
		*e = ETEntry{TS: et.current, Deps: deps, Dependents: dependents}
	} else {
		e = &ETEntry{TS: et.current} //asaplint:ignore alloccheck free-list miss; bounded by the table's live window, then recycled forever
	}
	et.ring[et.current&et.mask] = e
	et.count++
	if et.count > et.maxOcc {
		et.maxOcc = et.count
	}
	return e
}

// Retire removes a committed epoch from the table, freeing an entry.
//
//asap:hot runs once per committed epoch
func (et *EpochTable) Retire(ts uint64) {
	e, ok := et.Get(ts)
	if !ok {
		return
	}
	if !e.Committed {
		panic("persist: retiring uncommitted epoch")
	}
	et.ring[ts&et.mask] = nil
	et.count--
	// Recycle the entry; Advance reuses it (and its Deps/Dependents
	// backing arrays) for a future epoch. Callers must not retain
	// *ETEntry pointers across Retire.
	et.free = append(et.free, e) //asaplint:ignore alloccheck free list bounded by the table's live window; backing array reaches it once
	for et.oldest <= et.current && et.ring[et.oldest&et.mask] == nil {
		et.oldest++
	}
}

// PrevCommitted reports whether the epoch preceding ts has committed (or ts
// is the first epoch). Retired epochs are committed by definition.
func (et *EpochTable) PrevCommitted(ts uint64) bool {
	if ts <= 1 {
		return true
	}
	prev, ok := et.Get(ts - 1)
	if !ok {
		return true // already retired, hence committed
	}
	return prev.Committed
}

// AllCommitted reports whether no uncommitted epoch remains except possibly
// an empty open epoch with no writes. This is the dfence condition (§V-A).
func (et *EpochTable) AllCommitted() bool {
	for ts := et.oldest; ts <= et.current; ts++ {
		e := et.ring[ts&et.mask]
		if e == nil || e.Committed {
			continue
		}
		if !e.Closed && e.Unacked == 0 && len(e.Deps) == 0 {
			// The open epoch with nothing buffered does not block a
			// dfence: there is nothing to persist.
			continue
		}
		return false
	}
	return true
}

// Epochs calls fn for each tracked epoch in ascending TS order.
func (et *EpochTable) Epochs(fn func(*ETEntry)) {
	for ts := et.oldest; ts <= et.current; ts++ {
		if e := et.ring[ts&et.mask]; e != nil {
			fn(e)
		}
	}
}
