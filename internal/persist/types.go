// Package persist implements the hardware structures ASAP adds to the
// machine: per-core persist buffers (PB) and epoch tables (ET), and the
// per-memory-controller recovery table (RT) holding undo and delay records.
// It also implements the memory controller front-end that applies the flush
// handling rules of Table I and the commit protocol of §V-C.
package persist

import "asap/internal/mem"

// Epoch numbers are per-thread logical timestamps (§V-A). The pair
// (Thread, TS) globally identifies an epoch.
type EpochID struct {
	Thread int
	TS     uint64
}

// FlushPacket is one cache line sent from a persist buffer to a memory
// controller. Early marks a speculative flush from a not-yet-safe epoch.
type FlushPacket struct {
	Line  mem.Line
	Token mem.Token
	Epoch EpochID
	Early bool
}

// FlushResult is the controller's reply to a flush.
type FlushResult int

const (
	// FlushAck: the write is durable (accepted into the ADR domain).
	FlushAck FlushResult = iota
	// FlushNack: the recovery table had no space for the early flush; the
	// persist buffer must fall back to conservative flushing (§V-D).
	FlushNack
)

func (r FlushResult) String() string {
	if r == FlushAck {
		return "ACK"
	}
	return "NACK"
}
