package persist

import (
	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/stats"
	"fmt"
)

// mcJob is one unit of controller work: an incoming flush or a commit
// message from an epoch table.
type mcJob struct {
	isCommit bool

	// flush fields
	pkt   FlushPacket
	reply func(FlushResult)

	// commit fields
	epoch      EpochID
	commitDone func()
}

// MC is a memory controller front-end. It owns a WPQ (in the ADR persistence
// domain), the NVM media behind it, an XPBuffer line cache, and — when the
// machine runs an ASAP model — a recovery table plus the NACK Bloom filter.
//
// The controller serves one job at a time (reads for undo-record creation
// serialize with inserts), while an independent drain process retires WPQ
// entries to NVM at the media write latency. A full WPQ back-pressures the
// front-end: the job being served waits for a drain before inserting, and
// jobs behind it queue up.
type MC struct {
	ID  int
	eng *sim.Engine
	cfg config.Config

	WPQ   *mem.WPQ
	RT    *RecoveryTable // nil for models without speculative persistence
	XP    *mem.XPBuffer
	NVM   *mem.NVM
	Bloom *CountingBloom

	queue      []mcJob
	serving    bool
	draining   bool
	wpqWaiters []func()

	st *stats.Set

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

// mcServeCost is the fixed front-end cost of handling one job (CAM lookup
// plus control), in cycles. Table V reports ~0.4 ns RT access; 4 cycles
// (2 ns) also covers the scheduling overheads.
const mcServeCost sim.Cycles = 4

// NewMC builds a controller. Pass speculative=true to attach a recovery
// table and Bloom filter (ASAP); false gives the plain ADR controller used
// by the baseline, HOPS and eADR models.
func NewMC(id int, eng *sim.Engine, cfg config.Config, speculative bool, st *stats.Set) *MC {
	mc := &MC{
		ID:  id,
		eng: eng,
		cfg: cfg,
		WPQ: mem.NewWPQ(cfg.WPQEntries),
		XP:  mem.NewXPBuffer(cfg.XPBufLines),
		NVM: mem.NewNVM(),
		st:  st,
	}
	if speculative {
		mc.RT = NewRecoveryTable(cfg.RTEntries)
		mc.Bloom = NewCountingBloom(1024, 3)
	}
	return mc
}

// Stats returns the stat set the controller reports into.
func (mc *MC) Stats() *stats.Set { return mc.st }

// AttachTracer wires tr through the controller and its sub-structures: one
// "mc<ID>" track carries job-service spans, flush decision instants, and
// the WPQ/RT/XPBuffer/NVM counters. Call before the simulation starts.
func (mc *MC) AttachTracer(tr obs.Tracer) {
	mc.trc = tr
	mc.track = tr.Track(fmt.Sprintf("mc%d", mc.ID), 100+mc.ID)
	mc.WPQ.AttachTracer(tr, mc.track)
	mc.XP.AttachTracer(tr, mc.track)
	mc.NVM.AttachTracer(tr, mc.track)
	if mc.RT != nil {
		mc.RT.AttachTracer(tr, mc.track)
	}
}

// Receive accepts a flush packet. reply is invoked (after the on-chip
// message latency) with ACK or NACK. Callers model the PB→MC flush latency
// before calling Receive.
func (mc *MC) Receive(pkt FlushPacket, reply func(FlushResult)) {
	if pkt.Early {
		mc.st.Inc("mcEarlyFlushes")
	} else {
		mc.st.Inc("mcSafeFlushes")
	}
	mc.queue = append(mc.queue, mcJob{pkt: pkt, reply: reply})
	mc.serve()
}

// Commit accepts an epoch-commit message from an epoch table; done is the
// ACK, invoked after the table has been cleaned and any delay records
// processed (§V-C).
func (mc *MC) Commit(e EpochID, done func()) {
	mc.queue = append(mc.queue, mcJob{isCommit: true, epoch: e, commitDone: done})
	mc.serve()
}

// QueueLen reports front-end jobs waiting to be served (for tests).
func (mc *MC) QueueLen() int { return len(mc.queue) }

// Idle reports whether the controller has no queued work, no job in
// service, and an empty WPQ.
func (mc *MC) Idle() bool {
	return !mc.serving && len(mc.queue) == 0 && mc.WPQ.Len() == 0
}

func (mc *MC) serve() {
	if mc.serving || len(mc.queue) == 0 {
		return
	}
	mc.serving = true
	j := mc.queue[0]
	mc.queue = mc.queue[1:]
	done := func() {
		if mc.trc != nil {
			mc.trc.End(mc.track)
		}
		mc.serving = false
		mc.serve()
	}
	mc.eng.After(mcServeCost, func() {
		if mc.trc != nil {
			mc.trc.Begin(mc.track, jobName(j))
		}
		if j.isCommit {
			mc.processCommit(j, done)
		} else {
			mc.processFlush(j, done)
		}
	})
}

// jobName labels a controller job's service span in the trace.
func jobName(j mcJob) string {
	switch {
	case j.isCommit:
		return "commit"
	case j.pkt.Early:
		return "early flush"
	default:
		return "safe flush"
	}
}

// processFlush applies Table I.
func (mc *MC) processFlush(j mcJob, done func()) {
	pkt := j.pkt
	if DebugLine != 0 && pkt.Line == DebugLine && mc.RT != nil {
		u, hu := mc.RT.Undo(pkt.Line)
		fmt.Printf("[%d] MC%d flush tok=%d epoch=%v early=%v hasUndo=%v undo=%+v mem=%d\n",
			mc.eng.Now(), mc.ID, pkt.Token, pkt.Epoch, pkt.Early, hu, u, mc.NVM.Peek(pkt.Line))
	}
	ack := func() {
		mc.eng.After(mc.cfg.MsgLat, func() { j.reply(FlushAck) })
		done()
	}
	nack := func() {
		mc.st.Inc("mcNacks")
		if mc.trc != nil {
			mc.trc.Instant(mc.track, "nack")
		}
		if mc.Bloom != nil {
			mc.Bloom.Add(pkt.Line)
		}
		mc.eng.After(mc.cfg.MsgLat, func() { j.reply(FlushNack) })
		done()
	}

	if mc.RT == nil {
		// Plain ADR controller: every flush is a memory write.
		mc.insertWrite(pkt.Line, pkt.Token, ack)
		return
	}

	// If this epoch already has a delayed write for the line, the incoming
	// flush — early or safe — must coalesce into the delay record: the
	// record is replayed at the epoch's commit, so it must carry the
	// epoch's newest value for the line. Letting the flush take any other
	// path would leave a stale delayed value to clobber memory at commit
	// (same-line writes of one thread arrive in program order, so the
	// incoming value is always the newer one).
	if mc.RT.HasDelay(pkt.Line, pkt.Epoch) {
		mc.RT.CreateDelay(pkt.Line, pkt.Token, pkt.Epoch)
		mc.st.Inc("mcDelayCoalesced")
		ack()
		return
	}

	undo, hasUndo := mc.RT.Undo(pkt.Line)
	switch {
	case !pkt.Early && !hasUndo:
		// Safe flush, no record: the normal path.
		mc.insertWrite(pkt.Line, pkt.Token, ack)

	case !pkt.Early && hasUndo && undo.Creator == pkt.Epoch:
		// Safe flush finding an undo record its *own epoch* created:
		// the speculative value in memory is an older write of this
		// epoch (a same-line predecessor that issued early before the
		// epoch turned safe), so the incoming value is the newest for
		// the line and goes straight to memory. The undo record keeps
		// the pre-epoch safe state for rollback. Without this case the
		// newer write would be stashed in the undo record and deleted
		// at commit.
		mc.insertWrite(pkt.Line, pkt.Token, ack)

	case !pkt.Early && hasUndo:
		// Safe flush, record from another epoch: memory already holds
		// a newer speculative value (the undo creator wrote after this
		// flush in coherence order, or this is a NACK-retried older
		// write). The incoming value becomes the recorded safe state;
		// the memory write is suppressed.
		mc.RT.UpdateUndo(pkt.Line, pkt.Token)
		mc.st.Inc("mcWritesSuppressed")
		ack()

	case pkt.Early && hasUndo:
		// Early flush, record present: delay it until its epoch commits.
		if mc.RT.CreateDelay(pkt.Line, pkt.Token, pkt.Epoch) {
			ack()
		} else {
			nack()
		}

	default: // early, no undo record
		if mc.RT.Full() {
			nack()
			return
		}
		// Create the undo record by reading the current value, then
		// speculatively update memory (§V-A). The read hits the WPQ or
		// the XPBuffer most of the time; otherwise it pays the NVM read
		// latency — the source of ASAP's ~5% PM read increase (§VII-A).
		mc.readCurrent(pkt.Line, func(old mem.Token) {
			if !mc.RT.CreateUndo(pkt.Line, old, pkt.Epoch) {
				// A racing job cannot exist (single-served), but a
				// commit between scheduling and execution cannot
				// either; guard anyway.
				nack()
				return
			}
			mc.st.Inc("totalUndo")
			mc.insertWrite(pkt.Line, pkt.Token, ack)
		})
	}
}

// processCommit deletes the epoch's undo records and replays its delay
// records as freshly arrived flushes (§V-B rules 1 and 2).
func (mc *MC) processCommit(j mcJob, done func()) {
	delays := mc.RT.Commit(j.epoch)
	if DebugLine != 0 {
		for _, d := range delays {
			if d.Line == DebugLine {
				fmt.Printf("[%d] MC%d commit %v replays delay tok=%d mem=%d\n", mc.eng.Now(), mc.ID, j.epoch, d.Token, mc.NVM.Peek(d.Line))
			}
		}
	}
	mc.st.Inc("mcCommits")

	var next func(i int)
	next = func(i int) {
		if i >= len(delays) {
			mc.eng.After(mc.cfg.MsgLat, j.commitDone)
			done()
			return
		}
		d := delays[i]
		if _, hasUndo := mc.RT.Undo(d.Line); hasUndo {
			mc.RT.UpdateUndo(d.Line, d.Token)
			mc.st.Inc("mcWritesSuppressed")
			next(i + 1)
			return
		}
		mc.insertWrite(d.Line, d.Token, func() { next(i + 1) })
	}
	next(0)
}

// readCurrent obtains the newest durable value of a line: a pending WPQ
// write wins, then the XPBuffer, then the NVM media.
func (mc *MC) readCurrent(l mem.Line, k func(mem.Token)) {
	if t, ok := mc.WPQ.Contains(l); ok {
		k(t)
		return
	}
	if t, ok := mc.XP.Lookup(l); ok {
		mc.eng.After(mc.cfg.XPBufHit, func() { k(t) })
		return
	}
	mc.st.Inc("mcUndoMediaReads")
	if mc.trc != nil {
		mc.trc.Instant(mc.track, "undo media read")
	}
	// The controller pipelines media reads: the front-end is occupied for
	// the read-throughput interval, not the full access latency.
	gap := mc.cfg.NVMReadGap
	if gap == 0 {
		gap = mc.cfg.NVMRead
	}
	mc.eng.After(gap, func() {
		t := mc.NVM.Read(l)
		mc.XP.Insert(l, t)
		k(t)
	})
}

// insertWrite places a write in the WPQ, waiting for drain space if full,
// then invokes k. The write is durable (ADR domain) once inserted.
func (mc *MC) insertWrite(l mem.Line, t mem.Token, k func()) {
	if mc.WPQ.Insert(l, t) {
		mc.pumpDrain()
		k()
		return
	}
	mc.st.Inc("mcWpqFullStalls")
	if mc.trc != nil {
		mc.trc.Instant(mc.track, "wpq full")
	}
	mc.wpqWaiters = append(mc.wpqWaiters, func() { mc.insertWrite(l, t, k) })
}

// pumpDrain retires one WPQ entry to NVM every media drain interval (the
// media's write throughput; the 90 ns NVMWrite figure is access latency,
// which the ADR ACK point hides from the critical path).
func (mc *MC) pumpDrain() {
	if mc.draining || mc.WPQ.Len() == 0 {
		return
	}
	gap := mc.cfg.NVMDrainGap
	if gap == 0 {
		gap = mc.cfg.NVMWrite
	}
	mc.draining = true
	mc.eng.After(gap, func() {
		mc.draining = false
		if mc.WPQ.Len() > 0 {
			l, t := mc.WPQ.Pop()
			mc.NVM.Write(l, t)
			mc.XP.Insert(l, t)
		}
		if len(mc.wpqWaiters) > 0 {
			w := mc.wpqWaiters[0]
			mc.wpqWaiters = mc.wpqWaiters[1:]
			w()
		}
		mc.pumpDrain()
	})
}

// CrashFlush performs the ADR power-fail sequence (§V-E): drain the WPQ to
// media, then write every undo record's safe value, unwinding speculative
// updates. Delay records are discarded. The recovery table is left empty,
// as after a restart.
func (mc *MC) CrashFlush() {
	mc.WPQ.Drain(mc.NVM)
	if mc.RT != nil {
		for _, u := range mc.RT.UndoRecords() {
			mc.NVM.Write(u.Line, u.Safe)
		}
		mc.RT.Reset()
	}
}

// DebugLine, when non-zero, makes controllers print every event touching
// that line (test diagnostics only).
var DebugLine mem.Line

// DebugLineFrom converts a raw line number for test diagnostics.
func DebugLineFrom(l uint64) mem.Line { return mem.Line(l) }
