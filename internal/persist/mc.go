package persist

import (
	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/obs"
	"asap/internal/sim"
	"asap/internal/stats"
	"fmt"
)

// mcJob is one unit of controller work: an incoming flush or a commit
// message from an epoch table.
type mcJob struct {
	isCommit bool

	// flush fields. Exactly one of reply (legacy closure form) or replier
	// (typed form, arg passed back verbatim) is set.
	pkt      FlushPacket
	reply    func(FlushResult)
	replier  FlushReplier
	replyArg uint64

	// commit fields. Exactly one of commitDone (legacy closure form) or
	// commitAcker (typed form) is set.
	epoch       EpochID
	commitDone  func()
	commitAcker CommitAcker
}

// CommitAcker receives the controller's commit ACK for an epoch submitted
// via CommitOp — the typed analogue of Commit's done closure, letting the
// per-epoch commit path schedule without allocating.
type CommitAcker interface {
	CommitAck(e EpochID)
}

// FlushReplier receives the controller's ACK/NACK for a flush submitted via
// ReceiveOp. arg is the caller's value from ReceiveOp, typically a persist
// buffer entry ID — the typed analogue of Receive's reply closure, letting
// hot callers avoid a per-flush allocation.
type FlushReplier interface {
	FlushReply(arg uint64, res FlushResult)
}

// Typed-event kinds dispatched through MC.RunEvent.
const (
	mcEvServe     = iota // front-end picks up mc.cur after mcServeCost
	mcEvReply            // deliver the oldest queued reply (MsgLat later)
	mcEvXPRead           // XPBuffer read completes; arg carries the token
	mcEvMediaRead        // NVM media read completes for mc.cur's line
	mcEvDrain            // retire one WPQ entry to media
)

// Continuation codes for insertWrite: what runs once the write is accepted.
const (
	contAck        = iota // ACK the job in service
	contCommitNext        // continue the commit job's delay replay
)

// mcReply is one queued ACK/NACK/commit-done delivery. All replies travel
// at the same MsgLat delay, so a FIFO ring dispatched by typed events
// preserves the exact delivery order the per-reply closures produced.
type mcReply struct {
	replier  FlushReplier
	legacy   func(FlushResult)
	commit   func()
	acker    CommitAcker
	ackEpoch EpochID
	arg      uint64
	res      FlushResult
}

// MC is a memory controller front-end. It owns a WPQ (in the ADR persistence
// domain), the NVM media behind it, an XPBuffer line cache, and — when the
// machine runs an ASAP model — a recovery table plus the NACK Bloom filter.
//
// The controller serves one job at a time (reads for undo-record creation
// serialize with inserts), while an independent drain process retires WPQ
// entries to NVM at the media write latency. A full WPQ back-pressures the
// front-end: the job being served waits for a drain before inserting, and
// jobs behind it queue up.
//
// All steady-state work is scheduled through the engine's typed-event form
// with the controller itself as receiver, and the job/reply queues are
// head-indexed rings, so serving traffic does not allocate.
//
// On a sharded machine every controller lives on the MC timing domain
// (machine.EffectiveShards); domaincheck enforces that CPU-domain
// components reach it only through the Link.
//
//asap:domain mc
type MC struct {
	ID  int
	eng *sim.Engine
	cfg config.Config

	WPQ   *mem.WPQ
	RT    *RecoveryTable // nil for models without speculative persistence
	XP    *mem.XPBuffer
	NVM   *mem.NVM
	Bloom *CountingBloom

	queue   []mcJob // pending jobs; qhead indexes the oldest
	qhead   int
	serving bool
	cur     mcJob // job in service (valid while serving)

	replies []mcReply // in-flight MsgLat replies; rhead indexes the oldest
	rhead   int

	// commit replay progress (valid while serving a commit job)
	delays   []*DelayRecord
	delayIdx int

	// wpq-full retry state. The controller is single-served, so at most one
	// insert can be waiting for drain space at a time.
	wpqWait     bool
	wpqWaitLine mem.Line
	wpqWaitTok  mem.Token
	wpqWaitCont int

	draining bool

	// cross-shard routing, set only on sharded machines: replies leave
	// through the link (which applies MsgLat across the ring) instead of
	// the local reply queue, and LLC-eviction classifications arriving
	// from the CPU domain are counted here and merged after the run.
	cross       *Link
	crossDomain int
	evDelayed   uint64
	evDropped   uint64

	st *stats.Set
	hc mcCounters

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

// mcServeCost is the fixed front-end cost of handling one job (CAM lookup
// plus control), in cycles. Table V reports ~0.4 ns RT access; 4 cycles
// (2 ns) also covers the scheduling overheads.
const mcServeCost sim.Cycles = 4

// NewMC builds a controller. Pass speculative=true to attach a recovery
// table and Bloom filter (ASAP); false gives the plain ADR controller used
// by the baseline, HOPS and eADR models.
func NewMC(id int, eng *sim.Engine, cfg config.Config, speculative bool, st *stats.Set) *MC {
	mc := &MC{
		ID:  id,
		eng: eng,
		cfg: cfg,
		WPQ: mem.NewWPQ(cfg.WPQEntries),
		XP:  mem.NewXPBuffer(cfg.XPBufLines),
		NVM: mem.NewNVM(),
		st:  st,
		hc:  newMCCounters(st),
	}
	if speculative {
		mc.RT = NewRecoveryTable(cfg.RTEntries)
		mc.Bloom = NewCountingBloom(1024, 3)
	}
	return mc
}

// Stats returns the stat set the controller reports into.
func (mc *MC) Stats() *stats.Set { return mc.st }

// AttachTracer wires tr through the controller and its sub-structures: one
// "mc<ID>" track carries job-service spans, flush decision instants, and
// the WPQ/RT/XPBuffer/NVM counters. Call before the simulation starts.
func (mc *MC) AttachTracer(tr obs.Tracer) {
	mc.trc = tr
	mc.track = tr.Track(fmt.Sprintf("mc%d", mc.ID), 100+mc.ID)
	mc.WPQ.AttachTracer(tr, mc.track)
	mc.XP.AttachTracer(tr, mc.track)
	mc.NVM.AttachTracer(tr, mc.track)
	if mc.RT != nil {
		mc.RT.AttachTracer(tr, mc.track)
	}
}

// Receive accepts a flush packet. reply is invoked (after the on-chip
// message latency) with ACK or NACK. Callers model the PB→MC flush latency
// before calling Receive.
func (mc *MC) Receive(pkt FlushPacket, reply func(FlushResult)) {
	mc.enqueueFlush(mcJob{pkt: pkt, reply: reply})
}

// ReceiveOp is the typed form of Receive: the result is delivered through
// rp.FlushReply(arg, res) instead of a per-flush closure.
func (mc *MC) ReceiveOp(pkt FlushPacket, rp FlushReplier, arg uint64) {
	mc.enqueueFlush(mcJob{pkt: pkt, replier: rp, replyArg: arg})
}

func (mc *MC) enqueueFlush(j mcJob) {
	if j.pkt.Early {
		mc.hc.earlyFlushes.Inc()
	} else {
		mc.hc.safeFlushes.Inc()
	}
	mc.queue = append(mc.queue, j) //asaplint:ignore alloccheck job queue reaches steady-state capacity, then appends reuse it
	mc.serve()
}

// Commit accepts an epoch-commit message from an epoch table; done is the
// ACK, invoked after the table has been cleaned and any delay records
// processed (§V-C).
func (mc *MC) Commit(e EpochID, done func()) {
	mc.queue = append(mc.queue, mcJob{isCommit: true, epoch: e, commitDone: done})
	mc.serve()
}

// CommitOp is the typed form of Commit: the ACK is delivered through
// acker.CommitAck(e) instead of a per-commit closure.
func (mc *MC) CommitOp(e EpochID, acker CommitAcker) {
	mc.queue = append(mc.queue, mcJob{isCommit: true, epoch: e, commitAcker: acker}) //asaplint:ignore alloccheck job queue reaches steady-state capacity, then appends reuse it
	mc.serve()
}

// QueueLen reports front-end jobs waiting to be served (for tests).
func (mc *MC) QueueLen() int { return len(mc.queue) - mc.qhead }

// Idle reports whether the controller has no queued work, no job in
// service, and an empty WPQ.
func (mc *MC) Idle() bool {
	return !mc.serving && mc.QueueLen() == 0 && mc.WPQ.Len() == 0
}

func (mc *MC) serve() {
	if mc.serving || mc.qhead == len(mc.queue) {
		return
	}
	mc.serving = true
	mc.cur = mc.queue[mc.qhead]
	mc.queue[mc.qhead] = mcJob{} // release the closures for collection
	mc.qhead++
	if mc.qhead == len(mc.queue) {
		mc.queue = mc.queue[:0]
		mc.qhead = 0
	}
	mc.eng.AfterOp(mcServeCost, mc, mcEvServe, 0)
}

// RunEvent dispatches the controller's typed events.
//
//asap:hot the memory controller's entire service loop runs in here
func (mc *MC) RunEvent(kind int, arg uint64) {
	switch kind {
	case mcEvServe:
		if mc.trc != nil {
			mc.trc.Begin(mc.track, jobName(mc.cur))
		}
		if mc.cur.isCommit {
			mc.processCommit()
		} else {
			mc.processFlush()
		}
	case mcEvReply:
		r := mc.replies[mc.rhead]
		mc.replies[mc.rhead] = mcReply{}
		mc.rhead++
		if mc.rhead == len(mc.replies) {
			mc.replies = mc.replies[:0]
			mc.rhead = 0
		}
		switch {
		case r.acker != nil:
			// Serial path only: on a sharded machine sendReply routed this
			// reply through the Link before it could reach the local queue.
			r.acker.CommitAck(r.ackEpoch) //asaplint:ignore domaincheck serial engine delivery; sharded replies cross the ring in sendReply
		case r.commit != nil:
			r.commit() //asaplint:ignore alloccheck legacy closure-form reply, used only by package tests; models use the typed repliers
		case r.replier != nil:
			r.replier.FlushReply(r.arg, r.res)
		default:
			r.legacy(r.res) //asaplint:ignore alloccheck legacy closure-form reply, used only by package tests; models use the typed repliers
		}
	case mcEvXPRead:
		mc.readDone(mem.Token(arg))
	case mcEvMediaRead:
		l := mc.cur.pkt.Line
		t := mc.NVM.Read(l)
		mc.XP.Insert(l, t)
		mc.readDone(t)
	case mcEvDrain:
		mc.drainOne()
	default:
		panic("persist: unknown MC event kind")
	}
}

// finishJob ends the service span of mc.cur and picks up the next job.
func (mc *MC) finishJob() {
	if mc.trc != nil {
		mc.trc.End(mc.track)
	}
	mc.serving = false
	mc.cur = mcJob{} // release the job's closures; also keeps idle controllers checkpointable
	mc.serve()
}

// setCrossLink points the controller's reply path at the sharded link.
func (mc *MC) setCrossLink(l *Link, domain int) {
	mc.cross = l
	mc.crossDomain = domain
}

// classifyEviction counts a dropped persistent LLC eviction against the
// Bloom filter — the sharded form of the machine's in-place check; the
// machine folds the two counters into its stats after the run.
func (mc *MC) classifyEviction(l mem.Line) {
	if mc.Bloom != nil && mc.Bloom.MaybeContains(l) {
		mc.evDelayed++
	} else {
		mc.evDropped++
	}
}

// EvictionCounts reports the sharded-mode eviction classifications.
func (mc *MC) EvictionCounts() (delayed, dropped uint64) {
	return mc.evDelayed, mc.evDropped
}

// sendReply queues r for delivery MsgLat cycles from now. On a sharded
// machine every reply targets the CPU domain, so the reply crosses the
// link with the same MsgLat applied to the ring stamp instead.
func (mc *MC) sendReply(r mcReply) {
	if mc.cross != nil {
		mc.cross.replyFromMC(mc, r)
		return
	}
	mc.replies = append(mc.replies, r) //asaplint:ignore alloccheck reply ring: head compaction keeps it at steady-state capacity
	mc.eng.AfterOp(mc.cfg.MsgLat, mc, mcEvReply, 0)
}

// ack ACKs the flush in service and moves on.
func (mc *MC) ack() {
	j := &mc.cur
	mc.sendReply(mcReply{replier: j.replier, legacy: j.reply, arg: j.replyArg, res: FlushAck})
	mc.finishJob()
}

// nack NACKs the flush in service and moves on.
func (mc *MC) nack() {
	j := &mc.cur
	mc.hc.nacks.Inc()
	if mc.trc != nil {
		mc.trc.Instant(mc.track, "nack")
	}
	if mc.Bloom != nil {
		mc.Bloom.Add(j.pkt.Line)
	}
	mc.sendReply(mcReply{replier: j.replier, legacy: j.reply, arg: j.replyArg, res: FlushNack})
	mc.finishJob()
}

// debugFlush prints one flush's recovery-table and media state; test
// diagnostics behind the DebugLine gate.
func (mc *MC) debugFlush(pkt FlushPacket) {
	u, hu := mc.RT.Undo(pkt.Line)
	fmt.Printf("[%d] MC%d flush tok=%d epoch=%v early=%v hasUndo=%v undo=%+v mem=%d\n",
		mc.eng.Now(), mc.ID, pkt.Token, pkt.Epoch, pkt.Early, hu, u, mc.NVM.Peek(pkt.Line))
}

// debugCommitDelays prints the delay records a commit replays; test
// diagnostics behind the DebugLine gate.
func (mc *MC) debugCommitDelays() {
	for _, d := range mc.delays {
		if d.Line == DebugLine {
			fmt.Printf("[%d] MC%d commit %v replays delay tok=%d mem=%d\n", mc.eng.Now(), mc.ID, mc.cur.epoch, d.Token, mc.NVM.Peek(d.Line))
		}
	}
}

// jobName labels a controller job's service span in the trace.
func jobName(j mcJob) string {
	switch {
	case j.isCommit:
		return "commit"
	case j.pkt.Early:
		return "early flush"
	default:
		return "safe flush"
	}
}

// processFlush applies Table I to the flush in service.
func (mc *MC) processFlush() {
	pkt := mc.cur.pkt
	if DebugLine != 0 && pkt.Line == DebugLine && mc.RT != nil {
		mc.debugFlush(pkt) //asaplint:ignore alloccheck test-only diagnostics behind the DebugLine gate, never on a measured run
	}

	if mc.RT == nil {
		// Plain ADR controller: every flush is a memory write.
		mc.insertWrite(pkt.Line, pkt.Token, contAck)
		return
	}

	// If this epoch already has a delayed write for the line, the incoming
	// flush — early or safe — must coalesce into the delay record: the
	// record is replayed at the epoch's commit, so it must carry the
	// epoch's newest value for the line. Letting the flush take any other
	// path would leave a stale delayed value to clobber memory at commit
	// (same-line writes of one thread arrive in program order, so the
	// incoming value is always the newer one).
	if mc.RT.HasDelay(pkt.Line, pkt.Epoch) {
		mc.RT.CreateDelay(pkt.Line, pkt.Token, pkt.Epoch)
		mc.hc.delayCoalesced.Inc()
		mc.ack()
		return
	}

	undo, hasUndo := mc.RT.Undo(pkt.Line)
	switch {
	case !pkt.Early && !hasUndo:
		// Safe flush, no record: the normal path.
		mc.insertWrite(pkt.Line, pkt.Token, contAck)

	case !pkt.Early && hasUndo && undo.Creator == pkt.Epoch:
		// Safe flush finding an undo record its *own epoch* created:
		// the speculative value in memory is an older write of this
		// epoch (a same-line predecessor that issued early before the
		// epoch turned safe), so the incoming value is the newest for
		// the line and goes straight to memory. The undo record keeps
		// the pre-epoch safe state for rollback. Without this case the
		// newer write would be stashed in the undo record and deleted
		// at commit.
		mc.insertWrite(pkt.Line, pkt.Token, contAck)

	case !pkt.Early && hasUndo:
		// Safe flush, record from another epoch: memory already holds
		// a newer speculative value (the undo creator wrote after this
		// flush in coherence order, or this is a NACK-retried older
		// write). The incoming value becomes the recorded safe state;
		// the memory write is suppressed.
		mc.RT.UpdateUndo(pkt.Line, pkt.Token)
		mc.hc.writesSuppressed.Inc()
		mc.ack()

	case pkt.Early && hasUndo:
		// Early flush, record present: delay it until its epoch commits.
		if mc.RT.CreateDelay(pkt.Line, pkt.Token, pkt.Epoch) {
			mc.ack()
		} else {
			mc.nack()
		}

	default: // early, no undo record
		if mc.RT.Full() {
			mc.nack()
			return
		}
		// Create the undo record by reading the current value, then
		// speculatively update memory (§V-A). The read hits the WPQ or
		// the XPBuffer most of the time; otherwise it pays the NVM read
		// latency — the source of ASAP's ~5% PM read increase (§VII-A).
		mc.readCurrent(pkt.Line)
	}
}

// readDone resumes the early-no-undo flush path once the line's current
// durable value is known.
func (mc *MC) readDone(old mem.Token) {
	pkt := mc.cur.pkt
	if !mc.RT.CreateUndo(pkt.Line, old, pkt.Epoch) {
		// A racing job cannot exist (single-served), but a
		// commit between scheduling and execution cannot
		// either; guard anyway.
		mc.nack()
		return
	}
	mc.hc.totalUndo.Inc()
	mc.insertWrite(pkt.Line, pkt.Token, contAck)
}

// processCommit deletes the epoch's undo records and replays its delay
// records as freshly arrived flushes (§V-B rules 1 and 2).
func (mc *MC) processCommit() {
	mc.delays = mc.RT.Commit(mc.cur.epoch)
	mc.delayIdx = 0
	if DebugLine != 0 {
		mc.debugCommitDelays() //asaplint:ignore alloccheck test-only diagnostics behind the DebugLine gate, never on a measured run
	}
	mc.hc.commits.Inc()
	mc.commitNext()
}

// commitNext replays delay records one WPQ insert at a time; suppressed
// replays (line has a newer undo record) are absorbed in place.
func (mc *MC) commitNext() {
	for {
		if mc.delayIdx >= len(mc.delays) {
			if mc.delays != nil {
				mc.RT.RecycleDelays(mc.delays)
			}
			mc.delays = nil
			mc.sendReply(mcReply{commit: mc.cur.commitDone,
				acker: mc.cur.commitAcker, ackEpoch: mc.cur.epoch})
			mc.finishJob()
			return
		}
		d := mc.delays[mc.delayIdx]
		mc.delayIdx++
		if _, hasUndo := mc.RT.Undo(d.Line); hasUndo {
			mc.RT.UpdateUndo(d.Line, d.Token)
			mc.hc.writesSuppressed.Inc()
			continue
		}
		mc.insertWrite(d.Line, d.Token, contCommitNext)
		return
	}
}

// runCont resumes the job in service after an accepted WPQ insert.
func (mc *MC) runCont(cont int) {
	switch cont {
	case contAck:
		mc.ack()
	case contCommitNext:
		mc.commitNext()
	default:
		panic("persist: unknown MC insert continuation")
	}
}

// readCurrent obtains the newest durable value of the serving flush's line:
// a pending WPQ write wins, then the XPBuffer, then the NVM media. The
// result arrives at readDone.
func (mc *MC) readCurrent(l mem.Line) {
	if t, ok := mc.WPQ.Contains(l); ok {
		mc.readDone(t)
		return
	}
	if t, ok := mc.XP.Lookup(l); ok {
		mc.eng.AfterOp(mc.cfg.XPBufHit, mc, mcEvXPRead, uint64(t))
		return
	}
	mc.hc.undoMediaReads.Inc()
	if mc.trc != nil {
		mc.trc.Instant(mc.track, "undo media read")
	}
	// The controller pipelines media reads: the front-end is occupied for
	// the read-throughput interval, not the full access latency.
	gap := mc.cfg.NVMReadGap
	if gap == 0 {
		gap = mc.cfg.NVMRead
	}
	mc.eng.AfterOp(gap, mc, mcEvMediaRead, 0)
}

// insertWrite places a write in the WPQ, waiting for drain space if full,
// then resumes via cont. The write is durable (ADR domain) once inserted.
func (mc *MC) insertWrite(l mem.Line, t mem.Token, cont int) {
	if mc.WPQ.Insert(l, t) {
		mc.pumpDrain()
		mc.runCont(cont)
		return
	}
	mc.hc.wpqFullStalls.Inc()
	if mc.trc != nil {
		mc.trc.Instant(mc.track, "wpq full")
	}
	if mc.wpqWait {
		panic("persist: overlapping WPQ waits on a single-served controller")
	}
	mc.wpqWait = true
	mc.wpqWaitLine = l
	mc.wpqWaitTok = t
	mc.wpqWaitCont = cont
}

// pumpDrain retires one WPQ entry to NVM every media drain interval (the
// media's write throughput; the 90 ns NVMWrite figure is access latency,
// which the ADR ACK point hides from the critical path).
func (mc *MC) pumpDrain() {
	if mc.draining || mc.WPQ.Len() == 0 {
		return
	}
	gap := mc.cfg.NVMDrainGap
	if gap == 0 {
		gap = mc.cfg.NVMWrite
	}
	mc.draining = true
	mc.eng.AfterOp(gap, mc, mcEvDrain, 0)
}

// drainOne is the mcEvDrain handler: retire one entry, wake a stalled
// insert, and re-arm.
func (mc *MC) drainOne() {
	mc.draining = false
	if mc.WPQ.Len() > 0 {
		l, t := mc.WPQ.Pop()
		mc.NVM.Write(l, t)
		mc.XP.Insert(l, t)
	}
	if mc.wpqWait {
		mc.wpqWait = false
		mc.insertWrite(mc.wpqWaitLine, mc.wpqWaitTok, mc.wpqWaitCont)
	}
	mc.pumpDrain()
}

// CrashFlush performs the ADR power-fail sequence (§V-E): drain the WPQ to
// media, then write every undo record's safe value, unwinding speculative
// updates. Delay records are discarded. The recovery table is left empty,
// as after a restart.
func (mc *MC) CrashFlush() {
	mc.WPQ.Drain(mc.NVM)
	if mc.RT != nil {
		for _, u := range mc.RT.UndoRecords() {
			mc.NVM.Write(u.Line, u.Safe)
		}
		mc.RT.Reset()
	}
}

// DebugLine, when non-zero, makes controllers print every event touching
// that line (test diagnostics only).
var DebugLine mem.Line

// DebugLineFrom converts a raw line number for test diagnostics.
func DebugLineFrom(l uint64) mem.Line { return mem.Line(l) }
