package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"asap/internal/runspec"
)

// sseEvent frames one Server-Sent Event. data must be a single line
// (all payloads here are compact JSON).
func sseEvent(w http.ResponseWriter, event string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// progressEvent is the SSE "progress" payload.
type progressEvent struct {
	ID string `json:"id"`
	ProgressJSON
}

// doneEvent is the SSE terminal payload ("done" or "error").
type doneEvent struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// handleEvents streams live progress for a run as Server-Sent Events:
// an immediate "progress" snapshot on connect, another every
// ProgressInterval, and a terminal "done" (or "error") event when the
// run completes, after which the stream closes. A run already in the
// store gets the terminal event straight away, so a client that raced
// completion still terminates cleanly instead of 404ing.
//
// The snapshots read the run's obs.Progress seqlock, published by the
// machine's periodic sampler — streaming costs the simulation nothing
// beyond the sampler work it already does.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("id")
	if !runspec.ValidHash(hash) {
		jsonError(w, http.StatusBadRequest, "malformed run id %q (want %d hex chars)", hash, runspec.HashLen)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		jsonError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}

	terminal := func(ev doneEvent) {
		name := "done"
		if ev.Error != "" {
			name = "error"
		}
		b, _ := json.Marshal(ev)
		sseEvent(w, name, b)
		fl.Flush()
	}
	stream := func() {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Asap-Run", hash)
		w.WriteHeader(http.StatusOK)
	}

	if _, ok, err := s.store.Get(hash); err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	} else if ok {
		stream()
		terminal(doneEvent{ID: hash, Status: "complete"})
		return
	}

	s.mu.Lock()
	ru := s.runs[hash]
	s.mu.Unlock()
	if ru == nil {
		jsonError(w, http.StatusNotFound, "no run %s (submit its spec to POST /v1/runs)", hash)
		return
	}

	stream()
	emit := func() {
		ev := progressEvent{ID: hash, ProgressJSON: progressJSON(ru.progress.Snapshot())}
		b, _ := json.Marshal(ev)
		sseEvent(w, "progress", b)
		fl.Flush()
	}
	emit()

	tick := time.NewTicker(s.progressInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ru.done:
			// Final snapshot, then the terminal event: the last progress
			// the client saw matches the completed run.
			if ru.err != nil {
				terminal(doneEvent{ID: hash, Status: "failed", Error: ru.err.Error()})
				return
			}
			emit()
			terminal(doneEvent{ID: hash, Status: "complete"})
			return
		case <-tick.C:
			emit()
		}
	}
}
