package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"asap/internal/stats"
)

// Per-run span distributions, recorded into the server's aggregate Set
// and rendered by /metrics alongside the simulator vocabulary. Millis
// for the coarse spans, micros for the fast ones: the registry stores
// integers, so the unit is chosen to keep one tick meaningful.
var (
	_ = stats.RegisterDist("runQueueWaitMillis", "per-run wall milliseconds between admission and simulation start")
	_ = stats.RegisterDist("runSimulateMillis", "per-run wall milliseconds spent simulating")
	_ = stats.RegisterDist("runEncodeMicros", "per-run wall microseconds spent encoding the result envelope")
	_ = stats.RegisterDist("runStoreMicros", "per-run wall microseconds spent persisting the envelope")
)

// recordSpans files one run's span breakdown into the aggregate set.
// Zero encode/store spans (failed runs never encode; failed stores are
// not timings) are skipped rather than recorded as instant successes.
func (s *Server) recordSpans(queueWait, simulate, encode, store time.Duration) {
	s.aggMu.Lock()
	defer s.aggMu.Unlock()
	s.agg.Observe("runQueueWaitMillis", uint64(queueWait.Milliseconds()))
	s.agg.Observe("runSimulateMillis", uint64(simulate.Milliseconds()))
	if encode > 0 {
		s.agg.Observe("runEncodeMicros", uint64(encode.Microseconds()))
	}
	if store > 0 {
		s.agg.Observe("runStoreMicros", uint64(store.Microseconds()))
	}
}

// durationBuckets are the request-latency histogram bounds in seconds.
// Requests span four orders of magnitude — a healthz probe is tens of
// microseconds, a blocking publication-scale submit tens of seconds — so
// the buckets are log-spaced rather than many and linear.
var durationBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// httpMetrics accumulates per-route request counters and latency
// histograms for the middleware. A plain mutex over small maps: the
// per-request cost is dwarfed by request handling itself, and rendering
// under the same lock gives scrapes a consistent view.
type httpMetrics struct {
	mu       sync.Mutex
	requests map[requestKey]uint64
	latency  map[routeKey]*latencyHist
}

type requestKey struct {
	method string
	route  string
	code   int
}

type routeKey struct {
	method string
	route  string
}

type latencyHist struct {
	buckets []uint64 // len(durationBuckets)+1; last bucket is +Inf
	count   uint64
	sum     float64 // seconds
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{
		requests: make(map[requestKey]uint64),
		latency:  make(map[routeKey]*latencyHist),
	}
}

func (m *httpMetrics) record(method, route string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[requestKey{method, route, code}]++
	h := m.latency[routeKey{method, route}]
	if h == nil {
		h = &latencyHist{buckets: make([]uint64, len(durationBuckets)+1)}
		m.latency[routeKey{method, route}] = h
	}
	i := 0
	for i < len(durationBuckets) && secs > durationBuckets[i] {
		i++
	}
	h.buckets[i]++
	h.count++
	h.sum += secs
}

// writeProm renders the request counters and latency histograms in
// sorted key order (scrape-to-scrape stable for an unchanged server).
func (m *httpMetrics) writeProm(w *bytes.Buffer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP asapd_requests_total HTTP requests served, by method, route pattern, and status code\n")
	fmt.Fprintf(w, "# TYPE asapd_requests_total counter\n")
	rks := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		rks = append(rks, k)
	}
	sort.Slice(rks, func(i, j int) bool {
		a, b := rks[i], rks[j]
		if a.route != b.route {
			return a.route < b.route
		}
		if a.method != b.method {
			return a.method < b.method
		}
		return a.code < b.code
	})
	for _, k := range rks {
		fmt.Fprintf(w, "asapd_requests_total{method=%q,route=%q,code=\"%d\"} %d\n", k.method, k.route, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP asapd_request_duration_seconds HTTP request latency, by method and route pattern\n")
	fmt.Fprintf(w, "# TYPE asapd_request_duration_seconds histogram\n")
	lks := make([]routeKey, 0, len(m.latency))
	for k := range m.latency {
		lks = append(lks, k)
	}
	sort.Slice(lks, func(i, j int) bool {
		a, b := lks[i], lks[j]
		if a.route != b.route {
			return a.route < b.route
		}
		return a.method < b.method
	})
	for _, k := range lks {
		h := m.latency[k]
		cum := uint64(0)
		for i, ub := range durationBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(w, "asapd_request_duration_seconds_bucket{method=%q,route=%q,le=%q} %d\n",
				k.method, k.route, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		cum += h.buckets[len(durationBuckets)]
		fmt.Fprintf(w, "asapd_request_duration_seconds_bucket{method=%q,route=%q,le=\"+Inf\"} %d\n", k.method, k.route, cum)
		fmt.Fprintf(w, "asapd_request_duration_seconds_sum{method=%q,route=%q} %s\n",
			k.method, k.route, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(w, "asapd_request_duration_seconds_count{method=%q,route=%q} %d\n", k.method, k.route, h.count)
	}
}

// handleMetrics renders the Prometheus text-format exposition: server
// lifecycle counters and gauges (asapd_*), the request metrics from the
// middleware, and — under the asap_ prefix — the complete registered
// stats vocabulary aggregated across every executed run, spans included.
// The whole page is assembled in a buffer and written at once so a
// scrape racing a completing run still reads one consistent snapshot per
// section. Scrapes do not count themselves (see instrument), so an idle
// server exposes byte-identical pages.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, err := s.store.Len()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	runs, cycles := s.h.Perf()
	s.mu.Lock()
	inflightRuns := len(s.runs)
	s.mu.Unlock()

	var b bytes.Buffer
	stats.WriteCounterProm(&b, "asapd_submitted", "RunSpecs accepted by POST /v1/runs", u64(s.submitted.Load()))
	stats.WriteCounterProm(&b, "asapd_cache_hits", "submissions answered from the content-addressed store", u64(s.cacheHits.Load()))
	stats.WriteCounterProm(&b, "asapd_cache_misses", "submissions that triggered a new simulation", u64(s.misses.Load()))
	stats.WriteCounterProm(&b, "asapd_inflight_joins", "submissions that joined an already-running simulation", u64(s.inflight.Load()))
	stats.WriteCounterProm(&b, "asapd_failures", "simulations that returned an error", u64(s.failures.Load()))
	stats.WriteCounterProm(&b, "asapd_store_errors", "result-store writes that failed", u64(s.storeErrors.Load()))
	stats.WriteCounterProm(&b, "asapd_runs_executed", "simulations executed by the harness engine", uint64(runs))
	stats.WriteCounterProm(&b, "asapd_simulated_cycles", "simulated cycles accumulated across executed runs", cycles)
	stats.WriteGaugeProm(&b, "asapd_store_entries", "envelopes in the content-addressed store", float64(entries))
	stats.WriteGaugeProm(&b, "asapd_inflight_runs", "runs currently tracked as executing", float64(inflightRuns))
	stats.WriteGaugeProm(&b, "asapd_workers", "harness worker-pool size", float64(s.h.Parallelism()))
	s.httpm.writeProm(&b)
	s.aggMu.Lock()
	stats.WriteProm(&b, "asap_", s.agg)
	s.aggMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b.Bytes())
}

// u64 clamps a server counter (monotonic, but typed int64 for atomics)
// for exposition.
func u64(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}
