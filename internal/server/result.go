package server

import (
	"encoding/json"
	"fmt"

	"asap/internal/machine"
	"asap/internal/stats"
)

// Envelope is the stored and served form of one completed run: the
// canonical spec it answers, its content address, and the result. The
// encoded bytes are written to the store once and served verbatim ever
// after, so responses for one spec are byte-identical across requests,
// restarts, and (by simulator determinism) across machines.
type Envelope struct {
	Hash   string          `json:"hash"`
	Spec   json.RawMessage `json:"spec"` // canonical bytes, embedded as-is
	Result ResultJSON      `json:"result"`
}

// ResultJSON mirrors machine.Result in a serializable shape: stats and
// distributions become name-sorted snapshot slices (deterministic
// order), cycles stay plain integers.
type ResultJSON struct {
	Model     string               `json:"model"`
	Cycles    uint64               `json:"cycles"`
	PerCore   []uint64             `json:"perCore"`
	PMWrites  uint64               `json:"pmWrites"`
	PMReads   uint64               `json:"pmReads"`
	RTMaxOcc  int                  `json:"rtMaxOcc"`
	WPQMaxOcc int                  `json:"wpqMaxOcc"`
	Crashed   bool                 `json:"crashed,omitempty"`
	Stats     []stats.CounterValue `json:"stats"`
	Dists     []stats.DistValue    `json:"dists,omitempty"`
}

// encodeEnvelope renders the envelope for one completed run. The output
// ends in a newline and is indented for curl-friendliness; it is still
// deterministic (every slice is name-sorted, encoding/json is stable).
func encodeEnvelope(hash string, canonicalSpec []byte, r machine.Result) ([]byte, error) {
	env := Envelope{
		Hash: hash,
		Spec: json.RawMessage(canonicalSpec),
		Result: ResultJSON{
			Model:     r.ModelName,
			Cycles:    r.Cycles,
			PerCore:   r.PerCore,
			PMWrites:  r.PMWrites,
			PMReads:   r.PMReads,
			RTMaxOcc:  r.RTMaxOcc,
			WPQMaxOcc: r.WPQMaxOcc,
			Crashed:   r.Crashed,
			Stats:     r.Stats.CounterValues(),
			Dists:     r.Stats.DistValues(),
		},
	}
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("server: encode result: %w", err)
	}
	return append(b, '\n'), nil
}
