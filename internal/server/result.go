package server

import (
	"encoding/json"
	"fmt"

	"asap/internal/machine"
	"asap/internal/stats"
)

// Envelope is the stored and served form of one completed run: the
// canonical spec it answers, its content address, the result, and the
// span timings of the execution that produced it. The encoded bytes are
// written to the store once and served verbatim ever after, so responses
// for one spec are byte-identical across requests and restarts. The
// result block itself is deterministic (simulator determinism); only the
// timing block records wall clock, and it records the one execution that
// filled the store.
type Envelope struct {
	Hash   string          `json:"hash"`
	Spec   json.RawMessage `json:"spec"` // canonical bytes, embedded as-is
	Result ResultJSON      `json:"result"`
	Timing *TimingJSON     `json:"timing,omitempty"`
}

// TimingJSON is the per-run span breakdown measured by the server when
// it executed the run: wall time queued behind the worker pool, wall
// time simulating, and wall time encoding this envelope. Store time is
// excluded by construction — the envelope bytes are final before the
// store write begins — and lives in the metrics registry instead.
type TimingJSON struct {
	QueueWaitNS int64 `json:"queueWaitNs"`
	SimulateNS  int64 `json:"simulateNs"`
	EncodeNS    int64 `json:"encodeNs"`
}

// ResultJSON mirrors machine.Result in a serializable shape: stats and
// distributions become name-sorted snapshot slices (deterministic
// order), cycles stay plain integers.
type ResultJSON struct {
	Model     string               `json:"model"`
	Cycles    uint64               `json:"cycles"`
	PerCore   []uint64             `json:"perCore"`
	PMWrites  uint64               `json:"pmWrites"`
	PMReads   uint64               `json:"pmReads"`
	RTMaxOcc  int                  `json:"rtMaxOcc"`
	WPQMaxOcc int                  `json:"wpqMaxOcc"`
	Crashed   bool                 `json:"crashed,omitempty"`
	Stats     []stats.CounterValue `json:"stats"`
	Dists     []stats.DistValue    `json:"dists,omitempty"`
}

// encodeEnvelope renders the envelope for one completed run (timing may
// be nil). The output ends in a newline and is indented for
// curl-friendliness; it is still deterministic for fixed inputs (every
// slice is name-sorted, encoding/json is stable).
func encodeEnvelope(hash string, canonicalSpec []byte, r machine.Result, timing *TimingJSON) ([]byte, error) {
	env := Envelope{
		Hash: hash,
		Spec: json.RawMessage(canonicalSpec),
		Result: ResultJSON{
			Model:     r.ModelName,
			Cycles:    r.Cycles,
			PerCore:   r.PerCore,
			PMWrites:  r.PMWrites,
			PMReads:   r.PMReads,
			RTMaxOcc:  r.RTMaxOcc,
			WPQMaxOcc: r.WPQMaxOcc,
			Crashed:   r.Crashed,
			Stats:     r.Stats.CounterValues(),
			Dists:     r.Stats.DistValues(),
		},
		Timing: timing,
	}
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("server: encode result: %w", err)
	}
	return append(b, '\n'), nil
}
