package server

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testHash = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(testHash); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v, want miss", ok, err)
	}
	body := []byte(`{"hash":"x"}` + "\n")
	if err := st.Put(testHash, body); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(testHash)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, want %q", got, body)
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v, want 1", n, err)
	}
}

func TestStorePutExistingIsNoOp(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := []byte("first\n")
	if err := st.Put(testHash, first); err != nil {
		t.Fatal(err)
	}
	// A second Put must not clobber the entry: first write wins.
	if err := st.Put(testHash, []byte("second\n")); err != nil {
		t.Fatal(err)
	}
	got, _, err := st.Get(testHash)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, first) {
		t.Fatalf("second Put overwrote entry: got %q", got)
	}
}

func TestStoreRejectsBadHashes(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{
		"",
		"short",
		strings.Repeat("g", 64),                // non-hex
		strings.ToUpper(testHash),              // wrong case
		"../../etc/passwd\x00" + testHash[:46], // traversal attempt
		testHash + "00",                        // too long
	} {
		if err := st.Put(h, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed hash", h)
		}
		if _, _, err := st.Get(h); err == nil {
			t.Errorf("Get(%q) accepted a malformed hash", h)
		}
	}
}

func TestStoreLenIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(testHash, []byte("x\n")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crashed writer's leftover temp file.
	tmp := filepath.Join(dir, testHash[:2], "."+testHash+".tmp1234")
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v, want 1 (temp files must not count)", n, err)
	}
}
