// Package server implements asapd: a long-running HTTP/JSON simulation
// service over the experiment harness.
//
// Every simulation is a pure function of its runspec.RunSpec, so the
// service is a cache hierarchy over that key:
//
//  1. the content-addressed on-disk Store (survives restarts, shareable
//     between daemons pointed at one directory),
//  2. the harness engine's in-memory singleflight cache, which also
//     dedupes identical in-flight requests — N clients submitting one
//     spec cost one simulation,
//  3. an actual run on the harness worker pool, bounded by Parallel.
//
// Completed results are encoded once (Envelope) and served verbatim ever
// after: responses for one spec are byte-identical across requests and
// restarts, with the X-Asap-Cache header distinguishing hit, miss, and
// inflight (joined a running simulation). Progress of in-flight runs
// streams out of the machine's periodic sampler through an obs.Progress
// snapshot, polled by the status endpoint and pushed by the SSE stream.
//
// The service is observable end to end: every request is logged as one
// structured slog line (method, route, status, duration, run hash, cache
// disposition) and counted into per-route request counters and latency
// histograms; run lifecycle events (admitted, started, finished, stored)
// carry the RunSpec hash; and GET /metrics exposes it all — server
// counters, request histograms, per-run span timings, and the aggregate
// simulator stats vocabulary — in Prometheus text format.
//
// Endpoints:
//
//	POST /v1/runs               submit a RunSpec; result, or 202 + id with ?async=1
//	GET  /v1/runs/{id}          status (with progress snapshot) or result by content address
//	GET  /v1/runs/{id}/events   Server-Sent Events progress stream for an in-flight run
//	GET  /v1/healthz            liveness
//	GET  /v1/stats              server counters + the stats registry vocabulary
//	GET  /metrics               Prometheus text-format exposition
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"asap/internal/harness"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/obs"
	"asap/internal/runspec"
	"asap/internal/stats"
	"asap/internal/workload"
)

// Options configures a Server.
type Options struct {
	// StoreDir roots the content-addressed result store. Required.
	StoreDir string
	// Parallel bounds concurrently executing simulations (0 = GOMAXPROCS).
	Parallel int
	// MaxTotalOps caps Threads*OpsPerThread per request (0 = 1<<20).
	// Publication scale is 4*400; the cap is a guard against requests
	// whose simulation would hold a worker for hours, not a security
	// boundary.
	MaxTotalOps int
	// MaxCores caps Config.Cores per request (0 = 256): per-core
	// structures are allocated eagerly, so an absurd core count is
	// rejected rather than materialized.
	MaxCores int
	// Logger receives one structured record per request and per
	// run-lifecycle event (admitted, started, finished, stored). Nil
	// discards. All server output flows through this one logger, so log
	// ordering under concurrent runs is whatever the handler serializes —
	// there is no second unsynchronized path.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when set.
	Pprof bool
	// ProgressInterval paces the SSE progress stream (and bounds how
	// stale a pushed snapshot can be). 0 = 250ms.
	ProgressInterval time.Duration
}

// run tracks one submitted spec from acceptance to completion.
type run struct {
	spec     runspec.RunSpec
	canon    []byte // canonical spec bytes
	hash     string
	progress *obs.Progress

	// Span anchors. admitted is set when the run entry is created;
	// started is set by the harness Observe hook, which fires on the
	// leader's execute goroutine after machine construction and before
	// Run — so both are written before ru.done closes and the only
	// cross-goroutine reads happen after it.
	admitted time.Time
	started  time.Time

	done chan struct{} // closed when body/err are final
	body []byte        // stored envelope bytes on success
	err  error
}

// Server is the asapd request handler. Create with New, mount Handler.
type Server struct {
	h                *harness.Harness
	store            *Store
	log              *slog.Logger
	maxTotalOps      int
	maxCores         int
	pprof            bool
	progressInterval time.Duration
	httpm            *httpMetrics

	mu   sync.Mutex
	runs map[string]*run // in-flight and failed runs by hash

	// agg aggregates simulator stats across every executed run plus the
	// per-run span distributions (runQueueWaitMillis etc.), for the
	// /metrics exposition. Guarded by aggMu: runs complete on worker
	// goroutines while scrapes read concurrently.
	aggMu sync.Mutex
	agg   *stats.Set

	submitted   atomic.Int64 // POST /v1/runs requests accepted
	cacheHits   atomic.Int64 // answered from the store
	inflight    atomic.Int64 // joined a run already executing
	misses      atomic.Int64 // triggered a new simulation
	failures    atomic.Int64 // simulations that returned an error
	storeErrors atomic.Int64 // store writes that failed (results still served)
}

// discardHandler is the nil-Logger default: disabled at the Enabled
// gate, so discarded records cost no attribute materialization.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// New builds a server over a fresh harness. The harness runs in
// KeepGoing mode — a failed spec stays failed under its own hash but
// never poisons unrelated requests — and the server's Observe hook
// attaches a progress sink to every leader simulation.
func New(o Options) (*Server, error) {
	st, err := OpenStore(o.StoreDir)
	if err != nil {
		return nil, err
	}
	if o.MaxTotalOps == 0 {
		o.MaxTotalOps = 1 << 20
	}
	if o.MaxCores == 0 {
		o.MaxCores = 256
	}
	if o.Logger == nil {
		o.Logger = slog.New(discardHandler{})
	}
	if o.ProgressInterval == 0 {
		o.ProgressInterval = 250 * time.Millisecond
	}
	s := &Server{
		store:            st,
		log:              o.Logger,
		maxTotalOps:      o.MaxTotalOps,
		maxCores:         o.MaxCores,
		pprof:            o.Pprof,
		progressInterval: o.ProgressInterval,
		httpm:            newHTTPMetrics(),
		runs:             make(map[string]*run),
		agg:              stats.New(),
	}
	s.h = harness.New(harness.Options{
		Parallel:  o.Parallel,
		KeepGoing: true,
		Observe:   s.observe,
	})
	return s, nil
}

// Store exposes the underlying result store (tests and stats).
func (s *Server) Store() *Store { return s.store }

// observe is the harness Observe hook: it wires the submitting run's
// progress sink into the machine about to execute and stamps the
// queue-wait → simulate span boundary. Specs the harness runs without a
// tracked run entry (none today) are simply not observed.
func (s *Server) observe(spec runspec.RunSpec, m *machine.Machine) {
	s.mu.Lock()
	ru := s.runs[spec.MustHash()]
	s.mu.Unlock()
	if ru != nil {
		ru.started = time.Now()
		m.AttachProgress(ru.progress)
		s.log.Info("run started", "run", ru.hash, "spec", ru.spec.String())
	}
}

// Handler mounts the endpoint routes, each wrapped in the metrics and
// logging middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(label, h))
	}
	route("POST /v1/runs", "/v1/runs", s.handleSubmit)
	route("GET /v1/runs/{id}", "/v1/runs/{id}", s.handleGet)
	route("GET /v1/runs/{id}/events", "/v1/runs/{id}/events", s.handleEvents)
	route("GET /v1/healthz", "/v1/healthz", s.handleHealthz)
	route("GET /v1/stats", "/v1/stats", s.handleStats)
	route("GET /metrics", "/metrics", s.handleMetrics)
	if s.pprof {
		// net/http/pprof registers on http.DefaultServeMux in its init;
		// mount its handlers on our mux explicitly instead.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusRecorder captures the response status for the middleware while
// passing flushes through (the SSE stream needs the underlying Flusher).
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request accounting: one structured log
// record and one (counter, latency-histogram) observation per request,
// labeled by the mounted route pattern. The /metrics route observes
// everything else but not itself — scrapes stay out of the request
// metrics, which keeps back-to-back scrapes of an idle server
// byte-identical (golden-testable) instead of perturbing what they read.
func (s *Server) instrument(label string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		d := time.Since(start)
		if label == "/metrics" {
			s.log.Debug("request", "method", r.Method, "route", label, "status", rec.status, "durationMs", float64(d.Microseconds())/1e3)
			return
		}
		s.httpm.record(r.Method, label, rec.status, d)
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", label),
			slog.Int("status", rec.status),
			slog.Float64("durationMs", float64(d.Microseconds())/1e3),
			slog.String("run", rec.Header().Get("X-Asap-Run")),
			slog.String("cache", rec.Header().Get("X-Asap-Cache")),
		)
	}
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\n  \"error\": %s\n}\n", msg)
}

// serveEnvelope writes stored envelope bytes with cache disposition.
func serveEnvelope(w http.ResponseWriter, hash, disposition string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Asap-Cache", disposition)
	w.Header().Set("X-Asap-Run", hash)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// maxSpecBytes bounds the request body; a RunSpec is well under 4 KB.
const maxSpecBytes = 1 << 20

// handleSubmit accepts a RunSpec, answers from the store when possible,
// otherwise joins or starts the simulation. With ?async=1 it returns 202
// and the run id immediately; otherwise it blocks until the result is
// ready and returns it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		jsonError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := runspec.Parse(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.admit(spec); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canon, err := spec.Canonical()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	hash := spec.MustHash()
	s.submitted.Add(1)

	// Layer 1: the content-addressed store.
	if stored, ok, err := s.store.Get(hash); err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	} else if ok {
		s.cacheHits.Add(1)
		serveEnvelope(w, hash, "hit", stored)
		return
	}

	// Layer 2/3: join an in-flight run or start one.
	ru, started := s.startRun(spec, canon, hash)
	disposition := "inflight"
	if started {
		s.misses.Add(1)
		disposition = "miss"
	} else {
		s.inflight.Add(1)
	}

	if r.URL.Query().Get("async") != "" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Asap-Cache", disposition)
		w.Header().Set("X-Asap-Run", hash)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\n  \"id\": %q,\n  \"status\": \"running\",\n  \"spec\": %q\n}\n", hash, spec)
		return
	}

	<-ru.done
	if ru.err != nil {
		jsonError(w, http.StatusInternalServerError, "%s: %v", spec, ru.err)
		return
	}
	serveEnvelope(w, hash, disposition, ru.body)
}

// admit enforces the per-request resource caps.
func (s *Server) admit(spec runspec.RunSpec) error {
	if !workload.Known(spec.Workload) {
		return fmt.Errorf("unknown workload %q (have %v)", spec.Workload, workload.Names())
	}
	if !model.Known(spec.Model) {
		return fmt.Errorf("unknown model %q (have %v)", spec.Model, model.ExtendedNames())
	}
	if total := spec.Params.Threads * spec.Params.OpsPerThread; total > s.maxTotalOps {
		return fmt.Errorf("request of %d total ops exceeds the %d-op limit", total, s.maxTotalOps)
	}
	if spec.Config.Cores > s.maxCores {
		return fmt.Errorf("request of %d cores exceeds the %d-core limit", spec.Config.Cores, s.maxCores)
	}
	return nil
}

// startRun returns the tracked run for hash, creating and launching it
// when absent. started reports whether this call launched the leader.
// The harness engine below provides the actual singleflight — even two
// racing startRun leaders for one hash would simulate once — but the
// tracked entry carries the progress sink, the span anchors, and the
// async status.
func (s *Server) startRun(spec runspec.RunSpec, canon []byte, hash string) (ru *run, started bool) {
	s.mu.Lock()
	if ru = s.runs[hash]; ru != nil {
		s.mu.Unlock()
		return ru, false
	}
	ru = &run{
		spec:     spec,
		canon:    canon,
		hash:     hash,
		progress: &obs.Progress{},
		admitted: time.Now(),
		done:     make(chan struct{}),
	}
	s.runs[hash] = ru
	s.mu.Unlock()

	s.log.Info("run admitted", "run", hash, "spec", spec.String())
	go s.execute(ru)
	return ru, true
}

// execute runs one spec through the harness and files the result,
// recording the span breakdown (queue wait → simulate → encode → store)
// into the aggregate registry and the first three into the envelope's
// timing block. On success the run entry is dropped — the store answers
// from then on; on failure it stays, serving the cached error (the
// harness caches it under the same spec, so the failure is final for
// this process).
func (s *Server) execute(ru *run) {
	res, err := s.h.RunSpec(ru.spec)
	simDone := time.Now()
	var queueWait, simulate time.Duration
	if !ru.started.IsZero() {
		queueWait = ru.started.Sub(ru.admitted)
		simulate = simDone.Sub(ru.started)
	}
	if err != nil {
		s.failures.Add(1)
		s.recordSpans(queueWait, simulate, 0, 0)
		s.log.Error("run failed", "run", ru.hash, "spec", ru.spec.String(), "err", err.Error(),
			"queueWaitMs", ms(queueWait), "simulateMs", ms(simulate))
		ru.err = err
		close(ru.done)
		return
	}

	// Encode twice: the first pass measures the encode span, the second
	// embeds the measured timing block into the bytes the store keeps.
	encStart := time.Now()
	if _, err := encodeEnvelope(ru.hash, ru.canon, res, nil); err != nil {
		s.failures.Add(1)
		ru.err = err
		close(ru.done)
		return
	}
	encode := time.Since(encStart)
	body, err := encodeEnvelope(ru.hash, ru.canon, res, &TimingJSON{
		QueueWaitNS: queueWait.Nanoseconds(),
		SimulateNS:  simulate.Nanoseconds(),
		EncodeNS:    encode.Nanoseconds(),
	})
	if err != nil {
		s.failures.Add(1)
		ru.err = err
		close(ru.done)
		return
	}

	storeStart := time.Now()
	storeDur := time.Duration(0)
	if err := s.store.Put(ru.hash, body); err != nil {
		// The result is still valid and served from memory; only
		// persistence failed. Count it and carry on.
		s.storeErrors.Add(1)
		s.log.Error("store failed", "run", ru.hash, "err", err.Error())
	} else {
		storeDur = time.Since(storeStart)
		s.log.Info("run stored", "run", ru.hash, "bytes", len(body), "storeMs", ms(storeDur))
	}

	// File the spans and merge the run's stats into the aggregate before
	// ru.done releases waiters: a client that saw its POST return can
	// scrape /metrics and find this run already accounted.
	s.recordSpans(queueWait, simulate, encode, storeDur)
	s.aggMu.Lock()
	s.agg.Merge(res.Stats)
	s.aggMu.Unlock()
	s.log.Info("run finished", "run", ru.hash, "spec", ru.spec.String(), "cycles", uint64(res.Cycles),
		"queueWaitMs", ms(queueWait), "simulateMs", ms(simulate))

	ru.body = body
	close(ru.done)

	s.mu.Lock()
	delete(s.runs, ru.hash)
	s.mu.Unlock()
}

// ms renders a duration as fractional milliseconds for log records.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// handleGet reports one run by content address: the stored result (the
// exact bytes POST served), in-flight progress, or the cached failure.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("id")
	if !runspec.ValidHash(hash) {
		jsonError(w, http.StatusBadRequest, "malformed run id %q (want %d hex chars)", hash, runspec.HashLen)
		return
	}
	if stored, ok, err := s.store.Get(hash); err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	} else if ok {
		serveEnvelope(w, hash, "hit", stored)
		return
	}
	s.mu.Lock()
	ru := s.runs[hash]
	s.mu.Unlock()
	if ru == nil {
		jsonError(w, http.StatusNotFound, "no run %s (submit its spec to POST /v1/runs)", hash)
		return
	}
	select {
	case <-ru.done:
		if ru.err != nil {
			jsonError(w, http.StatusInternalServerError, "%s: %v", ru.spec, ru.err)
			return
		}
		serveEnvelope(w, hash, "hit", ru.body)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Asap-Run", hash)
		w.WriteHeader(http.StatusAccepted)
		b, _ := json.MarshalIndent(runStatus{
			ID:       hash,
			Status:   "running",
			Spec:     ru.spec.String(),
			Progress: progressJSON(ru.progress.Snapshot()),
		}, "", "  ")
		w.Write(append(b, '\n'))
	}
}

// runStatus is the in-flight GET /v1/runs/{id} response shape.
type runStatus struct {
	ID       string       `json:"id"`
	Status   string       `json:"status"`
	Spec     string       `json:"spec"`
	Progress ProgressJSON `json:"progress"`
}

// ProgressJSON is the serialized obs.ProgressSnapshot, shared by the
// status endpoint and the SSE stream.
type ProgressJSON struct {
	Cycles       uint64 `json:"cycles"`
	Events       uint64 `json:"events"`
	OpsRetired   uint64 `json:"opsRetired"`
	PBOccupancy  uint64 `json:"pbOccupancy"`
	ETOccupancy  uint64 `json:"etOccupancy"`
	CyclesPerSec uint64 `json:"cyclesPerSec"`
}

func progressJSON(sn obs.ProgressSnapshot) ProgressJSON {
	return ProgressJSON{
		Cycles:       sn.Cycles,
		Events:       sn.Events,
		OpsRetired:   sn.OpsRetired,
		PBOccupancy:  sn.PBOccupancy,
		ETOccupancy:  sn.ETOccupancy,
		CyclesPerSec: sn.CyclesPerSec,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statsPayload is the /v1/stats response shape.
type statsPayload struct {
	Server   serverStats          `json:"server"`
	Registry []stats.Registration `json:"registry"`
}

type serverStats struct {
	Submitted       int64  `json:"submitted"`
	CacheHits       int64  `json:"cacheHits"`
	CacheMisses     int64  `json:"cacheMisses"`
	InflightJoins   int64  `json:"inflightJoins"`
	Failures        int64  `json:"failures"`
	StoreErrors     int64  `json:"storeErrors"`
	RunsExecuted    int64  `json:"runsExecuted"`
	SimulatedCycles uint64 `json:"simulatedCycles"`
	StoreEntries    int    `json:"storeEntries"`
	Workers         int    `json:"workers"`
	InflightRuns    int    `json:"inflightRuns"`
}

// handleStats surfaces the server's own counters plus the simulator's
// registered stats vocabulary (every counter a stored result may carry,
// with its description — the Table VI legend, served).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, err := s.store.Len()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	runs, cycles := s.h.Perf()
	s.mu.Lock()
	inflightRuns := len(s.runs)
	s.mu.Unlock()
	p := statsPayload{
		Server: serverStats{
			Submitted:       s.submitted.Load(),
			CacheHits:       s.cacheHits.Load(),
			CacheMisses:     s.misses.Load(),
			InflightJoins:   s.inflight.Load(),
			Failures:        s.failures.Load(),
			StoreErrors:     s.storeErrors.Load(),
			RunsExecuted:    runs,
			SimulatedCycles: cycles,
			StoreEntries:    entries,
			Workers:         s.h.Parallelism(),
			InflightRuns:    inflightRuns,
		},
		Registry: stats.Registered(),
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}
