// Package server implements asapd: a long-running HTTP/JSON simulation
// service over the experiment harness.
//
// Every simulation is a pure function of its runspec.RunSpec, so the
// service is a cache hierarchy over that key:
//
//  1. the content-addressed on-disk Store (survives restarts, shareable
//     between daemons pointed at one directory),
//  2. the harness engine's in-memory singleflight cache, which also
//     dedupes identical in-flight requests — N clients submitting one
//     spec cost one simulation,
//  3. an actual run on the harness worker pool, bounded by Parallel.
//
// Completed results are encoded once (Envelope) and served verbatim ever
// after: responses for one spec are byte-identical across requests and
// restarts, with the X-Asap-Cache header distinguishing hit, miss, and
// inflight (joined a running simulation). Progress of in-flight runs
// streams out of the machine's periodic sampler through an obs.Gauge.
//
// Endpoints:
//
//	POST /v1/runs           submit a RunSpec; result, or 202 + id with ?async=1
//	GET  /v1/runs/{id}      status or result by content address
//	GET  /v1/healthz        liveness
//	GET  /v1/stats          server counters + the stats registry vocabulary
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"

	"asap/internal/harness"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/obs"
	"asap/internal/runspec"
	"asap/internal/stats"
	"asap/internal/workload"
)

// Options configures a Server.
type Options struct {
	// StoreDir roots the content-addressed result store. Required.
	StoreDir string
	// Parallel bounds concurrently executing simulations (0 = GOMAXPROCS).
	Parallel int
	// MaxTotalOps caps Threads*OpsPerThread per request (0 = 1<<20).
	// Publication scale is 4*400; the cap is a guard against requests
	// whose simulation would hold a worker for hours, not a security
	// boundary.
	MaxTotalOps int
	// MaxCores caps Config.Cores per request (0 = 256): per-core
	// structures are allocated eagerly, so an absurd core count is
	// rejected rather than materialized.
	MaxCores int
	// Log receives one line per completed simulation and per store
	// error. Nil discards.
	Log *log.Logger
}

// run tracks one submitted spec from acceptance to completion.
type run struct {
	spec  runspec.RunSpec
	canon []byte // canonical spec bytes
	hash  string
	gauge *obs.Gauge

	done chan struct{} // closed when body/err are final
	body []byte        // stored envelope bytes on success
	err  error
}

// Server is the asapd request handler. Create with New, mount Handler.
type Server struct {
	h           *harness.Harness
	store       *Store
	log         *log.Logger
	maxTotalOps int
	maxCores    int

	mu   sync.Mutex
	runs map[string]*run // in-flight and failed runs by hash

	submitted   atomic.Int64 // POST /v1/runs requests accepted
	cacheHits   atomic.Int64 // answered from the store
	inflight    atomic.Int64 // joined a run already executing
	misses      atomic.Int64 // triggered a new simulation
	failures    atomic.Int64 // simulations that returned an error
	storeErrors atomic.Int64 // store writes that failed (results still served)
}

// New builds a server over a fresh harness. The harness runs in
// KeepGoing mode — a failed spec stays failed under its own hash but
// never poisons unrelated requests — and the server's Observe hook
// attaches a progress gauge to every leader simulation.
func New(o Options) (*Server, error) {
	st, err := OpenStore(o.StoreDir)
	if err != nil {
		return nil, err
	}
	if o.MaxTotalOps == 0 {
		o.MaxTotalOps = 1 << 20
	}
	if o.MaxCores == 0 {
		o.MaxCores = 256
	}
	s := &Server{
		store:       st,
		log:         o.Log,
		maxTotalOps: o.MaxTotalOps,
		maxCores:    o.MaxCores,
		runs:        make(map[string]*run),
	}
	s.h = harness.New(harness.Options{
		Parallel:  o.Parallel,
		KeepGoing: true,
		Observe:   s.observe,
	})
	return s, nil
}

// Store exposes the underlying result store (tests and stats).
func (s *Server) Store() *Store { return s.store }

// observe is the harness Observe hook: it wires the submitting run's
// progress gauge into the machine about to execute. Specs the harness
// runs without a tracked run entry (none today) are simply not observed.
func (s *Server) observe(spec runspec.RunSpec, m *machine.Machine) {
	s.mu.Lock()
	ru := s.runs[spec.MustHash()]
	s.mu.Unlock()
	if ru != nil {
		m.AttachProgress(ru.gauge)
	}
}

// Handler mounts the endpoint routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Fprintf(w, "{\n  \"error\": %s\n}\n", msg)
}

// serveEnvelope writes stored envelope bytes with cache disposition.
func serveEnvelope(w http.ResponseWriter, hash, disposition string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Asap-Cache", disposition)
	w.Header().Set("X-Asap-Run", hash)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// maxSpecBytes bounds the request body; a RunSpec is well under 4 KB.
const maxSpecBytes = 1 << 20

// handleSubmit accepts a RunSpec, answers from the store when possible,
// otherwise joins or starts the simulation. With ?async=1 it returns 202
// and the run id immediately; otherwise it blocks until the result is
// ready and returns it.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		jsonError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		jsonError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	spec, err := runspec.Parse(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.admit(spec); err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canon, err := spec.Canonical()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	hash := spec.MustHash()
	s.submitted.Add(1)

	// Layer 1: the content-addressed store.
	if stored, ok, err := s.store.Get(hash); err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	} else if ok {
		s.cacheHits.Add(1)
		serveEnvelope(w, hash, "hit", stored)
		return
	}

	// Layer 2/3: join an in-flight run or start one.
	ru, started := s.startRun(spec, canon, hash)
	if started {
		s.misses.Add(1)
	} else {
		s.inflight.Add(1)
	}
	disposition := "miss"
	if !started {
		disposition = "inflight"
	}

	if r.URL.Query().Get("async") != "" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Asap-Cache", disposition)
		w.Header().Set("X-Asap-Run", hash)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\n  \"id\": %q,\n  \"status\": \"running\",\n  \"spec\": %q\n}\n", hash, spec)
		return
	}

	<-ru.done
	if ru.err != nil {
		jsonError(w, http.StatusInternalServerError, "%s: %v", spec, ru.err)
		return
	}
	serveEnvelope(w, hash, disposition, ru.body)
}

// admit enforces the per-request resource caps.
func (s *Server) admit(spec runspec.RunSpec) error {
	if !workload.Known(spec.Workload) {
		return fmt.Errorf("unknown workload %q (have %v)", spec.Workload, workload.Names())
	}
	if !model.Known(spec.Model) {
		return fmt.Errorf("unknown model %q (have %v)", spec.Model, model.ExtendedNames())
	}
	if total := spec.Params.Threads * spec.Params.OpsPerThread; total > s.maxTotalOps {
		return fmt.Errorf("request of %d total ops exceeds the %d-op limit", total, s.maxTotalOps)
	}
	if spec.Config.Cores > s.maxCores {
		return fmt.Errorf("request of %d cores exceeds the %d-core limit", spec.Config.Cores, s.maxCores)
	}
	return nil
}

// startRun returns the tracked run for hash, creating and launching it
// when absent. started reports whether this call launched the leader.
// The harness engine below provides the actual singleflight — even two
// racing startRun leaders for one hash would simulate once — but the
// tracked entry carries the progress gauge and the async status.
func (s *Server) startRun(spec runspec.RunSpec, canon []byte, hash string) (ru *run, started bool) {
	s.mu.Lock()
	if ru = s.runs[hash]; ru != nil {
		s.mu.Unlock()
		return ru, false
	}
	ru = &run{spec: spec, canon: canon, hash: hash, gauge: &obs.Gauge{}, done: make(chan struct{})}
	s.runs[hash] = ru
	s.mu.Unlock()

	go s.execute(ru)
	return ru, true
}

// execute runs one spec through the harness and files the result. On
// success the run entry is dropped — the store answers from then on; on
// failure it stays, serving the cached error (the harness caches it under
// the same spec, so the failure is final for this process).
func (s *Server) execute(ru *run) {
	res, err := s.h.RunSpec(ru.spec)
	if err != nil {
		s.failures.Add(1)
		s.logf("asapd: run %s (%s): %v", ru.hash[:12], ru.spec, err)
		ru.err = err
		close(ru.done)
		return
	}
	body, err := encodeEnvelope(ru.hash, ru.canon, res)
	if err != nil {
		s.failures.Add(1)
		ru.err = err
		close(ru.done)
		return
	}
	if err := s.store.Put(ru.hash, body); err != nil {
		// The result is still valid and served from memory; only
		// persistence failed. Count it and carry on.
		s.storeErrors.Add(1)
		s.logf("asapd: store %s: %v", ru.hash[:12], err)
	}
	ru.body = body
	close(ru.done)
	s.logf("asapd: ran %s (%s): %d cycles", ru.hash[:12], ru.spec, res.Cycles)

	s.mu.Lock()
	delete(s.runs, ru.hash)
	s.mu.Unlock()
}

// handleGet reports one run by content address: the stored result (the
// exact bytes POST served), in-flight progress, or the cached failure.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("id")
	if !runspec.ValidHash(hash) {
		jsonError(w, http.StatusBadRequest, "malformed run id %q (want %d hex chars)", hash, runspec.HashLen)
		return
	}
	if stored, ok, err := s.store.Get(hash); err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	} else if ok {
		serveEnvelope(w, hash, "hit", stored)
		return
	}
	s.mu.Lock()
	ru := s.runs[hash]
	s.mu.Unlock()
	if ru == nil {
		jsonError(w, http.StatusNotFound, "no run %s (submit its spec to POST /v1/runs)", hash)
		return
	}
	select {
	case <-ru.done:
		if ru.err != nil {
			jsonError(w, http.StatusInternalServerError, "%s: %v", ru.spec, ru.err)
			return
		}
		serveEnvelope(w, hash, "hit", ru.body)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Asap-Run", hash)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\n  \"id\": %q,\n  \"status\": \"running\",\n  \"spec\": %q,\n  \"progressCycles\": %d\n}\n",
			hash, ru.spec, ru.gauge.Cycles())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// statsPayload is the /v1/stats response shape.
type statsPayload struct {
	Server   serverStats          `json:"server"`
	Registry []stats.Registration `json:"registry"`
}

type serverStats struct {
	Submitted       int64  `json:"submitted"`
	CacheHits       int64  `json:"cacheHits"`
	CacheMisses     int64  `json:"cacheMisses"`
	InflightJoins   int64  `json:"inflightJoins"`
	Failures        int64  `json:"failures"`
	StoreErrors     int64  `json:"storeErrors"`
	RunsExecuted    int64  `json:"runsExecuted"`
	SimulatedCycles uint64 `json:"simulatedCycles"`
	StoreEntries    int    `json:"storeEntries"`
	Workers         int    `json:"workers"`
	InflightRuns    int    `json:"inflightRuns"`
}

// handleStats surfaces the server's own counters plus the simulator's
// registered stats vocabulary (every counter a stored result may carry,
// with its description — the Table VI legend, served).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	entries, err := s.store.Len()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	runs, cycles := s.h.Perf()
	s.mu.Lock()
	inflightRuns := len(s.runs)
	s.mu.Unlock()
	p := statsPayload{
		Server: serverStats{
			Submitted:       s.submitted.Load(),
			CacheHits:       s.cacheHits.Load(),
			CacheMisses:     s.misses.Load(),
			InflightJoins:   s.inflight.Load(),
			Failures:        s.failures.Load(),
			StoreErrors:     s.storeErrors.Load(),
			RunsExecuted:    runs,
			SimulatedCycles: cycles,
			StoreEntries:    entries,
			Workers:         s.h.Parallelism(),
			InflightRuns:    inflightRuns,
		},
		Registry: stats.Registered(),
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		jsonError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}
