package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"asap/internal/config"
	"asap/internal/runspec"
	"asap/internal/workload"
)

// testSpec is a small spec that simulates in milliseconds.
func testSpec(t *testing.T) (runspec.RunSpec, []byte) {
	t.Helper()
	p := workload.Default()
	p.Threads = 2
	p.OpsPerThread = 20
	spec := runspec.New("cceh", "asap_rp", p, config.Default())
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return spec, canon
}

func newTestServer(t *testing.T, storeDir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Options{StoreDir: storeDir, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSubmitTwiceByteIdentical is the service's core contract: the same
// spec submitted twice simulates once, and the second response is served
// byte-for-byte from the store with a hit disposition.
func TestSubmitTwiceByteIdentical(t *testing.T) {
	spec, canon := testSpec(t)
	s, ts := newTestServer(t, t.TempDir())

	resp1, body1 := post(t, ts.URL+"/v1/runs", canon)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d: %s", resp1.StatusCode, body1)
	}
	if c := resp1.Header.Get("X-Asap-Cache"); c != "miss" {
		t.Fatalf("first submit: X-Asap-Cache = %q, want miss", c)
	}

	resp2, body2 := post(t, ts.URL+"/v1/runs", canon)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: status %d: %s", resp2.StatusCode, body2)
	}
	if c := resp2.Header.Get("X-Asap-Cache"); c != "hit" {
		t.Fatalf("second submit: X-Asap-Cache = %q, want hit", c)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("identical specs got different bytes:\n--- first\n%s\n--- second\n%s", body1, body2)
	}

	var env Envelope
	if err := json.Unmarshal(body1, &env); err != nil {
		t.Fatalf("response is not an Envelope: %v", err)
	}
	if env.Hash != spec.MustHash() {
		t.Fatalf("envelope hash %s, want %s", env.Hash, spec.MustHash())
	}
	if env.Result.Cycles == 0 {
		t.Fatal("result has zero cycles")
	}
	if runs, _ := s.h.Perf(); runs != 1 {
		t.Fatalf("two identical submissions executed %d simulations, want 1", runs)
	}

	// A field-reordered, re-whitespaced rendering of the same spec maps to
	// the same content address, so it too is a hit with identical bytes.
	var loose map[string]any
	if err := json.Unmarshal(canon, &loose); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.MarshalIndent(loose, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	resp3, body3 := post(t, ts.URL+"/v1/runs", reordered)
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get("X-Asap-Cache") != "hit" {
		t.Fatalf("reordered spec: status %d cache %q, want 200 hit", resp3.StatusCode, resp3.Header.Get("X-Asap-Cache"))
	}
	if !bytes.Equal(body1, body3) {
		t.Fatal("reordered spec got different bytes")
	}
}

// TestRestartServesFromStore proves persistence: a second server over the
// same store directory answers without simulating.
func TestRestartServesFromStore(t *testing.T) {
	_, canon := testSpec(t)
	dir := t.TempDir()

	_, ts1 := newTestServer(t, dir)
	resp1, body1 := post(t, ts1.URL+"/v1/runs", canon)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first server: status %d: %s", resp1.StatusCode, body1)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, dir)
	resp2, body2 := post(t, ts2.URL+"/v1/runs", canon)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("restarted server: status %d: %s", resp2.StatusCode, body2)
	}
	if c := resp2.Header.Get("X-Asap-Cache"); c != "hit" {
		t.Fatalf("restarted server: X-Asap-Cache = %q, want hit", c)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("restarted server served different bytes than the original run")
	}
	if runs, _ := s2.h.Perf(); runs != 0 {
		t.Fatalf("restarted server simulated %d runs, want 0 (store answers)", runs)
	}
}

// TestAsyncSubmitAndPoll covers the 202 path: async submission returns
// the run id immediately; polling eventually yields the stored result,
// which matches a later synchronous submission byte-for-byte.
func TestAsyncSubmitAndPoll(t *testing.T) {
	spec, canon := testSpec(t)
	_, ts := newTestServer(t, t.TempDir())

	resp, body := post(t, ts.URL+"/v1/runs?async=1", canon)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}
	var acc struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID != spec.MustHash() || acc.Status != "running" {
		t.Fatalf("async submit returned id=%q status=%q", acc.ID, acc.Status)
	}

	var result []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := get(t, ts.URL+"/v1/runs/"+acc.ID)
		if resp.StatusCode == http.StatusOK {
			result = body
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("poll: status %d: %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("run did not complete within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, syncBody := post(t, ts.URL+"/v1/runs", canon)
	if !bytes.Equal(result, syncBody) {
		t.Fatal("polled result differs from synchronous submission")
	}
}

// TestBadRequests walks the rejection paths.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	_, canon := testSpec(t)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"invalid JSON", "{not json", http.StatusBadRequest},
		{"unknown workload", `{"workload":"nope","model":"asap_rp"}`, http.StatusBadRequest},
		{"unknown model", `{"workload":"cceh","model":"nope"}`, http.StatusBadRequest},
		{"unknown field", `{"workload":"cceh","model":"asap_rp","bogus":1}`, http.StatusBadRequest},
		{"too many ops", `{"workload":"cceh","model":"asap_rp","params":{"Threads":1024,"OpsPerThread":1048576}}`, http.StatusBadRequest},
		{"oversized body", `{"workload":"cceh","pad":"` + strings.Repeat("x", maxSpecBytes) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+"/v1/runs", []byte(tc.body))
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body is not {\"error\": ...}: %s", body)
			}
		})
	}

	t.Run("malformed run id", func(t *testing.T) {
		resp, _ := get(t, ts.URL+"/v1/runs/not-a-hash")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown run id", func(t *testing.T) {
		resp, _ := get(t, ts.URL+"/v1/runs/"+strings.Repeat("0", runspec.HashLen))
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
	// Sanity: the server still works after all those rejections.
	resp, _ := post(t, ts.URL+"/v1/runs", canon)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid spec after rejections: status %d", resp.StatusCode)
	}
}

// TestStatsEndpoint checks the counters tell the story of the requests
// made against them.
func TestStatsEndpoint(t *testing.T) {
	_, canon := testSpec(t)
	_, ts := newTestServer(t, t.TempDir())

	post(t, ts.URL+"/v1/runs", canon)
	post(t, ts.URL+"/v1/runs", canon)

	resp, body := get(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var p statsPayload
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Server.Submitted != 2 || p.Server.CacheMisses != 1 || p.Server.CacheHits != 1 {
		t.Fatalf("stats = submitted %d, misses %d, hits %d; want 2, 1, 1",
			p.Server.Submitted, p.Server.CacheMisses, p.Server.CacheHits)
	}
	if p.Server.RunsExecuted != 1 || p.Server.StoreEntries != 1 {
		t.Fatalf("stats = runsExecuted %d, storeEntries %d; want 1, 1",
			p.Server.RunsExecuted, p.Server.StoreEntries)
	}
	if len(p.Registry) == 0 {
		t.Fatal("stats registry is empty")
	}
}

// TestHealthz is trivial but CI's service job curls it first.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	resp, body := get(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: status %d body %s", resp.StatusCode, body)
	}
}

// TestFailedRunIsReported covers the error path end to end: a spec that
// passes admission but fails inside the machine yields a 500 whose body
// names the failure, the failure is cached (resubmission serves it
// without re-simulating), and unrelated specs still run (KeepGoing).
func TestFailedRunIsReported(t *testing.T) {
	// RTEntries=-1 passes config.Validate (it only checks what the paper
	// parameterizes) but machine.New panics building the recovery table;
	// the harness recovers that panic into an error.
	spec := runspec.New("cceh", "asap_rp", workload.Default(), config.Default())
	spec.Config.RTEntries = -1
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, t.TempDir())

	resp1, body1 := post(t, ts.URL+"/v1/runs", b)
	if resp1.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad machine config: status %d, want 500: %s", resp1.StatusCode, body1)
	}
	if !strings.Contains(string(body1), "recovery table") {
		t.Fatalf("error body does not name the failure: %s", body1)
	}

	resp2, _ := post(t, ts.URL+"/v1/runs", b)
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("resubmitted failure: status %d, want cached 500", resp2.StatusCode)
	}
	_, stats := get(t, ts.URL+"/v1/stats")
	var p statsPayload
	if err := json.Unmarshal(stats, &p); err != nil {
		t.Fatal(err)
	}
	if p.Server.Failures != 1 {
		t.Fatalf("failures = %d after two submissions of one bad spec, want 1 (cached)", p.Server.Failures)
	}

	// The failure did not poison the service: a good spec still runs.
	_, canon := testSpec(t)
	resp3, body3 := post(t, ts.URL+"/v1/runs", canon)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("good spec after failure: status %d: %s", resp3.StatusCode, body3)
	}
}
