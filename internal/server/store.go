package server

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"asap/internal/runspec"
)

// Store is the content-addressed on-disk result store: one JSON envelope
// per completed run, filed under the SHA-256 of the run's canonical spec
// (the repo-DB-with-local-store pattern — the simulator's determinism
// means a result computed anywhere answers the spec everywhere).
//
// Layout: <dir>/<hash[:2]>/<hash>.json. The two-character fan-out keeps
// directories small under millions of entries. Entries are immutable:
// writes go to a temp file in the same directory and rename into place,
// so concurrent writers race benignly (both bodies are byte-identical by
// determinism) and a crashed writer leaves only a temp file, never a
// torn entry. First write wins; Put of an existing hash is a no-op.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: store directory must be set")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store's root directory.
func (st *Store) Dir() string { return st.dir }

// path maps a content address to its entry file. Callers must have
// validated the hash (runspec.ValidHash) — that check is also the
// path-traversal guard, since the hash becomes a path component.
func (st *Store) path(hash string) string {
	return filepath.Join(st.dir, hash[:2], hash+".json")
}

// Get returns the stored envelope for hash, or ok=false if absent.
func (st *Store) Get(hash string) (body []byte, ok bool, err error) {
	if !runspec.ValidHash(hash) {
		return nil, false, fmt.Errorf("server: store: malformed hash %q", hash)
	}
	b, err := os.ReadFile(st.path(hash))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("server: store: %w", err)
	}
	return b, true, nil
}

// Put files body under hash, atomically. An existing entry is left
// untouched: results are deterministic, so the bytes already there are
// the bytes being offered.
func (st *Store) Put(hash string, body []byte) error {
	if !runspec.ValidHash(hash) {
		return fmt.Errorf("server: store: malformed hash %q", hash)
	}
	final := st.path(hash)
	if _, err := os.Stat(final); err == nil {
		return nil // first write won already
	}
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), "."+hash+".tmp*")
	if err != nil {
		return fmt.Errorf("server: store: %w", err)
	}
	_, werr := tmp.Write(body)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: store: %w", werr)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("server: store: %w", err)
	}
	return nil
}

// Len counts stored entries (a walk — used by /v1/stats, not a hot path).
func (st *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(st.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") && !strings.Contains(filepath.Base(path), ".tmp") {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("server: store: %w", err)
	}
	return n, nil
}
