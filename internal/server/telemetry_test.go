package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"asap/internal/config"
	"asap/internal/runspec"
	"asap/internal/stats"
	"asap/internal/workload"
)

// logBuffer is a goroutine-safe sink for the JSON log lines a test
// server emits; lines() decodes them for field assertions.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSpace(b.buf.String()), "\n") {
		if ln == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", ln, err)
		}
		out = append(out, m)
	}
	return out
}

// find returns log records whose msg matches.
func find(recs []map[string]any, msg string) []map[string]any {
	var out []map[string]any
	for _, r := range recs {
		if r["msg"] == msg {
			out = append(out, r)
		}
	}
	return out
}

func newLoggedServer(t *testing.T, o Options) (*Server, *httptest.Server, *logBuffer) {
	t.Helper()
	lb := &logBuffer{}
	o.Logger = slog.New(slog.NewJSONHandler(lb, nil))
	if o.StoreDir == "" {
		o.StoreDir = t.TempDir()
	}
	if o.Parallel == 0 {
		o.Parallel = 2
	}
	s, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, lb
}

// waitForLog polls until a record with msg appears (lifecycle records
// trail the request that triggered them by a goroutine hop).
func waitForLog(t *testing.T, lb *logBuffer, msg string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if recs := find(lb.lines(t), msg); len(recs) > 0 {
			return recs[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("log record %q never appeared", msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStructuredRequestLogs: every request produces one structured
// record with method, route, status, and cache disposition, and the run
// lifecycle (admitted, started, stored, finished) is logged with the
// run's content hash.
func TestStructuredRequestLogs(t *testing.T) {
	spec, canon := testSpec(t)
	_, ts, lb := newLoggedServer(t, Options{})
	hash := spec.MustHash()

	post(t, ts.URL+"/v1/runs", canon) // miss
	post(t, ts.URL+"/v1/runs", canon) // hit
	waitForLog(t, lb, "run finished")

	recs := lb.lines(t)
	reqs := find(recs, "request")
	if len(reqs) != 2 {
		t.Fatalf("got %d request records, want 2: %+v", len(reqs), reqs)
	}
	for i, want := range []string{"miss", "hit"} {
		r := reqs[i]
		if r["method"] != "POST" || r["route"] != "/v1/runs" || r["status"] != float64(200) {
			t.Fatalf("request record %d = %+v", i, r)
		}
		if r["cache"] != want {
			t.Fatalf("request record %d cache = %v, want %q", i, r["cache"], want)
		}
		if r["run"] != hash {
			t.Fatalf("request record %d run = %v, want %s", i, r["run"], hash)
		}
		if _, ok := r["durationMs"].(float64); !ok {
			t.Fatalf("request record %d has no durationMs: %+v", i, r)
		}
	}

	for _, msg := range []string{"run admitted", "run started", "run stored", "run finished"} {
		evs := find(recs, msg)
		if len(evs) != 1 {
			t.Fatalf("got %d %q records, want 1", len(evs), msg)
		}
		if evs[0]["run"] != hash {
			t.Fatalf("%q record run = %v, want %s", msg, evs[0]["run"], hash)
		}
	}
	if fin := find(recs, "run finished")[0]; fin["cycles"] == float64(0) {
		t.Fatalf("run finished reports zero cycles: %+v", fin)
	}
}

// TestMetricsExposition: after a miss→hit pair, /metrics serves valid
// Prometheus text covering the server counters, the per-route request
// metrics, the span distributions, and the full simulator vocabulary —
// and an idle server's scrapes are byte-identical.
func TestMetricsExposition(t *testing.T) {
	_, canon := testSpec(t)
	_, ts, _ := newLoggedServer(t, Options{})

	post(t, ts.URL+"/v1/runs", canon)
	post(t, ts.URL+"/v1/runs", canon)

	resp, body1 := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	out := string(body1)

	for _, want := range []string{
		"asapd_submitted_total 2\n",
		"asapd_cache_hits_total 1\n",
		"asapd_cache_misses_total 1\n",
		"asapd_runs_executed_total 1\n",
		"asapd_store_entries 1\n",
		`asapd_requests_total{method="POST",route="/v1/runs",code="200"} 2`,
		`asapd_request_duration_seconds_bucket{method="POST",route="/v1/runs",le="+Inf"} 2`,
		`asapd_request_duration_seconds_count{method="POST",route="/v1/runs"} 2`,
		"asap_run_simulate_millis_count 1\n",
		"asap_run_encode_micros_count 1\n",
		"asap_run_store_micros_count 1\n",
		"# TYPE asap_pb_occupancy summary\n",
		"# TYPE asap_cycles_blocked_total counter\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(out, `route="/metrics"`) {
		t.Error("scrape counted itself into the request metrics")
	}

	// Byte-stability: nothing changed between scrapes (the scrape itself
	// is excluded from its own metrics), so the pages are identical.
	_, body2 := get(t, ts.URL+"/metrics")
	if !bytes.Equal(body1, body2) {
		t.Fatal("consecutive scrapes of an idle server differ")
	}

	if err := stats.CheckProm(bytes.NewReader(body1)); err != nil {
		t.Fatalf("exposition fails syntax check: %v", err)
	}
}

// sseSpec is big enough to span several progress intervals.
func sseSpec(t *testing.T) (runspec.RunSpec, []byte) {
	t.Helper()
	p := workload.Default()
	p.Threads = 4
	p.OpsPerThread = 8000
	spec := runspec.New("cceh", "asap_rp", p, config.Default())
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	return spec, canon
}

// sseEvents reads one SSE stream to EOF, returning (event, data) pairs.
func sseEvents(t *testing.T, resp *http.Response) [][2]string {
	t.Helper()
	defer resp.Body.Close()
	var out [][2]string
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			out = append(out, [2]string{event, strings.TrimPrefix(line, "data: ")})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return out
}

// TestSSEProgressStream: the events endpoint streams at least two
// progress snapshots for an in-flight run — monotonic in simulated
// cycles — then a terminal done event, after which the stream closes.
func TestSSEProgressStream(t *testing.T) {
	spec, canon := sseSpec(t)
	_, ts, _ := newLoggedServer(t, Options{ProgressInterval: time.Millisecond})

	resp, body := post(t, ts.URL+"/v1/runs?async=1", canon)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: status %d: %s", resp.StatusCode, body)
	}

	sresp, err := http.Get(ts.URL + "/v1/runs/" + spec.MustHash() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", sresp.StatusCode)
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	evs := sseEvents(t, sresp)
	if len(evs) < 3 {
		t.Fatalf("got %d events, want >= 2 progress + done: %v", len(evs), evs)
	}
	last := evs[len(evs)-1]
	if last[0] != "done" {
		t.Fatalf("terminal event = %q, want done: %v", last[0], last)
	}
	var fin doneEvent
	if err := json.Unmarshal([]byte(last[1]), &fin); err != nil {
		t.Fatal(err)
	}
	if fin.ID != spec.MustHash() || fin.Status != "complete" {
		t.Fatalf("done payload = %+v", fin)
	}

	prev := uint64(0)
	progress := 0
	for _, ev := range evs[:len(evs)-1] {
		if ev[0] != "progress" {
			t.Fatalf("unexpected event %q before the terminal one", ev[0])
		}
		var p progressEvent
		if err := json.Unmarshal([]byte(ev[1]), &p); err != nil {
			t.Fatal(err)
		}
		if p.ID != spec.MustHash() {
			t.Fatalf("progress event for %q, want %s", p.ID, spec.MustHash())
		}
		if p.Cycles < prev {
			t.Fatalf("progress cycles went backwards: %d after %d", p.Cycles, prev)
		}
		prev = p.Cycles
		progress++
	}
	if progress < 2 {
		t.Fatalf("got %d progress events, want >= 2", progress)
	}
	if prev == 0 {
		t.Fatal("no progress event carried nonzero cycles")
	}

	// A finished run's stream answers with an immediate terminal event.
	sresp2, err := http.Get(ts.URL + "/v1/runs/" + spec.MustHash() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	evs2 := sseEvents(t, sresp2)
	if len(evs2) != 1 || evs2[0][0] != "done" {
		t.Fatalf("stored-run stream = %v, want single done event", evs2)
	}
}

// TestStatusProgressSnapshot: polling an in-flight run returns the
// structured progress object.
func TestStatusProgressSnapshot(t *testing.T) {
	spec, canon := sseSpec(t)
	_, ts, _ := newLoggedServer(t, Options{})

	post(t, ts.URL+"/v1/runs?async=1", canon)
	deadline := time.Now().Add(30 * time.Second)
	sawRunning := false
	for !sawRunning {
		resp, body := get(t, ts.URL+"/v1/runs/"+spec.MustHash())
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st runStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatalf("status body: %v: %s", err, body)
			}
			if st.Status != "running" || st.ID != spec.MustHash() {
				t.Fatalf("status = %+v", st)
			}
			sawRunning = true
		case http.StatusOK:
			// Completed before we caught it mid-flight; the progress shape
			// was still validated by TestSSEProgressStream.
			return
		default:
			t.Fatalf("poll: status %d: %s", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never reached a terminal state")
		}
	}
}

// TestEnvelopeTiming: stored envelopes carry the span breakdown of the
// execution that produced them.
func TestEnvelopeTiming(t *testing.T) {
	_, canon := testSpec(t)
	_, ts, _ := newLoggedServer(t, Options{})
	resp, body := post(t, ts.URL+"/v1/runs", canon)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Timing == nil {
		t.Fatal("envelope has no timing block")
	}
	if env.Timing.SimulateNS <= 0 {
		t.Fatalf("timing.simulateNs = %d, want > 0", env.Timing.SimulateNS)
	}
	if env.Timing.EncodeNS <= 0 {
		t.Fatalf("timing.encodeNs = %d, want > 0", env.Timing.EncodeNS)
	}
}

// TestPprofGate: the profiling endpoints exist only behind the option.
func TestPprofGate(t *testing.T) {
	_, off, _ := newLoggedServer(t, Options{})
	resp, _ := get(t, off.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without the flag: status %d, want 404", resp.StatusCode)
	}
	_, on, _ := newLoggedServer(t, Options{Pprof: true})
	resp, body := get(t, on.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		t.Fatalf("pprof with the flag: status %d", resp.StatusCode)
	}
}
