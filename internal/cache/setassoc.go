// Package cache models the three-level cache hierarchy and the MESI-style
// directory of Table II. Only presence and coherence metadata are tracked —
// data values travel through the persist path (package persist) — but
// placement is a real set-associative LRU model so that hit rates, remote
// transfers and LLC evictions behave realistically.
package cache

import "asap/internal/mem"

// setsPerChunk is the granularity of lazy slot-state allocation. Building a
// cache no longer allocates (and zeroes) arrays for its full capacity;
// state materializes one chunk of sets at a time on first insert. Workloads
// whose footprint covers a fraction of the LLC — the common case for the
// experiment sweeps, which construct thousands of machines — only ever pay
// for the chunks they touch.
const setsPerChunk = 64

// setChunk holds the slot state for setsPerChunk consecutive sets; a nil
// lines slice marks a chunk no insert has reached yet.
type setChunk struct {
	lines []mem.Line
	valid []bool
	// lru[i] is the recency rank of slot i within its set: 0 = MRU.
	lru []uint8
}

// SetAssoc is a set-associative cache of line presence with LRU replacement.
type SetAssoc struct {
	sets   int
	ways   int
	chunks []setChunk

	hits, misses, evictions uint64
}

// NewSetAssoc builds a cache of sizeBytes capacity with the given
// associativity over 64-byte lines. Sizes that do not divide evenly are
// rounded down to a whole number of sets (minimum one).
func NewSetAssoc(sizeBytes, ways int) *SetAssoc {
	if ways <= 0 || sizeBytes <= 0 {
		panic("cache: size and ways must be positive")
	}
	numLines := sizeBytes / mem.LineSize
	sets := numLines / ways
	if sets == 0 {
		sets = 1
	}
	return &SetAssoc{
		sets:   sets,
		ways:   ways,
		chunks: make([]setChunk, (sets+setsPerChunk-1)/setsPerChunk),
	}
}

// slotBase locates the chunk holding line l's set and the set's base index
// within that chunk.
func (c *SetAssoc) slotBase(l mem.Line) (*setChunk, int) {
	set := int(uint64(l) % uint64(c.sets))
	return &c.chunks[set/setsPerChunk], (set % setsPerChunk) * c.ways
}

// Lookup reports whether line l is present, updating recency on a hit.
func (c *SetAssoc) Lookup(l mem.Line) bool {
	ch, base := c.slotBase(l)
	if ch.lines != nil {
		for w := 0; w < c.ways; w++ {
			i := base + w
			if ch.valid[i] && ch.lines[i] == l {
				ch.touch(base, i, c.ways)
				c.hits++
				return true
			}
		}
	}
	c.misses++
	return false
}

// Contains reports presence without updating recency or hit counters.
func (c *SetAssoc) Contains(l mem.Line) bool {
	ch, base := c.slotBase(l)
	if ch.lines == nil {
		return false
	}
	for w := 0; w < c.ways; w++ {
		i := base + w
		if ch.valid[i] && ch.lines[i] == l {
			return true
		}
	}
	return false
}

// Insert places line l, evicting the LRU way if the set is full. It returns
// the evicted line and whether an eviction happened. Inserting a present
// line only refreshes recency.
func (c *SetAssoc) Insert(l mem.Line) (mem.Line, bool) {
	ch, base := c.slotBase(l)
	if ch.lines == nil {
		n := setsPerChunk * c.ways
		ch.lines = make([]mem.Line, n)
		ch.valid = make([]bool, n)
		ch.lru = make([]uint8, n)
	}
	victim := -1
	var worst uint8
	for w := 0; w < c.ways; w++ {
		i := base + w
		if ch.valid[i] && ch.lines[i] == l {
			ch.touch(base, i, c.ways)
			return 0, false
		}
		if !ch.valid[i] {
			if victim == -1 || ch.valid[victim] {
				victim = i
			}
		} else if victim == -1 || (ch.valid[victim] && ch.lru[i] > worst) {
			victim = i
			worst = ch.lru[i]
		}
	}
	evicted := ch.lines[victim]
	hadEvict := ch.valid[victim]
	ch.lines[victim] = l
	ch.valid[victim] = true
	// A freshly filled slot ranks as least-recent so that touch ages
	// every other valid way exactly once.
	ch.lru[victim] = uint8(c.ways)
	ch.touch(base, victim, c.ways)
	if hadEvict {
		c.evictions++
	}
	return evicted, hadEvict
}

// Invalidate removes line l if present.
func (c *SetAssoc) Invalidate(l mem.Line) {
	ch, base := c.slotBase(l)
	if ch.lines == nil {
		return
	}
	for w := 0; w < c.ways; w++ {
		i := base + w
		if ch.valid[i] && ch.lines[i] == l {
			ch.valid[i] = false
			return
		}
	}
}

// touch makes slot i the MRU of its set, aging the ways that were more
// recent than it.
func (ch *setChunk) touch(base, i, ways int) {
	old := ch.lru[i]
	for w := 0; w < ways; w++ {
		j := base + w
		if j != i && ch.valid[j] && ch.lru[j] < old {
			ch.lru[j]++
		}
	}
	ch.lru[i] = 0
}

// Hits, Misses and Evictions report access outcomes.
func (c *SetAssoc) Hits() uint64      { return c.hits }
func (c *SetAssoc) Misses() uint64    { return c.misses }
func (c *SetAssoc) Evictions() uint64 { return c.evictions }
