// Package cache models the three-level cache hierarchy and the MESI-style
// directory of Table II. Only presence and coherence metadata are tracked —
// data values travel through the persist path (package persist) — but
// placement is a real set-associative LRU model so that hit rates, remote
// transfers and LLC evictions behave realistically.
package cache

import "asap/internal/mem"

// setsPerChunk is the granularity of lazy slot-state allocation. Building a
// cache no longer allocates (and zeroes) arrays for its full capacity;
// state materializes one chunk of sets at a time on first insert. Workloads
// whose footprint covers a fraction of the LLC — the common case for the
// experiment sweeps, which construct thousands of machines — only ever pay
// for the chunks they touch.
const setsPerChunk = 64

// invalidLine marks an empty way. Line keys are stored as uint32 (see
// slot), and the all-ones value would be a byte address past 2^37 — the
// address map keeps PM lines far below that (mem lines start at 2^26 for
// megabyte-scale heaps), and key32 enforces the cap. Folding validity into
// the key lets every set scan compare a single word per way.
const invalidLine = ^uint32(0)

// slot packs one way's entire state — line key, validity, and LRU recency
// stamp — into eight bytes, so a set probe (the operation every access
// repeats three to eight times) touches exactly one CPU cache line for an
// 8-way set, and a hit's recency update lands in the line the scan already
// loaded. The previous parallel lines/stamps arrays cost a second cache
// miss per touch and doubled the state footprint; on a multi-megabyte
// hierarchy those misses, not the compare loop, dominate the probe.
type slot struct {
	line uint32
	// stamp is the cache-wide recency stamp of this way's last touch;
	// higher = more recent. Stamps are unique while occupied, so the
	// occupied way with the smallest stamp is exactly the set's LRU way.
	stamp uint32
}

// setChunk holds the way state for setsPerChunk consecutive sets. A nil
// slots slice marks a chunk no insert has reached yet.
type setChunk struct {
	slots []slot
}

// SetAssoc is a set-associative cache of line presence with LRU replacement.
type SetAssoc struct {
	sets int
	ways int
	// mask indexes sets without a divide when sets is a power of two
	// (pow2 true) — every Table II geometry. Other set counts fall back
	// to the modulo path.
	mask   uint64
	pow2   bool
	chunks []setChunk

	// tick is the source of recency stamps: every touch assigns the next
	// value, making LRU selection a single min-scan instead of the
	// classic rank-shuffling walk. On the (rare) wrap the stamps are
	// compacted per set, preserving relative order.
	tick uint32

	hits, misses, evictions uint64
}

// NewSetAssoc builds a cache of sizeBytes capacity with the given
// associativity over 64-byte lines. Sizes that do not divide evenly are
// rounded down to a whole number of sets (minimum one).
func NewSetAssoc(sizeBytes, ways int) *SetAssoc {
	if ways <= 0 || sizeBytes <= 0 {
		panic("cache: size and ways must be positive")
	}
	numLines := sizeBytes / mem.LineSize
	sets := numLines / ways
	if sets == 0 {
		sets = 1
	}
	c := &SetAssoc{
		sets:   sets,
		ways:   ways,
		chunks: make([]setChunk, (sets+setsPerChunk-1)/setsPerChunk),
	}
	if sets&(sets-1) == 0 {
		c.pow2 = true
		c.mask = uint64(sets - 1)
	}
	return c
}

// key32 narrows a line to the packed key width, enforcing the
// representation cap. The address map keeps every real line far below
// 2^32 (PM begins at byte address 2^32, line 2^26); hitting this panic
// means the layout changed and the slot key must widen with it. Only the
// insert paths call it — probe paths (Lookup, Contains, Invalidate)
// instead compare the stored key widened to 64 bits, which is exact
// without any guard: every resident key passed this check on insert, so
// an oversized probe line can never falsely match, it just misses.
func key32(l mem.Line) uint32 {
	if uint64(l) >= uint64(invalidLine) {
		panic("cache: line number exceeds the packed-slot 2^32-1 cap")
	}
	return uint32(l)
}

// setOf maps line l to its set index.
func (c *SetAssoc) setOf(l mem.Line) int {
	if c.pow2 {
		return int(uint64(l) & c.mask)
	}
	return int(uint64(l) % uint64(c.sets))
}

// slotBase locates the chunk holding line l's set and the set's base index
// within that chunk. The unsigned arithmetic matters: set is provably
// non-negative, and telling the compiler so turns the /64 and %64 into a
// shift and a mask instead of signed-division fix-up sequences — this
// helper is inlined into every probe the simulator makes.
func (c *SetAssoc) slotBase(l mem.Line) (*setChunk, int) {
	set := uint(c.setOf(l))
	return &c.chunks[set/setsPerChunk], int(set%setsPerChunk) * c.ways
}

// materialize allocates a chunk's way state with every way empty.
func (ch *setChunk) materialize(n int) {
	ch.slots = make([]slot, n) //asaplint:ignore alloccheck lazy one-time materialization, at most once per chunk
	for i := range ch.slots {
		ch.slots[i].line = invalidLine
	}
}

// Lookup reports whether line l is present, updating recency and the
// hit/miss counters. Use Contains for presence probes that are not real
// cache accesses (invalidation filters, tests) so hit rates stay honest.
func (c *SetAssoc) Lookup(l mem.Line) bool {
	k := uint64(l)
	ch, base := c.slotBase(l)
	if ch.slots != nil {
		set := ch.slots[base : base+c.ways]
		for w := range set {
			if uint64(set[w].line) == k {
				c.touch(&set[w])
				c.hits++
				return true
			}
		}
	}
	c.misses++
	return false
}

// Contains reports presence without updating recency or hit counters.
func (c *SetAssoc) Contains(l mem.Line) bool {
	k := uint64(l)
	ch, base := c.slotBase(l)
	if ch.slots == nil {
		return false
	}
	set := ch.slots[base : base+c.ways]
	for w := range set {
		if uint64(set[w].line) == k {
			return true
		}
	}
	return false
}

// Insert places line l, evicting the LRU way if the set is full. It returns
// the evicted line and whether an eviction happened. Inserting a present
// line only refreshes recency.
func (c *SetAssoc) Insert(l mem.Line) (mem.Line, bool) {
	k := key32(l)
	ch, base := c.slotBase(l)
	if ch.slots == nil {
		ch.materialize(setsPerChunk * c.ways)
	}
	set := ch.slots[base : base+c.ways]
	// Hit scan first: refreshing a resident line is the common case on
	// fill paths (the lower levels usually already hold it), and this
	// loop is a single compare per way.
	for w := range set {
		if set[w].line == k {
			c.touch(&set[w])
			return 0, false
		}
	}
	// Miss: fill the first empty way if there is one; otherwise evict the
	// occupied way with the smallest stamp — the set's LRU.
	victim := 0
	oldest := ^uint32(0)
	for w := range set {
		if set[w].line == invalidLine {
			set[w].line = k
			c.touch(&set[w])
			return 0, false
		}
		if s := set[w].stamp; s < oldest {
			oldest = s
			victim = w
		}
	}
	evicted := mem.Line(set[victim].line)
	set[victim].line = k
	c.touch(&set[victim])
	c.evictions++
	return evicted, true
}

// InsertAbsent places line l, which the caller knows is NOT present —
// either its Lookup just missed, or a coherence invariant rules the line
// out (a remote transfer means every other holder was invalidated by the
// owning core's write). Skipping Insert's hit scan halves the work of the
// fill paths. Returns the evicted line and whether an eviction happened.
func (c *SetAssoc) InsertAbsent(l mem.Line) (mem.Line, bool) {
	k := key32(l)
	ch, base := c.slotBase(l)
	if ch.slots == nil {
		ch.materialize(setsPerChunk * c.ways)
	}
	set := ch.slots[base : base+c.ways]
	victim := 0
	oldest := ^uint32(0)
	for w := range set {
		if set[w].line == invalidLine {
			set[w].line = k
			c.touch(&set[w])
			return 0, false
		}
		if s := set[w].stamp; s < oldest {
			oldest = s
			victim = w
		}
	}
	evicted := mem.Line(set[victim].line)
	set[victim].line = k
	c.touch(&set[victim])
	c.evictions++
	return evicted, true
}

// Invalidate removes line l if present.
func (c *SetAssoc) Invalidate(l mem.Line) {
	k := uint64(l)
	ch, base := c.slotBase(l)
	if ch.slots == nil {
		return
	}
	set := ch.slots[base : base+c.ways]
	for w := range set {
		if uint64(set[w].line) == k {
			set[w].line = invalidLine
			return
		}
	}
}

// touch makes a way the MRU of its set by assigning the next recency
// stamp — O(1), where the classic rank-based LRU walks the whole set to
// age more-recent ways. The recency ORDER the two schemes maintain is
// identical, so every eviction decision (and with it every golden table)
// is unchanged.
func (c *SetAssoc) touch(s *slot) {
	c.tick++
	if c.tick == 0 {
		// The 32-bit tick wrapped (once per ~4.3 billion touches on one
		// cache). Compact every set's stamps down to small values,
		// preserving their relative order, then resume above them.
		c.tick = c.compact() + 1
	}
	s.stamp = c.tick
}

// compact renormalizes all stamps after a tick wrap: within each set,
// occupied ways are re-stamped 1..k in their existing recency order
// (stamps are unique within a set, so the order is total). Returns the
// highest stamp assigned. Runs once per 2^32 touches; cost is
// O(capacity · ways).
func (c *SetAssoc) compact() uint32 {
	ranks := make([]uint32, c.ways) //asaplint:ignore alloccheck stamp-wrap renormalization runs once per 2^32 touches
	max := uint32(0)
	for ci := range c.chunks {
		ch := &c.chunks[ci]
		for base := 0; base+c.ways <= len(ch.slots); base += c.ways {
			set := ch.slots[base : base+c.ways]
			for w := 0; w < c.ways; w++ {
				r := uint32(1)
				for v := 0; v < c.ways; v++ {
					if v != w && set[v].line != invalidLine && set[v].stamp < set[w].stamp {
						r++
					}
				}
				ranks[w] = r
			}
			for w := 0; w < c.ways; w++ {
				if set[w].line != invalidLine {
					set[w].stamp = ranks[w]
					if ranks[w] > max {
						max = ranks[w]
					}
				}
			}
		}
	}
	return max
}

// Hits, Misses and Evictions report access outcomes.
func (c *SetAssoc) Hits() uint64      { return c.hits }
func (c *SetAssoc) Misses() uint64    { return c.misses }
func (c *SetAssoc) Evictions() uint64 { return c.evictions }
