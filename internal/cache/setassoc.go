// Package cache models the three-level cache hierarchy and the MESI-style
// directory of Table II. Only presence and coherence metadata are tracked —
// data values travel through the persist path (package persist) — but
// placement is a real set-associative LRU model so that hit rates, remote
// transfers and LLC evictions behave realistically.
package cache

import "asap/internal/mem"

// SetAssoc is a set-associative cache of line presence with LRU replacement.
type SetAssoc struct {
	sets  int
	ways  int
	lines []mem.Line // sets*ways entries; 0 slot uses valid mask
	valid []bool
	// lru[i] is the recency rank of slot i within its set: 0 = MRU.
	lru []uint8

	hits, misses, evictions uint64
}

// NewSetAssoc builds a cache of sizeBytes capacity with the given
// associativity over 64-byte lines. Sizes that do not divide evenly are
// rounded down to a whole number of sets (minimum one).
func NewSetAssoc(sizeBytes, ways int) *SetAssoc {
	if ways <= 0 || sizeBytes <= 0 {
		panic("cache: size and ways must be positive")
	}
	numLines := sizeBytes / mem.LineSize
	sets := numLines / ways
	if sets == 0 {
		sets = 1
	}
	n := sets * ways
	return &SetAssoc{
		sets:  sets,
		ways:  ways,
		lines: make([]mem.Line, n),
		valid: make([]bool, n),
		lru:   make([]uint8, n),
	}
}

func (c *SetAssoc) setOf(l mem.Line) int { return int(uint64(l) % uint64(c.sets)) }

// Lookup reports whether line l is present, updating recency on a hit.
func (c *SetAssoc) Lookup(l mem.Line) bool {
	base := c.setOf(l) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.lines[i] == l {
			c.touch(base, i)
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Contains reports presence without updating recency or hit counters.
func (c *SetAssoc) Contains(l mem.Line) bool {
	base := c.setOf(l) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.lines[i] == l {
			return true
		}
	}
	return false
}

// Insert places line l, evicting the LRU way if the set is full. It returns
// the evicted line and whether an eviction happened. Inserting a present
// line only refreshes recency.
func (c *SetAssoc) Insert(l mem.Line) (mem.Line, bool) {
	base := c.setOf(l) * c.ways
	victim := -1
	var worst uint8
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.lines[i] == l {
			c.touch(base, i)
			return 0, false
		}
		if !c.valid[i] {
			if victim == -1 || c.valid[victim] {
				victim = i
			}
		} else if victim == -1 || (c.valid[victim] && c.lru[i] > worst) {
			victim = i
			worst = c.lru[i]
		}
	}
	evicted := c.lines[victim]
	hadEvict := c.valid[victim]
	c.lines[victim] = l
	c.valid[victim] = true
	// A freshly filled slot ranks as least-recent so that touch ages
	// every other valid way exactly once.
	c.lru[victim] = uint8(c.ways)
	c.touch(base, victim)
	if hadEvict {
		c.evictions++
	}
	return evicted, hadEvict
}

// Invalidate removes line l if present.
func (c *SetAssoc) Invalidate(l mem.Line) {
	base := c.setOf(l) * c.ways
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.lines[i] == l {
			c.valid[i] = false
			return
		}
	}
}

// touch makes slot i the MRU of its set, aging the ways that were more
// recent than it.
func (c *SetAssoc) touch(base, i int) {
	old := c.lru[i]
	for w := 0; w < c.ways; w++ {
		j := base + w
		if j != i && c.valid[j] && c.lru[j] < old {
			c.lru[j]++
		}
	}
	c.lru[i] = 0
}

// Hits, Misses and Evictions report access outcomes.
func (c *SetAssoc) Hits() uint64      { return c.hits }
func (c *SetAssoc) Misses() uint64    { return c.misses }
func (c *SetAssoc) Evictions() uint64 { return c.evictions }
