package cache

import "asap/internal/mem"

// DirEntry is the directory's coherence and persistence metadata for one
// line. Beyond MESI owner/sharer state, it carries the last writer and the
// epoch timestamp of that write — the information ASAP piggybacks on
// coherence replies to build cross-thread dependencies (§IV-E) — and, for
// release persistency, whether the line was last written by a release.
type DirEntry struct {
	Owner        int    // core holding the line modified, -1 if none
	Sharers      uint64 // bitmask of cores with a (possibly clean) copy
	Dirty        bool
	LastWriter   int    // -1 if never written
	LastWriterTS uint64 // writer's epoch timestamp at the time of the write
	// Released marks a line last written by a release operation; with
	// release persistency only an acquire of such a line creates a
	// dependency (§IV-A).
	Released   bool
	ReleaseTS  uint64 // epoch TS of the releasing write
	ReleasedBy int
}

// dirSlabSize is the number of DirEntry values allocated per slab block.
const dirSlabSize = 512

// Directory tracks coherence state for every line touched by the machine.
type Directory struct {
	entries map[mem.Line]*DirEntry

	// slab is the current DirEntry allocation block. Entries are handed out
	// from it until it fills, then a fresh block is started; a block with
	// free capacity never reallocates, so the handed-out pointers stay
	// valid. This turns one heap allocation per first-touched line into one
	// per dirSlabSize lines.
	slab []DirEntry

	// scratch backs the *Conflict returned by Read and Write; it is valid
	// only until the next directory operation, which keeps the conflict
	// path allocation-free. All models consume conflicts synchronously.
	scratch Conflict

	remoteTransfers uint64
	invalidations   uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{entries: make(map[mem.Line]*DirEntry)}
}

// Entry returns the entry for line l, creating it on first touch.
func (d *Directory) Entry(l mem.Line) *DirEntry {
	e, ok := d.entries[l]
	if !ok {
		if len(d.slab) == cap(d.slab) {
			d.slab = make([]DirEntry, 0, dirSlabSize)
		}
		d.slab = append(d.slab, DirEntry{Owner: -1, LastWriter: -1, ReleasedBy: -1})
		e = &d.slab[len(d.slab)-1]
		d.entries[l] = e
	}
	return e
}

// Peek returns the entry without creating one.
func (d *Directory) Peek(l mem.Line) (*DirEntry, bool) {
	e, ok := d.entries[l]
	return e, ok
}

// Conflict describes a remote access that hit a line modified by another
// core — the raw material for a cross-thread dependency. Pointers returned
// by Read and Write alias the directory's scratch storage and are valid
// only until the next directory operation.
type Conflict struct {
	Line     mem.Line
	Writer   int    // core that last modified the line
	WriterTS uint64 // epoch of that write
	// Remote is true when the access required a cache-to-cache transfer
	// from the modifying core — the coherence forwarding event that
	// establishes a dependency under epoch persistency (§IV-E).
	Remote bool
	// AcquireOnRelease is true when the access is an acquire operation on
	// a line last written by a release (the RP dependency condition).
	AcquireOnRelease bool
}

// Write records a store by core to line l within epoch ts, invalidating
// remote copies. It returns a Conflict when the line was last modified by a
// different core (strong persist atomicity, §II-A), along with whether a
// remote cache-to-cache transfer was required.
func (d *Directory) Write(core int, l mem.Line, ts uint64) (conflict *Conflict, remote bool) {
	e := d.Entry(l)
	if e.LastWriter >= 0 && e.LastWriter != core {
		d.scratch = Conflict{Line: l, Writer: e.LastWriter, WriterTS: e.LastWriterTS}
		conflict = &d.scratch
	}
	if e.Owner >= 0 && e.Owner != core {
		remote = true
		d.remoteTransfers++
		if conflict != nil {
			conflict.Remote = true
		}
	}
	if e.Sharers&^(1<<uint(core)) != 0 {
		d.invalidations++
	}
	e.Owner = core
	e.Sharers = 1 << uint(core)
	e.Dirty = true
	e.LastWriter = core
	e.LastWriterTS = ts
	e.Released = false
	return conflict, remote
}

// Read records a load by core of line l. A dirty remote copy is downgraded
// to shared (the data is supplied cache-to-cache). The returned Conflict is
// non-nil when the line's last writer is a different core.
func (d *Directory) Read(core int, l mem.Line, acquire bool) (conflict *Conflict, remote bool) {
	e := d.Entry(l)
	if e.LastWriter >= 0 && e.LastWriter != core {
		d.scratch = Conflict{Line: l, Writer: e.LastWriter, WriterTS: e.LastWriterTS}
		if acquire && e.Released {
			d.scratch.AcquireOnRelease = true
			d.scratch.Writer = e.ReleasedBy
			d.scratch.WriterTS = e.ReleaseTS
		}
		conflict = &d.scratch
	}
	if e.Dirty && e.Owner != core && e.Owner >= 0 {
		remote = true
		d.remoteTransfers++
		if conflict != nil {
			conflict.Remote = true
		}
		e.Dirty = false
		e.Owner = -1
	}
	e.Sharers |= 1 << uint(core)
	return conflict, remote
}

// MarkRelease tags line l as last written by a release from core within
// epoch ts. The machine calls this for the lock/flag line of a Release op.
func (d *Directory) MarkRelease(core int, l mem.Line, ts uint64) {
	e := d.Entry(l)
	e.Released = true
	e.ReleasedBy = core
	e.ReleaseTS = ts
}

// RemoteTransfers and Invalidations report coherence traffic.
func (d *Directory) RemoteTransfers() uint64 { return d.remoteTransfers }
func (d *Directory) Invalidations() uint64   { return d.invalidations }
