package cache

import "asap/internal/mem"

// DirEntry is the directory's coherence and persistence metadata for one
// line. Beyond MESI owner/sharer state, it carries the last writer and the
// epoch timestamp of that write — the information ASAP piggybacks on
// coherence replies to build cross-thread dependencies (§IV-E) — and, for
// release persistency, whether the line was last written by a release.
// Core-ID fields are int32 and the layout is ordered widest-first so a
// table slot (line key + entry) packs into 56 bytes — under one hardware
// cache line, where the naive int-everywhere layout straddled two and
// cost every directory probe a second miss.
type DirEntry struct {
	Sharers      uint64 // bitmask of cores with a (possibly clean) copy
	LastWriterTS uint64 // writer's epoch timestamp at the time of the write
	ReleaseTS    uint64 // epoch TS of the releasing write
	Owner        int32  // core holding the line modified, -1 if none
	LastWriter   int32  // -1 if never written
	ReleasedBy   int32
	Dirty        bool
	// Released marks a line last written by a release operation; with
	// release persistency only an acquire of such a line creates a
	// dependency (§IV-A).
	Released bool
}

// dirSlot is one open-addressed table slot with its entry stored INLINE:
// a successful probe lands directly on the coherence state instead of
// chasing a pointer into a separate slab — on a multi-megabyte simulated
// hierarchy that pointer hop is a second hardware cache miss on every
// single access. The used flag marks occupancy (line 0 is a valid key, so
// it cannot ride on the key).
type dirSlot struct {
	line mem.Line
	used bool
	e    DirEntry
}

// dirInitSlots is the initial table size; must be a power of two.
const dirInitSlots = 1024

// Directory tracks coherence state for every line touched by the machine.
//
// The line → entry index is a power-of-two open-addressed table with
// linear probing. Entries are never deleted (a line's coherence history
// is kept for the whole run), so the table needs no tombstones and a
// probe sequence ends at the first empty slot. Compared to the previous
// Go map this removes the hash-interface and bucket overhead from the
// two probes every access pays (the Write/Read at the front and the
// eviction peek at the back).
//
// Entry and Peek return pointers INTO the table: they stay valid only
// until an Entry call on a previously unseen line grows the table. Every
// caller uses the entry transiently, within one hierarchy operation, so
// the hot path never re-finds an entry it is already holding.
type Directory struct {
	slots []dirSlot // len is a power of two
	mask  uint64    // len(slots) - 1
	count int       // occupied slots; grows at 3/4 load

	// scratch backs the *Conflict returned by Read and Write; it is valid
	// only until the next directory operation, which keeps the conflict
	// path allocation-free. All models consume conflicts synchronously.
	scratch Conflict

	remoteTransfers uint64
	invalidations   uint64
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{
		slots: make([]dirSlot, dirInitSlots),
		mask:  dirInitSlots - 1,
	}
}

// dirHash spreads line numbers across the table (Fibonacci hashing).
// Workload lines are sequential within a structure, so the low bits alone
// would cluster whole regions onto neighbouring probe chains.
func dirHash(l mem.Line) uint64 {
	return uint64(l) * 0x9E3779B97F4A7C15
}

// find returns the slot index holding l, or the empty slot where l would
// be inserted.
func (d *Directory) find(l mem.Line) int {
	i := (dirHash(l) >> 32) & d.mask
	for {
		s := &d.slots[i]
		if !s.used || s.line == l {
			return int(i)
		}
		i = (i + 1) & d.mask
	}
}

// Entry returns the entry for line l, creating it on first touch. The
// pointer aliases the table and is invalidated by a later first-touch
// Entry that grows the table — use it within the current operation only.
func (d *Directory) Entry(l mem.Line) *DirEntry {
	i := d.find(l)
	if d.slots[i].used {
		return &d.slots[i].e
	}
	// Grow BEFORE inserting so the returned pointer is not immediately
	// invalidated by this call's own rehash.
	if uint64(d.count+1)*4 >= uint64(len(d.slots))*3 {
		d.grow()
		i = d.find(l)
	}
	d.slots[i] = dirSlot{line: l, used: true, e: DirEntry{Owner: -1, LastWriter: -1, ReleasedBy: -1}}
	d.count++
	return &d.slots[i].e
}

// grow doubles the table and re-places every occupied slot, entries and
// all. Outstanding entry pointers are invalidated; see the Directory
// contract.
func (d *Directory) grow() {
	old := d.slots
	d.slots = make([]dirSlot, len(old)*2) //asaplint:ignore alloccheck amortized doubling; steady-state ops never grow
	d.mask = uint64(len(d.slots)) - 1
	for _, s := range old {
		if !s.used {
			continue
		}
		i := (dirHash(s.line) >> 32) & d.mask
		for d.slots[i].used {
			i = (i + 1) & d.mask
		}
		d.slots[i] = s
	}
}

// Peek returns the entry without creating one. The pointer aliases the
// table; the same transient-use contract as Entry applies.
func (d *Directory) Peek(l mem.Line) (*DirEntry, bool) {
	if s := &d.slots[d.find(l)]; s.used {
		return &s.e, true
	}
	return nil, false
}

// Len reports the number of lines with directory state (tests).
func (d *Directory) Len() int { return d.count }

// Conflict describes a remote access that hit a line modified by another
// core — the raw material for a cross-thread dependency. Pointers returned
// by Read and Write alias the directory's scratch storage and are valid
// only until the next directory operation.
type Conflict struct {
	Line     mem.Line
	Writer   int    // core that last modified the line
	WriterTS uint64 // epoch of that write
	// Remote is true when the access required a cache-to-cache transfer
	// from the modifying core — the coherence forwarding event that
	// establishes a dependency under epoch persistency (§IV-E).
	Remote bool
	// AcquireOnRelease is true when the access is an acquire operation on
	// a line last written by a release (the RP dependency condition).
	AcquireOnRelease bool
}

// Write records a store by core to line l within epoch ts. It returns a
// Conflict when the line was last modified by a different core (strong
// persist atomicity, §II-A), whether a remote cache-to-cache transfer was
// required, and the bitmask of other cores that may hold a copy — the
// sharers the hierarchy must invalidate. The directory's own sharer state
// is reset to the writer alone.
func (d *Directory) Write(core int, l mem.Line, ts uint64) (conflict *Conflict, remote bool, invalidate uint64) {
	e := d.Entry(l)
	c32 := int32(core)
	if e.LastWriter >= 0 && e.LastWriter != c32 {
		d.scratch = Conflict{Line: l, Writer: int(e.LastWriter), WriterTS: e.LastWriterTS}
		conflict = &d.scratch
	}
	if e.Owner >= 0 && e.Owner != c32 {
		remote = true
		d.remoteTransfers++
		if conflict != nil {
			conflict.Remote = true
		}
	}
	invalidate = e.Sharers &^ (1 << uint(core))
	if invalidate != 0 {
		d.invalidations++
	}
	e.Owner = c32
	e.Sharers = 1 << uint(core)
	e.Dirty = true
	e.LastWriter = c32
	e.LastWriterTS = ts
	e.Released = false
	return conflict, remote, invalidate
}

// Read records a load by core of line l. A dirty remote copy is downgraded
// to shared (the data is supplied cache-to-cache). The returned Conflict is
// non-nil when the line's last writer is a different core.
func (d *Directory) Read(core int, l mem.Line, acquire bool) (conflict *Conflict, remote bool) {
	e := d.Entry(l)
	c32 := int32(core)
	if e.LastWriter >= 0 && e.LastWriter != c32 {
		d.scratch = Conflict{Line: l, Writer: int(e.LastWriter), WriterTS: e.LastWriterTS}
		if acquire && e.Released {
			d.scratch.AcquireOnRelease = true
			d.scratch.Writer = int(e.ReleasedBy)
			d.scratch.WriterTS = e.ReleaseTS
		}
		conflict = &d.scratch
	}
	if e.Dirty && e.Owner != c32 && e.Owner >= 0 {
		remote = true
		d.remoteTransfers++
		if conflict != nil {
			conflict.Remote = true
		}
		e.Dirty = false
		e.Owner = -1
	}
	e.Sharers |= 1 << uint(core)
	return conflict, remote
}

// ClearSharer drops core from line l's sharer vector. The hierarchy calls
// this when the core's last private copy of the line is evicted, keeping
// the vector precise so stores invalidate only caches that can actually
// hold the line.
func (d *Directory) ClearSharer(core int, l mem.Line) {
	if s := &d.slots[d.find(l)]; s.used {
		s.e.Sharers &^= 1 << uint(core)
	}
}

// MarkRelease tags line l as last written by a release from core within
// epoch ts. The machine calls this for the lock/flag line of a Release op.
func (d *Directory) MarkRelease(core int, l mem.Line, ts uint64) {
	e := d.Entry(l)
	e.Released = true
	e.ReleasedBy = int32(core)
	e.ReleaseTS = ts
}

// RemoteTransfers and Invalidations report coherence traffic.
func (d *Directory) RemoteTransfers() uint64 { return d.remoteTransfers }
func (d *Directory) Invalidations() uint64   { return d.invalidations }
