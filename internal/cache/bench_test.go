package cache

import (
	"testing"

	"asap/internal/config"
	"asap/internal/mem"
)

// BenchmarkHierarchyAccess measures the full per-access path — directory
// update, three cache levels, LLC fill and eviction collection — on a
// mixed read/write stream with cross-core sharing. This is the single
// hottest call in the machine's op loop; benchdiff gates it at zero
// allocations per access.
func BenchmarkHierarchyAccess(b *testing.B) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	const lines = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := i % cfg.Cores
		line := mem.Line(i % lines)
		write := i%3 == 0
		res := h.Access(core, line, write, false, uint64(i))
		_ = res.Latency
	}
}
