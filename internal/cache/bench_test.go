package cache

import (
	"math/rand"
	"testing"

	"asap/internal/config"
	"asap/internal/mem"
)

// benchStep packs one precomputed access — line (low 32 bits), core
// (bits 32..39) and the write flag (bit 40) — into a single word so the
// timed loop's per-step overhead is one load and two shifts, keeping the
// measurement on the memory system rather than the RNG or the pattern
// array.
type benchStep uint64

func (s benchStep) line() mem.Line { return mem.Line(uint32(s)) }
func (s benchStep) core() int      { return int(s>>32) & 0xFF }
func (s benchStep) write() bool    { return s>>40&1 != 0 }

// sharingMix builds a write-heavy multi-core stream over a small shared
// working set: the cores take turns round-robin — the machine's event
// loop steps them the same way — and every core hammers the same `shared`
// hot lines (writeFrac of accesses are writes, so the directory is
// constantly transferring ownership and invalidating sharers) with
// excursions into a per-core private region that forces fills and
// evictions without coherence traffic.
func sharingMix(cores, steps, shared, private int, writeFrac float64) []benchStep {
	rng := rand.New(rand.NewSource(42))
	mix := make([]benchStep, steps)
	for i := range mix {
		core := i % cores
		s := benchStep(core) << 32
		if rng.Float64() < writeFrac {
			s |= 1 << 40
		}
		if rng.Intn(4) == 0 { // 25%: this core's private lines
			s |= benchStep(shared + core*private + rng.Intn(private))
		} else { // 75%: contended shared lines
			s |= benchStep(rng.Intn(shared))
		}
		mix[i] = s
	}
	return mix
}

// BenchmarkHierarchyAccess measures the full per-access path — directory
// update, sharer-directed invalidation, three cache levels, LLC fill and
// eviction collection — on a write-heavy stream with dense cross-core
// sharing. This is the single hottest call in the machine's op loop;
// benchdiff gates it at zero allocations per access.
func BenchmarkHierarchyAccess(b *testing.B) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	mix := sharingMix(cfg.Cores, 1<<14, 64, 256, 0.6)
	// One warm-up pass: directory growth and scratch-slice sizing happen
	// here so the timed loop measures the steady state the machine sees.
	for i, s := range mix {
		h.Access(s.core(), s.line(), s.write(), false, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mix[i&(len(mix)-1)]
		res := h.Access(s.core(), s.line(), s.write(), false, uint64(i))
		_ = res.Latency
	}
}

// BenchmarkDirectoryAccess isolates the open-addressed directory: a mixed
// Read/Write stream across a line universe large enough to have forced
// several table doublings, so the measured cost includes realistic probe
// distances rather than a half-empty table's best case.
func BenchmarkDirectoryAccess(b *testing.B) {
	d := NewDirectory()
	const cores = 8
	const lines = 1 << 15
	// Populate up front: growth happens here, not in the timed loop.
	for l := 0; l < lines; l++ {
		d.Read(l%cores, mem.Line(l), false)
	}
	mix := sharingMix(cores, 1<<14, lines/4, lines-lines/4, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mix[i&(len(mix)-1)]
		if s.write() {
			_, _, _ = d.Write(s.core(), s.line(), uint64(i))
		} else {
			_, _ = d.Read(s.core(), s.line(), false)
		}
	}
}

// BenchmarkSetAssocLookup isolates one cache level: Lookup on a warm
// set-associative array with a mix of hits (resident lines) and misses,
// exercising the masked set index and packed slot scan.
func BenchmarkSetAssocLookup(b *testing.B) {
	cfg := config.Default()
	c := NewSetAssoc(cfg.LLCSize, cfg.LLCWays)
	resident := cfg.LLCSize / 64
	for l := 0; l < resident; l++ {
		c.Insert(mem.Line(l))
	}
	rng := rand.New(rand.NewSource(7))
	probes := make([]mem.Line, 1<<14)
	for i := range probes {
		if rng.Intn(4) == 0 { // 25% misses
			probes[i] = mem.Line(resident + rng.Intn(resident))
		} else {
			probes[i] = mem.Line(rng.Intn(resident))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Lookup(probes[i&(len(probes)-1)])
	}
}
