package cache

import (
	"testing"
	"testing/quick"

	"asap/internal/config"
	"asap/internal/mem"
)

func TestSetAssocLRU(t *testing.T) {
	// 2 sets x 2 ways over 64 B lines: 256 bytes.
	c := NewSetAssoc(256, 2)
	// Lines 0 and 2 map to set 0; 1 and 3 to set 1.
	c.Insert(0)
	c.Insert(2)
	if !c.Contains(0) || !c.Contains(2) {
		t.Fatal("fills lost")
	}
	c.Lookup(0)            // 0 is now MRU; 2 is LRU
	ev, had := c.Insert(4) // set 0 again
	if !had || ev != 2 {
		t.Fatalf("evicted (%d,%v), want (2,true)", ev, had)
	}
	if !c.Contains(0) || !c.Contains(4) {
		t.Fatal("wrong lines evicted")
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	c := NewSetAssoc(256, 2)
	c.Insert(1)
	c.Invalidate(1)
	if c.Contains(1) {
		t.Fatal("invalidate failed")
	}
	c.Invalidate(99) // no-op
}

func TestSetAssocCounters(t *testing.T) {
	c := NewSetAssoc(256, 2)
	c.Lookup(1)
	c.Insert(1)
	c.Lookup(1)
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// TestSetAssocNeverExceedsCapacity (property): after any access sequence,
// each set holds at most `ways` lines and reinsertion never evicts.
func TestSetAssocNeverExceedsCapacity(t *testing.T) {
	prop := func(lines []uint8) bool {
		c := NewSetAssoc(512, 4) // 2 sets x 4 ways
		for _, l := range lines {
			c.Insert(mem.Line(l % 32))
		}
		// Present lines re-inserted must not evict.
		for _, l := range lines {
			ln := mem.Line(l % 32)
			if c.Contains(ln) {
				if _, had := c.Insert(ln); had {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryWriteConflict(t *testing.T) {
	d := NewDirectory()
	if cf, remote, inv := d.Write(0, 7, 5); cf != nil || remote || inv != 0 {
		t.Fatal("first write should not conflict or invalidate")
	}
	cf, remote, inv := d.Write(1, 7, 9)
	if cf == nil || !remote {
		t.Fatal("second writer must see a remote conflict")
	}
	if inv != 1<<0 {
		t.Fatalf("invalidate mask = %b, want core 0 only", inv)
	}
	if cf.Writer != 0 || cf.WriterTS != 5 || !cf.Remote {
		t.Fatalf("conflict fields wrong: %+v", cf)
	}
	if d.Invalidations() == 0 || d.RemoteTransfers() == 0 {
		t.Fatal("coherence traffic not counted")
	}
}

func TestDirectoryReadDowngrade(t *testing.T) {
	d := NewDirectory()
	d.Write(0, 7, 5)
	cf, remote := d.Read(1, 7, false)
	if cf == nil || !remote {
		t.Fatal("read of a dirty remote line must transfer")
	}
	// Second read: line is now shared; no remote transfer, but the last
	// writer is still known.
	cf, remote = d.Read(2, 7, false)
	if remote {
		t.Fatal("shared line should not transfer again")
	}
	if cf == nil || cf.Writer != 0 || cf.Remote {
		t.Fatalf("conflict metadata wrong: %+v", cf)
	}
}

func TestDirectoryAcquireRelease(t *testing.T) {
	d := NewDirectory()
	d.Write(0, 7, 5)
	d.MarkRelease(0, 7, 5)
	cf, _ := d.Read(1, 7, true)
	if cf == nil || !cf.AcquireOnRelease || cf.Writer != 0 || cf.WriterTS != 5 {
		t.Fatalf("acquire-on-release not detected: %+v", cf)
	}
	// A plain read must not claim acquire semantics.
	cf, _ = d.Read(2, 7, false)
	if cf != nil && cf.AcquireOnRelease {
		t.Fatal("plain read flagged as acquire")
	}
	// A new write clears the release tag.
	d.Write(2, 7, 3)
	cf, _ = d.Read(3, 7, true)
	if cf != nil && cf.AcquireOnRelease {
		t.Fatal("release tag survived a write")
	}
}

func TestHierarchyLevels(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	l := mem.Line(100)

	r1 := h.Access(0, l, false, false, 1)
	if r1.Level != LevelMem {
		t.Fatalf("cold access level %q", r1.Level)
	}
	// The result aliases hierarchy scratch: copy what outlives the next
	// Access.
	coldLatency := r1.Latency
	r2 := h.Access(0, l, false, false, 1)
	if r2.Level != LevelL1 {
		t.Fatalf("warm access level %q", r2.Level)
	}
	if r2.Latency >= coldLatency {
		t.Fatal("L1 hit should be cheaper than a memory fill")
	}
}

func TestHierarchyRemoteTransfer(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	l := mem.Line(200)
	h.Access(0, l, true, false, 1) // core 0 dirties the line
	r := h.Access(1, l, false, false, 1)
	if r.Level != LevelRemote {
		t.Fatalf("expected remote supply, got %q", r.Level)
	}
	if r.Conflict == nil || r.Conflict.Writer != 0 {
		t.Fatal("conflict not reported")
	}
}

func TestHierarchyWriteInvalidates(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	l := mem.Line(300)
	h.Access(0, l, false, false, 1)
	h.Access(1, l, true, false, 1) // core 1 writes: invalidates core 0
	r := h.Access(0, l, false, false, 1)
	if r.Level == LevelL1 || r.Level == LevelL2 {
		t.Fatalf("core 0 should have been invalidated, hit %q", r.Level)
	}
}

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{
		LevelL1: "l1", LevelL2: "l2", LevelRemote: "remote",
		LevelLLC: "llc", LevelMem: "mem",
	}
	for lvl, s := range want {
		if lvl.String() != s {
			t.Fatalf("Level(%d).String() = %q, want %q", lvl, lvl.String(), s)
		}
	}
	if Level(200).String() != "level?" {
		t.Fatal("unknown level must not panic")
	}
}

// TestContainsDoesNotCount pins the stats-honesty contract: presence probes
// from invalidation filters and tests must not perturb hit/miss counters,
// only real accesses through Lookup may.
func TestContainsDoesNotCount(t *testing.T) {
	c := NewSetAssoc(256, 2)
	c.Insert(1)
	for i := 0; i < 10; i++ {
		c.Contains(1)  // present
		c.Contains(42) // absent
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("Contains counted: hits=%d misses=%d, want 0/0", c.Hits(), c.Misses())
	}
	c.Lookup(1)
	c.Lookup(42)
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("Lookup miscounted: hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

// TestDirectoryGrowth drives the open-addressed table through several
// doublings and checks that entry STATE survives every rehash and lookups
// still find every line — including line 0, whose slot occupancy must not
// be conflated with the zero key. (Entries live inline in the table, so
// pointers are transient by contract; it is the values that must persist.)
func TestDirectoryGrowth(t *testing.T) {
	d := NewDirectory()
	const n = 10 * dirInitSlots
	for i := 0; i < n; i++ {
		l := mem.Line(i * 7)
		d.Entry(l).LastWriter = int32(i % 8)
	}
	if d.Len() != n {
		t.Fatalf("Len() = %d, want %d", d.Len(), n)
	}
	for i := 0; i < n; i++ {
		l := mem.Line(i * 7)
		e, ok := d.Peek(l)
		if !ok || e.LastWriter != int32(i%8) {
			t.Fatalf("line %d: entry state lost after growth", l)
		}
	}
	if _, ok := d.Peek(mem.Line(3)); ok {
		t.Fatal("Peek invented an entry for an untouched line")
	}
}

// TestSharerTrimming checks fillPrivate's directory bookkeeping: once a
// core's private caches evict their last copy of a line, the core leaves
// the sharer vector, so a later write does not target it.
func TestSharerTrimming(t *testing.T) {
	cfg := config.Default()
	cfg.L1Size = 64 * 2 // 1 set x 2 ways
	cfg.L1Ways = 2
	cfg.L2Size = 64 * 2
	cfg.L2Ways = 2
	h := NewHierarchy(cfg)

	h.Access(0, 100, false, false, 1)
	if e, ok := h.Directory().Peek(100); !ok || e.Sharers&1 == 0 {
		t.Fatal("core 0 missing from sharers after read")
	}
	// Push line 100 out of both private levels (2 ways each).
	h.Access(0, 101, false, false, 1)
	h.Access(0, 102, false, false, 1)
	if h.L1(0).Contains(100) || h.L2(0).Contains(100) {
		t.Fatal("test setup: line 100 should have been evicted")
	}
	if e, _ := h.Directory().Peek(100); e.Sharers&1 != 0 {
		t.Fatalf("core 0 still in sharers (%b) after evicting its copies", e.Sharers)
	}
	// A write by core 1 therefore has nobody to invalidate.
	_, _, inv := h.Directory().Write(1, 100, 9)
	if inv != 0 {
		t.Fatalf("invalidate mask %b, want empty after trimming", inv)
	}
}

func TestHierarchyLLCEviction(t *testing.T) {
	cfg := config.Default()
	cfg.LLCSize = 64 * 16 // 16 lines
	cfg.LLCWays = 2
	h := NewHierarchy(cfg)
	var evicted int
	for i := 0; i < 64; i++ {
		r := h.Access(0, mem.Line(i*9+1), false, false, 1)
		evicted += len(r.LLCEvicted)
	}
	if evicted == 0 {
		t.Fatal("streaming through a tiny LLC must evict")
	}
}
