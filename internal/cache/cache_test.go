package cache

import (
	"testing"
	"testing/quick"

	"asap/internal/config"
	"asap/internal/mem"
)

func TestSetAssocLRU(t *testing.T) {
	// 2 sets x 2 ways over 64 B lines: 256 bytes.
	c := NewSetAssoc(256, 2)
	// Lines 0 and 2 map to set 0; 1 and 3 to set 1.
	c.Insert(0)
	c.Insert(2)
	if !c.Contains(0) || !c.Contains(2) {
		t.Fatal("fills lost")
	}
	c.Lookup(0)            // 0 is now MRU; 2 is LRU
	ev, had := c.Insert(4) // set 0 again
	if !had || ev != 2 {
		t.Fatalf("evicted (%d,%v), want (2,true)", ev, had)
	}
	if !c.Contains(0) || !c.Contains(4) {
		t.Fatal("wrong lines evicted")
	}
}

func TestSetAssocInvalidate(t *testing.T) {
	c := NewSetAssoc(256, 2)
	c.Insert(1)
	c.Invalidate(1)
	if c.Contains(1) {
		t.Fatal("invalidate failed")
	}
	c.Invalidate(99) // no-op
}

func TestSetAssocCounters(t *testing.T) {
	c := NewSetAssoc(256, 2)
	c.Lookup(1)
	c.Insert(1)
	c.Lookup(1)
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// TestSetAssocNeverExceedsCapacity (property): after any access sequence,
// each set holds at most `ways` lines and reinsertion never evicts.
func TestSetAssocNeverExceedsCapacity(t *testing.T) {
	prop := func(lines []uint8) bool {
		c := NewSetAssoc(512, 4) // 2 sets x 4 ways
		for _, l := range lines {
			c.Insert(mem.Line(l % 32))
		}
		// Present lines re-inserted must not evict.
		for _, l := range lines {
			ln := mem.Line(l % 32)
			if c.Contains(ln) {
				if _, had := c.Insert(ln); had {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryWriteConflict(t *testing.T) {
	d := NewDirectory()
	if cf, remote := d.Write(0, 7, 5); cf != nil || remote {
		t.Fatal("first write should not conflict")
	}
	cf, remote := d.Write(1, 7, 9)
	if cf == nil || !remote {
		t.Fatal("second writer must see a remote conflict")
	}
	if cf.Writer != 0 || cf.WriterTS != 5 || !cf.Remote {
		t.Fatalf("conflict fields wrong: %+v", cf)
	}
	if d.Invalidations() == 0 || d.RemoteTransfers() == 0 {
		t.Fatal("coherence traffic not counted")
	}
}

func TestDirectoryReadDowngrade(t *testing.T) {
	d := NewDirectory()
	d.Write(0, 7, 5)
	cf, remote := d.Read(1, 7, false)
	if cf == nil || !remote {
		t.Fatal("read of a dirty remote line must transfer")
	}
	// Second read: line is now shared; no remote transfer, but the last
	// writer is still known.
	cf, remote = d.Read(2, 7, false)
	if remote {
		t.Fatal("shared line should not transfer again")
	}
	if cf == nil || cf.Writer != 0 || cf.Remote {
		t.Fatalf("conflict metadata wrong: %+v", cf)
	}
}

func TestDirectoryAcquireRelease(t *testing.T) {
	d := NewDirectory()
	d.Write(0, 7, 5)
	d.MarkRelease(0, 7, 5)
	cf, _ := d.Read(1, 7, true)
	if cf == nil || !cf.AcquireOnRelease || cf.Writer != 0 || cf.WriterTS != 5 {
		t.Fatalf("acquire-on-release not detected: %+v", cf)
	}
	// A plain read must not claim acquire semantics.
	cf, _ = d.Read(2, 7, false)
	if cf != nil && cf.AcquireOnRelease {
		t.Fatal("plain read flagged as acquire")
	}
	// A new write clears the release tag.
	d.Write(2, 7, 3)
	cf, _ = d.Read(3, 7, true)
	if cf != nil && cf.AcquireOnRelease {
		t.Fatal("release tag survived a write")
	}
}

func TestHierarchyLevels(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	l := mem.Line(100)

	r1 := h.Access(0, l, false, false, 1)
	if r1.Level != "mem" {
		t.Fatalf("cold access level %q", r1.Level)
	}
	r2 := h.Access(0, l, false, false, 1)
	if r2.Level != "l1" {
		t.Fatalf("warm access level %q", r2.Level)
	}
	if r2.Latency >= r1.Latency {
		t.Fatal("L1 hit should be cheaper than a memory fill")
	}
}

func TestHierarchyRemoteTransfer(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	l := mem.Line(200)
	h.Access(0, l, true, false, 1) // core 0 dirties the line
	r := h.Access(1, l, false, false, 1)
	if r.Level != "remote" {
		t.Fatalf("expected remote supply, got %q", r.Level)
	}
	if r.Conflict == nil || r.Conflict.Writer != 0 {
		t.Fatal("conflict not reported")
	}
}

func TestHierarchyWriteInvalidates(t *testing.T) {
	cfg := config.Default()
	h := NewHierarchy(cfg)
	l := mem.Line(300)
	h.Access(0, l, false, false, 1)
	h.Access(1, l, true, false, 1) // core 1 writes: invalidates core 0
	r := h.Access(0, l, false, false, 1)
	if r.Level == "l1" || r.Level == "l2" {
		t.Fatalf("core 0 should have been invalidated, hit %q", r.Level)
	}
}

func TestHierarchyLLCEviction(t *testing.T) {
	cfg := config.Default()
	cfg.LLCSize = 64 * 16 // 16 lines
	cfg.LLCWays = 2
	h := NewHierarchy(cfg)
	var evicted int
	for i := 0; i < 64; i++ {
		r := h.Access(0, mem.Line(i*9+1), false, false, 1)
		evicted += len(r.LLCEvicted)
	}
	if evicted == 0 {
		t.Fatal("streaming through a tiny LLC must evict")
	}
}
