package cache

import (
	"math/rand"
	"testing"

	"asap/internal/config"
	"asap/internal/mem"
)

// broadcastHierarchy is the pre-optimization reference: the same
// L1/L2/LLC/directory model, but every write invalidates every other
// core's private caches (a broadcast) and private evictions never trim
// the directory's sharer vector. The sharer-directed Hierarchy must be
// observationally identical — the sharer vector it consults is always a
// superset of the true holders, so directing invalidations at it can
// never miss a copy the broadcast would have caught.
type broadcastHierarchy struct {
	cfg config.Config
	l1  []*SetAssoc
	l2  []*SetAssoc
	llc *SetAssoc
	dir *Directory

	evScratch []mem.Line
}

func newBroadcastHierarchy(cfg config.Config) *broadcastHierarchy {
	h := &broadcastHierarchy{
		cfg: cfg,
		l1:  make([]*SetAssoc, cfg.Cores),
		l2:  make([]*SetAssoc, cfg.Cores),
		llc: NewSetAssoc(cfg.LLCSize, cfg.LLCWays),
		dir: NewDirectory(),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1[i] = NewSetAssoc(cfg.L1Size, cfg.L1Ways)
		h.l2[i] = NewSetAssoc(cfg.L2Size, cfg.L2Ways)
	}
	return h
}

func (h *broadcastHierarchy) Access(core int, l mem.Line, write, acquire bool, ts uint64) AccessResult {
	var res AccessResult
	var remote bool
	h.evScratch = h.evScratch[:0]
	if write {
		res.Conflict, remote, _ = h.dir.Write(core, l, ts) // mask ignored: broadcast below
	} else {
		res.Conflict, remote = h.dir.Read(core, l, acquire)
	}

	switch {
	case h.l1[core].Lookup(l) && !remote:
		res.Latency = h.cfg.L1Hit
		res.Level = LevelL1
	case h.l2[core].Lookup(l) && !remote:
		res.Latency = h.cfg.L1Hit + h.cfg.L2Hit
		res.Level = LevelL2
		h.fillPrivate(core, l)
	case remote:
		res.Latency = h.cfg.RemoteXfer
		res.Level = LevelRemote
		h.fillPrivate(core, l)
		h.fillLLC(l)
	case h.llc.Lookup(l):
		res.Latency = h.cfg.LLCHit
		res.Level = LevelLLC
		h.fillPrivate(core, l)
	default:
		res.Latency = h.cfg.LLCHit + h.cfg.NVMRead
		res.Level = LevelMem
		h.fillPrivate(core, l)
		h.fillLLC(l)
	}
	res.LLCEvicted = h.evScratch

	if write {
		for c := 0; c < h.cfg.Cores; c++ {
			if c != core {
				h.l1[c].Invalidate(l)
				h.l2[c].Invalidate(l)
			}
		}
	}
	return res
}

func (h *broadcastHierarchy) fillPrivate(core int, l mem.Line) {
	h.l1[core].Insert(l)
	h.l2[core].Insert(l)
}

func (h *broadcastHierarchy) fillLLC(l mem.Line) {
	if v, had := h.llc.Insert(l); had {
		h.evScratch = append(h.evScratch, v)
	}
}

// conflictCopy is a value snapshot of the scratch-aliased *Conflict.
type conflictCopy struct {
	ok bool
	cf Conflict
}

func snapConflict(cf *Conflict) conflictCopy {
	if cf == nil {
		return conflictCopy{}
	}
	return conflictCopy{ok: true, cf: *cf}
}

// TestDifferentialCoherence replays random multi-core access streams
// through the broadcast reference and the sharer-directed hierarchy,
// asserting identical latencies, levels, conflicts, LLC evictions, and
// final per-cache contents. Geometry is shrunk so private and shared
// evictions are frequent and the line universe is small enough for heavy
// cross-core sharing.
func TestDifferentialCoherence(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 4
	cfg.L1Size = 64 * 8 // 4 sets x 2 ways
	cfg.L1Ways = 2
	cfg.L2Size = 64 * 16 // 4 sets x 4 ways
	cfg.L2Ways = 4
	cfg.LLCSize = 64 * 64 // 8 sets x 8 ways
	cfg.LLCWays = 8

	const lines = 96   // > LLC capacity, dense sharing
	const steps = 8000 // enough to churn every set repeatedly

	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ref := newBroadcastHierarchy(cfg)
		opt := NewHierarchy(cfg)
		ts := uint64(1)

		for i := 0; i < steps; i++ {
			core := rng.Intn(cfg.Cores)
			l := mem.Line(rng.Intn(lines))
			write := rng.Intn(100) < 40
			acquire := !write && rng.Intn(100) < 5
			if rng.Intn(100) < 3 {
				ts++ // occasional epoch advance so WriterTS varies
			}

			a := ref.Access(core, l, write, acquire, ts)
			// Snapshot before the second hierarchy overwrites nothing —
			// each hierarchy has its own scratch, but copy for clarity.
			aEv := append([]mem.Line(nil), a.LLCEvicted...)
			aCf := snapConflict(a.Conflict)

			b := opt.Access(core, l, write, acquire, ts)

			if a.Latency != b.Latency || a.Level != b.Level {
				t.Fatalf("seed %d step %d (core %d line %d write %v): ref (%v,%s) vs opt (%v,%s)",
					seed, i, core, l, write, a.Latency, a.Level, b.Latency, b.Level)
			}
			bCf := snapConflict(b.Conflict)
			if aCf != bCf {
				t.Fatalf("seed %d step %d: conflict mismatch ref %+v vs opt %+v", seed, i, aCf, bCf)
			}
			if len(aEv) != len(b.LLCEvicted) {
				t.Fatalf("seed %d step %d: eviction count %d vs %d", seed, i, len(aEv), len(b.LLCEvicted))
			}
			for j := range aEv {
				if aEv[j] != b.LLCEvicted[j] {
					t.Fatalf("seed %d step %d: eviction %d is %d vs %d", seed, i, j, aEv[j], b.LLCEvicted[j])
				}
			}
		}

		// Final state: every cache level holds exactly the same lines.
		for l := mem.Line(0); l < lines; l++ {
			for c := 0; c < cfg.Cores; c++ {
				if ref.l1[c].Contains(l) != opt.L1(c).Contains(l) {
					t.Fatalf("seed %d: L1[%d] diverges on line %d", seed, c, l)
				}
				if ref.l2[c].Contains(l) != opt.L2(c).Contains(l) {
					t.Fatalf("seed %d: L2[%d] diverges on line %d", seed, c, l)
				}
			}
			if ref.llc.Contains(l) != opt.LLC().Contains(l) {
				t.Fatalf("seed %d: LLC diverges on line %d", seed, l)
			}
		}

		// The point of the exercise: the directed hierarchy must not have
		// probed more caches than the broadcast (it should probe far fewer,
		// but the directional claim is what correctness rests on).
		if opt.Directory().Invalidations() > ref.dir.Invalidations() {
			t.Fatalf("seed %d: directed invalidations (%d) exceed broadcast accounting (%d)",
				seed, opt.Directory().Invalidations(), ref.dir.Invalidations())
		}
	}
}

// TestDifferentialSharerSuperset checks the invariant the directed scheme
// rests on: at every step, any core holding a line in L1 or L2 appears in
// the directory's sharer vector.
func TestDifferentialSharerSuperset(t *testing.T) {
	cfg := config.Default()
	cfg.Cores = 4
	cfg.L1Size = 64 * 8
	cfg.L1Ways = 2
	cfg.L2Size = 64 * 16
	cfg.L2Ways = 4
	cfg.LLCSize = 64 * 64
	cfg.LLCWays = 8

	const lines = 64
	rng := rand.New(rand.NewSource(7))
	h := NewHierarchy(cfg)
	for i := 0; i < 4000; i++ {
		core := rng.Intn(cfg.Cores)
		l := mem.Line(rng.Intn(lines))
		h.Access(core, l, rng.Intn(100) < 40, false, 1)

		if i%97 != 0 {
			continue // full sweep is O(lines*cores); sample it
		}
		for ll := mem.Line(0); ll < lines; ll++ {
			e, ok := h.Directory().Peek(ll)
			for c := 0; c < cfg.Cores; c++ {
				holds := h.L1(c).Contains(ll) || h.L2(c).Contains(ll)
				if holds && (!ok || e.Sharers&(1<<uint(c)) == 0) {
					t.Fatalf("step %d: core %d holds line %d but is not a sharer", i, c, ll)
				}
			}
		}
	}
}
