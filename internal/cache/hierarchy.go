package cache

import (
	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/sim"
)

// AccessResult summarizes one core access through the hierarchy.
//
// Conflict and LLCEvicted alias per-hierarchy scratch storage that the next
// Access (or directory operation) overwrites: callers must consume them
// before touching the hierarchy again, which keeps the per-access path free
// of heap allocation.
type AccessResult struct {
	Latency sim.Cycles
	// Level the access was satisfied at: "l1", "l2", "remote", "llc", "mem".
	Level string
	// Conflict is non-nil when the line was last modified by another core.
	Conflict *Conflict
	// LLCEvicted lists lines evicted from the LLC by this access's fills.
	// Persistent-memory lines are dropped rather than written back — the
	// persist path owns durability (§V-A) — but the machine consults the
	// MC Bloom filter before letting a NACK-pending line go (§V-F).
	LLCEvicted []mem.Line
}

// Hierarchy is the private-L1/private-L2/shared-LLC cache model with a
// directory for coherence, per Table II.
type Hierarchy struct {
	cfg config.Config
	l1  []*SetAssoc
	l2  []*SetAssoc
	llc *SetAssoc
	dir *Directory

	// evScratch backs AccessResult.LLCEvicted, reused across accesses so
	// the steady-state access path does not allocate.
	evScratch []mem.Line
}

// NewHierarchy builds the hierarchy for cfg.Cores cores.
func NewHierarchy(cfg config.Config) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1:  make([]*SetAssoc, cfg.Cores),
		l2:  make([]*SetAssoc, cfg.Cores),
		llc: NewSetAssoc(cfg.LLCSize, cfg.LLCWays),
		dir: NewDirectory(),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1[i] = NewSetAssoc(cfg.L1Size, cfg.L1Ways)
		h.l2[i] = NewSetAssoc(cfg.L2Size, cfg.L2Ways)
	}
	return h
}

// Directory exposes the coherence directory (the machine marks releases and
// inspects last-writer state through it).
func (h *Hierarchy) Directory() *Directory { return h.dir }

// Access performs a load (write=false) or store (write=true) by core to
// line l, executed within the core's persistency epoch ts. acquire marks
// the access as an acquire operation for release-persistency dependency
// detection.
func (h *Hierarchy) Access(core int, l mem.Line, write, acquire bool, ts uint64) AccessResult {
	var res AccessResult
	var remote bool
	h.evScratch = h.evScratch[:0]
	if write {
		res.Conflict, remote = h.dir.Write(core, l, ts)
	} else {
		res.Conflict, remote = h.dir.Read(core, l, acquire)
	}

	switch {
	case h.l1[core].Lookup(l) && !remote:
		res.Latency = h.cfg.L1Hit
		res.Level = "l1"
	case h.l2[core].Lookup(l) && !remote:
		res.Latency = h.cfg.L1Hit + h.cfg.L2Hit
		res.Level = "l2"
		h.fillPrivate(core, l)
	case remote:
		// Cache-to-cache transfer from the modifying core.
		res.Latency = h.cfg.RemoteXfer
		res.Level = "remote"
		h.fillPrivate(core, l)
		res.LLCEvicted = h.fillLLC(l)
	case h.llc.Lookup(l):
		res.Latency = h.cfg.LLCHit
		res.Level = "llc"
		h.fillPrivate(core, l)
	default:
		// Fill from persistent memory.
		res.Latency = h.cfg.LLCHit + h.cfg.NVMRead
		res.Level = "mem"
		h.fillPrivate(core, l)
		res.LLCEvicted = h.fillLLC(l)
	}

	if write {
		// Invalidate remote private copies (directory already updated).
		for c := 0; c < h.cfg.Cores; c++ {
			if c != core {
				h.l1[c].Invalidate(l)
				h.l2[c].Invalidate(l)
			}
		}
	}
	return res
}

// fillPrivate installs the line in the core's L1 and L2. Private evictions
// of persistent lines are silent: their durable copies travel through the
// persist buffers, and a write-back buffer (WBB) holds lines whose persists
// are still queued (§V-F), which we model as a free drop here with the WBB
// occupancy accounted by the machine.
func (h *Hierarchy) fillPrivate(core int, l mem.Line) {
	h.l1[core].Insert(l)
	h.l2[core].Insert(l)
}

// fillLLC installs the line in the shared LLC, collecting evictions into
// the reused scratch slice.
func (h *Hierarchy) fillLLC(l mem.Line) []mem.Line {
	if v, had := h.llc.Insert(l); had {
		h.evScratch = append(h.evScratch, v)
	}
	return h.evScratch
}

// L1 and L2 expose per-core caches; LLC the shared cache (tests, stats).
func (h *Hierarchy) L1(core int) *SetAssoc { return h.l1[core] }
func (h *Hierarchy) L2(core int) *SetAssoc { return h.l2[core] }
func (h *Hierarchy) LLC() *SetAssoc        { return h.llc }
