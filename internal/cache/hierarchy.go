package cache

import (
	"math/bits"

	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/sim"
)

// Level identifies where in the hierarchy an access was satisfied. It is a
// compact enum on the per-access fast path; String() keeps the old
// lowercase names for traces, stats and test output.
type Level uint8

const (
	LevelL1     Level = iota // private L1 hit
	LevelL2                  // private L2 hit
	LevelRemote              // cache-to-cache transfer from the owning core
	LevelLLC                 // shared LLC hit
	LevelMem                 // fill from persistent memory
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "l1"
	case LevelL2:
		return "l2"
	case LevelRemote:
		return "remote"
	case LevelLLC:
		return "llc"
	case LevelMem:
		return "mem"
	}
	return "level?"
}

// AccessResult summarizes one core access through the hierarchy.
//
// Conflict, LLCEvicted and LLCEvictedWriter alias per-hierarchy scratch
// storage that the next Access (or directory operation) overwrites:
// callers must consume them before touching the hierarchy again, which
// keeps the per-access path free of heap allocation.
type AccessResult struct {
	Latency sim.Cycles
	// Level the access was satisfied at.
	Level Level
	// Conflict is non-nil when the line was last modified by another core.
	Conflict *Conflict
	// LLCEvicted lists lines evicted from the LLC by this access's fills.
	// Persistent-memory lines are dropped rather than written back — the
	// persist path owns durability (§V-A) — but the machine consults the
	// MC Bloom filter before letting a NACK-pending line go (§V-F).
	LLCEvicted []mem.Line
	// LLCEvictedWriter[i] is the directory's last writer of LLCEvicted[i]
	// (-1 if the line was never written). Captured during the eviction so
	// the machine's write-back-buffer decision needs no second directory
	// probe per evicted line.
	LLCEvictedWriter []int
}

// Hierarchy is the private-L1/private-L2/shared-LLC cache model with a
// directory for coherence, per Table II.
type Hierarchy struct {
	cfg config.Config
	// l1 and l2 hold the per-core private caches by value: a probe
	// indexes straight into the backing array instead of chasing a
	// pointer per cache, and the per-core state lands contiguously in
	// memory.
	l1  []SetAssoc
	l2  []SetAssoc
	llc *SetAssoc
	dir *Directory

	// res, evScratch and evWriterScratch back the AccessResult returned
	// by Access, reused across accesses so the steady-state access path
	// neither allocates nor copies the result struct.
	res             AccessResult
	evScratch       []mem.Line
	evWriterScratch []int
}

// NewHierarchy builds the hierarchy for cfg.Cores cores.
func NewHierarchy(cfg config.Config) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		l1:  make([]SetAssoc, cfg.Cores),
		l2:  make([]SetAssoc, cfg.Cores),
		llc: NewSetAssoc(cfg.LLCSize, cfg.LLCWays),
		dir: NewDirectory(),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1[i] = *NewSetAssoc(cfg.L1Size, cfg.L1Ways)
		h.l2[i] = *NewSetAssoc(cfg.L2Size, cfg.L2Ways)
	}
	return h
}

// Directory exposes the coherence directory (the machine marks releases and
// inspects last-writer state through it).
func (h *Hierarchy) Directory() *Directory { return h.dir }

// Access performs a load (write=false) or store (write=true) by core to
// line l, executed within the core's persistency epoch ts. acquire marks
// the access as an acquire operation for release-persistency dependency
// detection.
//
// The returned pointer aliases per-hierarchy scratch (like the Conflict
// and eviction slices inside it) and is valid only until the next Access.
//
//asap:hot per-memory-op: every simulated load/store funnels through here
func (h *Hierarchy) Access(core int, l mem.Line, write, acquire bool, ts uint64) *AccessResult {
	res := &h.res
	var remote bool
	var invalidate uint64
	l1, l2 := &h.l1[core], &h.l2[core]
	h.evScratch = h.evScratch[:0]
	h.evWriterScratch = h.evWriterScratch[:0]
	if write {
		res.Conflict, remote, invalidate = h.dir.Write(core, l, ts)
	} else {
		res.Conflict, remote = h.dir.Read(core, l, acquire)
	}

	switch {
	case !remote && l1.Lookup(l):
		res.Latency = h.cfg.L1Hit
		res.Level = LevelL1
	case !remote && l2.Lookup(l):
		res.Latency = h.cfg.L1Hit + h.cfg.L2Hit
		res.Level = LevelL2
		// The L2 Lookup above already refreshed the line's recency, so
		// only the L1 fill remains. (Re-inserting into L2 would be a
		// second touch of the same way — a no-op for eviction order.)
		h.fillL1(core, l)
	case remote:
		// Cache-to-cache transfer from the modifying core.
		res.Latency = h.cfg.RemoteXfer
		res.Level = LevelRemote
		h.fillPrivate(core, l)
		h.fillLLC(l)
	case h.llc.Lookup(l):
		res.Latency = h.cfg.LLCHit
		res.Level = LevelLLC
		h.fillPrivate(core, l)
	default:
		// Fill from persistent memory.
		res.Latency = h.cfg.LLCHit + h.cfg.NVMRead
		res.Level = LevelMem
		h.fillPrivate(core, l)
		h.fillLLC(l)
	}
	res.LLCEvicted = h.evScratch
	res.LLCEvictedWriter = h.evWriterScratch

	if write && invalidate != 0 {
		// Sharer-directed invalidation: the directory's sharer vector
		// names exactly the cores that can hold a copy, so only their
		// private caches are probed — not every core's L1+L2 as a
		// broadcast would. The vector is a superset of the true holders
		// (it is trimmed on private evictions in fillPrivate), so a stale
		// bit costs one no-op probe pair, never a missed invalidation.
		for m := invalidate; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			h.l1[c].Invalidate(l)
			h.l2[c].Invalidate(l)
		}
	}
	return res
}

// fillPrivate installs the line in the core's L1 and L2. Private evictions
// of persistent lines are silent: their durable copies travel through the
// persist buffers, and a write-back buffer (WBB) holds lines whose persists
// are still queued (§V-F), which we model as a free drop here with the WBB
// occupancy accounted by the machine. Evictions do, however, trim the
// directory's sharer vector: once neither private level holds the line,
// the core can no longer be a sharer, which keeps write invalidations
// directed at caches that actually have the line.
// fillPrivate's callers guarantee the line is in neither private level:
// the L1/L2 lookups missed on the LLC and memory paths, and on the remote
// path the owning core's store invalidated every other private copy
// before its directory state could mark the line remote. InsertAbsent
// therefore skips the per-way hit scan.
func (h *Hierarchy) fillPrivate(core int, l mem.Line) {
	l1, l2 := &h.l1[core], &h.l2[core]
	v1, had1 := l1.InsertAbsent(l)
	v2, had2 := l2.InsertAbsent(l)
	// A victim cannot remain in the cache that just evicted it, so each
	// victim is checked only against the OTHER private level.
	if had1 && !l2.Contains(v1) {
		h.dir.ClearSharer(core, v1)
	}
	if had2 && v2 != v1 && !l1.Contains(v2) {
		h.dir.ClearSharer(core, v2)
	}
}

// fillL1 installs the line in L1 alone — the L2-hit path, where L2
// already holds it. The same sharer-vector trim applies to the victim.
func (h *Hierarchy) fillL1(core int, l mem.Line) {
	v1, had1 := h.l1[core].InsertAbsent(l)
	if had1 && !h.l2[core].Contains(v1) {
		h.dir.ClearSharer(core, v1)
	}
}

// fillLLC installs the line in the shared LLC, collecting evictions (and
// their directory last-writer) into the reused scratch slices.
func (h *Hierarchy) fillLLC(l mem.Line) {
	if v, had := h.llc.Insert(l); had {
		writer := -1
		if e, ok := h.dir.Peek(v); ok {
			writer = int(e.LastWriter)
		}
		//asaplint:ignore alloccheck scratch slices reach steady-state capacity after the first few evictions
		h.evScratch = append(h.evScratch, v)
		h.evWriterScratch = append(h.evWriterScratch, writer) //asaplint:ignore alloccheck same scratch contract as the line above
	}
}

// L1 and L2 expose per-core caches; LLC the shared cache (tests, stats).
func (h *Hierarchy) L1(core int) *SetAssoc { return &h.l1[core] }
func (h *Hierarchy) L2(core int) *SetAssoc { return &h.l2[core] }
func (h *Hierarchy) LLC() *SetAssoc        { return h.llc }
