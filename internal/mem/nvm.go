package mem

import (
	"sort"

	"asap/internal/obs"
)

// Token is the value stored in one NVM line. The timing model does not
// simulate byte contents; instead every store in a workload carries a unique
// monotonically increasing token (a global store sequence number). The crash
// checker uses tokens to decide whether the post-recovery memory image could
// have been produced by a legal persist order (Theorem 2 in the paper).
//
// Token 0 means "never written".
type Token uint64

// NVM is the non-volatile media behind one memory controller. Contents
// survive a simulated crash by construction (they are only mutated by
// persists).
type NVM struct {
	lines  map[Line]Token
	writes uint64
	reads  uint64

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

// NewNVM returns an empty device.
func NewNVM() *NVM {
	return &NVM{lines: make(map[Line]Token)}
}

// AttachTracer emits a media-write instant and cumulative write counter on
// track (the owning memory controller's track).
func (n *NVM) AttachTracer(tr obs.Tracer, track obs.TrackID) {
	n.trc = tr
	n.track = track
}

// Write persists token t to line l.
func (n *NVM) Write(l Line, t Token) {
	n.lines[l] = t //asaplint:ignore alloccheck modeled NVM contents: map grows to the workload footprint, then keys repeat
	n.writes++
	if n.trc != nil {
		n.trc.Counter(n.track, "nvmWrites", int64(n.writes))
	}
}

// Read returns the token at line l (0 if never written).
func (n *NVM) Read(l Line) Token {
	n.reads++
	return n.lines[l]
}

// Peek returns the token at line l without counting a media access. Used by
// the crash checker.
func (n *NVM) Peek(l Line) Token { return n.lines[l] }

// Writes returns the number of media write operations performed, the
// quantity plotted in Figure 9 (PM write endurance).
func (n *NVM) Writes() uint64 { return n.writes }

// Reads returns the number of media read operations performed.
func (n *NVM) Reads() uint64 { return n.reads }

// Snapshot copies the current contents. Used by tests to compare pre- and
// post-crash images.
func (n *NVM) Snapshot() map[Line]Token {
	out := make(map[Line]Token, len(n.lines))
	//asaplint:ignore detcheck copying one map into another is order-independent
	for l, t := range n.lines {
		out[l] = t
	}
	return out
}

// Lines calls fn for every written line, in ascending line order so
// image comparisons and reports are reproducible.
func (n *NVM) Lines(fn func(Line, Token)) {
	lines := make([]Line, 0, len(n.lines))
	for l := range n.lines {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		fn(l, n.lines[l])
	}
}
