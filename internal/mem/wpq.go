package mem

import "asap/internal/obs"

// WPQ is the write-pending queue of a memory controller. On platforms with
// ADR the WPQ is inside the persistence domain: a write is durable the
// moment it is accepted here (§II-C), and the queue is drained to NVM on a
// power failure. The queue coalesces writes to the same line, which the
// paper observes reduces PM write traffic for concurrent workloads (§VII-A,
// "Coalescing in the WPQ").
type WPQ struct {
	capacity int
	// order is the FIFO of distinct lines; head indexes the oldest entry.
	// Popping advances head instead of reslicing so the backing array is
	// reused once the queue empties, keeping the drain path allocation-free.
	order     []Line
	head      int
	pending   map[Line]Token
	coalesced uint64
	maxOcc    int

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

// NewWPQ returns a queue holding capacity distinct lines.
func NewWPQ(capacity int) *WPQ {
	if capacity <= 0 {
		panic("mem: WPQ capacity must be positive")
	}
	return &WPQ{
		capacity: capacity,
		pending:  make(map[Line]Token, capacity),
	}
}

// AttachTracer emits queue-depth counters and coalesce instants on track
// (the owning memory controller's track).
func (w *WPQ) AttachTracer(tr obs.Tracer, track obs.TrackID) {
	w.trc = tr
	w.track = track
}

// Full reports whether a new distinct line cannot currently be accepted.
func (w *WPQ) Full() bool { return w.Len() >= w.capacity }

// Len returns the number of distinct queued lines.
func (w *WPQ) Len() int { return len(w.order) - w.head }

// MaxOccupancy returns the high-water mark of Len.
func (w *WPQ) MaxOccupancy() int { return w.maxOcc }

// Coalesced returns the number of inserts absorbed by an existing entry.
func (w *WPQ) Coalesced() uint64 { return w.coalesced }

// Contains reports whether line l has a pending write, returning its token.
func (w *WPQ) Contains(l Line) (Token, bool) {
	t, ok := w.pending[l]
	return t, ok
}

// Insert queues token t for line l. If the line is already pending the
// write coalesces in place and Insert always succeeds; otherwise it fails
// when the queue is full. It reports whether the insert was accepted.
func (w *WPQ) Insert(l Line, t Token) bool {
	if _, ok := w.pending[l]; ok {
		w.pending[l] = t //asaplint:ignore alloccheck overwrite of an existing key never allocates
		w.coalesced++
		if w.trc != nil {
			w.trc.Instant(w.track, "wpq coalesce")
		}
		return true
	}
	if w.Full() {
		return false
	}
	w.order = append(w.order, l) //asaplint:ignore alloccheck bounded by capacity (Full checked above); backing array reaches it once
	w.pending[l] = t             //asaplint:ignore alloccheck map bounded by capacity; deleted slots recycle at steady state
	if w.Len() > w.maxOcc {
		w.maxOcc = w.Len()
	}
	if w.trc != nil {
		w.trc.Counter(w.track, "wpq", int64(w.Len()))
	}
	return true
}

// Pop removes and returns the oldest pending write. It panics on an empty
// queue; callers gate on Len.
func (w *WPQ) Pop() (Line, Token) {
	if w.Len() == 0 {
		panic("mem: Pop on empty WPQ")
	}
	l := w.order[w.head]
	w.head++
	if w.head == len(w.order) {
		w.order = w.order[:0]
		w.head = 0
	}
	t := w.pending[l]
	delete(w.pending, l)
	if w.trc != nil {
		w.trc.Counter(w.track, "wpq", int64(w.Len()))
	}
	return l, t
}

// Drain empties the queue into nvm, as the ADR logic does on power failure.
func (w *WPQ) Drain(nvm *NVM) {
	for w.Len() > 0 {
		l, t := w.Pop()
		nvm.Write(l, t)
	}
}
