// Package mem models the persistent-memory substrate: the physical address
// map, the NVM devices behind each memory controller, Optane's XPBuffer line
// cache, and the ADR-protected write-pending queue (WPQ). Timing decisions
// live with the controllers in package persist; this package owns state.
package mem

// LineSize is the cache-line granularity of all flushes and persists (§IV-B).
const LineSize = 64

// Line identifies a cache line by its line number (byte address / LineSize).
type Line uint64

// LineOf returns the line containing byte address addr.
func LineOf(addr uint64) Line { return Line(addr / LineSize) }

// Addr returns the first byte address of the line.
func (l Line) Addr() uint64 { return uint64(l) * LineSize }

// Interleaver maps lines to memory controllers. The paper interleaves data
// across controllers to raise write bandwidth (§III); Intel platforms
// typically interleave at 4 KB (page) or 256 B granularity.
type Interleaver struct {
	numMC     int
	granLines uint64 // interleave granularity in lines
}

// NewInterleaver builds an interleaver across numMC controllers with the
// given granularity in bytes (must be a multiple of LineSize).
func NewInterleaver(numMC int, granularityBytes uint64) *Interleaver {
	if numMC <= 0 {
		panic("mem: interleaver needs at least one MC")
	}
	if granularityBytes%LineSize != 0 || granularityBytes == 0 {
		panic("mem: interleave granularity must be a positive multiple of the line size")
	}
	return &Interleaver{numMC: numMC, granLines: granularityBytes / LineSize}
}

// NumMC returns the number of memory controllers.
func (iv *Interleaver) NumMC() int { return iv.numMC }

// Home returns the controller that owns line l.
func (iv *Interleaver) Home(l Line) int {
	return int((uint64(l) / iv.granLines) % uint64(iv.numMC))
}
