package mem

import "asap/internal/obs"

// XPBuffer models the small internal line cache of an Optane DIMM. The ASAP
// paper leans on it to argue that the read-before-write needed to create an
// undo record is usually cheap: "XPBuffer in Intel Optane Persistent memory
// caches most recently accessed lines. Writes would mostly hit in this
// cache" (§V-A). We model it as an LRU cache of line tokens, populated by
// both reads and writes.
type XPBuffer struct {
	capacity int
	entries  map[Line]*xpNode
	head     *xpNode // most recently used
	tail     *xpNode // least recently used
	hits     uint64
	misses   uint64

	trc   obs.Tracer // nil unless tracing; every use must be nil-guarded
	track obs.TrackID
}

type xpNode struct {
	line       Line
	token      Token
	prev, next *xpNode
}

// NewXPBuffer returns an LRU buffer holding capacity lines. A capacity of
// zero disables the buffer (every lookup misses).
func NewXPBuffer(capacity int) *XPBuffer {
	return &XPBuffer{
		capacity: capacity,
		entries:  make(map[Line]*xpNode, capacity),
	}
}

// AttachTracer emits hit/miss instants on track (the owning memory
// controller's track).
func (x *XPBuffer) AttachTracer(tr obs.Tracer, track obs.TrackID) {
	x.trc = tr
	x.track = track
}

// Lookup returns the cached token for line l and whether it was present.
func (x *XPBuffer) Lookup(l Line) (Token, bool) {
	n, ok := x.entries[l]
	if !ok {
		x.misses++
		if x.trc != nil {
			x.trc.Instant(x.track, "xp miss")
		}
		return 0, false
	}
	x.hits++
	if x.trc != nil {
		x.trc.Instant(x.track, "xp hit")
	}
	x.moveToFront(n)
	return n.token, true
}

// Insert caches token t for line l, evicting the LRU entry if full.
func (x *XPBuffer) Insert(l Line, t Token) {
	if x.capacity == 0 {
		return
	}
	if n, ok := x.entries[l]; ok {
		n.token = t
		x.moveToFront(n)
		return
	}
	if len(x.entries) >= x.capacity {
		// Recycle the evicted node: at capacity the buffer runs with a
		// fixed node population and insertions stop allocating.
		lru := x.tail
		x.unlink(lru)
		delete(x.entries, lru.line)
		lru.line, lru.token = l, t
		x.entries[l] = lru //asaplint:ignore alloccheck reuses the map slot freed by the delete above
		x.pushFront(lru)
		return
	}
	n := &xpNode{line: l, token: t} //asaplint:ignore alloccheck warm-up only: at most capacity nodes ever allocated
	x.entries[l] = n                //asaplint:ignore alloccheck warm-up only: map reaches capacity once, then slots recycle
	x.pushFront(n)
}

// Len returns the number of cached lines.
func (x *XPBuffer) Len() int { return len(x.entries) }

// Hits and Misses report lookup outcomes.
func (x *XPBuffer) Hits() uint64   { return x.hits }
func (x *XPBuffer) Misses() uint64 { return x.misses }

func (x *XPBuffer) moveToFront(n *xpNode) {
	if x.head == n {
		return
	}
	x.unlink(n)
	x.pushFront(n)
}

func (x *XPBuffer) pushFront(n *xpNode) {
	n.prev = nil
	n.next = x.head
	if x.head != nil {
		x.head.prev = n
	}
	x.head = n
	if x.tail == nil {
		x.tail = n
	}
}

func (x *XPBuffer) unlink(n *xpNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		x.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		x.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
