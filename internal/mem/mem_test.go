package mem

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 || LineOf(129) != 2 {
		t.Fatal("LineOf wrong")
	}
	if Line(3).Addr() != 192 {
		t.Fatal("Addr wrong")
	}
}

func TestInterleaver(t *testing.T) {
	iv := NewInterleaver(2, 256)
	// 256 B = 4 lines per granule; lines 0-3 -> MC0, 4-7 -> MC1, ...
	for l := Line(0); l < 4; l++ {
		if iv.Home(l) != 0 {
			t.Fatalf("line %d home %d, want 0", l, iv.Home(l))
		}
	}
	for l := Line(4); l < 8; l++ {
		if iv.Home(l) != 1 {
			t.Fatalf("line %d home %d, want 1", l, iv.Home(l))
		}
	}
	if iv.Home(8) != 0 {
		t.Fatal("interleave should wrap")
	}
	if iv.NumMC() != 2 {
		t.Fatal("NumMC wrong")
	}
}

func TestInterleaverBalance(t *testing.T) {
	iv := NewInterleaver(4, 4096)
	counts := make([]int, 4)
	for l := Line(0); l < 4096; l++ {
		counts[iv.Home(l)]++
	}
	for mc, c := range counts {
		if c != 1024 {
			t.Fatalf("MC %d got %d lines, want 1024", mc, c)
		}
	}
}

func TestInterleaverValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewInterleaver(0, 256) },
		func() { NewInterleaver(2, 0) },
		func() { NewInterleaver(2, 100) }, // not a line multiple
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad interleaver config did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNVM(t *testing.T) {
	n := NewNVM()
	if n.Read(5) != 0 {
		t.Fatal("unwritten line not zero")
	}
	n.Write(5, 99)
	if n.Read(5) != 99 {
		t.Fatal("read after write wrong")
	}
	if n.Writes() != 1 || n.Reads() != 2 {
		t.Fatalf("counters writes=%d reads=%d", n.Writes(), n.Reads())
	}
	if n.Peek(5) != 99 || n.Reads() != 2 {
		t.Fatal("Peek should not count a media access")
	}
	snap := n.Snapshot()
	n.Write(5, 100)
	if snap[5] != 99 {
		t.Fatal("snapshot aliases live state")
	}
}

func TestXPBufferLRU(t *testing.T) {
	x := NewXPBuffer(2)
	x.Insert(1, 10)
	x.Insert(2, 20)
	if _, ok := x.Lookup(1); !ok {
		t.Fatal("line 1 missing")
	}
	x.Insert(3, 30) // evicts 2 (1 was just touched)
	if _, ok := x.Lookup(2); ok {
		t.Fatal("line 2 should have been evicted (LRU)")
	}
	if v, ok := x.Lookup(1); !ok || v != 10 {
		t.Fatal("line 1 lost")
	}
	if v, ok := x.Lookup(3); !ok || v != 30 {
		t.Fatal("line 3 lost")
	}
	if x.Len() != 2 {
		t.Fatalf("len = %d", x.Len())
	}
	if x.Hits() != 3 || x.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", x.Hits(), x.Misses())
	}
}

func TestXPBufferUpdateInPlace(t *testing.T) {
	x := NewXPBuffer(2)
	x.Insert(1, 10)
	x.Insert(1, 11)
	if x.Len() != 1 {
		t.Fatal("update created a duplicate")
	}
	if v, _ := x.Lookup(1); v != 11 {
		t.Fatal("update lost")
	}
}

func TestXPBufferDisabled(t *testing.T) {
	x := NewXPBuffer(0)
	x.Insert(1, 10)
	if _, ok := x.Lookup(1); ok {
		t.Fatal("disabled buffer should always miss")
	}
}

func TestWPQBasics(t *testing.T) {
	w := NewWPQ(2)
	if !w.Insert(1, 10) || !w.Insert(2, 20) {
		t.Fatal("inserts rejected")
	}
	if !w.Full() {
		t.Fatal("should be full")
	}
	if w.Insert(3, 30) {
		t.Fatal("full queue accepted a new line")
	}
	// Coalescing always succeeds.
	if !w.Insert(1, 11) {
		t.Fatal("coalescing insert rejected")
	}
	if w.Coalesced() != 1 {
		t.Fatal("coalesce not counted")
	}
	l, tok := w.Pop()
	if l != 1 || tok != 11 {
		t.Fatalf("pop = (%d,%d), want (1,11) FIFO with coalesced token", l, tok)
	}
	l, tok = w.Pop()
	if l != 2 || tok != 20 {
		t.Fatalf("pop = (%d,%d)", l, tok)
	}
}

func TestWPQDrain(t *testing.T) {
	w := NewWPQ(4)
	n := NewNVM()
	w.Insert(1, 10)
	w.Insert(2, 20)
	w.Drain(n)
	if w.Len() != 0 {
		t.Fatal("drain left entries")
	}
	if n.Peek(1) != 10 || n.Peek(2) != 20 {
		t.Fatal("drain lost writes")
	}
}

// TestWPQOracle (property): the WPQ behaves like a FIFO of distinct lines
// with last-writer-wins tokens.
func TestWPQOracle(t *testing.T) {
	type op struct {
		Line  uint8
		Token uint16
		Pop   bool
	}
	prop := func(ops []op) bool {
		w := NewWPQ(8)
		var order []Line
		pending := make(map[Line]Token)
		for _, o := range ops {
			if o.Pop {
				if len(order) == 0 {
					continue
				}
				l, tok := w.Pop()
				if l != order[0] || tok != pending[l] {
					return false
				}
				order = order[1:]
				delete(pending, l)
				continue
			}
			l, tok := Line(o.Line%16), Token(o.Token)
			okModel := true
			if _, exists := pending[l]; !exists {
				if len(order) >= 8 {
					okModel = false
				} else {
					order = append(order, l)
				}
			}
			ok := w.Insert(l, tok)
			if ok != okModel {
				return false
			}
			if ok {
				pending[l] = tok
			}
		}
		return w.Len() == len(order)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
