package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// PMEMSpec implements PMEM-Spec (Jeong & Jung, ASPLOS'21) as the paper
// characterizes it in §VII-E and Table IV: every PM access flushes
// speculatively with no buffering and no ordering enforcement — the core
// never stalls for ordering — speculating that persists reach memory in
// program order. A mis-speculation (a younger epoch's write persisting
// while an older epoch still has writes in flight to a *different*
// controller, so the persist order could be observed inverted across
// controllers) is treated like a failure and repaired by software, which
// is expensive. On a single-controller system the channel is FIFO, nothing
// mis-speculates, and PMEM-Spec performs close to ASAP; with two
// controllers out-of-order persists are common and recovery dominates —
// exactly the paper's argument for why speculation needs ASAP's
// MC-side undo machinery instead.
type PMEMSpec struct {
	env   Env
	hc    hotCounters
	cores []*specCore
}

// specRecoveryCost is the software mis-speculation repair time. The paper
// calls it "very high overhead"; 5 µs (10k cycles) is a conservative
// estimate for a software handler that quiesces and repairs log state.
const specRecoveryCost sim.Cycles = 10_000

type specCore struct {
	id int
	ts uint64 // epoch counter (fence-delimited)

	// outstanding[mc] counts un-ACKed flushes per controller for the
	// *current* epoch window; epochOutstanding tracks older epochs.
	outstanding map[uint64]*specEpoch // by epoch TS

	committedTS  uint64
	recoverUntil sim.Cycles

	dfenceWaiter func()
	dfenceStart  sim.Cycles
}

type specEpoch struct {
	perMC   []int
	pending int
}

func newPMEMSpec(env Env) *PMEMSpec {
	m := &PMEMSpec{env: env, hc: newHotCounters(env.St)}
	m.cores = make([]*specCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &specCore{id: i, ts: 1, outstanding: make(map[uint64]*specEpoch)}
	}
	return m
}

// Name returns "pmem_spec".
func (m *PMEMSpec) Name() string { return NamePMEMSpec }

// Stats returns the shared stat set.
func (m *PMEMSpec) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the core's fence-delimited epoch.
func (m *PMEMSpec) CurrentTS(core int) uint64 { return m.cores[core].ts }

// EpochCommitted reports whether every flush of the epoch (and its
// predecessors) has been acknowledged. Note that unlike ASAP this is a
// best-effort property: mis-speculated persist orderings are repaired by
// software, not prevented, so the crash checker is not applicable to this
// model (see DESIGN.md).
func (m *PMEMSpec) EpochCommitted(e persist.EpochID) bool {
	return m.cores[e.Thread].committedTS >= e.TS
}

// delay defers done until any pending software recovery completes.
func (m *PMEMSpec) delay(c *specCore, done func()) {
	if now := m.env.Eng.Now(); now < c.recoverUntil {
		m.env.Eng.At(c.recoverUntil, done)
		return
	}
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Store flushes immediately — fire and forget. The core pays no ordering
// stall; mis-speculation is detected when an older epoch still has traffic
// in flight to a different controller.
func (m *PMEMSpec) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	ts := c.ts
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: core, TS: ts}, line, token)
	m.hc.entriesInserted.Inc()

	mcID := m.env.IL.Home(line)
	ep := c.outstanding[ts]
	if ep == nil {
		//asaplint:ignore alloccheck legacy model per-record allocation; typed-event/pooling conversion is tracked roadmap debt
		ep = &specEpoch{perMC: make([]int, m.env.Cfg.MCs)}
		//asaplint:ignore alloccheck legacy model map bounded by workload footprint; outside the zero-alloc gate
		c.outstanding[ts] = ep
	}
	ep.perMC[mcID]++
	ep.pending++

	// Mis-speculation check: an older epoch has un-ACKed flushes to a
	// different controller, so this younger write may persist first.
	//asaplint:ignore detcheck a count increment plus max over all entries is order-independent
	for old, oep := range c.outstanding {
		if old >= ts {
			continue
		}
		for mc, n := range oep.perMC {
			if mc != mcID && n > 0 {
				m.hc.specMisspeculations.Inc()
				if m.env.Eng.Now()+specRecoveryCost > c.recoverUntil {
					c.recoverUntil = m.env.Eng.Now() + specRecoveryCost
				}
			}
		}
	}

	pkt := persist.FlushPacket{Line: line, Token: token, Epoch: persist.EpochID{Thread: core, TS: ts}}
	//asaplint:ignore alloccheck closure-form flush reply; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Link.Flush(mcID, pkt, func(persist.FlushResult) {
		ep.perMC[mcID]--
		ep.pending--
		m.retire(c)
	})
	m.delay(c, done)
}

// retire advances committedTS over fully-acknowledged epochs.
func (m *PMEMSpec) retire(c *specCore) {
	for {
		next := c.committedTS + 1
		if next >= c.ts {
			break
		}
		ep := c.outstanding[next]
		if ep != nil && ep.pending > 0 {
			break
		}
		delete(c.outstanding, next)
		c.committedTS = next
		m.env.Ledger.EpochCommitted(persist.EpochID{Thread: c.id, TS: next})
	}
	if c.dfenceWaiter != nil && m.drained(c) {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
}

func (m *PMEMSpec) drained(c *specCore) bool {
	//asaplint:ignore detcheck an any-pending scan over all entries is order-independent
	for _, ep := range c.outstanding {
		if ep.pending > 0 {
			return false
		}
	}
	return true
}

// Ofence only advances the epoch counter — no stall, that is the point.
func (m *PMEMSpec) Ofence(core int, done func()) {
	c := m.cores[core]
	c.ts++
	m.retireClosed(c)
	m.delay(c, done)
}

// retireClosed lets retire consider the epoch just closed by a fence.
func (m *PMEMSpec) retireClosed(c *specCore) { m.retire(c) }

// Dfence waits until every issued flush is acknowledged (durability).
func (m *PMEMSpec) Dfence(core int, done func()) {
	c := m.cores[core]
	c.ts++
	m.retire(c)
	if m.drained(c) {
		m.delay(c, done)
		return
	}
	if c.dfenceWaiter != nil {
		panic("pmem_spec: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	c.dfenceWaiter = func() { m.delay(c, done) }
}

// Release behaves like an ofence (flushes are already in flight).
func (m *PMEMSpec) Release(core int, line mem.Line, done func()) {
	m.Ofence(core, done)
}

// Acquire and Conflict: PMEM-Spec tracks no dependencies in hardware.
func (m *PMEMSpec) Acquire(core int, line mem.Line)       {}
func (m *PMEMSpec) Conflict(core int, cf *cache.Conflict) {}

// StartDrain gives end-of-trace dfence semantics.
func (m *PMEMSpec) StartDrain(core int, done func()) { m.Dfence(core, done) }

// PBOccupancy and PBBlocked: no persist buffer.
func (m *PMEMSpec) PBOccupancy(core int) int { return 0 }
func (m *PMEMSpec) PBBlocked(core int) bool  { return false }

// PBHasLine: no persist buffer.
func (m *PMEMSpec) PBHasLine(core int, line mem.Line) bool { return false }

var _ Model = (*PMEMSpec)(nil)
